// Package report renders simulation results in a machine-readable form so
// downstream tooling (plotting scripts, regression tracking) can consume
// runs of cmd/vrsim without scraping its text output.
package report

import (
	"encoding/json"
	"io"

	"repro/internal/audit"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/monitor"
	"repro/internal/probe"
	"repro/internal/system"
	"repro/internal/telemetry"
)

// Machine describes the configuration a result was measured on.
type Machine struct {
	Organization string `json:"organization"`
	CPUs         int    `json:"cpus"`
	L1           string `json:"l1"`
	L2           string `json:"l2"`
	Split        bool   `json:"split,omitempty"`
	Protocol     string `json:"protocol"`
	WriteThrough bool   `json:"writeThrough,omitempty"`
	PIDTagged    bool   `json:"pidTagged,omitempty"`
}

// HitRatios is one level's hit ratios by reference kind.
type HitRatios struct {
	Overall   float64 `json:"overall"`
	DataRead  float64 `json:"dataRead"`
	DataWrite float64 `json:"dataWrite"`
	Instr     float64 `json:"instr"`
}

// BusStats summarizes bus traffic.
type BusStats struct {
	ReadMiss    uint64 `json:"readMiss"`
	ReadModWr   uint64 `json:"readModifiedWrite"`
	Invalidate  uint64 `json:"invalidate"`
	Update      uint64 `json:"update"`
	CacheSupply uint64 `json:"cacheSupplied"`
}

// CPUStats is one processor's counter set.
type CPUStats struct {
	CPU               int    `json:"cpu"`
	CtxSwitches       uint64 `json:"ctxSwitches"`
	WriteBacks        uint64 `json:"writeBacks"`
	SwappedWriteBacks uint64 `json:"swappedWriteBacks"`
	Synonyms          uint64 `json:"synonyms"`
	InclusionInvals   uint64 `json:"inclusionInvalidations"`
	BufferStalls      uint64 `json:"bufferStalls"`
	TLBMisses         uint64 `json:"tlbMisses"`
	CoherenceToL1     uint64 `json:"coherenceMessagesToL1"`
	VictimHits        uint64 `json:"victimHits,omitempty"`
	VictimInserts     uint64 `json:"victimInserts,omitempty"`
	RLTEvictions      uint64 `json:"rltEvictions,omitempty"`
}

// CPUTiming is one processor's measured timing.
type CPUTiming struct {
	CPU  int     `json:"cpu"`
	Tacc float64 `json:"tacc"`
	cycles.AgentTiming
}

// TimingReport carries the cycle engine's measurements when one was
// attached to the run.
type TimingReport struct {
	Params  cycles.Params `json:"params"`
	Refs    uint64        `json:"refs"`
	Tacc    float64       `json:"tacc"` // machine average, cycles/reference
	BusBusy uint64        `json:"busBusyCycles"`
	BusTxns uint64        `json:"busTimedTxns"`
	BusWait uint64        `json:"busWaitCycles"`
	PerCPU  []CPUTiming   `json:"perCPU"`
}

// ProbeReport carries the observability layer's output when a probe was
// attached to the run: per-mechanism event totals keyed by event name, and
// the windowed metrics when a window collector ran.
type ProbeReport struct {
	Events  map[string]uint64     `json:"events"`
	Windows []probe.WindowMetrics `json:"windows,omitempty"`
}

// AuditReport carries the invariant auditor's tally when one was attached:
// how many audits ran, how many violations they found, and the retained
// findings (capped — Violations keeps counting past the cap).
type AuditReport struct {
	Every      uint64            `json:"every,omitempty"` // audit period, references
	Audits     uint64            `json:"audits"`
	Violations uint64            `json:"violations"`
	Findings   []audit.Violation `json:"findings,omitempty"`
}

// LatencySummary is one latency distribution's headline numbers, in cycles.
type LatencySummary struct {
	Kind  string  `json:"kind"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   uint64  `json:"max"`
}

// MonitorReport carries the live-monitoring layer's output: machine-wide
// latency distribution summaries (fed by the cycle engine) and per-cache
// occupancy at the end of the run.
type MonitorReport struct {
	Latency   []LatencySummary           `json:"latency,omitempty"`
	Occupancy []monitor.OccupancySummary `json:"occupancy,omitempty"`
}

// ShardingInfo records that the run was time-sharded (see
// internal/checkpoint): statistics were stitched from Shards windows of
// the trace, each warmed with Warmup references (approximate mode) or
// resumed from a verified checkpoint (exact mode).
type ShardingInfo struct {
	Mode     string `json:"mode"`
	Shards   int    `json:"shards"`
	Warmup   uint64 `json:"warmupRefs,omitempty"`
	Verified int    `json:"verifiedBoundaries,omitempty"`
}

// Results is a complete run summary.
type Results struct {
	Build       *telemetry.BuildInfo         `json:"build,omitempty"`
	Machine     Machine                      `json:"machine"`
	Refs        uint64                       `json:"references"`
	L1          HitRatios                    `json:"l1"`
	L2          HitRatios                    `json:"l2"`
	Bus         BusStats                     `json:"bus"`
	PerCPU      []CPUStats                   `json:"perCPU"`
	Timing      *TimingReport                `json:"timing,omitempty"`
	Probe       *ProbeReport                 `json:"probe,omitempty"`
	Audit       *AuditReport                 `json:"audit,omitempty"`
	Monitor     *MonitorReport               `json:"monitor,omitempty"`
	Sharding    *ShardingInfo                `json:"sharding,omitempty"`
	Attribution *telemetry.AttributionReport `json:"attribution,omitempty"`
}

// AddWindows attaches windowed metrics to the probe section (creating it
// when the run had counts-only probing).
func (r *Results) AddWindows(ws []probe.WindowMetrics) {
	if len(ws) == 0 {
		return
	}
	if r.Probe == nil {
		r.Probe = &ProbeReport{}
	}
	r.Probe.Windows = ws
}

// SummarizeLatencies reduces per-CPU latency histograms to machine-wide
// summaries, one per kind that recorded any sample, in kind order.
func SummarizeLatencies(lat *monitor.Latencies) []LatencySummary {
	if lat == nil {
		return nil
	}
	var out []LatencySummary
	for k := monitor.LatencyKind(0); k < monitor.NumLatencyKinds; k++ {
		h := lat.Aggregate(k)
		if h.Count() == 0 {
			continue
		}
		out = append(out, LatencySummary{
			Kind:  k.String(),
			Count: h.Count(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
			Max:   h.Max(),
		})
	}
	return out
}

// FromSystem gathers a Results from a finished run.
func FromSystem(sys *system.System, cfg system.Config) Results {
	agg := sys.Aggregate()
	bs := sys.Bus().Stats()
	build := telemetry.Build()
	r := Results{
		Build: &build,
		Machine: Machine{
			Organization: cfg.Organization.String(),
			CPUs:         sys.CPUs(),
			L1:           cfg.L1.String(),
			L2:           cfg.L2.String(),
			Split:        cfg.Split,
			Protocol:     cfg.Protocol.String(),
			WriteThrough: cfg.L1WriteThrough,
			PIDTagged:    cfg.PIDTagged,
		},
		Refs: sys.Refs(),
		L1: HitRatios{
			Overall: agg.L1.Overall, DataRead: agg.L1.DataRead,
			DataWrite: agg.L1.DataWrite, Instr: agg.L1.Instr,
		},
		L2: HitRatios{
			Overall: agg.L2.Overall, DataRead: agg.L2.DataRead,
			DataWrite: agg.L2.DataWrite, Instr: agg.L2.Instr,
		},
		Bus: BusStats{
			ReadMiss:    bs.Count(bus.Read),
			ReadModWr:   bs.Count(bus.ReadMod),
			Invalidate:  bs.Count(bus.Invalidate),
			Update:      bs.Count(bus.Update),
			CacheSupply: bs.Supplies,
		},
	}
	if p := sys.Probe(); p != nil {
		r.Probe = &ProbeReport{Events: p.Counts().Map()}
	}
	if eng := sys.Cycles(); eng != nil {
		tr := &TimingReport{
			Params:  eng.Params(),
			Refs:    eng.TotalRefs(),
			Tacc:    eng.Tacc(),
			BusBusy: eng.BusBusy(),
			BusTxns: eng.BusTxns(),
			BusWait: eng.BusWait(),
		}
		for cpu := 0; cpu < sys.CPUs(); cpu++ {
			at := eng.Agent(cpu)
			tr.PerCPU = append(tr.PerCPU, CPUTiming{CPU: cpu, Tacc: at.Tacc(), AgentTiming: at})
		}
		r.Timing = tr
	}
	if aud := sys.Auditor(); aud != nil {
		r.Audit = &AuditReport{
			Every:      aud.Every(),
			Audits:     aud.Audits(),
			Violations: aud.Total(),
			Findings:   aud.Violations(),
		}
	}
	if eng := sys.Cycles(); eng != nil && eng.Latencies() != nil {
		r.Monitor = &MonitorReport{
			Latency:   SummarizeLatencies(eng.Latencies()),
			Occupancy: monitor.Occupancy(sys.AuditSnapshot()),
		}
	}
	for cpu := 0; cpu < sys.CPUs(); cpu++ {
		st := sys.Stats(cpu)
		r.PerCPU = append(r.PerCPU, CPUStats{
			CPU:               cpu,
			CtxSwitches:       st.CtxSwitches,
			WriteBacks:        st.WriteBacks,
			SwappedWriteBacks: st.SwappedWriteBacks,
			Synonyms:          st.SynonymTotal() - st.Synonyms[core.SynNone],
			InclusionInvals:   st.InclusionInvals,
			BufferStalls:      st.BufferStalls,
			TLBMisses:         st.TLB.Misses,
			CoherenceToL1:     st.Coherence.Total(),
			VictimHits:        st.VictimHits,
			VictimInserts:     st.VictimInserts,
			RLTEvictions:      st.RLTEvictions,
		})
	}
	return r
}

// WriteJSON renders the results as indented JSON.
func (r Results) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseJSON reads a Results back (round-trip support for tooling).
func ParseJSON(r io.Reader) (Results, error) {
	var out Results
	err := json.NewDecoder(r).Decode(&out)
	return out, err
}
