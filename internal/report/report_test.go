package report

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/cycles"
	"repro/internal/probe"
	"repro/internal/system"
	"repro/internal/trace"
)

func runSmall(t *testing.T) (*system.System, system.Config) {
	t.Helper()
	cfg := system.Config{
		CPUs:         2,
		Organization: system.VR,
		PageSize:     64,
		L1:           cache.Geometry{Size: 128, Block: 16, Assoc: 1},
		L2:           cache.Geometry{Size: 512, Block: 32, Assoc: 2},
	}
	sys, err := system.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refs := []trace.Ref{
		{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x000},
		{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x004},
		{CPU: 0, Kind: trace.Write, PID: 1, Addr: 0x000},
		{CPU: 1, Kind: trace.IFetch, PID: 2, Addr: 0x100},
		{CPU: 0, Kind: trace.CtxSwitch, PID: 3},
	}
	if err := sys.Run(trace.NewSliceReader(refs)); err != nil {
		t.Fatal(err)
	}
	return sys, cfg
}

func TestFromSystem(t *testing.T) {
	sys, cfg := runSmall(t)
	r := FromSystem(sys, cfg)
	if r.Machine.Organization != "VR" || r.Machine.CPUs != 2 {
		t.Errorf("machine = %+v", r.Machine)
	}
	if r.Machine.L1 != "128/16B/1-way" {
		t.Errorf("L1 label = %q", r.Machine.L1)
	}
	if r.Machine.Protocol != "write-invalidate" {
		t.Errorf("protocol = %q", r.Machine.Protocol)
	}
	if r.Refs != 4 {
		t.Errorf("refs = %d", r.Refs)
	}
	if r.L1.Overall != 0.5 {
		t.Errorf("h1 = %v, want 0.5", r.L1.Overall)
	}
	if len(r.PerCPU) != 2 {
		t.Fatalf("perCPU = %d entries", len(r.PerCPU))
	}
	if r.PerCPU[0].CtxSwitches != 1 {
		t.Error("cpu0 context switch not recorded")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	sys, cfg := runSmall(t)
	r := FromSystem(sys, cfg)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"organization": "VR"`, `"references": 4`, `"perCPU"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s:\n%s", want, out)
		}
	}
	back, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, r) {
		t.Error("JSON round trip lost data")
	}
}

func TestTimingSection(t *testing.T) {
	cfg := system.Config{
		CPUs:         2,
		Organization: system.VR,
		PageSize:     64,
		L1:           cache.Geometry{Size: 128, Block: 16, Assoc: 1},
		L2:           cache.Geometry{Size: 512, Block: 32, Assoc: 2},
		Cycles:       cycles.MustNew(cycles.ContentionParams(), nil),
	}
	sys, err := system.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refs := []trace.Ref{
		{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x000},
		{CPU: 1, Kind: trace.Read, PID: 2, Addr: 0x100},
		{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x000},
	}
	if err := sys.Run(trace.NewSliceReader(refs)); err != nil {
		t.Fatal(err)
	}
	r := FromSystem(sys, cfg)
	if r.Timing == nil {
		t.Fatal("timing section missing with an engine attached")
	}
	if r.Timing.Refs != 3 {
		t.Errorf("timed refs = %d, want 3", r.Timing.Refs)
	}
	if r.Timing.Tacc <= 0 {
		t.Errorf("measured Tacc = %v, want > 0", r.Timing.Tacc)
	}
	if len(r.Timing.PerCPU) != 2 {
		t.Fatalf("timing perCPU = %d entries", len(r.Timing.PerCPU))
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"timing"`) {
		t.Error("JSON missing timing section")
	}
	back, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, r) {
		t.Error("JSON round trip lost timing data")
	}
}

func TestNoTimingOmitted(t *testing.T) {
	sys, cfg := runSmall(t)
	r := FromSystem(sys, cfg)
	if r.Timing != nil {
		t.Fatal("timing section present without an engine")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"timing"`) {
		t.Error("JSON has timing section without an engine")
	}
}

func TestProbeSection(t *testing.T) {
	cfg := system.Config{
		CPUs:         1,
		Organization: system.VR,
		PageSize:     64,
		L1:           cache.Geometry{Size: 128, Block: 16, Assoc: 1},
		L2:           cache.Geometry{Size: 512, Block: 32, Assoc: 2},
		Probe:        probe.New(0),
	}
	windows := probe.NewWindows(2)
	cfg.Probe.AddSink(windows)
	sys, err := system.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refs := []trace.Ref{
		{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x000},
		{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x004},
		{CPU: 0, Kind: trace.Write, PID: 1, Addr: 0x010},
	}
	if err := sys.Run(trace.NewSliceReader(refs)); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Probe.Close(); err != nil {
		t.Fatal(err)
	}
	r := FromSystem(sys, cfg)
	r.AddWindows(windows.Done())
	if r.Probe == nil {
		t.Fatal("probe section missing")
	}
	if got := r.Probe.Events["l1-hit"]; got != 1 {
		t.Errorf("l1-hit events = %d, want 1", got)
	}
	if got := r.Probe.Events["l1-miss"]; got != 2 {
		t.Errorf("l1-miss events = %d, want 2", got)
	}
	if len(r.Probe.Windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(r.Probe.Windows))
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"probe"`, `"events"`, `"l1-hit": 1`, `"windows"`, `"firstRef": 1`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s:\n%s", want, out)
		}
	}
	back, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, r) {
		t.Error("probe section lost in JSON round trip")
	}
}

func TestNoProbeOmitted(t *testing.T) {
	sys, cfg := runSmall(t)
	r := FromSystem(sys, cfg)
	if r.Probe != nil {
		t.Error("probe section present without a probe")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"probe"`) {
		t.Error("probe key present in JSON without a probe")
	}
}

func TestParseJSONError(t *testing.T) {
	if _, err := ParseJSON(strings.NewReader("{bogus")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestOptionFlagsSurface(t *testing.T) {
	cfg := system.Config{
		CPUs:           1,
		Organization:   system.VR,
		PageSize:       64,
		L1:             cache.Geometry{Size: 128, Block: 16, Assoc: 1},
		L2:             cache.Geometry{Size: 512, Block: 32, Assoc: 2},
		L1WriteThrough: true,
	}
	sys, err := system.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := FromSystem(sys, cfg)
	if !r.Machine.WriteThrough {
		t.Error("write-through flag not surfaced")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"writeThrough": true`) {
		t.Error("writeThrough missing from JSON")
	}
}
