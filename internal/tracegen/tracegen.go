// Package tracegen synthesizes multiprocessor memory-reference traces with
// the workload properties the paper's evaluation depends on, standing in
// for the unavailable ATUM VAX traces (pops, thor, abaqus):
//
//   - temporal locality from an LRU-stack-distance model with a power-law
//     tail, so hit ratios scale with cache size the way real programs' do;
//   - spatial locality from sequential instruction runs;
//   - procedure calls that emit bursts of stack writes, reproducing the
//     paper's Table 1 (writes per call) and Table 2 (short inter-write
//     intervals);
//   - scheduled context switches between the processes sharing each CPU;
//   - a shared segment mapped by every process at a process-specific
//     virtual base, generating both cache-coherence traffic and synonyms.
//
// Generators are deterministic for a given configuration and seed.
package tracegen

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Config describes a synthetic workload. All byte quantities should be
// multiples of the page size.
type Config struct {
	Name      string
	CPUs      int
	TotalRefs int   // memory references to emit (context switches excluded)
	Seed      int64 //
	PageSize  uint64

	// Reference mix; the three fractions should sum to 1.
	InstrFrac float64
	ReadFrac  float64
	WriteFrac float64

	// Scheduling.
	ProcsPerCPU       int // processes rotating on each CPU (default 1)
	CtxSwitchInterval int // per-CPU references between switches (0 = never)

	// Locality. Alpha is the Pareto tail exponent of the LRU stack-distance
	// distribution (smaller = heavier tail = worse locality); WorkingSet
	// bounds the hot block list per process and stream, in blocks.
	CodeAlpha, DataAlpha           float64
	CodeWorkingSet, DataWorkingSet int
	SeqRunProb                     float64 // chance an ifetch continues sequentially
	PrivateRegionPages             int     // private data region size per process

	// Procedure calls.
	CallProb     float64 // chance an ifetch is a call
	BurstWeights []BurstWeight
	StackPages   int // per-process stack region size

	// Sharing.
	SharedPages     int     // size of the global shared segment
	SharedFrac      float64 // fraction of data refs that target it
	SharedWriteFrac float64 // fraction of shared refs that are writes
	SharedHotBlocks int     // per-process hot set within the segment
}

// BurstWeight gives the relative frequency of a call writing N words.
type BurstWeight struct {
	Writes int
	Weight float64
}

// block size used for locality bookkeeping; matches the smallest cache
// blocks the paper evaluates.
const genBlock = 16

// wordSize is the reference granularity within a block.
const wordSize = 4

func (c *Config) applyDefaults() {
	if c.CPUs == 0 {
		c.CPUs = 1
	}
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.ProcsPerCPU == 0 {
		c.ProcsPerCPU = 1
	}
	if c.CodeAlpha == 0 {
		c.CodeAlpha = 0.75
	}
	if c.DataAlpha == 0 {
		c.DataAlpha = 0.55
	}
	if c.CodeWorkingSet == 0 {
		c.CodeWorkingSet = 4096
	}
	if c.DataWorkingSet == 0 {
		c.DataWorkingSet = 8192
	}
	if c.SeqRunProb == 0 {
		c.SeqRunProb = 0.8
	}
	if c.PrivateRegionPages == 0 {
		c.PrivateRegionPages = 512
	}
	if c.StackPages == 0 {
		c.StackPages = 8
	}
	if c.SharedHotBlocks == 0 {
		c.SharedHotBlocks = 64
	}
	if len(c.BurstWeights) == 0 {
		c.BurstWeights = DefaultBurstWeights()
	}
}

// Validate rejects inconsistent configurations.
func (c *Config) Validate() error {
	if c.TotalRefs < 0 {
		return fmt.Errorf("tracegen: negative TotalRefs")
	}
	if c.CPUs < 1 || c.CPUs > 15 {
		return fmt.Errorf("tracegen: CPUs %d out of range [1,15]", c.CPUs)
	}
	if !addr.IsPow2(c.PageSize) {
		return fmt.Errorf("tracegen: page size %d not a power of two", c.PageSize)
	}
	sum := c.InstrFrac + c.ReadFrac + c.WriteFrac
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("tracegen: reference mix sums to %v, want 1", sum)
	}
	if c.SharedFrac < 0 || c.SharedFrac > 1 || c.SharedWriteFrac < 0 || c.SharedWriteFrac > 1 {
		return fmt.Errorf("tracegen: sharing fractions out of range")
	}
	return nil
}

// DefaultBurstWeights reproduces the shape of the paper's Table 1: calls
// overwhelmingly write 6-12 words, peaked at 6 and 9, with a rare 16.
func DefaultBurstWeights() []BurstWeight {
	return []BurstWeight{
		{6, 0.37}, {7, 0.11}, {8, 0.11}, {9, 0.24},
		{10, 0.07}, {11, 0.05}, {12, 0.04}, {16, 0.01},
	}
}

// Virtual address space layout per process (block-aligned regions):
//
//	code    at 0x0100_0000
//	stack   at 0x7000_0000 (grows down from the top of the region)
//	data    at 0x2000_0000
//	shared  at 0x4000_0000 + pid * sharedStride
const (
	codeBase   = 0x0100_0000
	dataBase   = 0x2000_0000
	sharedVA   = 0x4000_0000
	stackBase  = 0x7000_0000
	sharedStep = 0x0100_0000 // per-PID offset; distinct bases create synonyms
)

// SharedBase returns the virtual base at which process pid maps the shared
// segment. Bases differ per process so that the same physical data appears
// under different virtual addresses — the synonym source.
func (c *Config) SharedBase(pid addr.PID) addr.VAddr {
	return addr.VAddr(sharedVA + uint64(pid)*sharedStep)
}

// PIDFor returns the process ids scheduled on a CPU, in rotation order.
func (c *Config) PIDFor(cpu, slot int) addr.PID {
	return addr.PID(cpu*c.ProcsPerCPU + slot + 1)
}

// NumProcs returns the total number of processes in the workload.
func (c *Config) NumProcs() int { return c.CPUs * c.ProcsPerCPU }

// SetupSharedMappings maps the shared segment into every process's address
// space. Both the generator and any simulator replaying a saved trace must
// apply it to the same MMU layout.
func (c *Config) SetupSharedMappings(mmu *vm.MMU) error {
	cc := *c
	cc.applyDefaults()
	if cc.SharedPages == 0 {
		return nil
	}
	seg := mmu.NewSegment(uint64(cc.SharedPages) * cc.PageSize)
	for cpu := 0; cpu < cc.CPUs; cpu++ {
		for slot := 0; slot < cc.ProcsPerCPU; slot++ {
			pid := cc.PIDFor(cpu, slot)
			if err := mmu.MapShared(pid, cc.SharedBase(pid), seg); err != nil {
				return err
			}
		}
	}
	return nil
}

// Signature returns a stable fingerprint of the (default-applied)
// configuration. Checkpoints store it so a restore can verify it is
// resuming the same deterministic workload the checkpoint came from.
func (c *Config) Signature() string {
	cc := *c
	cc.applyDefaults()
	return fmt.Sprintf("tracegen/v1:%+v", cc)
}

// mtfStack is an approximate LRU stack of block numbers (most recent
// first), the substrate of the stack-distance locality model.
type mtfStack struct {
	blocks []uint64
	max    int
}

func (s *mtfStack) touch(d int) uint64 {
	b := s.blocks[d]
	copy(s.blocks[1:d+1], s.blocks[:d])
	s.blocks[0] = b
	return b
}

func (s *mtfStack) push(b uint64) {
	if len(s.blocks) < s.max {
		s.blocks = append(s.blocks, 0)
	}
	copy(s.blocks[1:], s.blocks)
	s.blocks[0] = b
}

// stream is one locality-modelled reference stream (code, data or shared).
type stream struct {
	hot    mtfStack
	alpha  float64
	base   addr.VAddr
	blocks uint64 // region size in blocks
}

func newStream(base addr.VAddr, bytes uint64, ws int, alpha float64) *stream {
	return &stream{
		hot:    mtfStack{max: ws},
		alpha:  alpha,
		base:   base,
		blocks: bytes / genBlock,
	}
}

// next returns the next block address of the stream: a Pareto-distributed
// LRU stack depth when it lands inside the hot list, otherwise a uniform
// cold block from the region.
func (s *stream) next(rng *rand.Rand) addr.VAddr {
	d := int(math.Pow(rng.Float64(), -1/s.alpha)) - 1
	var b uint64
	if d < len(s.hot.blocks) {
		b = s.hot.touch(d)
	} else {
		b = rng.Uint64() % s.blocks
		s.hot.push(b)
	}
	return s.base + addr.VAddr(b*genBlock+uint64(rng.Intn(genBlock/wordSize))*wordSize)
}

// process is the mutable state of one simulated process.
type process struct {
	pid  addr.PID
	code *stream
	data *stream
	pc   addr.VAddr
	sp   addr.VAddr
}

// cpuState drives one processor's reference stream.
type cpuState struct {
	procs    []*process
	cur      int
	rng      *rand.Rand
	pending  []trace.Ref // queued refs (write bursts)
	sinceCtx int
	needsCtx bool
}

// Generator produces the trace; it implements trace.Reader.
type Generator struct {
	cfg     Config
	cpus    []*cpuState
	emitted int
	nextCPU int

	writesPerCall *stats.Histogram
	chars         trace.Characteristics
}

// New builds a generator. Call Config.SetupSharedMappings on the target
// system's MMU before running the trace when SharedPages > 0.
func New(cfg Config) (*Generator, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:           cfg,
		writesPerCall: stats.NewHistogram("writes-per-call", 17),
	}
	for cpu := 0; cpu < cfg.CPUs; cpu++ {
		cs := &cpuState{rng: rand.New(rand.NewSource(cfg.Seed + int64(cpu)*7919))}
		for slot := 0; slot < cfg.ProcsPerCPU; slot++ {
			pid := cfg.PIDFor(cpu, slot)
			p := &process{
				pid:  pid,
				code: newStream(codeBase, uint64(cfg.CodeWorkingSet)*genBlock*4, cfg.CodeWorkingSet, cfg.CodeAlpha),
				data: newStream(dataBase, uint64(cfg.PrivateRegionPages)*cfg.PageSize, cfg.DataWorkingSet, cfg.DataAlpha),
				pc:   codeBase,
				sp:   stackBase + addr.VAddr(cfg.StackPages)*addr.VAddr(cfg.PageSize),
			}
			cs.procs = append(cs.procs, p)
		}
		g.cpus = append(g.cpus, cs)
	}
	return g, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Generator {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Config returns the generator's (default-applied) configuration.
func (g *Generator) Config() Config { return g.cfg }

// WritesPerCall returns the Table 1 histogram of the trace generated so
// far.
func (g *Generator) WritesPerCall() *stats.Histogram { return g.writesPerCall }

// Characteristics returns the Table 5 summary of the trace generated so
// far.
func (g *Generator) Characteristics() trace.Characteristics { return g.chars }

// Next implements trace.Reader. CPUs are interleaved round-robin;
// context-switch records are emitted in-band and do not count against
// TotalRefs.
func (g *Generator) Next() (trace.Ref, error) {
	if g.emitted >= g.cfg.TotalRefs {
		return trace.Ref{}, io.EOF
	}
	cpu := g.nextCPU
	g.nextCPU = (g.nextCPU + 1) % g.cfg.CPUs
	cs := g.cpus[cpu]

	if cs.needsCtx {
		cs.needsCtx = false
		cs.sinceCtx = 0
		cs.cur = (cs.cur + 1) % len(cs.procs)
		ref := trace.Ref{CPU: uint8(cpu), Kind: trace.CtxSwitch, PID: cs.procs[cs.cur].pid}
		g.chars.Observe(ref)
		return ref, nil
	}

	ref := g.genRef(cpu, cs)
	g.emitted++
	cs.sinceCtx++
	if g.cfg.CtxSwitchInterval > 0 && len(cs.procs) > 1 && cs.sinceCtx >= g.cfg.CtxSwitchInterval {
		cs.needsCtx = true
	}
	g.chars.Observe(ref)
	return ref, nil
}

// ReadBatch implements trace.BatchReader: it fills dst with successive
// records, amortizing the per-record interface dispatch when the generator
// feeds the sweep engine's broadcast loop.
func (g *Generator) ReadBatch(dst []trace.Ref) (int, error) {
	n := 0
	for n < len(dst) {
		ref, err := g.Next()
		if err != nil {
			if errors.Is(err, io.EOF) && n > 0 {
				return n, nil
			}
			return n, err
		}
		dst[n] = ref
		n++
	}
	return n, nil
}

func (g *Generator) genRef(cpu int, cs *cpuState) trace.Ref {
	if len(cs.pending) > 0 {
		ref := cs.pending[0]
		cs.pending = cs.pending[1:]
		return ref
	}
	p := cs.procs[cs.cur]
	rng := cs.rng
	r := rng.Float64()
	switch {
	case r < g.cfg.InstrFrac:
		return g.genInstr(cpu, cs, p)
	case r < g.cfg.InstrFrac+g.cfg.WriteFrac:
		return g.genData(cpu, p, rng, true)
	default:
		return g.genData(cpu, p, rng, false)
	}
}

// genInstr advances the PC: usually sequentially, sometimes jumping via the
// code locality model, occasionally calling (which queues a stack write
// burst).
func (g *Generator) genInstr(cpu int, cs *cpuState, p *process) trace.Ref {
	rng := cs.rng
	switch {
	case rng.Float64() < g.cfg.CallProb:
		// Call: jump far, push a frame of writes.
		p.pc = p.code.next(rng)
		n := g.burstSize(rng)
		g.writesPerCall.Observe(n)
		frame := addr.VAddr(((n*wordSize)/genBlock + 1) * genBlock)
		if p.sp < stackBase+frame {
			p.sp = stackBase + addr.VAddr(g.cfg.StackPages)*addr.VAddr(g.cfg.PageSize)
		}
		p.sp -= frame
		for i := 0; i < n; i++ {
			cs.pending = append(cs.pending, trace.Ref{
				CPU:  uint8(cpu),
				Kind: trace.Write,
				PID:  p.pid,
				Addr: p.sp + addr.VAddr(i*wordSize),
			})
		}
	case rng.Float64() < g.cfg.SeqRunProb:
		p.pc += wordSize
	default:
		p.pc = p.code.next(rng)
	}
	return trace.Ref{CPU: uint8(cpu), Kind: trace.IFetch, PID: p.pid, Addr: p.pc}
}

func (g *Generator) genData(cpu int, p *process, rng *rand.Rand, write bool) trace.Ref {
	kind := trace.Read
	if write {
		kind = trace.Write
	}
	var va addr.VAddr
	if g.cfg.SharedPages > 0 && rng.Float64() < g.cfg.SharedFrac {
		va = g.sharedRef(p, rng)
		if rng.Float64() < g.cfg.SharedWriteFrac {
			kind = trace.Write
		} else {
			kind = trace.Read
		}
	} else {
		va = p.data.next(rng)
	}
	return trace.Ref{CPU: uint8(cpu), Kind: kind, PID: p.pid, Addr: va}
}

// sharedRef picks a block of the shared segment. The hot set is global —
// every process contends on the same first SharedHotBlocks blocks — so
// read/write sharing actually collides across CPUs, generating the
// invalidation and flush traffic of Tables 11-13. The cold remainder of
// the segment models bulk shared data.
func (g *Generator) sharedRef(p *process, rng *rand.Rand) addr.VAddr {
	totalBlocks := uint64(g.cfg.SharedPages) * g.cfg.PageSize / genBlock
	var b uint64
	if rng.Float64() < 0.85 {
		hot := uint64(g.cfg.SharedHotBlocks)
		if hot > totalBlocks {
			hot = totalBlocks
		}
		b = rng.Uint64() % hot
	} else {
		b = rng.Uint64() % totalBlocks
	}
	return g.cfg.SharedBase(p.pid) + addr.VAddr(b*genBlock+uint64(rng.Intn(genBlock/wordSize))*wordSize)
}

func (g *Generator) burstSize(rng *rand.Rand) int {
	var total float64
	for _, w := range g.cfg.BurstWeights {
		total += w.Weight
	}
	r := rng.Float64() * total
	for _, w := range g.cfg.BurstWeights {
		r -= w.Weight
		if r <= 0 {
			return w.Writes
		}
	}
	return g.cfg.BurstWeights[len(g.cfg.BurstWeights)-1].Writes
}
