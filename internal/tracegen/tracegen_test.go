package tracegen

import (
	"errors"
	"io"
	"math"
	"testing"

	"repro/internal/trace"
	"repro/internal/vm"
)

func tinyConfig() Config {
	return Config{
		Name:              "tiny",
		CPUs:              2,
		PageSize:          4096,
		TotalRefs:         20_000,
		Seed:              42,
		InstrFrac:         0.5,
		ReadFrac:          0.4,
		WriteFrac:         0.1,
		ProcsPerCPU:       2,
		CtxSwitchInterval: 1000,
		CallProb:          0.01,
		SharedPages:       4,
		SharedFrac:        0.1,
		SharedWriteFrac:   0.2,
	}
}

func TestGeneratesRequestedCount(t *testing.T) {
	g := MustNew(tinyConfig())
	c, err := trace.Summarize(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalRefs != 20_000 {
		t.Fatalf("TotalRefs = %d", c.TotalRefs)
	}
	if c.CPUs != 2 {
		t.Errorf("CPUs = %d", c.CPUs)
	}
	if c.CtxSwitches == 0 {
		t.Error("no context switches generated")
	}
}

func TestDeterministic(t *testing.T) {
	a, _ := trace.ReadAll(MustNew(tinyConfig()))
	b, _ := trace.ReadAll(MustNew(tinyConfig()))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := tinyConfig()
	a, _ := trace.ReadAll(MustNew(cfg))
	cfg.Seed = 43
	b, _ := trace.ReadAll(MustNew(cfg))
	same := 0
	for i := range a {
		if i < len(b) && a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical traces")
	}
}

func TestReferenceMix(t *testing.T) {
	cfg := tinyConfig()
	cfg.TotalRefs = 200_000
	cfg.SharedFrac = 0 // sharing perturbs the read/write split
	g := MustNew(cfg)
	c, err := trace.Summarize(g)
	if err != nil {
		t.Fatal(err)
	}
	instr := float64(c.Instrs) / float64(c.TotalRefs)
	// Burst writes inflate the write share beyond the mix fraction, and
	// instruction share lands slightly under the configured value.
	if math.Abs(instr-0.5) > 0.05 {
		t.Errorf("instruction fraction = %v, want ~0.5", instr)
	}
	writes := float64(c.Writes) / float64(c.TotalRefs)
	if writes < 0.1 || writes > 0.2 {
		t.Errorf("write fraction = %v, want bursts to lift it above 0.1", writes)
	}
}

func TestCallBurstsMatchTable1Shape(t *testing.T) {
	cfg := tinyConfig()
	cfg.TotalRefs = 300_000
	g := MustNew(cfg)
	if _, err := trace.Summarize(g); err != nil {
		t.Fatal(err)
	}
	h := g.WritesPerCall()
	if h.Total() == 0 {
		t.Fatal("no calls recorded")
	}
	// Table 1: 6 and 9 dominate; nothing below 6 in practice; 16 is rare.
	if h.Count(6) == 0 || h.Count(9) == 0 {
		t.Error("dominant burst sizes missing")
	}
	if h.Count(6) < h.Count(10) {
		t.Error("burst size 6 should dominate 10")
	}
	if h.Count(3) != 0 {
		t.Error("unexpected burst size 3 with default weights")
	}
	mean := h.Mean()
	if mean < 6 || mean > 12 {
		t.Errorf("mean burst = %v, want 6..12", mean)
	}
}

func TestContextSwitchCadence(t *testing.T) {
	cfg := tinyConfig()
	cfg.CtxSwitchInterval = 500
	cfg.TotalRefs = 10_000
	g := MustNew(cfg)
	c, _ := trace.Summarize(g)
	// 5000 refs per CPU / 500 = ~10 switches per CPU.
	if c.CtxSwitches < 15 || c.CtxSwitches > 25 {
		t.Errorf("CtxSwitches = %d, want ~20", c.CtxSwitches)
	}
	// PIDs rotate among each CPU's processes.
	if c.DistinctPIDs != 4 {
		t.Errorf("DistinctPIDs = %d, want 4", c.DistinctPIDs)
	}
}

func TestNoSwitchesWithoutInterval(t *testing.T) {
	cfg := tinyConfig()
	cfg.CtxSwitchInterval = 0
	g := MustNew(cfg)
	c, _ := trace.Summarize(g)
	if c.CtxSwitches != 0 {
		t.Errorf("CtxSwitches = %d, want 0", c.CtxSwitches)
	}
}

func TestSharedMappingsCreateSynonyms(t *testing.T) {
	cfg := tinyConfig()
	mmu := vm.MustNew(cfg.PageSize)
	if err := cfg.SetupSharedMappings(mmu); err != nil {
		t.Fatal(err)
	}
	// All four processes see the same physical page under different VAs.
	cfgD := cfg
	cfgD.applyDefaults()
	pa1 := mmu.Translate(cfgD.PIDFor(0, 0), cfgD.SharedBase(cfgD.PIDFor(0, 0)))
	pa2 := mmu.Translate(cfgD.PIDFor(1, 1), cfgD.SharedBase(cfgD.PIDFor(1, 1)))
	if pa1 != pa2 {
		t.Fatal("shared segment not aliased across processes")
	}
	if cfgD.SharedBase(1) == cfgD.SharedBase(2) {
		t.Fatal("shared bases must differ per process")
	}
}

func TestSetupSharedMappingsNoop(t *testing.T) {
	cfg := tinyConfig()
	cfg.SharedPages = 0
	mmu := vm.MustNew(cfg.PageSize)
	if err := cfg.SetupSharedMappings(mmu); err != nil {
		t.Fatal(err)
	}
	if mmu.FramesInUse() != 0 {
		t.Error("no-op setup allocated frames")
	}
}

func TestRefsAreWellFormed(t *testing.T) {
	cfg := tinyConfig()
	cfg.TotalRefs = 50_000
	g := MustNew(cfg)
	for {
		ref, err := g.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if int(ref.CPU) >= cfg.CPUs {
			t.Fatalf("ref on CPU %d", ref.CPU)
		}
		if ref.PID == 0 {
			t.Fatal("ref with PID 0")
		}
		if ref.Kind.IsMemory() && ref.Addr%4 != 0 {
			t.Fatalf("unaligned address %#x", uint64(ref.Addr))
		}
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.TotalRefs = -1 },
		func(c *Config) { c.CPUs = 16 },
		func(c *Config) { c.PageSize = 1000 },
		func(c *Config) { c.InstrFrac = 0.9 }, // mix no longer sums to 1
		func(c *Config) { c.SharedFrac = 1.5 },
	}
	for i, tweak := range bad {
		cfg := tinyConfig()
		tweak(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) != 3 {
		t.Fatalf("presets = %d", len(ps))
	}
	names := map[string]Config{}
	for _, p := range ps {
		names[p.Name] = p
		if _, err := New(p); err != nil {
			t.Errorf("preset %s invalid: %v", p.Name, err)
		}
	}
	if names["pops"].CPUs != 4 || names["thor"].CPUs != 4 || names["abaqus"].CPUs != 2 {
		t.Error("preset CPU counts wrong")
	}
	if names["abaqus"].CtxSwitchInterval >= names["pops"].CtxSwitchInterval {
		t.Error("abaqus must switch far more often than pops")
	}
	if names["pops"].TotalRefs != 3_286_000 {
		t.Error("pops reference count wrong")
	}
}

func TestPresetByName(t *testing.T) {
	c, err := PresetByName("thor")
	if err != nil || c.Name != "thor" {
		t.Fatalf("PresetByName(thor) = %v, %v", c.Name, err)
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestScaled(t *testing.T) {
	c := PopsLike().Scaled(0.01)
	if c.TotalRefs != 32_860 {
		t.Errorf("scaled refs = %d", c.TotalRefs)
	}
	if c.CtxSwitchInterval != 4700 {
		t.Errorf("scaled interval = %d", c.CtxSwitchInterval)
	}
	tiny := PopsLike().Scaled(0.0000001)
	if tiny.CtxSwitchInterval < 1 {
		t.Error("interval must stay positive")
	}
}

func TestScaledPreservesSwitchCount(t *testing.T) {
	full := AbaqusLike()
	small := full.Scaled(0.01)
	g := MustNew(small)
	c, _ := trace.Summarize(g)
	// Full trace has ~292 switches; the scaled one should be in the same
	// ballpark since interval scales with length.
	if c.CtxSwitches < 150 || c.CtxSwitches > 500 {
		t.Errorf("scaled switches = %d, want ~292", c.CtxSwitches)
	}
}

func TestMTFStack(t *testing.T) {
	s := mtfStack{max: 3}
	s.push(1)
	s.push(2)
	s.push(3) // [3 2 1]
	if got := s.touch(2); got != 1 {
		t.Fatalf("touch(2) = %d", got)
	}
	// Now [1 3 2].
	if s.blocks[0] != 1 || s.blocks[1] != 3 || s.blocks[2] != 2 {
		t.Fatalf("stack = %v", s.blocks)
	}
	s.push(9) // trims to max: [9 1 3]
	if len(s.blocks) != 3 || s.blocks[0] != 9 || s.blocks[2] != 3 {
		t.Fatalf("stack after push = %v", s.blocks)
	}
}

func TestStreamLocality(t *testing.T) {
	// A stream with strong locality should revisit blocks often.
	cfg := tinyConfig()
	g := MustNew(cfg)
	seen := map[uint64]int{}
	p := g.cpus[0].procs[0]
	for i := 0; i < 10_000; i++ {
		va := p.data.next(g.cpus[0].rng)
		seen[uint64(va)/genBlock]++
	}
	if len(seen) >= 9_000 {
		t.Errorf("%d distinct blocks in 10k refs: no locality", len(seen))
	}
}

func TestScaledRefsOnly(t *testing.T) {
	c := AbaqusLike().ScaledRefsOnly(0.1)
	if c.TotalRefs != 119_600 {
		t.Errorf("refs = %d", c.TotalRefs)
	}
	if c.CtxSwitchInterval != AbaqusLike().CtxSwitchInterval {
		t.Error("quantum must be preserved")
	}
	g := MustNew(c)
	ch, _ := trace.Summarize(g)
	// ~119600/2 cpus / 4100 ≈ 14 switches per cpu.
	if ch.CtxSwitches < 15 || ch.CtxSwitches > 40 {
		t.Errorf("switches = %d, want ~28", ch.CtxSwitches)
	}
}
