package tracegen

import "fmt"

// The presets below model the three ATUM multiprocessor traces of the
// paper's Table 5. Reference counts, CPU counts, reference mixes and
// context-switch frequencies match the published characteristics; call
// rates are solved so that roughly 30% of writes come from procedure-call
// bursts (the paper's measurement for pops); locality parameters are
// calibrated so that first-level hit ratios land near the published Table 6
// range and scale with cache size.

// PopsLike models pops: 4 CPUs, ~3.29M references, 52% instruction
// fetches, and very rare context switches (7 in the whole trace).
func PopsLike() Config {
	return Config{
		Name:              "pops",
		CPUs:              4,
		TotalRefs:         3_286_000,
		Seed:              1001,
		InstrFrac:         0.537,
		ReadFrac:          0.401,
		WriteFrac:         0.062,
		ProcsPerCPU:       2,
		CtxSwitchInterval: 470_000,
		CallProb:          0.0062,
		CodeAlpha:         1.05,
		DataAlpha:         0.68,
		SeqRunProb:        0.92,
		SharedPages:       64,
		SharedFrac:        0.10,
		SharedWriteFrac:   0.25,
		SharedHotBlocks:   8,
	}
}

// ThorLike models thor: 4 CPUs, ~3.28M references, more writes than pops,
// 21 context switches.
func ThorLike() Config {
	return Config{
		Name:              "thor",
		CPUs:              4,
		TotalRefs:         3_283_000,
		Seed:              2002,
		InstrFrac:         0.479,
		ReadFrac:          0.438,
		WriteFrac:         0.083,
		ProcsPerCPU:       2,
		CtxSwitchInterval: 156_000,
		CallProb:          0.0093,
		CodeAlpha:         1.05,
		DataAlpha:         0.68,
		SeqRunProb:        0.92,
		SharedPages:       64,
		SharedFrac:        0.10,
		SharedWriteFrac:   0.25,
		SharedHotBlocks:   8,
	}
}

// AbaqusLike models abaqus: 2 CPUs, ~1.2M references, read-heavy, and
// frequent context switches (292 in the trace) — the workload where the
// V-cache flush penalty shows.
func AbaqusLike() Config {
	return Config{
		Name:               "abaqus",
		CPUs:               2,
		TotalRefs:          1_196_000,
		Seed:               3003,
		InstrFrac:          0.439,
		ReadFrac:           0.512,
		WriteFrac:          0.049,
		ProcsPerCPU:        3,
		CtxSwitchInterval:  4_100,
		CallProb:           0.0060,
		CodeAlpha:          0.60,
		DataAlpha:          0.42,
		SeqRunProb:         0.90,
		CodeWorkingSet:     384,
		DataWorkingSet:     320,
		PrivateRegionPages: 2048,
		SharedPages:        64,
		SharedFrac:         0.08,
		SharedWriteFrac:    0.30,
		SharedHotBlocks:    32,
	}
}

// Presets returns the three paper workloads in table order.
func Presets() []Config {
	return []Config{ThorLike(), PopsLike(), AbaqusLike()}
}

// PresetByName returns the preset with the given name.
func PresetByName(name string) (Config, error) {
	for _, c := range Presets() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("tracegen: unknown preset %q (have thor, pops, abaqus)", name)
}

// Scaled returns a copy of c with the reference count and context-switch
// interval multiplied by f, preserving the switch count and mix — for quick
// runs and tests.
func (c Config) Scaled(f float64) Config {
	out := c
	out.TotalRefs = int(float64(c.TotalRefs) * f)
	if c.CtxSwitchInterval > 0 {
		out.CtxSwitchInterval = int(float64(c.CtxSwitchInterval) * f)
		if out.CtxSwitchInterval < 1 {
			out.CtxSwitchInterval = 1
		}
	}
	return out
}

// ScaledRefsOnly shrinks only the reference count, preserving the
// context-switch quantum. Per-quantum behaviour (the V-cache flush cost)
// then matches the full-scale trace at the cost of proportionally fewer
// switches — the right trade for quick looks at switch-sensitive numbers,
// where plain Scaled would overstate the flush penalty.
func (c Config) ScaledRefsOnly(f float64) Config {
	out := c
	out.TotalRefs = int(float64(c.TotalRefs) * f)
	return out
}
