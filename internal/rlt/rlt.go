// Package rlt implements a reverse-lookup synonym table (Desai & Deshmukh,
// arXiv 2108.00444): a small set-associative, physically-indexed table
// mapping L1-block-aligned physical addresses to the first-level location
// holding that block. It is a drop-in alternative to the paper's scheme of
// storing a v-pointer in every R-cache subentry — instead of widening every
// L2 subentry, a separate bounded table carries the reverse translations,
// and is looked up in parallel with the L2 tags on a first-level miss.
//
// The trade-off the experiments measure: the table is much smaller than
// per-subentry v-pointers (its SRAM cost scales with the number of L1
// lines, not L2 subentries), but it is *capacity-limited* — when the table
// evicts an entry, the first-level line it named can no longer be found by
// reverse lookup and must be evicted too (written back first if dirty).
// Those forced evictions are the strategy's extra misses and bus traffic.
//
// The table mirrors the first level exactly: one entry per present L1 line,
// inserted on fill and removed on invalidation, so lookup hits are
// authoritative. Audit's RLT-reciprocity invariant checks the mirror.
package rlt

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/rcache"
)

// Entry is one reverse translation: the L1-block-aligned physical address
// and the first-level location holding the block.
type Entry struct {
	PA addr.PAddr
	VP rcache.VPtr
}

type slot struct {
	pa    addr.PAddr
	vp    rcache.VPtr
	stamp uint64
	valid bool
}

// Table is a set-associative reverse-lookup table with LRU replacement.
type Table struct {
	slots      []slot // sets × ways, row-major
	ways       int
	setMask    uint64
	blockShift uint
	clock      uint64
	live       int
}

// DefaultAssoc is the associativity used when the configuration leaves it
// zero, clamped to the entry count.
const DefaultAssoc = 4

// New builds a table with the given total entry count and associativity;
// assoc <= 0 selects DefaultAssoc (clamped to entries). The set count
// (entries/assoc) must be a power of two. l1Block is the first-level block
// size the table is indexed by.
func New(entries, assoc int, l1Block uint64) (*Table, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("rlt: entries must be positive, got %d", entries)
	}
	if assoc <= 0 {
		assoc = DefaultAssoc
	}
	if assoc > entries {
		assoc = entries
	}
	if entries%assoc != 0 {
		return nil, fmt.Errorf("rlt: %d entries not divisible by associativity %d", entries, assoc)
	}
	sets := entries / assoc
	if !addr.IsPow2(uint64(sets)) {
		return nil, fmt.Errorf("rlt: set count %d (entries %d / assoc %d) is not a power of two", sets, entries, assoc)
	}
	if !addr.IsPow2(l1Block) {
		return nil, fmt.Errorf("rlt: L1 block size %d is not a power of two", l1Block)
	}
	return &Table{
		slots:      make([]slot, entries),
		ways:       assoc,
		setMask:    uint64(sets - 1),
		blockShift: addr.MustLog2(l1Block),
	}, nil
}

// Cap returns the total entry count (0 when the table is nil/disabled).
func (t *Table) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// Len returns the number of live entries.
func (t *Table) Len() int {
	if t == nil {
		return 0
	}
	return t.live
}

func (t *Table) row(pa addr.PAddr) []slot {
	set := (uint64(pa) >> t.blockShift) & t.setMask
	base := int(set) * t.ways
	return t.slots[base : base+t.ways]
}

// Lookup finds the first-level location of the block at pa (L1-block
// aligned), refreshing its recency on a hit.
func (t *Table) Lookup(pa addr.PAddr) (rcache.VPtr, bool) {
	if t == nil {
		return rcache.VPtr{}, false
	}
	row := t.row(pa)
	for i := range row {
		if row[i].valid && row[i].pa == pa {
			t.clock++
			row[i].stamp = t.clock
			return row[i].vp, true
		}
	}
	return rcache.VPtr{}, false
}

// Insert records that the block at pa now lives at vp. A same-address
// entry is updated in place. When the set is full, the least-recently-used
// entry is evicted and returned: its first-level line can no longer be
// found by reverse lookup, so the caller must evict it from the first
// level too.
func (t *Table) Insert(pa addr.PAddr, vp rcache.VPtr) (Entry, bool) {
	if t == nil {
		return Entry{}, false
	}
	row := t.row(pa)
	victim, found := -1, false
	for i := range row {
		if row[i].valid && row[i].pa == pa {
			t.clock++
			row[i].vp = vp
			row[i].stamp = t.clock
			return Entry{}, false
		}
		if !row[i].valid && victim < 0 {
			victim = i
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(row); i++ {
			if row[i].stamp < row[victim].stamp {
				victim = i
			}
		}
		found = true
	}
	evicted := Entry{PA: row[victim].pa, VP: row[victim].vp}
	t.clock++
	row[victim] = slot{pa: pa, vp: vp, stamp: t.clock, valid: true}
	if !found {
		t.live++
	}
	return evicted, found
}

// Remove drops the entry for pa, if present (the first-level line was
// invalidated or evicted through the normal paths).
func (t *Table) Remove(pa addr.PAddr) {
	if t == nil {
		return
	}
	row := t.row(pa)
	for i := range row {
		if row[i].valid && row[i].pa == pa {
			row[i] = slot{}
			t.live--
			return
		}
	}
}

// ForEach visits every live entry in (set, way) order.
func (t *Table) ForEach(fn func(Entry)) {
	if t == nil {
		return
	}
	for i := range t.slots {
		if t.slots[i].valid {
			fn(Entry{PA: t.slots[i].pa, VP: t.slots[i].vp})
		}
	}
}

// SlotState is one serialized slot.
type SlotState struct {
	PA     uint64
	VCache int
	VSet   int
	VWay   int
	Stamp  uint64
	Valid  bool
}

// State is the canonical serialized form of a table.
type State struct {
	Slots []SlotState
	Clock uint64
}

// ExportState captures the full table state; nil tables export nil.
func (t *Table) ExportState() *State {
	if t == nil {
		return nil
	}
	s := &State{Slots: make([]SlotState, len(t.slots)), Clock: t.clock}
	for i, sl := range t.slots {
		s.Slots[i] = SlotState{
			PA:     uint64(sl.pa),
			VCache: sl.vp.Cache,
			VSet:   sl.vp.Set,
			VWay:   sl.vp.Way,
			Stamp:  sl.stamp,
			Valid:  sl.valid,
		}
	}
	return s
}

// RestoreState restores a state captured by ExportState on an identically
// shaped table.
func (t *Table) RestoreState(s *State) error {
	if t == nil {
		if s == nil {
			return nil
		}
		return fmt.Errorf("rlt: state for a disabled table")
	}
	if s == nil {
		return fmt.Errorf("rlt: missing table state")
	}
	if len(s.Slots) != len(t.slots) {
		return fmt.Errorf("rlt: slot count %d, table has %d", len(s.Slots), len(t.slots))
	}
	live := 0
	for i, sl := range s.Slots {
		t.slots[i] = slot{
			pa:    addr.PAddr(sl.PA),
			vp:    rcache.VPtr{Cache: sl.VCache, Set: sl.VSet, Way: sl.VWay},
			stamp: sl.Stamp,
			valid: sl.Valid,
		}
		if sl.Valid {
			live++
		}
	}
	t.clock = s.Clock
	t.live = live
	return nil
}
