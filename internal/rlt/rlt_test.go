package rlt

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/rcache"
)

func vp(c, s, w int) rcache.VPtr { return rcache.VPtr{Cache: c, Set: s, Way: w} }

func TestNilTableIsDisabled(t *testing.T) {
	var tab *Table
	if tab.Cap() != 0 || tab.Len() != 0 {
		t.Fatalf("nil table reports cap %d len %d", tab.Cap(), tab.Len())
	}
	if _, ok := tab.Lookup(0x100); ok {
		t.Fatal("nil table produced a hit")
	}
	if _, ev := tab.Insert(0x100, vp(0, 1, 2)); ev {
		t.Fatal("nil table evicted")
	}
	tab.Remove(0x100)
	tab.ForEach(func(Entry) { t.Fatal("nil table visited an entry") })
	if tab.ExportState() != nil {
		t.Fatal("nil table exported state")
	}
	if err := tab.RestoreState(nil); err != nil {
		t.Fatalf("nil table rejects nil state: %v", err)
	}
	if err := tab.RestoreState(&State{}); err == nil {
		t.Fatal("nil table accepted non-nil state")
	}
}

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct {
		entries, assoc int
		block          uint64
		ok             bool
	}{
		{0, 0, 16, false},  // no entries
		{8, 0, 16, true},   // default assoc
		{8, 3, 16, false},  // not divisible
		{24, 4, 16, false}, // sets not pow2
		{8, 4, 12, false},  // block not pow2
		{2, 0, 16, true},   // assoc clamps to entries
	} {
		_, err := New(tc.entries, tc.assoc, tc.block)
		if (err == nil) != tc.ok {
			t.Errorf("New(%d,%d,%d): err = %v, want ok=%v", tc.entries, tc.assoc, tc.block, err, tc.ok)
		}
	}
}

func TestLookupInsertRemove(t *testing.T) {
	tab, err := New(8, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tab.Lookup(0x100); ok {
		t.Fatal("hit in an empty table")
	}
	if _, ev := tab.Insert(0x100, vp(0, 3, 1)); ev {
		t.Fatal("insert into empty set evicted")
	}
	got, ok := tab.Lookup(0x100)
	if !ok || got != vp(0, 3, 1) {
		t.Fatalf("Lookup = %v,%v", got, ok)
	}
	// Same-address insert updates in place.
	if _, ev := tab.Insert(0x100, vp(1, 2, 0)); ev {
		t.Fatal("same-address insert evicted")
	}
	if got, _ := tab.Lookup(0x100); got != vp(1, 2, 0) {
		t.Fatalf("updated Lookup = %v", got)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
	tab.Remove(0x100)
	if _, ok := tab.Lookup(0x100); ok || tab.Len() != 0 {
		t.Fatal("entry survived Remove")
	}
}

func TestLRUEviction(t *testing.T) {
	// 4 entries, 2 ways -> 2 sets; block 16. Addresses 0x00 and 0x40 land
	// in set 0, 0x10 and 0x50 in set 1.
	tab, err := New(4, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	tab.Insert(0x00, vp(0, 0, 0))
	tab.Insert(0x40, vp(0, 0, 1))
	tab.Lookup(0x00) // make 0x40 the LRU
	ev, evicted := tab.Insert(0x80, vp(0, 0, 2))
	if !evicted || ev.PA != 0x40 || ev.VP != vp(0, 0, 1) {
		t.Fatalf("evicted %+v,%v; want PA 0x40", ev, evicted)
	}
	if _, ok := tab.Lookup(0x00); !ok {
		t.Fatal("recently-used entry was evicted")
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d after full-set insert", tab.Len())
	}
}

func TestForEachOrder(t *testing.T) {
	tab, err := New(4, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	tab.Insert(0x10, vp(0, 1, 0)) // set 1
	tab.Insert(0x00, vp(0, 0, 0)) // set 0
	var got []addr.PAddr
	tab.ForEach(func(e Entry) { got = append(got, e.PA) })
	if len(got) != 2 || got[0] != 0x00 || got[1] != 0x10 {
		t.Fatalf("ForEach order = %v, want set-major [0x0 0x10]", got)
	}
}

func TestStateRoundTrip(t *testing.T) {
	tab, err := New(4, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	tab.Insert(0x00, vp(0, 0, 0))
	tab.Insert(0x40, vp(0, 0, 1))
	tab.Lookup(0x00)
	s := tab.ExportState()

	r, _ := New(4, 2, 16)
	if err := r.RestoreState(s); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if r.Len() != tab.Len() {
		t.Fatalf("restored Len = %d want %d", r.Len(), tab.Len())
	}
	// LRU behaviour must continue identically.
	e1, _ := tab.Insert(0x80, vp(0, 0, 2))
	e2, _ := r.Insert(0x80, vp(0, 0, 2))
	if e1 != e2 {
		t.Fatalf("post-restore eviction diverged: %+v vs %+v", e1, e2)
	}
}

func TestRestoreStateRejectsMismatch(t *testing.T) {
	tab, _ := New(4, 2, 16)
	if err := tab.RestoreState(nil); err == nil {
		t.Fatal("accepted nil state on a live table")
	}
	if err := tab.RestoreState(&State{Slots: make([]SlotState, 2)}); err == nil {
		t.Fatal("accepted wrong slot count")
	}
}
