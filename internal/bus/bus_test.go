package bus

import (
	"strings"
	"testing"
)

// fakeSnooper records transactions and returns a canned response.
type fakeSnooper struct {
	seen []Txn
	resp SnoopResult
}

func (f *fakeSnooper) SnoopBus(t Txn) SnoopResult {
	f.seen = append(f.seen, t)
	return f.resp
}

func TestAttachIDs(t *testing.T) {
	b := New()
	a := b.Attach(&fakeSnooper{})
	c := b.Attach(&fakeSnooper{})
	if a != 0 || c != 1 {
		t.Errorf("ids = %d, %d", a, c)
	}
	if b.Snoopers() != 2 {
		t.Errorf("Snoopers = %d", b.Snoopers())
	}
}

func TestIssueSkipsIssuer(t *testing.T) {
	b := New()
	s0, s1, s2 := &fakeSnooper{}, &fakeSnooper{}, &fakeSnooper{}
	b.Attach(s0)
	b.Attach(s1)
	b.Attach(s2)
	b.Issue(Txn{Kind: Read, From: 1, Addr: 0x100, Size: 32})
	if len(s1.seen) != 0 {
		t.Error("issuer snooped its own transaction")
	}
	if len(s0.seen) != 1 || len(s2.seen) != 1 {
		t.Error("other snoopers missed the transaction")
	}
	if s0.seen[0].Addr != 0x100 || s0.seen[0].Size != 32 {
		t.Error("transaction fields mangled")
	}
}

func TestIssueAggregates(t *testing.T) {
	b := New()
	b.Attach(&fakeSnooper{resp: SnoopResult{Shared: true}})
	b.Attach(&fakeSnooper{resp: SnoopResult{}})
	b.Attach(&fakeSnooper{resp: SnoopResult{Supplied: true}})
	got := b.Issue(Txn{Kind: Read, From: 1})
	if !got.Shared || !got.Supplied {
		t.Errorf("aggregate = %+v", got)
	}
}

func TestIssueNoSharers(t *testing.T) {
	b := New()
	b.Attach(&fakeSnooper{})
	b.Attach(&fakeSnooper{})
	got := b.Issue(Txn{Kind: ReadMod, From: 0})
	if got.Shared || got.Supplied {
		t.Errorf("aggregate = %+v, want empty", got)
	}
}

func TestStatsCounting(t *testing.T) {
	b := New()
	b.Attach(&fakeSnooper{resp: SnoopResult{Supplied: true}})
	b.Attach(&fakeSnooper{})
	b.Issue(Txn{Kind: Read, From: 1})
	b.Issue(Txn{Kind: Read, From: 1})
	b.Issue(Txn{Kind: Invalidate, From: 1})
	s := b.Stats()
	if s.Count(Read) != 2 || s.Count(Invalidate) != 1 || s.Count(ReadMod) != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.Total() != 3 {
		t.Errorf("Total = %d", s.Total())
	}
	// The fake supplies on every transaction; the bus counts what snoopers
	// report (real hierarchies never supply on Invalidate).
	if s.Supplies != 3 {
		t.Errorf("Supplies = %d, want 3", s.Supplies)
	}
}

func TestBadKindPanics(t *testing.T) {
	b := New()
	defer func() {
		if recover() == nil {
			t.Fatal("bad kind did not panic")
		}
	}()
	b.Issue(Txn{Kind: Kind(99)})
}

func TestKindString(t *testing.T) {
	if Read.String() != "read-miss" ||
		ReadMod.String() != "read-modified-write" ||
		Invalidate.String() != "invalidation" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(7).String(), "7") {
		t.Error("unknown kind should include number")
	}
}

func TestSingleSnooperBus(t *testing.T) {
	// A uniprocessor bus: transactions see no other snoopers.
	b := New()
	b.Attach(&fakeSnooper{resp: SnoopResult{Shared: true}})
	got := b.Issue(Txn{Kind: Read, From: 0})
	if got.Shared {
		t.Error("issuer's own response leaked into aggregate")
	}
}
