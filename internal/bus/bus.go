// Package bus models the shared snooping bus connecting the per-processor
// cache hierarchies (Figure 1 of the paper). It carries the three coherence
// transactions of the paper's invalidation protocol — read-miss,
// read-modified-write and invalidation — delivers each to every other
// hierarchy's snooper, and aggregates the sharing/supply responses.
package bus

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/probe"
)

// Kind classifies a bus transaction.
type Kind int

// Transaction kinds (the paper's invalidation protocol).
const (
	Read       Kind = iota // read-miss: fetch a block, others may keep shared copies
	ReadMod                // read-modified-write: fetch with intent to write; others invalidate
	Invalidate             // write hit on shared: others invalidate, no data transfer
	Update                 // write-update protocol: others refresh their copies
	numKinds
)

// String returns the transaction kind's name.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read-miss"
	case ReadMod:
		return "read-modified-write"
	case Invalidate:
		return "invalidation"
	case Update:
		return "update"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Txn is one bus transaction, covering the physical byte range
// [Addr, Addr+Size) — the requester's L2 block.
type Txn struct {
	Kind Kind
	From int // issuing snooper id
	Addr addr.PAddr
	Size uint64
	// Token carries the written data of an Update transaction (the
	// simulator's per-block data token).
	Token uint64
}

// SnoopResult is one snooper's (or the aggregate) response.
type SnoopResult struct {
	Shared   bool // responder retains a copy of (part of) the block
	Supplied bool // responder held modified data and flushed it to memory
}

// merge folds o into r.
func (r *SnoopResult) merge(o SnoopResult) {
	r.Shared = r.Shared || o.Shared
	r.Supplied = r.Supplied || o.Supplied
}

// Snooper is a cache hierarchy's bus-facing interface. SnoopBus must
// tolerate transactions covering any byte range.
type Snooper interface {
	SnoopBus(t Txn) SnoopResult
}

// Stats counts bus activity.
type Stats struct {
	ByKind   [numKinds]uint64
	Supplies uint64 // transactions answered by another cache's modified data
}

// Total returns the number of transactions of all kinds.
func (s Stats) Total() uint64 {
	var t uint64
	for _, v := range s.ByKind {
		t += v
	}
	return t
}

// Count returns the number of transactions of kind k.
func (s Stats) Count(k Kind) uint64 { return s.ByKind[k] }

// Timer observes every transaction before it is snooped, so a timing model
// can arbitrate the bus as a shared resource: charge the requester any
// queueing delay and account the transaction's occupancy. internal/cycles
// implements it.
type Timer interface {
	OnTxn(t Txn)
}

// Bus is the shared bus. It is not safe for concurrent use; the simulator
// is reference-serial by design.
type Bus struct {
	snoopers []Snooper
	stats    Stats
	pr       *probe.Probe
	timer    Timer
}

// New creates an empty bus.
func New() *Bus { return &Bus{} }

// SetProbe attaches an event probe (nil disables emission).
func (b *Bus) SetProbe(p *probe.Probe) { b.pr = p }

// SetTimer attaches a cycle-accounting timer (nil disables timing).
func (b *Bus) SetTimer(t Timer) { b.timer = t }

// busEventKind maps a transaction kind to its probe event.
var busEventKind = [numKinds]probe.Kind{
	Read:       probe.EvBusRead,
	ReadMod:    probe.EvBusReadMod,
	Invalidate: probe.EvBusInvalidate,
	Update:     probe.EvBusUpdate,
}

// Attach registers a snooper and returns its id, which the snooper must use
// as Txn.From so its own transactions are not reflected back to it.
func (b *Bus) Attach(s Snooper) int {
	b.snoopers = append(b.snoopers, s)
	return len(b.snoopers) - 1
}

// Snoopers returns the number of attached snoopers.
func (b *Bus) Snoopers() int { return len(b.snoopers) }

// Stats returns a copy of the bus counters.
func (b *Bus) Stats() Stats { return b.stats }

// ResetStats zeroes the bus counters (steady-state measurement).
func (b *Bus) ResetStats() { b.stats = Stats{} }

// RestoreStats replaces the bus counters (checkpoint support).
func (b *Bus) RestoreStats(s Stats) { b.stats = s }

// AddStats folds another bus's counters into this one (the shard
// stitcher's merge path).
func (b *Bus) AddStats(o Stats) {
	for i := range b.stats.ByKind {
		b.stats.ByKind[i] += o.ByKind[i]
	}
	b.stats.Supplies += o.Supplies
}

// Issue broadcasts t to every snooper except the issuer and returns the
// aggregated response.
func (b *Bus) Issue(t Txn) SnoopResult {
	if t.Kind < 0 || t.Kind >= numKinds {
		panic(fmt.Sprintf("bus: bad transaction kind %d", t.Kind))
	}
	b.stats.ByKind[t.Kind]++
	if b.timer != nil {
		// Arbitrate before snooping: any write-backs a snooper flushes in
		// response queue behind this transaction's own occupancy.
		b.timer.OnTxn(t)
	}
	if b.pr != nil {
		b.pr.Emit(probe.Event{CPU: t.From, Kind: busEventKind[t.Kind], PA: t.Addr, Aux: t.Size})
	}
	var agg SnoopResult
	for i, s := range b.snoopers {
		if i == t.From {
			continue
		}
		agg.merge(s.SnoopBus(t))
	}
	if agg.Supplied {
		b.stats.Supplies++
	}
	return agg
}
