package timemodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAccessTimePerfectL1(t *testing.T) {
	p := Params{T1: 1, T2: 4, TM: 20, H1: 1, H2: 0}
	if got := AccessTime(p); !almost(got, 1) {
		t.Errorf("Tacc = %v, want 1", got)
	}
}

func TestAccessTimeAllMemory(t *testing.T) {
	p := Params{T1: 1, T2: 4, TM: 20, H1: 0, H2: 0}
	if got := AccessTime(p); !almost(got, 20) {
		t.Errorf("Tacc = %v, want 20", got)
	}
}

func TestAccessTimeMixed(t *testing.T) {
	// h1=.9, h2=.5: .9*1 + .1*.5*4 + .05*20 = .9 + .2 + 1 = 2.1
	p := Params{T1: 1, T2: 4, TM: 20, H1: 0.9, H2: 0.5}
	if got := AccessTime(p); !almost(got, 2.1) {
		t.Errorf("Tacc = %v, want 2.1", got)
	}
}

func TestRRAccessTimeSlowdownOnlyFirstTerm(t *testing.T) {
	p := Params{T1: 1, T2: 4, TM: 20, H1: 0.9, H2: 0.5}
	base := RRAccessTime(p, 0)
	if !almost(base, AccessTime(p)) {
		t.Fatal("zero slowdown should equal AccessTime")
	}
	slowed := RRAccessTime(p, 0.10)
	if !almost(slowed-base, 0.9*1*0.10) {
		t.Errorf("slowdown delta = %v, want %v", slowed-base, 0.09)
	}
}

func TestValidate(t *testing.T) {
	good := DefaultParams(0.9, 0.5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{T1: 1, T2: 4, TM: 20, H1: 1.5, H2: 0},
		{T1: 1, T2: 4, TM: 20, H1: 0.5, H2: -0.1},
		{T1: 0, T2: 4, TM: 20, H1: 0.5, H2: 0.5},
		{T1: 1, T2: 4, TM: 0, H1: 0.5, H2: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCurveShape(t *testing.T) {
	vr := DefaultParams(0.88, 0.58)
	rr := DefaultParams(0.90, 0.50)
	pts := Curve(vr, rr, 0.10, 10)
	if len(pts) != 11 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Slowdown != 0 || !almost(pts[10].Slowdown, 0.10) {
		t.Error("endpoints wrong")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].VR != pts[0].VR {
			t.Error("VR curve should be flat")
		}
		if pts[i].RR <= pts[i-1].RR {
			t.Error("RR curve should rise with slowdown")
		}
	}
}

func TestCurveMinimumSteps(t *testing.T) {
	pts := Curve(DefaultParams(0.9, 0.5), DefaultParams(0.9, 0.5), 0.1, 0)
	if len(pts) != 2 {
		t.Errorf("steps clamp failed: %d points", len(pts))
	}
}

func TestCrossover(t *testing.T) {
	// Identical hit ratios: crossover at zero slowdown.
	p := DefaultParams(0.9, 0.5)
	if got := Crossover(p, p); !almost(got, 0) {
		t.Errorf("equal params crossover = %v, want 0", got)
	}
	// RR has better h1 (the frequent-context-switch case): crossover is a
	// positive slowdown, and access times really are equal there.
	vr := DefaultParams(0.888, 0.585)
	rr := DefaultParams(0.908, 0.498)
	s := Crossover(vr, rr)
	if s <= 0 {
		t.Fatalf("crossover = %v, want positive", s)
	}
	if !almost(RRAccessTime(rr, s), AccessTime(vr)) {
		t.Error("access times differ at the crossover point")
	}
	// VR better everywhere: negative crossover.
	if got := Crossover(rr, vr); got >= 0 {
		t.Errorf("reverse crossover = %v, want negative", got)
	}
}

func TestCrossoverDegenerate(t *testing.T) {
	rr := Params{T1: 1, T2: 4, TM: 20, H1: 0, H2: 0.5}
	if got := Crossover(DefaultParams(0.9, 0.5), rr); !math.IsInf(got, 1) {
		t.Errorf("degenerate crossover = %v, want +Inf", got)
	}
}

func TestSpeedupAt(t *testing.T) {
	p := DefaultParams(0.9, 0.5)
	if got := SpeedupAt(p, p, 0); !almost(got, 1) {
		t.Errorf("speedup = %v, want 1", got)
	}
	if got := SpeedupAt(p, p, 0.1); got <= 1 {
		t.Errorf("speedup with slowdown = %v, want > 1", got)
	}
}

func TestAccessTimeMonotonicInH1(t *testing.T) {
	f := func(h1a, h1b, h2 uint8) bool {
		a := float64(h1a%101) / 100
		b := float64(h1b%101) / 100
		h := float64(h2%101) / 100
		pa := Params{T1: 1, T2: 4, TM: 20, H1: a, H2: h}
		pb := Params{T1: 1, T2: 4, TM: 20, H1: b, H2: h}
		// Higher h1 never makes access slower (t1 < t2 < tm).
		if a >= b {
			return AccessTime(pa) <= AccessTime(pb)+1e-12
		}
		return AccessTime(pb) <= AccessTime(pa)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInclusionAssocLowerBoundPaperExample(t *testing.T) {
	// The paper: 16K V-cache, 4K pages, B2 = 4·B1 -> 16-way R-cache needed.
	l1 := cache.Geometry{Size: 16 << 10, Block: 16, Assoc: 1}
	l2 := cache.Geometry{Size: 256 << 10, Block: 64, Assoc: 16}
	got, err := InclusionAssocLowerBound(l1, l2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if got != 16 {
		t.Errorf("bound = %d, want 16", got)
	}
}

func TestInclusionAssocLowerBoundEqualBlocks(t *testing.T) {
	l1 := cache.Geometry{Size: 16 << 10, Block: 16, Assoc: 2}
	l2 := cache.Geometry{Size: 256 << 10, Block: 16, Assoc: 4}
	got, err := InclusionAssocLowerBound(l1, l2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("bound = %d, want 4", got)
	}
}

func TestInclusionAssocLowerBoundErrors(t *testing.T) {
	l1 := cache.Geometry{Size: 16 << 10, Block: 16, Assoc: 1}
	l2 := cache.Geometry{Size: 256 << 10, Block: 64, Assoc: 16}
	if _, err := InclusionAssocLowerBound(l1, l2, 1000); err == nil {
		t.Error("bad page size accepted")
	}
	if _, err := InclusionAssocLowerBound(cache.Geometry{Size: 5}, l2, 4096); err == nil {
		t.Error("bad L1 accepted")
	}
	if _, err := InclusionAssocLowerBound(l1, cache.Geometry{Size: 5}, 4096); err == nil {
		t.Error("bad L2 accepted")
	}
	// B2 < B1.
	small := cache.Geometry{Size: 256 << 10, Block: 8, Assoc: 16}
	if _, err := InclusionAssocLowerBound(l1, small, 4096); err == nil {
		t.Error("B2 < B1 accepted")
	}
	// size(2) <= size(1).
	if _, err := InclusionAssocLowerBound(l1, cache.Geometry{Size: 8 << 10, Block: 64, Assoc: 16}, 4096); err == nil {
		t.Error("L2 smaller than L1 accepted")
	}
	// B1*S1 < pagesize: a 2K fully-associative L1.
	tiny := cache.Geometry{Size: 2 << 10, Block: 16, Assoc: 128}
	if _, err := InclusionAssocLowerBound(tiny, l2, 4096); err == nil {
		t.Error("B1*S1 < pagesize accepted")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(0.9, 0.5)
	if p.T1 != 1 || p.T2 != 4 || p.TM != 20 || p.H1 != 0.9 || p.H2 != 0.5 {
		t.Errorf("defaults = %+v", p)
	}
}
