// Package timemodel implements the paper's generic access-time equation
// (Section 4) and the analyses built on it: the average-access-time curves
// of Figures 4-6 (V-R vs R-R under varying address-translation slow-down),
// the crossover solver, and the Section 2 lower bound on second-level
// associativity required for strict inclusion.
package timemodel

import (
	"fmt"
	"math"

	"repro/internal/addr"
	"repro/internal/cache"
)

// Params are the latency inputs of the access-time equation, in arbitrary
// units (the paper fixes t2 = 4*t1 and plots relative performance).
type Params struct {
	T1 float64 // first-level access time
	T2 float64 // second-level access time
	TM float64 // memory access time including bus overhead
	H1 float64 // first-level hit ratio
	H2 float64 // second-level local hit ratio (of first-level misses)
}

// DefaultParams returns the paper's scaling: t2 = 4·t1, with a memory time
// of 20·t1 for the (organization-independent) third term.
func DefaultParams(h1, h2 float64) Params {
	return Params{T1: 1, T2: 4, TM: 20, H1: h1, H2: h2}
}

// Validate rejects out-of-range hit ratios and non-positive latencies.
func (p Params) Validate() error {
	if p.H1 < 0 || p.H1 > 1 || p.H2 < 0 || p.H2 > 1 {
		return fmt.Errorf("timemodel: hit ratios must be in [0,1]: h1=%v h2=%v", p.H1, p.H2)
	}
	if p.T1 <= 0 || p.T2 <= 0 || p.TM <= 0 {
		return fmt.Errorf("timemodel: latencies must be positive")
	}
	return nil
}

// AccessTime evaluates the paper's equation:
//
//	Tacc = h1·t1 + (1−h1)·h2·t2 + (1−h1−(1−h1)·h2)·tm
func AccessTime(p Params) float64 {
	miss1 := 1 - p.H1
	return p.H1*p.T1 + miss1*p.H2*p.T2 + (miss1-miss1*p.H2)*p.TM
}

// RRAccessTime evaluates the equation for an R-R hierarchy whose
// first-level access is slowed by the given fraction (0.06 = 6%) because a
// TLB precedes or overlaps the first-level lookup. Only the first-level
// term slows down; the second-level and memory terms are unchanged, per the
// paper's analysis.
func RRAccessTime(p Params, slowdown float64) float64 {
	miss1 := 1 - p.H1
	return p.H1*p.T1*(1+slowdown) + miss1*p.H2*p.T2 + (miss1-miss1*p.H2)*p.TM
}

// CurvePoint is one point of a Figure 4-6 series.
type CurvePoint struct {
	Slowdown float64 // R-cache slow-down fraction
	VR       float64 // V-R average access time (constant in the slow-down)
	RR       float64 // R-R average access time at this slow-down
}

// Curve computes the Figure 4-6 series: the V-R organization uses vr's hit
// ratios (unaffected by slow-down), the R-R organization uses rr's with its
// first-level access slowed from 0 to maxSlowdown in the given number of
// steps (inclusive of both endpoints).
func Curve(vr, rr Params, maxSlowdown float64, steps int) []CurvePoint {
	if steps < 1 {
		steps = 1
	}
	vrT := AccessTime(vr)
	out := make([]CurvePoint, 0, steps+1)
	for i := 0; i <= steps; i++ {
		s := maxSlowdown * float64(i) / float64(steps)
		out = append(out, CurvePoint{
			Slowdown: s,
			VR:       vrT,
			RR:       RRAccessTime(rr, s),
		})
	}
	return out
}

// Crossover returns the R-R slow-down fraction at which the two
// organizations' access times are equal: below it R-R wins, above it V-R
// wins. A negative result means V-R is faster even with no translation
// penalty at all; +Inf means R-R's hit-ratio advantage can never be
// overcome within this model (h1·t1 term is zero).
func Crossover(vr, rr Params) float64 {
	// Solve RRAccessTime(rr, s) = AccessTime(vr) for s.
	denom := rr.H1 * rr.T1
	if denom == 0 {
		return math.Inf(1)
	}
	return (AccessTime(vr) - AccessTime(rr)) / denom
}

// SpeedupAt returns the ratio Tacc(RR at slowdown) / Tacc(VR); values above
// 1 mean the V-R organization is faster.
func SpeedupAt(vr, rr Params, slowdown float64) float64 {
	return RRAccessTime(rr, slowdown) / AccessTime(vr)
}

// InclusionAssocLowerBound computes the Section 2 bound on the second-level
// set-associativity needed to maintain inclusion under the original
// (strict) replacement rule:
//
//	A2 >= size(1)/pagesize × B2/B1
//
// It applies when S2 > S1, B2 >= B1, size(2) > size(1) and B1·S1 >=
// pagesize; outside those conditions it returns an error.
func InclusionAssocLowerBound(l1, l2 cache.Geometry, pageSize uint64) (int, error) {
	if err := l1.Validate(); err != nil {
		return 0, fmt.Errorf("timemodel: L1: %w", err)
	}
	if err := l2.Validate(); err != nil {
		return 0, fmt.Errorf("timemodel: L2: %w", err)
	}
	if !addr.IsPow2(pageSize) {
		return 0, fmt.Errorf("timemodel: page size %d not a power of two", pageSize)
	}
	if l2.Block < l1.Block {
		return 0, fmt.Errorf("timemodel: B2 < B1")
	}
	if l2.Size <= l1.Size {
		return 0, fmt.Errorf("timemodel: size(2) <= size(1)")
	}
	if l1.Block*uint64(l1.Sets()) < pageSize {
		return 0, fmt.Errorf("timemodel: B1*S1 < pagesize; the bound of Baer & Wang [5] applies instead")
	}
	bound := l1.Size / pageSize * (l2.Block / l1.Block)
	if bound < 1 {
		bound = 1
	}
	return int(bound), nil
}
