// Package cycles is the simulator's cycle-accounting engine: it measures
// the average access time the paper's Section 4 equation predicts, from the
// simulation itself, instead of evaluating the closed form on aggregate hit
// ratios. Each CPU carries a cycle clock advanced by configurable latencies
// (t1, t2, tm, a TLB-miss penalty, a context-switch flush cost), and the
// bus becomes a shared timed resource with FIFO arbitration: every
// transaction occupies the bus for a configurable number of cycles, so
// concurrent misses from different CPUs queue and the queueing delay is
// charged to the requester. Write-buffer drains (and other background
// memory writes) occupy the bus but overlap with subsequent hits: they
// stall the processor only on a buffer-full push or a coherence
// flush(buffer), exactly the paper's write-back(r-pointer) overlap
// argument.
//
// The engine follows the observability layer's nil-check pattern: every
// component holds a *CPU handle (or the bus a Timer) that may be nil, and
// every charge site is a single nil-guarded call. All arithmetic is integer
// (uint64 cycles) and every update is a max/+ of non-negative terms applied
// in the reference-serial event order, so measured times are deterministic
// and monotonically non-decreasing in every latency parameter.
package cycles

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/monitor"
	"repro/internal/probe"
	"repro/internal/stats"
)

// Params are the engine's latency inputs, in cycles. The zero value of the
// optional fields (penalties, occupancies, Contention) charges nothing, so
// DefaultParams reproduces the Section 4 closed form exactly.
type Params struct {
	T1 uint64 `json:"t1"` // first-level hit service time
	T2 uint64 `json:"t2"` // second-level hit service time
	TM uint64 `json:"tm"` // memory service time including bus overhead

	// TVictim is the service time of a first-level miss satisfied by the
	// victim cache (internal/victim). Zero means "same as t2" — a victim
	// cache then shifts traffic off the bus without a latency advantage;
	// setting TVictim < t2 models the single-cycle side array of Jouppi's
	// design.
	TVictim uint64 `json:"tVictim"`

	TLBMissPenalty uint64 `json:"tlbMissPenalty"` // extra cycles per TLB miss
	CtxSwitchCost  uint64 `json:"ctxSwitchCost"`  // flush cost per context switch

	// Bus occupancies, in cycles per transaction. A memory transaction is
	// a read-miss or read-modified-write; a control transaction is an
	// invalidation or update broadcast; a write-back transaction is a
	// buffer drain, coherence flush, or victim write to memory.
	BusMemOcc  uint64 `json:"busMemOcc"`
	BusCtrlOcc uint64 `json:"busCtrlOcc"`
	BusWBOcc   uint64 `json:"busWBOcc"`

	// Contention charges bus queueing delay to the requester's clock. With
	// it off the bus still tracks occupancy (utilization is reported) but
	// never delays anyone — the paper's closed-form idealization.
	Contention bool `json:"contention"`
}

// DefaultParams returns the paper's latency scaling (t2 = 4·t1, tm = 20·t1)
// with no extra penalties and no contention: a run under these parameters
// measures exactly the Section 4 equation.
func DefaultParams() Params { return Params{T1: 1, T2: 4, TM: 20} }

// ContentionParams returns DefaultParams plus a contended bus: a memory
// fill occupies the bus for most of the memory latency, control broadcasts
// and write-back drains for a few cycles each.
func ContentionParams() Params {
	p := DefaultParams()
	p.BusMemOcc = 12
	p.BusCtrlOcc = 2
	p.BusWBOcc = 4
	p.Contention = true
	return p
}

// Validate rejects parameter sets that cannot measure anything.
func (p Params) Validate() error {
	if p.T1 == 0 || p.T2 == 0 || p.TM == 0 {
		return fmt.Errorf("cycles: t1, t2 and tm must be positive")
	}
	return nil
}

// Breakdown partitions one agent's cycles by what they were spent on. The
// agent's clock is always the sum of the fields.
type Breakdown struct {
	Access  uint64 `json:"accessCycles"`  // t1/t2/tm service time, one term per reference
	TLB     uint64 `json:"tlbCycles"`     // TLB-miss penalties
	BusWait uint64 `json:"busWaitCycles"` // queueing for the shared bus
	Stall   uint64 `json:"stallCycles"`   // write-buffer-full and flush(buffer) stalls
	Ctx     uint64 `json:"ctxCycles"`     // context-switch flush costs
}

// Total returns the cycles across all categories.
func (b Breakdown) Total() uint64 {
	return b.Access + b.TLB + b.BusWait + b.Stall + b.Ctx
}

// Add accumulates o into b field-wise.
func (b *Breakdown) Add(o Breakdown) {
	b.Access += o.Access
	b.TLB += o.TLB
	b.BusWait += o.BusWait
	b.Stall += o.Stall
	b.Ctx += o.Ctx
}

// AgentTiming is one agent's measured state: its cycle clock, the memory
// references it completed, and where the cycles went.
type AgentTiming struct {
	Clock uint64 `json:"clock"` // == Breakdown.Total()
	Refs  uint64 `json:"refs"`
	Breakdown
}

// Tacc returns the agent's measured average access time in cycles per
// reference (0 when it completed no references).
func (a AgentTiming) Tacc() float64 {
	if a.Refs == 0 {
		return 0
	}
	return float64(a.Clock) / float64(a.Refs)
}

// agent is the per-requester timing state. Agents are indexed by bus
// snooper id, so DMA engines get clocks too (their queueing shows up in bus
// wait, not in Tacc, since they complete no processor references).
type agent struct {
	clock uint64
	refs  uint64
	bd    Breakdown
}

// Engine is the machine-wide cycle accountant: per-agent clocks plus the
// shared bus's busy-until horizon. It is not safe for concurrent use; like
// the functional simulator it is reference-serial by design.
type Engine struct {
	p      Params
	pr     *probe.Probe
	lat    *monitor.Latencies
	agents []agent

	busFree uint64 // global cycle at which the bus next falls idle
	busBusy uint64 // total cycles of bus occupancy
	busTxns uint64 // timed transactions (occupancy > 0)
}

var _ bus.Timer = (*Engine)(nil)

// New creates an engine. pr may be nil; when set, every non-zero charge is
// mirrored by a timing probe event whose Aux carries the cycles charged.
func New(p Params, pr *probe.Probe) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Engine{p: p, pr: pr}, nil
}

// MustNew is New but panics on error.
func MustNew(p Params, pr *probe.Probe) *Engine {
	e, err := New(p, pr)
	if err != nil {
		panic(err)
	}
	return e
}

// Params returns the engine's latency configuration.
func (e *Engine) Params() Params { return e.p }

// SetLatencies attaches a latency-distribution collector. lat may be nil
// (the default): every recording site calls the collector's nil-safe Record,
// so distributions cost one branch per charge when disabled.
func (e *Engine) SetLatencies(lat *monitor.Latencies) { e.lat = lat }

// Latencies returns the attached collector (nil when distributions are off).
func (e *Engine) Latencies() *monitor.Latencies { return e.lat }

// Reset zeroes all clocks and counters (steady-state measurement), keeping
// the parameters and any grown agent table.
func (e *Engine) Reset() {
	for i := range e.agents {
		e.agents[i] = agent{}
	}
	e.busFree, e.busBusy, e.busTxns = 0, 0, 0
}

// agentFor returns agent id's state, growing the table on demand (DMA
// engines attach after the CPUs, like probe's per-CPU rings).
func (e *Engine) agentFor(id int) *agent {
	if id < 0 {
		id = 0
	}
	for id >= len(e.agents) {
		e.agents = append(e.agents, agent{})
	}
	return &e.agents[id]
}

// emit mirrors one timing charge as a probe event.
func (e *Engine) emit(id int, k probe.Kind, acc stats.AccessKind, cycles uint64) {
	if e.pr == nil {
		return
	}
	e.pr.Emit(probe.Event{CPU: id, Kind: k, Access: acc, Aux: cycles})
}

// OnTxn implements bus.Timer: a foreground transaction (the requester is
// waiting on it). The bus is FIFO: the transaction is granted at
// max(requester clock, bus free); under contention the queueing delay is
// charged to the requester, and either way the occupancy extends the bus's
// busy horizon.
func (e *Engine) OnTxn(t bus.Txn) {
	var occ uint64
	switch t.Kind {
	case bus.Read, bus.ReadMod:
		occ = e.p.BusMemOcc
	default:
		occ = e.p.BusCtrlOcc
	}
	if occ == 0 {
		return // a free transaction neither waits nor reserves
	}
	a := e.agentFor(t.From)
	grant := a.clock
	if e.busFree > grant {
		grant = e.busFree
	}
	if e.p.Contention {
		e.lat.Record(t.From, monitor.LatBusWait, grant-a.clock)
	}
	if e.p.Contention && grant > a.clock {
		wait := grant - a.clock
		a.clock = grant
		a.bd.BusWait += wait
		e.emit(t.From, probe.EvTimeBusWait, 0, wait)
	}
	e.busFree = grant + occ
	e.busBusy += occ
	e.busTxns++
}

// CPU returns agent id's charging handle. A nil engine returns a nil
// handle, whose methods are all no-ops — the caller wires unconditionally.
func (e *Engine) CPU(id int) *CPU {
	if e == nil {
		return nil
	}
	return &CPU{e: e, id: id}
}

// Agents returns the number of agents that have timing state.
func (e *Engine) Agents() int { return len(e.agents) }

// Agent returns agent id's measured timing (zero if it never charged).
func (e *Engine) Agent(id int) AgentTiming {
	if id < 0 || id >= len(e.agents) {
		return AgentTiming{}
	}
	a := e.agents[id]
	return AgentTiming{Clock: a.clock, Refs: a.refs, Breakdown: a.bd}
}

// Tacc returns the machine's measured average access time: total cycles
// over total references, across agents that completed references (agents
// with none — DMA engines — contribute no time to the average).
func (e *Engine) Tacc() float64 {
	var clock, refs uint64
	for _, a := range e.agents {
		if a.refs == 0 {
			continue
		}
		clock += a.clock
		refs += a.refs
	}
	if refs == 0 {
		return 0
	}
	return float64(clock) / float64(refs)
}

// TotalRefs returns the references completed across all agents.
func (e *Engine) TotalRefs() uint64 {
	var refs uint64
	for _, a := range e.agents {
		refs += a.refs
	}
	return refs
}

// TotalBreakdown returns the machine-wide cycle breakdown: the field-wise
// sum over all agents. Its Total() equals the sum of the agent clocks — the
// figure the telemetry layer's attribution must reconcile against.
func (e *Engine) TotalBreakdown() Breakdown {
	var bd Breakdown
	for _, a := range e.agents {
		bd.Add(a.bd)
	}
	return bd
}

// BusBusy returns the total cycles of bus occupancy.
func (e *Engine) BusBusy() uint64 { return e.busBusy }

// BusTxns returns the number of timed (occupancy > 0) bus transactions.
func (e *Engine) BusTxns() uint64 { return e.busTxns }

// BusWait returns the total queueing cycles charged across all agents.
func (e *Engine) BusWait() uint64 {
	var w uint64
	for _, a := range e.agents {
		w += a.bd.BusWait
	}
	return w
}

// State is the engine's serializable state (checkpoint support): every
// agent's timing plus the shared bus horizon.
type State struct {
	Agents  []AgentTiming
	BusFree uint64
	BusBusy uint64
	BusTxns uint64
}

// ExportState captures the engine's clocks and counters.
func (e *Engine) ExportState() State {
	st := State{BusFree: e.busFree, BusBusy: e.busBusy, BusTxns: e.busTxns}
	for i := range e.agents {
		st.Agents = append(st.Agents, e.Agent(i))
	}
	return st
}

// RestoreState replaces the engine's clocks and counters. Each agent's
// clock must equal its breakdown total — the invariant every charge site
// maintains.
func (e *Engine) RestoreState(st State) error {
	for i, a := range st.Agents {
		if a.Clock != a.Breakdown.Total() {
			return fmt.Errorf("cycles: state agent %d clock %d != breakdown total %d",
				i, a.Clock, a.Breakdown.Total())
		}
	}
	e.agents = e.agents[:0]
	for _, a := range st.Agents {
		e.agents = append(e.agents, agent{clock: a.Clock, refs: a.Refs, bd: a.Breakdown})
	}
	e.busFree, e.busBusy, e.busTxns = st.BusFree, st.BusBusy, st.BusTxns
	return nil
}

// Merge folds another engine's measurements into this one (the shard
// stitcher's merge path): per-agent clocks, references and breakdowns add,
// as do the bus occupancy totals; the busy horizon becomes the larger of
// the two, since merged shards never overlapped on a real bus.
func (e *Engine) Merge(o *Engine) {
	if o == nil {
		return
	}
	for i := range o.agents {
		a := e.agentFor(i)
		oa := &o.agents[i]
		a.clock += oa.clock
		a.refs += oa.refs
		a.bd.Access += oa.bd.Access
		a.bd.TLB += oa.bd.TLB
		a.bd.BusWait += oa.bd.BusWait
		a.bd.Stall += oa.bd.Stall
		a.bd.Ctx += oa.bd.Ctx
	}
	if o.busFree > e.busFree {
		e.busFree = o.busFree
	}
	e.busBusy += o.busBusy
	e.busTxns += o.busTxns
}

// CPU is one agent's nil-safe charging handle, held by its hierarchy.
type CPU struct {
	e  *Engine
	id int
}

// EndAccess charges the service time of one completed memory reference:
// t1, t2 or tm by the level that satisfied it (1, 2, or 3 for memory).
func (c *CPU) EndAccess(kind stats.AccessKind, level int) {
	if c == nil {
		return
	}
	var d uint64
	switch level {
	case 1:
		d = c.e.p.T1
	case 2:
		d = c.e.p.T2
	default:
		d = c.e.p.TM
	}
	a := c.e.agentFor(c.id)
	a.clock += d
	a.refs++
	a.bd.Access += d
	c.e.lat.Record(c.id, monitor.LatAccess, d)
	c.e.emit(c.id, probe.EvTimeAccess, kind, d)
}

// EndAccessVictim charges the service time of one completed reference that
// missed the first level but was supplied by the victim cache: TVictim
// when configured, otherwise t2.
func (c *CPU) EndAccessVictim(kind stats.AccessKind) {
	if c == nil {
		return
	}
	d := c.e.p.TVictim
	if d == 0 {
		d = c.e.p.T2
	}
	a := c.e.agentFor(c.id)
	a.clock += d
	a.refs++
	a.bd.Access += d
	c.e.lat.Record(c.id, monitor.LatAccess, d)
	c.e.emit(c.id, probe.EvTimeAccess, kind, d)
}

// TLBMiss charges the TLB-miss penalty (a table walk serialized with the
// reference).
func (c *CPU) TLBMiss() {
	if c == nil || c.e.p.TLBMissPenalty == 0 {
		return
	}
	a := c.e.agentFor(c.id)
	a.clock += c.e.p.TLBMissPenalty
	a.bd.TLB += c.e.p.TLBMissPenalty
	c.e.emit(c.id, probe.EvTimeTLBMiss, 0, c.e.p.TLBMissPenalty)
}

// CtxSwitch charges the context-switch flush cost.
func (c *CPU) CtxSwitch() {
	if c == nil || c.e.p.CtxSwitchCost == 0 {
		return
	}
	a := c.e.agentFor(c.id)
	a.clock += c.e.p.CtxSwitchCost
	a.bd.Ctx += c.e.p.CtxSwitchCost
	c.e.emit(c.id, probe.EvTimeCtxSwitch, 0, c.e.p.CtxSwitchCost)
}

// BusWrite reserves the bus for one background write-back (a buffer drain,
// coherence flush, or victim write to memory). The write overlaps with the
// processor — it occupies the bus without advancing the agent's clock — so
// its only timing effect is on later requesters' queueing.
func (c *CPU) BusWrite() {
	if c == nil || c.e.p.BusWBOcc == 0 {
		return
	}
	e := c.e
	at := e.agentFor(c.id).clock
	grant := at
	if e.busFree > grant {
		grant = e.busFree
	}
	e.busFree = grant + e.p.BusWBOcc
	e.busBusy += e.p.BusWBOcc
	e.busTxns++
	e.lat.Record(c.id, monitor.LatWBDrain, (grant-at)+e.p.BusWBOcc)
}

// WBStall stalls the processor until the bus is idle: the write buffer was
// full (or a coherence flush forced a drain), so the processor must wait
// for the pending write-back to clear the bus before proceeding.
func (c *CPU) WBStall() {
	if c == nil || !c.e.p.Contention {
		return
	}
	e := c.e
	a := e.agentFor(c.id)
	if e.busFree <= a.clock {
		return
	}
	wait := e.busFree - a.clock
	a.clock = e.busFree
	a.bd.Stall += wait
	e.lat.Record(c.id, monitor.LatWBStall, wait)
	e.emit(c.id, probe.EvTimeWBStall, 0, wait)
}
