package cycles

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/probe"
)

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
	if err := ContentionParams().Validate(); err != nil {
		t.Fatalf("ContentionParams invalid: %v", err)
	}
	if err := (Params{T1: 1, T2: 4}).Validate(); err == nil {
		t.Fatal("zero TM accepted")
	}
	if _, err := New(Params{}, nil); err == nil {
		t.Fatal("New accepted zero params")
	}
}

func TestEndAccessLevels(t *testing.T) {
	e := MustNew(DefaultParams(), nil)
	c := e.CPU(0)
	c.EndAccess(0, 1)
	c.EndAccess(0, 2)
	c.EndAccess(0, 3)
	at := e.Agent(0)
	if want := uint64(1 + 4 + 20); at.Clock != want {
		t.Fatalf("clock = %d, want %d", at.Clock, want)
	}
	if at.Refs != 3 {
		t.Fatalf("refs = %d, want 3", at.Refs)
	}
	if at.Clock != at.Breakdown.Total() {
		t.Fatalf("clock %d != breakdown total %d", at.Clock, at.Breakdown.Total())
	}
	if got, want := at.Tacc(), 25.0/3.0; got != want {
		t.Fatalf("Tacc = %v, want %v", got, want)
	}
	if got, want := e.Tacc(), 25.0/3.0; got != want {
		t.Fatalf("engine Tacc = %v, want %v", got, want)
	}
}

func TestNilHandleIsSafe(t *testing.T) {
	var e *Engine
	c := e.CPU(3)
	if c != nil {
		t.Fatal("nil engine returned non-nil handle")
	}
	// All charge methods must be no-ops on a nil handle.
	c.EndAccess(0, 1)
	c.TLBMiss()
	c.CtxSwitch()
	c.BusWrite()
	c.WBStall()
}

func TestBusContentionQueuesFIFO(t *testing.T) {
	p := DefaultParams()
	p.BusMemOcc = 10
	p.Contention = true
	e := MustNew(p, nil)

	// CPU 0 and CPU 1 both at cycle 0 issue memory transactions. The first
	// is granted immediately; the second queues behind its occupancy.
	e.OnTxn(bus.Txn{From: 0, Kind: bus.Read})
	e.OnTxn(bus.Txn{From: 1, Kind: bus.Read})
	if w := e.Agent(0).BusWait; w != 0 {
		t.Fatalf("first requester waited %d cycles", w)
	}
	if w := e.Agent(1).BusWait; w != 10 {
		t.Fatalf("second requester waited %d cycles, want 10", w)
	}
	if e.BusBusy() != 20 || e.BusTxns() != 2 {
		t.Fatalf("bus busy/txns = %d/%d, want 20/2", e.BusBusy(), e.BusTxns())
	}
	if e.BusWait() != 10 {
		t.Fatalf("total bus wait = %d, want 10", e.BusWait())
	}
}

func TestContentionOffTracksUtilizationOnly(t *testing.T) {
	p := DefaultParams()
	p.BusMemOcc = 10
	e := MustNew(p, nil)
	e.OnTxn(bus.Txn{From: 0, Kind: bus.Read})
	e.OnTxn(bus.Txn{From: 1, Kind: bus.Read})
	if e.BusWait() != 0 {
		t.Fatalf("contention off but %d wait cycles charged", e.BusWait())
	}
	if e.BusBusy() != 20 {
		t.Fatalf("bus busy = %d, want 20", e.BusBusy())
	}
}

func TestZeroOccupancyIsFree(t *testing.T) {
	// DefaultParams has all occupancies zero: transactions must not reserve
	// the bus, or phantom queueing would break the closed-form equivalence.
	e := MustNew(DefaultParams(), nil)
	e.OnTxn(bus.Txn{From: 0, Kind: bus.Read})
	e.CPU(0).BusWrite()
	if e.BusBusy() != 0 || e.BusTxns() != 0 {
		t.Fatalf("free transactions reserved the bus: busy=%d txns=%d", e.BusBusy(), e.BusTxns())
	}
	if e.Agents() != 0 {
		t.Fatalf("free transactions grew the agent table to %d", e.Agents())
	}
}

func TestBusWriteOverlapsWithProcessor(t *testing.T) {
	p := ContentionParams()
	e := MustNew(p, nil)
	c := e.CPU(0)
	c.EndAccess(0, 1) // clock = 1
	c.BusWrite()      // drain occupies [1, 5) but does not advance the clock
	if at := e.Agent(0); at.Clock != 1 {
		t.Fatalf("background write advanced the clock to %d", at.Clock)
	}
	if e.BusBusy() != p.BusWBOcc {
		t.Fatalf("bus busy = %d, want %d", e.BusBusy(), p.BusWBOcc)
	}
	// A stall right after must wait out the drain's occupancy.
	c.WBStall()
	at := e.Agent(0)
	if at.Clock != 1+p.BusWBOcc {
		t.Fatalf("stall left clock at %d, want %d", at.Clock, 1+p.BusWBOcc)
	}
	if at.Stall != p.BusWBOcc {
		t.Fatalf("stall cycles = %d, want %d", at.Stall, p.BusWBOcc)
	}
	if at.Clock != at.Breakdown.Total() {
		t.Fatalf("clock %d != breakdown total %d", at.Clock, at.Breakdown.Total())
	}
}

func TestWBStallNeedsContention(t *testing.T) {
	p := DefaultParams()
	p.BusWBOcc = 4
	e := MustNew(p, nil)
	c := e.CPU(0)
	c.BusWrite()
	c.WBStall()
	if at := e.Agent(0); at.Clock != 0 || at.Stall != 0 {
		t.Fatalf("stall charged without contention: clock=%d stall=%d", at.Clock, at.Stall)
	}
}

func TestPenaltiesAndReset(t *testing.T) {
	p := DefaultParams()
	p.TLBMissPenalty = 7
	p.CtxSwitchCost = 30
	e := MustNew(p, nil)
	c := e.CPU(2)
	c.TLBMiss()
	c.CtxSwitch()
	at := e.Agent(2)
	if at.TLB != 7 || at.Ctx != 30 || at.Clock != 37 {
		t.Fatalf("penalties: %+v", at)
	}
	if at.Refs != 0 {
		t.Fatalf("penalties counted as references: %d", at.Refs)
	}
	if e.Tacc() != 0 {
		t.Fatalf("Tacc over zero refs = %v", e.Tacc())
	}
	e.Reset()
	if at := e.Agent(2); at != (AgentTiming{}) {
		t.Fatalf("Reset left state: %+v", at)
	}
	if e.BusBusy() != 0 || e.BusTxns() != 0 {
		t.Fatal("Reset left bus counters")
	}
}

func TestDMAAgentsExcludedFromTacc(t *testing.T) {
	p := ContentionParams()
	e := MustNew(p, nil)
	e.CPU(0).EndAccess(0, 1)                  // a real CPU: 1 ref, 1 cycle
	e.OnTxn(bus.Txn{From: 5, Kind: bus.Read}) // a DMA engine: bus time, no refs
	e.OnTxn(bus.Txn{From: 5, Kind: bus.Read})
	if got := e.Tacc(); got != 1 {
		t.Fatalf("Tacc = %v, want 1 (DMA agent must not dilute the average)", got)
	}
	if e.TotalRefs() != 1 {
		t.Fatalf("TotalRefs = %d, want 1", e.TotalRefs())
	}
}

// auxSink tallies event Aux values by kind.
type auxSink struct{ sums [probe.NumKinds]uint64 }

func (s *auxSink) Event(ev probe.Event) { s.sums[ev.Kind] += ev.Aux }

func TestProbeEventsMirrorCharges(t *testing.T) {
	pr := probe.New(64)
	sink := &auxSink{}
	pr.AddSink(sink)

	p := ContentionParams()
	p.TLBMissPenalty = 7
	p.CtxSwitchCost = 30
	e := MustNew(p, pr)
	c := e.CPU(0)
	c.EndAccess(0, 3)
	c.TLBMiss()
	c.CtxSwitch()
	c.BusWrite()
	c.WBStall()
	e.OnTxn(bus.Txn{From: 1, Kind: bus.Invalidate}) // queues behind the drain
	pr.Flush()
	sums := sink.sums

	at := e.Agent(0)
	if sums[probe.EvTimeAccess] != at.Access {
		t.Fatalf("access events sum to %d, breakdown says %d", sums[probe.EvTimeAccess], at.Access)
	}
	if sums[probe.EvTimeTLBMiss] != at.TLB {
		t.Fatalf("tlb events sum to %d, breakdown says %d", sums[probe.EvTimeTLBMiss], at.TLB)
	}
	if sums[probe.EvTimeWBStall] != at.Stall {
		t.Fatalf("stall events sum to %d, breakdown says %d", sums[probe.EvTimeWBStall], at.Stall)
	}
	if sums[probe.EvTimeCtxSwitch] != at.Ctx {
		t.Fatalf("ctx events sum to %d, breakdown says %d", sums[probe.EvTimeCtxSwitch], at.Ctx)
	}
	if sums[probe.EvTimeBusWait] != e.BusWait() {
		t.Fatalf("bus-wait events sum to %d, engine says %d", sums[probe.EvTimeBusWait], e.BusWait())
	}
}
