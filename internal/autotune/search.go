package autotune

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/cycles"
	"repro/internal/sweep"
	"repro/internal/system"
	"repro/internal/tracegen"
)

// Options configures a search.
type Options struct {
	Grammar  Grammar
	Workload tracegen.Config // deterministic, regenerable trace
	Params   cycles.Params   // zero value selects cycles.DefaultParams

	// ProbeRefs is the total number of measured references per candidate
	// in the probe pass, split across Shards windows spread evenly over
	// the trace. Default: an eighth of the workload.
	ProbeRefs uint64
	// Shards is the number of probe windows per candidate (default 4).
	Shards int
	// Warmup is the simulated-but-discarded prefix before each window
	// (default 4096 references).
	Warmup uint64
	// Chunk is the number of candidates sharing one trace pass per cell
	// (default 8).
	Chunk int
	// Parallel bounds the worker goroutines (default GOMAXPROCS).
	Parallel int
	// Margin is the pruning safety margin in cycles of Tacc: a candidate
	// is pruned only when a no-larger candidate beats its probe Tacc by
	// more than the margin. 0 selects an automatic margin (10% of the
	// probe pass's Tacc spread, floored at 0.1 cycles to absorb windowing
	// noise on near-indistinguishable candidates); negative disables the
	// margin entirely
	// (aggressive pruning — sound only if the probe were exact).
	Margin float64
	// Exhaustive skips the probe pass and pruning: every candidate is
	// measured exactly. The reference for soundness checks.
	Exhaustive bool
}

// Point is one measured candidate on (or behind) the frontier.
type Point struct {
	Label     string  `json:"label"`
	Bits      uint64  `json:"bits"`
	Tacc      float64 `json:"tacc"`
	ProbeTacc float64 `json:"probeTacc,omitempty"`
}

// Result is a search's outcome. Frontier is the Pareto-optimal set over
// (Bits, Tacc), sorted by rising Bits; identical searches produce
// byte-identical results regardless of Parallel.
type Result struct {
	Workload   string  `json:"workload"`
	Candidates int     `json:"candidates"`
	Pruned     int     `json:"pruned"`
	Survivors  int     `json:"survivors"`
	Margin     float64 `json:"margin"`
	// ProbeErrSpread is max(probe-exact) - min(probe-exact) over the
	// survivors: the part of the windowing error that does NOT cancel in
	// the pairwise comparisons pruning makes. The systematic bias shared
	// by every candidate (probe windows sample a different trace region
	// than the full run) cancels and is deliberately excluded.
	ProbeErrSpread float64 `json:"probeErrSpread"`
	// MarginSound reports Margin >= ProbeErrSpread — the sufficient
	// condition for pruning not to have changed the frontier (DESIGN.md
	// §15).
	MarginSound bool    `json:"marginSound"`
	Frontier    []Point `json:"frontier"`
	Explored    []Point `json:"explored"` // every exactly measured candidate, sorted like Frontier
}

func (o *Options) applyDefaults() {
	if o.Params == (cycles.Params{}) {
		o.Params = cycles.DefaultParams()
	}
	if o.ProbeRefs == 0 {
		o.ProbeRefs = uint64(o.Workload.TotalRefs) / 8
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Warmup == 0 {
		o.Warmup = 4096
	}
	if o.Chunk <= 0 {
		o.Chunk = 8
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
}

// timing is one candidate's accumulated cycle measurement.
type timing struct{ clock, refs uint64 }

func (t timing) tacc() float64 {
	if t.refs == 0 {
		return 0
	}
	return float64(t.clock) / float64(t.refs)
}

// engineTotals sums an engine's per-agent clocks and completed references
// (agents with no references contribute nothing, as in Engine.Tacc).
func engineTotals(e *cycles.Engine) timing {
	var t timing
	for id := 0; id < e.Agents(); id++ {
		a := e.Agent(id)
		if a.Refs == 0 {
			continue
		}
		t.clock += a.Clock
		t.refs += a.Refs
	}
	return t
}

// buildSystem assembles one candidate with a fresh cycle engine and the
// workload's shared mappings installed.
func buildSystem(c Candidate, wl tracegen.Config, p cycles.Params) (*system.System, *cycles.Engine, error) {
	eng, err := cycles.New(p, nil)
	if err != nil {
		return nil, nil, err
	}
	cfg := c.Config
	cfg.Cycles = eng
	sys, err := system.New(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", c.Label, err)
	}
	if err := wl.SetupSharedMappings(sys.MMU()); err != nil {
		return nil, nil, err
	}
	return sys, eng, nil
}

// Search explores the grammar: probe, prune, then measure the survivors
// exactly. See the package comment for the architecture and DESIGN.md §15
// for the soundness argument.
func Search(o Options) (*Result, error) {
	o.applyDefaults()
	wl := o.Workload
	if wl.PageSize == 0 {
		wl.PageSize = 4096
	}
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	cands, err := o.Grammar.Expand(wl.CPUs, wl.PageSize)
	if err != nil {
		return nil, err
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("autotune: the grammar expands to no legal candidates")
	}

	res := &Result{Workload: wl.Signature(), Candidates: len(cands)}
	survivors := make([]int, 0, len(cands))
	probe := make([]timing, len(cands))

	if o.Exhaustive {
		for i := range cands {
			survivors = append(survivors, i)
		}
	} else {
		if err := probePass(o, wl, cands, probe); err != nil {
			return nil, err
		}
		res.Margin = o.Margin
		if res.Margin == 0 {
			res.Margin = autoMargin(probe)
		}
		if res.Margin < 0 {
			res.Margin = 0
		}
		survivors = prune(cands, probe, res.Margin)
		res.Pruned = len(cands) - len(survivors)
	}
	res.Survivors = len(survivors)

	exact, err := exactPass(o, wl, cands, survivors)
	if err != nil {
		return nil, err
	}

	res.Explored = make([]Point, len(survivors))
	errLo, errHi := math.Inf(1), math.Inf(-1)
	for j, i := range survivors {
		res.Explored[j] = Point{
			Label: cands[i].Label,
			Bits:  cands[i].Bits,
			Tacc:  exact[j].tacc(),
		}
		if !o.Exhaustive {
			res.Explored[j].ProbeTacc = probe[i].tacc()
			d := res.Explored[j].ProbeTacc - res.Explored[j].Tacc
			errLo, errHi = math.Min(errLo, d), math.Max(errHi, d)
		}
	}
	if !o.Exhaustive && errHi > errLo {
		res.ProbeErrSpread = errHi - errLo
	}
	sortPoints(res.Explored)
	res.Frontier = frontier(res.Explored)
	res.MarginSound = o.Exhaustive || res.Margin >= res.ProbeErrSpread
	return res, nil
}

// probePass measures every candidate approximately: Shards windows spread
// over the trace, each preceded by a warm-up, with Chunk candidates sharing
// every trace pass. Cell (chunk, shard) results land in per-candidate
// accumulators; integer addition makes the totals order-independent.
func probePass(o Options, wl tracegen.Config, cands []Candidate, acc []timing) error {
	total := uint64(wl.TotalRefs)
	shards := o.Shards
	winLen := o.ProbeRefs / uint64(shards)
	if winLen == 0 {
		winLen = 1
	}
	nChunks := (len(cands) + o.Chunk - 1) / o.Chunk
	cells := nChunks * shards
	cellRes := make([][]timing, cells)

	err := sweep.Parallel(cells, o.Parallel, func(cell int) error {
		c, s := cell/shards, cell%shards
		lo := c * o.Chunk
		hi := lo + o.Chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		start := uint64(s) * total / uint64(shards)
		end := start + winLen
		if limit := uint64(s+1) * total / uint64(shards); end > limit {
			end = limit
		}
		group := cands[lo:hi]
		systems := make([]*system.System, len(group))
		engines := make([]*cycles.Engine, len(group))
		for g, cand := range group {
			sys, eng, err := buildSystem(cand, wl, o.Params)
			if err != nil {
				return err
			}
			systems[g], engines[g] = sys, eng
		}
		if err := checkpoint.RunWindow(systems, tracegen.MustNew(wl), checkpoint.Window{
			Start: start, End: end, Warmup: o.Warmup,
		}); err != nil {
			return fmt.Errorf("probe cell (%d,%d): %w", c, s, err)
		}
		ts := make([]timing, len(group))
		for g := range group {
			ts[g] = engineTotals(engines[g])
		}
		cellRes[cell] = ts
		return nil
	})
	if err != nil {
		return err
	}
	for cell, ts := range cellRes {
		lo := (cell / shards) * o.Chunk
		for g, t := range ts {
			acc[lo+g].clock += t.clock
			acc[lo+g].refs += t.refs
		}
	}
	return nil
}

// autoMarginFloor is the absolute floor of the automatic margin, in cycles
// of Tacc. Windowed probes carry sampling error on this scale even when the
// candidates themselves are nearly indistinguishable, so a margin derived
// from the candidate spread alone would prune on noise.
const autoMarginFloor = 0.1

// autoMargin is the automatic pruning margin: a tenth of the probe pass's
// Tacc spread, floored at autoMarginFloor — wide enough to absorb windowing
// error on every workload we measured while still pruning the deep interior
// of the space.
func autoMargin(probe []timing) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, t := range probe {
		v := t.tacc()
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	m := autoMarginFloor
	if hi > lo && (hi-lo)/10 > m {
		m = (hi - lo) / 10
	}
	return m
}

// prune drops candidates dominated by more than the margin: candidate i
// survives unless some candidate with no more SRAM bits has a probe Tacc
// more than margin below i's. Group minima over equal-Bits classes and a
// prefix minimum over rising Bits make the outcome independent of sort
// stability and scheduling.
func prune(cands []Candidate, probe []timing, margin float64) []int {
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if cands[ia].Bits != cands[ib].Bits {
			return cands[ia].Bits < cands[ib].Bits
		}
		return cands[ia].Label < cands[ib].Label
	})

	var survivors []int
	prefixMin := math.Inf(1)
	for g := 0; g < len(order); {
		// One equal-Bits group: [g, h).
		h := g
		groupMin := math.Inf(1)
		for ; h < len(order) && cands[order[h]].Bits == cands[order[g]].Bits; h++ {
			groupMin = math.Min(groupMin, probe[order[h]].tacc())
		}
		prefixMin = math.Min(prefixMin, groupMin)
		for ; g < h; g++ {
			if probe[order[g]].tacc() <= prefixMin+margin {
				survivors = append(survivors, order[g])
			}
		}
	}
	sort.Ints(survivors)
	return survivors
}

// exactPass measures the surviving candidates on the full trace, Chunk
// survivors sharing each pass through the sweep engine.
func exactPass(o Options, wl tracegen.Config, cands []Candidate, survivors []int) ([]timing, error) {
	out := make([]timing, len(survivors))
	nGroups := (len(survivors) + o.Chunk - 1) / o.Chunk
	err := sweep.Parallel(nGroups, o.Parallel, func(gr int) error {
		lo := gr * o.Chunk
		hi := lo + o.Chunk
		if hi > len(survivors) {
			hi = len(survivors)
		}
		systems := make([]*system.System, hi-lo)
		engines := make([]*cycles.Engine, hi-lo)
		for g, idx := range survivors[lo:hi] {
			sys, eng, err := buildSystem(cands[idx], wl, o.Params)
			if err != nil {
				return err
			}
			systems[g], engines[g] = sys, eng
		}
		// Workers:1 keeps the cell on this goroutine; the outer Parallel
		// already saturates the cores.
		if err := sweep.Run(tracegen.MustNew(wl), systems, sweep.Options{Workers: 1}); err != nil {
			return fmt.Errorf("exact group %d: %w", gr, err)
		}
		for g := range engines {
			out[lo+g] = engineTotals(engines[g])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// sortPoints orders points by (Bits, Tacc, Label) — the canonical order of
// every emitted list.
func sortPoints(pts []Point) {
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].Bits != pts[b].Bits {
			return pts[a].Bits < pts[b].Bits
		}
		if pts[a].Tacc != pts[b].Tacc {
			return pts[a].Tacc < pts[b].Tacc
		}
		return pts[a].Label < pts[b].Label
	})
}

// frontier extracts the Pareto staircase from points already in canonical
// order: a point joins if its Tacc strictly beats every cheaper-or-equal
// point's.
func frontier(pts []Point) []Point {
	var out []Point
	best := math.Inf(1)
	for _, p := range pts {
		if p.Tacc < best {
			out = append(out, p)
			best = p.Tacc
		}
	}
	if out == nil {
		out = []Point{}
	}
	return out
}
