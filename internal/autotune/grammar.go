// Package autotune searches the two-level hierarchy design space. A
// declarative grammar expands to thousands of candidate machine
// configurations; a 2D scheduler measures them cheaply by composing the
// sweep engine's fan-out (many configurations sharing one trace pass) with
// the checkpoint layer's approximate time shards (windows with warm-up);
// dominated candidates are pruned from the windowed probe measurements with
// a safety margin; and the surviving frontier is re-measured exactly on the
// full trace, so pruning can change the cost of the search but never its
// answer. The result is a deterministic Pareto frontier of measured average
// access time (internal/cycles) against total SRAM bits (the static cost
// model in cost.go).
package autotune

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/system"
)

// Grammar declares the design space as independent axes; Expand takes the
// cross product and keeps the combinations that form a legal machine. Empty
// axes default to a single paper-typical value, so the zero grammar is
// small but valid.
type Grammar struct {
	// Organizations are hierarchy tokens: "vr", "rr", "rrnoincl", the
	// reverse-lookup-table synonym scheme "rlt", and the write-through
	// first-level variants "vr-wt" and "rr-wt".
	Organizations []string `json:"organizations"`

	L1Sizes  []uint64 `json:"l1Sizes"`  // bytes; default {16K}
	L1Assocs []int    `json:"l1Assocs"` // default {1}
	L1Block  uint64   `json:"l1Block"`  // bytes; default 16

	L2Sizes  []uint64 `json:"l2Sizes"`  // bytes; default {256K}
	L2Assocs []int    `json:"l2Assocs"` // default {1}

	// BlockRatios are k = L2 block / L1 block (the paper's subentries per
	// line); default {2}.
	BlockRatios []int `json:"blockRatios"`

	WriteBufDepths []int `json:"writeBufDepths"` // default {1}

	TLBEntries []int `json:"tlbEntries"` // default {64}
	TLBAssocs  []int `json:"tlbAssocs"`  // default {2}

	// Policies are replacement policies applied to both levels: "lru",
	// "fifo", "random". Default {"lru"}.
	Policies []string `json:"policies"`

	// VictimEntries are victim-cache sizes in blocks; 0 means no victim
	// cache. Default {0}. The axis applies to every organization.
	VictimEntries []int `json:"victimEntries"`

	// RLTEntries are reverse-lookup synonym-table sizes for the "rlt"
	// organization; 0 lets the system pick its default (half the
	// first-level line count). Non-zero values are silently dropped for
	// organizations without an RLT, so mixing "vr" and "rlt" in one
	// grammar expands cleanly.
	RLTEntries []int `json:"rltEntries"`
}

// Candidate is one expanded configuration: the machine to build, its
// deterministic label, and its static cost.
type Candidate struct {
	Label  string
	Config system.Config
	Bits   uint64 // total SRAM bits (see SRAMBits)
}

func orDefaultU64(vs []uint64, d uint64) []uint64 {
	if len(vs) == 0 {
		return []uint64{d}
	}
	return vs
}

func orDefaultInt(vs []int, d int) []int {
	if len(vs) == 0 {
		return []int{d}
	}
	return vs
}

func orDefaultStr(vs []string, d string) []string {
	if len(vs) == 0 {
		return []string{d}
	}
	return vs
}

// organization resolves a grammar token to (organization, write-through).
func organization(tok string) (system.Organization, bool, error) {
	switch tok {
	case "vr":
		return system.VR, false, nil
	case "rr":
		return system.RRInclusion, false, nil
	case "rrnoincl":
		return system.RRNoInclusion, false, nil
	case "rlt":
		return system.VRRLT, false, nil
	case "vr-wt":
		return system.VR, true, nil
	case "rr-wt":
		return system.RRInclusion, true, nil
	default:
		return 0, false, fmt.Errorf("autotune: unknown organization %q", tok)
	}
}

func policy(tok string) (cache.Policy, error) {
	switch tok {
	case "lru", "":
		return cache.LRU, nil
	case "fifo":
		return cache.FIFO, nil
	case "random":
		return cache.Random, nil
	default:
		return 0, fmt.Errorf("autotune: unknown policy %q", tok)
	}
}

// Expand takes the grammar's cross product for a machine with cpus
// processors and pageSize-byte pages, dropping combinations that do not
// form a legal hierarchy (a level smaller than one set, an L1 at least as
// large as its L2, a TLB wider than its entry count). Candidates come out
// in deterministic axis-major order with unique labels; expanding the same
// grammar twice yields the identical slice.
func (g Grammar) Expand(cpus int, pageSize uint64) ([]Candidate, error) {
	orgs := orDefaultStr(g.Organizations, "vr")
	l1Sizes := orDefaultU64(g.L1Sizes, 16<<10)
	l1Assocs := orDefaultInt(g.L1Assocs, 1)
	l1Block := g.L1Block
	if l1Block == 0 {
		l1Block = 16
	}
	l2Sizes := orDefaultU64(g.L2Sizes, 256<<10)
	l2Assocs := orDefaultInt(g.L2Assocs, 1)
	ratios := orDefaultInt(g.BlockRatios, 2)
	wbDepths := orDefaultInt(g.WriteBufDepths, 1)
	tlbEntries := orDefaultInt(g.TLBEntries, 64)
	tlbAssocs := orDefaultInt(g.TLBAssocs, 2)
	policies := orDefaultStr(g.Policies, "lru")
	victims := orDefaultInt(g.VictimEntries, 0)
	rltSizes := orDefaultInt(g.RLTEntries, 0)

	var out []Candidate
	for _, orgTok := range orgs {
		org, wt, err := organization(orgTok)
		if err != nil {
			return nil, err
		}
		for _, pol := range policies {
			p, err := policy(pol)
			if err != nil {
				return nil, err
			}
			for _, l1s := range l1Sizes {
				for _, l1a := range l1Assocs {
					for _, k := range ratios {
						for _, l2s := range l2Sizes {
							for _, l2a := range l2Assocs {
								for _, wb := range wbDepths {
									for _, te := range tlbEntries {
										for _, ta := range tlbAssocs {
											for _, vc := range victims {
												for _, re := range rltSizes {
													if k < 1 || !addr.IsPow2(uint64(k)) {
														return nil, fmt.Errorf("autotune: block ratio %d is not a positive power of two", k)
													}
													if org != system.VRRLT && re != 0 {
														// The RLT axis only exists on the
														// rlt organization; drop rather than
														// error so mixed grammars expand.
														continue
													}
													cfg := system.Config{
														CPUs:           cpus,
														Organization:   org,
														PageSize:       pageSize,
														L1:             cache.Geometry{Size: l1s, Block: l1Block, Assoc: l1a},
														L2:             cache.Geometry{Size: l2s, Block: l1Block * uint64(k), Assoc: l2a},
														TLBEntries:     te,
														TLBAssoc:       ta,
														WriteBufDepth:  wb,
														L1Policy:       p,
														L2Policy:       p,
														L1WriteThrough: wt,
														VictimEntries:  vc,
														RLTEntries:     re,
													}
													if !legal(cfg) {
														continue
													}
													label := fmt.Sprintf("%s/%s/L1=%s/L2=%s/wb=%d/tlb=%dx%d",
														orgTok, pol, cfg.L1, cfg.L2, wb, te, ta)
													if vc != 0 {
														label += fmt.Sprintf("/vc=%d", vc)
													}
													if re != 0 {
														label += fmt.Sprintf("/rlt=%d", re)
													}
													out = append(out, Candidate{Label: label, Config: cfg})
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	for i := range out {
		out[i].Bits = SRAMBits(out[i].Config)
	}
	return out, nil
}

// legal reports whether the combination forms a machine the simulator
// accepts: valid geometries, an L2 strictly larger than the L1 with a
// block at least as large, and a TLB no wider than its entry count.
func legal(cfg system.Config) bool {
	if cfg.L1.Validate() != nil || cfg.L2.Validate() != nil {
		return false
	}
	if cfg.L2.Size <= cfg.L1.Size || cfg.L2.Block < cfg.L1.Block {
		return false
	}
	if cfg.TLBAssoc > cfg.TLBEntries || cfg.TLBEntries <= 0 || cfg.TLBAssoc <= 0 {
		return false
	}
	if !addr.IsPow2(uint64(cfg.TLBEntries)) || !addr.IsPow2(uint64(cfg.TLBAssoc)) {
		return false
	}
	if cfg.WriteBufDepth < 1 {
		return false
	}
	if cfg.VictimEntries < 0 {
		return false
	}
	if cfg.RLTEntries != 0 {
		if cfg.Organization != system.VRRLT {
			return false
		}
		// rlt.New demands a power-of-two set count; with the default
		// associativity (clamped to the entry count) any power-of-two
		// entry count satisfies it.
		if cfg.RLTEntries < 0 || !addr.IsPow2(uint64(cfg.RLTEntries)) {
			return false
		}
	}
	return true
}

// PaperGrammar is the default search space: the paper's Tables 6-11 axes
// widened to a four-digit candidate count (3 organizations x 2 policies x 3
// L1 sizes x 2 L1 assocs x 2 ratios x 3 L2 sizes x 2 L2 assocs x 2 buffer
// depths x 2 TLB shapes = 1728 legal candidates).
func PaperGrammar() Grammar {
	return Grammar{
		Organizations:  []string{"vr", "rr", "rrnoincl"},
		L1Sizes:        []uint64{4 << 10, 8 << 10, 16 << 10},
		L1Assocs:       []int{1, 2},
		L2Sizes:        []uint64{128 << 10, 256 << 10, 512 << 10},
		L2Assocs:       []int{1, 2},
		BlockRatios:    []int{2, 4},
		WriteBufDepths: []int{1, 4},
		TLBEntries:     []int{64, 128},
		Policies:       []string{"lru", "fifo"},
	}
}
