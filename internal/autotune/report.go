package autotune

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteJSON emits the result as indented JSON. Field order is fixed by the
// struct and every list is canonically sorted, so equal results are
// byte-identical.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the search summary, the frontier table and an ASCII
// plot of the explored space.
func (r *Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "autotune: %s\n", r.Workload)
	fmt.Fprintf(w, "candidates %d, pruned %d, measured exactly %d\n",
		r.Candidates, r.Pruned, r.Survivors)
	if r.Pruned > 0 {
		fmt.Fprintf(w, "pruning margin %.4f cycles; probe error spread %.4f (margin sound: %v)\n",
			r.Margin, r.ProbeErrSpread, r.MarginSound)
	}
	fmt.Fprintf(w, "\nPareto frontier (Tacc vs SRAM bits):\n")
	fmt.Fprintf(w, "%12s  %8s  %s\n", "SRAM bits", "Tacc", "configuration")
	for _, p := range r.Frontier {
		fmt.Fprintf(w, "%12d  %8.4f  %s\n", p.Bits, p.Tacc, p.Label)
	}
	fmt.Fprintln(w)
	r.Plot(w)
}

// Plot draws the explored space: '.' for measured candidates, 'o' for
// frontier members, bits rising to the right on a log scale, access time
// falling upward.
func (r *Result) Plot(w io.Writer) {
	pts := r.Explored
	if len(pts) == 0 {
		return
	}
	const width, height = 56, 14
	loB, hiB := math.Inf(1), math.Inf(-1)
	loT, hiT := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		lb := math.Log2(float64(p.Bits))
		loB, hiB = math.Min(loB, lb), math.Max(hiB, lb)
		loT, hiT = math.Min(loT, p.Tacc), math.Max(hiT, p.Tacc)
	}
	if hiB-loB < 1e-9 {
		hiB = loB + 1e-9
	}
	if hiT-loT < 1e-9 {
		hiT = loT + 1e-9
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	cell := func(p Point) (row, col int) {
		col = int(math.Round((math.Log2(float64(p.Bits)) - loB) / (hiB - loB) * float64(width-1)))
		row = int(math.Round((p.Tacc - loT) / (hiT - loT) * float64(height-1)))
		return row, col
	}
	for _, p := range pts {
		row, col := cell(p)
		if grid[row][col] == ' ' {
			grid[row][col] = '.'
		}
	}
	for _, p := range r.Frontier {
		row, col := cell(p)
		grid[row][col] = 'o'
	}
	for i, line := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.3f ", loT)
		case height - 1:
			label = fmt.Sprintf("%7.3f ", hiT)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s%-*s%*s\n", strings.Repeat(" ", 9), width/2,
		fmt.Sprintf("2^%.1f bits", loB), width/2-1, fmt.Sprintf("2^%.1f bits", hiB))
	fmt.Fprintf(w, "%sTacc (cycles/ref, lower is better)   o = frontier   . = explored\n",
		strings.Repeat(" ", 9))
}
