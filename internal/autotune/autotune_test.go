package autotune

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/system"
	"repro/internal/tracegen"
)

// testGrammar is the reference grammar of the soundness and determinism
// tests: small enough to measure exhaustively, wide enough to include
// dominated interior points on every axis.
func testGrammar() Grammar {
	return Grammar{
		Organizations: []string{"vr", "rrnoincl"},
		L1Sizes:       []uint64{4 << 10, 8 << 10},
		L1Assocs:      []int{1, 2},
		L2Sizes:       []uint64{64 << 10, 128 << 10},
		BlockRatios:   []int{2},
	}
}

func testWorkload() tracegen.Config {
	return tracegen.PopsLike().Scaled(0.003)
}

func testOptions() Options {
	return Options{
		Grammar:   testGrammar(),
		Workload:  testWorkload(),
		ProbeRefs: 2_000,
		Shards:    2,
		Warmup:    500,
		Chunk:     3,
	}
}

func TestGrammarExpandDeterministic(t *testing.T) {
	g := testGrammar()
	a, err := g.Expand(4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Expand(4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two expansions of the same grammar differ")
	}
	if len(a) != 16 {
		t.Errorf("expanded to %d candidates, want 16", len(a))
	}
	seen := map[string]bool{}
	for _, c := range a {
		if seen[c.Label] {
			t.Errorf("duplicate label %q", c.Label)
		}
		seen[c.Label] = true
		if c.Bits == 0 {
			t.Errorf("%s: zero SRAM bits", c.Label)
		}
	}
}

// TestPaperGrammarScale proves the default space clears the four-digit
// candidate floor the roadmap demands.
func TestPaperGrammarScale(t *testing.T) {
	cands, err := PaperGrammar().Expand(4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 1000 {
		t.Errorf("paper grammar expands to %d candidates, want >= 1000", len(cands))
	}
}

func TestGrammarRejectsBadTokens(t *testing.T) {
	if _, err := (Grammar{Organizations: []string{"ringbus"}}).Expand(1, 4096); err == nil {
		t.Error("unknown organization accepted")
	}
	if _, err := (Grammar{Policies: []string{"plru"}}).Expand(1, 4096); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := (Grammar{BlockRatios: []int{3}}).Expand(1, 4096); err == nil {
		t.Error("non-power-of-two block ratio accepted")
	}
}

// TestGrammarSynonymAxes covers the victim-cache and RLT axes: the RLT
// axis must only attach to the "rlt" organization (and be dropped, not
// rejected, elsewhere), labels must carry the new fields, and every
// expanded candidate must actually build.
func TestGrammarSynonymAxes(t *testing.T) {
	g := Grammar{
		Organizations: []string{"vr", "rlt"},
		L1Sizes:       []uint64{4 << 10},
		L2Sizes:       []uint64{64 << 10},
		VictimEntries: []int{0, 4},
		RLTEntries:    []int{0, 16},
	}
	cands, err := g.Expand(1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// vr expands over victim only (2); rlt over victim x rlt (4).
	if len(cands) != 6 {
		for _, c := range cands {
			t.Log(c.Label)
		}
		t.Fatalf("expanded to %d candidates, want 6", len(cands))
	}
	var sawVC, sawRLT bool
	for _, c := range cands {
		if c.Config.RLTEntries != 0 && c.Config.Organization != system.VRRLT {
			t.Errorf("%s: RLT entries on a non-rlt organization", c.Label)
		}
		if c.Config.VictimEntries == 4 {
			sawVC = true
			if !bytes.Contains([]byte(c.Label), []byte("/vc=4")) {
				t.Errorf("%s: victim cache missing from label", c.Label)
			}
		}
		if c.Config.RLTEntries == 16 {
			sawRLT = true
			if !bytes.Contains([]byte(c.Label), []byte("/rlt=16")) {
				t.Errorf("%s: RLT size missing from label", c.Label)
			}
		}
		if _, err := system.New(c.Config); err != nil {
			t.Errorf("%s: expanded candidate does not build: %v", c.Label, err)
		}
	}
	if !sawVC || !sawRLT {
		t.Errorf("axes not exercised: victim=%v rlt=%v", sawVC, sawRLT)
	}
}

func TestLegalRejectsSynonymMisuse(t *testing.T) {
	base := system.Config{
		Organization:  system.VR,
		L1:            cache.Geometry{Size: 4 << 10, Block: 16, Assoc: 1},
		L2:            cache.Geometry{Size: 64 << 10, Block: 32, Assoc: 1},
		TLBEntries:    64,
		TLBAssoc:      2,
		WriteBufDepth: 1,
	}
	if !legal(base) {
		t.Fatal("baseline config not legal")
	}
	c := base
	c.RLTEntries = 16
	if legal(c) {
		t.Error("RLT entries on a vr organization accepted")
	}
	c.Organization = system.VRRLT
	if !legal(c) {
		t.Error("RLT entries on the rlt organization rejected")
	}
	c.RLTEntries = 12
	if legal(c) {
		t.Error("non-power-of-two RLT entry count accepted")
	}
	c = base
	c.VictimEntries = -1
	if legal(c) {
		t.Error("negative victim entries accepted")
	}
}

// TestSRAMBitsModel pins the cost model's monotonicity: more capacity,
// associativity, buffer depth or TLB reach never costs fewer bits.
func TestSRAMBitsModel(t *testing.T) {
	base := system.Config{
		CPUs:          4,
		Organization:  system.VR,
		L1:            cache.Geometry{Size: 8 << 10, Block: 16, Assoc: 1},
		L2:            cache.Geometry{Size: 128 << 10, Block: 32, Assoc: 1},
		TLBEntries:    64,
		TLBAssoc:      2,
		WriteBufDepth: 1,
	}
	b0 := SRAMBits(base)

	grow := base
	grow.L2.Size = 256 << 10
	if SRAMBits(grow) <= b0 {
		t.Error("doubling L2 capacity did not raise the cost")
	}
	grow = base
	grow.L1.Assoc = 2
	if SRAMBits(grow) <= b0 {
		t.Error("doubling L1 associativity did not raise the cost")
	}
	grow = base
	grow.WriteBufDepth = 8
	if SRAMBits(grow) <= b0 {
		t.Error("deepening the write buffer did not raise the cost")
	}
	grow = base
	grow.VictimEntries = 4
	if SRAMBits(grow) <= b0 {
		t.Error("adding a victim cache did not raise the cost")
	}
	if SRAMBits(base) != b0 {
		t.Error("cost model is not deterministic")
	}

	// The RLT trades per-subentry v-pointers for a shared table: a small
	// table must cost less than pointers on every subentry, but growing the
	// table must still raise the cost monotonically.
	rlt := base
	rlt.Organization = system.VRRLT
	rlt.RLTEntries = 16
	small := SRAMBits(rlt)
	rlt.RLTEntries = 256
	big := SRAMBits(rlt)
	if big <= small {
		t.Error("growing the RLT did not raise the cost")
	}
	if small >= b0 {
		t.Errorf("a 16-entry RLT (%d bits) should undercut per-subentry v-pointers (%d bits)", small, b0)
	}
}

// TestSearchDeterministic is the satellite guarantee: the same grammar and
// workload produce byte-identical results at every parallelism.
func TestSearchDeterministic(t *testing.T) {
	var outs [][]byte
	for _, par := range []int{1, 4} {
		o := testOptions()
		o.Parallel = par
		res, err := Search(o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf.Bytes())
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Errorf("results differ across -parallel:\n%s\nvs\n%s", outs[0], outs[1])
	}
}

// TestPruningSound is the tentpole guarantee: the pruned search returns
// exactly the frontier the exhaustive search finds on the reference
// grammar — pruning changes the cost of the search, never its answer.
func TestPruningSound(t *testing.T) {
	pruned, err := Search(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := testOptions()
	o.Exhaustive = true
	exhaustive, err := Search(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	if !reflect.DeepEqual(stripProbe(pruned.Frontier), stripProbe(exhaustive.Frontier)) {
		t.Errorf("pruned frontier differs from exhaustive:\npruned:     %+v\nexhaustive: %+v",
			pruned.Frontier, exhaustive.Frontier)
	}
	if !pruned.MarginSound {
		t.Errorf("margin %.4f is not sound against probe error spread %.4f",
			pruned.Margin, pruned.ProbeErrSpread)
	}
	if pruned.Pruned == 0 {
		t.Log("note: the probe pass pruned nothing on this grammar")
	}
}

// stripProbe drops the probe column (absent from exhaustive results) so
// frontiers compare on (label, bits, exact Tacc) alone.
func stripProbe(pts []Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		p.ProbeTacc = 0
		out[i] = p
	}
	return out
}

// TestSearchReports smoke-tests the text renderer and plot.
func TestSearchReports(t *testing.T) {
	res, err := Search(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.WriteText(&buf)
	s := buf.String()
	for _, want := range []string{"Pareto frontier", "candidates", "o"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("text report lacks %q:\n%s", want, s)
		}
	}
}
