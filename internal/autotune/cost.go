package autotune

import (
	"repro/internal/addr"
	"repro/internal/system"
)

// addressBits is the modeled address width, virtual and physical (the
// paper's generation of machines; tags are computed against this width).
const addressBits = 32

// pidBits is the process-identifier width a PID-tagged V-cache adds to
// every tag (vcache packs the PID into 16 bits).
const pidBits = 16

// log2 is addr.MustLog2 for int operands.
func log2i(n int) uint { return addr.MustLog2(uint64(n)) }

// recencyBits is the per-line replacement state: rank bits for an
// assoc-way set (zero for direct-mapped, where there is nothing to rank).
func recencyBits(assoc int) uint64 {
	if assoc <= 1 {
		return 0
	}
	return uint64(log2i(assoc))
}

// SRAMBits is the static hardware cost of a configuration in bits of SRAM:
// data arrays, tag arrays with their per-line control state, the TLB, and
// the write buffer, summed over every CPU's hierarchy. The model counts
// the state this simulator actually maintains:
//
//   - L1 line: tag + valid + dirty + recency; a V-R first level tags
//     virtually (plus pidBits when PID-tagged) and adds the swapped-valid
//     and swapped-dirty bits of the paper's context-switch scheme; a
//     write-through first level keeps no dirty bit.
//   - L2 line: physical tag + valid + coherence state + recency, plus one
//     subentry per first-level block: inclusion, buffer, V-dirty, R-dirty
//     and the v-pointer (cache-select bit + L1 set + L1 way).
//   - TLB entry: virtual-page tag + physical frame number + valid +
//     recency.
//   - Write buffer (or the write-through queue): depth x (physical address
//   - one first-level block of data).
//   - Victim cache (when configured): entries x (physical block tag +
//     valid + one first-level block of data).
//   - Reverse-lookup synonym table (the "rlt" organization): entries x
//     (physical block tag + v-pointer + valid); in exchange the L2
//     subentries drop their per-subentry v-pointers.
//
// The model is deliberately static and deterministic — two calls on the
// same Config always agree — because it is the x-axis of the Pareto
// frontier.
func SRAMBits(cfg system.Config) uint64 {
	cpus := cfg.CPUs
	if cpus == 0 {
		cpus = 1
	}
	var bits uint64

	// First level.
	l1 := cfg.L1
	l1Lines := uint64(l1.Sets() * l1.Assoc)
	l1Tag := uint64(addressBits) - uint64(l1.SetBits()) - uint64(l1.BlockBits())
	vr := cfg.Organization == system.VR || cfg.Organization == system.VRRLT
	if vr && cfg.PIDTagged {
		l1Tag += pidBits
	}
	l1Ctl := uint64(1) + recencyBits(l1.Assoc) // valid + recency
	if !cfg.L1WriteThrough {
		l1Ctl++ // dirty
	}
	if vr {
		l1Ctl += 2 // swapped-valid + swapped-dirty
	}
	bits += cfgLevelBits(l1Lines, l1Tag+l1Ctl, l1.Size)

	// Second level: tag store with coherence state and reverse-translation
	// subentries, shared structure across all three organizations.
	l2 := cfg.L2
	l2Lines := uint64(l2.Sets() * l2.Assoc)
	l2Tag := uint64(addressBits) - uint64(l2.SetBits()) - uint64(l2.BlockBits())
	subs := l2.Block / l1.Block
	vptr := uint64(1) + uint64(l1.SetBits()) + recencyBits(l1.Assoc) // cache select + set + way
	subBits := (4 + vptr) * subs                                     // inclusion, buffer, V-dirty, R-dirty + v-pointer
	if cfg.Organization == system.VRRLT {
		// The reverse-lookup table replaces the per-subentry v-pointers
		// with a small shared structure, costed below.
		subBits = 4 * subs
	}
	l2Ctl := uint64(1) + 1 + recencyBits(l2.Assoc) + subBits // valid + coherence state + recency + subentries
	bits += cfgLevelBits(l2Lines, l2Tag+l2Ctl, l2.Size)

	// Reverse-lookup synonym table: each entry tags a physical block and
	// holds one v-pointer plus a valid bit.
	if cfg.Organization == system.VRRLT {
		entries := uint64(cfg.RLTEntries)
		if entries == 0 {
			// Mirror system.New's default: the largest power of two no
			// bigger than half the first level's line count.
			entries = 1
			for entries*2 <= l1Lines/2 {
				entries *= 2
			}
		}
		rltTag := uint64(addressBits) - uint64(l1.BlockBits())
		bits += entries * (rltTag + vptr + 1)
	}

	// Victim cache: fully associative, one block of data plus physical tag,
	// valid bit, and FIFO state folded into the tag entry.
	if cfg.VictimEntries > 0 {
		vtag := uint64(addressBits) - uint64(l1.BlockBits())
		bits += uint64(cfg.VictimEntries) * (vtag + 1 + l1.Block*8)
	}

	// TLB.
	entries := cfg.TLBEntries
	if entries == 0 {
		entries = 64
	}
	assoc := cfg.TLBAssoc
	if assoc == 0 {
		assoc = 2
	}
	pageBits := uint64(addr.MustLog2(pageSizeOf(cfg)))
	vpn := uint64(addressBits) - pageBits
	tlbSets := uint64(entries / assoc)
	tlbTag := vpn - uint64(addr.MustLog2(tlbSets))
	tlbEntry := tlbTag + vpn + 1 + recencyBits(assoc) // tag + frame + valid + recency
	bits += uint64(entries) * tlbEntry

	// Write buffer (write-back) or write-through queue: either way, depth
	// entries of one block plus its physical address.
	depth := cfg.WriteBufDepth
	if depth == 0 {
		depth = 1
	}
	bits += uint64(depth) * (addressBits + l1.Block*8)

	return bits * uint64(cpus)
}

func pageSizeOf(cfg system.Config) uint64 {
	if cfg.PageSize == 0 {
		return 4096
	}
	return cfg.PageSize
}

// cfgLevelBits is one cache level's cost: lines x (tag + control) for the
// tag store plus 8 bits per byte of data.
func cfgLevelBits(lines, perLine, dataBytes uint64) uint64 {
	return lines*perLine + dataBytes*8
}
