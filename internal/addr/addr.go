// Package addr defines the address types and bit arithmetic shared by the
// cache, TLB and virtual-memory packages.
//
// The simulator follows the paper's VAX-era conventions: byte-addressed
// memory, power-of-two page and block sizes, and set indices taken from the
// low-order address bits above the block offset. All sizes are in bytes.
package addr

import (
	"fmt"
	"math/bits"
)

// VAddr is a virtual (process-relative) byte address.
type VAddr uint64

// PAddr is a physical byte address.
type PAddr uint64

// PID identifies a process. Virtual addresses are meaningful only relative
// to a PID; the pair (PID, page number) names a virtual page.
type PID uint16

// NoPID is a sentinel meaning "no process"; real PIDs start at 1.
const NoPID PID = 0

// Log2 returns the base-2 logarithm of v, which must be a power of two.
func Log2(v uint64) (uint, error) {
	if v == 0 || v&(v-1) != 0 {
		return 0, fmt.Errorf("addr: %d is not a power of two", v)
	}
	return uint(bits.TrailingZeros64(v)), nil
}

// MustLog2 is Log2 for values known to be powers of two at construction
// time; it panics otherwise.
func MustLog2(v uint64) uint {
	n, err := Log2(v)
	if err != nil {
		panic(err)
	}
	return n
}

// IsPow2 reports whether v is a non-zero power of two.
func IsPow2(v uint64) bool {
	return v != 0 && v&(v-1) == 0
}

// PageGeom captures a page size and exposes the derived bit fields.
type PageGeom struct {
	size uint64
	bits uint
}

// NewPageGeom builds a PageGeom for the given page size in bytes.
func NewPageGeom(pageSize uint64) (PageGeom, error) {
	bits, err := Log2(pageSize)
	if err != nil {
		return PageGeom{}, fmt.Errorf("addr: bad page size: %w", err)
	}
	return PageGeom{size: pageSize, bits: bits}, nil
}

// Size returns the page size in bytes.
func (g PageGeom) Size() uint64 { return g.size }

// Bits returns log2(page size).
func (g PageGeom) Bits() uint { return g.bits }

// VPage returns the virtual page number of a.
func (g PageGeom) VPage(a VAddr) uint64 { return uint64(a) >> g.bits }

// PFrame returns the physical frame number of a.
func (g PageGeom) PFrame(a PAddr) uint64 { return uint64(a) >> g.bits }

// Offset returns the in-page offset of a virtual address.
func (g PageGeom) Offset(a VAddr) uint64 { return uint64(a) & (g.size - 1) }

// POffset returns the in-page offset of a physical address.
func (g PageGeom) POffset(a PAddr) uint64 { return uint64(a) & (g.size - 1) }

// JoinP rebuilds a physical address from a frame number and offset.
func (g PageGeom) JoinP(frame, offset uint64) PAddr {
	return PAddr(frame<<g.bits | offset&(g.size-1))
}

// JoinV rebuilds a virtual address from a page number and offset.
func (g PageGeom) JoinV(page, offset uint64) VAddr {
	return VAddr(page<<g.bits | offset&(g.size-1))
}

// Translate substitutes the frame number for the page number of v.
func (g PageGeom) Translate(v VAddr, frame uint64) PAddr {
	return g.JoinP(frame, g.Offset(v))
}

// BlockGeom captures a cache block size.
type BlockGeom struct {
	size uint64
	bits uint
}

// NewBlockGeom builds a BlockGeom for the given block size in bytes.
func NewBlockGeom(blockSize uint64) (BlockGeom, error) {
	bits, err := Log2(blockSize)
	if err != nil {
		return BlockGeom{}, fmt.Errorf("addr: bad block size: %w", err)
	}
	return BlockGeom{size: blockSize, bits: bits}, nil
}

// Size returns the block size in bytes.
func (g BlockGeom) Size() uint64 { return g.size }

// Bits returns log2(block size).
func (g BlockGeom) Bits() uint { return g.bits }

// VBlock returns the virtual block number of a.
func (g BlockGeom) VBlock(a VAddr) uint64 { return uint64(a) >> g.bits }

// PBlock returns the physical block number of a.
func (g BlockGeom) PBlock(a PAddr) uint64 { return uint64(a) >> g.bits }

// PBase returns the address of the first byte of a's block.
func (g BlockGeom) PBase(a PAddr) PAddr { return a &^ PAddr(g.size-1) }

// VBase returns the address of the first byte of a's block.
func (g BlockGeom) VBase(a VAddr) VAddr { return a &^ VAddr(g.size-1) }
