package addr

import (
	"testing"
	"testing/quick"
)

func TestLog2(t *testing.T) {
	cases := []struct {
		in   uint64
		want uint
	}{
		{1, 0}, {2, 1}, {4, 2}, {16, 4}, {4096, 12}, {1 << 20, 20}, {1 << 62, 62},
	}
	for _, c := range cases {
		got, err := Log2(c.in)
		if err != nil {
			t.Fatalf("Log2(%d): unexpected error %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Log2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestLog2Errors(t *testing.T) {
	for _, bad := range []uint64{0, 3, 5, 6, 7, 12, 4097, 1<<20 + 1} {
		if _, err := Log2(bad); err == nil {
			t.Errorf("Log2(%d): want error, got nil", bad)
		}
	}
}

func TestMustLog2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLog2(3) did not panic")
		}
	}()
	MustLog2(3)
}

func TestIsPow2(t *testing.T) {
	for _, v := range []uint64{1, 2, 4, 1024, 1 << 40} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false, want true", v)
		}
	}
	for _, v := range []uint64{0, 3, 5, 1023, 1<<40 + 1} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true, want false", v)
		}
	}
}

func TestPageGeomFields(t *testing.T) {
	g, err := NewPageGeom(4096)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 4096 || g.Bits() != 12 {
		t.Fatalf("got size %d bits %d", g.Size(), g.Bits())
	}
	a := VAddr(0x12345)
	if got := g.VPage(a); got != 0x12 {
		t.Errorf("VPage = %#x, want 0x12", got)
	}
	if got := g.Offset(a); got != 0x345 {
		t.Errorf("Offset = %#x, want 0x345", got)
	}
	p := PAddr(0xABCDE)
	if got := g.PFrame(p); got != 0xAB {
		t.Errorf("PFrame = %#x, want 0xAB", got)
	}
	if got := g.POffset(p); got != 0xCDE {
		t.Errorf("POffset = %#x, want 0xCDE", got)
	}
}

func TestPageGeomBadSize(t *testing.T) {
	if _, err := NewPageGeom(3000); err == nil {
		t.Fatal("NewPageGeom(3000): want error")
	}
}

func TestTranslatePreservesOffset(t *testing.T) {
	g, _ := NewPageGeom(4096)
	v := VAddr(0x7_1234)
	p := g.Translate(v, 0x99)
	if g.POffset(p) != g.Offset(v) {
		t.Errorf("offset changed: %#x vs %#x", g.POffset(p), g.Offset(v))
	}
	if g.PFrame(p) != 0x99 {
		t.Errorf("frame = %#x, want 0x99", g.PFrame(p))
	}
}

func TestJoinSplitRoundTrip(t *testing.T) {
	g, _ := NewPageGeom(1 << 13)
	f := func(frame uint64, off uint64) bool {
		frame &= 0xFFFF_FFFF
		p := g.JoinP(frame, off)
		return g.PFrame(p) == frame && g.POffset(p) == off&(g.Size()-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinVRoundTrip(t *testing.T) {
	g, _ := NewPageGeom(1 << 12)
	f := func(page uint64, off uint64) bool {
		page &= 0xFFFF_FFFF
		v := g.JoinV(page, off)
		return g.VPage(v) == page && g.Offset(v) == off&(g.Size()-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockGeom(t *testing.T) {
	g, err := NewBlockGeom(16)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 16 || g.Bits() != 4 {
		t.Fatalf("got size %d bits %d", g.Size(), g.Bits())
	}
	if got := g.PBlock(0x1234); got != 0x123 {
		t.Errorf("PBlock = %#x, want 0x123", got)
	}
	if got := g.VBlock(0x1234); got != 0x123 {
		t.Errorf("VBlock = %#x, want 0x123", got)
	}
	if got := g.PBase(0x1234); got != 0x1230 {
		t.Errorf("PBase = %#x, want 0x1230", got)
	}
	if got := g.VBase(0x123F); got != 0x1230 {
		t.Errorf("VBase = %#x, want 0x1230", got)
	}
}

func TestBlockGeomBadSize(t *testing.T) {
	if _, err := NewBlockGeom(0); err == nil {
		t.Fatal("NewBlockGeom(0): want error")
	}
	if _, err := NewBlockGeom(24); err == nil {
		t.Fatal("NewBlockGeom(24): want error")
	}
}

func TestBlockBaseIsAligned(t *testing.T) {
	g, _ := NewBlockGeom(64)
	f := func(a uint64) bool {
		p := PAddr(a)
		base := g.PBase(p)
		return uint64(base)%64 == 0 && base <= p && p-base < 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
