package jobs_test

// Restart-resume equivalence: a daemon shut down mid-job and reopened on
// the same state directory must finish every in-flight job with a report
// byte-identical to an uninterrupted run's. Run and sweep jobs resume from
// their checkpoint container; autotune jobs re-run their deterministic
// search. These tests drive the Manager directly (no HTTP) — the daemon's
// SIGTERM path is the same Close, exercised end-to-end by ci.sh's smoke.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/jobs"
)

const (
	restartRunConfig = `{"kind":"run","preset":"pops","scale":0.15,"timed":true}`

	restartSweepConfig = `{
		"kind": "sweep", "preset": "thor", "scale": 0.1,
		"machines": [{"org": "vr"}, {"org": "rr", "l2Size": 524288}]}`

	restartAutotuneConfig = `{
		"kind": "autotune", "preset": "pops", "scale": 0.05,
		"autotune": {
			"exhaustive": true,
			"grammar": {"organizations": ["vr", "rr"], "l1Assocs": [1, 2]}}}`
)

// managerOptions keeps the checkpoint cadence small so an interrupt lands
// between checkpoints, not before the first one.
func managerOptions(dir string) jobs.Options {
	return jobs.Options{Dir: dir, Workers: 2, CheckpointEvery: 20000, ProgressEvery: 5000}
}

func waitDone(t *testing.T, m *jobs.Manager, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if jobs.Terminal(st.State) {
			if st.State != jobs.StateDone {
				t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
			}
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 2m", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// uninterruptedReport runs the job to completion in one daemon lifetime.
func uninterruptedReport(t *testing.T, config string) []byte {
	t.Helper()
	m, err := jobs.Open(managerOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st, err := m.Submit([]byte(config))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, st.ID)
	report, err := m.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// interruptedReport starts the job, shuts the manager down mid-run (the
// daemon-restart path: in-flight jobs park with a final checkpoint and stay
// persisted as running), reopens the same state directory, and returns the
// resumed job's report.
func interruptedReport(t *testing.T, config string, wantResume bool) []byte {
	t.Helper()
	dir := t.TempDir()
	m1, err := jobs.Open(managerOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit([]byte(config))
	if err != nil {
		t.Fatal(err)
	}
	// Let the job make real progress before pulling the plug, so the resume
	// genuinely continues from a mid-run snapshot. Autotune jobs expose no
	// mid-search progress; for them any moment inside the search will do.
	if wantResume {
		deadline := time.Now().Add(time.Minute)
		for {
			cur, _ := m1.Get(st.ID)
			if cur.Records > 25000 {
				break
			}
			if jobs.Terminal(cur.State) {
				t.Fatalf("job finished (%s) before the shutdown; grow the workload", cur.State)
			}
			if time.Now().After(deadline) {
				t.Fatal("no progress after 1m")
			}
			time.Sleep(time.Millisecond)
		}
	} else {
		for {
			cur, _ := m1.Get(st.ID)
			if cur.State == jobs.StateRunning || jobs.Terminal(cur.State) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jobs.VerifyNoLeaks(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// The job must have parked, not finished, or the test proves nothing.
	if cur, _ := m1.Get(st.ID); wantResume && cur.State != jobs.StateRunning {
		t.Fatalf("job is %s after shutdown, want parked as running", cur.State)
	}

	m2, err := jobs.Open(managerOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	fin := waitDone(t, m2, st.ID)
	if wantResume && !fin.Resumed {
		t.Error("final status does not mark the job as resumed")
	}
	if m2.Counters().Resumed == 0 {
		t.Error("fleet counters do not record the resume")
	}
	report, err := m2.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return report
}

func testRestartEquivalence(t *testing.T, config string, wantResume bool) {
	t.Helper()
	want := uninterruptedReport(t, config)
	got := interruptedReport(t, config, wantResume)
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed report differs from uninterrupted report:\n--- uninterrupted (%d bytes)\n%.2000s\n--- resumed (%d bytes)\n%.2000s",
			len(want), want, len(got), got)
	}
}

func TestRestartResumeRun(t *testing.T) {
	testRestartEquivalence(t, restartRunConfig, true)
}

func TestRestartResumeSweep(t *testing.T) {
	testRestartEquivalence(t, restartSweepConfig, true)
}

func TestRestartResumeAutotune(t *testing.T) {
	// The search is not interruptible mid-flight: the shutdown discards its
	// result, the spec stays running, and the reopened daemon re-runs the
	// deterministic search from scratch.
	testRestartEquivalence(t, restartAutotuneConfig, false)
}

// TestRestartPreservesQueuedJobs: jobs admitted but never started survive a
// restart in submission order.
func TestRestartPreservesQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	opt := jobs.Options{Dir: dir, Workers: 1, CheckpointEvery: 20000}
	m1, err := jobs.Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	// One long job occupies the worker; two quick ones queue behind it.
	blocker, err := m1.Submit([]byte(`{"kind":"run","preset":"pops","scale":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	var queued []string
	for i := 0; i < 2; i++ {
		st, err := m1.Submit([]byte(`{"kind":"run","preset":"pops","scale":0.02}`))
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, st.ID)
	}
	for {
		cur, _ := m1.Get(blocker.ID)
		if cur.State == jobs.StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := jobs.Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	waitDone(t, m2, blocker.ID)
	for _, id := range queued {
		st := waitDone(t, m2, id)
		if st.Refs != st.TotalRefs {
			t.Errorf("queued job %s finished with %d/%d refs", id, st.Refs, st.TotalRefs)
		}
	}
	if got := len(m2.List()); got != 3 {
		t.Errorf("recovered registry has %d jobs, want 3", got)
	}
}
