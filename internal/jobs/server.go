package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/monitor"
)

// Server is the HTTP face of a Manager:
//
//	POST   /jobs             submit a job (JSON Config in, Status out)
//	GET    /jobs             list every job's status
//	GET    /jobs/{id}        one job's status (poll this for progress)
//	GET    /jobs/{id}/report a finished job's report document
//	GET    /jobs/{id}/events server-sent progress events until terminal
//	DELETE /jobs/{id}        cancel (also POST /jobs/{id}/cancel)
//	GET    /metrics          Prometheus fleet + per-job metrics
//	GET    /healthz          liveness
//
// plus the standard pprof endpoints under /debug/pprof/. Errors are JSON
// documents ({"error": ..., "field": ...}); submission errors carry the
// offending field path.
type Server struct {
	m      *Manager
	mux    *http.ServeMux
	closed chan struct{}

	// sseInterval is the progress poll cadence for /events (tests shrink it).
	sseInterval time.Duration
}

// NewServer wraps a Manager. The caller owns the Manager's lifecycle;
// call Close before shutting the HTTP listener down so streaming handlers
// terminate.
func NewServer(m *Manager) *Server {
	s := &Server{m: m, closed: make(chan struct{}), sseInterval: 100 * time.Millisecond}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// Close unblocks streaming handlers; the Server serves plain requests
// until its listener stops.
func (s *Server) Close() {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort write to a live client
}

func writeError(w http.ResponseWriter, code int, err error) {
	var je *Error
	if !errors.As(err, &je) {
		je = &Error{Msg: err.Error()}
	}
	writeJSON(w, code, je)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such endpoint"))
		return
	}
	fmt.Fprint(w, `vrsimd job server
POST   /jobs             submit a job (JSON config)
GET    /jobs             list jobs
GET    /jobs/{id}        status + progress
GET    /jobs/{id}/report finished job's report
GET    /jobs/{id}/events SSE progress stream
DELETE /jobs/{id}        cancel
GET    /metrics          Prometheus fleet metrics
GET    /healthz          liveness
`)
}

// maxSubmitBytes bounds a submission document; a job config is small.
const maxSubmitBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSubmitBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxSubmitBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", maxSubmitBytes))
		return
	}
	st, err := s.m.Submit(body)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, err := s.m.Report(id)
	if err != nil {
		code := http.StatusNotFound
		if st, ok := s.m.Get(id); ok && !Terminal(st.State) {
			code = http.StatusConflict // exists but not finished yet
		}
		writeError(w, code, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.m.Cancel(id); err != nil {
		code := http.StatusConflict
		if _, ok := s.m.Get(id); !ok {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	st, _ := s.m.Get(id)
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams status snapshots as server-sent events: one event
// per observable progress change, a final event at the terminal state, then
// the stream closes. Polling GET /jobs/{id} carries the same document.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.m.Get(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	ticker := time.NewTicker(s.sseInterval)
	defer ticker.Stop()
	var last []byte
	for {
		st, ok := s.m.Get(id)
		if !ok {
			return
		}
		data, err := json.Marshal(st)
		if err != nil {
			return
		}
		if string(data) != string(last) {
			fmt.Fprintf(w, "data: %s\n\n", data)
			fl.Flush()
			last = data
		}
		if Terminal(st.State) {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.closed:
			return
		case <-ticker.C:
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	monitor.WriteFleetMetrics(w, s.fleetStats())
}

// fleetStats assembles the monitor-layer view of the fleet.
func (s *Server) fleetStats() monitor.FleetStats {
	c := s.m.Counters()
	fs := monitor.FleetStats{
		Workers:    s.m.Workers(),
		QueueDepth: s.m.QueueDepth(),
		Submitted:  c.Submitted,
		Done:       c.Done,
		Failed:     c.Failed,
		Canceled:   c.Canceled,
		Resumed:    c.Resumed,
	}
	for _, st := range s.m.List() {
		fs.Jobs = append(fs.Jobs, monitor.FleetJob{
			ID: st.ID, Kind: st.Kind, State: st.State,
			Records: st.Records, Refs: st.Refs, TotalRefs: st.TotalRefs,
		})
	}
	return fs
}
