package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/monitor"
	"repro/internal/tsdb"
)

// Server is the HTTP face of a Manager:
//
//	POST   /jobs                  submit a job (JSON Config in, Status out)
//	GET    /jobs                  list every job's status
//	GET    /jobs/{id}             one job's status (poll this for progress)
//	GET    /jobs/{id}/report      a finished job's report document
//	GET    /jobs/{id}/events      server-sent progress events until terminal
//	GET    /jobs/{id}/timeseries  persisted per-window metrics (JSON or CSV)
//	DELETE /jobs/{id}             cancel (also POST /jobs/{id}/cancel)
//	GET    /fleet                 one-poll dashboard document (vrsimd top)
//	GET    /metrics               Prometheus fleet + per-job metrics
//	GET    /healthz               liveness
//
// plus the standard pprof endpoints under /debug/pprof/. Errors are JSON
// documents ({"error": ..., "field": ...}); submission errors carry the
// offending field path.
type Server struct {
	m      *Manager
	mux    *http.ServeMux
	closed chan struct{}

	// sseInterval is the progress poll cadence for /events (tests shrink it).
	sseInterval time.Duration
}

// NewServer wraps a Manager. The caller owns the Manager's lifecycle;
// call Close before shutting the HTTP listener down so streaming handlers
// terminate.
func NewServer(m *Manager) *Server {
	s := &Server{m: m, closed: make(chan struct{}), sseInterval: 100 * time.Millisecond}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/timeseries", s.handleTimeseries)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /fleet", s.handleFleet)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// Close unblocks streaming handlers; the Server serves plain requests
// until its listener stops.
func (s *Server) Close() {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort write to a live client
}

func writeError(w http.ResponseWriter, code int, err error) {
	var je *Error
	if !errors.As(err, &je) {
		je = &Error{Msg: err.Error()}
	}
	writeJSON(w, code, je)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such endpoint"))
		return
	}
	fmt.Fprint(w, `vrsimd job server
POST   /jobs                  submit a job (JSON config)
GET    /jobs                  list jobs
GET    /jobs/{id}             status + progress
GET    /jobs/{id}/report      finished job's report
GET    /jobs/{id}/events      SSE progress stream
GET    /jobs/{id}/timeseries  per-window metrics (?metric=&from=&to=&points=&format=)
DELETE /jobs/{id}             cancel
GET    /fleet                 dashboard document (vrsimd top)
GET    /metrics               Prometheus fleet metrics
GET    /healthz               liveness
`)
}

// maxSubmitBytes bounds a submission document; a job config is small.
const maxSubmitBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSubmitBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxSubmitBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", maxSubmitBytes))
		return
	}
	st, err := s.m.Submit(body)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, err := s.m.Report(id)
	if err != nil {
		code := http.StatusNotFound
		if st, ok := s.m.Get(id); ok && !Terminal(st.State) {
			code = http.StatusConflict // exists but not finished yet
		}
		writeError(w, code, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.m.Cancel(id); err != nil {
		code := http.StatusConflict
		if _, ok := s.m.Get(id); !ok {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	st, _ := s.m.Get(id)
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams status snapshots as server-sent events: one event
// per observable progress change, a final event at the terminal state, then
// the stream closes. Polling GET /jobs/{id} carries the same document.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.m.Get(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	ticker := time.NewTicker(s.sseInterval)
	defer ticker.Stop()
	var last []byte
	for {
		st, ok := s.m.Get(id)
		if !ok {
			return
		}
		data, err := json.Marshal(st)
		if err != nil {
			return
		}
		if string(data) != string(last) {
			fmt.Fprintf(w, "data: %s\n\n", data)
			fl.Flush()
			last = data
		}
		if Terminal(st.State) {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.closed:
			return
		case <-ticker.C:
		}
	}
}

// TimeseriesPoint is one sample of a timeseries response with the requested
// metric evaluated over it.
type TimeseriesPoint struct {
	tsdb.Sample
	Value float64 `json:"value"`
}

// TimeseriesResponse is the GET /jobs/{id}/timeseries document.
type TimeseriesResponse struct {
	Job        string            `json:"job"`
	Metric     string            `json:"metric"`
	WindowRefs uint64            `json:"windowRefs"`
	Samples    []TimeseriesPoint `json:"samples"`
}

// handleTimeseries serves a job's persisted per-window metrics. Query
// parameters: metric (default l1ratio), from/to (inclusive window sequence
// bounds), points (downsample cap), format=json|csv.
func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	qs := r.URL.Query()
	metric := qs.Get("metric")
	if metric == "" {
		metric = "l1ratio"
	}
	if _, err := (tsdb.Sample{}).Value(metric); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var q tsdb.Query
	for _, p := range []struct {
		name string
		dst  *uint64
	}{{"from", &q.FromSeq}, {"to", &q.ToSeq}} {
		if v := qs.Get(p.name); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s: %v", p.name, err))
				return
			}
			*p.dst = n
		}
	}
	if v := qs.Get("points"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad points: %q", v))
			return
		}
		q.MaxPoints = n
	}
	samples, err := s.m.Timeseries(id, q)
	switch {
	case errors.Is(err, tsdb.ErrNoSeries):
		samples = nil // the job exists but has no closed windows yet
	case err != nil:
		code := http.StatusInternalServerError
		if _, ok := s.m.Get(id); !ok {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	if qs.Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		tsdb.WriteCSV(w, samples) //nolint:errcheck // best-effort write to a live client
		return
	}
	resp := TimeseriesResponse{
		Job: id, Metric: metric, WindowRefs: s.m.ProgressEvery(),
		Samples: make([]TimeseriesPoint, len(samples)),
	}
	for i, sm := range samples {
		v, _ := sm.Value(metric) // metric validated above
		resp.Samples[i] = TimeseriesPoint{Sample: sm, Value: v}
	}
	writeJSON(w, http.StatusOK, resp)
}

// LatencySummary condenses one fleet latency histogram for the dashboard;
// all values are seconds.
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	Max   float64 `json:"max"`
}

func summarize(h *monitor.Histogram) LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		Mean:  h.Mean() / 1e3,
		P50:   h.Quantile(0.50) / 1e3,
		P95:   h.Quantile(0.95) / 1e3,
		Max:   float64(h.Max()) / 1e3,
	}
}

// FleetView is the GET /fleet document: everything the live dashboard
// renders, in one poll.
type FleetView struct {
	Workers      int            `json:"workers"`
	QueueDepth   int            `json:"queueDepth"`
	WindowRefs   uint64         `json:"windowRefs"`
	Counters     Counters       `json:"counters"`
	QueueSeconds LatencySummary `json:"queueSeconds"`
	RunSeconds   LatencySummary `json:"runSeconds"`
	Jobs         []Status       `json:"jobs"`
}

func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	qh, rh := s.m.Latency()
	writeJSON(w, http.StatusOK, FleetView{
		Workers:      s.m.Workers(),
		QueueDepth:   s.m.QueueDepth(),
		WindowRefs:   s.m.ProgressEvery(),
		Counters:     s.m.Counters(),
		QueueSeconds: summarize(&qh),
		RunSeconds:   summarize(&rh),
		Jobs:         s.m.List(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	monitor.WriteFleetMetrics(w, s.fleetStats())
}

// fleetStats assembles the monitor-layer view of the fleet.
func (s *Server) fleetStats() monitor.FleetStats {
	c := s.m.Counters()
	qh, rh := s.m.Latency()
	fs := monitor.FleetStats{
		Workers:     s.m.Workers(),
		QueueDepth:  s.m.QueueDepth(),
		Submitted:   c.Submitted,
		Done:        c.Done,
		Failed:      c.Failed,
		Canceled:    c.Canceled,
		Resumed:     c.Resumed,
		QueueMillis: &qh,
		RunMillis:   &rh,
	}
	for _, st := range s.m.List() {
		fs.Jobs = append(fs.Jobs, monitor.FleetJob{
			ID: st.ID, Kind: st.Kind, State: st.State,
			Records: st.Records, Refs: st.Refs, TotalRefs: st.TotalRefs,
		})
	}
	return fs
}
