package jobs

// observe.go is the fleet observatory's server-side half: per-job OTLP
// lifecycle traces (submit → queue → run → checkpoint ticks → report) that
// share a traceId with the in-sim reference spans telemetry.Tracer samples
// during the run, the structured-log vocabulary (every line carries the job
// ID so one `grep j000042` follows a job across its daemon lifetimes), and
// the time-series recorder bridging closed probe windows into internal/tsdb.

import (
	"context"
	"encoding/hex"
	"log/slog"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/probe"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// discardHandler is the no-op slog backend used when Options.Logger is nil:
// the manager logs unconditionally and the handler decides.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// NopLogger returns a logger that drops everything (the default when no
// Options.Logger is configured).
func NopLogger() *slog.Logger { return slog.New(discardHandler{}) }

// TraceIDOf derives the 32-hex-digit OTLP traceId from a job ID: the ID's
// bytes hex-encoded, left-padded with zeros. Every span of a job — daemon
// lifecycle and sampled in-sim references alike — carries this traceId.
func TraceIDOf(jobID string) string {
	h := hex.EncodeToString([]byte(jobID))
	if len(h) >= 32 {
		return h[len(h)-32:]
	}
	return strings.Repeat("0", 32-len(h)) + h
}

// jobTrace accumulates one job execution's lifecycle timeline and owns the
// job's OTLP trace file. The in-sim tracer streams sampled reference spans
// into the same file through exporter(); finish() appends the lifecycle
// tree and closes the document. A resumed job rewrites its trace file: the
// trace describes the daemon lifetime that completed the job.
type jobTrace struct {
	w       *telemetry.OTLPWriter
	traceID string

	submitted time.Time
	runStart  time.Time

	mu          sync.Mutex
	checkpoints []time.Time
}

// newJobTrace creates the trace file and writes the OTLP header.
func newJobTrace(path, jobID string, submitted time.Time) (*jobTrace, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &jobTrace{
		w:         telemetry.NewOTLPWriterService(f, "vrsimd"),
		traceID:   TraceIDOf(jobID),
		submitted: submitted,
		runStart:  time.Now(),
	}, nil
}

// exporter returns the SpanExporter the in-sim telemetry.Tracer feeds: it
// re-keys every sampled reference tree onto the job's traceId. It
// deliberately does not implement Close — the Tracer must not close the
// shared trace file before the lifecycle span lands.
func (t *jobTrace) exporter() telemetry.SpanExporter { return jobSpanExporter{t} }

type jobSpanExporter struct{ t *jobTrace }

func (e jobSpanExporter) ExportSpan(root *telemetry.Span) error {
	return e.t.w.ExportSpanTrace(e.t.traceID, root)
}

// noteCheckpoint records a checkpoint tick on the lifecycle timeline.
func (t *jobTrace) noteCheckpoint() {
	t.mu.Lock()
	t.checkpoints = append(t.checkpoints, time.Now())
	t.mu.Unlock()
}

// finish appends the job-lifecycle span tree and closes the trace file.
// Wall-clock nanoseconds play the role engine cycles play for in-sim spans
// (OTLP carries both as *TimeUnixNano).
func (t *jobTrace) finish(jobID, kind, state string) error {
	end := time.Now()
	nano := func(at time.Time) uint64 { return uint64(at.UnixNano()) }
	run := &telemetry.Span{
		Name: "run", Mechanism: "job-run",
		Start: nano(t.runStart), End: nano(end),
	}
	t.mu.Lock()
	for _, at := range t.checkpoints {
		run.Children = append(run.Children, &telemetry.Span{
			Name: "checkpoint", Mechanism: "job-checkpoint",
			Start: nano(at), End: nano(at),
		})
	}
	t.mu.Unlock()
	root := &telemetry.Span{
		Name: "job " + jobID + " " + kind + " → " + state, Mechanism: "job-lifecycle",
		Start: nano(t.submitted), End: nano(end),
		Children: []*telemetry.Span{
			{
				Name: "queued", Mechanism: "job-queue",
				Start: nano(t.submitted), End: nano(t.runStart),
			},
			run,
		},
	}
	if err := t.w.ExportSpanTrace(t.traceID, root); err != nil {
		t.w.Close() //nolint:errcheck // already failing; report the export error
		return err
	}
	return t.w.Close()
}

// recorder bridges closed probe windows into the job's time-series and the
// job's live Status. Persistence errors are remembered rather than raised:
// observability must never take a running simulation down. The first error
// is logged once at the end of the run.
type recorder struct {
	j   *job
	app *tsdb.Appender
	err error
}

// newRecorder opens the job's series appender; a nil recorder (store
// unavailable) degrades to status-only windows.
func (m *Manager) newRecorder(j *job) *recorder {
	r := &recorder{j: j}
	if m.tsdb != nil {
		app, err := m.tsdb.Appender(j.id)
		if err != nil {
			m.log.Warn("timeseries unavailable", "job", j.id, "err", err)
		} else {
			r.app = app
		}
	}
	return r
}

// onWindow is the probe Windows OnClose callback: one Status update and one
// zero-alloc (steady state) append per closed window.
func (r *recorder) onWindow(w probe.WindowMetrics) {
	r.j.setWindow(w)
	if r.app != nil {
		if err := r.app.Append(tsdb.FromWindow(w)); err != nil && r.err == nil {
			r.err = err
		}
	}
}

// flush persists buffered samples; called alongside every checkpoint and at
// the end of the run so series durability tracks job resumability.
func (r *recorder) flush() {
	if r.app != nil {
		if err := r.app.Flush(); err != nil && r.err == nil {
			r.err = err
		}
	}
}
