package jobs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzJobConfigDecode feeds arbitrary bytes to the job-submission decoder —
// the exact bytes an HTTP client can put on the wire. The decoder must
// never panic, must return the structured *Error on rejection, and any
// document it accepts must satisfy three properties:
//
//  1. Validate holds on the decoded struct (DecodeConfig really validated).
//  2. Canonical re-encodes to a document DecodeConfig accepts again, and
//     the second decode canonicalizes identically (a fixed point — the
//     manager persists Canonical bytes and must be able to recover them).
//  3. The workload and machine list build without panicking: acceptance
//     means the job is actually runnable, within the service bounds.
func FuzzJobConfigDecode(f *testing.F) {
	for _, seed := range []string{
		// The documents the README and e2e suite submit.
		`{"kind":"run","preset":"pops"}`,
		`{"kind":"run","preset":"pops","scale":0.05,"timed":true,"params":{"tm":30}}`,
		`{"kind":"run","preset":"abaqus","deadline":"90s","machine":{"org":"rr","l1Size":32768,"l1Assoc":2,"split":true}}`,
		`{"kind":"sweep","preset":"thor","machines":[{"org":"vr"},{"org":"rr","l2Size":524288},{"label":"wt","org":"vr-wt"}]}`,
		`{"kind":"autotune","preset":"pops","scale":0.02,"autotune":{"exhaustive":true,"grammar":{"organizations":["vr","rr"]}}}`,
		`{"kind":"autotune","preset":"pops","autotune":{"probeRefs":20000,"shards":2,"margin":0.5}}`,
		// Synonym-strategy fields: the rlt organization, victim caches, and
		// the grammar axes for both.
		`{"kind":"run","preset":"pops","machine":{"org":"rlt","rltEntries":16,"victim":4}}`,
		`{"kind":"sweep","preset":"abaqus","machines":[{"org":"vr","victim":8},{"org":"rlt"},{"org":"rrnoincl","victim":4}]}`,
		`{"kind":"autotune","preset":"pops","autotune":{"grammar":{"organizations":["vr","rlt"],"victimEntries":[0,4],"rltEntries":[0,16]}}}`,
		// Structurally valid, semantically wrong: exercise every validator arm.
		`{"kind":"run","preset":"pops","machine":{"org":"vr","rltEntries":16}}`,
		`{"kind":"run","preset":"pops","machine":{"org":"rlt","rltEntries":12}}`,
		`{"kind":"run","preset":"pops","machine":{"victim":-1}}`,
		`{"kind":"walk","preset":"pops"}`,
		`{"kind":"run","preset":"pops","scale":-3}`,
		`{"kind":"run","preset":"pops","machine":{"l1Size":12345}}`,
		`{"kind":"run","preset":"pops","machine":{"l1Block":16,"l2Block":8}}`,
		`{"kind":"sweep","preset":"pops"}`,
		`{"kind":"autotune","preset":"pops","timed":true}`,
		`{"kind":"run","preset":"pops","deadline":"-1s"}`,
		`{"kind":"run","preset":"pops","params":{"t1":9}}`,
		// Malformed bytes.
		``,
		`{`,
		`[]`,
		`{"kind":"run","preset":"pops"}{"kind":"run"}`,
		`{"kind":"run","preset":"pops","bogus":true}`,
		"\x00\x01\x02",
	} {
		f.Add([]byte(seed))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := DecodeConfig(data)
		if err != nil {
			var je *Error
			if !asJobsError(err, &je) {
				t.Fatalf("rejection is not a *jobs.Error: %T %v", err, err)
			}
			if je.Msg == "" {
				t.Fatal("rejection with an empty message")
			}
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("accepted config fails Validate: %v", err)
		}

		canon := cfg.Canonical()
		again, err := DecodeConfig(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ncanonical: %s", err, canon)
		}
		if !bytes.Equal(canon, again.Canonical()) {
			t.Fatalf("canonicalization is not a fixed point:\nfirst:  %s\nsecond: %s", canon, again.Canonical())
		}

		// Accepted means runnable: the workload resolves and, for run and
		// sweep jobs, every machine builds a legal system.Config.
		wl := cfg.workload()
		if wl.TotalRefs <= 0 || float64(wl.TotalRefs) > maxRefs {
			t.Fatalf("accepted workload has %d refs", wl.TotalRefs)
		}
		if cfg.Kind == KindRun || cfg.Kind == KindSweep {
			ms, err := cfg.machines(wl)
			if err != nil {
				t.Fatalf("accepted config builds no machines: %v", err)
			}
			if len(ms) == 0 || len(ms) > maxSweepConfigs {
				t.Fatalf("accepted config built %d machines", len(ms))
			}
		}
		_ = cfg.cycleParams()
	})
}

// asJobsError unwraps to *Error without importing errors (keeps the fuzz
// target dependency-light; identical semantics for this one type).
func asJobsError(err error, target **Error) bool {
	je, ok := err.(*Error)
	if ok {
		*target = je
	}
	return ok
}

// TestDecodeConfigCanonicalStable pins the canonical form of a fully
// populated document, so accidental field renames show up as a diff here
// rather than as silently orphaned persisted specs.
func TestDecodeConfigCanonicalStable(t *testing.T) {
	in := `{
		"kind": "sweep", "preset": "thor", "scale": 0.25, "deadline": "5m",
		"timed": true, "params": {"t1": 1, "t2": 4, "tm": 30, "contention": false},
		"machines": [
			{"label": "a", "org": "vr", "l1Size": 16384, "l1Assoc": 1, "l1Block": 16,
			 "split": true, "l2Size": 262144, "l2Assoc": 2, "l2Block": 32,
			 "tlbEntries": 64, "tlbAssoc": 2, "writeBufDepth": 4, "policy": "fifo"}
		]}`
	cfg, err := DecodeConfig([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(cfg.Canonical(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"kind", "preset", "scale", "deadline", "timed", "params", "machines"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("canonical form lost %q", key)
		}
	}
}
