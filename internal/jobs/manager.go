package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/monitor"
	"repro/internal/probe"
	"repro/internal/tsdb"
)

// Job lifecycle states. A job moves queued → running → one of the three
// terminal states; a daemon shutdown leaves in-flight jobs persisted as
// running so the next Open resumes them from their latest checkpoint.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Terminal reports whether state is final.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// Cancellation causes, distinguished through context.Cause: a user cancel
// terminates the job, a daemon shutdown parks it for resume.
var (
	errCanceled = errors.New("jobs: canceled by request")
	errShutdown = errors.New("jobs: daemon shutting down")
)

// ErrQueueFull is returned by Submit when the admission queue is at
// capacity; clients should retry later (the HTTP layer maps it to 503).
var ErrQueueFull = errors.New("jobs: admission queue full")

// Status is one job's public state snapshot.
type Status struct {
	ID        string    `json:"id"`
	Kind      string    `json:"kind"`
	State     string    `json:"state"`
	Submitted time.Time `json:"submitted"`
	Error     string    `json:"error,omitempty"`

	// Progress: trace records applied, memory references simulated, and
	// the workload's total references. Resumed marks a job restored from a
	// checkpoint after a daemon restart.
	Records   uint64 `json:"records"`
	Refs      uint64 `json:"references"`
	TotalRefs uint64 `json:"totalRefs"`
	Resumed   bool   `json:"resumed,omitempty"`

	// Window is the latest closed progress window (probe windowed
	// metrics), present while a simulation job is running.
	Window *probe.WindowMetrics `json:"window,omitempty"`
}

// job is the manager's internal record.
type job struct {
	id        string
	seq       int
	cfg       *Config
	raw       json.RawMessage // canonical config bytes
	submitted time.Time

	mu        sync.Mutex
	state     string
	errMsg    string
	records   uint64
	refs      uint64
	total     uint64
	resumed   bool
	window    probe.WindowMetrics // latest closed window (valid when hasWindow)
	hasWindow bool
	cancel    context.CancelCauseFunc // set while running
	trace     *jobTrace               // set by the executor goroutine, read only by it
}

func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.id, Kind: j.cfg.Kind, State: j.state, Submitted: j.submitted,
		Error: j.errMsg, Records: j.records, Refs: j.refs, TotalRefs: j.total,
		Resumed: j.resumed,
	}
	if j.hasWindow {
		w := j.window
		st.Window = &w
	}
	return st
}

func (j *job) setProgress(records, refs uint64) {
	j.mu.Lock()
	j.records, j.refs = records, refs
	j.mu.Unlock()
}

// setWindow stores the latest closed window by value — it runs on the
// window-close path next to the simulation loop and must not allocate.
func (j *job) setWindow(w probe.WindowMetrics) {
	j.mu.Lock()
	j.window = w
	j.hasWindow = true
	j.mu.Unlock()
}

// Options configures a Manager. Dir is required; everything else has a
// serviceable default.
type Options struct {
	// Dir is the state directory: job specs, checkpoints and reports live
	// here, and a Manager opened on the same directory resumes its jobs.
	Dir string
	// Workers bounds concurrently running jobs (default GOMAXPROCS).
	Workers int
	// CheckpointEvery is the checkpoint cadence in trace records for
	// simulation jobs (default 200000; negative disables, 0 selects the
	// default). A checkpoint is also written when a shutdown interrupts a
	// running job, whatever the cadence.
	CheckpointEvery int64
	// ProgressEvery is the progress-window size in references (default
	// 20000): each closed window updates the job's Status.Window.
	ProgressEvery uint64
	// QueueLimit bounds jobs admitted but not yet running (default 1024).
	QueueLimit int
	// Logger receives the manager's structured log stream (every record
	// about a job carries a "job" attribute with its ID). Nil discards.
	Logger *slog.Logger
	// TimeseriesRetention bounds each job's persisted window samples
	// (default tsdb.DefaultRetention; the oldest fall off past the cap).
	TimeseriesRetention int
	// SpanSampleEvery is the in-sim reference-span sampling interval for
	// per-job OTLP traces: one reference in every N gets a full causal span
	// tree in the job's trace file. 0 selects the default (1<<20);
	// negative disables in-sim spans (lifecycle spans are always written).
	SpanSampleEvery int64
}

// defaultSpanSample keeps per-job trace files tiny by default: a sampled
// reference tree is a few hundred bytes, so even a maximum-size job emits
// no more than ~1<<10 of them.
const defaultSpanSample = 1 << 20

func (o *Options) applyDefaults() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 200000
	}
	if o.ProgressEvery == 0 {
		o.ProgressEvery = 20000
	}
	if o.QueueLimit <= 0 {
		o.QueueLimit = 1024
	}
	if o.Logger == nil {
		o.Logger = NopLogger()
	}
	if o.SpanSampleEvery == 0 {
		o.SpanSampleEvery = defaultSpanSample
	}
}

// Manager owns the job registry, the on-disk state and the worker pool.
type Manager struct {
	opt  Options
	ctx  context.Context
	stop context.CancelCauseFunc
	log  *slog.Logger
	tsdb *tsdb.DB

	mu      sync.Mutex
	jobs    map[string]*job
	seq     int
	stats   Counters
	closing bool
	qhist   monitor.Histogram // submit→start wait, milliseconds
	rhist   monitor.Histogram // start→terminal run time, milliseconds

	queue chan *job
	wg    sync.WaitGroup
}

// Counters are the fleet's monotonic totals since this Manager was opened.
type Counters struct {
	Submitted uint64 `json:"submitted"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	Resumed   uint64 `json:"resumed"`
}

// Open creates (or reopens) a Manager on a state directory. Jobs persisted
// as queued or running by a previous daemon are re-admitted in submission
// order: simulation jobs resume from their latest checkpoint, autotune jobs
// re-run their deterministic search; either way the eventual report is
// byte-identical to an uninterrupted run.
func Open(opt Options) (*Manager, error) {
	opt.applyDefaults()
	if opt.Dir == "" {
		return nil, fmt.Errorf("jobs: Options.Dir is required")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancelCause(context.Background())
	db, err := tsdb.Open(filepath.Join(opt.Dir, "tsdb"), opt.TimeseriesRetention)
	if err != nil {
		stop(errShutdown)
		return nil, err
	}
	m := &Manager{
		opt:   opt,
		ctx:   ctx,
		stop:  stop,
		log:   opt.Logger,
		tsdb:  db,
		jobs:  make(map[string]*job),
		queue: make(chan *job, opt.QueueLimit),
	}
	if err := m.recover(); err != nil {
		stop(errShutdown)
		return nil, err
	}
	for w := 0; w < opt.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.log.Info("manager open", "dir", opt.Dir, "workers", opt.Workers,
		"queueLimit", opt.QueueLimit, "resumed", m.stats.Resumed)
	return m, nil
}

// Close stops the pool. In-flight simulation jobs write a final checkpoint
// and stay persisted as running, so a later Open on the same directory
// resumes them; queued jobs stay queued. Close returns once every worker
// goroutine has exited.
func (m *Manager) Close() error {
	m.mu.Lock()
	m.closing = true
	m.mu.Unlock()
	m.stop(errShutdown)
	m.wg.Wait()
	err := m.tsdb.Close()
	m.log.Info("manager closed", "dir", m.opt.Dir)
	return err
}

// Submit validates and admits one job, returning its initial status.
func (m *Manager) Submit(raw []byte) (Status, error) {
	cfg, err := DecodeConfig(raw)
	if err != nil {
		return Status{}, err
	}
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		return Status{}, fmt.Errorf("jobs: manager is shutting down")
	}
	m.seq++
	j := &job{
		id:        fmt.Sprintf("j%06d", m.seq),
		seq:       m.seq,
		cfg:       cfg,
		raw:       cfg.Canonical(),
		submitted: time.Now().UTC(),
		state:     StateQueued,
		total:     uint64(cfg.workload().TotalRefs),
	}
	if err := m.persist(j); err != nil {
		m.seq--
		m.mu.Unlock()
		return Status{}, err
	}
	m.jobs[j.id] = j
	m.stats.Submitted++
	m.mu.Unlock()

	select {
	case m.queue <- j:
		m.log.Info("job submitted", "job", j.id, "kind", cfg.Kind,
			"totalRefs", j.total, "queueDepth", len(m.queue))
		return j.status(), nil
	default:
		// Roll the admission back: the spec file and registry entry must
		// not describe a job no worker will ever pick up. The sequence
		// number is not reused — a concurrent submit may already hold the
		// next one.
		m.mu.Lock()
		delete(m.jobs, j.id)
		m.stats.Submitted--
		m.mu.Unlock()
		os.Remove(m.specPath(j.id))
		m.log.Warn("job rejected", "job", j.id, "kind", cfg.Kind, "err", ErrQueueFull)
		return Status{}, ErrQueueFull
	}
}

// Get returns one job's status.
func (m *Manager) Get(id string) (Status, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return j.status(), true
}

// List returns every known job's status in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	js := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	sort.Slice(js, func(a, b int) bool { return js[a].seq < js[b].seq })
	out := make([]Status, len(js))
	for i, j := range js {
		out[i] = j.status()
	}
	return out
}

// Counters returns the fleet totals.
func (m *Manager) Counters() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// QueueDepth is the number of admitted jobs not yet picked up by a worker.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// Workers is the pool size.
func (m *Manager) Workers() int { return m.opt.Workers }

// Cancel stops a job. A queued job is canceled immediately; a running job
// is interrupted at its next batch boundary. Terminal jobs are an error.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("jobs: no job %q", id)
	}
	j.mu.Lock()
	switch {
	case j.state == StateQueued:
		j.state = StateCanceled
		j.mu.Unlock()
		m.finalize(j, StateCanceled, "")
		return nil
	case j.state == StateRunning && j.cancel != nil:
		cancel := j.cancel
		j.mu.Unlock()
		cancel(errCanceled)
		return nil
	case j.state == StateRunning:
		// Resumed-but-not-yet-started job: a worker will observe the
		// canceled state before running it.
		j.state = StateCanceled
		j.mu.Unlock()
		m.finalize(j, StateCanceled, "")
		return nil
	default:
		state := j.state
		j.mu.Unlock()
		return fmt.Errorf("jobs: job %s is already %s", id, state)
	}
}

// Report returns a finished job's report document.
func (m *Manager) Report(id string) ([]byte, error) {
	st, ok := m.Get(id)
	if !ok {
		return nil, fmt.Errorf("jobs: no job %q", id)
	}
	if st.State != StateDone {
		return nil, fmt.Errorf("jobs: job %s is %s, not done", id, st.State)
	}
	return os.ReadFile(m.reportPath(id))
}

// worker drains the queue until shutdown.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case j := <-m.queue:
			m.execute(j)
		}
	}
}

// execute runs one admitted job through its lifecycle.
func (m *Manager) execute(j *job) {
	j.mu.Lock()
	if Terminal(j.state) { // canceled while queued
		j.mu.Unlock()
		return
	}
	jctx, cancel := context.WithCancelCause(m.ctx)
	if j.cfg.Deadline != "" {
		d, _ := time.ParseDuration(j.cfg.Deadline) // validated at submit
		var tcancel context.CancelFunc
		jctx, tcancel = context.WithTimeoutCause(jctx, d, context.DeadlineExceeded)
		defer tcancel()
	}
	defer cancel(nil)
	j.state = StateRunning
	j.cancel = cancel
	j.mu.Unlock()
	m.persistLocked(j)

	start := time.Now()
	m.mu.Lock()
	m.qhist.Record(uint64(start.Sub(j.submitted).Milliseconds()))
	m.mu.Unlock()
	m.log.Info("job started", "job", j.id, "kind", j.cfg.Kind,
		"queueWait", start.Sub(j.submitted), "resumed", j.resumed)
	if jt, terr := newJobTrace(m.tracePath(j.id), j.id, j.submitted); terr != nil {
		// Observability must not take the job down: run untraced.
		m.log.Warn("trace unavailable", "job", j.id, "err", terr)
	} else {
		j.trace = jt
	}

	report, err := m.run(jctx, j)

	elapsed := time.Since(start)
	m.mu.Lock()
	m.rhist.Record(uint64(elapsed.Milliseconds()))
	m.mu.Unlock()
	j.mu.Lock()
	j.cancel = nil
	j.mu.Unlock()
	switch {
	case err == nil:
		if werr := writeFileAtomic(m.reportPath(j.id), report); werr != nil {
			m.closeTrace(j, StateFailed)
			m.finalize(j, StateFailed, fmt.Sprintf("writing report: %v", werr))
			return
		}
		os.Remove(m.checkpointPath(j.id))
		m.closeTrace(j, StateDone)
		m.finalize(j, StateDone, "")
	case errors.Is(err, errShutdown):
		// Parked for resume: the spec stays persisted as running and the
		// executor has already written its final checkpoint. The trace
		// records this daemon lifetime as parked; the lifetime that finishes
		// the job rewrites it.
		m.closeTrace(j, "parked")
		m.log.Info("job parked", "job", j.id, "refs", j.status().Refs)
	case errors.Is(err, errCanceled):
		os.Remove(m.checkpointPath(j.id))
		m.closeTrace(j, StateCanceled)
		m.finalize(j, StateCanceled, "")
	case errors.Is(err, context.DeadlineExceeded):
		os.Remove(m.checkpointPath(j.id))
		m.closeTrace(j, StateFailed)
		m.finalize(j, StateFailed, "deadline exceeded")
	default:
		os.Remove(m.checkpointPath(j.id))
		m.closeTrace(j, StateFailed)
		m.finalize(j, StateFailed, err.Error())
	}
}

// closeTrace writes the lifecycle span tree and closes the job's trace file.
func (m *Manager) closeTrace(j *job, state string) {
	if j.trace == nil {
		return
	}
	if err := j.trace.finish(j.id, j.cfg.Kind, state); err != nil {
		m.log.Warn("trace export failed", "job", j.id, "err", err)
	}
	j.trace = nil
}

// run dispatches to the kind's executor.
func (m *Manager) run(ctx context.Context, j *job) ([]byte, error) {
	switch j.cfg.Kind {
	case KindRun, KindSweep:
		return m.runSim(ctx, j)
	case KindAutotune:
		return m.runAutotune(ctx, j)
	}
	return nil, fmt.Errorf("jobs: unknown kind %q", j.cfg.Kind)
}

// finalize records a terminal state and persists the spec.
func (m *Manager) finalize(j *job, state, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.mu.Unlock()
	m.persistLocked(j)
	m.mu.Lock()
	switch state {
	case StateDone:
		m.stats.Done++
	case StateFailed:
		m.stats.Failed++
	case StateCanceled:
		m.stats.Canceled++
	}
	m.mu.Unlock()
	if errMsg != "" {
		m.log.Warn("job finished", "job", j.id, "state", state, "err", errMsg)
	} else {
		m.log.Info("job finished", "job", j.id, "state", state)
	}
}

// ---- persistence ----

// specFile is the on-disk job record. The report and checkpoint live in
// sibling files; everything is written atomically (temp + rename).
type specFile struct {
	ID        string          `json:"id"`
	Seq       int             `json:"seq"`
	State     string          `json:"state"`
	Error     string          `json:"error,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Config    json.RawMessage `json:"config"`
}

func (m *Manager) specPath(id string) string       { return filepath.Join(m.opt.Dir, id+".spec.json") }
func (m *Manager) reportPath(id string) string     { return filepath.Join(m.opt.Dir, id+".report.json") }
func (m *Manager) checkpointPath(id string) string { return filepath.Join(m.opt.Dir, id+".ck") }
func (m *Manager) tracePath(id string) string      { return filepath.Join(m.opt.Dir, id+".trace.json") }

// TracePath returns the job's OTLP trace file path (written when the job
// runs; rewritten by the daemon lifetime that finishes a resumed job).
func (m *Manager) TracePath(id string) string { return m.tracePath(id) }

// Timeseries queries a job's persisted window samples.
func (m *Manager) Timeseries(id string, q tsdb.Query) ([]tsdb.Sample, error) {
	m.mu.Lock()
	_, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("jobs: no job %q", id)
	}
	return m.tsdb.Query(id, q)
}

// ProgressEvery returns the progress-window size in references — the
// sampling interval of every job's time-series.
func (m *Manager) ProgressEvery() uint64 { return m.opt.ProgressEvery }

// Latency returns snapshots of the fleet's queue-wait and run-time
// histograms (milliseconds).
func (m *Manager) Latency() (queue, run monitor.Histogram) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.qhist, m.rhist
}

// persist writes j's spec; the caller holds j.mu or has exclusive access.
func (m *Manager) persist(j *job) error {
	sf := specFile{
		ID: j.id, Seq: j.seq, State: j.state, Error: j.errMsg,
		Submitted: j.submitted, Config: j.raw,
	}
	data, err := json.MarshalIndent(sf, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(m.specPath(j.id), append(data, '\n'))
}

// persistLocked snapshots j under its lock and writes the spec.
func (m *Manager) persistLocked(j *job) {
	j.mu.Lock()
	sf := specFile{
		ID: j.id, Seq: j.seq, State: j.state, Error: j.errMsg,
		Submitted: j.submitted, Config: j.raw,
	}
	j.mu.Unlock()
	data, err := json.MarshalIndent(sf, "", "  ")
	if err != nil {
		return
	}
	// Persistence failures must not wedge the lifecycle; the in-memory
	// state is authoritative for this process and the next recover treats
	// a stale spec conservatively (it re-runs the job).
	_ = writeFileAtomic(m.specPath(j.id), append(data, '\n'))
}

// recover scans the state directory and rebuilds the registry, re-admitting
// unfinished jobs in submission order.
func (m *Manager) recover() error {
	entries, err := os.ReadDir(m.opt.Dir)
	if err != nil {
		return err
	}
	var pending []*job
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != ".json" || filepath.Ext(name[:len(name)-len(".json")]) != ".spec" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(m.opt.Dir, name))
		if err != nil {
			return err
		}
		var sf specFile
		if err := json.Unmarshal(data, &sf); err != nil {
			return fmt.Errorf("jobs: corrupt spec %s: %w", name, err)
		}
		cfg, err := DecodeConfig(sf.Config)
		if err != nil {
			return fmt.Errorf("jobs: spec %s no longer validates: %w", name, err)
		}
		j := &job{
			id: sf.ID, seq: sf.Seq, cfg: cfg, raw: cfg.Canonical(),
			submitted: sf.Submitted, state: sf.State, errMsg: sf.Error,
			total: uint64(cfg.workload().TotalRefs),
		}
		if sf.Seq > m.seq {
			m.seq = sf.Seq
		}
		switch sf.State {
		case StateQueued, StateRunning:
			if _, err := os.Stat(m.reportPath(sf.ID)); err == nil {
				// Crash window between report write and spec write: the
				// report exists, so the job is done.
				j.state = StateDone
			} else {
				j.state = StateQueued
				if sf.State == StateRunning {
					j.resumed = true
					m.stats.Resumed++
				}
				pending = append(pending, j)
			}
		}
		m.jobs[j.id] = j
	}
	sort.Slice(pending, func(a, b int) bool { return pending[a].seq < pending[b].seq })
	for _, j := range pending {
		if err := m.persist(j); err != nil {
			return err
		}
		select {
		case m.queue <- j:
		default:
			return fmt.Errorf("jobs: %d recovered jobs exceed the queue limit %d", len(pending), m.opt.QueueLimit)
		}
	}
	return nil
}

// writeFileAtomic writes data via a temp file and rename, so readers (and
// a daemon killed mid-write) never observe a partial document.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
