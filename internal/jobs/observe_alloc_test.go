package jobs

// Allocation discipline of the observability hot path. The recorder's
// onWindow callback runs on the probe's window-close path directly beside
// the simulation loop, and the Windows sink sees every probe event; armed
// or not, neither may allocate in steady state.

import (
	"testing"

	"repro/internal/probe"
	"repro/internal/tsdb"
)

// TestRecorderHotPathAllocationFree: with the recorder armed (status update
// + tsdb append per closed window), closing a window allocates nothing once
// the series is at steady state. Warming past one tsdb compaction pins the
// sample slice's capacity, so the measurement cannot land on a growth
// boundary.
func TestRecorderHotPathAllocationFree(t *testing.T) {
	const retention = 1024
	db, err := tsdb.Open(t.TempDir(), retention)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	m := &Manager{tsdb: db, log: NopLogger()}
	j := &job{id: "j000001"}
	rec := m.newRecorder(j)
	if rec.app == nil {
		t.Fatal("recorder has no appender")
	}

	const every = 5000
	seq := uint64(0)
	closeWindow := func() {
		rec.onWindow(probe.WindowMetrics{
			Index: int(seq), Seq: seq,
			FirstRef: seq*every + 1, StartRef: seq*every + 1, LastRef: (seq + 1) * every,
			L1Hits: 4500, L1Misses: 500, BusTxns: 600, Cycles: 21000,
		})
		seq++
	}
	for seq <= retention+retention/4 { // last close triggers a compact
		closeWindow()
	}
	if n := testing.AllocsPerRun(200, closeWindow); n != 0 {
		t.Errorf("recorder-armed window close allocates %v times, want 0", n)
	}
	if rec.err != nil {
		t.Fatalf("recorder error: %v", rec.err)
	}
	if !j.hasWindow || j.window.Seq != seq-1 {
		t.Errorf("status window seq = %d (has %v), want %d", j.window.Seq, j.hasWindow, seq-1)
	}
}

// TestWindowEventHotPathAllocationFree: the per-event path of the Windows
// sink (counter folds inside an open window) is allocation-free.
func TestWindowEventHotPathAllocationFree(t *testing.T) {
	windows := probe.NewWindows(1 << 30) // one window outlives the whole test
	var closed int
	windows.OnClose = func(probe.WindowMetrics) { closed++ }
	ref := uint64(1)
	windows.Event(probe.Event{Kind: probe.EvL1Hit, Ref: ref}) // opens the window
	if n := testing.AllocsPerRun(1000, func() {
		ref++
		windows.Event(probe.Event{Kind: probe.EvL1Hit, Ref: ref})
		windows.Event(probe.Event{Kind: probe.EvBusRead, Ref: ref})
		windows.Event(probe.Event{Kind: probe.EvTimeAccess, Ref: ref, Aux: 4})
	}); n != 0 {
		t.Errorf("mid-window event allocates %v times, want 0", n)
	}
	if closed != 0 {
		t.Fatalf("%d windows closed mid-test; the measurement crossed a boundary", closed)
	}
}

// benchWindowStream drives the per-event window path with the recorder
// armed (tsdb append once per closed window) or disarmed. The pair bounds
// the recorder's marginal cost on the event hot path — amortized over the
// window length it must be noise (<1%), matching the probe layer's
// disabled-overhead standard.
func benchWindowStream(b *testing.B, armed bool) {
	b.Helper()
	windows := probe.NewWindows(5000)
	if armed {
		db, err := tsdb.Open(b.TempDir(), 1<<16)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		m := &Manager{tsdb: db, log: NopLogger()}
		rec := m.newRecorder(&job{id: "j000001"})
		if rec.app == nil {
			b.Fatal("recorder has no appender")
		}
		windows.OnClose = rec.onWindow
	}
	b.ReportAllocs()
	ev := probe.Event{Kind: probe.EvL1Hit}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Ref = uint64(i + 1)
		windows.Event(ev)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkWindowStreamDisarmed(b *testing.B) { benchWindowStream(b, false) }
func BenchmarkWindowStreamArmed(b *testing.B)    { benchWindowStream(b, true) }
