package jobs_test

// Fleet-observatory acceptance tests: the persisted time-series round-trips
// byte-identically through the HTTP endpoint, survives a daemon restart
// without gaps or duplicates, the per-job OTLP trace file strict-parses
// with lifecycle and in-sim spans sharing the job's traceId, structured
// logs carry the job ID, server shutdown leaks no goroutines with streams
// in flight, and /metrics cardinality stays bounded under job churn.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/jobs/client"
	"repro/internal/tsdb"
)

// readBody fetches one URL and returns status code + body.
func readBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestTimeseriesRoundTrip: every window recorded during a sweep reads back
// byte-identically over HTTP, downsampling is deterministic and
// count-preserving, CSV renders, and the error surface is precise.
func TestTimeseriesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := startService(t, jobs.Options{Dir: dir, Workers: 2, ProgressEvery: 5000})
	st := submitWait(t, c, `{
		"kind": "sweep", "preset": "pops", "scale": 0.05,
		"machines": [{"org": "vr"}, {"org": "rr"}]}`)
	if st.State != jobs.StateDone {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	ctx := context.Background()
	resp, err := c.Timeseries(ctx, st.ID, client.TimeseriesQuery{Metric: "busocc"})
	if err != nil {
		t.Fatalf("Timeseries: %v", err)
	}
	if resp.Job != st.ID || resp.Metric != "busocc" || resp.WindowRefs != 5000 {
		t.Errorf("response header = %q/%q/%d", resp.Job, resp.Metric, resp.WindowRefs)
	}
	wantWindows := int((st.TotalRefs + 4999) / 5000)
	if len(resp.Samples) != wantWindows {
		t.Fatalf("%d samples over HTTP, want %d windows for %d refs",
			len(resp.Samples), wantWindows, st.TotalRefs)
	}

	// Byte-identical against the store on disk, read with an independent
	// tsdb handle (the daemon flushed alongside the job's completion).
	db, err := tsdb.Open(filepath.Join(dir, "tsdb"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	disk, err := db.Query(st.ID, tsdb.Query{})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]tsdb.Sample, len(resp.Samples))
	for i, p := range resp.Samples {
		got[i] = p.Sample
		if v, _ := p.Sample.Value("busocc"); v != p.Value {
			t.Errorf("sample %d: evaluated value %g does not match served %g", i, v, p.Value)
		}
	}
	wantJSON, _ := json.Marshal(disk)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatal("HTTP samples differ from the on-disk series")
	}

	// The windows tile the sweep's reference stream exactly.
	for i, sm := range got {
		if sm.Seq != uint64(i) || sm.StartRef != uint64(i)*5000+1 {
			t.Fatalf("sample %d: seq %d startRef %d", i, sm.Seq, sm.StartRef)
		}
	}
	if last := got[len(got)-1]; last.EndRef != st.TotalRefs {
		t.Errorf("last window ends at %d, want %d", last.EndRef, st.TotalRefs)
	}

	// Deterministic downsampling: two identical requests, identical bytes;
	// counters preserved in aggregate.
	base := strings.TrimSuffix(httpBase(c), "/")
	dsURL := base + "/jobs/" + st.ID + "/timeseries?metric=l1ratio&points=7"
	code1, body1 := readBody(t, dsURL)
	code2, body2 := readBody(t, dsURL)
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("downsampled fetch = %d, %d", code1, code2)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("downsampled responses differ between identical requests")
	}
	var ds jobs.TimeseriesResponse
	if err := json.Unmarshal(body1, &ds); err != nil {
		t.Fatal(err)
	}
	if len(ds.Samples) != 7 {
		t.Fatalf("downsampled to %d points, want 7", len(ds.Samples))
	}
	var fullHits, dsHits uint64
	for _, sm := range got {
		fullHits += sm.L1Hits
	}
	for _, p := range ds.Samples {
		dsHits += p.L1Hits
	}
	if fullHits != dsHits {
		t.Errorf("downsampling lost counts: %d != %d", dsHits, fullHits)
	}

	// CSV export: header plus one row per sample.
	csv, err := c.TimeseriesCSV(ctx, st.ID, client.TimeseriesQuery{})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if len(lines) != wantWindows+1 || !strings.HasPrefix(lines[0], "seq,startRef") {
		t.Errorf("CSV has %d lines (header %q), want %d", len(lines), lines[0], wantWindows+1)
	}

	// Error surface: unknown metric 400, unknown job 404, bad bound 400.
	for _, tc := range []struct {
		path string
		code int
	}{
		{"/jobs/" + st.ID + "/timeseries?metric=bogus", http.StatusBadRequest},
		{"/jobs/j999999/timeseries", http.StatusNotFound},
		{"/jobs/" + st.ID + "/timeseries?from=x", http.StatusBadRequest},
		{"/jobs/" + st.ID + "/timeseries?points=-1", http.StatusBadRequest},
	} {
		if code, _ := readBody(t, base+tc.path); code != tc.code {
			t.Errorf("GET %s = %d, want %d", tc.path, code, tc.code)
		}
	}

	// A job with no closed windows (autotune jobs have none) serves an
	// empty series, not an error.
	at := submitWait(t, c, `{
		"kind": "autotune", "preset": "pops", "scale": 0.02,
		"autotune": {"exhaustive": true,
			"grammar": {"organizations": ["vr"], "l1Sizes": [16384]}}}`)
	if at.State != jobs.StateDone {
		t.Fatalf("autotune state = %s (%s)", at.State, at.Error)
	}
	empty, err := c.Timeseries(ctx, at.ID, client.TimeseriesQuery{})
	if err != nil {
		t.Fatalf("timeseries of windowless job: %v", err)
	}
	if len(empty.Samples) != 0 {
		t.Errorf("windowless job served %d samples", len(empty.Samples))
	}
}

// TestTimeseriesRestartContinuity: a job interrupted by a daemon shutdown
// and resumed in a new lifetime ends with one series covering the whole
// run — window sequences contiguous from 0, no duplicates, samples
// persisted by the first lifetime untouched.
func TestTimeseriesRestartContinuity(t *testing.T) {
	dir := t.TempDir()
	m1, err := jobs.Open(managerOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit([]byte(restartRunConfig))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		cur, _ := m1.Get(st.ID)
		if cur.Records > 25000 {
			break
		}
		if jobs.Terminal(cur.State) {
			t.Fatalf("job finished (%s) before the shutdown", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress after 1m")
		}
		time.Sleep(time.Millisecond)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jobs.VerifyNoLeaks(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// The first lifetime's parking flush left a contiguous prefix on disk.
	db, err := tsdb.Open(filepath.Join(dir, "tsdb"), 0)
	if err != nil {
		t.Fatal(err)
	}
	prefix, err := db.Query(st.ID, tsdb.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if len(prefix) == 0 {
		t.Fatal("first lifetime persisted no windows before parking")
	}
	for i, sm := range prefix {
		if sm.Seq != uint64(i) {
			t.Fatalf("pre-restart sample %d has seq %d", i, sm.Seq)
		}
	}

	m2, err := jobs.Open(managerOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	fin := waitDone(t, m2, st.ID)
	if !fin.Resumed {
		t.Error("final status does not mark the job as resumed")
	}
	series, err := m2.Timeseries(st.ID, tsdb.Query{})
	if err != nil {
		t.Fatal(err)
	}
	wantWindows := int((fin.TotalRefs + 4999) / 5000)
	if len(series) != wantWindows {
		t.Fatalf("resumed series has %d samples, want %d windows for %d refs",
			len(series), wantWindows, fin.TotalRefs)
	}
	for i, sm := range series {
		if sm.Seq != uint64(i) {
			t.Fatalf("sample %d has seq %d — gap or duplicate across the restart", i, sm.Seq)
		}
		if want := uint64(i)*5000 + 1; sm.StartRef != want {
			t.Fatalf("sample %d starts at ref %d, want %d", i, sm.StartRef, want)
		}
		wantEnd := uint64(i+1) * 5000
		if i == len(series)-1 {
			wantEnd = fin.TotalRefs
		}
		if sm.EndRef != wantEnd {
			t.Fatalf("sample %d ends at ref %d, want %d", i, sm.EndRef, wantEnd)
		}
		if sm.Cycles == 0 {
			t.Fatalf("timed run sample %d has no cycle charge", i)
		}
	}
	// The replayed prefix did not overwrite what the first lifetime wrote.
	if !reflect.DeepEqual(series[:len(prefix)], prefix) {
		t.Error("resume rewrote samples the first lifetime had persisted")
	}
}

// Strict OTLP JSON vocabulary: any field the exporter emits beyond these is
// a test failure (json.Decoder.DisallowUnknownFields applies recursively).
type otlpValue struct {
	StringValue string `json:"stringValue,omitempty"`
	IntValue    string `json:"intValue,omitempty"`
}

type otlpAttr struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpSpanRec struct {
	TraceID      string     `json:"traceId"`
	SpanID       string     `json:"spanId"`
	ParentSpanID string     `json:"parentSpanId,omitempty"`
	Name         string     `json:"name"`
	Kind         int        `json:"kind"`
	Start        string     `json:"startTimeUnixNano"`
	End          string     `json:"endTimeUnixNano"`
	Attributes   []otlpAttr `json:"attributes,omitempty"`
}

type otlpDoc struct {
	ResourceSpans []struct {
		Resource struct {
			Attributes []otlpAttr `json:"attributes"`
		} `json:"resource"`
		ScopeSpans []struct {
			Scope struct {
				Name string `json:"name"`
			} `json:"scope"`
			Spans []otlpSpanRec `json:"spans"`
		} `json:"scopeSpans"`
	} `json:"resourceSpans"`
}

// TestJobTraceFile: one exported trace file per job holding the daemon
// lifecycle span tree and the in-sim sampled reference spans, every span on
// the traceId derived from the job ID, all parent links resolvable.
func TestJobTraceFile(t *testing.T) {
	opt := jobs.Options{
		Dir: t.TempDir(), Workers: 1,
		CheckpointEvery: 20000, ProgressEvery: 5000, SpanSampleEvery: 5000,
	}
	m, err := jobs.Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st, err := m.Submit([]byte(`{"kind":"run","preset":"pops","scale":0.05,"timed":true}`))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, st.ID)

	data, err := os.ReadFile(m.TracePath(st.ID))
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc otlpDoc
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("trace file does not strict-parse: %v", err)
	}
	if len(doc.ResourceSpans) != 1 || len(doc.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatal("trace file is not a single resource/scope document")
	}
	service := ""
	for _, a := range doc.ResourceSpans[0].Resource.Attributes {
		if a.Key == "service.name" {
			service = a.Value.StringValue
		}
	}
	if service != "vrsimd" {
		t.Errorf("service.name = %q, want vrsimd", service)
	}

	spans := doc.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) == 0 {
		t.Fatal("no spans")
	}
	wantTrace := jobs.TraceIDOf(st.ID)
	ids := map[string]bool{}
	byName := map[string][]otlpSpanRec{}
	for _, sp := range spans {
		if sp.TraceID != wantTrace {
			t.Fatalf("span %q carries traceId %s, want %s", sp.Name, sp.TraceID, wantTrace)
		}
		if len(sp.SpanID) != 16 || ids[sp.SpanID] {
			t.Fatalf("span %q has invalid or duplicate spanId %q", sp.Name, sp.SpanID)
		}
		ids[sp.SpanID] = true
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	for _, sp := range spans {
		if sp.ParentSpanID != "" && !ids[sp.ParentSpanID] {
			t.Fatalf("span %q links to unknown parent %s", sp.Name, sp.ParentSpanID)
		}
	}

	// The daemon lifecycle tree: root → queued + run → checkpoint ticks.
	rootName := "job " + st.ID + " run → done"
	roots := byName[rootName]
	if len(roots) != 1 {
		t.Fatalf("%d lifecycle roots named %q, want 1", len(roots), rootName)
	}
	root := roots[0]
	if root.ParentSpanID != "" {
		t.Error("lifecycle root has a parent")
	}
	for _, child := range []string{"queued", "run"} {
		cs := byName[child]
		if len(cs) != 1 || cs[0].ParentSpanID != root.SpanID {
			t.Errorf("lifecycle child %q missing or not parented to the root", child)
		}
	}
	if len(byName["checkpoint"]) == 0 {
		t.Error("no checkpoint ticks on the lifecycle timeline")
	}
	for _, ck := range byName["checkpoint"] {
		if ck.ParentSpanID != byName["run"][0].SpanID {
			t.Error("checkpoint tick not parented to the run span")
		}
	}

	// In-sim sampled reference spans share the file and the traceId.
	refRoots := 0
	for name, ss := range byName {
		if strings.Contains(name, "ref#") {
			for _, sp := range ss {
				if sp.ParentSpanID == "" {
					refRoots++
				}
			}
		}
	}
	if refRoots == 0 {
		t.Error("no in-sim sampled reference spans in the trace")
	}
}

// syncBuffer is a concurrency-safe log sink for the slog handler.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestStructuredLogCarriesJobID: every lifecycle log line is JSON and
// carries the job ID, so `grep j000001` follows one job end to end.
func TestStructuredLogCarriesJobID(t *testing.T) {
	var buf syncBuffer
	opt := jobs.Options{
		Dir: t.TempDir(), Workers: 1,
		Logger: slog.New(slog.NewJSONHandler(&buf, nil)),
	}
	m, err := jobs.Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit([]byte(`{"kind":"run","preset":"pops","scale":0.02}`))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, st.ID)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	withJob := map[string]bool{}
	sawOpen, sawClosed := false, false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q", line)
		}
		msg, _ := rec["msg"].(string)
		switch msg {
		case "manager open":
			sawOpen = true
		case "manager closed":
			sawClosed = true
		}
		if id, ok := rec["job"].(string); ok && id == st.ID {
			withJob[msg] = true
		}
	}
	if !sawOpen || !sawClosed {
		t.Error("manager open/close lines missing")
	}
	for _, msg := range []string{"job submitted", "job started", "job finished"} {
		if !withJob[msg] {
			t.Errorf("no %q line carrying job %s", msg, st.ID)
		}
	}
}

// TestServerShutdownNoLeak: shutting the service down with an SSE stream
// and metric scrapes in flight terminates every handler and leaks no
// goroutine (the daemon's SIGTERM order: Server.Close, listener, Manager).
func TestServerShutdownNoLeak(t *testing.T) {
	m, err := jobs.Open(jobs.Options{Dir: t.TempDir(), Workers: 1, ProgressEvery: 2000})
	if err != nil {
		t.Fatal(err)
	}
	srv := jobs.NewServer(m)
	ts := httptest.NewServer(srv)
	c := client.New(ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := c.Submit(ctx, []byte(`{"kind":"run","preset":"pops","scale":2}`))
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		c.Events(ctx, st.ID, func(jobs.Status) { events++ }) //nolint:errcheck // stream ends with the server
	}()
	// Let the stream attach and the job make progress, with a live scrape.
	for {
		cur, err := c.Status(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Records > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := c.Metrics(ctx); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	select {
	case <-streamDone:
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream still open 10s after Server.Close")
	}
	ts.Close()
	if err := m.Close(); err != nil { // parks the in-flight job
		t.Fatal(err)
	}
	if err := jobs.VerifyNoLeaks(5 * time.Second); err != nil {
		t.Error(err)
	}
}

// TestFleetMetricsCardinality: /metrics stays bounded when many jobs churn
// to terminal states — lifecycle counters carry the totals, per-job gauges
// exist only while a job is live.
func TestFleetMetricsCardinality(t *testing.T) {
	if testing.Short() {
		t.Skip("churns 100 jobs")
	}
	c := startService(t, jobs.Options{Workers: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const churn = 100
	ids := make([]string, 0, churn)
	for i := 0; i < churn; i++ {
		st, err := c.Submit(ctx, []byte(`{"kind":"run","preset":"pops","scale":0.003}`))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		st, err := c.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != jobs.StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, `vrsimd_jobs_lifecycle_total{event="done"} `+fmt.Sprint(churn)) {
		t.Errorf("done counter does not carry the churn total:\n%s", text)
	}
	for _, gauge := range []string{"vrsimd_job_records", "vrsimd_job_references", "vrsimd_job_total_references"} {
		if strings.Contains(text, gauge) {
			t.Errorf("per-job gauge %s exported for terminal jobs", gauge)
		}
	}
	// The whole exposition is a bounded document: fleet gauges, lifecycle
	// counters and two latency histograms (≤ ~122 buckets each) — never one
	// series per churned job.
	if lines := strings.Count(text, "\n"); lines > 300 {
		t.Errorf("metrics exposition has %d lines for %d terminal jobs — unbounded cardinality", lines, churn)
	}
}
