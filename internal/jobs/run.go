package jobs

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/autotune"
	"repro/internal/checkpoint"
	"repro/internal/cycles"
	"repro/internal/probe"
	"repro/internal/report"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// SweepReport is a sweep job's report document: one Results per submitted
// machine, in submission order.
type SweepReport struct {
	Preset  string              `json:"preset"`
	Scale   float64             `json:"scale"`
	Configs []SweepConfigReport `json:"configs"`
}

// SweepConfigReport is one machine's labeled results within a sweep.
type SweepConfigReport struct {
	Label   string         `json:"label"`
	Results report.Results `json:"results"`
}

// runSim executes a run or sweep job: build every machine, restore from the
// job's checkpoint if one exists, then stream the regenerated trace through
// all systems in a chunked system-major loop (the sweep engine's sequential
// mode, inlined here so the loop can checkpoint and cancel at batch
// boundaries without draining mid-stream). The report is built exactly as
// cmd/vrsim's -json path builds it, minus the probe section — the progress
// probe is ephemeral (not checkpointed), and excluding it is what makes
// resumed reports byte-identical to uninterrupted ones.
func (m *Manager) runSim(ctx context.Context, j *job) ([]byte, error) {
	wl := j.cfg.workload()
	machines, err := j.cfg.machines(wl)
	if err != nil {
		return nil, err
	}
	timed := j.cfg.Timed
	params := j.cfg.cycleParams()

	// The progress probe rides machine 0 only: windows feed Status.Window
	// and the job's persisted time-series through the recorder, and the
	// per-batch record counter feeds Status.Records either way.
	pr := probe.New(0)
	windows := probe.NewWindows(m.opt.ProgressEvery)
	rec := m.newRecorder(j)
	windows.OnClose = rec.onWindow
	pr.AddSink(windows)
	if m.opt.SpanSampleEvery > 0 && j.trace != nil {
		pr.AddSink(telemetry.NewTracer(uint64(m.opt.SpanSampleEvery), j.trace.exporter()))
	}

	systems := make([]*system.System, len(machines))
	for i, mc := range machines {
		cfg := mc.cfg
		var p *probe.Probe
		if i == 0 {
			p = pr
		}
		if timed {
			eng, err := cycles.New(params, p)
			if err != nil {
				return nil, err
			}
			cfg.Cycles = eng
		}
		cfg.Probe = p
		cfg.ProbeEphemeral = p != nil
		sys, err := system.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mc.label, err)
		}
		if err := wl.SetupSharedMappings(sys.MMU()); err != nil {
			return nil, err
		}
		systems[i] = sys
	}

	gen, err := tracegen.New(wl)
	if err != nil {
		return nil, err
	}
	var reader trace.Reader = gen
	var cursor uint64
	if ck, ok, err := m.loadCheckpoint(j, machines, wl, timed, params, systems); err != nil {
		return nil, err
	} else if ok {
		cursor = ck
		if reader, err = skipRecords(gen, cursor); err != nil {
			return nil, err
		}
		j.mu.Lock()
		j.resumed = true
		j.mu.Unlock()
		// Re-anchor the window collector at the resume point so window
		// sequence numbers continue the previous daemon lifetime's series
		// (the appender drops any recomputed window it already persisted).
		windows.SetBase(systems[0].Refs())
		m.log.Info("job resumed", "job", j.id, "records", cursor, "refs", systems[0].Refs())
	}

	buf := make([]trace.Ref, 4096)
	lastCk := cursor
	for {
		if err := ctx.Err(); err != nil {
			cause := context.Cause(ctx)
			if errors.Is(cause, errShutdown) {
				if err := m.saveCheckpoint(j, machines, wl, timed, params, systems, cursor); err != nil {
					return nil, fmt.Errorf("parking checkpoint: %w", err)
				}
				// Close any window the reference cursor has fully passed
				// before the parking flush — on timed runs probe events trail
				// the cursor, and an open-but-complete window would otherwise
				// vanish from the series (the resumed lifetime starts at the
				// next window).
				windows.CloseApplied(systems[0].Refs())
				rec.flush()
				if j.trace != nil {
					j.trace.noteCheckpoint()
				}
			}
			return nil, cause
		}
		n, rerr := trace.FillBatch(reader, buf[:cap(buf)])
		if n > 0 {
			for i, sys := range systems {
				if err := sys.ApplyBatch(buf[:n]); err != nil {
					return nil, fmt.Errorf("%s: %w", machines[i].label, err)
				}
			}
			cursor += uint64(n)
			j.setProgress(cursor, systems[0].Refs())
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			return nil, rerr
		}
		if m.opt.CheckpointEvery > 0 && cursor-lastCk >= uint64(m.opt.CheckpointEvery) {
			if err := m.saveCheckpoint(j, machines, wl, timed, params, systems, cursor); err != nil {
				return nil, fmt.Errorf("periodic checkpoint: %w", err)
			}
			rec.flush()
			if j.trace != nil {
				j.trace.noteCheckpoint()
			}
			lastCk = cursor
		}
	}
	for _, sys := range systems {
		sys.Drain()
	}
	if err := pr.Close(); err != nil {
		return nil, err
	}
	rec.flush()
	if rec.err != nil {
		m.log.Warn("timeseries write failed", "job", j.id, "err", rec.err)
	}

	results := make([]report.Results, len(systems))
	for i, sys := range systems {
		res := report.FromSystem(sys, sys.Config())
		res.Probe = nil // ephemeral progress probe: never part of the report
		results[i] = res
	}
	if j.cfg.Kind == KindRun {
		var out bytes.Buffer
		if err := results[0].WriteJSON(&out); err != nil {
			return nil, err
		}
		return out.Bytes(), nil
	}
	sr := SweepReport{Preset: j.cfg.Preset, Scale: j.cfg.scale()}
	for i := range results {
		sr.Configs = append(sr.Configs, SweepConfigReport{Label: machines[i].label, Results: results[i]})
	}
	return marshalReport(sr)
}

// runAutotune executes a design-space search job. The search itself is not
// interruptible, so cancellation and shutdown are honored at its
// boundaries: a shutdown mid-search discards the result and the job re-runs
// from scratch on resume — Search is deterministic, so the eventual report
// is byte-identical anyway.
func (m *Manager) runAutotune(ctx context.Context, j *job) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	spec := j.cfg.Autotune
	if spec == nil {
		spec = &AutotuneSpec{}
	}
	o := autotune.Options{
		Workload:   j.cfg.workload(),
		ProbeRefs:  spec.ProbeRefs,
		Shards:     spec.Shards,
		Warmup:     spec.Warmup,
		Chunk:      spec.Chunk,
		Margin:     spec.Margin,
		Exhaustive: spec.Exhaustive,
	}
	if spec.Grammar != nil {
		o.Grammar = *spec.Grammar
	} else {
		o.Grammar = autotune.PaperGrammar()
	}
	res, err := autotune.Search(o)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	j.setProgress(j.total, j.total)
	return marshalReport(res)
}

// marshalReport renders a report document the way report.Results.WriteJSON
// does: indented, trailing newline, deterministic.
func marshalReport(v any) ([]byte, error) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// signature fingerprints machine i of a job the way cmd/vrsim fingerprints
// a run: workload identity plus every state-shaping machine parameter, with
// the attached observers stripped.
func signature(wl tracegen.Config, mc machine, idx int, timed bool, p cycles.Params) string {
	s := mc.cfg
	s.Probe, s.Cycles, s.Audit, s.Tracer = nil, nil, nil, nil
	s.ProbeEphemeral = false
	return fmt.Sprintf("%s|machine[%d]=%+v|timed=%v|cycles=%+v", wl.Signature(), idx, s, timed, p)
}

// skipRecords positions a fresh reader at a checkpoint cursor.
func skipRecords(r trace.Reader, cursor uint64) (trace.Reader, error) {
	skipped, err := trace.Skip(r, cursor)
	if err != nil {
		return nil, err
	}
	if skipped != cursor {
		return nil, fmt.Errorf("jobs: trace ended after %d of %d checkpointed records — wrong workload?", skipped, cursor)
	}
	return r, nil
}

// Checkpoint container: every system of a job checkpointed at one shared
// trace cursor. Writing is atomic (temp + rename), so a daemon killed
// mid-checkpoint leaves the previous container intact.
//
//	magic "VRJOBS1\n", then uvarints: cursor, count, then per system
//	uvarint length + checkpoint.Checkpoint.Encode bytes.
var ckMagic = []byte("VRJOBS1\n")

func (m *Manager) saveCheckpoint(j *job, machines []machine, wl tracegen.Config,
	timed bool, p cycles.Params, systems []*system.System, cursor uint64) error {
	var out bytes.Buffer
	out.Write(ckMagic)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { out.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	put(cursor)
	put(uint64(len(systems)))
	for i, sys := range systems {
		ck, err := checkpoint.Capture(sys, signature(wl, machines[i], i, timed, p), cursor)
		if err != nil {
			return err
		}
		enc := ck.Encode()
		put(uint64(len(enc)))
		out.Write(enc)
	}
	return writeFileAtomic(m.checkpointPath(j.id), out.Bytes())
}

// loadCheckpoint restores every system from the job's checkpoint container,
// if one exists, returning the shared cursor.
func (m *Manager) loadCheckpoint(j *job, machines []machine, wl tracegen.Config,
	timed bool, p cycles.Params, systems []*system.System) (uint64, bool, error) {
	data, err := os.ReadFile(m.checkpointPath(j.id))
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	if !bytes.HasPrefix(data, ckMagic) {
		return 0, false, fmt.Errorf("jobs: %s: bad checkpoint magic", m.checkpointPath(j.id))
	}
	rd := bytes.NewReader(data[len(ckMagic):])
	cursor, err := binary.ReadUvarint(rd)
	if err != nil {
		return 0, false, fmt.Errorf("jobs: checkpoint cursor: %w", err)
	}
	count, err := binary.ReadUvarint(rd)
	if err != nil {
		return 0, false, fmt.Errorf("jobs: checkpoint count: %w", err)
	}
	if count != uint64(len(systems)) {
		return 0, false, fmt.Errorf("jobs: checkpoint has %d systems, job has %d", count, len(systems))
	}
	for i, sys := range systems {
		n, err := binary.ReadUvarint(rd)
		if err != nil || n > uint64(rd.Len()) {
			return 0, false, fmt.Errorf("jobs: checkpoint entry %d length: %v", i, err)
		}
		enc := make([]byte, n)
		if _, err := io.ReadFull(rd, enc); err != nil {
			return 0, false, err
		}
		ck, err := checkpoint.Decode(enc)
		if err != nil {
			return 0, false, fmt.Errorf("jobs: checkpoint entry %d: %w", i, err)
		}
		if err := checkpoint.Restore(sys, ck, signature(wl, machines[i], i, timed, p)); err != nil {
			return 0, false, err
		}
	}
	return cursor, true, nil
}
