// Package client is a thin HTTP client for the vrsimd job server
// (internal/jobs.Server). It speaks the server's JSON vocabulary verbatim:
// submissions are jobs.Config documents, statuses are jobs.Status, errors
// are jobs.Error. The test suite and the `vrsimd submit` subcommand are its
// two in-tree users; examples/jobs shows the external shape.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/jobs"
)

// Client talks to one vrsimd daemon.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the daemon at base (e.g. "http://127.0.0.1:8080").
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// Base returns the daemon base URL this client talks to.
func (c *Client) Base() string { return c.base }

// apiError decodes the server's structured error document, falling back to
// the raw body when the server (or a proxy) answered with something else.
func apiError(resp *http.Response, body []byte) error {
	var je jobs.Error
	if err := json.Unmarshal(body, &je); err == nil && je.Msg != "" {
		return fmt.Errorf("%s: %w", resp.Status, &je)
	}
	return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
}

func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return apiError(resp, data)
	}
	if out == nil {
		return nil
	}
	if raw, ok := out.(*[]byte); ok {
		*raw = data
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit posts a job config document and returns the accepted job's status.
func (c *Client) Submit(ctx context.Context, config []byte) (jobs.Status, error) {
	var st jobs.Status
	err := c.do(ctx, http.MethodPost, "/jobs", config, &st)
	return st, err
}

// Status fetches one job's current status.
func (c *Client) Status(ctx context.Context, id string) (jobs.Status, error) {
	var st jobs.Status
	err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &st)
	return st, err
}

// List fetches every job's status in submission order.
func (c *Client) List(ctx context.Context) ([]jobs.Status, error) {
	var sts []jobs.Status
	err := c.do(ctx, http.MethodGet, "/jobs", nil, &sts)
	return sts, err
}

// Cancel asks the daemon to stop a job.
func (c *Client) Cancel(ctx context.Context, id string) (jobs.Status, error) {
	var st jobs.Status
	err := c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, &st)
	return st, err
}

// Report fetches a finished job's report document (raw JSON bytes, exactly
// as the daemon persisted them).
func (c *Client) Report(ctx context.Context, id string) ([]byte, error) {
	var data []byte
	err := c.do(ctx, http.MethodGet, "/jobs/"+id+"/report", nil, &data)
	return data, err
}

// Metrics fetches the Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	var data []byte
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &data)
	return string(data), err
}

// TimeseriesQuery selects a window range of a job's persisted time-series.
// Zero values mean "unbounded" (resp. "no downsampling").
type TimeseriesQuery struct {
	Metric  string // derived or raw metric name (default l1ratio)
	FromSeq uint64 // inclusive lower window-sequence bound
	ToSeq   uint64 // inclusive upper bound; 0 = open-ended
	Points  int    // downsample to at most this many samples
}

func (q TimeseriesQuery) encode() string {
	v := url.Values{}
	if q.Metric != "" {
		v.Set("metric", q.Metric)
	}
	if q.FromSeq > 0 {
		v.Set("from", strconv.FormatUint(q.FromSeq, 10))
	}
	if q.ToSeq > 0 {
		v.Set("to", strconv.FormatUint(q.ToSeq, 10))
	}
	if q.Points > 0 {
		v.Set("points", strconv.Itoa(q.Points))
	}
	if len(v) == 0 {
		return ""
	}
	return "?" + v.Encode()
}

// Timeseries fetches a job's persisted per-window metrics.
func (c *Client) Timeseries(ctx context.Context, id string, q TimeseriesQuery) (jobs.TimeseriesResponse, error) {
	var ts jobs.TimeseriesResponse
	err := c.do(ctx, http.MethodGet, "/jobs/"+id+"/timeseries"+q.encode(), nil, &ts)
	return ts, err
}

// TimeseriesCSV fetches the same range as raw CSV bytes.
func (c *Client) TimeseriesCSV(ctx context.Context, id string, q TimeseriesQuery) ([]byte, error) {
	var data []byte
	qs := q.encode()
	if qs == "" {
		qs = "?format=csv"
	} else {
		qs += "&format=csv"
	}
	err := c.do(ctx, http.MethodGet, "/jobs/"+id+"/timeseries"+qs, nil, &data)
	return data, err
}

// Fleet fetches the one-poll dashboard document.
func (c *Client) Fleet(ctx context.Context) (jobs.FleetView, error) {
	var fv jobs.FleetView
	err := c.do(ctx, http.MethodGet, "/fleet", nil, &fv)
	return fv, err
}

// Wait polls until the job reaches a terminal state and returns that final
// status. Poll cadence is modest (50ms) — for live progress use Events.
func (c *Client) Wait(ctx context.Context, id string) (jobs.Status, error) {
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if jobs.Terminal(st.State) {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Events consumes the job's SSE progress stream, invoking fn for every
// event until the stream closes (terminal state, server shutdown, or ctx
// cancellation). It returns the last status observed.
func (c *Client) Events(ctx context.Context, id string, fn func(jobs.Status)) (jobs.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/jobs/"+id+"/events", nil)
	if err != nil {
		return jobs.Status{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return jobs.Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		data, _ := io.ReadAll(resp.Body)
		return jobs.Status{}, apiError(resp, data)
	}
	var last jobs.Status
	sc := newSSEScanner(resp.Body)
	for {
		data, err := sc.next()
		if err != nil {
			if err == io.EOF {
				return last, nil
			}
			// A benign close (server shutdown mid-stream) surfaces as a
			// read error; the caller falls back to polling.
			return last, err
		}
		var st jobs.Status
		if jerr := json.Unmarshal(data, &st); jerr != nil {
			return last, jerr
		}
		last = st
		if fn != nil {
			fn(st)
		}
	}
}

// sseScanner extracts `data:` payloads from a text/event-stream body.
type sseScanner struct {
	r   *jsonLineReader
	buf []byte
}

func newSSEScanner(r io.Reader) *sseScanner { return &sseScanner{r: &jsonLineReader{r: r}} }

func (s *sseScanner) next() ([]byte, error) {
	for {
		line, err := s.r.readLine()
		if err != nil {
			return nil, err
		}
		if rest, ok := strings.CutPrefix(line, "data: "); ok {
			return []byte(rest), nil
		}
	}
}

// jsonLineReader is a minimal buffered line reader (bufio would be fine too;
// this keeps the read size small so SSE events surface promptly).
type jsonLineReader struct {
	r   io.Reader
	buf []byte
}

func (l *jsonLineReader) readLine() (string, error) {
	for {
		if i := bytes.IndexByte(l.buf, '\n'); i >= 0 {
			line := string(l.buf[:i])
			l.buf = l.buf[i+1:]
			return line, nil
		}
		chunk := make([]byte, 512)
		n, err := l.r.Read(chunk)
		l.buf = append(l.buf, chunk[:n]...)
		if err != nil {
			if len(l.buf) > 0 && err == io.EOF {
				line := string(l.buf)
				l.buf = nil
				return line, nil
			}
			return "", err
		}
	}
}
