package jobs_test

// End-to-end lifecycle tests for the job service: a real Manager behind a
// real HTTP server, driven through the client package — the same path
// cmd/vrsimd serves. Everything here runs under -race in CI.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/jobs/client"
)

// startService stands up a Manager + Server + HTTP listener and registers
// teardown in dependency order (listener, streams, pool) followed by a
// goroutine-leak check.
func startService(t *testing.T, opt jobs.Options) *client.Client {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = t.TempDir()
	}
	m, err := jobs.Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := jobs.NewServer(m)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
		if err := m.Close(); err != nil {
			t.Errorf("Manager.Close: %v", err)
		}
		if err := jobs.VerifyNoLeaks(5 * time.Second); err != nil {
			t.Error(err)
		}
	})
	return client.New(ts.URL)
}

func submitWait(t *testing.T, c *client.Client, config string) jobs.Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := c.Submit(ctx, []byte(config))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err = c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("Wait(%s): %v", st.ID, err)
	}
	return st
}

func TestRunJobLifecycle(t *testing.T) {
	c := startService(t, jobs.Options{Workers: 2, ProgressEvery: 5000})
	st := submitWait(t, c, `{"kind":"run","preset":"pops","scale":0.05}`)
	if st.State != jobs.StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	if st.Records == 0 || st.Refs == 0 || st.Refs != st.TotalRefs {
		t.Errorf("progress = %d records, %d/%d refs; want full", st.Records, st.Refs, st.TotalRefs)
	}
	if st.Window == nil {
		t.Error("no progress window reached the status")
	}

	report, err := c.Report(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(report, &doc); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	for _, key := range []string{"machine", "references", "l1", "l2", "bus"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("report lacks %q section", key)
		}
	}
	if _, ok := doc["probe"]; ok {
		t.Error("report includes the ephemeral progress probe; it must not")
	}
}

func TestTimedRunJob(t *testing.T) {
	c := startService(t, jobs.Options{Workers: 2})
	st := submitWait(t, c,
		`{"kind":"run","preset":"pops","scale":0.03,"timed":true,"params":{"tm":30}}`)
	if st.State != jobs.StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	report, err := c.Report(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(report, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["timing"]; !ok {
		t.Error("timed run report lacks the timing section")
	}
}

func TestSweepJobLifecycle(t *testing.T) {
	c := startService(t, jobs.Options{Workers: 2})
	st := submitWait(t, c, `{
		"kind": "sweep", "preset": "thor", "scale": 0.03,
		"machines": [
			{"org": "vr"},
			{"org": "rr", "l1Assoc": 2},
			{"label": "big-l2", "org": "vr", "l2Size": 524288}
		]}`)
	if st.State != jobs.StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	report, err := c.Report(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	var doc jobs.SweepReport
	if err := json.Unmarshal(report, &doc); err != nil {
		t.Fatalf("sweep report: %v", err)
	}
	if len(doc.Configs) != 3 {
		t.Fatalf("sweep report has %d configs, want 3", len(doc.Configs))
	}
	if doc.Configs[2].Label != "big-l2" {
		t.Errorf("label = %q, want the submitted label", doc.Configs[2].Label)
	}
	for i, cr := range doc.Configs {
		if cr.Results.Refs == 0 {
			t.Errorf("config %d simulated no references", i)
		}
	}
}

func TestAutotuneJobLifecycle(t *testing.T) {
	c := startService(t, jobs.Options{Workers: 2})
	st := submitWait(t, c, `{
		"kind": "autotune", "preset": "pops", "scale": 0.02,
		"autotune": {
			"exhaustive": true,
			"grammar": {
				"organizations": ["vr", "rr"],
				"l1Sizes": [16384], "l2Sizes": [262144]
			}}}`)
	if st.State != jobs.StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	report, err := c.Report(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	var doc struct {
		Candidates int `json:"candidates"`
		Frontier   []struct {
			Label string `json:"label"`
		} `json:"frontier"`
	}
	if err := json.Unmarshal(report, &doc); err != nil {
		t.Fatalf("autotune report: %v", err)
	}
	if doc.Candidates != 2 {
		t.Errorf("candidates = %d, want 2", doc.Candidates)
	}
	if len(doc.Frontier) == 0 {
		t.Error("empty frontier")
	}
}

func TestInvalidConfigsRejected(t *testing.T) {
	c := startService(t, jobs.Options{Workers: 1})
	cases := []struct {
		name   string
		config string
		field  string // expected Error.Field ("" = any)
	}{
		{"empty", ``, ""},
		{"not json", `not a json document`, ""},
		{"trailing data", `{"kind":"run","preset":"pops"} {"more":1}`, ""},
		{"unknown field", `{"kind":"run","preset":"pops","bogus":1}`, ""},
		{"missing kind", `{"preset":"pops"}`, "kind"},
		{"unknown kind", `{"kind":"walk","preset":"pops"}`, "kind"},
		{"bad preset", `{"kind":"run","preset":"doom"}`, "preset"},
		{"negative scale", `{"kind":"run","preset":"pops","scale":-1}`, "scale"},
		{"huge scale", `{"kind":"run","preset":"pops","scale":1e9}`, "scale"},
		{"bad deadline", `{"kind":"run","preset":"pops","deadline":"soon"}`, "deadline"},
		{"params without timed", `{"kind":"run","preset":"pops","params":{"tm":30}}`, "params"},
		{"run with machines", `{"kind":"run","preset":"pops","machines":[{}]}`, "machines"},
		{"sweep without machines", `{"kind":"sweep","preset":"pops"}`, "machines"},
		{"sweep with machine", `{"kind":"sweep","preset":"pops","machine":{}}`, "machine"},
		{"autotune with timed", `{"kind":"autotune","preset":"pops","timed":true}`, "timed"},
		{"bad org", `{"kind":"run","preset":"pops","machine":{"org":"psycho"}}`, "machine.org"},
		{"bad policy", `{"kind":"run","preset":"pops","machine":{"policy":"clock"}}`, "machine.policy"},
		{"illegal geometry", `{"kind":"run","preset":"pops","machine":{"l1Size":12345}}`, "machine"},
		{"l1 not below l2", `{"kind":"run","preset":"pops","machine":{"l1Size":1048576,"l2Size":65536}}`, "machine"},
		{"oversized cache", `{"kind":"run","preset":"pops","machine":{"l1Size":1073741824}}`, "machine.l1Size"},
		{"bad block ratio", `{"kind":"run","preset":"pops","machine":{"l1Block":16,"l2Block":24}}`, "machine.l2Block"},
		{"sweep over limit", func() string {
			ms := make([]string, 65)
			for i := range ms {
				ms[i] = "{}"
			}
			return fmt.Sprintf(`{"kind":"sweep","preset":"pops","machines":[%s]}`, strings.Join(ms, ","))
		}(), "machines"},
		{"grammar axis too long", fmt.Sprintf(
			`{"kind":"autotune","preset":"pops","autotune":{"grammar":{"l1Sizes":[%s]}}}`,
			intList(33)), "autotune.grammar.l1Sizes"},
		{"grammar cross-product blowup", fmt.Sprintf(
			`{"kind":"autotune","preset":"pops","autotune":{"grammar":{"l1Sizes":[%s],"l2Sizes":[%s],"tlbEntries":[%s]}}}`,
			intList(32), intList(32), intList(32)), "autotune.grammar"},
	}
	ctx := context.Background()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Submit(ctx, []byte(tc.config))
			if err == nil {
				t.Fatal("accepted")
			}
			var je *jobs.Error
			if !errors.As(err, &je) {
				t.Fatalf("error is not the structured document: %v", err)
			}
			if tc.field != "" && je.Field != tc.field {
				t.Errorf("field = %q (%s), want %q", je.Field, je.Msg, tc.field)
			}
			if !strings.Contains(err.Error(), "400") {
				t.Errorf("status in %q is not 400", err)
			}
		})
	}
	// Nothing was admitted.
	sts, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 0 {
		t.Errorf("%d jobs admitted from invalid configs", len(sts))
	}
}

func TestCancelMidRun(t *testing.T) {
	c := startService(t, jobs.Options{Workers: 1, ProgressEvery: 2000})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := c.Submit(ctx, []byte(`{"kind":"run","preset":"pops","scale":2}`))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for real progress so the cancel lands mid-simulation.
	for {
		cur, err := c.Status(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Records > 0 {
			break
		}
		if jobs.Terminal(cur.State) {
			t.Fatalf("job reached %s before it could be canceled", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.StateCanceled {
		t.Fatalf("state = %s, want canceled", final.State)
	}
	if final.Refs == final.TotalRefs {
		t.Error("job ran to completion despite the cancel")
	}
	// A canceled job has no report; the API says 404.
	if _, err := c.Report(ctx, st.ID); err == nil {
		t.Error("canceled job served a report")
	}
	// Canceling a terminal job is a conflict, not a crash.
	if _, err := c.Cancel(ctx, st.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("second cancel: %v, want a 409", err)
	}
}

func TestDeadlineExpiry(t *testing.T) {
	c := startService(t, jobs.Options{Workers: 1})
	st := submitWait(t, c, `{"kind":"run","preset":"pops","scale":4,"deadline":"50ms"}`)
	if st.State != jobs.StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Errorf("error = %q, want a deadline message", st.Error)
	}
}

func TestQueueSaturation(t *testing.T) {
	c := startService(t, jobs.Options{Workers: 1, QueueLimit: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	long := `{"kind":"run","preset":"pops","scale":2}`

	// First job occupies the lone worker...
	first, err := c.Submit(ctx, []byte(long))
	if err != nil {
		t.Fatal(err)
	}
	for {
		cur, err := c.Status(ctx, first.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == jobs.StateRunning {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// ...the next two fill the admission queue...
	var queued []string
	for i := 0; i < 2; i++ {
		st, err := c.Submit(ctx, []byte(long))
		if err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
		queued = append(queued, st.ID)
	}
	// ...and the pool is saturated: 503, not an admission.
	_, err = c.Submit(ctx, []byte(long))
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("saturated submit: %v, want a 503", err)
	}
	// Cancel everything; the rejected job must not have left a record.
	for _, id := range append([]string{first.ID}, queued...) {
		if _, err := c.Cancel(ctx, id); err != nil {
			t.Errorf("Cancel(%s): %v", id, err)
		}
	}
	sts, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 3 {
		t.Errorf("%d jobs on record, want 3 (the 503 must not admit)", len(sts))
	}
}

func TestProgressEvents(t *testing.T) {
	c := startService(t, jobs.Options{Workers: 1, ProgressEvery: 5000})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := c.Submit(ctx, []byte(`{"kind":"run","preset":"pops","scale":0.1}`))
	if err != nil {
		t.Fatal(err)
	}
	var events []jobs.Status
	last, err := c.Events(ctx, st.ID, func(s jobs.Status) { events = append(events, s) })
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	if last.State != jobs.StateDone {
		t.Fatalf("final event state = %s (%s), want done", last.State, last.Error)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Records < events[i-1].Records {
			t.Errorf("records went backwards: %d then %d", events[i-1].Records, events[i].Records)
		}
	}
	// Streaming an unknown job is a 404.
	if _, err := c.Events(ctx, "j999999", nil); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("events for unknown job: %v, want a 404", err)
	}
}

func TestFleetMetrics(t *testing.T) {
	c := startService(t, jobs.Options{Workers: 3})
	ctx := context.Background()
	st := submitWait(t, c, `{"kind":"run","preset":"pops","scale":0.02}`)
	if st.State != jobs.StateDone {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"vrsimd_workers 3",
		"vrsimd_queue_depth 0",
		`vrsimd_jobs_lifecycle_total{event="submitted"} 1`,
		`vrsimd_jobs_lifecycle_total{event="done"} 1`,
		`vrsimd_jobs{state="done"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics lack %q:\n%s", want, text)
		}
	}
}

func TestHTTPSurface(t *testing.T) {
	c := startService(t, jobs.Options{Workers: 1})
	base := strings.TrimSuffix(httpBase(c), "/")
	for _, tc := range []struct {
		method, path string
		status       int
	}{
		{http.MethodGet, "/healthz", http.StatusOK},
		{http.MethodGet, "/", http.StatusOK},
		{http.MethodGet, "/nope", http.StatusNotFound},
		{http.MethodGet, "/jobs/j000042", http.StatusNotFound},
		{http.MethodGet, "/jobs/j000042/report", http.StatusNotFound},
		{http.MethodDelete, "/jobs/j000042", http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, base+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
		}
	}
	// An unfinished job's report is a conflict, not a 404.
	ctx := context.Background()
	st, err := c.Submit(ctx, []byte(`{"kind":"run","preset":"pops","scale":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(base + "/jobs/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("report of unfinished job = %d, want 409", resp.StatusCode)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
}

func httpBase(c *client.Client) string { return c.Base() }

// intList renders "1,2,4,..." with n power-of-two entries, for building
// oversized grammar axes.
func intList(n int) string {
	vals := make([]string, n)
	for i := range vals {
		vals[i] = fmt.Sprint(uint64(1) << (i % 20))
	}
	return strings.Join(vals, ",")
}
