package jobs

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// VerifyNoLeaks polls the runtime's goroutine dump until no goroutine has a
// frame inside this package (other than the caller's own), or the grace
// period expires. Worker goroutines wind down asynchronously after
// Manager.Close returns their WaitGroup, and SSE handlers exit on the next
// tick after Server.Close — the grace period absorbs that scheduling slack.
//
// It is the daemon's shutdown self-check (cmd/vrsimd runs it before
// printing "clean shutdown") and the test suite's leak detector.
func VerifyNoLeaks(grace time.Duration) error {
	deadline := time.Now().Add(grace)
	var stray string
	for {
		stray = strayGoroutines()
		if stray == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("jobs: leaked goroutines after %v grace:\n%s", grace, stray)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// leakPackages are the service-side packages no goroutine may still be
// executing in after shutdown: the job layer itself plus the observability
// layers it drives (time-series store, monitor exposition, span export).
var leakPackages = []string{
	"repro/internal/jobs",
	"repro/internal/tsdb",
	"repro/internal/monitor",
	"repro/internal/telemetry",
}

// strayGoroutines returns the stack blocks of goroutines still executing in
// the watched packages, excluding the block containing this call itself.
func strayGoroutines() string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var stray []string
	for _, block := range strings.Split(string(buf), "\n\n") {
		watched := false
		for _, pkg := range leakPackages {
			if strings.Contains(block, pkg) {
				watched = true
				break
			}
		}
		if !watched {
			continue
		}
		if strings.Contains(block, "strayGoroutines") {
			continue // the goroutine running this check
		}
		stray = append(stray, block)
	}
	return strings.Join(stray, "\n\n")
}
