// Package jobs turns the simulator into a long-running service: simulation,
// sweep and autotune jobs are submitted as JSON over HTTP, multiplexed onto
// a bounded worker pool with per-job cancellation and deadlines, observed
// through the probe layer's windowed metrics, periodically checkpointed
// through internal/checkpoint so a daemon restart resumes every in-flight
// job, and reported as the same JSON documents the command-line tools emit.
//
// The package is split along the lifecycle:
//
//   - config.go — the job-submission decoder and validator (the fuzz
//     surface: every byte that crosses the HTTP boundary goes through
//     DecodeConfig)
//   - manager.go — the worker pool, job registry and on-disk state
//   - run.go — the executors: the checkpointable simulation loop shared by
//     run and sweep jobs, and the autotune wrapper
//   - server.go — the HTTP API (submit, status, report, cancel, SSE
//     progress, Prometheus fleet metrics)
//
// Reports are byte-identical across daemon restarts: run and sweep jobs
// resume from machine checkpoints (internal/checkpoint's guarantee), and
// autotune jobs re-run their deterministic search from the start. The probe
// attached for progress streaming is excluded from the report precisely so
// that this equivalence holds (its window cursors are not checkpointed; see
// system.Config.ProbeEphemeral).
package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/autotune"
	"repro/internal/cycles"
	"repro/internal/system"
	"repro/internal/tracegen"
)

// Kinds of job the server runs.
const (
	KindRun      = "run"      // one machine, one report.Results document
	KindSweep    = "sweep"    // many machines over one trace, one document per machine
	KindAutotune = "autotune" // a design-space search, one autotune.Result document
)

// Error is a structured validation error: Field names the offending JSON
// path ("machine.l1Size") when one is identifiable, and Msg says what is
// wrong. It marshals to the {"error": ..., "field": ...} document the HTTP
// API returns with a 400.
type Error struct {
	Msg   string `json:"error"`
	Field string `json:"field,omitempty"`
}

func (e *Error) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("%s: %s", e.Field, e.Msg)
	}
	return e.Msg
}

func errf(field, format string, args ...any) *Error {
	return &Error{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Config is one submitted job. Kind selects which of the kind-specific
// sections must be present; the workload is always a deterministic
// tracegen preset so checkpointed jobs can regenerate their trace.
type Config struct {
	Kind   string  `json:"kind"`
	Preset string  `json:"preset"`          // pops | thor | abaqus
	Scale  float64 `json:"scale,omitempty"` // trace length factor, default 1

	// Deadline bounds the job's wall-clock run time (Go duration string,
	// e.g. "90s"); a job past its deadline fails. Empty means unbounded.
	Deadline string `json:"deadline,omitempty"`

	// Timed attaches the cycle engine; Params overrides its latencies
	// (default cycles.DefaultParams with contention enabled).
	Timed  bool       `json:"timed,omitempty"`
	Params *TimedSpec `json:"params,omitempty"`

	Machine  *MachineSpec  `json:"machine,omitempty"`  // run: nil selects the paper default
	Machines []MachineSpec `json:"machines,omitempty"` // sweep: one entry per configuration
	Autotune *AutotuneSpec `json:"autotune,omitempty"` // autotune: nil selects the paper grammar
}

// MachineSpec is one machine configuration in submission form. Zero fields
// take the paper defaults (16K direct-mapped L1 with 16-byte blocks, 256K
// direct-mapped L2 with 32-byte blocks, 64x2 TLB, depth-1 write buffer,
// LRU). The CPU count and page size always come from the preset: the trace
// stream fixes both.
type MachineSpec struct {
	Label string `json:"label,omitempty"`
	Org   string `json:"org,omitempty"` // vr | rr | rrnoincl | rlt | vr-wt | rr-wt

	L1Size  uint64 `json:"l1Size,omitempty"`
	L1Assoc int    `json:"l1Assoc,omitempty"`
	L1Block uint64 `json:"l1Block,omitempty"`
	Split   bool   `json:"split,omitempty"`

	L2Size  uint64 `json:"l2Size,omitempty"`
	L2Assoc int    `json:"l2Assoc,omitempty"`
	L2Block uint64 `json:"l2Block,omitempty"`

	TLBEntries    int    `json:"tlbEntries,omitempty"`
	TLBAssoc      int    `json:"tlbAssoc,omitempty"`
	WriteBufDepth int    `json:"writeBufDepth,omitempty"`
	Policy        string `json:"policy,omitempty"` // lru | fifo | random

	// Victim inserts a victim cache of that many blocks (any organization);
	// 0 means none. RLTEntries sizes the "rlt" organization's reverse-lookup
	// table (0 selects the system default) and is rejected elsewhere.
	Victim     int `json:"victim,omitempty"`
	RLTEntries int `json:"rltEntries,omitempty"`
}

// TimedSpec overrides the cycle engine's latency parameters.
type TimedSpec struct {
	T1         uint64 `json:"t1,omitempty"`
	T2         uint64 `json:"t2,omitempty"`
	TM         uint64 `json:"tm,omitempty"`
	TLBPenalty uint64 `json:"tlbPenalty,omitempty"`
	CtxCost    uint64 `json:"ctxCost,omitempty"`
	BusMemOcc  uint64 `json:"busMemOcc,omitempty"`
	BusCtrlOcc uint64 `json:"busCtrlOcc,omitempty"`
	Contention *bool  `json:"contention,omitempty"`
}

// AutotuneSpec configures a design-space search job (see
// internal/autotune); the zero value searches the paper grammar with the
// searcher's defaults.
type AutotuneSpec struct {
	Grammar    *autotune.Grammar `json:"grammar,omitempty"`
	ProbeRefs  uint64            `json:"probeRefs,omitempty"`
	Shards     int               `json:"shards,omitempty"`
	Warmup     uint64            `json:"warmup,omitempty"`
	Chunk      int               `json:"chunk,omitempty"`
	Margin     float64           `json:"margin,omitempty"`
	Exhaustive bool              `json:"exhaustive,omitempty"`
}

// Service-side resource bounds. A public submission endpoint must not let a
// JSON document allocate an unbounded machine or trace, so the validator
// rejects anything past these before a single byte of simulator state is
// built.
const (
	maxScale        = 16      // trace length factor
	maxRefs         = 1 << 30 // scaled trace references
	maxCacheSize    = 1 << 28 // bytes per level
	maxBlock        = 1 << 12 // bytes
	maxAssoc        = 1 << 6
	maxTLBEntries   = 1 << 16
	maxWriteBuf     = 1 << 10
	maxSweepConfigs = 64
	maxVictim       = 1 << 10 // victim-cache blocks
	maxRLT          = 1 << 16 // reverse-lookup-table entries
	maxGrammarAxis  = 32      // values per grammar axis
	maxCandidates   = 8192    // expanded grammar size
	maxLatency      = 1 << 20 // cycles, per timing parameter
	maxDeadline     = 24 * time.Hour
	maxLabelLen     = 200
)

// DecodeConfig parses and validates one job submission. It is strict —
// unknown fields, trailing data and out-of-bounds values are all rejected —
// and the error is always a *jobs.Error suitable for the HTTP response.
// FuzzJobConfigDecode holds it to: never panic, and accept a document only
// if the document round-trips through Canonical unchanged in meaning.
func DecodeConfig(data []byte) (*Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return nil, &Error{Msg: fmt.Sprintf("parse: %v", err)}
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(trailing) > 0 {
		return nil, &Error{Msg: "trailing data after the job document"}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Canonical renders the validated config in its normalized JSON form, the
// bytes the manager persists and fingerprints.
func (c *Config) Canonical() []byte {
	out, err := json.Marshal(c)
	if err != nil { // all field types are marshalable; nothing can fail
		panic(err)
	}
	return out
}

// Validate checks the document against the schema and the service bounds.
// It builds no simulator state: every check is O(document size).
func (c *Config) Validate() error {
	switch c.Kind {
	case KindRun, KindSweep, KindAutotune:
	case "":
		return errf("kind", "required (run, sweep, autotune)")
	default:
		return errf("kind", "unknown kind %q (run, sweep, autotune)", c.Kind)
	}
	wl, err := tracegen.PresetByName(c.Preset)
	if err != nil {
		return errf("preset", "%v", err)
	}
	if c.Scale != 0 {
		if math.IsNaN(c.Scale) || c.Scale <= 0 || c.Scale > maxScale {
			return errf("scale", "must be in (0, %d]", maxScale)
		}
	}
	if refs := float64(wl.TotalRefs) * c.scale(); refs > maxRefs {
		return errf("scale", "%.0f scaled references exceed the %d limit", refs, int64(maxRefs))
	}
	if c.Deadline != "" {
		d, err := time.ParseDuration(c.Deadline)
		if err != nil {
			return errf("deadline", "%v", err)
		}
		if d <= 0 || d > maxDeadline {
			return errf("deadline", "must be in (0, %v]", maxDeadline)
		}
	}
	if c.Params != nil {
		if !c.Timed {
			return errf("params", "timing parameters require \"timed\": true")
		}
		if err := c.Params.validate(); err != nil {
			return err
		}
	}
	switch c.Kind {
	case KindRun:
		if len(c.Machines) > 0 {
			return errf("machines", "a run job takes a single \"machine\"")
		}
		if c.Autotune != nil {
			return errf("autotune", "not a field of run jobs")
		}
		if c.Machine != nil {
			if err := c.Machine.validate("machine"); err != nil {
				return err
			}
		}
	case KindSweep:
		if c.Machine != nil {
			return errf("machine", "a sweep job takes a \"machines\" list")
		}
		if c.Autotune != nil {
			return errf("autotune", "not a field of sweep jobs")
		}
		if len(c.Machines) == 0 {
			return errf("machines", "required: one entry per configuration")
		}
		if len(c.Machines) > maxSweepConfigs {
			return errf("machines", "%d configurations exceed the %d limit", len(c.Machines), maxSweepConfigs)
		}
		for i := range c.Machines {
			if err := c.Machines[i].validate(fmt.Sprintf("machines[%d]", i)); err != nil {
				return err
			}
		}
	case KindAutotune:
		if c.Machine != nil || len(c.Machines) > 0 {
			return errf("machine", "autotune jobs take a \"grammar\", not machines")
		}
		if c.Timed {
			return errf("timed", "autotune jobs are always timed; drop the flag")
		}
		if c.Autotune != nil {
			if err := c.Autotune.validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *Config) scale() float64 {
	if c.Scale == 0 {
		return 1
	}
	return c.Scale
}

// workload returns the job's (scaled) deterministic trace configuration.
func (c *Config) workload() tracegen.Config {
	wl, err := tracegen.PresetByName(c.Preset)
	if err != nil { // Validate already accepted the preset
		panic(err)
	}
	if s := c.scale(); s != 1 {
		wl = wl.Scaled(s)
	}
	return wl
}

// cycleParams resolves the job's timing parameters.
func (c *Config) cycleParams() cycles.Params {
	p := cycles.DefaultParams()
	p.Contention = true
	if s := c.Params; s != nil {
		if s.T1 != 0 {
			p.T1 = s.T1
		}
		if s.T2 != 0 {
			p.T2 = s.T2
		}
		if s.TM != 0 {
			p.TM = s.TM
		}
		p.TLBMissPenalty = s.TLBPenalty
		p.CtxSwitchCost = s.CtxCost
		p.BusMemOcc = s.BusMemOcc
		p.BusCtrlOcc = s.BusCtrlOcc
		if s.Contention != nil {
			p.Contention = *s.Contention
		}
	}
	return p
}

func (s *TimedSpec) validate() error {
	for _, v := range []struct {
		field string
		val   uint64
	}{
		{"params.t1", s.T1}, {"params.t2", s.T2}, {"params.tm", s.TM},
		{"params.tlbPenalty", s.TLBPenalty}, {"params.ctxCost", s.CtxCost},
		{"params.busMemOcc", s.BusMemOcc}, {"params.busCtrlOcc", s.BusCtrlOcc},
	} {
		if v.val > maxLatency {
			return errf(v.field, "%d exceeds the %d-cycle limit", v.val, int64(maxLatency))
		}
	}
	return nil
}

func (m *MachineSpec) validate(field string) error {
	if len(m.Label) > maxLabelLen {
		return errf(field+".label", "longer than %d bytes", maxLabelLen)
	}
	switch m.Org {
	case "", "vr", "rr", "rrnoincl", "rlt", "vr-wt", "rr-wt":
	default:
		return errf(field+".org", "unknown organization %q (vr, rr, rrnoincl, rlt, vr-wt, rr-wt)", m.Org)
	}
	switch m.Policy {
	case "", "lru", "fifo", "random":
	default:
		return errf(field+".policy", "unknown policy %q (lru, fifo, random)", m.Policy)
	}
	for _, v := range []struct {
		name string
		val  uint64
		max  uint64
	}{
		{"l1Size", m.L1Size, maxCacheSize}, {"l2Size", m.L2Size, maxCacheSize},
		{"l1Block", m.L1Block, maxBlock}, {"l2Block", m.L2Block, maxBlock},
		{"l1Assoc", uint64(max(m.L1Assoc, 0)), maxAssoc}, {"l2Assoc", uint64(max(m.L2Assoc, 0)), maxAssoc},
		{"tlbEntries", uint64(max(m.TLBEntries, 0)), maxTLBEntries},
		{"tlbAssoc", uint64(max(m.TLBAssoc, 0)), maxTLBEntries},
		{"writeBufDepth", uint64(max(m.WriteBufDepth, 0)), maxWriteBuf},
		{"victim", uint64(max(m.Victim, 0)), maxVictim},
		{"rltEntries", uint64(max(m.RLTEntries, 0)), maxRLT},
	} {
		if v.val > v.max {
			return errf(field+"."+v.name, "%d exceeds the %d limit", v.val, v.max)
		}
	}
	if m.L1Assoc < 0 || m.L2Assoc < 0 || m.TLBEntries < 0 || m.TLBAssoc < 0 || m.WriteBufDepth < 0 ||
		m.Victim < 0 || m.RLTEntries < 0 {
		return errf(field, "negative geometry values")
	}
	if m.RLTEntries != 0 && m.Org != "rlt" {
		return errf(field+".rltEntries", "only the rlt organization has a reverse-lookup table")
	}
	// Geometry legality (powers of two, set counts, L1 < L2, block ratio)
	// is checked by building the machine spec through the autotune grammar;
	// a spec that expands to no legal candidate is rejected there.
	if _, err := m.build(field, 1, 4096); err != nil {
		return err
	}
	return nil
}

// machine is one buildable configuration: the system.Config (without any
// attached observers) plus its deterministic label.
type machine struct {
	label string
	cfg   system.Config
}

// build maps the spec to a concrete system.Config by expanding it as a
// single-point autotune grammar, reusing the grammar's legality rules and
// label format. cpus and pageSize come from the workload.
func (m *MachineSpec) build(field string, cpus int, pageSize uint64) (machine, error) {
	l1Block := m.L1Block
	if l1Block == 0 {
		l1Block = 16
	}
	l2Block := m.L2Block
	if l2Block == 0 {
		l2Block = 2 * l1Block
	}
	if l1Block == 0 || l2Block%l1Block != 0 {
		return machine{}, errf(field+".l2Block", "%d is not a multiple of the L1 block (%d)", l2Block, l1Block)
	}
	g := autotune.Grammar{
		Organizations:  []string{orDefault(m.Org, "vr")},
		L1Sizes:        []uint64{orDefaultU(m.L1Size, 16<<10)},
		L1Assocs:       []int{orDefaultI(m.L1Assoc, 1)},
		L1Block:        l1Block,
		L2Sizes:        []uint64{orDefaultU(m.L2Size, 256<<10)},
		L2Assocs:       []int{orDefaultI(m.L2Assoc, 1)},
		BlockRatios:    []int{int(l2Block / l1Block)},
		WriteBufDepths: []int{orDefaultI(m.WriteBufDepth, 1)},
		TLBEntries:     []int{orDefaultI(m.TLBEntries, 64)},
		TLBAssocs:      []int{orDefaultI(m.TLBAssoc, 2)},
		Policies:       []string{orDefault(m.Policy, "lru")},
		VictimEntries:  []int{m.Victim},
		RLTEntries:     []int{m.RLTEntries},
	}
	cands, err := g.Expand(cpus, pageSize)
	if err != nil {
		return machine{}, errf(field, "%v", err)
	}
	if len(cands) != 1 {
		return machine{}, errf(field, "does not form a legal machine (check power-of-two sizes, L1 < L2, block ratio)")
	}
	cfg := cands[0].Config
	cfg.Split = m.Split
	label := m.Label
	if label == "" {
		label = cands[0].Label
		if m.Split {
			label += "/split"
		}
	}
	return machine{label: label, cfg: cfg}, nil
}

// machines expands the job's machine list: one entry for run jobs (the
// paper-default machine when none is given), the submitted list for sweeps.
func (c *Config) machines(wl tracegen.Config) ([]machine, error) {
	switch c.Kind {
	case KindRun:
		spec := c.Machine
		if spec == nil {
			spec = &MachineSpec{}
		}
		m, err := spec.build("machine", wl.CPUs, wl.PageSize)
		if err != nil {
			return nil, err
		}
		return []machine{m}, nil
	case KindSweep:
		out := make([]machine, 0, len(c.Machines))
		for i := range c.Machines {
			m, err := c.Machines[i].build(fmt.Sprintf("machines[%d]", i), wl.CPUs, wl.PageSize)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
		}
		return out, nil
	}
	return nil, errf("kind", "%q jobs have no machine list", c.Kind)
}

func (a *AutotuneSpec) validate() error {
	if g := a.Grammar; g != nil {
		product := 1
		for _, axis := range []struct {
			name string
			n    int
		}{
			{"organizations", len(g.Organizations)}, {"l1Sizes", len(g.L1Sizes)},
			{"l1Assocs", len(g.L1Assocs)}, {"l2Sizes", len(g.L2Sizes)},
			{"l2Assocs", len(g.L2Assocs)}, {"blockRatios", len(g.BlockRatios)},
			{"writeBufDepths", len(g.WriteBufDepths)}, {"tlbEntries", len(g.TLBEntries)},
			{"tlbAssocs", len(g.TLBAssocs)}, {"policies", len(g.Policies)},
			{"victimEntries", len(g.VictimEntries)}, {"rltEntries", len(g.RLTEntries)},
		} {
			if axis.n > maxGrammarAxis {
				return errf("autotune.grammar."+axis.name, "%d values exceed the %d limit", axis.n, maxGrammarAxis)
			}
			if axis.n > 0 {
				product *= axis.n
			}
			if product > maxCandidates {
				return errf("autotune.grammar", "cross product exceeds %d candidates", maxCandidates)
			}
		}
		for _, s := range append(append([]uint64{g.L1Block}, g.L1Sizes...), g.L2Sizes...) {
			if s > maxCacheSize {
				return errf("autotune.grammar", "cache size %d exceeds the %d limit", s, int64(maxCacheSize))
			}
		}
		for _, v := range append(append([]int{}, g.L1Assocs...), g.L2Assocs...) {
			if v < 0 || v > maxAssoc {
				return errf("autotune.grammar", "associativity %d outside [0, %d]", v, maxAssoc)
			}
		}
		for _, v := range g.BlockRatios {
			if v < 0 || v > int(maxBlock) {
				return errf("autotune.grammar.blockRatios", "ratio %d outside [0, %d]", v, int64(maxBlock))
			}
		}
		for _, v := range append(append([]int{}, g.TLBEntries...), g.TLBAssocs...) {
			if v < 0 || v > maxTLBEntries {
				return errf("autotune.grammar", "TLB shape %d outside [0, %d]", v, maxTLBEntries)
			}
		}
		for _, v := range g.WriteBufDepths {
			if v < 0 || v > maxWriteBuf {
				return errf("autotune.grammar.writeBufDepths", "depth %d outside [0, %d]", v, maxWriteBuf)
			}
		}
		for _, v := range g.VictimEntries {
			if v < 0 || v > maxVictim {
				return errf("autotune.grammar.victimEntries", "%d outside [0, %d]", v, maxVictim)
			}
		}
		for _, v := range g.RLTEntries {
			if v < 0 || v > maxRLT {
				return errf("autotune.grammar.rltEntries", "%d outside [0, %d]", v, maxRLT)
			}
		}
	}
	if a.ProbeRefs > maxRefs {
		return errf("autotune.probeRefs", "%d exceeds the %d limit", a.ProbeRefs, int64(maxRefs))
	}
	if a.Shards < 0 || a.Shards > 64 {
		return errf("autotune.shards", "must be in [0, 64]")
	}
	if a.Chunk < 0 || a.Chunk > 64 {
		return errf("autotune.chunk", "must be in [0, 64]")
	}
	if a.Warmup > maxRefs {
		return errf("autotune.warmup", "%d exceeds the %d limit", a.Warmup, int64(maxRefs))
	}
	if math.IsNaN(a.Margin) || math.IsInf(a.Margin, 0) {
		return errf("autotune.margin", "must be finite")
	}
	return nil
}

func orDefault(v, d string) string {
	if v == "" {
		return d
	}
	return v
}

func orDefaultU(v, d uint64) uint64 {
	if v == 0 {
		return d
	}
	return v
}

func orDefaultI(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}
