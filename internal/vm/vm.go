// Package vm models the virtual-memory substrate under the cache hierarchy:
// per-process address spaces, demand allocation of physical frames, and
// shared segments that different processes map at different virtual bases —
// the source of the synonyms the paper's R-cache must resolve.
//
// The MMU is deterministic: given the same sequence of translations it
// always assigns the same frames, so simulations are reproducible.
package vm

import (
	"fmt"
	"sort"

	"repro/internal/addr"
)

// MMU owns the machine's page tables. Translation is demand-paged: the first
// touch of a private virtual page allocates the next free frame. Shared
// segments must be mapped explicitly with MapShared before use.
type MMU struct {
	geom      addr.PageGeom
	nextFrame uint64
	spaces    map[addr.PID]*space
	stats     Stats
}

type space struct {
	pages map[uint64]uint64 // virtual page -> physical frame
}

// Stats counts MMU activity.
type Stats struct {
	Translations uint64 // successful translations
	Allocations  uint64 // frames demand-allocated
	SharedMaps   uint64 // pages mapped via MapShared
}

// New creates an MMU with the given page size in bytes.
func New(pageSize uint64) (*MMU, error) {
	g, err := addr.NewPageGeom(pageSize)
	if err != nil {
		return nil, err
	}
	return &MMU{geom: g, spaces: make(map[addr.PID]*space)}, nil
}

// MustNew is New but panics on error, for tests and examples with
// compile-time-constant page sizes.
func MustNew(pageSize uint64) *MMU {
	m, err := New(pageSize)
	if err != nil {
		panic(err)
	}
	return m
}

// PageGeom returns the MMU's page geometry.
func (m *MMU) PageGeom() addr.PageGeom { return m.geom }

// Stats returns a copy of the MMU's counters.
func (m *MMU) Stats() Stats { return m.stats }

func (m *MMU) spaceFor(pid addr.PID) *space {
	s := m.spaces[pid]
	if s == nil {
		s = &space{pages: make(map[uint64]uint64)}
		m.spaces[pid] = s
	}
	return s
}

// Translate maps (pid, va) to a physical address, demand-allocating a fresh
// frame on the first touch of a private page.
func (m *MMU) Translate(pid addr.PID, va addr.VAddr) addr.PAddr {
	if pid == addr.NoPID {
		panic("vm: translate with NoPID")
	}
	s := m.spaceFor(pid)
	vpage := m.geom.VPage(va)
	frame, ok := s.pages[vpage]
	if !ok {
		frame = m.nextFrame
		m.nextFrame++
		s.pages[vpage] = frame
		m.stats.Allocations++
	}
	m.stats.Translations++
	return m.geom.Translate(va, frame)
}

// Lookup is Translate without demand allocation; ok is false when the page
// is unmapped.
func (m *MMU) Lookup(pid addr.PID, va addr.VAddr) (addr.PAddr, bool) {
	s := m.spaces[pid]
	if s == nil {
		return 0, false
	}
	frame, ok := s.pages[m.geom.VPage(va)]
	if !ok {
		return 0, false
	}
	return m.geom.Translate(va, frame), true
}

// Segment names a run of physical frames that can be mapped into several
// address spaces (or one address space twice), creating synonyms.
type Segment struct {
	firstFrame uint64
	pages      uint64
	geom       addr.PageGeom
}

// NewSegment allocates a shared segment of the given length in bytes,
// rounded up to whole pages.
func (m *MMU) NewSegment(bytes uint64) *Segment {
	pages := (bytes + m.geom.Size() - 1) / m.geom.Size()
	if pages == 0 {
		pages = 1
	}
	seg := &Segment{firstFrame: m.nextFrame, pages: pages, geom: m.geom}
	m.nextFrame += pages
	return seg
}

// Pages returns the segment's length in pages.
func (s *Segment) Pages() uint64 { return s.pages }

// Bytes returns the segment's length in bytes.
func (s *Segment) Bytes() uint64 { return s.pages * s.geom.Size() }

// PAddr returns the physical address of the given byte offset into the
// segment.
func (s *Segment) PAddr(offset uint64) addr.PAddr {
	if offset >= s.Bytes() {
		panic(fmt.Sprintf("vm: segment offset %d out of range %d", offset, s.Bytes()))
	}
	return s.geom.JoinP(s.firstFrame+offset/s.geom.Size(), offset%s.geom.Size())
}

// MapShared maps seg into pid's address space starting at virtual address
// base, which must be page-aligned. Pages already mapped are an error —
// the simulator's workloads lay out segments disjointly.
func (m *MMU) MapShared(pid addr.PID, base addr.VAddr, seg *Segment) error {
	if pid == addr.NoPID {
		return fmt.Errorf("vm: MapShared with NoPID")
	}
	if m.geom.Offset(base) != 0 {
		return fmt.Errorf("vm: shared base %#x not page aligned", uint64(base))
	}
	s := m.spaceFor(pid)
	vpage0 := m.geom.VPage(base)
	for i := uint64(0); i < seg.pages; i++ {
		if _, exists := s.pages[vpage0+i]; exists {
			return fmt.Errorf("vm: pid %d vpage %#x already mapped", pid, vpage0+i)
		}
	}
	for i := uint64(0); i < seg.pages; i++ {
		s.pages[vpage0+i] = seg.firstFrame + i
		m.stats.SharedMaps++
	}
	return nil
}

// MappedPages returns pid's mapped virtual page numbers in ascending order.
func (m *MMU) MappedPages(pid addr.PID) []uint64 {
	s := m.spaces[pid]
	if s == nil {
		return nil
	}
	out := make([]uint64, 0, len(s.pages))
	for v := range s.pages {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FramesInUse returns the number of physical frames allocated so far.
func (m *MMU) FramesInUse() uint64 { return m.nextFrame }

// Synonyms reports all (pid, vpage) pairs that map to the physical frame of
// pa. It is O(total pages) and intended for tests and diagnostics.
func (m *MMU) Synonyms(pa addr.PAddr) []SynonymSite {
	frame := m.geom.PFrame(pa)
	var out []SynonymSite
	for pid, s := range m.spaces {
		for vpage, f := range s.pages {
			if f == frame {
				out = append(out, SynonymSite{PID: pid, VPage: vpage})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PID != out[j].PID {
			return out[i].PID < out[j].PID
		}
		return out[i].VPage < out[j].VPage
	})
	return out
}

// SynonymSite is one virtual mapping of a physical frame.
type SynonymSite struct {
	PID   addr.PID
	VPage uint64
}

// PageMapping is one page-table entry's serializable form.
type PageMapping struct {
	VPage uint64
	Frame uint64
}

// SpaceState is one address space's serializable page table, sorted by
// virtual page number.
type SpaceState struct {
	PID   addr.PID
	Pages []PageMapping
}

// State is the MMU's serializable state (checkpoint support), with spaces
// sorted by PID so identical MMUs export identical states.
type State struct {
	NextFrame uint64
	Stats     Stats
	Spaces    []SpaceState
}

// ExportState captures the page tables and counters.
func (m *MMU) ExportState() State {
	st := State{NextFrame: m.nextFrame, Stats: m.stats}
	pids := make([]addr.PID, 0, len(m.spaces))
	for pid := range m.spaces {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		ss := SpaceState{PID: pid}
		for _, vpage := range m.MappedPages(pid) {
			ss.Pages = append(ss.Pages, PageMapping{VPage: vpage, Frame: m.spaces[pid].pages[vpage]})
		}
		st.Spaces = append(st.Spaces, ss)
	}
	return st
}

// RestoreState replaces the page tables and counters. Every mapped frame
// must lie below NextFrame, the allocation horizon.
func (m *MMU) RestoreState(st State) error {
	for _, ss := range st.Spaces {
		if ss.PID == addr.NoPID {
			return fmt.Errorf("vm: state maps pages for NoPID")
		}
		for _, pm := range ss.Pages {
			if pm.Frame >= st.NextFrame {
				return fmt.Errorf("vm: state maps frame %d at or beyond horizon %d", pm.Frame, st.NextFrame)
			}
		}
	}
	m.nextFrame = st.NextFrame
	m.stats = st.Stats
	m.spaces = make(map[addr.PID]*space, len(st.Spaces))
	for _, ss := range st.Spaces {
		s := m.spaceFor(ss.PID)
		for _, pm := range ss.Pages {
			s.pages[pm.VPage] = pm.Frame
		}
	}
	return nil
}
