package vm

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestTranslateDeterministic(t *testing.T) {
	m1 := MustNew(4096)
	m2 := MustNew(4096)
	vas := []addr.VAddr{0x1000, 0x2000, 0x1000, 0x9234, 0x1FFF}
	for _, va := range vas {
		if m1.Translate(1, va) != m2.Translate(1, va) {
			t.Fatalf("translation of %#x differs across identical MMUs", uint64(va))
		}
	}
}

func TestTranslateStable(t *testing.T) {
	m := MustNew(4096)
	p1 := m.Translate(1, 0x5123)
	p2 := m.Translate(1, 0x5FFF)
	if m.PageGeom().PFrame(p1) != m.PageGeom().PFrame(p2) {
		t.Error("same virtual page translated to different frames")
	}
	if p3 := m.Translate(1, 0x5123); p3 != p1 {
		t.Error("retranslation changed the mapping")
	}
}

func TestTranslatePreservesOffset(t *testing.T) {
	m := MustNew(4096)
	f := func(page uint16, off uint16) bool {
		va := m.PageGeom().JoinV(uint64(page), uint64(off))
		pa := m.Translate(2, va)
		return m.PageGeom().POffset(pa) == m.PageGeom().Offset(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistinctProcessesGetDistinctFrames(t *testing.T) {
	m := MustNew(4096)
	p1 := m.Translate(1, 0x1000)
	p2 := m.Translate(2, 0x1000)
	if m.PageGeom().PFrame(p1) == m.PageGeom().PFrame(p2) {
		t.Error("two private pages share a frame")
	}
}

func TestTranslateNoPIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Translate(NoPID) did not panic")
		}
	}()
	MustNew(4096).Translate(addr.NoPID, 0)
}

func TestLookup(t *testing.T) {
	m := MustNew(4096)
	if _, ok := m.Lookup(1, 0x1000); ok {
		t.Error("Lookup before Translate should miss")
	}
	want := m.Translate(1, 0x1234)
	got, ok := m.Lookup(1, 0x1234)
	if !ok || got != want {
		t.Errorf("Lookup = %#x, %v; want %#x, true", uint64(got), ok, uint64(want))
	}
	if _, ok := m.Lookup(2, 0x1234); ok {
		t.Error("Lookup in a different space should miss")
	}
}

func TestSegmentAllocation(t *testing.T) {
	m := MustNew(4096)
	seg := m.NewSegment(3 * 4096)
	if seg.Pages() != 3 {
		t.Errorf("Pages = %d, want 3", seg.Pages())
	}
	if seg.Bytes() != 3*4096 {
		t.Errorf("Bytes = %d", seg.Bytes())
	}
	seg2 := m.NewSegment(1)
	if seg2.Pages() != 1 {
		t.Errorf("1-byte segment should round to 1 page, got %d", seg2.Pages())
	}
	seg3 := m.NewSegment(0)
	if seg3.Pages() != 1 {
		t.Errorf("0-byte segment should get 1 page, got %d", seg3.Pages())
	}
}

func TestSegmentPAddr(t *testing.T) {
	m := MustNew(4096)
	seg := m.NewSegment(2 * 4096)
	p0 := seg.PAddr(0)
	p1 := seg.PAddr(4096 + 4)
	g := m.PageGeom()
	if g.PFrame(p1) != g.PFrame(p0)+1 {
		t.Error("segment pages not physically contiguous")
	}
	if g.POffset(p1) != 4 {
		t.Errorf("offset = %d, want 4", g.POffset(p1))
	}
}

func TestSegmentPAddrOutOfRange(t *testing.T) {
	m := MustNew(4096)
	seg := m.NewSegment(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range PAddr did not panic")
		}
	}()
	seg.PAddr(4096)
}

func TestSynonymsViaSharedSegment(t *testing.T) {
	m := MustNew(4096)
	seg := m.NewSegment(2 * 4096)
	if err := m.MapShared(1, 0x10000, seg); err != nil {
		t.Fatal(err)
	}
	if err := m.MapShared(2, 0x40000, seg); err != nil {
		t.Fatal(err)
	}
	pa1 := m.Translate(1, 0x10008)
	pa2 := m.Translate(2, 0x40008)
	if pa1 != pa2 {
		t.Fatalf("shared mapping not synonymous: %#x vs %#x", uint64(pa1), uint64(pa2))
	}
	syns := m.Synonyms(pa1)
	if len(syns) != 2 {
		t.Fatalf("Synonyms = %v, want 2 sites", syns)
	}
	if syns[0].PID != 1 || syns[1].PID != 2 {
		t.Errorf("Synonyms order: %v", syns)
	}
}

func TestSamePIDSynonyms(t *testing.T) {
	m := MustNew(4096)
	seg := m.NewSegment(4096)
	if err := m.MapShared(1, 0x10000, seg); err != nil {
		t.Fatal(err)
	}
	if err := m.MapShared(1, 0x80000, seg); err != nil {
		t.Fatal(err)
	}
	if m.Translate(1, 0x10010) != m.Translate(1, 0x80010) {
		t.Error("same-process double mapping not synonymous")
	}
}

func TestMapSharedErrors(t *testing.T) {
	m := MustNew(4096)
	seg := m.NewSegment(4096)
	if err := m.MapShared(addr.NoPID, 0x1000, seg); err == nil {
		t.Error("NoPID should fail")
	}
	if err := m.MapShared(1, 0x1001, seg); err == nil {
		t.Error("unaligned base should fail")
	}
	if err := m.MapShared(1, 0x1000, seg); err != nil {
		t.Fatal(err)
	}
	if err := m.MapShared(1, 0x1000, seg); err == nil {
		t.Error("double mapping at the same base should fail")
	}
}

func TestMapSharedDoesNotClobberOnPartialOverlap(t *testing.T) {
	m := MustNew(4096)
	segA := m.NewSegment(4096)
	segB := m.NewSegment(2 * 4096)
	if err := m.MapShared(1, 0x2000, segA); err != nil {
		t.Fatal(err)
	}
	// segB would cover vpages 1 and 2; vpage 2 is taken.
	if err := m.MapShared(1, 0x1000, segB); err == nil {
		t.Fatal("overlapping map should fail")
	}
	// The original mapping must be intact and vpage 1 untouched.
	if _, ok := m.Lookup(1, 0x1000); ok {
		t.Error("failed MapShared left a partial mapping")
	}
	if _, ok := m.Lookup(1, 0x2000); !ok {
		t.Error("failed MapShared clobbered an existing mapping")
	}
}

func TestMappedPages(t *testing.T) {
	m := MustNew(4096)
	if got := m.MappedPages(1); got != nil {
		t.Errorf("unmapped space should return nil, got %v", got)
	}
	m.Translate(1, 0x5000)
	m.Translate(1, 0x2000)
	got := m.MappedPages(1)
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Errorf("MappedPages = %v, want [2 5]", got)
	}
}

func TestStats(t *testing.T) {
	m := MustNew(4096)
	m.Translate(1, 0x1000)
	m.Translate(1, 0x1004) // same page: no new allocation
	m.Translate(1, 0x2000)
	seg := m.NewSegment(2 * 4096)
	if err := m.MapShared(2, 0x0, seg); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Translations != 3 {
		t.Errorf("Translations = %d, want 3", s.Translations)
	}
	if s.Allocations != 2 {
		t.Errorf("Allocations = %d, want 2", s.Allocations)
	}
	if s.SharedMaps != 2 {
		t.Errorf("SharedMaps = %d, want 2", s.SharedMaps)
	}
	if m.FramesInUse() != 4 {
		t.Errorf("FramesInUse = %d, want 4", m.FramesInUse())
	}
}

func TestNewBadPageSize(t *testing.T) {
	if _, err := New(1000); err == nil {
		t.Fatal("page size 1000 should be rejected")
	}
}
