package sweep

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// testWorkload is a small multiprocess workload with sharing and context
// switches, so the sweep exercises coherence, synonyms and write buffers.
func testWorkload() tracegen.Config {
	return tracegen.Config{
		Name:              "sweeptest",
		CPUs:              2,
		TotalRefs:         30_000,
		Seed:              42,
		InstrFrac:         0.5,
		ReadFrac:          0.3,
		WriteFrac:         0.2,
		ProcsPerCPU:       2,
		CtxSwitchInterval: 2_500,
		CallProb:          0.02,
		SharedPages:       8,
		SharedFrac:        0.1,
		SharedWriteFrac:   0.3,
	}
}

func testConfigs(tc tracegen.Config) []system.Config {
	base := system.Config{
		CPUs:     tc.CPUs,
		PageSize: tc.PageSize,
		L1:       cache.Geometry{Size: 4 << 10, Block: 16, Assoc: 1},
		L2:       cache.Geometry{Size: 64 << 10, Block: 32, Assoc: 1},
	}
	var scs []system.Config
	for _, org := range []system.Organization{system.VR, system.RRInclusion, system.RRNoInclusion} {
		sc := base
		sc.Organization = org
		scs = append(scs, sc)
	}
	sc := base
	sc.Organization = system.VR
	sc.L1.Size = 16 << 10
	sc.L2.Size = 256 << 10
	scs = append(scs, sc)
	return scs
}

func buildSystems(t *testing.T, tc tracegen.Config, scs []system.Config) []*system.System {
	t.Helper()
	systems := make([]*system.System, len(scs))
	for i, sc := range scs {
		sys, err := system.New(sc)
		if err != nil {
			t.Fatal(err)
		}
		if err := tc.SetupSharedMappings(sys.MMU()); err != nil {
			t.Fatal(err)
		}
		systems[i] = sys
	}
	return systems
}

// snapshot captures everything a table or figure could read from a system.
type snapshot struct {
	Refs      uint64
	Agg       system.AggregateStats
	Coherence []uint64
	PerCPU    []string
}

func snap(s *system.System) snapshot {
	sn := snapshot{Refs: s.Refs(), Agg: s.Aggregate(), Coherence: s.CoherenceMessages()}
	for i := 0; i < s.CPUs(); i++ {
		st := s.Stats(i)
		sn.PerCPU = append(sn.PerCPU, fmt.Sprintf(
			"l1=%+v l2=%+v tlb=%+v wb=%d swapped=%d eager=%d incl=%d stalls=%d ctx=%d syn=%v coh=%d",
			st.L1, st.L2, st.TLB, st.WriteBacks, st.SwappedWriteBacks,
			st.EagerFlushWriteBacks, st.InclusionInvals, st.BufferStalls,
			st.CtxSwitches, st.Synonyms, st.Coherence.Total()))
	}
	return sn
}

// TestSweepMatchesSequential is the determinism guarantee: every system in a
// sweep produces counters identical to running that configuration alone on
// its own freshly generated trace.
func TestSweepMatchesSequential(t *testing.T) {
	tc := testWorkload()
	scs := testConfigs(tc)

	want := make([]snapshot, len(scs))
	for i, sc := range scs {
		sys := buildSystems(t, tc, []system.Config{sc})[0]
		if err := sys.Run(tracegen.MustNew(tc)); err != nil {
			t.Fatalf("sequential run %d: %v", i, err)
		}
		want[i] = snap(sys)
	}

	systems := buildSystems(t, tc, scs)
	if err := Run(tracegen.MustNew(tc), systems, Options{}); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for i, sys := range systems {
		if got := snap(sys); !reflect.DeepEqual(got, want[i]) {
			t.Errorf("system %d diverged from sequential run:\n got %+v\nwant %+v", i, got, want[i])
		}
	}
}

// TestSweepSmallBatches forces batch boundaries to land mid-stream and the
// broadcaster to cycle its pool.
func TestSweepSmallBatches(t *testing.T) {
	tc := testWorkload()
	tc.TotalRefs = 5_001
	scs := testConfigs(tc)[:2]

	seq := buildSystems(t, tc, scs[:1])[0]
	if err := seq.Run(tracegen.MustNew(tc)); err != nil {
		t.Fatal(err)
	}

	systems := buildSystems(t, tc, scs)
	if err := Run(tracegen.MustNew(tc), systems, Options{BatchSize: 7, QueueDepth: 1}); err != nil {
		t.Fatal(err)
	}
	if got, want := snap(systems[0]), snap(seq); !reflect.DeepEqual(got, want) {
		t.Errorf("tiny batches diverged:\n got %+v\nwant %+v", got, want)
	}
	if systems[1].Refs() != systems[0].Refs() {
		t.Errorf("systems saw different streams: %d vs %d refs", systems[0].Refs(), systems[1].Refs())
	}
}

func TestSweepEmptyAndSingle(t *testing.T) {
	if err := Run(trace.NewSliceReader(nil), nil, Options{}); err != nil {
		t.Fatalf("empty sweep: %v", err)
	}
	tc := testWorkload()
	tc.TotalRefs = 1_000
	systems := buildSystems(t, tc, testConfigs(tc)[:1])
	if err := Run(tracegen.MustNew(tc), systems, Options{}); err != nil {
		t.Fatalf("single-system sweep: %v", err)
	}
	if systems[0].Refs() != 1_000 {
		t.Errorf("Refs = %d, want 1000", systems[0].Refs())
	}
}

// TestSweepSystemError proves a failing system aborts the sweep with its
// index and does not deadlock the broadcaster or the healthy systems.
func TestSweepSystemError(t *testing.T) {
	tc := testWorkload()
	tc.TotalRefs = 10_000
	scs := testConfigs(tc)[:2]
	scs[1].CPUs = 1 // records for CPU 1 will error on this system
	systems := buildSystems(t, tc, scs)
	err := Run(tracegen.MustNew(tc), systems, Options{BatchSize: 64})
	if err == nil {
		t.Fatal("sweep with an undersized system did not error")
	}
	if want := "sweep: system 1:"; len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
		t.Errorf("error %q does not identify system 1", err)
	}
}

// errReader fails after a few records.
type errReader struct{ n int }

func (r *errReader) Next() (trace.Ref, error) {
	if r.n == 0 {
		return trace.Ref{}, fmt.Errorf("trace decode failure")
	}
	r.n--
	return trace.Ref{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x1000}, nil
}

func TestSweepReaderError(t *testing.T) {
	tc := testWorkload()
	systems := buildSystems(t, tc, testConfigs(tc)[:2])
	err := Run(&errReader{n: 100}, systems, Options{BatchSize: 16})
	if err == nil || err.Error() != "trace decode failure" {
		t.Fatalf("reader error not propagated: %v", err)
	}
}

// TestSweepModesIdentical proves every execution shape — sequential chunked,
// grouped static partition, and work stealing, across batch sizes and queue
// depths — produces per-system results byte-identical to the sequential
// single-system runs.
func TestSweepModesIdentical(t *testing.T) {
	tc := testWorkload()
	scs := testConfigs(tc)

	want := make([]snapshot, len(scs))
	for i, sc := range scs {
		sys := buildSystems(t, tc, []system.Config{sc})[0]
		if err := sys.Run(tracegen.MustNew(tc)); err != nil {
			t.Fatal(err)
		}
		want[i] = snap(sys)
	}

	modes := []Options{
		{Workers: 1},
		{Workers: 1, BatchSize: 33},
		{Workers: 2},
		{Workers: len(scs)},
		{Workers: 2, WorkSteal: true},
		{Workers: 2, WorkSteal: true, BatchSize: 129, QueueDepth: 1},
		{Workers: 3, WorkSteal: true, BatchSize: 4096, QueueDepth: 2},
	}
	for _, opts := range modes {
		name := fmt.Sprintf("w%d_steal%v_b%d_q%d", opts.Workers, opts.WorkSteal, opts.BatchSize, opts.QueueDepth)
		t.Run(name, func(t *testing.T) {
			systems := buildSystems(t, tc, scs)
			if err := Run(tracegen.MustNew(tc), systems, opts); err != nil {
				t.Fatal(err)
			}
			for i, sys := range systems {
				if got := snap(sys); !reflect.DeepEqual(got, want[i]) {
					t.Errorf("system %d diverged under %+v", i, opts)
				}
			}
		})
	}
}

// TestSweepStealingSystemError exercises the error path of the work-stealing
// mode: the failing system is identified, healthy systems finish the stream,
// and neither the broadcaster nor the workers deadlock.
func TestSweepStealingSystemError(t *testing.T) {
	tc := testWorkload()
	tc.TotalRefs = 10_000
	scs := testConfigs(tc)[:3]
	scs[1].CPUs = 1 // records for CPU 1 will error on this system
	systems := buildSystems(t, tc, scs)
	err := Run(tracegen.MustNew(tc), systems, Options{Workers: 2, WorkSteal: true, BatchSize: 64})
	if err == nil {
		t.Fatal("sweep with an undersized system did not error")
	}
	if want := "sweep: system 1:"; !strings.HasPrefix(err.Error(), want) {
		t.Errorf("error %q does not identify system 1", err)
	}
	if systems[0].Refs() != 10_000 || systems[2].Refs() != 10_000 {
		t.Errorf("healthy systems did not finish: %d and %d refs",
			systems[0].Refs(), systems[2].Refs())
	}
}

// TestParallelFirstErrorWins proves Parallel's error is deterministic: the
// lowest-indexed failing job is reported no matter how workers interleave,
// and every job still runs.
func TestParallelFirstErrorWins(t *testing.T) {
	const n = 64
	var ran [n]atomic.Bool
	err := Parallel(n, 8, func(i int) error {
		ran[i].Store(true)
		if i == 7 || i == 11 || i == 50 {
			return fmt.Errorf("job %d boom", i)
		}
		return nil
	})
	if err == nil || err.Error() != "sweep: job 7: job 7 boom" {
		t.Fatalf("err = %v, want the lowest-indexed failure (job 7)", err)
	}
	for i := range ran {
		if !ran[i].Load() {
			t.Errorf("job %d never ran after a failure elsewhere", i)
		}
	}
}

// TestParallelDrains proves all workers exit after Parallel returns (no
// goroutine leak) and that the job count is exact.
func TestParallelDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	var count atomic.Int64
	if err := Parallel(100, 5, func(i int) error {
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Errorf("ran %d jobs, want 100", count.Load())
	}
	// Workers are joined by wg.Wait before Parallel returns, so the
	// goroutine count settles immediately; a small retry loop absorbs
	// unrelated runtime goroutines winding down.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestParallelZeroJobs covers the degenerate sizes.
func TestParallelZeroJobs(t *testing.T) {
	if err := Parallel(0, 4, func(int) error { return fmt.Errorf("ran") }); err != nil {
		t.Fatalf("zero jobs: %v", err)
	}
	if err := Parallel(3, 0, func(int) error { return nil }); err != nil {
		t.Fatalf("default workers: %v", err)
	}
}
