// Package sweep is the single-pass multi-configuration simulation engine.
//
// The paper's evaluation is a sweep: every table runs the same trace through
// many machine configurations. Generating the workload once and fanning the
// reference stream out to N independent systems removes the dominant
// regenerate-per-configuration cost (trace synthesis is roughly a third of a
// run) and lets the configurations simulate concurrently — they are fully
// independent given the trace, so after the broadcast this is embarrassingly
// parallel, the classic trace-driven-simulator structure of DineroIV and
// gem5 trace replay.
//
// The engine reads fixed-size []trace.Ref batches from the shared reader and
// hands each batch to every system through a per-system buffered channel.
// Batches are reference-counted and recycled through a free pool, so the
// steady state allocates nothing. Each system consumes its channel in order
// from a single goroutine, so it observes exactly the reference stream a
// sequential run would: per-system results are bit-identical to running that
// configuration alone (see TestSweepMatchesSequential).
package sweep

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/system"
	"repro/internal/trace"
)

// Options tunes the engine. The zero value is ready to use.
type Options struct {
	// BatchSize is the number of trace records per broadcast batch
	// (default 4096). Larger batches amortize channel operations; smaller
	// ones keep the batch cache-resident.
	BatchSize int
	// QueueDepth is the number of batches that may queue per system before
	// the broadcaster blocks (default 4). It bounds how far a fast system
	// can run ahead of the slowest one.
	QueueDepth int
}

func (o *Options) applyDefaults() {
	if o.BatchSize <= 0 {
		o.BatchSize = 4096
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4
	}
}

// Parallel runs jobs 0..n-1 on at most workers goroutines (GOMAXPROCS when
// workers <= 0) and waits for all of them. Every job runs even after a
// failure; the error of the lowest-indexed failing job is returned, so the
// result is deterministic regardless of scheduling. The sweep engine's
// fan-out covers many systems on one trace; Parallel is the complementary
// primitive — independent jobs, each with its own trace — used by the
// time-sharded runner in internal/checkpoint.
func Parallel(n, workers int, job func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = job(i)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("sweep: job %d: %w", i, err)
		}
	}
	return nil
}

// batch is one broadcast unit: a shared read-only slice of records and the
// count of systems still consuming it.
type batch struct {
	refs []trace.Ref
	left atomic.Int32
}

// Run reads r once and drives every system with the full stream, each in its
// own goroutine. When the stream ends every system's write buffers are
// drained, as System.Run would. The first error from the reader or from any
// system aborts the sweep and is returned (system errors are annotated with
// the system's index); the remaining systems still consume the stream
// already broadcast, so Run never deadlocks on error.
func Run(r trace.Reader, systems []*system.System, opts Options) error {
	opts.applyDefaults()
	if len(systems) == 0 {
		return nil
	}
	if len(systems) == 1 {
		// No fan-out needed; run in place on the caller's goroutine.
		return systems[0].Run(r)
	}

	// Free pool: QueueDepth in flight per system plus one being filled and
	// one being consumed.
	nBatches := opts.QueueDepth + 2
	free := make(chan *batch, nBatches)
	for i := 0; i < nBatches; i++ {
		free <- &batch{refs: make([]trace.Ref, opts.BatchSize)}
	}

	chans := make([]chan *batch, len(systems))
	for i := range chans {
		chans[i] = make(chan *batch, opts.QueueDepth)
	}

	errs := make([]error, len(systems))
	var wg sync.WaitGroup
	for i, s := range systems {
		wg.Add(1)
		go func(i int, s *system.System, in <-chan *batch) {
			defer wg.Done()
			for b := range in {
				if errs[i] == nil {
					errs[i] = s.ApplyBatch(b.refs)
				}
				// Always release, even after an error, so the pool keeps
				// cycling and the broadcaster cannot block forever.
				if b.left.Add(-1) == 0 {
					free <- b
				}
			}
			if errs[i] == nil {
				s.Drain()
			}
		}(i, s, chans[i])
	}

	var readErr error
	for {
		b := <-free
		b.refs = b.refs[:cap(b.refs)]
		n, err := trace.FillBatch(r, b.refs)
		if n > 0 {
			b.refs = b.refs[:n]
			b.left.Store(int32(len(systems)))
			for _, ch := range chans {
				ch <- b
			}
		} else {
			free <- b
		}
		if err != nil {
			if !errors.Is(err, io.EOF) {
				readErr = err
			}
			break
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()

	if readErr != nil {
		return readErr
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("sweep: system %d: %w", i, err)
		}
	}
	return nil
}
