// Package sweep is the single-pass multi-configuration simulation engine.
//
// The paper's evaluation is a sweep: every table runs the same trace through
// many machine configurations. Generating the workload once and fanning the
// reference stream out to N independent systems removes the dominant
// regenerate-per-configuration cost (trace synthesis is roughly a third of a
// run) and lets the configurations simulate concurrently — they are fully
// independent given the trace, so after the broadcast this is embarrassingly
// parallel, the classic trace-driven-simulator structure of DineroIV and
// gem5 trace replay.
//
// The engine picks an execution shape from the worker budget (GOMAXPROCS by
// default) rather than always spawning one goroutine per system:
//
//   - One worker: a chunked system-major loop on the caller's goroutine. A
//     large shared batch is read once and applied to every system in turn,
//     so each system streams through tens of thousands of references while
//     its tag stores stay cache-resident, instead of all N tag stores
//     rotating through the last-level cache every small batch. No
//     goroutines, channels or atomics at all.
//   - More workers than one, static mode: systems are partitioned into one
//     contiguous group per worker. Each batch is reference-counted by the
//     number of groups (not systems) and delivered once per group, cutting
//     the per-batch channel operations and refcount cache-line traffic from
//     N to W.
//   - Work-stealing mode (Options.WorkSteal): each system keeps its own
//     batch queue and idle workers claim whichever system has pending work,
//     via a lock-free pending-counter mailbox. Use it when per-system
//     runtimes differ a lot (heterogeneous configurations), where a static
//     partition would leave workers idle behind the slowest group.
//
// Batches are reference-counted and recycled through a free pool, so the
// steady state allocates nothing. In every mode each system consumes its
// batches in stream order from one worker at a time, so it observes exactly
// the reference stream a sequential run would: per-system results are
// bit-identical to running that configuration alone, regardless of mode or
// worker count (see TestSweepMatchesSequential and TestSweepModesIdentical).
package sweep

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/system"
	"repro/internal/trace"
)

// Options tunes the engine. The zero value is ready to use: batch size,
// queue depth and worker count adapt to GOMAXPROCS and the system count.
type Options struct {
	// BatchSize is the number of trace records per broadcast batch. When 0
	// it adapts: 4096 records as the base, scaled up (to at most 64k) with
	// the number of systems each worker owns, so that a worker streams a
	// longer run of references through one system before touching the next
	// system's tag stores — the fewer the workers, the more the batch size
	// matters for last-level-cache locality.
	BatchSize int
	// QueueDepth is the number of batches that may queue per consumer
	// before the broadcaster blocks (default 4). It bounds how far a fast
	// consumer can run ahead of the slowest one.
	QueueDepth int
	// Workers bounds the consumer goroutines. 0 means min(GOMAXPROCS,
	// number of systems). 1 selects the sequential chunked mode on the
	// caller's goroutine.
	Workers int
	// WorkSteal selects dynamic system-to-worker assignment instead of a
	// static partition. Only meaningful with more than one worker and more
	// systems than workers.
	WorkSteal bool
}

// maxBatchSize caps the adaptive batch size (64k records ≈ 1.5 MB).
const maxBatchSize = 1 << 16

// resolve fills in the adaptive defaults for n systems and returns the
// worker count to use.
func (o *Options) resolve(n int) (workers int) {
	workers = o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 4096
		// Scale the batch with the systems-per-worker ratio: a worker that
		// owns k systems touches k tag stores per batch, so longer batches
		// amortize the cache refills across proportionally more references.
		if workers > 0 {
			k := (n + workers - 1) / workers
			for s := o.BatchSize; k > 1 && s < maxBatchSize; k /= 2 {
				s *= 2
				o.BatchSize = s
			}
		}
	}
	return workers
}

// Parallel runs jobs 0..n-1 on at most workers goroutines (GOMAXPROCS when
// workers <= 0) and waits for all of them. Every job runs even after a
// failure; the error of the lowest-indexed failing job is returned, so the
// result is deterministic regardless of scheduling. The sweep engine's
// fan-out covers many systems on one trace; Parallel is the complementary
// primitive — independent jobs, each with its own trace — used by the
// time-sharded runner in internal/checkpoint and the autotuner's cell
// scheduler.
func Parallel(n, workers int, job func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = job(i)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("sweep: job %d: %w", i, err)
		}
	}
	return nil
}

// batch is one broadcast unit: a shared read-only slice of records and the
// count of consumers still holding it.
type batch struct {
	refs []trace.Ref
	left atomic.Int32
}

// Run reads r once and drives every system with the full stream. When the
// stream ends every system's write buffers are drained, as System.Run
// would. The first error from the reader or from any system aborts the
// sweep and is returned (system errors are annotated with the system's
// index; the lowest-indexed system error wins, deterministically); the
// remaining systems still consume the stream already broadcast, so Run
// never deadlocks on error.
func Run(r trace.Reader, systems []*system.System, opts Options) error {
	if len(systems) == 0 {
		return nil
	}
	if len(systems) == 1 {
		// No fan-out needed; run in place on the caller's goroutine.
		return systems[0].Run(r)
	}
	workers := opts.resolve(len(systems))
	errs := make([]error, len(systems))
	var readErr error
	switch {
	case workers == 1:
		readErr = runSequential(r, systems, opts, errs)
	case opts.WorkSteal && workers < len(systems):
		readErr = runStealing(r, systems, opts, workers, errs)
	default:
		readErr = runGrouped(r, systems, opts, workers, errs)
	}
	if readErr != nil {
		return readErr
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("sweep: system %d: %w", i, err)
		}
	}
	return nil
}

// runSequential is the one-worker mode: system-major chunked application on
// the caller's goroutine. One shared buffer, no synchronization.
func runSequential(r trace.Reader, systems []*system.System, opts Options, errs []error) error {
	buf := make([]trace.Ref, opts.BatchSize)
	for {
		n, err := trace.FillBatch(r, buf[:cap(buf)])
		if n > 0 {
			for i, s := range systems {
				if errs[i] == nil {
					errs[i] = s.ApplyBatch(buf[:n])
				}
			}
		}
		if err != nil {
			if !errors.Is(err, io.EOF) {
				return err
			}
			break
		}
	}
	for i, s := range systems {
		if errs[i] == nil {
			s.Drain()
		}
	}
	return nil
}

// newPool builds the batch free pool: capacity for every consumer queue to
// be full plus one batch being filled and one being consumed.
func newPool(consumers int, opts Options) chan *batch {
	nBatches := consumers*opts.QueueDepth + 2
	// Bound the pool's memory footprint (~1M in-flight records) as batches
	// grow: backpressure matters more than queue depth at large batches.
	if limit := 1 << 20 / opts.BatchSize; nBatches > limit && limit >= 3 {
		nBatches = limit
	}
	if nBatches > 64 {
		nBatches = 64
	}
	free := make(chan *batch, nBatches)
	for i := 0; i < nBatches; i++ {
		free <- &batch{refs: make([]trace.Ref, opts.BatchSize)}
	}
	return free
}

// broadcast reads batches from r and delivers each to every channel in
// chans, recycling through free. deliver's refcount is len(chans).
func broadcast(r trace.Reader, chans []chan *batch, free chan *batch) error {
	var readErr error
	for {
		b := <-free
		b.refs = b.refs[:cap(b.refs)]
		n, err := trace.FillBatch(r, b.refs)
		if n > 0 {
			b.refs = b.refs[:n]
			b.left.Store(int32(len(chans)))
			for _, ch := range chans {
				ch <- b
			}
		} else {
			free <- b
		}
		if err != nil {
			if !errors.Is(err, io.EOF) {
				readErr = err
			}
			break
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	return readErr
}

// runGrouped is the static multi-worker mode: systems are partitioned into
// one contiguous group per worker, and each batch is delivered once per
// group. The group applies it to its systems in system order.
func runGrouped(r trace.Reader, systems []*system.System, opts Options, workers int, errs []error) error {
	free := newPool(workers, opts)
	chans := make([]chan *batch, workers)
	for i := range chans {
		chans[i] = make(chan *batch, opts.QueueDepth)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Contiguous partition: group w owns systems [lo, hi).
		lo := w * len(systems) / workers
		hi := (w + 1) * len(systems) / workers
		wg.Add(1)
		go func(group []*system.System, gerrs []error, in <-chan *batch) {
			defer wg.Done()
			for b := range in {
				for i, s := range group {
					if gerrs[i] == nil {
						gerrs[i] = s.ApplyBatch(b.refs)
					}
				}
				// Always release, even after an error, so the pool keeps
				// cycling and the broadcaster cannot block forever.
				if b.left.Add(-1) == 0 {
					free <- b
				}
			}
			for i, s := range group {
				if gerrs[i] == nil {
					s.Drain()
				}
			}
		}(systems[lo:hi], errs[lo:hi], chans[w])
	}

	readErr := broadcast(r, chans, free)
	wg.Wait()
	return readErr
}

// stealSys is one system's work-stealing state: its private batch queue and
// the pending-counter mailbox that guarantees exactly one worker processes
// the system at a time while never losing a wakeup.
type stealSys struct {
	sys     *system.System
	idx     int
	in      chan *batch
	pending atomic.Int64
	done    bool
}

// runStealing is the dynamic multi-worker mode. The broadcaster still
// delivers every batch to every system's queue (order must be preserved
// per system), but systems are claimed by whichever worker is free: a
// system becomes runnable when its pending count rises from zero, and the
// worker that drains it re-enqueues it only if more work arrived meanwhile.
// Heterogeneous systems therefore never serialize behind a static partition.
func runStealing(r trace.Reader, systems []*system.System, opts Options, workers int, errs []error) error {
	free := newPool(workers, opts)
	states := make([]*stealSys, len(systems))
	chans := make([]chan *batch, len(systems))
	for i, s := range systems {
		// One extra slot holds the nil end-of-stream sentinel, which is not
		// pool-limited.
		states[i] = &stealSys{sys: s, idx: i, in: make(chan *batch, opts.QueueDepth+1)}
		chans[i] = states[i].in
	}
	runnable := make(chan *stealSys, len(systems))
	post := func(ss *stealSys, b *batch) {
		ss.in <- b
		if ss.pending.Add(1) == 1 {
			runnable <- ss
		}
	}

	var live atomic.Int64
	live.Store(int64(len(systems)))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ss := range runnable {
				// Claim: only this worker touches ss until re-enqueue, so
				// per-system batch order is preserved.
				n := ss.pending.Load()
				for i := int64(0); i < n; i++ {
					b := <-ss.in
					if b == nil {
						// End of stream for this system.
						if errs[ss.idx] == nil {
							ss.sys.Drain()
						}
						ss.done = true
						if live.Add(-1) == 0 {
							close(runnable)
						}
						continue
					}
					if errs[ss.idx] == nil {
						errs[ss.idx] = ss.sys.ApplyBatch(b.refs)
					}
					if b.left.Add(-1) == 0 {
						free <- b
					}
				}
				if ss.pending.Add(-n) > 0 && !ss.done {
					runnable <- ss
				}
			}
		}()
	}

	var readErr error
	for {
		b := <-free
		b.refs = b.refs[:cap(b.refs)]
		n, err := trace.FillBatch(r, b.refs)
		if n > 0 {
			b.refs = b.refs[:n]
			b.left.Store(int32(len(states)))
			for _, ss := range states {
				post(ss, b)
			}
		} else {
			free <- b
		}
		if err != nil {
			if !errors.Is(err, io.EOF) {
				readErr = err
			}
			break
		}
	}
	// End-of-stream sentinels: delivered through the same mailbox so they
	// are processed after every queued batch, in order.
	for _, ss := range states {
		post(ss, nil)
	}
	wg.Wait()
	return readErr
}
