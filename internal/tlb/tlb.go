// Package tlb implements the translation lookaside buffer that the paper
// places at the second level of the V-R hierarchy (or in front of the L1 in
// the R-R baseline). It caches (pid, virtual page) -> physical frame
// mappings with LRU replacement and counts hits and misses.
//
// The TLB is a performance structure only: on a miss the MMU's page tables
// are always consulted, so translation never fails. Misses are counted so
// the access-time model can charge for them.
package tlb

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/vm"
)

// entry is the TLB line payload: the cached frame and the owning process
// (kept for per-PID flushes; the PID is also folded into the tag so that
// different processes' translations of the same page number can coexist).
type entry struct {
	pid   addr.PID
	frame uint64
}

// Stats counts TLB activity.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Flushes    uint64 // full invalidations
	PIDFlushes uint64 // per-process invalidations
}

// Lookups returns hits + misses.
func (s Stats) Lookups() uint64 { return s.Hits + s.Misses }

// HitRatio returns hits / lookups, or 0 when idle.
func (s Stats) HitRatio() float64 {
	if s.Lookups() == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups())
}

// TLB is a set-associative translation buffer backed by an MMU.
type TLB struct {
	mmu   *vm.MMU
	tags  *cache.Cache[entry]
	geom  cache.Geometry
	stats Stats
}

// New builds a TLB with the given number of entries and associativity,
// backed by mmu for fills. Entries must be a power of two and a multiple of
// assoc.
func New(mmu *vm.MMU, entries, assoc int) (*TLB, error) {
	if entries < 1 {
		return nil, fmt.Errorf("tlb: entries %d < 1", entries)
	}
	// Reuse cache geometry with a 1-byte "block": Size=entries, Block=1.
	g := cache.Geometry{Size: uint64(entries), Block: 1, Assoc: assoc}
	tags, err := cache.New[entry](g, cache.LRU, 0)
	if err != nil {
		return nil, fmt.Errorf("tlb: %w", err)
	}
	return &TLB{mmu: mmu, tags: tags, geom: g}, nil
}

// MustNew is New but panics on error.
func MustNew(mmu *vm.MMU, entries, assoc int) *TLB {
	t, err := New(mmu, entries, assoc)
	if err != nil {
		panic(err)
	}
	return t
}

// Entries returns the TLB's capacity.
func (t *TLB) Entries() int { return int(t.geom.Size) }

// Stats returns a copy of the TLB's counters.
func (t *TLB) Stats() Stats { return t.stats }

// Translate returns the physical address for (pid, va), filling from the
// MMU on a miss (and demand-allocating the page if it was never touched).
// hit reports whether the translation was already cached.
func (t *TLB) Translate(pid addr.PID, va addr.VAddr) (pa addr.PAddr, hit bool) {
	pg := t.mmu.PageGeom()
	vpage := pg.VPage(va)
	set, locTag := t.tags.Locate(vpage)
	tag := locTag<<16 | uint64(pid)
	if w, ok := t.tags.Probe(set, tag); ok {
		e := t.tags.Line(set, w)
		t.tags.Touch(set, w)
		t.stats.Hits++
		return pg.Translate(va, e.frame), true
	}
	t.stats.Misses++
	pa = t.mmu.Translate(pid, va)
	w, _ := t.tags.Victim(set, nil)
	*t.tags.Install(set, w, tag) = entry{pid: pid, frame: pg.PFrame(pa)}
	return pa, false
}

// Flush invalidates every entry (e.g. on a simulated TLB shootdown).
func (t *TLB) Flush() {
	t.tags.InvalidateAll()
	t.stats.Flushes++
}

// FlushPID invalidates all entries belonging to pid.
func (t *TLB) FlushPID(pid addr.PID) {
	t.tags.ForEachValid(func(set, w int) {
		if t.tags.Line(set, w).pid == pid {
			t.tags.Invalidate(set, w)
		}
	})
	t.stats.PIDFlushes++
}

// Resident returns the number of valid entries, for tests.
func (t *TLB) Resident() int { return t.tags.CountValid() }

// ForEachResident visits every cached translation in (set, way) order —
// the audit layer re-verifies them against the page tables. The virtual
// page number is reconstructed from the stored tag (the PID occupies the
// tag's low 16 bits, see Translate).
func (t *TLB) ForEachResident(fn func(pid addr.PID, vpage, frame uint64)) {
	t.tags.ForEachValid(func(set, w int) {
		e := t.tags.Line(set, w)
		vpage := t.tags.BlockAddr(set, t.tags.TagAt(set, w)>>16)
		fn(e.pid, vpage, e.frame)
	})
}

// EntryState is one TLB entry's serializable payload (checkpoint support;
// the internal payload type stays unexported).
type EntryState struct {
	PID   addr.PID
	Frame uint64
}

// ExportState captures the tag store and counters.
func (t *TLB) ExportState() (cache.State[EntryState], Stats) {
	in := t.tags.ExportState()
	out := cache.State[EntryState]{Clock: in.Clock, Draws: in.Draws, Ways: make([]cache.Entry[EntryState], len(in.Ways))}
	for i, e := range in.Ways {
		out.Ways[i] = cache.Entry[EntryState]{
			Tag: e.Tag, Valid: e.Valid, Stamp: e.Stamp,
			Line: EntryState{PID: e.Line.pid, Frame: e.Line.frame},
		}
	}
	return out, t.stats
}

// RestoreState replaces the tag store's contents and counters.
func (t *TLB) RestoreState(s cache.State[EntryState], st Stats) error {
	in := cache.State[entry]{Clock: s.Clock, Draws: s.Draws, Ways: make([]cache.Entry[entry], len(s.Ways))}
	for i, e := range s.Ways {
		in.Ways[i] = cache.Entry[entry]{
			Tag: e.Tag, Valid: e.Valid, Stamp: e.Stamp,
			Line: entry{pid: e.Line.PID, frame: e.Line.Frame},
		}
	}
	if err := t.tags.RestoreState(in); err != nil {
		return fmt.Errorf("tlb: %w", err)
	}
	t.stats = st
	return nil
}
