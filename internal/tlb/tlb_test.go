package tlb

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/vm"
)

func newTLB(t *testing.T, entries, assoc int) (*TLB, *vm.MMU) {
	t.Helper()
	m := vm.MustNew(4096)
	tb, err := New(m, entries, assoc)
	if err != nil {
		t.Fatal(err)
	}
	return tb, m
}

func TestMissThenHit(t *testing.T) {
	tb, m := newTLB(t, 64, 2)
	pa1, hit := tb.Translate(1, 0x1234)
	if hit {
		t.Error("first translation should miss")
	}
	pa2, hit := tb.Translate(1, 0x1238)
	if !hit {
		t.Error("second translation of same page should hit")
	}
	g := m.PageGeom()
	if g.PFrame(pa1) != g.PFrame(pa2) {
		t.Error("same page translated to different frames")
	}
	s := tb.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTranslateMatchesMMU(t *testing.T) {
	tb, m := newTLB(t, 64, 2)
	want := m.Translate(3, 0x9ABC)
	got, _ := tb.Translate(3, 0x9ABC)
	if got != want {
		t.Errorf("TLB translation %#x != MMU %#x", uint64(got), uint64(want))
	}
}

func TestPIDsDoNotAlias(t *testing.T) {
	tb, m := newTLB(t, 64, 2)
	pa1, _ := tb.Translate(1, 0x5000)
	pa2, _ := tb.Translate(2, 0x5000)
	if pa1 == pa2 {
		t.Fatal("different processes aliased through the TLB")
	}
	// Both should now hit and keep returning distinct frames.
	pb1, hit1 := tb.Translate(1, 0x5000)
	pb2, hit2 := tb.Translate(2, 0x5000)
	if !hit1 || !hit2 {
		t.Error("expected both PIDs resident")
	}
	if pb1 != pa1 || pb2 != pa2 {
		t.Error("cached translations drifted")
	}
	_ = m
}

func TestCapacityEviction(t *testing.T) {
	tb, _ := newTLB(t, 4, 1)
	// 4 direct-mapped entries: pages 0..3 fill it; page 4 conflicts with 0.
	for p := uint64(0); p < 5; p++ {
		tb.Translate(1, addr.VAddr(p*4096))
	}
	if _, hit := tb.Translate(1, 4*4096); !hit {
		t.Error("resident entry missed")
	}
	if _, hit := tb.Translate(1, 0); hit {
		t.Error("evicted entry still hit")
	}
}

func TestLRUWithinSet(t *testing.T) {
	tb, _ := newTLB(t, 2, 2) // one set, two ways
	tb.Translate(1, 0x0000)  // page 0
	tb.Translate(1, 0x1000)  // page 1
	tb.Translate(1, 0x0000)  // touch page 0
	tb.Translate(1, 0x2000)  // page 2 evicts LRU (page 1)
	if _, hit := tb.Translate(1, 0x0000); !hit {
		t.Error("recently used page evicted")
	}
	if _, hit := tb.Translate(1, 0x1000); hit {
		t.Error("LRU page not evicted")
	}
}

func TestFlush(t *testing.T) {
	tb, _ := newTLB(t, 16, 2)
	tb.Translate(1, 0x1000)
	tb.Translate(2, 0x2000)
	if tb.Resident() != 2 {
		t.Fatalf("Resident = %d, want 2", tb.Resident())
	}
	tb.Flush()
	if tb.Resident() != 0 {
		t.Error("Flush left entries")
	}
	if tb.Stats().Flushes != 1 {
		t.Error("flush not counted")
	}
	if _, hit := tb.Translate(1, 0x1000); hit {
		t.Error("hit after flush")
	}
}

func TestFlushPID(t *testing.T) {
	tb, _ := newTLB(t, 16, 2)
	tb.Translate(1, 0x1000)
	tb.Translate(1, 0x2000)
	tb.Translate(2, 0x3000)
	tb.FlushPID(1)
	if _, hit := tb.Translate(1, 0x1000); hit {
		t.Error("pid 1 entry survived FlushPID(1)")
	}
	if _, hit := tb.Translate(2, 0x3000); !hit {
		t.Error("pid 2 entry lost by FlushPID(1)")
	}
	if tb.Stats().PIDFlushes != 1 {
		t.Error("pid flush not counted")
	}
}

func TestStatsRatio(t *testing.T) {
	tb, _ := newTLB(t, 16, 2)
	if tb.Stats().HitRatio() != 0 {
		t.Error("idle ratio should be 0")
	}
	tb.Translate(1, 0x1000)
	tb.Translate(1, 0x1000)
	tb.Translate(1, 0x1000)
	tb.Translate(1, 0x1000)
	if got := tb.Stats().HitRatio(); got != 0.75 {
		t.Errorf("HitRatio = %v, want 0.75", got)
	}
	if tb.Stats().Lookups() != 4 {
		t.Errorf("Lookups = %d", tb.Stats().Lookups())
	}
}

func TestNewErrors(t *testing.T) {
	m := vm.MustNew(4096)
	if _, err := New(m, 0, 1); err == nil {
		t.Error("0 entries accepted")
	}
	if _, err := New(m, 7, 1); err == nil {
		t.Error("non-power-of-two entries accepted")
	}
	if _, err := New(m, 8, 16); err == nil {
		t.Error("assoc > entries accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(vm.MustNew(4096), 0, 1)
}

func TestEntries(t *testing.T) {
	tb, _ := newTLB(t, 128, 4)
	if tb.Entries() != 128 {
		t.Errorf("Entries = %d", tb.Entries())
	}
}
