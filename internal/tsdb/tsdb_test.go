package tsdb

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/probe"
)

// sampleAt builds a deterministic, distinguishable sample for window seq.
func sampleAt(seq uint64) Sample {
	const every = 5000
	return Sample{
		Seq:       seq,
		StartRef:  seq*every + 1,
		EndRef:    (seq + 1) * every,
		L1Hits:    4000 + seq%7,
		L1Misses:  1000 - seq%7,
		L2Hits:    800 + seq%5,
		L2Misses:  200 - seq%5,
		TLBMisses: 40 + seq%3, Synonyms: seq % 11, WriteBacks: 120 + seq%13,
		CohToL1: seq % 2, Shielded: seq % 4, BusTxns: 1100 + seq%17,
		Cycles: 21000 + 31*seq,
	}
}

func appendSamples(t *testing.T, db *DB, job string, from, to uint64) {
	t.Helper()
	app, err := db.Appender(job)
	if err != nil {
		t.Fatal(err)
	}
	for seq := from; seq < to; seq++ {
		if err := app.Append(sampleAt(seq)); err != nil {
			t.Fatalf("Append(%d): %v", seq, err)
		}
	}
	if err := app.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripAcrossReopen: everything appended comes back identical from
// a fresh DB instance reading only the on-disk blocks.
func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1300 // spans multiple blocks plus a partial tail
	appendSamples(t, db, "j000001", 0, n)
	want, err := db.Query("j000001", Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != n {
		t.Fatalf("in-memory query returned %d samples, want %d", len(want), n)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, err := db2.Query("j000001", Query{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("samples decoded from disk differ from the appended ones")
	}
	// Byte-identical through the JSON vocabulary the HTTP layer speaks.
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(got)
	if !bytes.Equal(wj, gj) {
		t.Fatal("JSON round trip differs")
	}
}

// TestAppendDedupOnResume: a reopened appender drops the replayed prefix
// (sequences at or below the last persisted one) and continues the series
// without gaps or duplicates.
func TestAppendDedupOnResume(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendSamples(t, db, "job", 0, 10)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	app, err := db2.Appender("job")
	if err != nil {
		t.Fatal(err)
	}
	if last, ok := app.LastSeq(); !ok || last != 9 {
		t.Fatalf("LastSeq = %d,%v, want 9,true", last, ok)
	}
	// The resumed job recomputes windows 5..9 (possibly with partial counts)
	// before producing new ones; marker values prove the originals win.
	for seq := uint64(5); seq < 14; seq++ {
		s := sampleAt(seq)
		s.L1Hits = 999999 // recomputed-partial marker
		if seq > 9 {
			s = sampleAt(seq) // fresh windows carry real counts
		}
		if err := app.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := db2.Query("job", Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 14 {
		t.Fatalf("series has %d samples, want 14", len(got))
	}
	for i, s := range got {
		if s.Seq != uint64(i) {
			t.Fatalf("sample %d has seq %d — gap or duplicate", i, s.Seq)
		}
		if s.L1Hits == 999999 {
			t.Fatalf("replayed sample %d replaced the persisted original", i)
		}
	}
}

// TestTornFinalBlock: a daemon killed mid-write leaves a truncated final
// block; reopening keeps everything before it.
func TestTornFinalBlock(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendSamples(t, db, "job", 0, 700) // one full block + a 188-sample tail
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "job.ts")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Any truncation inside the 188-sample tail block drops that whole block
	// and keeps the full first block of 512.
	for _, cut := range []int{1, 7, 100} {
		if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		db2, err := Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := db2.Query("job", Query{})
		if err != nil {
			t.Fatalf("cut %d bytes: %v", cut, err)
		}
		if len(got) != blockLen {
			t.Fatalf("cut %d bytes: %d samples survive, want %d", cut, len(got), blockLen)
		}
		for i, s := range got {
			if !reflect.DeepEqual(s, sampleAt(uint64(i))) {
				t.Fatalf("cut %d bytes: sample %d corrupted", cut, i)
			}
		}
		db2.Close()
	}
	// Garbage where the magic should be is an error, not silent data loss.
	if err := os.WriteFile(path, []byte("not a series file"), 0o644); err != nil {
		t.Fatal(err)
	}
	db3, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if _, err := db3.Query("job", Query{}); err == nil {
		t.Fatal("corrupt magic accepted")
	}
}

// TestRetentionBoundsSeries: the store never holds more than
// retention + slack samples, compaction keeps the newest, and the on-disk
// file shrinks with it.
func TestRetentionBoundsSeries(t *testing.T) {
	dir := t.TempDir()
	const retention = 100
	db, err := Open(dir, retention)
	if err != nil {
		t.Fatal(err)
	}
	const total = 1000
	appendSamples(t, db, "job", 0, total)
	got, err := db.Query("job", Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > retention+retention/4 {
		t.Fatalf("%d samples retained, cap is %d", len(got), retention+retention/4)
	}
	if newest := got[len(got)-1].Seq; newest != total-1 {
		t.Fatalf("newest seq %d, want %d", newest, total-1)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatal("retention left a gap")
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// A full never-compacted file would hold 1000 samples; the rewritten one
	// must be bounded by the retained count.
	fi, err := os.Stat(filepath.Join(dir, "job.ts"))
	if err != nil {
		t.Fatal(err)
	}
	if max := int64((retention + retention/4) * 8 * numCols); fi.Size() > max {
		t.Fatalf("series file is %d bytes after compaction, over the %d bound", fi.Size(), max)
	}

	// Reopening an over-retention file (e.g. the cap was lowered) compacts.
	db2, err := Open(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got2, err := db2.Query("job", Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 10 || got2[9].Seq != total-1 {
		t.Fatalf("reopen with lower cap kept %d samples ending at %d", len(got2), got2[len(got2)-1].Seq)
	}
}

// TestQueryBounds: FromSeq/ToSeq are inclusive, ToSeq 0 is open-ended.
func TestQueryBounds(t *testing.T) {
	db, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	appendSamples(t, db, "job", 0, 50)
	got, err := db.Query("job", Query{FromSeq: 10, ToSeq: 19})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0].Seq != 10 || got[9].Seq != 19 {
		t.Fatalf("range query returned seqs %d..%d (%d samples)", got[0].Seq, got[len(got)-1].Seq, len(got))
	}
	got, err = db.Query("job", Query{FromSeq: 45})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("open-ended query returned %d samples, want 5", len(got))
	}
	if _, err := db.Query("missing", Query{}); err == nil {
		t.Fatal("query of unknown job succeeded")
	}
}

// TestDownsampleDeterministic: downsampling preserves counter totals and
// span bounds, and is a pure function of (input, maxPoints).
func TestDownsampleDeterministic(t *testing.T) {
	var in []Sample
	for seq := uint64(0); seq < 97; seq++ {
		in = append(in, sampleAt(seq))
	}
	a := Downsample(append([]Sample(nil), in...), 10)
	b := Downsample(append([]Sample(nil), in...), 10)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("downsampling is not deterministic")
	}
	if len(a) != 10 {
		t.Fatalf("downsampled to %d points, want 10", len(a))
	}
	var wantHits, gotHits, wantCycles, gotCycles uint64
	for _, s := range in {
		wantHits += s.L1Hits
		wantCycles += s.Cycles
	}
	for _, s := range a {
		gotHits += s.L1Hits
		gotCycles += s.Cycles
	}
	if wantHits != gotHits || wantCycles != gotCycles {
		t.Fatal("downsampling lost counts")
	}
	if a[0].StartRef != in[0].StartRef || a[len(a)-1].EndRef != in[len(in)-1].EndRef {
		t.Fatal("downsampling lost the covered span")
	}
	for i := 1; i < len(a); i++ {
		if a[i].StartRef != a[i-1].EndRef+1 {
			t.Fatal("downsampled buckets do not tile the ref stream")
		}
	}
	// Fewer samples than the cap pass through untouched.
	if out := Downsample(in, len(in)+5); !reflect.DeepEqual(out, in) {
		t.Fatal("under-cap input was modified")
	}
}

// TestMetricsValues: every advertised metric evaluates, and the derived
// ratios agree with the probe's own windowed arithmetic.
func TestMetricsValues(t *testing.T) {
	w := probe.WindowMetrics{
		Seq: 3, StartRef: 15001, FirstRef: 15001, LastRef: 20000,
		L1Hits: 4500, L1Misses: 500, L2Hits: 400, L2Misses: 100,
		Synonyms: 25, BusTxns: 600, Cycles: 21000,
	}
	s := FromWindow(w)
	checks := []struct {
		metric string
		want   float64
	}{
		{"l1ratio", w.L1Ratio()},
		{"l2ratio", w.L2Ratio()},
		{"synrate", w.SynonymRate()},
		{"busocc", w.BusOccupancy()},
		{"tacc", w.Tacc()},
		{"refs", 5000},
		{"cycles", 21000},
	}
	for _, c := range checks {
		got, err := s.Value(c.metric)
		if err != nil {
			t.Fatalf("Value(%s): %v", c.metric, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Value(%s) = %g, want %g", c.metric, got, c.want)
		}
	}
	for _, m := range Metrics() {
		if _, err := s.Value(m); err != nil {
			t.Errorf("advertised metric %s does not evaluate: %v", m, err)
		}
	}
	if _, err := s.Value("bogus"); err == nil {
		t.Error("unknown metric accepted")
	}
	if s.Refs() != 5000 {
		t.Errorf("Refs = %d, want 5000", s.Refs())
	}
}

// TestWriteCSV: fixed header, one row per sample, raw counters.
func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Sample{sampleAt(0), sampleAt(1)}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "seq,startRef,endRef,l1Hits") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,1,5000,4000,") {
		t.Errorf("row 0 = %q", lines[1])
	}
}

// TestJobsAndRemove: the store lists every series it knows and forgets
// removed ones.
func TestJobsAndRemove(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	appendSamples(t, db, "j000002", 0, 3)
	appendSamples(t, db, "j000001", 0, 3)
	jobs, err := db.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, []string{"j000001", "j000002"}) {
		t.Fatalf("Jobs = %v", jobs)
	}
	if err := db.Remove("j000001"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("j000001", Query{}); err == nil {
		t.Fatal("removed series still queryable")
	}
	if jobs, _ = db.Jobs(); !reflect.DeepEqual(jobs, []string{"j000002"}) {
		t.Fatalf("Jobs after remove = %v", jobs)
	}
	if err := db.Remove("never-existed"); err != nil {
		t.Fatalf("removing an unknown series: %v", err)
	}
}

// TestAppendHotPathAllocationFree: once the series reaches steady state,
// recording a window allocates nothing — the appender sits on the job
// runner's OnClose path next to the simulation hot loop. Warming past one
// compaction pins the sample slice's capacity at its steady-state size, so
// the measurement cannot land on a slice-growth boundary.
func TestAppendHotPathAllocationFree(t *testing.T) {
	const retention = 1024
	db, err := Open(t.TempDir(), retention)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	app, err := db.Appender("job")
	if err != nil {
		t.Fatal(err)
	}
	seq := uint64(0)
	for ; seq <= retention+retention/4; seq++ { // last append triggers a compact
		if err := app.Append(sampleAt(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Post-compact the series holds `retention` samples with capacity for
	// retention+slack; the ~201 measured appends stay under both the next
	// compaction point and the flush boundary.
	if n := testing.AllocsPerRun(200, func() {
		if err := app.Append(sampleAt(seq)); err != nil {
			t.Fatal(err)
		}
		seq++
	}); n != 0 {
		t.Fatalf("warm append allocates %v times per sample, want 0", n)
	}
}

// TestCodecBlockRoundTrip exercises the column codec directly, including
// values that stress the zigzag-delta encoding (large jumps both ways).
func TestCodecBlockRoundTrip(t *testing.T) {
	samples := []Sample{
		{},
		{Seq: 1, StartRef: math.MaxUint64 / 2, EndRef: 1, Cycles: math.MaxUint64},
		{Seq: 2, L1Hits: 1},
		sampleAt(3),
	}
	enc := append([]byte(nil), seriesMagic...)
	enc = encodeBlock(enc, samples)
	got, err := decodeAll(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, samples) {
		t.Fatalf("codec round trip:\n got %+v\nwant %+v", got, samples)
	}
}

func BenchmarkAppend(b *testing.B) {
	db, err := Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	app, err := db.Appender("job")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := app.Append(sampleAt(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
