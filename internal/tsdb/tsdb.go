// Package tsdb is a compact append-only time-series store for per-window
// simulation metrics. The job server records every closed progress window
// (probe.WindowMetrics, plus the cycle engine's per-window charge on timed
// runs) as one Sample keyed by job ID and absolute window sequence, so the
// phase behavior of a running fleet survives past the moment each window
// closes and stays queryable over HTTP — downsampled sparklines for the
// live dashboard, JSON or CSV dumps for offline analysis.
//
// Layout: one file per job under the store directory, a short magic header
// followed by self-delimiting blocks. Each block is columnar — every field
// of the block's samples stored contiguously, zigzag-delta varint encoded —
// which compresses the near-constant columns (sequence numbers advance by
// one, counters hover around their phase mean) far better than row-major
// JSON. A torn final block (daemon killed mid-write) is detected by its
// length prefix and dropped on open; everything before it stays readable.
//
// The store is bounded: each series keeps at most its retention cap of
// samples. When appends run past the cap (plus a compaction slack so the
// rewrite amortizes), the oldest samples fall off and the file is rewritten
// atomically. Appends are allocation-free in steady state — the job
// runner's probe OnClose callback sits next to the simulation hot loop and
// must not disturb its zero-allocation discipline.
package tsdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/probe"
)

// Sample is one persisted window: the absolute position of the window in
// the workload's reference stream plus the raw event counters. Counters
// are summable, so downsampling aggregates exactly rather than averaging
// derived ratios.
type Sample struct {
	Seq      uint64 `json:"seq"`      // absolute window sequence number
	StartRef uint64 `json:"startRef"` // 1-based, inclusive
	EndRef   uint64 `json:"endRef"`   // inclusive

	L1Hits     uint64 `json:"l1Hits"`
	L1Misses   uint64 `json:"l1Misses"`
	L2Hits     uint64 `json:"l2Hits"`
	L2Misses   uint64 `json:"l2Misses"`
	TLBMisses  uint64 `json:"tlbMisses"`
	Synonyms   uint64 `json:"synonyms"`
	WriteBacks uint64 `json:"writeBacks"`
	CohToL1    uint64 `json:"coherenceToL1"`
	Shielded   uint64 `json:"shielded"`
	BusTxns    uint64 `json:"busTxns"`
	Cycles     uint64 `json:"cycles"` // timed runs: cycle charge in the window
}

// numCols is the column count of the block format. Bump the file magic
// when it changes.
const numCols = 14

// col returns a pointer to column i, in the fixed file-format order.
func (s *Sample) col(i int) *uint64 {
	switch i {
	case 0:
		return &s.Seq
	case 1:
		return &s.StartRef
	case 2:
		return &s.EndRef
	case 3:
		return &s.L1Hits
	case 4:
		return &s.L1Misses
	case 5:
		return &s.L2Hits
	case 6:
		return &s.L2Misses
	case 7:
		return &s.TLBMisses
	case 8:
		return &s.Synonyms
	case 9:
		return &s.WriteBacks
	case 10:
		return &s.CohToL1
	case 11:
		return &s.Shielded
	case 12:
		return &s.BusTxns
	case 13:
		return &s.Cycles
	}
	panic("tsdb: column out of range")
}

// FromWindow converts a closed probe window to its persisted form, using
// the window's absolute position fields.
func FromWindow(w probe.WindowMetrics) Sample {
	return Sample{
		Seq: w.Seq, StartRef: w.StartRef, EndRef: w.LastRef,
		L1Hits: w.L1Hits, L1Misses: w.L1Misses,
		L2Hits: w.L2Hits, L2Misses: w.L2Misses,
		TLBMisses: w.TLBMisses, Synonyms: w.Synonyms,
		WriteBacks: w.WriteBacks, CohToL1: w.CohToL1,
		Shielded: w.Shielded, BusTxns: w.BusTxns, Cycles: w.Cycles,
	}
}

// Refs returns the number of references the sample spans.
func (s Sample) Refs() uint64 {
	if s.EndRef < s.StartRef {
		return 0
	}
	return s.EndRef - s.StartRef + 1
}

// Metrics lists every metric name Value accepts, in a stable order.
func Metrics() []string {
	return []string{
		"l1ratio", "l2ratio", "synrate", "busocc", "tacc",
		"l1Hits", "l1Misses", "l2Hits", "l2Misses", "tlbMisses",
		"synonyms", "writeBacks", "coherenceToL1", "shielded", "busTxns",
		"cycles", "refs",
	}
}

// Value derives one metric from the sample: a ratio/rate for the derived
// names, the raw counter for column names (their JSON spelling).
func (s Sample) Value(metric string) (float64, error) {
	ratio := func(h, m uint64) float64 {
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	}
	perRef := func(v uint64) float64 {
		if n := s.Refs(); n > 0 {
			return float64(v) / float64(n)
		}
		return 0
	}
	switch metric {
	case "l1ratio":
		return ratio(s.L1Hits, s.L1Misses), nil
	case "l2ratio":
		return ratio(s.L2Hits, s.L2Misses), nil
	case "synrate":
		return perRef(s.Synonyms), nil
	case "busocc":
		return perRef(s.BusTxns), nil
	case "tacc":
		return perRef(s.Cycles), nil
	case "l1Hits":
		return float64(s.L1Hits), nil
	case "l1Misses":
		return float64(s.L1Misses), nil
	case "l2Hits":
		return float64(s.L2Hits), nil
	case "l2Misses":
		return float64(s.L2Misses), nil
	case "tlbMisses":
		return float64(s.TLBMisses), nil
	case "synonyms":
		return float64(s.Synonyms), nil
	case "writeBacks":
		return float64(s.WriteBacks), nil
	case "coherenceToL1":
		return float64(s.CohToL1), nil
	case "shielded":
		return float64(s.Shielded), nil
	case "busTxns":
		return float64(s.BusTxns), nil
	case "cycles":
		return float64(s.Cycles), nil
	case "refs":
		return float64(s.Refs()), nil
	}
	return 0, fmt.Errorf("tsdb: unknown metric %q (one of %s)", metric, strings.Join(Metrics(), ", "))
}

// DefaultRetention is the per-series sample cap used when Open is given
// none: at the job server's default 20000-reference windows it spans a
// 1.3-billion-reference job, comfortably past the service's admission
// bound.
const DefaultRetention = 1 << 16

// blockLen is the sample count per encoded block: small enough that a
// daemon crash loses at most a few windows beyond the last explicit flush,
// large enough that the per-block length framing amortizes away.
const blockLen = 512

var seriesMagic = []byte("VRTSDB1\n")

// ErrNoSeries is returned by Query for a job the store has no samples for.
var ErrNoSeries = errors.New("tsdb: no series for job")

// DB is a directory of per-job series. All methods are safe for concurrent
// use; the expected shape is one appending job-runner goroutine per series
// with HTTP query goroutines reading everything.
type DB struct {
	dir       string
	retention int

	mu     sync.Mutex
	series map[string]*series
}

// Open creates (or reopens) a store rooted at dir. retention bounds each
// series' sample count (0 selects DefaultRetention). Existing series are
// loaded lazily, on first append or query.
func Open(dir string, retention int) (*DB, error) {
	if dir == "" {
		return nil, fmt.Errorf("tsdb: dir is required")
	}
	if retention <= 0 {
		retention = DefaultRetention
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DB{dir: dir, retention: retention, series: make(map[string]*series)}, nil
}

// Retention returns the per-series sample cap.
func (db *DB) Retention() int { return db.retention }

func (db *DB) path(job string) string { return filepath.Join(db.dir, job+".ts") }

// open returns the job's series, loading it from disk on first use. When
// create is false and neither memory nor disk has the series, it returns
// ErrNoSeries.
func (db *DB) open(job string, create bool) (*series, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if s, ok := db.series[job]; ok {
		return s, nil
	}
	s := &series{path: db.path(job), retention: db.retention}
	err := s.load()
	switch {
	case errors.Is(err, os.ErrNotExist):
		if !create {
			return nil, fmt.Errorf("%w %q", ErrNoSeries, job)
		}
	case err != nil:
		return nil, err
	}
	db.series[job] = s
	return s, nil
}

// Appender returns the job's writer, creating the series on first use. A
// reopened series resumes after its last persisted sequence number:
// appends at or below it are dropped, which is what keeps a restart-
// resumed job's series free of duplicate windows.
func (db *DB) Appender(job string) (*Appender, error) {
	s, err := db.open(job, true)
	if err != nil {
		return nil, err
	}
	return &Appender{s: s}, nil
}

// Query selects samples from one job's series. FromSeq/ToSeq bound the
// window sequence range inclusively (ToSeq 0 means "to the end"); when
// MaxPoints > 0 and more samples match, the result is downsampled
// deterministically (see Downsample).
type Query struct {
	FromSeq   uint64
	ToSeq     uint64
	MaxPoints int
}

// Query returns the matching samples, oldest first.
func (db *DB) Query(job string, q Query) ([]Sample, error) {
	s, err := db.open(job, false)
	if err != nil {
		return nil, err
	}
	return s.query(q), nil
}

// Jobs lists every series in the store (in-memory and on-disk), sorted.
func (db *DB) Jobs() ([]string, error) {
	entries, err := os.ReadDir(db.dir)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".ts"); ok {
			seen[name] = true
		}
	}
	db.mu.Lock()
	for name := range db.series {
		seen[name] = true
	}
	db.mu.Unlock()
	jobs := make([]string, 0, len(seen))
	for name := range seen {
		jobs = append(jobs, name)
	}
	sort.Strings(jobs)
	return jobs, nil
}

// Remove deletes a job's series from memory and disk.
func (db *DB) Remove(job string) error {
	db.mu.Lock()
	s := db.series[job]
	delete(db.series, job)
	db.mu.Unlock()
	if s != nil {
		s.close() //nolint:errcheck // the file is removed right after
	}
	err := os.Remove(db.path(job))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// Close flushes and closes every open series.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var first error
	for _, s := range db.series {
		if err := s.close(); err != nil && first == nil {
			first = err
		}
	}
	db.series = make(map[string]*series)
	return first
}

// Appender writes one job's samples. Append is cheap and buffered; Flush
// persists the buffered tail (the job runner flushes alongside every
// checkpoint, so durability tracks resumability).
type Appender struct{ s *series }

// Append records one sample. Samples must arrive in ascending Seq order;
// a sample at or below the last recorded sequence is dropped silently
// (the replayed prefix of a resumed job).
func (a *Appender) Append(s Sample) error { return a.s.append(s) }

// Flush persists buffered samples to the series file.
func (a *Appender) Flush() error { return a.s.flush() }

// LastSeq returns the newest recorded sequence number and whether any
// sample exists.
func (a *Appender) LastSeq() (uint64, bool) { return a.s.lastSeq() }

// series is one job's sample log: the full retained window in memory
// (samples are 112 bytes; the cap bounds this), mirrored to an append-only
// block file.
type series struct {
	mu        sync.Mutex
	path      string
	retention int
	f         *os.File // lazily opened for appending
	samples   []Sample
	flushed   int    // samples persisted to disk
	enc       []byte // reused block-encode buffer
}

func (s *series) load() error {
	data, err := os.ReadFile(s.path)
	if err != nil {
		return err
	}
	samples, err := decodeAll(data)
	if err != nil {
		return fmt.Errorf("%s: %w", s.path, err)
	}
	s.samples = samples
	s.flushed = len(samples)
	if len(s.samples) > s.retention {
		return s.compact()
	}
	return nil
}

func (s *series) lastSeq() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0, false
	}
	return s.samples[len(s.samples)-1].Seq, true
}

func (s *series) append(sm Sample) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.samples); n > 0 && sm.Seq <= s.samples[n-1].Seq {
		return nil // resumed replay of an already-recorded window
	}
	s.samples = append(s.samples, sm)
	if len(s.samples)-s.flushed >= blockLen {
		if err := s.flushLocked(); err != nil {
			return err
		}
	}
	// Compact with slack so the rewrite cost amortizes over retention/4
	// appends instead of landing on every one past the cap.
	if len(s.samples) > s.retention+s.retention/4 {
		return s.compact()
	}
	return nil
}

func (s *series) flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *series) flushLocked() error {
	if s.flushed == len(s.samples) {
		return nil
	}
	if s.f == nil {
		fresh := s.flushed == 0
		f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		s.f = f
		if fresh {
			if _, err := f.Write(seriesMagic); err != nil {
				return err
			}
		}
	}
	s.enc = encodeBlock(s.enc[:0], s.samples[s.flushed:])
	if _, err := s.f.Write(s.enc); err != nil {
		return err
	}
	s.flushed = len(s.samples)
	return nil
}

// compact drops the over-retention prefix and rewrites the file atomically.
// Caller holds s.mu.
func (s *series) compact() error {
	keep := s.samples[len(s.samples)-s.retention:]
	s.samples = append(s.samples[:0], keep...)
	if s.f != nil {
		s.f.Close() //nolint:errcheck // about to replace the file
		s.f = nil
	}
	out := append([]byte(nil), seriesMagic...)
	for i := 0; i < len(s.samples); i += blockLen {
		end := min(i+blockLen, len(s.samples))
		out = encodeBlock(out, s.samples[i:end])
	}
	if err := writeFileAtomic(s.path, out); err != nil {
		return err
	}
	s.flushed = len(s.samples)
	return nil
}

func (s *series) query(q Query) []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	lo := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].Seq >= q.FromSeq })
	hi := len(s.samples)
	if q.ToSeq > 0 {
		hi = sort.Search(len(s.samples), func(i int) bool { return s.samples[i].Seq > q.ToSeq })
	}
	if lo >= hi {
		return []Sample{}
	}
	out := append([]Sample(nil), s.samples[lo:hi]...)
	if q.MaxPoints > 0 && len(out) > q.MaxPoints {
		out = Downsample(out, q.MaxPoints)
	}
	return out
}

func (s *series) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.flushLocked()
	if s.f != nil {
		if cerr := s.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		s.f = nil
	}
	return err
}

// Downsample reduces samples to at most maxPoints by aggregating equal
// index ranges: bucket i spans samples [i*n/max, (i+1)*n/max). Counters
// sum; Seq and StartRef come from the bucket's first sample and EndRef
// from its last, so derived ratios over the aggregate are exact for the
// covered span. The result depends only on the input and maxPoints —
// deterministic across runs and hosts.
func Downsample(samples []Sample, maxPoints int) []Sample {
	n := len(samples)
	if maxPoints <= 0 || n <= maxPoints {
		return samples
	}
	out := make([]Sample, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		lo, hi := i*n/maxPoints, (i+1)*n/maxPoints
		if lo >= hi {
			continue
		}
		agg := samples[lo]
		for _, sm := range samples[lo+1 : hi] {
			agg.EndRef = sm.EndRef
			for c := 3; c < numCols; c++ {
				*agg.col(c) += *sm.col(c)
			}
		}
		out = append(out, agg)
	}
	return out
}

// WriteCSV renders samples as CSV with a fixed header, one row per sample.
func WriteCSV(w io.Writer, samples []Sample) error {
	if _, err := fmt.Fprintln(w, "seq,startRef,endRef,l1Hits,l1Misses,l2Hits,l2Misses,"+
		"tlbMisses,synonyms,writeBacks,coherenceToL1,shielded,busTxns,cycles"); err != nil {
		return err
	}
	for i := range samples {
		s := &samples[i]
		row := make([]string, numCols)
		for c := 0; c < numCols; c++ {
			row[c] = fmt.Sprintf("%d", *s.col(c))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ---- block codec ----

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encodeBlock appends one block to dst: varint sample count, varint
// payload length, then the payload — each column's values contiguously,
// zigzag-delta varint encoded against the previous sample in the block.
// The payload length comes from a dry sizing pass (pure arithmetic), so
// the encode reuses dst without a second buffer.
func encodeBlock(dst []byte, samples []Sample) []byte {
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) []byte { return tmp[:binary.PutUvarint(tmp[:], v)] }

	size := 0
	for c := 0; c < numCols; c++ {
		var prev uint64
		for i := range samples {
			v := *samples[i].col(c)
			size += varintLen(zigzag(int64(v) - int64(prev)))
			prev = v
		}
	}
	dst = append(dst, put(uint64(len(samples)))...)
	dst = append(dst, put(uint64(size))...)
	for c := 0; c < numCols; c++ {
		var prev uint64
		for i := range samples {
			v := *samples[i].col(c)
			dst = append(dst, put(zigzag(int64(v)-int64(prev)))...)
			prev = v
		}
	}
	return dst
}

func varintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// decodeAll parses a series file, tolerating a torn final block: a block
// whose framed payload extends past the end of the file is dropped along
// with everything after it.
func decodeAll(data []byte) ([]Sample, error) {
	if !bytes.HasPrefix(data, seriesMagic) {
		return nil, fmt.Errorf("tsdb: bad series magic")
	}
	data = data[len(seriesMagic):]
	var samples []Sample
	for len(data) > 0 {
		count, n := binary.Uvarint(data)
		if n <= 0 {
			break // torn header
		}
		size, n2 := binary.Uvarint(data[n:])
		if n2 <= 0 || uint64(len(data[n+n2:])) < size {
			break // torn block
		}
		payload := data[n+n2 : n+n2+int(size)]
		block, err := decodeBlock(payload, int(count))
		if err != nil {
			return nil, err
		}
		samples = append(samples, block...)
		data = data[n+n2+int(size):]
	}
	return samples, nil
}

func decodeBlock(payload []byte, count int) ([]Sample, error) {
	if count < 0 || count > 1<<24 {
		return nil, fmt.Errorf("tsdb: implausible block sample count %d", count)
	}
	out := make([]Sample, count)
	pos := 0
	for c := 0; c < numCols; c++ {
		var prev uint64
		for i := 0; i < count; i++ {
			d, n := binary.Uvarint(payload[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("tsdb: corrupt block column %d sample %d", c, i)
			}
			pos += n
			v := uint64(int64(prev) + unzigzag(d))
			*out[i].col(c) = v
			prev = v
		}
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("tsdb: block payload has %d trailing bytes", len(payload)-pos)
	}
	return out, nil
}

// writeFileAtomic writes data via a temp file and rename so readers never
// observe a partial document.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
