package experiments

import (
	"fmt"
	"io"

	"repro/internal/cycles"
	"repro/internal/system"
	"repro/internal/timemodel"
	"repro/internal/tracegen"
)

// timedCPUCounts are the machine sizes the timed tables sweep: the paper's
// Figures 4-6 reason about a single processor's access time; the measured
// tables show how bus contention moves it as processors are added.
var timedCPUCounts = []int{1, 2, 4}

// timed prints the measured-vs-analytic access-time table for one trace:
// for 1, 2 and 4 CPUs, each organization's hit ratios, the Section 4
// closed-form Tacc those ratios predict, and the Tacc the cycle engine
// measured with a contended bus. The gap between the two columns is pure
// queueing: with one CPU and an uncontended bus they agree to float
// rounding (the differential test pins this), and the gap widens with the
// processor count — the contention effect the closed form cannot see.
func timed(w io.Writer, tc tracegen.Config, scale float64) error {
	tc = scaled(tc, scale)
	p := mainSizePairs()[2] // the paper's largest pair, 16K/256K
	cp := cycles.ContentionParams()
	fmt.Fprintf(w, "measured vs analytic average access time (%s, sizes %s)\n", tc.Name, p.label)
	fmt.Fprintf(w, "latencies t1=%d t2=%d tm=%d; bus occupancy mem=%d ctrl=%d wb=%d cycles, contention on\n\n",
		cp.T1, cp.T2, cp.TM, cp.BusMemOcc, cp.BusCtrlOcc, cp.BusWBOcc)
	fmt.Fprintf(w, "%-5s %-12s %-7s %-7s %-10s %-10s %-10s %s\n",
		"cpus", "org", "h1", "h2", "analytic", "measured", "queueing", "buswait/ref")
	orgs := []system.Organization{system.VR, system.RRInclusion, system.RRNoInclusion}
	for _, n := range timedCPUCounts {
		wl := tc
		wl.CPUs = n
		engines := make([]*cycles.Engine, len(orgs))
		scs := make([]system.Config, len(orgs))
		for i, org := range orgs {
			engines[i] = cycles.MustNew(cp, nil)
			scs[i] = machineConfig(wl, p, org)
			scs[i].Cycles = engines[i]
		}
		systems, err := runSweep(wl, scs)
		if err != nil {
			return err
		}
		for i, org := range orgs {
			agg := systems[i].Aggregate()
			analytic := timemodel.AccessTime(timemodel.DefaultParams(agg.H1, agg.H2))
			measured := engines[i].Tacc()
			refs := engines[i].TotalRefs()
			var waitPerRef float64
			if refs > 0 {
				waitPerRef = float64(engines[i].BusWait()) / float64(refs)
			}
			fmt.Fprintf(w, "%-5d %-12s %-7.3f %-7.3f %-10.4f %-10.4f %-10.4f %.4f\n",
				n, org, agg.H1, agg.H2, analytic, measured, measured-analytic, waitPerRef)
		}
	}
	return nil
}

// TimedPops measures access times under bus contention for the pops trace.
func TimedPops(w io.Writer, scale float64) error {
	return timed(w, tracegen.PopsLike(), scale)
}

// TimedThor measures access times under bus contention for the thor trace.
func TimedThor(w io.Writer, scale float64) error {
	return timed(w, tracegen.ThorLike(), scale)
}

// TimedAbaqus measures access times under bus contention for the abaqus
// trace.
func TimedAbaqus(w io.Writer, scale float64) error {
	return timed(w, tracegen.AbaqusLike(), scale)
}
