package experiments

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/system"
	"repro/internal/timemodel"
	"repro/internal/tracegen"
)

// coherenceTable runs one trace under all three organizations over the
// main size pairs and prints the per-CPU counts of coherence messages that
// reached the first-level cache (Tables 11-13).
func coherenceTable(w io.Writer, tc tracegen.Config) error {
	orgs := []system.Organization{system.VR, system.RRInclusion, system.RRNoInclusion}
	pairs := mainSizePairs()
	scs := make([]system.Config, 0, len(pairs)*len(orgs))
	for _, p := range pairs {
		for _, org := range orgs {
			scs = append(scs, machineConfig(tc, p, org))
		}
	}
	systems, err := runSweep(tc, scs)
	if err != nil {
		return err
	}
	// counts[pair][org][cpu]
	counts := make([][][]uint64, len(pairs))
	for i := range pairs {
		counts[i] = make([][]uint64, len(orgs))
		for j := range orgs {
			counts[i][j] = systems[i*len(orgs)+j].CoherenceMessages()
		}
	}
	fmt.Fprintf(w, "coherence messages to the first-level cache (%s)\n", tc.Name)
	fmt.Fprintf(w, "%-5s", "cpu")
	for _, p := range pairs {
		fmt.Fprintf(w, " | %-8s %-9s %-11s", "VR", "RR(incl)", "RR(noincl)")
		_ = p
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-5s", "")
	for _, p := range pairs {
		fmt.Fprintf(w, " | %-30s", p.label)
	}
	fmt.Fprintln(w)
	for cpu := 0; cpu < tc.CPUs; cpu++ {
		fmt.Fprintf(w, "%-5d", cpu)
		for i := range pairs {
			fmt.Fprintf(w, " | %-8d %-9d %-11d",
				counts[i][0][cpu], counts[i][1][cpu], counts[i][2][cpu])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table11 reproduces the pops coherence-message counts.
func Table11(w io.Writer, scale float64) error {
	return coherenceTable(w, scaled(tracegen.PopsLike(), scale))
}

// Table12 reproduces the thor coherence-message counts.
func Table12(w io.Writer, scale float64) error {
	return coherenceTable(w, scaled(tracegen.ThorLike(), scale))
}

// Table13 reproduces the abaqus coherence-message counts (2 CPUs; the
// paper notes the shielding factor grows with the CPU count).
func Table13(w io.Writer, scale float64) error {
	return coherenceTable(w, scaled(tracegen.AbaqusLike(), scale))
}

// InclusionInvalidations reproduces the Section 2 measurement: with a 16K
// 2-way V-cache (16-byte blocks) and a 256K R-cache of the same set size
// and block size, the relaxed replacement rule needs only a handful of
// inclusion invalidations over the whole pops trace (the paper counts 21).
func InclusionInvalidations(w io.Writer, scale float64) error {
	tc := scaled(tracegen.PopsLike(), scale)
	sc := system.Config{
		CPUs:         tc.CPUs,
		Organization: system.VR,
		PageSize:     tc.PageSize,
		L1:           cache.Geometry{Size: 16 << 10, Block: 16, Assoc: 2},
		L2:           cache.Geometry{Size: 256 << 10, Block: 16, Assoc: 2},
	}
	sys, _, err := runWorkload(tc, sc)
	if err != nil {
		return err
	}
	var total, refs uint64
	for cpu := 0; cpu < sys.CPUs(); cpu++ {
		total += sys.Stats(cpu).InclusionInvals
	}
	refs = sys.Refs()
	fmt.Fprintf(w, "V-cache 16K 2-way 16B, R-cache 256K 2-way 16B, trace %s (%d refs)\n",
		tc.Name, refs)
	fmt.Fprintf(w, "inclusion invalidations: %d (paper: 21 over 3M references)\n", total)
	return nil
}

// AssocBound prints the Section 2 lower bound on second-level
// associativity under strict inclusion for a range of configurations,
// including the paper's example (16K V-cache, 4K pages, B2 = 4·B1 -> a
// 16-way R-cache would be required).
func AssocBound(w io.Writer, _ float64) error {
	type row struct {
		l1Size uint64
		b1, b2 uint64
		page   uint64
	}
	rows := []row{
		{16 << 10, 16, 64, 4096},
		{16 << 10, 16, 32, 4096},
		{16 << 10, 16, 16, 4096},
		{8 << 10, 16, 32, 4096},
		{4 << 10, 16, 64, 4096},
		{64 << 10, 32, 128, 4096},
	}
	fmt.Fprintf(w, "%-8s %-5s %-5s %-6s %s\n", "size(1)", "B1", "B2", "page", "required A2")
	for _, r := range rows {
		l1 := cache.Geometry{Size: r.l1Size, Block: r.b1, Assoc: 1}
		l2 := cache.Geometry{Size: 16 * r.l1Size, Block: r.b2, Assoc: 16}
		bound, err := timemodel.InclusionAssocLowerBound(l1, l2, r.page)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d %-5d %-5d %-6d %d\n", r.l1Size, r.b1, r.b2, r.page, bound)
	}
	fmt.Fprintln(w, "the relaxed replacement rule (replace childless lines first) removes this requirement;")
	fmt.Fprintln(w, "see the 'inclusion' experiment for how rarely its fallback fires.")
	return nil
}

// AssocBoundEmpirical validates the Section 2 bound by measurement: with a
// 16K direct-mapped V-cache, 4K pages and B2 = 4*B1, strict inclusion
// needs a 16-way R-cache. Sweeping the R-cache associativity and counting
// how often no childless victim exists (the strict rule's failures, which
// the relaxed rule converts into inclusion invalidations) shows the
// failures vanishing as A2 approaches the bound.
func AssocBoundEmpirical(w io.Writer, scale float64) error {
	tc := scaled(tracegen.PopsLike(), scale)
	l1 := cache.Geometry{Size: 16 << 10, Block: 16, Assoc: 1}
	bound, err := timemodel.InclusionAssocLowerBound(l1,
		cache.Geometry{Size: 256 << 10, Block: 64, Assoc: 16}, 4096)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "16K direct-mapped V-cache, 16B blocks; 256K R-cache, 64B blocks; 4K pages\n")
	fmt.Fprintf(w, "analytic bound: A2 >= %d\n", bound)
	fmt.Fprintf(w, "%-5s %s\n", "A2", "strict-rule failures (relaxed rule's inclusion invalidations)")
	assocs := []int{1, 2, 4, 8, 16, 32}
	scs := make([]system.Config, len(assocs))
	for i, a2 := range assocs {
		scs[i] = system.Config{
			CPUs:         tc.CPUs,
			Organization: system.VR,
			PageSize:     4096,
			L1:           l1,
			L2:           cache.Geometry{Size: 256 << 10, Block: 64, Assoc: a2},
			// Drain write-backs immediately so buffered blocks do not hold
			// extra children beyond the bound's assumptions.
			WriteBufLatency: 1,
		}
	}
	systems, err := runSweep(tc, scs)
	if err != nil {
		return err
	}
	for i, a2 := range assocs {
		sys := systems[i]
		var invals uint64
		for cpu := 0; cpu < sys.CPUs(); cpu++ {
			invals += sys.Stats(cpu).InclusionInvals
		}
		marker := ""
		if a2 >= bound {
			marker = "  <- at or above the bound"
		}
		fmt.Fprintf(w, "%-5d %d%s\n", a2, invals, marker)
	}
	return nil
}
