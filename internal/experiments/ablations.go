package experiments

import (
	"fmt"
	"io"

	"repro/internal/system"
	"repro/internal/tracegen"
)

// WriteBufferDepth sweeps the write-buffer depth and reports stall counts,
// the quantitative form of the paper's "several write buffers may be
// needed" observation (and of why the swapped-valid scheme needs only
// one).
func WriteBufferDepth(w io.Writer, scale float64) error {
	tc := scaled(tracegen.PopsLike(), scale)
	fmt.Fprintf(w, "%-7s %-12s %-12s %s\n", "depth", "write-backs", "stalls", "stall rate")
	depths := []int{1, 2, 4, 8}
	scs := make([]system.Config, len(depths))
	for i, depth := range depths {
		sc := machineConfig(tc, mainSizePairs()[2], system.VR)
		sc.WriteBufDepth = depth
		sc.WriteBufLatency = 8
		scs[i] = sc
	}
	systems, err := runSweep(tc, scs)
	if err != nil {
		return err
	}
	for i, sys := range systems {
		depth := depths[i]
		var wbs, stalls uint64
		for cpu := 0; cpu < sys.CPUs(); cpu++ {
			st := sys.Stats(cpu)
			wbs += st.WriteBacks
			stalls += st.BufferStalls
		}
		rate := 0.0
		if wbs > 0 {
			rate = float64(stalls) / float64(wbs)
		}
		fmt.Fprintf(w, "%-7d %-12d %-12d %.4f\n", depth, wbs, stalls, rate)
	}
	return nil
}

// EagerFlush compares the swapped-valid lazy flush against eager
// flush-at-switch on the context-switch-heavy abaqus workload: the same
// write-backs happen either way, but eager flushing clusters them at
// switch time (the latency spike the paper's scheme removes).
func EagerFlush(w io.Writer, scale float64) error {
	tc := scaled(tracegen.AbaqusLike(), scale)
	modes := []bool{false, true}
	scs := make([]system.Config, len(modes))
	for i, eager := range modes {
		sc := machineConfig(tc, mainSizePairs()[2], system.VR)
		sc.EagerCtxFlush = eager
		scs[i] = sc
	}
	systems, err := runSweep(tc, scs)
	if err != nil {
		return err
	}
	for i, sys := range systems {
		eager := modes[i]
		var wbs, swapped, eagerWBs, switches uint64
		for cpu := 0; cpu < sys.CPUs(); cpu++ {
			st := sys.Stats(cpu)
			wbs += st.WriteBacks
			swapped += st.SwappedWriteBacks
			eagerWBs += st.EagerFlushWriteBacks
			switches += st.CtxSwitches
		}
		mode := "lazy (swapped-valid)"
		if eager {
			mode = "eager (flush at switch)"
		}
		fmt.Fprintf(w, "%s:\n", mode)
		fmt.Fprintf(w, "  context switches:        %d\n", switches)
		fmt.Fprintf(w, "  total write-backs:       %d\n", wbs)
		if eager {
			fmt.Fprintf(w, "  clustered at switches:   %d (%.0f per switch)\n",
				eagerWBs, perSwitch(eagerWBs, switches))
		} else {
			fmt.Fprintf(w, "  swapped write-backs:     %d (spread over time; %.0f per switch)\n",
				swapped, perSwitch(swapped, switches))
		}
	}
	return nil
}

func perSwitch(n, switches uint64) float64 {
	if switches == 0 {
		return 0
	}
	return float64(n) / float64(switches)
}
