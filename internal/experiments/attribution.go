package experiments

import (
	"fmt"
	"io"

	"repro/internal/cycles"
	"repro/internal/probe"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/tracegen"
)

// Attribution answers the question the timed tables raise: the V-R and R-R
// hierarchies land on different measured Tacc — *which mechanism* gets the
// extra cycles? It runs pops on 4 CPUs under both organizations with the
// cycle-attribution profiler attached, verifies each profile reconciles
// exactly with its engine's clocks, prints both blame breakdowns, and
// closes with the mechanism-by-mechanism diff.
func Attribution(w io.Writer, scale float64) error {
	tc := scaled(tracegen.PopsLike(), scale)
	p := mainSizePairs()[2] // 16K/256K, the paper's largest pair
	cp := cycles.ContentionParams()
	cp.TLBMissPenalty = 8
	cp.CtxSwitchCost = 10
	fmt.Fprintf(w, "cycle attribution by mechanism (%s, sizes %s, %d CPUs)\n", tc.Name, p.label, tc.CPUs)
	fmt.Fprintf(w, "latencies t1=%d t2=%d tm=%d, tlb-penalty=%d, ctx-cost=%d; bus occupancy mem=%d ctrl=%d wb=%d, contention on\n\n",
		cp.T1, cp.T2, cp.TM, cp.TLBMissPenalty, cp.CtxSwitchCost,
		cp.BusMemOcc, cp.BusCtrlOcc, cp.BusWBOcc)

	orgs := []system.Organization{system.VR, system.RRInclusion}
	reports := make([]*telemetry.AttributionReport, len(orgs))
	for i, org := range orgs {
		pr := probe.New(0)
		eng := cycles.MustNew(cp, pr)
		sc := machineConfig(tc, p, org)
		sc.Probe, sc.Cycles = pr, eng
		sys, err := system.New(sc)
		if err != nil {
			return err
		}
		attr := telemetry.NewAttribution(telemetry.AttrConfig{
			PageSize: sys.Config().PageSize,
			L2Sets:   sc.L2.Sets(),
			L2Block:  sc.L2.Block,
		})
		pr.AddSink(attr)
		if err := tc.SetupSharedMappings(sys.MMU()); err != nil {
			return err
		}
		gen, err := tracegen.New(tc)
		if err != nil {
			return err
		}
		if err := sys.Run(gen); err != nil {
			return err
		}
		if err := pr.Close(); err != nil {
			return err
		}
		if err := attr.Reconcile(eng); err != nil {
			return err
		}
		reports[i] = attr.Report()
		fmt.Fprintf(w, "%s: attribution reconciles with the engine to the cycle\n", org)
		fmt.Fprintf(w, "%-16s %14s %8s\n", "mechanism", "cycles", "share")
		for _, m := range reports[i].Mechanisms {
			var share float64
			if reports[i].TotalCycles > 0 {
				share = 100 * float64(m.Cycles) / float64(reports[i].TotalCycles)
			}
			fmt.Fprintf(w, "%-16s %14d %7.2f%%\n", m.Mechanism, m.Cycles, share)
		}
		fmt.Fprintln(w)
	}
	return telemetry.DiffText(w, orgs[0].String(), reports[0], orgs[1].String(), reports[1])
}
