package experiments

import (
	"fmt"
	"io"

	"repro/internal/bus"
	"repro/internal/system"
	"repro/internal/tracegen"
)

// WritePolicy reproduces the Section 2 argument for a write-back first
// level: under write-through every processor write goes down a level, the
// short inter-write intervals of Table 2 overwhelm small write buffers
// (stalls), and no-write-allocate lowers the write hit ratio; write-back
// with the swapped-valid bit sends down only rare, well-spaced write-backs.
func WritePolicy(w io.Writer, scale float64) error {
	tc := scaled(tracegen.PopsLike(), scale)
	fmt.Fprintf(w, "%-14s %-7s %-9s %-9s %-13s %-9s %s\n",
		"policy", "depth", "h1", "h1-write", "down-writes", "stalls", "stall rate")
	policies := []bool{true, false}
	depths := []int{1, 2, 4}
	var scs []system.Config
	for _, wt := range policies {
		for _, depth := range depths {
			sc := machineConfig(tc, mainSizePairs()[2], system.VR)
			sc.L1WriteThrough = wt
			sc.WriteBufDepth = depth
			sc.WriteBufLatency = 6
			scs = append(scs, sc)
		}
	}
	systems, err := runSweep(tc, scs)
	if err != nil {
		return err
	}
	for i, sys := range systems {
		wt := policies[i/len(depths)]
		depth := depths[i%len(depths)]
		agg := sys.Aggregate()
		var down, stalls uint64
		for cpu := 0; cpu < sys.CPUs(); cpu++ {
			st := sys.Stats(cpu)
			stalls += st.BufferStalls
			if wt {
				// Every write goes down a level.
				down += st.L1.Kind(2).Total
			} else {
				down += st.WriteBacks
			}
		}
		name := "write-back"
		if wt {
			name = "write-through"
		}
		rate := 0.0
		if down > 0 {
			rate = float64(stalls) / float64(down)
		}
		fmt.Fprintf(w, "%-14s %-7d %-9.3f %-9.3f %-13d %-9d %.4f\n",
			name, depth, agg.H1, agg.L1.DataWrite, down, stalls, rate)
	}
	fmt.Fprintln(w, "\nshape to match (paper section 2): write-through needs several buffers and still")
	fmt.Fprintln(w, "stalls, with the lower (no-allocate) write hit ratio; write-back sends several")
	fmt.Fprintln(w, "times fewer writes down, far better spaced, so one or two buffers suffice.")
	return nil
}

// Scaling confirms the paper's closing prediction — "the shielding effect
// on cache coherence will be more prominent as the number of processors
// increases" — by sweeping the CPU count with a fixed per-CPU workload and
// comparing coherence messages per first-level cache under V-R and the
// unshielded baseline. (The paper could only contrast its 2- and 4-CPU
// traces and left larger machines to future work.)
func Scaling(w io.Writer, scale float64) error {
	fmt.Fprintf(w, "%-6s %-14s %-18s %s\n",
		"cpus", "VR msgs/L1", "no-incl msgs/L1", "shielding factor")
	for _, cpus := range []int{2, 4, 8} {
		tc := scaled(tracegen.PopsLike(), scale)
		tc.CPUs = cpus
		tc.TotalRefs = tc.TotalRefs / 4 * cpus // fixed per-CPU length
		orgs := []system.Organization{system.VR, system.RRNoInclusion}
		scs := make([]system.Config, len(orgs))
		for i, org := range orgs {
			scs[i] = machineConfig(tc, mainSizePairs()[2], org)
		}
		systems, err := runSweep(tc, scs)
		if err != nil {
			return err
		}
		var per [2]float64
		for i, sys := range systems {
			var total uint64
			for _, m := range sys.CoherenceMessages() {
				total += m
			}
			per[i] = float64(total) / float64(cpus)
		}
		fmt.Fprintf(w, "%-6d %-14.0f %-18.0f %.1fx\n", cpus, per[0], per[1], per[1]/per[0])
	}
	return nil
}

// Bandwidth estimates the bus occupancy of each organization — the paper's
// opening motivation is memory bandwidth. Transactions are weighted by a
// simple cost model (data transfers cost a block transfer, invalidations
// and updates an address cycle) and reported per 1000 references.
func Bandwidth(w io.Writer, scale float64) error {
	tc := scaled(tracegen.PopsLike(), scale)
	const (
		costData = 8 // bus cycles for an L2-block data transfer
		costAddr = 2 // bus cycles for an address-only transaction
	)
	fmt.Fprintf(w, "bus cost model: data transfer %d cycles, address-only %d cycles\n",
		costData, costAddr)
	fmt.Fprintf(w, "%-13s %-9s %-9s %-9s %-12s %s\n",
		"organization", "reads", "rmw", "inval", "bus cycles", "cycles/1k refs")
	orgs := []system.Organization{system.VR, system.RRInclusion, system.RRNoInclusion}
	scs := make([]system.Config, len(orgs))
	for i, org := range orgs {
		scs[i] = machineConfig(tc, mainSizePairs()[2], org)
	}
	systems, err := runSweep(tc, scs)
	if err != nil {
		return err
	}
	for i, sys := range systems {
		org := orgs[i]
		bs := sys.Bus().Stats()
		cycles := (bs.Count(bus.Read)+bs.Count(bus.ReadMod))*costData +
			(bs.Count(bus.Invalidate)+bs.Count(bus.Update))*costAddr
		fmt.Fprintf(w, "%-13s %-9d %-9d %-9d %-12d %.1f\n",
			org, bs.Count(bus.Read), bs.Count(bus.ReadMod), bs.Count(bus.Invalidate),
			cycles, 1000*float64(cycles)/float64(sys.Refs()))
	}
	return nil
}
