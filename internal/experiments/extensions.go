package experiments

import (
	"fmt"
	"io"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/system"
	"repro/internal/tracegen"
)

// PIDTags compares the paper's three context-switch strategies on the
// switch-heavy abaqus workload: lazy swapped-valid flushing (the paper's
// choice), eager flush-at-switch, and PID-tagged V-cache lines (the
// Section 2 alternative the paper discusses: no flush, wider tags, purge
// complexity). The paper's claim — PID tags "do not improve the hit ratio
// for a small V-cache" — is directly measurable here.
func PIDTags(w io.Writer, scale float64) error {
	tc := scaled(tracegen.AbaqusLike(), scale)
	type variant struct {
		name  string
		tweak func(*system.Config)
	}
	variants := []variant{
		{"lazy swapped-valid", func(*system.Config) {}},
		{"eager flush", func(sc *system.Config) { sc.EagerCtxFlush = true }},
		{"PID-tagged", func(sc *system.Config) { sc.PIDTagged = true }},
	}
	fmt.Fprintf(w, "%-20s %-8s %-8s %-13s %s\n",
		"scheme", "h1(4K)", "h1(16K)", "write-backs", "clustered-at-switch")
	pairs := []sizePair{mainSizePairs()[0], mainSizePairs()[2]}
	var scs []system.Config
	for _, v := range variants {
		for _, p := range pairs {
			sc := machineConfig(tc, p, system.VR)
			v.tweak(&sc)
			scs = append(scs, sc)
		}
	}
	systems, err := runSweep(tc, scs)
	if err != nil {
		return err
	}
	for i, v := range variants {
		var h1s []float64
		var wbs, clustered uint64
		for j, p := range pairs {
			sys := systems[i*len(pairs)+j]
			h1s = append(h1s, sys.Aggregate().H1)
			if p.l1 == 16<<10 {
				for cpu := 0; cpu < sys.CPUs(); cpu++ {
					wbs += sys.Stats(cpu).WriteBacks
					clustered += sys.Stats(cpu).EagerFlushWriteBacks
				}
			}
		}
		fmt.Fprintf(w, "%-20s %-8.3f %-8.3f %-13d %d\n",
			v.name, h1s[0], h1s[1], wbs, clustered)
	}
	fmt.Fprintln(w, "\nshape to match (paper section 2): PID tags recover the R-R hit ratio without")
	fmt.Fprintln(w, "flush write-backs, but the paper rejects them for tag width and purge complexity;")
	fmt.Fprintln(w, "lazy swapped-valid keeps the write-backs unclustered at equal hit ratio to eager.")
	return nil
}

// UpdateProtocol compares the write-invalidate protocol the paper assumes
// against a write-update (Firefly-style) protocol on the same hierarchy,
// demonstrating the paper's remark that the organization "will also work
// for other protocols": update messages replace invalidations as the
// dominant first-level coherence traffic, and shared ping-pong misses
// disappear at the cost of bus update transactions.
func UpdateProtocol(w io.Writer, scale float64) error {
	tc := scaled(tracegen.PopsLike(), scale)
	protos := []core.Protocol{core.WriteInvalidate, core.WriteUpdate}
	scs := make([]system.Config, len(protos))
	for i, proto := range protos {
		sc := machineConfig(tc, mainSizePairs()[2], system.VR)
		sc.Protocol = proto
		scs[i] = sc
	}
	systems, err := runSweep(tc, scs)
	if err != nil {
		return err
	}
	for i, sys := range systems {
		proto := protos[i]
		agg := sys.Aggregate()
		var msgs uint64
		for cpu := 0; cpu < sys.CPUs(); cpu++ {
			msgs += sys.Stats(cpu).Coherence.Total()
		}
		bs := sys.Bus().Stats()
		fmt.Fprintf(w, "%s:\n", proto)
		fmt.Fprintf(w, "  h1 = %.3f  h2 = %.3f\n", agg.H1, agg.H2)
		fmt.Fprintf(w, "  bus transactions: %d (of which %d updates, %d invalidations, %d rmw)\n",
			bs.Total(), bs.Count(bus.Update), bs.Count(bus.Invalidate), bs.Count(bus.ReadMod))
		fmt.Fprintf(w, "  coherence messages to L1 (all CPUs): %d\n", msgs)
	}
	return nil
}

// RelaxedReplacement quantifies the paper's relaxed-inclusion victim rule:
// preferring childless second-level victims versus replacing naively by
// LRU. The naive rule invalidates first-level children far more often.
func RelaxedReplacement(w io.Writer, scale float64) error {
	tc := scaled(tracegen.AbaqusLike(), scale)
	fmt.Fprintf(w, "L1 8K, L2 32K 2-way (a tight 4:1 ratio where victim choice matters), abaqus\n")
	fmt.Fprintf(w, "%-10s %-22s %-8s\n", "rule", "inclusion invalidations", "h1")
	rules := []bool{false, true}
	scs := make([]system.Config, len(rules))
	for i, naive := range rules {
		sc := machineConfig(tc, sizePair{"8K/32K", 8 << 10, 32 << 10}, system.VR)
		sc.L2.Assoc = 2 // give the preference rule a choice within each set
		sc.NaiveL2Replacement = naive
		scs[i] = sc
	}
	systems, err := runSweep(tc, scs)
	if err != nil {
		return err
	}
	for i, sys := range systems {
		naive := rules[i]
		var invals uint64
		for cpu := 0; cpu < sys.CPUs(); cpu++ {
			invals += sys.Stats(cpu).InclusionInvals
		}
		name := "relaxed"
		if naive {
			name = "naive"
		}
		fmt.Fprintf(w, "%-10s %-22d %-8.3f\n", name, invals, sys.Aggregate().H1)
	}
	return nil
}
