package experiments

import (
	"fmt"
	"io"

	"repro/internal/cycles"
	"repro/internal/monitor"
	"repro/internal/report"
	"repro/internal/system"
	"repro/internal/tracegen"
)

// TimedHist prints the per-reference latency distributions the cycle engine
// measures under bus contention: for each organization at 4 CPUs, the
// access-time, bus-wait and write-back-drain histograms summarized as
// count/mean/p50/p95/p99/max. The closed form of Section 4 predicts only
// the mean; the quantile spread is the contention effect the average hides
// (most references hit at t1, the tail waits on the bus).
func TimedHist(w io.Writer, scale float64) error {
	tc := scaled(tracegen.PopsLike(), scale)
	tc.CPUs = 4
	p := mainSizePairs()[2] // 16K/256K
	cp := cycles.ContentionParams()
	fmt.Fprintf(w, "latency distributions under bus contention (%s, %d CPUs, sizes %s)\n",
		tc.Name, tc.CPUs, p.label)
	fmt.Fprintf(w, "latencies t1=%d t2=%d tm=%d; bus occupancy mem=%d ctrl=%d wb=%d cycles\n\n",
		cp.T1, cp.T2, cp.TM, cp.BusMemOcc, cp.BusCtrlOcc, cp.BusWBOcc)
	orgs := []system.Organization{system.VR, system.RRInclusion, system.RRNoInclusion}
	engines := make([]*cycles.Engine, len(orgs))
	scs := make([]system.Config, len(orgs))
	for i, org := range orgs {
		engines[i] = cycles.MustNew(cp, nil)
		engines[i].SetLatencies(monitor.NewLatencies(tc.CPUs))
		scs[i] = machineConfig(tc, p, org)
		scs[i].Cycles = engines[i]
	}
	if _, err := runSweep(tc, scs); err != nil {
		return err
	}
	for i, org := range orgs {
		fmt.Fprintf(w, "%s:\n", org)
		fmt.Fprintf(w, "  %-10s %-10s %-8s %-8s %-8s %-8s %s\n",
			"kind", "count", "mean", "p50", "p95", "p99", "max")
		for _, s := range report.SummarizeLatencies(engines[i].Latencies()) {
			fmt.Fprintf(w, "  %-10s %-10d %-8.2f %-8.1f %-8.1f %-8.1f %d\n",
				s.Kind, s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
		}
		fmt.Fprintln(w)
	}
	return nil
}
