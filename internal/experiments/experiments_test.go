package experiments

import (
	"strings"
	"testing"

	"repro/internal/system"
	"repro/internal/tracegen"
)

// testScale keeps test runs fast; the shapes under test are robust to it.
const testScale = 0.01

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var b strings.Builder
			if err := e.Run(&b, testScale); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if b.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("table6")
	if err != nil || e.ID != "table6" {
		t.Fatalf("ByID(table6) = %+v, %v", e, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestIDsSortedAndUnique(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs() has %d entries, All() has %d", len(ids), len(All()))
	}
	seen := map[string]bool{}
	for i, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %q", id)
		}
		seen[id] = true
		if i > 0 && ids[i-1] > id {
			t.Error("ids not sorted")
		}
	}
}

func TestTable1ContainsPaperRows(t *testing.T) {
	var b strings.Builder
	if err := Table1(&b, testScale); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"no. of wr. per call", "total no. of wr", "call-write share"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

// TestSynonymStrategyShape pins the synonym experiment's claims: a victim
// cache never moves the hit ratios (it is timing-only, so the vptr+victim
// row still reproduces the paper's V-R numbers), while the bounded RLT
// really does evict and pays for it in h1.
func TestSynonymStrategyShape(t *testing.T) {
	tc := scaled(tracegen.PopsLike(), testScale)
	p := mainSizePairs()[2]
	base := machineConfig(tc, p, system.VR)
	vic := machineConfig(tc, p, system.VR)
	vic.VictimEntries = 4
	rlt := machineConfig(tc, p, system.VRRLT)
	systems, err := runSweep(tc, []system.Config{base, vic, rlt})
	if err != nil {
		t.Fatal(err)
	}
	aggBase, aggVic, aggRLT := systems[0].Aggregate(), systems[1].Aggregate(), systems[2].Aggregate()
	if aggVic.H1 != aggBase.H1 || aggVic.H2 != aggBase.H2 {
		t.Errorf("victim cache moved the hit ratios: base h1=%v h2=%v, victim h1=%v h2=%v",
			aggBase.H1, aggBase.H2, aggVic.H1, aggVic.H2)
	}
	var vicHits, rltEv uint64
	for cpu := 0; cpu < systems[1].CPUs(); cpu++ {
		vicHits += systems[1].Stats(cpu).VictimHits
	}
	for cpu := 0; cpu < systems[2].CPUs(); cpu++ {
		rltEv += systems[2].Stats(cpu).RLTEvictions
	}
	if vicHits == 0 {
		t.Error("victim cache never hit at experiment scale")
	}
	if rltEv == 0 {
		t.Error("default-sized RLT never evicted at experiment scale")
	}
	if aggRLT.H1 > aggBase.H1 {
		t.Errorf("RLT improved h1 (%v > %v): forced evictions cannot add hits", aggRLT.H1, aggBase.H1)
	}
}

func TestTable6Labels(t *testing.T) {
	var b strings.Builder
	if err := Table6(&b, testScale); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"h1VR", "h1RR", "h2VR", "h2RR", "thor", "pops", "abaqus", "16K/256K"} {
		if !strings.Contains(out, want) {
			t.Errorf("table6 missing %q", want)
		}
	}
}

func TestFig6ReportsCrossover(t *testing.T) {
	var b strings.Builder
	if err := Fig6(&b, testScale); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "crossover") {
		t.Error("fig6 missing crossover analysis")
	}
}

// Shape test: h1 grows with cache size for every organization.
func TestH1GrowsWithCacheSize(t *testing.T) {
	tc := scaled(tracegen.PopsLike(), 0.02)
	var prev float64
	for i, p := range mainSizePairs() {
		sys, _, err := runWorkload(tc, machineConfig(tc, p, system.VR))
		if err != nil {
			t.Fatal(err)
		}
		h1 := sys.Aggregate().H1
		if i > 0 && h1 < prev {
			t.Errorf("h1 shrank from %.3f to %.3f at %s", prev, h1, p.label)
		}
		prev = h1
	}
}

// Shape test: the V-R organization's L1 sees far fewer coherence messages
// than the unshielded baseline.
func TestShieldingShape(t *testing.T) {
	tc := scaled(tracegen.PopsLike(), 0.02)
	p := mainSizePairs()[0]
	vr, _, err := runWorkload(tc, machineConfig(tc, p, system.VR))
	if err != nil {
		t.Fatal(err)
	}
	ni, _, err := runWorkload(tc, machineConfig(tc, p, system.RRNoInclusion))
	if err != nil {
		t.Fatal(err)
	}
	var vrTotal, niTotal uint64
	for _, v := range vr.CoherenceMessages() {
		vrTotal += v
	}
	for _, v := range ni.CoherenceMessages() {
		niTotal += v
	}
	if vrTotal*2 >= niTotal {
		t.Errorf("shielding factor too small: VR %d vs no-incl %d", vrTotal, niTotal)
	}
}

// Shape test: frequent context switches penalize the V-R h1 relative to
// R-R (the Figure 6 situation), while rare switches do not.
func TestContextSwitchPenaltyShape(t *testing.T) {
	// Use an aggressive switch rate so the effect is visible at test scale.
	tc := scaled(tracegen.AbaqusLike(), 0.05)
	p := mainSizePairs()[2]
	vr, _, err := runWorkload(tc, machineConfig(tc, p, system.VR))
	if err != nil {
		t.Fatal(err)
	}
	rr, _, err := runWorkload(tc, machineConfig(tc, p, system.RRInclusion))
	if err != nil {
		t.Fatal(err)
	}
	if vr.Aggregate().H1 >= rr.Aggregate().H1 {
		t.Errorf("V-R h1 %.3f should trail R-R h1 %.3f under frequent switches",
			vr.Aggregate().H1, rr.Aggregate().H1)
	}

	// pops switches rarely: the two organizations are nearly identical.
	tp := scaled(tracegen.PopsLike(), 0.02)
	vrp, _, err := runWorkload(tp, machineConfig(tp, p, system.VR))
	if err != nil {
		t.Fatal(err)
	}
	rrp, _, err := runWorkload(tp, machineConfig(tp, p, system.RRInclusion))
	if err != nil {
		t.Fatal(err)
	}
	if diff := rrp.Aggregate().H1 - vrp.Aggregate().H1; diff > 0.01 {
		t.Errorf("rare-switch gap too large: %.4f", diff)
	}
}

// Shape test: split I/D hit ratios stay close to unified.
func TestSplitCloseToUnified(t *testing.T) {
	tc := scaled(tracegen.ThorLike(), 0.02)
	p := mainSizePairs()[1]
	sc := machineConfig(tc, p, system.VR)
	sc.Split = true
	split, _, err := runWorkload(tc, sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Split = false
	uni, _, err := runWorkload(tc, sc)
	if err != nil {
		t.Fatal(err)
	}
	d := split.Aggregate().H1 - uni.Aggregate().H1
	if d < -0.05 || d > 0.05 {
		t.Errorf("split vs unified gap %.4f exceeds 5%%", d)
	}
}

// Shape test: write-buffer stalls drop sharply with depth.
func TestWriteBufferDepthShape(t *testing.T) {
	tc := scaled(tracegen.PopsLike(), 0.02)
	stalls := func(depth int) uint64 {
		sc := machineConfig(tc, mainSizePairs()[2], system.VR)
		sc.WriteBufDepth = depth
		sc.WriteBufLatency = 8
		sys, _, err := runWorkload(tc, sc)
		if err != nil {
			t.Fatal(err)
		}
		var total uint64
		for cpu := 0; cpu < sys.CPUs(); cpu++ {
			total += sys.Stats(cpu).BufferStalls
		}
		return total
	}
	s1, s4 := stalls(1), stalls(4)
	if s1 == 0 {
		t.Skip("no stalls at this scale")
	}
	if s4*2 >= s1 {
		t.Errorf("depth 4 stalls (%d) should be far below depth 1 (%d)", s4, s1)
	}
}
