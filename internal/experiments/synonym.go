package experiments

import (
	"fmt"
	"io"

	"repro/internal/autotune"
	"repro/internal/bus"
	"repro/internal/cycles"
	"repro/internal/system"
	"repro/internal/tracegen"
)

// SynonymStrategy compares the paper's synonym mechanism against the two
// alternatives behind the core.SynonymStrategy seam, on the paper's main
// machine (16K/256K direct-mapped, pops). The three strategies resolve the
// same synonyms — the differential harness proves data behaviour is
// identical — so the table isolates what each one costs and buys:
//
//   - vptr: the paper's per-subentry v-pointers. The baseline; its rows
//     must reproduce Table 6's V-R hit ratios exactly.
//   - rlt: a bounded reverse-lookup table instead of a pointer per
//     subentry. Less SRAM, but capacity evictions force otherwise-live
//     first-level lines out, which shows up as a lower h1 (the refills
//     come back from the second level).
//   - victim: a small victim cache under the first level (orthogonal —
//     shown on both strategies). Extra SRAM, but conflict victims return
//     at TVictim instead of t2, which shows up in measured Tacc.
func SynonymStrategy(w io.Writer, scale float64) error {
	tc := scaled(tracegen.PopsLike(), scale)
	p := mainSizePairs()[2]
	cp := cycles.ContentionParams()
	cp.TVictim = 2 // Jouppi-style fast side array: cheaper than t2=4

	variants := []struct {
		label  string
		org    system.Organization
		victim int
		rlt    int
	}{
		{"vptr (paper)", system.VR, 0, 0},
		{"vptr+victim", system.VR, 4, 0},
		{"rlt", system.VRRLT, 0, 0},
		{"rlt+victim", system.VRRLT, 4, 0},
	}

	fmt.Fprintf(w, "synonym strategies (%s, sizes %s, B1=16 B2=32, direct-mapped)\n", tc.Name, p.label)
	fmt.Fprintf(w, "latencies t1=%d t2=%d tm=%d tvictim=%d, contention on\n\n",
		cp.T1, cp.T2, cp.TM, cp.TVictim)
	fmt.Fprintf(w, "%-13s %-7s %-7s %-10s %-10s %-10s %-11s %s\n",
		"strategy", "h1", "h2", "bus/1kref", "vic hits", "rlt evict", "SRAM kbit", "Tacc")

	engines := make([]*cycles.Engine, len(variants))
	scs := make([]system.Config, len(variants))
	for i, v := range variants {
		engines[i] = cycles.MustNew(cp, nil)
		sc := machineConfig(tc, p, v.org)
		sc.VictimEntries = v.victim
		sc.RLTEntries = v.rlt
		sc.Cycles = engines[i]
		scs[i] = sc
	}
	systems, err := runSweep(tc, scs)
	if err != nil {
		return err
	}
	for i, v := range variants {
		sys := systems[i]
		agg := sys.Aggregate()
		bs := sys.Bus().Stats()
		txns := bs.Count(bus.Read) + bs.Count(bus.ReadMod) + bs.Count(bus.Invalidate) + bs.Count(bus.Update)
		var vicHits, rltEv uint64
		for cpu := 0; cpu < sys.CPUs(); cpu++ {
			st := sys.Stats(cpu)
			vicHits += st.VictimHits
			rltEv += st.RLTEvictions
		}
		fmt.Fprintf(w, "%-13s %-7.3f %-7.3f %-10.1f %-10d %-10d %-11.1f %.4f\n",
			v.label, agg.H1, agg.H2,
			1000*float64(txns)/float64(sys.Refs()),
			vicHits, rltEv,
			float64(autotune.SRAMBits(scs[i]))/1024,
			engines[i].Tacc())
	}
	fmt.Fprintln(w, "\nshape to match: the vptr rows reproduce Table 6's V-R column; the rlt rows")
	fmt.Fprintln(w, "trade a lower SRAM bill for forced first-level evictions — a lower h1, with")
	fmt.Fprintln(w, "the refills absorbed by the second level as a higher h2 and no extra bus")
	fmt.Fprintln(w, "traffic; the victim rows spend a little SRAM to cut Tacc on both strategies.")
	return nil
}
