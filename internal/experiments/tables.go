package experiments

import (
	"fmt"
	"io"

	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Table1 reproduces the writes-per-procedure-call histogram. The paper
// measured it on the pops trace; here it is a property of the pops-like
// workload itself.
func Table1(w io.Writer, scale float64) error {
	tc := scaled(tracegen.PopsLike(), scale)
	gen, err := tracegen.New(tc)
	if err != nil {
		return err
	}
	chars, err := trace.Summarize(gen)
	if err != nil {
		return err
	}
	h := gen.WritesPerCall()
	fmt.Fprintf(w, "%-22s %-10s %s\n", "no. of wr. per call", "count", "total writes")
	for n := 1; n <= 16; n++ {
		fmt.Fprintf(w, "%-22d %-10d %d\n", n, h.Count(n), uint64(n)*h.Count(n))
	}
	fmt.Fprintf(w, "%-22s %d\n", "no. of wr. due to p", h.Sum())
	fmt.Fprintf(w, "%-22s %d\n", "total no. of wr", chars.Writes)
	fmt.Fprintf(w, "call-write share: %.1f%% (paper: 30%%)\n",
		100*float64(h.Sum())/float64(chars.Writes))
	return nil
}

// snapshotLen is the paper's Table 2/3 snapshot length.
const snapshotLen = 411_237

// Table2 reproduces the inter-write-interval distribution that motivates
// multiple write buffers: under write-through, every processor write goes
// down a level, and the intervals between them are short.
func Table2(w io.Writer, scale float64) error {
	tc := scaled(tracegen.PopsLike(), scale)
	n := snapshotLen
	if scale < 1 && tc.TotalRefs < n {
		n = tc.TotalRefs
	}
	sys, err := runLimited(tc, machineConfig(tc, mainSizePairs()[2], system.VR), n)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "inter-write intervals (snapshot of %d references, 16K direct-mapped, 16-byte blocks)\n", n)
	fmt.Fprintf(w, "%-16s %s\n", "interval", "count")
	h := sys.Stats(0).WriteIntervals.Histogram()
	for v := 1; v < 10; v++ {
		fmt.Fprintf(w, "%-16d %d\n", v, h.Count(v))
	}
	fmt.Fprintf(w, "%-16s %d\n", "10 and larger", h.Overflow())
	short := uint64(0)
	for v := 1; v < 10; v++ {
		short += h.Count(v)
	}
	fmt.Fprintf(w, "short-interval share: %.0f%% (paper: ~75%%)\n",
		100*float64(short)/float64(h.Total()))
	return nil
}

// Table3 reproduces the interval distribution with write-back plus the
// swapped-valid scheme: write-backs become rare and far apart, so a single
// buffer suffices.
func Table3(w io.Writer, scale float64) error {
	tc := scaled(tracegen.PopsLike(), scale)
	n := snapshotLen
	if scale < 1 && tc.TotalRefs < n {
		n = tc.TotalRefs
	}
	sys, err := runLimited(tc, machineConfig(tc, mainSizePairs()[2], system.VR), n)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "write-back intervals with write-back + swapped write-back (snapshot of %d references)\n", n)
	fmt.Fprintf(w, "%-16s %s\n", "interval", "count")
	h := sys.Stats(0).WriteBackIntervals.Histogram()
	for v := 1; v < 10; v++ {
		fmt.Fprintf(w, "%-16d %d\n", v, h.Count(v))
	}
	fmt.Fprintf(w, "%-16s %d\n", "10 and larger", h.Overflow())
	fmt.Fprintf(w, "total write-backs: %d of %d writes (the shape to match: almost all intervals in the '10 and larger' bucket)\n",
		h.Total()+1, sys.Stats(0).L1.Kind(2).Total)
	return nil
}

// Table5 prints the characteristics of the three synthetic traces.
func Table5(w io.Writer, scale float64) error {
	fmt.Fprintf(w, "%-8s %-5s %-11s %-12s %-11s %-11s %s\n",
		"trace", "cpus", "total refs", "instr count", "data read", "data write", "ctx switches")
	for _, preset := range tracegen.Presets() {
		tc := scaled(preset, scale)
		gen, err := tracegen.New(tc)
		if err != nil {
			return err
		}
		c, err := trace.Summarize(gen)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s %-5d %-11d %-12d %-11d %-11d %d\n",
			tc.Name, c.CPUs, c.TotalRefs, c.Instrs, c.Reads, c.Writes, c.CtxSwitches)
	}
	return nil
}

// hitRatioRows runs one trace over the given size pairs for both the V-R
// and R-R organizations — a single sweep over all pairs×organizations —
// and prints the paper's h1/h2 rows.
func hitRatioRows(w io.Writer, tc tracegen.Config, pairs []sizePair) error {
	scs := make([]system.Config, 0, 2*len(pairs))
	for _, p := range pairs {
		scs = append(scs,
			machineConfig(tc, p, system.VR),
			machineConfig(tc, p, system.RRInclusion))
	}
	systems, err := runSweep(tc, scs)
	if err != nil {
		return err
	}
	type cell struct{ h1vr, h1rr, h2vr, h2rr float64 }
	cells := make([]cell, len(pairs))
	for i := range pairs {
		av, ar := systems[2*i].Aggregate(), systems[2*i+1].Aggregate()
		cells[i] = cell{av.H1, ar.H1, av.H2, ar.H2}
	}
	fmt.Fprintf(w, "%-6s", "sizes")
	for _, p := range pairs {
		fmt.Fprintf(w, " %-9s", p.label)
	}
	fmt.Fprintln(w)
	row := func(name string, get func(cell) float64) {
		fmt.Fprintf(w, "%-6s", name)
		for _, c := range cells {
			fmt.Fprintf(w, " %-9.3f", get(c))
		}
		fmt.Fprintln(w)
	}
	row("h1VR", func(c cell) float64 { return c.h1vr })
	row("h1RR", func(c cell) float64 { return c.h1rr })
	row("h2VR", func(c cell) float64 { return c.h2vr })
	row("h2RR", func(c cell) float64 { return c.h2rr })
	return nil
}

// Table6 reproduces the hit-ratio comparison for the main cache sizes.
func Table6(w io.Writer, scale float64) error {
	for _, preset := range tracegen.Presets() {
		tc := scaled(preset, scale)
		fmt.Fprintf(w, "trace: %s\n", tc.Name)
		if err := hitRatioRows(w, tc, mainSizePairs()); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table7 reproduces the hit-ratio comparison for small first-level caches.
func Table7(w io.Writer, scale float64) error {
	for _, preset := range tracegen.Presets() {
		tc := scaled(preset, scale)
		fmt.Fprintf(w, "trace: %s\n", tc.Name)
		if err := hitRatioRows(w, tc, smallSizePairs()); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// splitTable runs one trace with split and unified first levels over the
// main size pairs and prints the paper's per-kind hit-ratio rows.
func splitTable(w io.Writer, tc tracegen.Config) error {
	pairs := mainSizePairs()
	scs := make([]system.Config, 0, 2*len(pairs))
	for _, p := range pairs {
		sc := machineConfig(tc, p, system.VR)
		sc.Split = true
		scs = append(scs, sc)
		sc.Split = false
		scs = append(scs, sc)
	}
	systems, err := runSweep(tc, scs)
	if err != nil {
		return err
	}
	type agg = system.AggregateStats
	splits := make([]agg, len(pairs))
	unis := make([]agg, len(pairs))
	for i := range pairs {
		splits[i] = systems[2*i].Aggregate()
		unis[i] = systems[2*i+1].Aggregate()
	}
	fmt.Fprintf(w, "%-24s", tc.Name)
	for _, p := range pairs {
		fmt.Fprintf(w, " %-9s", p.label)
	}
	fmt.Fprintln(w)
	row := func(name string, from []agg, get func(agg) float64) {
		fmt.Fprintf(w, "%-24s", name)
		for _, a := range from {
			fmt.Fprintf(w, " %-9.3f", get(a))
		}
		fmt.Fprintln(w)
	}
	row("data read    split", splits, func(a agg) float64 { return a.L1.DataRead })
	row("             unified", unis, func(a agg) float64 { return a.L1.DataRead })
	row("data write   split", splits, func(a agg) float64 { return a.L1.DataWrite })
	row("             unified", unis, func(a agg) float64 { return a.L1.DataWrite })
	row("instruction  split", splits, func(a agg) float64 { return a.L1.Instr })
	row("             unified", unis, func(a agg) float64 { return a.L1.Instr })
	row("overall      split", splits, func(a agg) float64 { return a.L1.Overall })
	row("             unified", unis, func(a agg) float64 { return a.L1.Overall })
	return nil
}

// Table8 compares split and unified first levels on thor.
func Table8(w io.Writer, scale float64) error {
	return splitTable(w, scaled(tracegen.ThorLike(), scale))
}

// Table9 compares split and unified first levels on pops.
func Table9(w io.Writer, scale float64) error {
	return splitTable(w, scaled(tracegen.PopsLike(), scale))
}

// Table10 compares split and unified first levels on abaqus.
func Table10(w io.Writer, scale float64) error {
	return splitTable(w, scaled(tracegen.AbaqusLike(), scale))
}
