package experiments

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"repro/internal/cycles"
	"repro/internal/system"
	"repro/internal/timemodel"
	"repro/internal/tracegen"
)

// timedOrgs are the organizations every timed test sweeps.
var timedOrgs = []system.Organization{system.VR, system.RRInclusion, system.RRNoInclusion}

// runTimed drives one preset (with the given CPU count) through each
// organization with a cycle engine attached, returning the engines and
// systems in org order.
func runTimed(t *testing.T, tc tracegen.Config, cpus int, cp cycles.Params) ([]*cycles.Engine, []*system.System) {
	t.Helper()
	tc = tc.Scaled(testScale)
	tc.CPUs = cpus
	p := mainSizePairs()[2]
	engines := make([]*cycles.Engine, len(timedOrgs))
	scs := make([]system.Config, len(timedOrgs))
	for i, org := range timedOrgs {
		engines[i] = cycles.MustNew(cp, nil)
		scs[i] = machineConfig(tc, p, org)
		scs[i].Cycles = engines[i]
	}
	systems, err := runSweep(tc, scs)
	if err != nil {
		t.Fatal(err)
	}
	return engines, systems
}

// TestMeasuredMatchesAnalytic is the differential acceptance criterion: with
// one CPU, no bus occupancy and no contention, the engine is charging
// exactly one t1/t2/tm term per reference, so its measured average must
// equal the Section 4 closed form evaluated on the run's own hit ratios —
// for every preset and every organization, to float rounding.
func TestMeasuredMatchesAnalytic(t *testing.T) {
	presets := []tracegen.Config{
		tracegen.PopsLike(), tracegen.ThorLike(), tracegen.AbaqusLike(),
	}
	for _, tc := range presets {
		engines, systems := runTimed(t, tc, 1, cycles.DefaultParams())
		for i, org := range timedOrgs {
			agg := systems[i].Aggregate()
			mp := timemodel.DefaultParams(agg.H1, agg.H2)
			analytic := timemodel.AccessTime(mp)
			measured := engines[i].Tacc()
			if diff := math.Abs(measured - analytic); diff > 1e-9 {
				t.Errorf("%s/%s: measured %.12f vs analytic %.12f (diff %g)",
					tc.Name, org, measured, analytic, diff)
			}
			// RRAccessTime with zero slow-down is the same equation; the
			// measured time must agree with it too.
			if diff := math.Abs(measured - timemodel.RRAccessTime(mp, 0)); diff > 1e-9 {
				t.Errorf("%s/%s: measured %.12f vs RR analytic %.12f",
					tc.Name, org, measured, timemodel.RRAccessTime(mp, 0))
			}
		}
	}
}

// TestTaccMonotoneInLatencies is the property the engine's arithmetic
// guarantees: every clock is a composition of max and + over non-negative
// terms, so the measured Tacc is monotonically non-decreasing in the memory
// latency, in the bus occupancies, and in switching contention on.
func TestTaccMonotoneInLatencies(t *testing.T) {
	base := cycles.ContentionParams()

	slower := base
	slower.TM *= 2
	busier := base
	busier.BusMemOcc *= 2
	busier.BusWBOcc *= 2
	quiet := base
	quiet.Contention = false

	tc := tracegen.PopsLike()
	baseEng, _ := runTimed(t, tc, 4, base)
	slowEng, _ := runTimed(t, tc, 4, slower)
	busyEng, _ := runTimed(t, tc, 4, busier)
	quietEng, _ := runTimed(t, tc, 4, quiet)

	for i, org := range timedOrgs {
		b := baseEng[i].Tacc()
		if s := slowEng[i].Tacc(); s < b {
			t.Errorf("%s: doubling tm lowered Tacc: %.4f -> %.4f", org, b, s)
		}
		if u := busyEng[i].Tacc(); u < b {
			t.Errorf("%s: doubling bus occupancy lowered Tacc: %.4f -> %.4f", org, b, u)
		}
		if q := quietEng[i].Tacc(); q > b {
			t.Errorf("%s: disabling contention raised Tacc: %.4f -> %.4f", org, q, b)
		}
	}
}

// TestTaccMonotoneInCPUCount adds processors to the same shared bus and
// requires the measured access time never to improve — and, the acceptance
// criterion, the 4-CPU machine to be strictly slower than the 1-CPU machine
// under contention.
func TestTaccMonotoneInCPUCount(t *testing.T) {
	cp := cycles.ContentionParams()
	tc := tracegen.PopsLike()
	taccs := make(map[int][]float64)
	for _, n := range []int{1, 2, 4} {
		engines, _ := runTimed(t, tc, n, cp)
		for _, e := range engines {
			taccs[n] = append(taccs[n], e.Tacc())
		}
	}
	for i, org := range timedOrgs {
		if taccs[2][i] < taccs[1][i] || taccs[4][i] < taccs[2][i] {
			t.Errorf("%s: Tacc not monotone in CPU count: 1->%.4f 2->%.4f 4->%.4f",
				org, taccs[1][i], taccs[2][i], taccs[4][i])
		}
		if taccs[4][i] <= taccs[1][i] {
			t.Errorf("%s: 4-CPU Tacc %.4f not strictly above 1-CPU %.4f under contention",
				org, taccs[4][i], taccs[1][i])
		}
	}
}

// TestClocksNeverRunBackwards applies the trace one reference at a time and
// samples every agent clock along the way: simulation time only moves
// forward.
func TestClocksNeverRunBackwards(t *testing.T) {
	tc := tracegen.PopsLike().Scaled(testScale)
	eng := cycles.MustNew(cycles.ContentionParams(), nil)
	sc := machineConfig(tc, mainSizePairs()[2], system.VR)
	sc.Cycles = eng
	sys, err := system.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.SetupSharedMappings(sys.MMU()); err != nil {
		t.Fatal(err)
	}
	gen, err := tracegen.New(tc)
	if err != nil {
		t.Fatal(err)
	}
	last := make([]uint64, tc.CPUs)
	for {
		ref, err := gen.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Apply(ref); err != nil {
			t.Fatal(err)
		}
		for cpu := 0; cpu < tc.CPUs; cpu++ {
			if c := eng.Agent(cpu).Clock; c < last[cpu] {
				t.Fatalf("cpu %d clock ran backwards: %d -> %d", cpu, last[cpu], c)
			} else {
				last[cpu] = c
			}
		}
	}
	for cpu := 0; cpu < tc.CPUs; cpu++ {
		at := eng.Agent(cpu)
		if at.Clock != at.Breakdown.Total() {
			t.Errorf("cpu %d: clock %d != breakdown total %d", cpu, at.Clock, at.Breakdown.Total())
		}
	}
}

// TestTimedSweepDeterminism pins the timed experiments' output: byte-
// identical across repeated sweep runs, and byte-identical between the
// sweep engine and the sequential reference loop. Timing measurements ride
// the same reference-serial order as the functional counters, so the sweep
// engine's fan-out must not perturb them.
func TestTimedSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every timed experiment three times")
	}
	defer func() { useSweep = true }()
	for _, id := range []string{"timedpops", "timedthor", "timedabaqus"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(id, func(t *testing.T) {
			var first, second, seq bytes.Buffer
			useSweep = true
			if err := e.Run(&first, testScale); err != nil {
				t.Fatalf("sweep run 1: %v", err)
			}
			if err := e.Run(&second, testScale); err != nil {
				t.Fatalf("sweep run 2: %v", err)
			}
			useSweep = false
			if err := e.Run(&seq, testScale); err != nil {
				t.Fatalf("sequential: %v", err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Errorf("sweep output differs between identical runs\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
					first.String(), second.String())
			}
			if !bytes.Equal(first.Bytes(), seq.Bytes()) {
				t.Errorf("output differs between sweep and sequential engines\n--- sweep ---\n%s\n--- sequential ---\n%s",
					first.String(), seq.String())
			}
		})
	}
}
