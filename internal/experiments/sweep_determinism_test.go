package experiments

import (
	"bytes"
	"testing"
)

// sweptExperiments lists every experiment ported onto the sweep engine.
var sweptExperiments = []string{
	"table6", "table7", "table8", "table9", "table10",
	"table11", "table12", "table13",
	"fig4", "fig5", "fig6",
	"assocsweep", "assocbound", "scaling", "tlb",
	"wbdepth", "eagerflush", "pidtags", "protocol", "replacement",
	"writepolicy", "bandwidth",
}

// TestSweepOutputMatchesSequential is the acceptance criterion for the sweep
// port: every experiment's table/figure output must be byte-identical
// whether the configurations run through the single-pass engine or through
// the reference one-at-a-time loop.
func TestSweepOutputMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every swept experiment twice")
	}
	defer func() { useSweep = true }()
	for _, id := range sweptExperiments {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(id, func(t *testing.T) {
			var seq, swp bytes.Buffer
			useSweep = false
			if err := e.Run(&seq, testScale); err != nil {
				t.Fatalf("sequential: %v", err)
			}
			useSweep = true
			if err := e.Run(&swp, testScale); err != nil {
				t.Fatalf("sweep: %v", err)
			}
			if !bytes.Equal(seq.Bytes(), swp.Bytes()) {
				t.Errorf("output differs between sweep and sequential engines\n--- sequential ---\n%s\n--- sweep ---\n%s",
					seq.String(), swp.String())
			}
		})
	}
}
