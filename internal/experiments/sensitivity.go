package experiments

import (
	"fmt"
	"io"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// AssocSweep extends the paper's evaluation — which considered only
// direct-mapped caches "for simplicity" — across first- and second-level
// associativities. Higher associativity lifts h1 slightly and (with the
// relaxed replacement rule) makes inclusion invalidations rarer.
func AssocSweep(w io.Writer, scale float64) error {
	tc := scaled(tracegen.PopsLike(), scale)
	fmt.Fprintf(w, "V-R hierarchy, 16K/256K, pops\n")
	fmt.Fprintf(w, "%-5s %-5s %-8s %-8s %-12s %s\n", "A1", "A2", "h1", "h2", "incl-invals", "synonyms")
	assocs := []int{1, 2, 4}
	var scs []system.Config
	for _, a1 := range assocs {
		for _, a2 := range assocs {
			sc := machineConfig(tc, mainSizePairs()[2], system.VR)
			sc.L1.Assoc = a1
			sc.L2.Assoc = a2
			scs = append(scs, sc)
		}
	}
	systems, err := runSweep(tc, scs)
	if err != nil {
		return err
	}
	for i, sys := range systems {
		var invals, syns uint64
		for cpu := 0; cpu < sys.CPUs(); cpu++ {
			st := sys.Stats(cpu)
			invals += st.InclusionInvals
			syns += st.SynonymTotal() - st.Synonyms[core.SynNone]
		}
		agg := sys.Aggregate()
		fmt.Fprintf(w, "%-5d %-5d %-8.3f %-8.3f %-12d %d\n",
			assocs[i/len(assocs)], assocs[i%len(assocs)], agg.H1, agg.H2, invals, syns)
	}
	return nil
}

// PageSize sweeps the page size under a synonym-heavy alias workload: one
// process maps a segment at two virtual bases one page apart and reads
// through both names alternately. When the V-cache index fits inside the
// page offset (cache size <= page size x associativity) the two names
// share a set and every resolution is a sameset retag; with smaller pages
// the names index different sets and the R-cache must issue moves. This is
// the cache-size-vs-page-size condition of Section 4, seen from the
// synonym side.
func PageSize(w io.Writer, _ float64) error {
	fmt.Fprintf(w, "V-R 16K/256K direct-mapped; one segment mapped at two bases a page apart;\n")
	fmt.Fprintf(w, "8k alternating reads through the two names\n")
	fmt.Fprintf(w, "%-10s %-10s %-8s %-10s %s\n",
		"page", "sameset", "move", "buffered", "V-index bits beyond page offset")
	for _, page := range []uint64{1 << 10, 4 << 10, 16 << 10, 32 << 10} {
		sc := system.Config{
			CPUs:         1,
			Organization: system.VR,
			PageSize:     page,
			L1:           mainGeom(16 << 10),
			L2:           mainGeomL2(256 << 10),
			CheckOracle:  true,
		}
		sys, err := system.New(sc)
		if err != nil {
			return err
		}
		seg := sys.MMU().NewSegment(page)
		baseA := addrAlign(0x100000, page)
		baseB := baseA + page
		if err := sys.MMU().MapShared(1, vaddr(baseA), seg); err != nil {
			return err
		}
		if err := sys.MMU().MapShared(1, vaddr(baseB), seg); err != nil {
			return err
		}
		blocks := page / 16
		if blocks > 64 {
			blocks = 64
		}
		for i := 0; i < 8192; i++ {
			base := baseA
			if i%2 == 1 {
				base = baseB
			}
			// Consecutive pairs touch the same block through both names.
			off := uint64(i/2) % blocks * 16
			if _, err := sys.Apply(readRef(vaddr(base + off))); err != nil {
				return err
			}
		}
		st := sys.Stats(0)
		overlap := "none (every synonym resolves sameset)"
		if sc.L1.Size > page {
			overlap = fmt.Sprintf("%d (synonyms move between sets)", log2(sc.L1.Size/page))
		}
		fmt.Fprintf(w, "%-10d %-10d %-8d %-10d %s\n",
			page, st.Synonyms[core.SynSameSet],
			st.Synonyms[core.SynMove]+st.Synonyms[core.SynCross],
			st.Synonyms[core.SynBuffered], overlap)
	}
	return nil
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// TLBPressure quantifies the paper's cost argument: the V-R organization
// reaches its TLB only on first-level misses, so the TLB sees an order of
// magnitude fewer lookups than the R-R baseline's per-reference TLB and
// "does not have to be implemented in fast logic". Small, slow TLBs that
// would cripple an R-R hierarchy barely matter to V-R.
func TLBPressure(w io.Writer, scale float64) error {
	tc := scaled(tracegen.PopsLike(), scale)
	fmt.Fprintf(w, "%-13s %-8s %-14s %-14s %s\n",
		"organization", "entries", "TLB lookups", "lookups/1kref", "TLB miss ratio")
	orgs := []system.Organization{system.VR, system.RRInclusion}
	sizes := []int{8, 64}
	var scs []system.Config
	for _, org := range orgs {
		for _, entries := range sizes {
			sc := machineConfig(tc, mainSizePairs()[2], org)
			sc.TLBEntries = entries
			sc.TLBAssoc = 2
			scs = append(scs, sc)
		}
	}
	systems, err := runSweep(tc, scs)
	if err != nil {
		return err
	}
	for i, sys := range systems {
		var hits, misses uint64
		for cpu := 0; cpu < sys.CPUs(); cpu++ {
			st := sys.Stats(cpu)
			hits += st.TLB.Hits
			misses += st.TLB.Misses
		}
		lookups := hits + misses
		missRatio := 0.0
		if lookups > 0 {
			missRatio = float64(misses) / float64(lookups)
		}
		fmt.Fprintf(w, "%-13s %-8d %-14d %-14.1f %.4f\n",
			orgs[i/len(sizes)], sizes[i%len(sizes)], lookups,
			1000*float64(lookups)/float64(sys.Refs()), missRatio)
	}
	fmt.Fprintln(w, "\nshape to match (paper section 4): the V-R TLB is consulted only on L1 misses —")
	fmt.Fprintln(w, "an order of magnitude fewer lookups — so it can be slower and smaller, and TLB")
	fmt.Fprintln(w, "coherence can be handled at the second level.")
	return nil
}

// Helpers for the crafted alias workload.

func mainGeom(size uint64) cache.Geometry {
	return cache.Geometry{Size: size, Block: 16, Assoc: 1}
}

func mainGeomL2(size uint64) cache.Geometry {
	return cache.Geometry{Size: size, Block: 32, Assoc: 1}
}

func addrAlign(a, align uint64) uint64 { return a &^ (align - 1) }

func vaddr(a uint64) addr.VAddr { return addr.VAddr(a) }

func readRef(va addr.VAddr) trace.Ref {
	return trace.Ref{CPU: 0, Kind: trace.Read, PID: 1, Addr: va}
}
