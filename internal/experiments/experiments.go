// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a named runner that drives the synthetic
// workloads through the simulator and prints the same rows or series the
// paper reports. A scale factor shrinks the traces proportionally for quick
// runs; scale 1.0 reproduces the full published trace lengths.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/cache"
	"repro/internal/checkpoint"
	"repro/internal/sweep"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, scale float64) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: number of writes due to procedure calls (pops)", Table1},
		{"table2", "Table 2: inter-write intervals, write-through L1 (pops snapshot)", Table2},
		{"table3", "Table 3: inter-write intervals, write-back + swapped write-back", Table3},
		{"table5", "Table 5: characteristics of traces", Table5},
		{"table6", "Table 6: hit ratios of V-R and R-R hierarchies", Table6},
		{"table7", "Table 7: hit ratios for small first-level caches", Table7},
		{"fig4", "Figure 4: average access time vs R-cache slow-down (thor)", Fig4},
		{"fig5", "Figure 5: average access time vs R-cache slow-down (pops)", Fig5},
		{"fig6", "Figure 6: average access time vs R-cache slow-down (abaqus)", Fig6},
		{"timedthor", "Section 4, measured: analytic vs cycle-measured Tacc under bus contention (thor)", TimedThor},
		{"timedpops", "Section 4, measured: analytic vs cycle-measured Tacc under bus contention (pops)", TimedPops},
		{"timedabaqus", "Section 4, measured: analytic vs cycle-measured Tacc under bus contention (abaqus)", TimedAbaqus},
		{"timedhist", "Section 4, measured: latency distributions under bus contention (pops)", TimedHist},
		{"table8", "Table 8: split vs unified level-1 hit ratios (thor)", Table8},
		{"table9", "Table 9: split vs unified level-1 hit ratios (pops)", Table9},
		{"table10", "Table 10: split vs unified level-1 hit ratios (abaqus)", Table10},
		{"table11", "Table 11: coherence messages to the first-level cache (pops)", Table11},
		{"table12", "Table 12: coherence messages to the first-level cache (thor)", Table12},
		{"table13", "Table 13: coherence messages to the first-level cache (abaqus)", Table13},
		{"inclusion", "Section 2: inclusion invalidations with a 2-way 16K V-cache (pops)", InclusionInvalidations},
		{"assoc", "Section 2: associativity lower bound for strict inclusion", AssocBound},
		{"assocbound", "Section 2: the bound validated empirically (pops)", AssocBoundEmpirical},
		{"wbdepth", "Ablation: write-buffer depth vs stalls (pops)", WriteBufferDepth},
		{"eagerflush", "Ablation: swapped-valid lazy flush vs eager flush (abaqus)", EagerFlush},
		{"pidtags", "Ablation: lazy flush vs eager flush vs PID-tagged V-cache (abaqus)", PIDTags},
		{"protocol", "Extension: write-invalidate vs write-update coherence (pops)", UpdateProtocol},
		{"replacement", "Ablation: relaxed vs naive L2 victim selection (pops)", RelaxedReplacement},
		{"writepolicy", "Section 2: write-through vs write-back first level (pops)", WritePolicy},
		{"synonym", "Extension: synonym strategies — v-pointer vs reverse-lookup table vs victim cache (pops)", SynonymStrategy},
		{"scaling", "Future work: shielding factor vs CPU count (pops)", Scaling},
		{"bandwidth", "Motivation: bus occupancy per organization (pops)", Bandwidth},
		{"assocsweep", "Sensitivity: associativity beyond the paper's direct-mapped caches (pops)", AssocSweep},
		{"pagesize", "Sensitivity: page size and the synonym resolution mix (pops)", PageSize},
		{"tlb", "Section 4: TLB pressure, V-R vs R-R (pops)", TLBPressure},
		{"attr", "Telemetry: cycle attribution by mechanism, V-R vs R-R (pops)", Attribution},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// IDs lists all experiment ids, sorted.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// sizePair is one first-level/second-level configuration column of the
// paper's tables.
type sizePair struct {
	label  string
	l1, l2 uint64
}

// The paper's main columns (Table 6, 8-13): B1 = 16, B2 = 32,
// direct-mapped at both levels.
func mainSizePairs() []sizePair {
	return []sizePair{
		{"4K/64K", 4 << 10, 64 << 10},
		{"8K/128K", 8 << 10, 128 << 10},
		{"16K/256K", 16 << 10, 256 << 10},
	}
}

// Table 7's small first-level columns.
func smallSizePairs() []sizePair {
	return []sizePair{
		{".5K/64K", 512, 64 << 10},
		{"1K/128K", 1 << 10, 128 << 10},
		{"2K/256K", 2 << 10, 256 << 10},
	}
}

// machineConfig builds the standard direct-mapped machine for a trace and
// size pair.
func machineConfig(tc tracegen.Config, p sizePair, org system.Organization) system.Config {
	return system.Config{
		CPUs:         tc.CPUs,
		Organization: org,
		PageSize:     tc.PageSize,
		L1:           cache.Geometry{Size: p.l1, Block: 16, Assoc: 1},
		L2:           cache.Geometry{Size: p.l2, Block: 32, Assoc: 1},
	}
}

// runWorkload drives a synthetic workload through a machine and returns
// the machine for inspection.
func runWorkload(tc tracegen.Config, sc system.Config) (*system.System, *tracegen.Generator, error) {
	sys, err := system.New(sc)
	if err != nil {
		return nil, nil, err
	}
	if err := tc.SetupSharedMappings(sys.MMU()); err != nil {
		return nil, nil, err
	}
	gen, err := tracegen.New(tc)
	if err != nil {
		return nil, nil, err
	}
	if err := sys.Run(gen); err != nil {
		return nil, nil, err
	}
	return sys, gen, nil
}

// useSweep selects the engine behind runSweep: the single-pass sweep engine
// (default) or the reference per-configuration sequential loop. The
// determinism test flips it to prove both produce byte-identical output.
var useSweep = true

// shardCount and shardWarmup, when shardCount > 1, route runSweep through
// approximate time-sharded execution (internal/checkpoint): each machine
// configuration's trace is split into shardCount windows simulated in
// parallel, each warmed with shardWarmup references. Hit ratios then agree
// with the sequential run to within the warm-up's residual (~1e-3 at 64K).
// Set by SetSharding from cmd/experiments -shards.
var (
	shardCount  int
	shardWarmup uint64
)

// SetSharding configures time-sharded sweeps. shards < 2 restores the
// default single-pass engine.
func SetSharding(shards int, warmup uint64) {
	shardCount, shardWarmup = shards, warmup
}

// runSharded executes one configuration's run as shardCount parallel time
// windows.
func runSharded(tc tracegen.Config, sc system.Config) (*system.System, error) {
	sys, _, err := checkpoint.ShardedRun(checkpoint.ShardOptions{
		Shards:    shardCount,
		Warmup:    shardWarmup,
		TotalRefs: uint64(tc.TotalRefs),
		Signature: tc.Signature() + "|" + sc.Organization.String(),
		NewSystem: func() (*system.System, error) {
			sys, err := system.New(sc)
			if err != nil {
				return nil, err
			}
			if err := tc.SetupSharedMappings(sys.MMU()); err != nil {
				return nil, err
			}
			return sys, nil
		},
		Source: func() (trace.Reader, error) {
			return tracegen.New(tc)
		},
	})
	return sys, err
}

// runSweep drives one synthetic workload through every machine
// configuration in scs. With the sweep engine, the trace is generated once
// and broadcast to all systems, each simulating in its own goroutine; the
// fallback regenerates and re-runs the workload per configuration. The
// returned systems parallel scs.
func runSweep(tc tracegen.Config, scs []system.Config) ([]*system.System, error) {
	systems := make([]*system.System, len(scs))
	if shardCount > 1 {
		for i, sc := range scs {
			sys, err := runSharded(tc, sc)
			if err != nil {
				return nil, err
			}
			systems[i] = sys
		}
		return systems, nil
	}
	for i, sc := range scs {
		sys, err := system.New(sc)
		if err != nil {
			return nil, err
		}
		if err := tc.SetupSharedMappings(sys.MMU()); err != nil {
			return nil, err
		}
		systems[i] = sys
	}
	if !useSweep {
		for _, sys := range systems {
			gen, err := tracegen.New(tc)
			if err != nil {
				return nil, err
			}
			if err := sys.Run(gen); err != nil {
				return nil, err
			}
		}
		return systems, nil
	}
	gen, err := tracegen.New(tc)
	if err != nil {
		return nil, err
	}
	if err := sweep.Run(gen, systems, sweep.Options{}); err != nil {
		return nil, err
	}
	return systems, nil
}

// runLimited is runWorkload but stops after n references (the paper's
// "snapshot" tables).
func runLimited(tc tracegen.Config, sc system.Config, n int) (*system.System, error) {
	sys, err := system.New(sc)
	if err != nil {
		return nil, err
	}
	if err := tc.SetupSharedMappings(sys.MMU()); err != nil {
		return nil, err
	}
	gen, err := tracegen.New(tc)
	if err != nil {
		return nil, err
	}
	if err := sys.Run(trace.NewLimit(gen, n)); err != nil {
		return nil, err
	}
	return sys, nil
}

// scaled applies the run's scale factor to a preset.
func scaled(tc tracegen.Config, scale float64) tracegen.Config {
	if scale <= 0 || scale == 1 {
		return tc
	}
	return tc.Scaled(scale)
}
