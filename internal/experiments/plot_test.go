package experiments

import (
	"strings"
	"testing"

	"repro/internal/timemodel"
)

func TestPlotCurvesRenders(t *testing.T) {
	vr := timemodel.DefaultParams(0.85, 0.55)
	rr := timemodel.DefaultParams(0.88, 0.50)
	pts := timemodel.Curve(vr, rr, 0.10, 10)
	var b strings.Builder
	plotCurves(&b, pts)
	out := b.String()
	if !strings.Contains(out, "v") || !strings.Contains(out, "r") {
		t.Fatalf("plot missing series marks:\n%s", out)
	}
	if !strings.Contains(out, "V-R (flat)") {
		t.Error("plot missing legend")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 15 { // 12 grid rows + axis + labels + legend
		t.Errorf("plot has %d lines", len(lines))
	}
}

func TestPlotCurvesFlatSeries(t *testing.T) {
	// Identical parameters: every column renders the overlap mark.
	p := timemodel.DefaultParams(0.9, 0.5)
	pts := timemodel.Curve(p, p, 0, 10)
	var b strings.Builder
	plotCurves(&b, pts)
	out := b.String()
	if !strings.Contains(out, "*") {
		t.Error("overlapping curves should render '*'")
	}
	// No separate series marks inside the plot frame (the legend line is
	// excluded).
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "|") {
			continue
		}
		body := line[strings.Index(line, "|"):]
		if strings.ContainsAny(body, "vr") {
			t.Errorf("identical curves rendered as separate series: %q", line)
		}
	}
}

func TestPlotCurvesEmpty(t *testing.T) {
	var b strings.Builder
	plotCurves(&b, nil) // must not panic
	if b.Len() != 0 {
		t.Error("empty input should render nothing")
	}
}

func TestPlotAxisLabels(t *testing.T) {
	vr := timemodel.DefaultParams(0.85, 0.55)
	rr := timemodel.DefaultParams(0.88, 0.50)
	var b strings.Builder
	plotCurves(&b, timemodel.Curve(vr, rr, 0.10, 10))
	out := b.String()
	if !strings.Contains(out, "0.00") || !strings.Contains(out, "0.10") {
		t.Error("x-axis labels missing")
	}
}
