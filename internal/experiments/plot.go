package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/timemodel"
)

// plotCurves renders a Figure 4-6 style ASCII chart: average access time
// (y) versus R-cache slow-down (x), V-R as a flat line of 'v' marks and
// R-R as a rising line of 'r' marks ('*' where they overlap).
func plotCurves(w io.Writer, pts []timemodel.CurvePoint) {
	const width, height = 56, 12
	if len(pts) == 0 {
		return
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		lo = math.Min(lo, math.Min(p.VR, p.RR))
		hi = math.Max(hi, math.Max(p.VR, p.RR))
	}
	if hi-lo < 1e-9 {
		hi = lo + 1e-9
	}
	// Pad the range slightly so curves do not hug the frame.
	pad := (hi - lo) * 0.1
	lo, hi = lo-pad, hi+pad

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	row := func(v float64) int {
		r := int(math.Round((hi - v) / (hi - lo) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for i, p := range pts {
		col := i * (width - 1) / (len(pts) - 1)
		rv, rr := row(p.VR), row(p.RR)
		if rv == rr {
			grid[rv][col] = '*'
			continue
		}
		grid[rv][col] = 'v'
		grid[rr][col] = 'r'
	}
	for i, line := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.3f ", hi)
		case height - 1:
			label = fmt.Sprintf("%7.3f ", lo)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s%-*.2f%*.2f\n", strings.Repeat(" ", 9), width/2,
		pts[0].Slowdown, width/2-1, pts[len(pts)-1].Slowdown)
	fmt.Fprintf(w, "%sv = V-R (flat)   r = R-R (rises with translation slow-down)\n",
		strings.Repeat(" ", 9))
}
