package experiments

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/system"
	"repro/internal/tracegen"
)

// The headline shape claims of the ablation/extension experiments, asserted
// as regression guards at test scale.

func TestWritePolicyShape(t *testing.T) {
	tc := scaled(tracegen.PopsLike(), 0.02)
	runPolicy := func(wt bool) (down, stalls uint64, writeHit float64) {
		sc := machineConfig(tc, mainSizePairs()[2], system.VR)
		sc.L1WriteThrough = wt
		sc.WriteBufDepth = 1
		sc.WriteBufLatency = 6
		sys, _, err := runWorkload(tc, sc)
		if err != nil {
			t.Fatal(err)
		}
		for cpu := 0; cpu < sys.CPUs(); cpu++ {
			st := sys.Stats(cpu)
			stalls += st.BufferStalls
			if wt {
				down += st.L1.Kind(2).Total
			} else {
				down += st.WriteBacks
			}
		}
		return down, stalls, sys.Aggregate().L1.DataWrite
	}
	wtDown, wtStalls, wtHit := runPolicy(true)
	wbDown, wbStalls, wbHit := runPolicy(false)
	if wtDown <= 2*wbDown {
		t.Errorf("write-through should send far more writes down: %d vs %d", wtDown, wbDown)
	}
	if wtStalls <= wbStalls {
		t.Errorf("write-through should stall more: %d vs %d", wtStalls, wbStalls)
	}
	if wtHit >= wbHit {
		t.Errorf("no-allocate write hit ratio %.3f should trail write-back %.3f", wtHit, wbHit)
	}
}

func TestScalingFactorGrowsWithCPUs(t *testing.T) {
	factor := func(cpus int) float64 {
		tc := scaled(tracegen.PopsLike(), 0.02)
		tc.CPUs = cpus
		tc.TotalRefs = tc.TotalRefs / 4 * cpus
		var per [2]float64
		for i, org := range []system.Organization{system.VR, system.RRNoInclusion} {
			sys, _, err := runWorkload(tc, machineConfig(tc, mainSizePairs()[2], org))
			if err != nil {
				t.Fatal(err)
			}
			var total uint64
			for _, m := range sys.CoherenceMessages() {
				total += m
			}
			per[i] = float64(total) / float64(cpus)
		}
		return per[1] / per[0]
	}
	f2, f8 := factor(2), factor(8)
	if f8 <= f2 {
		t.Errorf("shielding factor should grow with CPUs: 2cpu=%.2f 8cpu=%.2f", f2, f8)
	}
}

func TestTLBPressureShape(t *testing.T) {
	tc := scaled(tracegen.PopsLike(), 0.02)
	lookups := func(org system.Organization) uint64 {
		sys, _, err := runWorkload(tc, machineConfig(tc, mainSizePairs()[2], org))
		if err != nil {
			t.Fatal(err)
		}
		var total uint64
		for cpu := 0; cpu < sys.CPUs(); cpu++ {
			st := sys.Stats(cpu)
			total += st.TLB.Hits + st.TLB.Misses
		}
		return total
	}
	vr, rr := lookups(system.VR), lookups(system.RRInclusion)
	if vr*5 >= rr {
		t.Errorf("V-R TLB pressure should be several times lower: %d vs %d", vr, rr)
	}
}

func TestPageSizeOutputSplitsByCondition(t *testing.T) {
	var b strings.Builder
	if err := PageSize(&b, 1); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Extract the sameset and move columns per page row.
	re := regexp.MustCompile(`(?m)^(\d+)\s+(\d+)\s+(\d+)`)
	rows := re.FindAllStringSubmatch(out, -1)
	if len(rows) != 4 {
		t.Fatalf("expected 4 page rows, got %d:\n%s", len(rows), out)
	}
	for _, row := range rows {
		page, _ := strconv.Atoi(row[1])
		sameset, _ := strconv.Atoi(row[2])
		move, _ := strconv.Atoi(row[3])
		if page < 16<<10 {
			if move == 0 || sameset != 0 {
				t.Errorf("page %d: want moves only, got sameset=%d move=%d", page, sameset, move)
			}
		} else {
			if sameset == 0 || move != 0 {
				t.Errorf("page %d: want sameset only, got sameset=%d move=%d", page, sameset, move)
			}
		}
	}
}

func TestAssocBoundEmpiricalShape(t *testing.T) {
	var b strings.Builder
	if err := AssocBoundEmpirical(&b, 0.02); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "analytic bound: A2 >= 16") {
		t.Fatalf("bound missing:\n%s", out)
	}
	// Parse per-A2 failure counts; they must be non-increasing and zero at
	// the bound.
	re := regexp.MustCompile(`(?m)^(\d+)\s+(\d+)`)
	rows := re.FindAllStringSubmatch(out, -1)
	if len(rows) < 5 {
		t.Fatalf("rows = %d:\n%s", len(rows), out)
	}
	prev := int(^uint(0) >> 1)
	for _, row := range rows {
		a2, _ := strconv.Atoi(row[1])
		fails, _ := strconv.Atoi(row[2])
		if fails > prev {
			t.Errorf("failures rose at A2=%d: %d > %d", a2, fails, prev)
		}
		prev = fails
		if a2 >= 16 && fails != 0 {
			t.Errorf("failures at A2=%d despite the bound: %d", a2, fails)
		}
	}
}

func TestPIDTagsOutputLabels(t *testing.T) {
	var b strings.Builder
	if err := PIDTags(&b, 0.01); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lazy swapped-valid", "eager flush", "PID-tagged"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("pidtags missing %q", want)
		}
	}
}

func TestUpdateProtocolOutputLabels(t *testing.T) {
	var b strings.Builder
	if err := UpdateProtocol(&b, 0.01); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "write-invalidate:") || !strings.Contains(out, "write-update:") {
		t.Errorf("protocol output missing sections:\n%s", out)
	}
}
