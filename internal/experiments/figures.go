package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/system"
	"repro/internal/timemodel"
	"repro/internal/tracegen"
)

// figure runs one trace over the main size pairs for both organizations
// and prints the Figure 4-6 series: average access time (t2 = 4·t1) versus
// the R-R first-level slow-down due to address translation, one pair of
// curves per size configuration, plus the crossover points.
func figure(w io.Writer, tc tracegen.Config) error {
	fmt.Fprintf(w, "average access time vs first-level R-cache slow-down (%s, t1=1 t2=4 tm=20)\n", tc.Name)
	pairs := mainSizePairs()
	scs := make([]system.Config, 0, 2*len(pairs))
	for _, p := range pairs {
		scs = append(scs,
			machineConfig(tc, p, system.VR),
			machineConfig(tc, p, system.RRInclusion))
	}
	systems, err := runSweep(tc, scs)
	if err != nil {
		return err
	}
	for i, p := range pairs {
		av, ar := systems[2*i].Aggregate(), systems[2*i+1].Aggregate()
		vr := timemodel.DefaultParams(av.H1, av.H2)
		rr := timemodel.DefaultParams(ar.H1, ar.H2)
		fmt.Fprintf(w, "\nsizes %s: h1VR=%.3f h2VR=%.3f  h1RR=%.3f h2RR=%.3f\n",
			p.label, av.H1, av.H2, ar.H1, ar.H2)
		pts := timemodel.Curve(vr, rr, 0.10, 10)
		fmt.Fprintf(w, "%-10s %-10s %s\n", "slowdown", "VR Tacc", "RR Tacc")
		for _, pt := range pts {
			fmt.Fprintf(w, "%-10.2f %-10.4f %.4f\n", pt.Slowdown, pt.VR, pt.RR)
		}
		plotCurves(w, pts)
		x := timemodel.Crossover(vr, rr)
		switch {
		case math.IsInf(x, 1):
			fmt.Fprintf(w, "crossover: none (degenerate)\n")
		case x <= 0:
			fmt.Fprintf(w, "crossover: V-R faster at any translation penalty (%.2f%%)\n", 100*x)
		default:
			fmt.Fprintf(w, "crossover: V-R wins once translation slows the R-cache by %.2f%%\n", 100*x)
		}
	}
	return nil
}

// Fig4 reproduces Figure 4 (thor): with rare context switches the curves
// start together and the R-R curve rises with the translation penalty.
func Fig4(w io.Writer, scale float64) error {
	return figure(w, scaled(tracegen.ThorLike(), scale))
}

// Fig5 reproduces Figure 5 (pops): same shape as thor.
func Fig5(w io.Writer, scale float64) error {
	return figure(w, scaled(tracegen.PopsLike(), scale))
}

// Fig6 reproduces Figure 6 (abaqus): frequent context switches give the
// R-R organization a head start, and the paper's headline crossover — V-R
// wins once translation costs ~6% — appears here.
func Fig6(w io.Writer, scale float64) error {
	return figure(w, scaled(tracegen.AbaqusLike(), scale))
}
