package probe

// WindowMetrics aggregates the headline rates over one window of N
// references: how hit ratios, synonym cost and coherence disturbance
// evolve across a trace rather than only at the end of the run.
//
// Seq and StartRef are the window's absolute position in the workload's
// reference stream: unlike Index/FirstRef (which restart with the probe),
// they stay aligned across daemon restarts when the collector is given the
// resume point via SetBase, so time-series samples from different daemon
// lifetimes of one job key to the same window sequence.
type WindowMetrics struct {
	Index    int    `json:"window"`
	Seq      uint64 `json:"seq"`      // absolute window sequence number
	FirstRef uint64 `json:"firstRef"` // 1-based, inclusive
	StartRef uint64 `json:"startRef"` // absolute 1-based starting reference
	LastRef  uint64 `json:"lastRef"`  // inclusive

	L1Hits     uint64 `json:"l1Hits"`
	L1Misses   uint64 `json:"l1Misses"`
	L2Hits     uint64 `json:"l2Hits"`
	L2Misses   uint64 `json:"l2Misses"`
	TLBMisses  uint64 `json:"tlbMisses"`
	Synonyms   uint64 `json:"synonyms"`
	WriteBacks uint64 `json:"writeBacks"`
	CohToL1    uint64 `json:"coherenceToL1"`
	Shielded   uint64 `json:"shielded"`
	BusTxns    uint64 `json:"busTxns"`

	// Cycles is the total cycle charge landed in the window (the sum of
	// every timing event's Aux), present when a cycle engine feeds the
	// probe stream. Cycles/refs is the window's measured Tacc.
	Cycles uint64 `json:"cycles,omitempty"`
}

// refs returns the number of references the window spans.
func (w WindowMetrics) refs() uint64 {
	if w.LastRef < w.FirstRef {
		return 0
	}
	return w.LastRef - w.FirstRef + 1
}

func ratio(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// L1Ratio returns the window's first-level hit ratio.
func (w WindowMetrics) L1Ratio() float64 { return ratio(w.L1Hits, w.L1Misses) }

// L2Ratio returns the window's second-level hit ratio.
func (w WindowMetrics) L2Ratio() float64 { return ratio(w.L2Hits, w.L2Misses) }

// SynonymRate returns synonym resolutions per reference — the paper's
// "considerably less than 1% of data references" claim, windowed.
func (w WindowMetrics) SynonymRate() float64 {
	if n := w.refs(); n > 0 {
		return float64(w.Synonyms) / float64(n)
	}
	return 0
}

// BusOccupancy returns bus transactions per reference, a proxy for bus
// utilization in the reference-serial simulator.
func (w WindowMetrics) BusOccupancy() float64 {
	if n := w.refs(); n > 0 {
		return float64(w.BusTxns) / float64(n)
	}
	return 0
}

// Tacc returns the window's measured cycles per reference (0 for untimed
// runs).
func (w WindowMetrics) Tacc() float64 {
	if n := w.refs(); n > 0 {
		return float64(w.Cycles) / float64(n)
	}
	return 0
}

// Windows is a Sink that folds the event stream into fixed-size windows of
// N references. OnClose, when set, observes each window as it completes —
// the CLI's live run telemetry.
type Windows struct {
	every   uint64
	base    uint64 // absolute reference offset (resume point)
	last    uint64 // newest reference index seen (probe-local)
	cur     WindowMetrics
	open    bool
	done    []WindowMetrics
	OnClose func(WindowMetrics)
}

// NewWindows creates a collector with the given window length in
// references (minimum 1).
func NewWindows(every uint64) *Windows {
	if every < 1 {
		every = 1
	}
	return &Windows{every: every}
}

// Every returns the window length.
func (w *Windows) Every() uint64 { return w.every }

// SetBase positions the collector at an absolute reference offset: the
// probe's next reference 1 corresponds to absolute reference base+1. A
// restarted job sets this to the refs already simulated at its checkpoint
// so window sequence numbers continue where the previous daemon lifetime
// left off. Call it before any event arrives.
func (w *Windows) SetBase(base uint64) { w.base = base }

// Event implements Sink.
func (w *Windows) Event(ev Event) {
	aref := w.base + 1 // ref 0 events (pre-reference) land in the current window
	if ev.Ref > 0 {
		aref = w.base + ev.Ref
		if ev.Ref > w.last {
			w.last = ev.Ref
		}
	}
	idx := int((aref - 1) / w.every)
	if !w.open || idx > w.cur.Index {
		w.roll(idx)
	}
	switch ev.Kind {
	case EvL1Hit:
		w.cur.L1Hits++
	case EvL1Miss:
		w.cur.L1Misses++
	case EvL2Hit:
		w.cur.L2Hits++
	case EvL2Miss:
		w.cur.L2Misses++
	case EvTLBMiss:
		w.cur.TLBMisses++
	case EvSynSameSet, EvSynMove, EvSynCross, EvSynBuffered:
		w.cur.Synonyms++
	case EvWriteBack:
		w.cur.WriteBacks++
	case EvCohInvalidate, EvCohFlush, EvCohInvalidateBuffer, EvCohFlushBuffer,
		EvCohUpdate, EvCohProbe, EvInclusionInval:
		w.cur.CohToL1++
	case EvShielded:
		w.cur.Shielded++
	case EvBusRead, EvBusReadMod, EvBusInvalidate, EvBusUpdate:
		w.cur.BusTxns++
	case EvTimeAccess, EvTimeTLBMiss, EvTimeBusWait, EvTimeWBStall, EvTimeCtxSwitch:
		w.cur.Cycles += ev.Aux
	}
}

// roll closes the current window (if open) and opens window idx. Window
// bounds are absolute: idx counts windows of the whole workload stream,
// not of this probe's lifetime.
func (w *Windows) roll(idx int) {
	if w.open {
		w.done = append(w.done, w.cur)
		if w.OnClose != nil {
			w.OnClose(w.cur)
		}
	}
	first := uint64(idx)*w.every + 1
	w.cur = WindowMetrics{
		Index:    idx,
		Seq:      uint64(idx),
		FirstRef: first,
		StartRef: first,
		LastRef:  uint64(idx+1) * w.every,
	}
	w.open = true
}

// CloseApplied closes every window whose whole span lies within the first
// applied absolute references — the parking daemon's flush hook. With a
// cycle engine attached, probe events can trail the reference cursor
// (operations retire after the references that issued them), so at a
// shutdown the window that just completed may still be open awaiting its
// stragglers. Closing it here keeps the persisted series gap-free across a
// restart; the trailing events are re-emitted by the restored engine in
// the next daemon lifetime and fold into the successor window. A window
// whose span is not yet fully applied stays open: the resumed lifetime
// recomputes it from the references it replays.
func (w *Windows) CloseApplied(applied uint64) {
	for w.open && w.cur.LastRef <= applied {
		w.roll(w.cur.Index + 1)
	}
}

// Close finalizes the trailing partial window, clamping its bound to the
// last reference actually seen so per-reference rates stay honest.
func (w *Windows) Close() error {
	if w.open {
		if w.last > 0 && w.base+w.last < w.cur.LastRef {
			w.cur.LastRef = w.base + w.last
		}
		w.done = append(w.done, w.cur)
		if w.OnClose != nil {
			w.OnClose(w.cur)
		}
		w.open = false
	}
	return nil
}

// Done returns the completed windows (call Close first to include the
// trailing partial one).
func (w *Windows) Done() []WindowMetrics { return w.done }
