package probe

// WindowMetrics aggregates the headline rates over one window of N
// references: how hit ratios, synonym cost and coherence disturbance
// evolve across a trace rather than only at the end of the run.
type WindowMetrics struct {
	Index    int    `json:"window"`
	FirstRef uint64 `json:"firstRef"` // 1-based, inclusive
	LastRef  uint64 `json:"lastRef"`  // inclusive

	L1Hits     uint64 `json:"l1Hits"`
	L1Misses   uint64 `json:"l1Misses"`
	L2Hits     uint64 `json:"l2Hits"`
	L2Misses   uint64 `json:"l2Misses"`
	TLBMisses  uint64 `json:"tlbMisses"`
	Synonyms   uint64 `json:"synonyms"`
	WriteBacks uint64 `json:"writeBacks"`
	CohToL1    uint64 `json:"coherenceToL1"`
	Shielded   uint64 `json:"shielded"`
	BusTxns    uint64 `json:"busTxns"`
}

// refs returns the number of references the window spans.
func (w WindowMetrics) refs() uint64 {
	if w.LastRef < w.FirstRef {
		return 0
	}
	return w.LastRef - w.FirstRef + 1
}

func ratio(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// L1Ratio returns the window's first-level hit ratio.
func (w WindowMetrics) L1Ratio() float64 { return ratio(w.L1Hits, w.L1Misses) }

// L2Ratio returns the window's second-level hit ratio.
func (w WindowMetrics) L2Ratio() float64 { return ratio(w.L2Hits, w.L2Misses) }

// SynonymRate returns synonym resolutions per reference — the paper's
// "considerably less than 1% of data references" claim, windowed.
func (w WindowMetrics) SynonymRate() float64 {
	if n := w.refs(); n > 0 {
		return float64(w.Synonyms) / float64(n)
	}
	return 0
}

// BusOccupancy returns bus transactions per reference, a proxy for bus
// utilization in the reference-serial simulator.
func (w WindowMetrics) BusOccupancy() float64 {
	if n := w.refs(); n > 0 {
		return float64(w.BusTxns) / float64(n)
	}
	return 0
}

// Windows is a Sink that folds the event stream into fixed-size windows of
// N references. OnClose, when set, observes each window as it completes —
// the CLI's live run telemetry.
type Windows struct {
	every   uint64
	last    uint64 // newest reference index seen
	cur     WindowMetrics
	open    bool
	done    []WindowMetrics
	OnClose func(WindowMetrics)
}

// NewWindows creates a collector with the given window length in
// references (minimum 1).
func NewWindows(every uint64) *Windows {
	if every < 1 {
		every = 1
	}
	return &Windows{every: every}
}

// Every returns the window length.
func (w *Windows) Every() uint64 { return w.every }

// Event implements Sink.
func (w *Windows) Event(ev Event) {
	idx := 0
	if ev.Ref > 0 {
		idx = int((ev.Ref - 1) / w.every)
		if ev.Ref > w.last {
			w.last = ev.Ref
		}
	}
	if !w.open || idx > w.cur.Index {
		w.roll(idx)
	}
	switch ev.Kind {
	case EvL1Hit:
		w.cur.L1Hits++
	case EvL1Miss:
		w.cur.L1Misses++
	case EvL2Hit:
		w.cur.L2Hits++
	case EvL2Miss:
		w.cur.L2Misses++
	case EvTLBMiss:
		w.cur.TLBMisses++
	case EvSynSameSet, EvSynMove, EvSynCross, EvSynBuffered:
		w.cur.Synonyms++
	case EvWriteBack:
		w.cur.WriteBacks++
	case EvCohInvalidate, EvCohFlush, EvCohInvalidateBuffer, EvCohFlushBuffer,
		EvCohUpdate, EvCohProbe, EvInclusionInval:
		w.cur.CohToL1++
	case EvShielded:
		w.cur.Shielded++
	case EvBusRead, EvBusReadMod, EvBusInvalidate, EvBusUpdate:
		w.cur.BusTxns++
	}
}

// roll closes the current window (if open) and opens window idx.
func (w *Windows) roll(idx int) {
	if w.open {
		w.done = append(w.done, w.cur)
		if w.OnClose != nil {
			w.OnClose(w.cur)
		}
	}
	w.cur = WindowMetrics{
		Index:    idx,
		FirstRef: uint64(idx)*w.every + 1,
		LastRef:  uint64(idx+1) * w.every,
	}
	w.open = true
}

// Close finalizes the trailing partial window, clamping its bound to the
// last reference actually seen so per-reference rates stay honest.
func (w *Windows) Close() error {
	if w.open {
		if w.last > 0 && w.last < w.cur.LastRef {
			w.cur.LastRef = w.last
		}
		w.done = append(w.done, w.cur)
		if w.OnClose != nil {
			w.OnClose(w.cur)
		}
		w.open = false
	}
	return nil
}

// Done returns the completed windows (call Close first to include the
// trailing partial one).
func (w *Windows) Done() []WindowMetrics { return w.done }
