package probe

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Log is a Sink that renders each event as one human-readable line,
// optionally filtered.
type Log struct {
	w      *bufio.Writer
	filter func(Event) bool
	err    error
}

// NewLog creates a log sink. filter may be nil (log everything).
func NewLog(w io.Writer, filter func(Event) bool) *Log {
	return &Log{w: bufio.NewWriter(w), filter: filter}
}

// Event implements Sink.
func (l *Log) Event(ev Event) {
	if l.err != nil || (l.filter != nil && !l.filter(ev)) {
		return
	}
	if _, err := fmt.Fprintln(l.w, ev); err != nil {
		l.err = err
	}
}

// Close flushes the log.
func (l *Log) Close() error {
	if err := l.w.Flush(); err != nil && l.err == nil {
		l.err = err
	}
	return l.err
}

// ParseFilter compiles a comma-separated list of event kind names or
// categories (e.g. "synonym,coh-invalidate,bus") into an event predicate.
// An empty spec accepts everything; unknown terms are an error.
func ParseFilter(spec string) (func(Event) bool, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	kinds := map[Kind]bool{}
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		matched := false
		for k := Kind(0); k < NumKinds; k++ {
			if k.String() == term || k.Category() == term {
				kinds[k] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("probe: unknown event kind or category %q", term)
		}
	}
	return func(ev Event) bool { return kinds[ev.Kind] }, nil
}
