// Package probe is the simulator's observability layer: a pluggable event
// sink with a typed event for every mechanism the paper describes — cache
// hits and misses per reference kind, TLB lookups and aborts, synonym
// resolutions, write-buffer traffic, inclusion invalidations, coherence
// messages delivered to (or shielded from) the first level, bus
// transactions, DMA, and context switches.
//
// The design goal is near-zero overhead when disabled: every component
// holds a *Probe that may be nil, and every emission site is guarded by a
// single nil check. When enabled, events flow through lock-free per-CPU
// ring buffers and are delivered to attached Sinks (a human-readable log,
// a Chrome trace_event exporter, a windowed-metrics collector, ...) in
// global emission order.
package probe

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/stats"
)

// Kind identifies one event type. Each kind corresponds to a mechanism of
// the paper (see the Observability section of DESIGN.md for the mapping).
type Kind uint8

// Event kinds.
const (
	// First-level and second-level accesses (Tables 6-10).
	EvL1Hit Kind = iota
	EvL1Miss
	EvL2Hit
	EvL2Miss

	// TLB activity. EvTLBAbort is the paper's Section 3 abort: a V-cache
	// hit cancels the translation started in parallel, so the TLB is never
	// consulted (the V-R organization's headline saving).
	EvTLBHit
	EvTLBMiss
	EvTLBAbort

	// Synonym resolutions at the second level (Section 3, Table 7's
	// "considerably less than 1%" claim). Aux carries nothing; the kinds
	// mirror core.SynonymKind.
	EvSynSameSet
	EvSynMove
	EvSynCross
	EvSynBuffered

	// A dirty victim leaving the first level (Tables 2-3). Aux bit 0 marks
	// a swapped-valid victim, bit 1 an eager context-switch flush.
	EvWriteBack

	// Write-buffer traffic: enqueue, age-out drain into the R-cache
	// (write-back(r-pointer)), synonym/invalidation cancel, coherence
	// flush, and a push that found the buffer full.
	EvWBEnqueue
	EvWBDrain
	EvWBCancel
	EvWBFlush
	EvWBStall

	// A first-level child invalidated because its second-level parent was
	// replaced (the relaxed-inclusion fallback).
	EvInclusionInval

	// Coherence messages reaching the first level (Tables 11-13, the
	// paper's Table 4 R->V messages), the no-inclusion baseline's
	// unfiltered bus probe, and a bus transaction the second level
	// absorbed without disturbing the first level (the shielding effect).
	EvCohInvalidate
	EvCohFlush
	EvCohInvalidateBuffer
	EvCohFlushBuffer
	EvCohUpdate
	EvCohProbe
	EvShielded

	// Bus transactions, by kind. Aux carries the byte size.
	EvBusRead
	EvBusReadMod
	EvBusInvalidate
	EvBusUpdate

	// DMA block transfers (the paper's problem #4: devices speak physical
	// addresses).
	EvDMARead
	EvDMAWrite

	// A context switch. Aux: 0 = lazy swapped-valid flush, 1 = eager
	// flush, 2 = no flush needed (physically-addressed or PID-tagged L1).
	EvCtxSwitch

	// Victim-cache activity (the Jouppi-style layer between L1 and L2):
	// a first-level miss served from the victim cache, and a first-level
	// victim parked there. Aux carries the data token.
	EvVictimHit
	EvVictimInsert

	// A first-level line evicted because the reverse-lookup synonym table
	// ran out of capacity (the RLT strategy's extra misses; a dirty line
	// additionally emits EvWriteBack with the WBRLT bit).
	EvRLTEvict

	// Timing charges from the cycle engine (internal/cycles). Aux carries
	// the cycles charged; EvTimeAccess additionally sets Access to the
	// reference class. The sum of a CPU's Aux values per kind equals the
	// engine's per-CPU breakdown counters exactly.
	EvTimeAccess
	EvTimeTLBMiss
	EvTimeBusWait
	EvTimeWBStall
	EvTimeCtxSwitch

	// NumKinds bounds the kind space; it is not a valid event kind.
	NumKinds
)

// Context-switch flush modes carried in EvCtxSwitch's Aux field.
const (
	CtxLazy  = 0
	CtxEager = 1
	CtxNone  = 2
)

// EvWriteBack Aux bits.
const (
	WBSwapped = 1 << 0
	WBEager   = 1 << 1
	WBRLT     = 1 << 2
)

var kindNames = [NumKinds]string{
	EvL1Hit:               "l1-hit",
	EvL1Miss:              "l1-miss",
	EvL2Hit:               "l2-hit",
	EvL2Miss:              "l2-miss",
	EvTLBHit:              "tlb-hit",
	EvTLBMiss:             "tlb-miss",
	EvTLBAbort:            "tlb-abort",
	EvSynSameSet:          "syn-sameset",
	EvSynMove:             "syn-move",
	EvSynCross:            "syn-cross",
	EvSynBuffered:         "syn-buffered",
	EvWriteBack:           "write-back",
	EvWBEnqueue:           "wb-enqueue",
	EvWBDrain:             "wb-drain",
	EvWBCancel:            "wb-cancel",
	EvWBFlush:             "wb-flush",
	EvWBStall:             "wb-stall",
	EvInclusionInval:      "inclusion-inval",
	EvCohInvalidate:       "coh-invalidate",
	EvCohFlush:            "coh-flush",
	EvCohInvalidateBuffer: "coh-invalidate-buffer",
	EvCohFlushBuffer:      "coh-flush-buffer",
	EvCohUpdate:           "coh-update",
	EvCohProbe:            "coh-probe",
	EvShielded:            "shielded",
	EvBusRead:             "bus-read",
	EvBusReadMod:          "bus-readmod",
	EvBusInvalidate:       "bus-invalidate",
	EvBusUpdate:           "bus-update",
	EvDMARead:             "dma-read",
	EvDMAWrite:            "dma-write",
	EvCtxSwitch:           "ctx-switch",
	EvVictimHit:           "victim-hit",
	EvVictimInsert:        "victim-insert",
	EvRLTEvict:            "rlt-evict",
	EvTimeAccess:          "time-access",
	EvTimeTLBMiss:         "time-tlb-miss",
	EvTimeBusWait:         "time-bus-wait",
	EvTimeWBStall:         "time-wb-stall",
	EvTimeCtxSwitch:       "time-ctx-switch",
}

// String returns the kind's stable name (used in JSON reports and event
// filters).
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Category groups kinds into the lanes used by exporters and filters:
// access, tlb, synonym, writebuf, coherence, bus, dma, ctx, victim, time.
func (k Kind) Category() string {
	switch k {
	case EvL1Hit, EvL1Miss, EvL2Hit, EvL2Miss:
		return "access"
	case EvTLBHit, EvTLBMiss, EvTLBAbort:
		return "tlb"
	case EvSynSameSet, EvSynMove, EvSynCross, EvSynBuffered:
		return "synonym"
	case EvWriteBack, EvWBEnqueue, EvWBDrain, EvWBCancel, EvWBFlush, EvWBStall:
		return "writebuf"
	case EvInclusionInval, EvCohInvalidate, EvCohFlush, EvCohInvalidateBuffer,
		EvCohFlushBuffer, EvCohUpdate, EvCohProbe, EvShielded:
		return "coherence"
	case EvBusRead, EvBusReadMod, EvBusInvalidate, EvBusUpdate:
		return "bus"
	case EvDMARead, EvDMAWrite:
		return "dma"
	case EvCtxSwitch:
		return "ctx"
	case EvVictimHit, EvVictimInsert:
		return "victim"
	case EvRLTEvict:
		return "synonym"
	case EvTimeAccess, EvTimeTLBMiss, EvTimeBusWait, EvTimeWBStall, EvTimeCtxSwitch:
		return "time"
	default:
		return "other"
	}
}

// IsTiming reports whether k is a cycle-charge event mirrored from the
// timing engine (internal/cycles). For these kinds Aux carries the cycles
// charged, and the per-CPU sum of Aux values reconstructs the engine's
// clocks exactly — the property the telemetry layer's span boundaries and
// attribution reconciliation are built on.
func (k Kind) IsTiming() bool {
	return k >= EvTimeAccess && k <= EvTimeCtxSwitch
}

// Event is one observed mechanism activation.
type Event struct {
	Seq    uint64           // global emission order, 1-based (stamped by the Probe)
	Ref    uint64           // reference index when emitted, 1-based (0: outside a run)
	CPU    int              // bus id of the component the event belongs to
	Kind   Kind             //
	Access stats.AccessKind // reference class, meaningful for access events
	VA     addr.VAddr       // virtual address, when known
	PA     addr.PAddr       // physical address, when known
	Aux    uint64           // kind-specific detail (token, size, flush mode, ...)
}

// String renders the event for the human-readable log.
func (e Event) String() string {
	s := fmt.Sprintf("%8d ref=%-8d cpu%d %-21s", e.Seq, e.Ref, e.CPU, e.Kind)
	switch e.Kind {
	case EvL1Hit, EvL1Miss, EvL2Hit, EvL2Miss:
		s += fmt.Sprintf(" %-11s va=%#x pa=%#x", e.Access, uint64(e.VA), uint64(e.PA))
	case EvCtxSwitch:
		mode := [...]string{"lazy", "eager", "none"}[e.Aux]
		s += fmt.Sprintf(" flush=%s", mode)
	case EvTimeAccess:
		s += fmt.Sprintf(" %-11s cycles=%d", e.Access, e.Aux)
	case EvTimeTLBMiss, EvTimeBusWait, EvTimeWBStall, EvTimeCtxSwitch:
		s += fmt.Sprintf(" cycles=%d", e.Aux)
	default:
		if e.VA != 0 {
			s += fmt.Sprintf(" va=%#x", uint64(e.VA))
		}
		if e.PA != 0 {
			s += fmt.Sprintf(" pa=%#x", uint64(e.PA))
		}
	}
	return s
}
