package probe

import "sync/atomic"

// ring is a single-producer single-consumer lock-free ring buffer of
// events. The producer is the one hierarchy (or bus agent) that owns the
// ring; the consumer is the Probe's flush path. The simulator itself is
// reference-serial, but the ring is safe under the race detector and keeps
// the door open for the sharded simulation the ROADMAP aims at.
type ring struct {
	buf  []Event
	mask uint64
	head atomic.Uint64 // next slot to write
	tail atomic.Uint64 // next slot to read
}

// newRing creates a ring with the given power-of-two capacity.
func newRing(capacity int) *ring {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("probe: ring capacity must be a positive power of two")
	}
	return &ring{buf: make([]Event, capacity), mask: uint64(capacity - 1)}
}

// push appends ev; it reports false when the ring is full (the caller
// flushes and retries).
func (r *ring) push(ev Event) bool {
	h := r.head.Load()
	if h-r.tail.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[h&r.mask] = ev
	r.head.Store(h + 1)
	return true
}

// drain appends every buffered event to out, oldest first, and empties the
// ring.
func (r *ring) drain(out []Event) []Event {
	t, h := r.tail.Load(), r.head.Load()
	for ; t < h; t++ {
		out = append(out, r.buf[t&r.mask])
	}
	r.tail.Store(t)
	return out
}

// len returns the current occupancy.
func (r *ring) len() int { return int(r.head.Load() - r.tail.Load()) }
