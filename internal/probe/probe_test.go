package probe

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/stats"
)

// collect is a sink recording every delivered event.
type collect struct{ evs []Event }

func (c *collect) Event(ev Event) { c.evs = append(c.evs, ev) }

func TestNilProbeIsSafe(t *testing.T) {
	var p *Probe
	p.Emit(Event{Kind: EvL1Hit})
	p.AdvanceRef()
	p.AddSink(&collect{})
	p.Flush()
	if p.Enabled() {
		t.Error("nil probe reports enabled")
	}
	if p.Counts().Total() != 0 || p.Ref() != 0 {
		t.Error("nil probe has state")
	}
	if err := p.Close(); err != nil {
		t.Error(err)
	}
}

func TestEmitStampsAndCounts(t *testing.T) {
	p := New(8)
	sink := &collect{}
	p.AddSink(sink)
	p.AdvanceRef()
	p.Emit(Event{CPU: 0, Kind: EvL1Miss, Access: stats.KindRead})
	p.Emit(Event{CPU: 1, Kind: EvL2Hit, Access: stats.KindRead})
	p.AdvanceRef()
	p.Emit(Event{CPU: 0, Kind: EvL1Hit, Access: stats.KindWrite})
	p.Flush()
	if len(sink.evs) != 3 {
		t.Fatalf("delivered %d events, want 3", len(sink.evs))
	}
	for i, ev := range sink.evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}
	if sink.evs[0].Ref != 1 || sink.evs[2].Ref != 2 {
		t.Errorf("refs = %d, %d; want 1, 2", sink.evs[0].Ref, sink.evs[2].Ref)
	}
	c := p.Counts()
	if c.Of(EvL1Miss) != 1 || c.Of(EvL2Hit) != 1 || c.Of(EvL1Hit) != 1 || c.Total() != 3 {
		t.Errorf("counts = %v", c.Map())
	}
}

func TestRingOverflowFlushesInOrder(t *testing.T) {
	p := New(4)
	sink := &collect{}
	p.AddSink(sink)
	// Interleave two CPUs well past the ring capacity.
	for i := 0; i < 100; i++ {
		p.Emit(Event{CPU: i % 2, Kind: EvBusRead})
	}
	p.Flush()
	if len(sink.evs) != 100 {
		t.Fatalf("delivered %d events, want 100", len(sink.evs))
	}
	for i, ev := range sink.evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d out of order: seq %d", i, ev.Seq)
		}
	}
}

func TestRing(t *testing.T) {
	r := newRing(4)
	for i := 0; i < 4; i++ {
		if !r.push(Event{Seq: uint64(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.push(Event{}) {
		t.Error("push into full ring succeeded")
	}
	if r.len() != 4 {
		t.Errorf("len = %d", r.len())
	}
	out := r.drain(nil)
	if len(out) != 4 || out[0].Seq != 0 || out[3].Seq != 3 {
		t.Errorf("drain = %v", out)
	}
	if r.len() != 0 || !r.push(Event{}) {
		t.Error("ring not reusable after drain")
	}
}

func TestRingBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two capacity accepted")
		}
	}()
	newRing(3)
}

func TestWindows(t *testing.T) {
	w := NewWindows(10)
	var closed []WindowMetrics
	w.OnClose = func(m WindowMetrics) { closed = append(closed, m) }
	for ref := uint64(1); ref <= 25; ref++ {
		hit := ref%2 == 0
		k := EvL1Miss
		if hit {
			k = EvL1Hit
		}
		w.Event(Event{Ref: ref, Kind: k})
		if !hit {
			w.Event(Event{Ref: ref, Kind: EvL2Hit})
			if ref%5 == 0 {
				w.Event(Event{Ref: ref, Kind: EvSynSameSet})
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ws := w.Done()
	if len(ws) != 3 || len(closed) != 3 {
		t.Fatalf("windows = %d, closed = %d; want 3", len(ws), len(closed))
	}
	if ws[0].FirstRef != 1 || ws[0].LastRef != 10 || ws[1].FirstRef != 11 {
		t.Errorf("window bounds: %+v %+v", ws[0], ws[1])
	}
	if ws[0].L1Hits != 5 || ws[0].L1Misses != 5 || ws[0].L1Ratio() != 0.5 {
		t.Errorf("window 0 = %+v", ws[0])
	}
	if ws[0].Synonyms != 1 || ws[0].SynonymRate() != 0.1 {
		t.Errorf("window 0 synonyms = %d rate %v", ws[0].Synonyms, ws[0].SynonymRate())
	}
	if ws[2].L1Hits+ws[2].L1Misses != 5 {
		t.Errorf("trailing partial window = %+v", ws[2])
	}
	// The partial window's bound is clamped to the last reference seen,
	// not the nominal window end, so per-reference rates stay honest.
	if ws[2].FirstRef != 21 || ws[2].LastRef != 25 {
		t.Errorf("trailing partial bounds = %d-%d, want 21-25", ws[2].FirstRef, ws[2].LastRef)
	}
	if ws[2].SynonymRate() != 0.2 { // 1 synonym over 5 refs, not over 10
		t.Errorf("trailing partial synonym rate = %v, want 0.2", ws[2].SynonymRate())
	}
}

func TestWindowsAsProbeSink(t *testing.T) {
	p := New(8)
	w := NewWindows(4)
	p.AddSink(w)
	for i := 0; i < 10; i++ {
		p.AdvanceRef()
		p.Emit(Event{Kind: EvL1Hit})
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	ws := w.Done()
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3", len(ws))
	}
	var hits uint64
	for _, m := range ws {
		hits += m.L1Hits
	}
	if hits != 10 {
		t.Errorf("hits across windows = %d", hits)
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	c := NewChromeTrace(&buf)
	c.Event(Event{Seq: 1, Ref: 1, CPU: 0, Kind: EvL1Miss, Access: stats.KindRead, VA: 0x40, PA: 0x80})
	c.Event(Event{Seq: 2, Ref: 1, CPU: 0, Kind: EvL2Hit, Access: stats.KindRead, VA: 0x40, PA: 0x80})
	c.Event(Event{Seq: 3, Ref: 1, CPU: 1, Kind: EvCohInvalidate, PA: 0x80})
	c.Event(Event{Seq: 4, Ref: 2, CPU: 0, Kind: EvCtxSwitch, Aux: CtxLazy})
	if c.Events() != 4 {
		t.Errorf("events = %d", c.Events())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	// 4 events + 2 process_name metadata records.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("traceEvents = %d records", len(doc.TraceEvents))
	}
	var sawMeta, sawX, sawInstant bool
	for _, te := range doc.TraceEvents {
		switch te["ph"] {
		case "M":
			sawMeta = true
		case "X":
			sawX = true
			if te["dur"].(float64) <= 0 {
				t.Error("X event without duration")
			}
		case "i":
			sawInstant = true
		}
	}
	if !sawMeta || !sawX || !sawInstant {
		t.Errorf("missing phases: meta=%v X=%v i=%v", sawMeta, sawX, sawInstant)
	}
}

func TestLogAndFilter(t *testing.T) {
	var buf bytes.Buffer
	filter, err := ParseFilter("synonym,bus-read")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLog(&buf, filter)
	l.Event(Event{Seq: 1, Kind: EvL1Hit, Access: stats.KindRead})
	l.Event(Event{Seq: 2, Kind: EvSynMove, VA: 0x40, PA: 0x80})
	l.Event(Event{Seq: 3, Kind: EvBusRead, PA: 0x100})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "l1-hit") {
		t.Error("filtered kind logged")
	}
	for _, want := range []string{"syn-move", "bus-read", "pa=0x80"} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
}

func TestParseFilterErrors(t *testing.T) {
	if _, err := ParseFilter("bogus-kind"); err == nil {
		t.Error("unknown filter term accepted")
	}
	if f, err := ParseFilter(""); err != nil || f != nil {
		t.Error("empty filter should accept everything via nil predicate")
	}
}

func TestKindStringsAndCategories(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < NumKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
		if k.Category() == "other" {
			t.Errorf("kind %s has no category", s)
		}
	}
	if NumKinds.String() == "" || Kind(200).Category() != "other" {
		t.Error("out-of-range kinds mishandled")
	}
}

// TestWindowsCloseApplied: the parking daemon's flush hook closes exactly
// the windows whose whole span the reference cursor has passed — the
// cycle-engine case where event emission trails the applied references and
// the just-completed window would otherwise be lost at a shutdown.
func TestWindowsCloseApplied(t *testing.T) {
	w := NewWindows(10)
	var closed []WindowMetrics
	w.OnClose = func(m WindowMetrics) { closed = append(closed, m) }

	// Events observed through ref 12, cursor already at 18: window 0
	// (1-10) is fully applied and must close with its preset bounds;
	// window 1 (11-20) is not and must stay open.
	for ref := uint64(1); ref <= 12; ref++ {
		w.Event(Event{Ref: ref, Kind: EvL1Hit})
	}
	w.CloseApplied(18)
	if len(closed) != 1 {
		t.Fatalf("closed %d windows, want 1", len(closed))
	}
	if closed[0].Seq != 0 || closed[0].FirstRef != 1 || closed[0].LastRef != 10 {
		t.Errorf("closed window = %+v, want seq 0 spanning 1-10", closed[0])
	}
	if closed[0].L1Hits != 10 {
		t.Errorf("closed window hits = %d, want 10", closed[0].L1Hits)
	}
	// Idempotent while nothing new completes.
	w.CloseApplied(18)
	if len(closed) != 1 {
		t.Fatalf("second CloseApplied closed more windows: %d", len(closed))
	}
	// Cursor past several window bounds: every fully-applied window closes,
	// in order, with tiling bounds (the lag case spans > one window).
	w.CloseApplied(41)
	if len(closed) != 4 {
		t.Fatalf("closed %d windows, want 4 (seqs 0-3)", len(closed))
	}
	for i, m := range closed {
		if m.Seq != uint64(i) || m.FirstRef != uint64(i)*10+1 || m.LastRef != uint64(i+1)*10 {
			t.Errorf("closed[%d] = %+v, want seq %d spanning %d-%d",
				i, m, i, i*10+1, (i+1)*10)
		}
	}
	// Events that straggle in afterwards fold into the open successor
	// window rather than resurrecting a closed one.
	w.Event(Event{Ref: 13, Kind: EvL1Miss})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	last := closed[len(closed)-1]
	if last.Seq != 4 || last.L1Misses != 1 {
		t.Errorf("trailing window = %+v, want seq 4 carrying the straggler", last)
	}
	// No events at all: nothing to close.
	w2 := NewWindows(10)
	w2.CloseApplied(100)
	if got := len(w2.Done()); got != 0 {
		t.Errorf("empty collector closed %d windows", got)
	}
}
