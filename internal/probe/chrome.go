package probe

import (
	"bufio"
	"encoding/json"
	"io"
)

// ChromeTrace is a Sink that writes the event stream in the Chrome
// trace_event JSON format, loadable in chrome://tracing or Perfetto. Each
// bus agent becomes a "process"; event categories become named threads
// within it, so accesses, synonym resolutions, write-buffer traffic and
// coherence messages appear as separate lanes. The timeline unit is one
// trace reference (exported as one microsecond); access events get
// durations from the paper's default latency scaling (t1=1, t2=4, tm=20),
// everything else is an instant.
type ChromeTrace struct {
	w      *bufio.Writer
	closer io.Closer // closed with the sink when the caller handed us ownership
	n      int       // records written, including metadata
	events int       // probe events written
	err    error
	named  map[int]bool
}

// NewChromeTrace creates an exporter writing to w. If w is also an
// io.Closer (e.g. an *os.File), Close closes it after the footer.
func NewChromeTrace(w io.Writer) *ChromeTrace {
	c := &ChromeTrace{w: bufio.NewWriter(w), named: make(map[int]bool)}
	if cl, ok := w.(io.Closer); ok {
		c.closer = cl
	}
	c.raw(`{"displayTimeUnit":"ms","traceEvents":[`)
	return c
}

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// laneOf maps an event category to a stable thread id.
func laneOf(k Kind) int {
	switch k.Category() {
	case "access":
		return 0
	case "tlb":
		return 1
	case "synonym":
		return 2
	case "writebuf":
		return 3
	case "coherence":
		return 4
	case "bus":
		return 5
	case "dma":
		return 6
	case "time":
		return 7
	default:
		return 8
	}
}

// durOf returns the paper-scaled duration of an access event (0 for
// instants).
func durOf(k Kind) uint64 {
	switch k {
	case EvL1Hit:
		return 1
	case EvL2Hit:
		return 4
	case EvL2Miss:
		return 20
	default:
		return 0
	}
}

// Event implements Sink.
func (c *ChromeTrace) Event(ev Event) {
	if c.err != nil {
		return
	}
	if !c.named[ev.CPU] {
		c.named[ev.CPU] = true
		c.record(chromeEvent{
			Name: "process_name", Ph: "M", PID: ev.CPU,
			Args: map[string]any{"name": processName(ev.CPU)},
		})
	}
	ce := chromeEvent{
		Name: ev.Kind.String(),
		Cat:  ev.Kind.Category(),
		Ts:   ev.Ref,
		PID:  ev.CPU,
		TID:  laneOf(ev.Kind),
	}
	if d := durOf(ev.Kind); d > 0 {
		ce.Ph = "X"
		ce.Dur = d
	} else {
		ce.Ph, ce.S = "i", "t"
	}
	args := map[string]any{"seq": ev.Seq}
	switch ev.Kind {
	case EvL1Hit, EvL1Miss, EvL2Hit, EvL2Miss:
		ce.Name = ev.Access.String() + " " + ce.Name
		args["va"], args["pa"] = ev.VA, ev.PA
	case EvCtxSwitch:
		args["flush"] = [...]string{"lazy", "eager", "none"}[ev.Aux]
	default:
		if ev.PA != 0 {
			args["pa"] = ev.PA
		}
	}
	ce.Args = args
	c.record(ce)
	c.events++
}

func processName(id int) string {
	return "cpu" + itoa(id)
}

// itoa avoids pulling strconv into the hot path for small ids.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func (c *ChromeTrace) record(ce chromeEvent) {
	b, err := json.Marshal(ce)
	if err != nil {
		c.err = err
		return
	}
	if c.n > 0 {
		c.raw(",\n")
	}
	c.n++
	if _, err := c.w.Write(b); err != nil {
		c.err = err
	}
}

func (c *ChromeTrace) raw(s string) {
	if c.err == nil {
		if _, err := c.w.WriteString(s); err != nil {
			c.err = err
		}
	}
}

// Events returns the number of probe events written so far (excluding
// metadata records).
func (c *ChromeTrace) Events() int { return c.events }

// Close writes the JSON footer and flushes (closing the underlying writer
// when it is closable).
func (c *ChromeTrace) Close() error {
	c.raw("]}\n")
	if err := c.w.Flush(); err != nil && c.err == nil {
		c.err = err
	}
	if c.closer != nil {
		if err := c.closer.Close(); err != nil && c.err == nil {
			c.err = err
		}
	}
	return c.err
}
