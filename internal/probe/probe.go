package probe

import "sort"

// Sink consumes events in global emission order. Sinks that also implement
// `Close() error` are closed by Probe.Close.
type Sink interface {
	Event(Event)
}

// Counts is the per-kind event tally a Probe maintains inline (available
// without attaching any sink).
type Counts [NumKinds]uint64

// Of returns the count for one kind.
func (c Counts) Of(k Kind) uint64 {
	if k < NumKinds {
		return c[k]
	}
	return 0
}

// Total returns the count across all kinds.
func (c Counts) Total() uint64 {
	var t uint64
	for _, v := range c {
		t += v
	}
	return t
}

// Map returns the non-zero counts keyed by kind name (the JSON report
// form).
func (c Counts) Map() map[string]uint64 {
	m := make(map[string]uint64)
	for k := Kind(0); k < NumKinds; k++ {
		if c[k] > 0 {
			m[k.String()] = c[k]
		}
	}
	return m
}

// DefaultRingCapacity is the per-CPU ring size used when none is given.
const DefaultRingCapacity = 4096

// Probe is the event sink the simulator's components emit through. A nil
// *Probe is valid and means "disabled": every method is safe to call and
// does nothing, so the hot paths pay only a nil check.
type Probe struct {
	sinks   []Sink
	rings   []*ring
	ringCap int
	scratch []Event // reused flush buffer
	counts  Counts
	seq     uint64
	ref     uint64
}

// New creates an enabled probe. ringCapacity is the per-CPU ring size
// (rounded up to a power of two); 0 selects DefaultRingCapacity.
func New(ringCapacity int) *Probe {
	if ringCapacity <= 0 {
		ringCapacity = DefaultRingCapacity
	}
	cap := 1
	for cap < ringCapacity {
		cap <<= 1
	}
	return &Probe{ringCap: cap}
}

// AddSink attaches a sink. Sinks receive batches of events in global
// emission order when the rings flush.
func (p *Probe) AddSink(s Sink) {
	if p == nil || s == nil {
		return
	}
	p.sinks = append(p.sinks, s)
}

// Enabled reports whether the probe collects events.
func (p *Probe) Enabled() bool { return p != nil }

// AdvanceRef starts the next memory reference; subsequent events are
// stamped with its 1-based index. The system layer calls this once per
// non-context-switch trace record.
func (p *Probe) AdvanceRef() {
	if p != nil {
		p.ref++
	}
}

// Ref returns the current reference index.
func (p *Probe) Ref() uint64 {
	if p == nil {
		return 0
	}
	return p.ref
}

// Counts returns a copy of the per-kind tallies, including events still
// buffered in the rings.
func (p *Probe) Counts() Counts {
	if p == nil {
		return Counts{}
	}
	return p.counts
}

// Emit records one event, stamping its sequence number and reference
// index. When the owning ring fills, every ring is flushed to the sinks in
// sequence order first, so sinks always observe a globally ordered stream.
func (p *Probe) Emit(ev Event) {
	if p == nil {
		return
	}
	p.seq++
	ev.Seq = p.seq
	ev.Ref = p.ref
	p.counts[ev.Kind]++
	r := p.ringFor(ev.CPU)
	if !r.push(ev) {
		p.flush()
		r.push(ev)
	}
}

// ringFor returns (growing on demand) the ring of bus agent id.
func (p *Probe) ringFor(cpu int) *ring {
	if cpu < 0 {
		cpu = 0
	}
	for len(p.rings) <= cpu {
		p.rings = append(p.rings, newRing(p.ringCap))
	}
	return p.rings[cpu]
}

// flush drains every ring and delivers the merged, sequence-ordered batch
// to the sinks.
func (p *Probe) flush() {
	out := p.scratch[:0]
	for _, r := range p.rings {
		out = r.drain(out)
	}
	if len(out) == 0 {
		return
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	for _, s := range p.sinks {
		for _, ev := range out {
			s.Event(ev)
		}
	}
	p.scratch = out[:0]
}

// Flush delivers all buffered events to the sinks now.
func (p *Probe) Flush() {
	if p != nil {
		p.flush()
	}
}

// Close flushes the rings and closes every sink that supports closing,
// returning the first error.
func (p *Probe) Close() error {
	if p == nil {
		return nil
	}
	p.flush()
	var first error
	for _, s := range p.sinks {
		if c, ok := s.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
