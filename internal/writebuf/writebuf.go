// Package writebuf models the write-back buffer between the V-cache and the
// R-cache. Dirty victims are pushed here instead of stalling the processor;
// each entry drains into the R-cache after a fixed number of references.
// The R-cache tracks buffered blocks through its buffer bits, and the
// coherence protocol can flush or cancel entries by their r-pointer
// (the paper's flush(buffer) / invalidate(buffer) / write-back(r-pointer)
// messages).
//
// The buffer is bounded: pushing into a full buffer reports a stall and the
// oldest entry is drained immediately, which is how the paper's "several
// write buffers may be needed" observation shows up in the statistics.
package writebuf

import (
	"fmt"

	"repro/internal/vcache"
)

// Entry is one buffered write-back: the R-cache subentry it belongs to and
// the modified data's token.
type Entry struct {
	RPtr  vcache.RPtr
	Token uint64
	due   uint64 // drain deadline in buffer ticks
}

// Stats counts buffer activity.
type Stats struct {
	Pushes   uint64 // entries accepted
	Drains   uint64 // entries drained by age
	Forced   uint64 // entries drained early because the buffer was full
	Cancels  uint64 // entries removed by synonym reattach or invalidation
	Flushes  uint64 // entries removed by a coherence flush
	Stalls   uint64 // pushes that found the buffer full
	MaxDepth int    // high-water mark of occupancy
}

// Op classifies a buffer operation reported to an Observer.
type Op int

// Observable buffer operations.
const (
	OpPush   Op = iota // entry accepted
	OpDrain            // entry drained by age (or end-of-run)
	OpCancel           // entry removed without writing anywhere
	OpFlush            // entry removed by a coherence flush
)

// Buffer is a FIFO write-back buffer with per-entry drain deadlines.
type Buffer struct {
	entries []Entry
	depth   int
	latency uint64
	clock   uint64
	stats   Stats

	// Observer, when set, is invoked with every buffer operation (the
	// probe layer attaches here). Leave nil to pay nothing.
	Observer func(Op, Entry)
}

// observe reports op on e when an observer is attached.
func (b *Buffer) observe(op Op, e Entry) {
	if b.Observer != nil {
		b.Observer(op, e)
	}
}

// New builds a buffer holding up to depth entries, each draining latency
// ticks after it was pushed. Depth must be at least 1; latency of 0 drains
// entries on the next tick.
func New(depth int, latency uint64) (*Buffer, error) {
	if depth < 1 {
		return nil, fmt.Errorf("writebuf: depth %d < 1", depth)
	}
	return &Buffer{depth: depth, latency: latency}, nil
}

// MustNew is New but panics on error.
func MustNew(depth int, latency uint64) *Buffer {
	b, err := New(depth, latency)
	if err != nil {
		panic(err)
	}
	return b
}

// Len returns the current occupancy.
func (b *Buffer) Len() int { return len(b.entries) }

// Depth returns the buffer's capacity.
func (b *Buffer) Depth() int { return b.depth }

// Full reports whether a push would stall.
func (b *Buffer) Full() bool { return len(b.entries) >= b.depth }

// Stats returns a copy of the counters.
func (b *Buffer) Stats() Stats { return b.stats }

// Push adds a write-back. If the buffer is full the oldest entry is forced
// out first and returned with forced=true (the caller must drain it into
// the R-cache immediately); a stall is counted.
func (b *Buffer) Push(rptr vcache.RPtr, token uint64) (evicted Entry, forced bool) {
	if b.Full() {
		b.stats.Stalls++
		b.stats.Forced++
		evicted, forced = b.entries[0], true
		b.entries = b.entries[1:]
	}
	b.stats.Pushes++
	e := Entry{RPtr: rptr, Token: token, due: b.clock + b.latency}
	b.entries = append(b.entries, e)
	if len(b.entries) > b.stats.MaxDepth {
		b.stats.MaxDepth = len(b.entries)
	}
	b.observe(OpPush, e)
	return evicted, forced
}

// Tick advances the buffer clock and returns the entries whose drain
// deadline has passed, oldest first. The caller writes them back into the
// R-cache.
func (b *Buffer) Tick() []Entry {
	b.clock++
	n := 0
	for n < len(b.entries) && b.entries[n].due < b.clock {
		n++
	}
	if n == 0 {
		return nil
	}
	due := make([]Entry, n)
	copy(due, b.entries[:n])
	b.entries = b.entries[n:]
	b.stats.Drains += uint64(n)
	for _, e := range due {
		b.observe(OpDrain, e)
	}
	return due
}

// DrainAll removes and returns every entry, oldest first (end-of-run or
// eager context-switch flush).
func (b *Buffer) DrainAll() []Entry {
	out := b.entries
	b.entries = nil
	b.stats.Drains += uint64(len(out))
	for _, e := range out {
		b.observe(OpDrain, e)
	}
	return out
}

// Find returns the entry for rptr, if buffered.
func (b *Buffer) Find(rptr vcache.RPtr) (Entry, bool) {
	for _, e := range b.entries {
		if e.RPtr == rptr {
			return e, true
		}
	}
	return Entry{}, false
}

// Cancel removes the entry for rptr without writing it anywhere (synonym
// reattach or bus invalidation of buffered data).
func (b *Buffer) Cancel(rptr vcache.RPtr) (Entry, bool) {
	return b.remove(rptr, &b.stats.Cancels, OpCancel)
}

// Flush removes and returns the entry for rptr so the caller can forward
// its data on a bus-induced flush.
func (b *Buffer) Flush(rptr vcache.RPtr) (Entry, bool) {
	return b.remove(rptr, &b.stats.Flushes, OpFlush)
}

// Update replaces the token of a buffered entry in place (write-update
// protocol refreshing buffered data).
func (b *Buffer) Update(rptr vcache.RPtr, token uint64) bool {
	for i := range b.entries {
		if b.entries[i].RPtr == rptr {
			b.entries[i].Token = token
			return true
		}
	}
	return false
}

func (b *Buffer) remove(rptr vcache.RPtr, counter *uint64, op Op) (Entry, bool) {
	for i, e := range b.entries {
		if e.RPtr == rptr {
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			*counter++
			b.observe(op, e)
			return e, true
		}
	}
	return Entry{}, false
}
