// Package writebuf models the write-back buffer between the V-cache and the
// R-cache. Dirty victims are pushed here instead of stalling the processor;
// each entry drains into the R-cache after a fixed number of references.
// The R-cache tracks buffered blocks through its buffer bits, and the
// coherence protocol can flush or cancel entries by their r-pointer
// (the paper's flush(buffer) / invalidate(buffer) / write-back(r-pointer)
// messages).
//
// The buffer is bounded: pushing into a full buffer reports a stall and the
// oldest entry is drained immediately, which is how the paper's "several
// write buffers may be needed" observation shows up in the statistics.
package writebuf

import (
	"fmt"

	"repro/internal/vcache"
)

// Entry is one buffered write-back: the R-cache subentry it belongs to and
// the modified data's token.
type Entry struct {
	RPtr  vcache.RPtr
	Token uint64
	due   uint64 // drain deadline in buffer ticks
}

// Stats counts buffer activity.
type Stats struct {
	Pushes   uint64 // entries accepted
	Drains   uint64 // entries drained by age
	Forced   uint64 // entries drained early because the buffer was full
	Cancels  uint64 // entries removed by synonym reattach or invalidation
	Flushes  uint64 // entries removed by a coherence flush
	Stalls   uint64 // pushes that found the buffer full
	MaxDepth int    // high-water mark of occupancy
}

// Op classifies a buffer operation reported to an Observer.
type Op int

// Observable buffer operations.
const (
	OpPush   Op = iota // entry accepted
	OpDrain            // entry drained by age (or end-of-run)
	OpCancel           // entry removed without writing anywhere
	OpFlush            // entry removed by a coherence flush
)

// Buffer is a FIFO write-back buffer with per-entry drain deadlines. It is
// backed by a fixed-size ring sized at construction, so steady-state
// operation allocates nothing.
type Buffer struct {
	ring    []Entry // fixed backing store, capacity == depth
	head    int     // index of the oldest entry
	count   int     // occupancy
	depth   int
	latency uint64
	clock   uint64
	stats   Stats

	// Observer, when set, is invoked with every buffer operation (the
	// probe layer attaches here). Leave nil to pay nothing.
	Observer func(Op, Entry)
}

// at returns a pointer to the i-th oldest entry (0 = oldest).
func (b *Buffer) at(i int) *Entry { return &b.ring[(b.head+i)%b.depth] }

// popFront removes and returns the oldest entry.
func (b *Buffer) popFront() Entry {
	e := b.ring[b.head]
	b.head = (b.head + 1) % b.depth
	b.count--
	return e
}

// observe reports op on e when an observer is attached.
func (b *Buffer) observe(op Op, e Entry) {
	if b.Observer != nil {
		b.Observer(op, e)
	}
}

// New builds a buffer holding up to depth entries, each draining latency
// ticks after it was pushed. Depth must be at least 1; latency of 0 drains
// entries on the next tick.
func New(depth int, latency uint64) (*Buffer, error) {
	if depth < 1 {
		return nil, fmt.Errorf("writebuf: depth %d < 1", depth)
	}
	return &Buffer{ring: make([]Entry, depth), depth: depth, latency: latency}, nil
}

// MustNew is New but panics on error.
func MustNew(depth int, latency uint64) *Buffer {
	b, err := New(depth, latency)
	if err != nil {
		panic(err)
	}
	return b
}

// Len returns the current occupancy.
func (b *Buffer) Len() int { return b.count }

// Depth returns the buffer's capacity.
func (b *Buffer) Depth() int { return b.depth }

// Full reports whether a push would stall.
func (b *Buffer) Full() bool { return b.count >= b.depth }

// Stats returns a copy of the counters.
func (b *Buffer) Stats() Stats { return b.stats }

// Push adds a write-back. If the buffer is full the oldest entry is forced
// out first and returned with forced=true (the caller must drain it into
// the R-cache immediately); a stall is counted.
func (b *Buffer) Push(rptr vcache.RPtr, token uint64) (evicted Entry, forced bool) {
	if b.Full() {
		b.stats.Stalls++
		b.stats.Forced++
		evicted, forced = b.popFront(), true
	}
	b.stats.Pushes++
	e := Entry{RPtr: rptr, Token: token, due: b.clock + b.latency}
	*b.at(b.count) = e
	b.count++
	if b.count > b.stats.MaxDepth {
		b.stats.MaxDepth = b.count
	}
	b.observe(OpPush, e)
	return evicted, forced
}

// Tick advances the buffer clock. After a tick the caller pops entries whose
// drain deadline has passed with PopDue and writes them back into the
// R-cache.
func (b *Buffer) Tick() { b.clock++ }

// PopDue removes and returns the oldest entry if its drain deadline has
// passed. Callers loop until ok is false; the loop allocates nothing.
func (b *Buffer) PopDue() (e Entry, ok bool) {
	if b.count == 0 || b.ring[b.head].due >= b.clock {
		return Entry{}, false
	}
	e = b.popFront()
	b.stats.Drains++
	b.observe(OpDrain, e)
	return e, true
}

// DrainAll removes and returns every entry, oldest first (end-of-run or
// eager context-switch flush).
func (b *Buffer) DrainAll() []Entry {
	out := make([]Entry, 0, b.count)
	for b.count > 0 {
		e := b.popFront()
		out = append(out, e)
		b.stats.Drains++
		b.observe(OpDrain, e)
	}
	return out
}

// ForEach visits every buffered entry, oldest first, without disturbing
// the buffer (the audit layer's snapshot walk).
func (b *Buffer) ForEach(fn func(e Entry)) {
	for i := 0; i < b.count; i++ {
		fn(*b.at(i))
	}
}

// Find returns the entry for rptr, if buffered.
func (b *Buffer) Find(rptr vcache.RPtr) (Entry, bool) {
	for i := 0; i < b.count; i++ {
		if e := b.at(i); e.RPtr == rptr {
			return *e, true
		}
	}
	return Entry{}, false
}

// Cancel removes the entry for rptr without writing it anywhere (synonym
// reattach or bus invalidation of buffered data).
func (b *Buffer) Cancel(rptr vcache.RPtr) (Entry, bool) {
	return b.remove(rptr, &b.stats.Cancels, OpCancel)
}

// Flush removes and returns the entry for rptr so the caller can forward
// its data on a bus-induced flush.
func (b *Buffer) Flush(rptr vcache.RPtr) (Entry, bool) {
	return b.remove(rptr, &b.stats.Flushes, OpFlush)
}

// Update replaces the token of a buffered entry in place (write-update
// protocol refreshing buffered data).
func (b *Buffer) Update(rptr vcache.RPtr, token uint64) bool {
	for i := 0; i < b.count; i++ {
		if e := b.at(i); e.RPtr == rptr {
			e.Token = token
			return true
		}
	}
	return false
}

// EntryState is one buffered write-back's serializable state, drain
// deadline included (checkpoint support).
type EntryState struct {
	RPtr  vcache.RPtr
	Token uint64
	Due   uint64
}

// State is the buffer's serializable state: the clock, the counters, and
// every entry oldest-first.
type State struct {
	Clock   uint64
	Stats   Stats
	Entries []EntryState
}

// ExportState captures the buffer's contents.
func (b *Buffer) ExportState() State {
	s := State{Clock: b.clock, Stats: b.stats, Entries: make([]EntryState, 0, b.count)}
	b.ForEach(func(e Entry) {
		s.Entries = append(s.Entries, EntryState{RPtr: e.RPtr, Token: e.Token, Due: e.due})
	})
	return s
}

// RestoreState replaces the buffer's contents. The entry count must fit the
// buffer's depth and every deadline must be within one latency of the
// restored clock, oldest first.
func (b *Buffer) RestoreState(s State) error {
	if len(s.Entries) > b.depth {
		return fmt.Errorf("writebuf: state has %d entries, depth %d", len(s.Entries), b.depth)
	}
	for i, e := range s.Entries {
		if e.Due > s.Clock+b.latency {
			return fmt.Errorf("writebuf: state entry %d due %d beyond clock %d + latency %d",
				i, e.Due, s.Clock, b.latency)
		}
		if i > 0 && e.Due < s.Entries[i-1].Due {
			return fmt.Errorf("writebuf: state entries out of FIFO deadline order at %d", i)
		}
	}
	b.clock = s.Clock
	b.stats = s.Stats
	b.head = 0
	b.count = len(s.Entries)
	for i, e := range s.Entries {
		b.ring[i] = Entry{RPtr: e.RPtr, Token: e.Token, due: e.Due}
	}
	return nil
}

func (b *Buffer) remove(rptr vcache.RPtr, counter *uint64, op Op) (Entry, bool) {
	for i := 0; i < b.count; i++ {
		if e := *b.at(i); e.RPtr == rptr {
			// Shift the younger entries down one slot to keep FIFO order.
			for j := i; j < b.count-1; j++ {
				*b.at(j) = *b.at(j + 1)
			}
			b.count--
			*counter++
			b.observe(op, e)
			return e, true
		}
	}
	return Entry{}, false
}
