package writebuf

import (
	"testing"

	"repro/internal/vcache"
)

func rp(set, way, sub int) vcache.RPtr { return vcache.RPtr{Set: set, Way: way, Sub: sub} }

// tickDrain advances the clock one tick and collects every due entry, the
// way the hierarchy controller drives the buffer each reference.
func tickDrain(b *Buffer) []Entry {
	b.Tick()
	var out []Entry
	for {
		e, ok := b.PopDue()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

func TestPushAndTickDrain(t *testing.T) {
	b := MustNew(4, 2)
	b.Push(rp(1, 0, 0), 10)
	if b.Len() != 1 {
		t.Fatalf("Len = %d", b.Len())
	}
	if got := tickDrain(b); got != nil { // clock 1: due at 2, not yet
		t.Fatalf("drained too early: %v", got)
	}
	if got := tickDrain(b); got != nil { // clock 2: due == 2, drains when clock > due
		t.Fatalf("drained too early: %v", got)
	}
	got := tickDrain(b) // clock 3 > due 2
	if len(got) != 1 || got[0].Token != 10 || got[0].RPtr != rp(1, 0, 0) {
		t.Fatalf("drain = %v", got)
	}
	if b.Len() != 0 {
		t.Error("entry not removed")
	}
}

func TestZeroLatencyDrainsNextTick(t *testing.T) {
	b := MustNew(2, 0)
	b.Push(rp(0, 0, 0), 1)
	if got := tickDrain(b); len(got) != 1 {
		t.Fatalf("zero-latency entry not drained: %v", got)
	}
}

func TestFIFOOrder(t *testing.T) {
	b := MustNew(4, 0)
	b.Push(rp(0, 0, 0), 1)
	b.Push(rp(0, 0, 1), 2)
	b.Push(rp(0, 1, 0), 3)
	got := tickDrain(b)
	if len(got) != 3 || got[0].Token != 1 || got[1].Token != 2 || got[2].Token != 3 {
		t.Fatalf("order = %v", got)
	}
}

func TestFullForcesOldest(t *testing.T) {
	b := MustNew(1, 100)
	b.Push(rp(0, 0, 0), 1)
	ev, forced := b.Push(rp(0, 0, 1), 2)
	if !forced || ev.Token != 1 {
		t.Fatalf("forced = %v entry %v", forced, ev)
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d", b.Len())
	}
	s := b.Stats()
	if s.Stalls != 1 || s.Forced != 1 || s.Pushes != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPushNotForcedWhenRoom(t *testing.T) {
	b := MustNew(2, 100)
	if _, forced := b.Push(rp(0, 0, 0), 1); forced {
		t.Error("forced with room available")
	}
}

func TestFindCancelFlush(t *testing.T) {
	b := MustNew(4, 100)
	b.Push(rp(1, 1, 1), 5)
	b.Push(rp(2, 2, 0), 6)
	if e, ok := b.Find(rp(1, 1, 1)); !ok || e.Token != 5 {
		t.Fatal("Find missed")
	}
	if _, ok := b.Find(rp(9, 9, 9)); ok {
		t.Fatal("Find hit a missing entry")
	}
	e, ok := b.Cancel(rp(1, 1, 1))
	if !ok || e.Token != 5 || b.Len() != 1 {
		t.Fatal("Cancel failed")
	}
	if _, ok := b.Cancel(rp(1, 1, 1)); ok {
		t.Fatal("double Cancel succeeded")
	}
	e, ok = b.Flush(rp(2, 2, 0))
	if !ok || e.Token != 6 || b.Len() != 0 {
		t.Fatal("Flush failed")
	}
	s := b.Stats()
	if s.Cancels != 1 || s.Flushes != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDrainAll(t *testing.T) {
	b := MustNew(4, 100)
	b.Push(rp(0, 0, 0), 1)
	b.Push(rp(0, 0, 1), 2)
	got := b.DrainAll()
	if len(got) != 2 || b.Len() != 0 {
		t.Fatalf("DrainAll = %v", got)
	}
	if b.Stats().Drains != 2 {
		t.Errorf("Drains = %d", b.Stats().Drains)
	}
}

func TestMaxDepth(t *testing.T) {
	b := MustNew(8, 100)
	b.Push(rp(0, 0, 0), 1)
	b.Push(rp(0, 0, 1), 2)
	b.Push(rp(0, 1, 0), 3)
	b.DrainAll()
	b.Push(rp(0, 1, 1), 4)
	if b.Stats().MaxDepth != 3 {
		t.Errorf("MaxDepth = %d, want 3", b.Stats().MaxDepth)
	}
}

func TestPartialDrainKeepsYoung(t *testing.T) {
	b := MustNew(4, 1)
	b.Push(rp(0, 0, 0), 1) // due at 1
	tickDrain(b)           // clock 1
	b.Push(rp(0, 0, 1), 2) // due at 2
	got := tickDrain(b)    // clock 2: first entry due (1 < 2), second not
	if len(got) != 1 || got[0].Token != 1 {
		t.Fatalf("partial drain = %v", got)
	}
	if b.Len() != 1 {
		t.Error("young entry lost")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("depth 0 accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) did not panic")
		}
	}()
	MustNew(0, 1)
}

func TestDepthAndFull(t *testing.T) {
	b := MustNew(2, 100)
	if b.Depth() != 2 || b.Full() {
		t.Fatal("fresh buffer state wrong")
	}
	b.Push(rp(0, 0, 0), 1)
	b.Push(rp(0, 0, 1), 2)
	if !b.Full() {
		t.Error("buffer with depth entries should be full")
	}
}
