package writebuf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vcache"
)

// Property: the buffer never exceeds its depth, never loses an entry
// (pushes = drains + forced + cancels + flushes + still-resident), and
// drains strictly in FIFO order.
func TestBufferAccountingProperty(t *testing.T) {
	f := func(seed int64, nOps uint8, depthRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := int(depthRaw%8) + 1
		b := MustNew(depth, uint64(rng.Intn(6)))
		live := map[vcache.RPtr]bool{}
		var order []vcache.RPtr // FIFO of live entries
		next := 0
		removeFromOrder := func(rp vcache.RPtr) {
			for i, o := range order {
				if o == rp {
					order = append(order[:i], order[i+1:]...)
					return
				}
			}
		}
		for op := 0; op < int(nOps); op++ {
			switch rng.Intn(4) {
			case 0: // push a fresh r-pointer
				rp := vcache.RPtr{Set: next, Way: 0, Sub: 0}
				next++
				ev, forced := b.Push(rp, uint64(next))
				if forced {
					if order[0] != ev.RPtr {
						return false // forced drain must be the oldest
					}
					delete(live, ev.RPtr)
					order = order[1:]
				}
				live[rp] = true
				order = append(order, rp)
			case 1: // tick-drain
				for _, e := range tickDrain(b) {
					if len(order) == 0 || order[0] != e.RPtr {
						return false // drains must be FIFO
					}
					delete(live, e.RPtr)
					order = order[1:]
				}
			case 2: // cancel a random live entry
				if len(order) > 0 {
					rp := order[rng.Intn(len(order))]
					if _, ok := b.Cancel(rp); !ok {
						return false
					}
					delete(live, rp)
					removeFromOrder(rp)
				}
			case 3: // flush a random live entry
				if len(order) > 0 {
					rp := order[rng.Intn(len(order))]
					if _, ok := b.Flush(rp); !ok {
						return false
					}
					delete(live, rp)
					removeFromOrder(rp)
				}
			}
			if b.Len() != len(live) || b.Len() > depth {
				return false
			}
			// Every tracked entry is findable.
			for rp := range live {
				if _, ok := b.Find(rp); !ok {
					return false
				}
			}
		}
		s := b.Stats()
		removed := s.Drains + s.Forced + s.Cancels + s.Flushes
		return s.Pushes == removed+uint64(b.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: Update changes the token of exactly the targeted entry.
func TestUpdateProperty(t *testing.T) {
	f := func(tokens []uint8) bool {
		if len(tokens) == 0 {
			return true
		}
		if len(tokens) > 8 {
			tokens = tokens[:8]
		}
		b := MustNew(len(tokens), 100)
		for i := range tokens {
			b.Push(vcache.RPtr{Set: i}, uint64(tokens[i]))
		}
		target := len(tokens) / 2
		if !b.Update(vcache.RPtr{Set: target}, 999) {
			return false
		}
		for i := range tokens {
			e, ok := b.Find(vcache.RPtr{Set: i})
			if !ok {
				return false
			}
			want := uint64(tokens[i])
			if i == target {
				want = 999
			}
			if e.Token != want {
				return false
			}
		}
		return !b.Update(vcache.RPtr{Set: 1000}, 1) // missing entry: false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
