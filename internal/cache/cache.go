// Package cache implements the generic set-associative cache structure
// shared by the V-cache, R-cache and TLB: geometry/bit arithmetic, tag
// probes, and victim selection with pluggable replacement and a
// victim-preference hook (used for the paper's relaxed inclusion rule,
// "replace a block with the inclusion bit clear if there is one").
//
// The cache is metadata-only and generic over the per-line payload type, so
// each level attaches its own control bits (dirty, swapped-valid, inclusion
// subentries, pointers) without duplicating the set machinery.
package cache

import (
	"fmt"
	"math/rand"

	"repro/internal/addr"
)

// Policy selects the replacement algorithm used when no invalid way exists.
type Policy int

// Replacement policies.
const (
	LRU Policy = iota
	FIFO
	Random
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Geometry describes a cache's shape. All sizes are in bytes and must be
// powers of two; Assoc of 1 is direct-mapped.
type Geometry struct {
	Size  uint64 // total data capacity
	Block uint64 // block (line) size
	Assoc int    // ways per set
}

// Validate checks the geometry for consistency.
func (g Geometry) Validate() error {
	if !addr.IsPow2(g.Size) {
		return fmt.Errorf("cache: size %d is not a power of two", g.Size)
	}
	if !addr.IsPow2(g.Block) {
		return fmt.Errorf("cache: block size %d is not a power of two", g.Block)
	}
	if g.Assoc < 1 || !addr.IsPow2(uint64(g.Assoc)) {
		return fmt.Errorf("cache: associativity %d is not a positive power of two", g.Assoc)
	}
	if g.Block*uint64(g.Assoc) > g.Size {
		return fmt.Errorf("cache: size %d too small for %d ways of %d-byte blocks",
			g.Size, g.Assoc, g.Block)
	}
	return nil
}

// Sets returns the number of sets.
func (g Geometry) Sets() int {
	return int(g.Size / (g.Block * uint64(g.Assoc)))
}

// BlockBits returns log2(block size).
func (g Geometry) BlockBits() uint { return addr.MustLog2(g.Block) }

// SetBits returns log2(number of sets).
func (g Geometry) SetBits() uint { return addr.MustLog2(uint64(g.Sets())) }

// BlockNum returns the block number of byte address a.
func (g Geometry) BlockNum(a uint64) uint64 { return a >> g.BlockBits() }

// Locate maps a byte address to its (set, tag) pair. The tag is the block
// number with the set-index bits stripped, so (set, tag) uniquely names a
// block-aligned address.
func (g Geometry) Locate(a uint64) (set int, tag uint64) {
	block := g.BlockNum(a)
	return int(block & uint64(g.Sets()-1)), block >> g.SetBits()
}

// BlockAddr reconstructs the block-aligned byte address of (set, tag).
func (g Geometry) BlockAddr(set int, tag uint64) uint64 {
	return (tag<<g.SetBits() | uint64(set)) << g.BlockBits()
}

// String renders the geometry as "16K/16B/2-way".
func (g Geometry) String() string {
	return fmt.Sprintf("%s/%dB/%d-way", sizeLabel(g.Size), g.Block, g.Assoc)
}

func sizeLabel(n uint64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// way is one tag-store entry; the payload L carries level-specific bits.
type way[L any] struct {
	tag   uint64
	valid bool
	stamp uint64 // recency (LRU) or insertion order (FIFO)
	line  L
}

// countingSource wraps a rand source and counts the values drawn from it,
// so a restored cache can fast-forward a fresh source to the same position
// regardless of how many draws each Intn call consumed internally.
type countingSource struct {
	src rand.Source
	n   uint64
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Seed(seed int64) { s.src.Seed(seed) }

// Cache is a generic set-associative tag store.
//
// Sets are materialized lazily: construction allocates only the set index,
// and a set's way array is carved from a slab chunk the first time the set
// is filled (or has a victim chosen). Probes of never-filled sets miss on a
// nil slice with no extra branch. This matters for design-space sweeps: a
// short probe trace through a large cache touches a small fraction of the
// sets, so constructing and zeroing the full tag store up front dominated
// multi-configuration sweep time.
type Cache[L any] struct {
	geom   Geometry
	policy Policy
	sets   [][]way[L]
	slab   []way[L] // backing for lazily materialized sets
	clock  uint64
	rng    *rand.Rand
	rngSrc *countingSource
	seed   int64

	// Shift/mask fields derived from geom at construction, so the
	// per-access Locate/BlockNum arithmetic never recomputes a logarithm.
	blockBits uint
	setBits   uint
	setMask   uint64
}

// slabSets is the number of sets' worth of ways per slab chunk (capped at
// the cache's set count, so tiny caches never over-allocate).
const slabSets = 64

// materialize returns set's way array, carving it out of the slab on first
// use.
func (c *Cache[L]) materialize(set int) []way[L] {
	ws := c.sets[set]
	if ws != nil {
		return ws
	}
	a := c.geom.Assoc
	if len(c.slab) < a {
		n := slabSets
		if s := len(c.sets); s < n {
			n = s
		}
		c.slab = make([]way[L], a*n)
	}
	ws = c.slab[:a:a]
	c.slab = c.slab[a:]
	c.sets[set] = ws
	return ws
}

// New builds a cache with the given geometry, replacement policy and (for
// Random replacement) deterministic seed.
func New[L any](g Geometry, policy Policy, seed int64) (*Cache[L], error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	sets := make([][]way[L], g.Sets())
	src := &countingSource{src: rand.NewSource(seed)}
	return &Cache[L]{
		geom:      g,
		policy:    policy,
		sets:      sets,
		rng:       rand.New(src),
		rngSrc:    src,
		seed:      seed,
		blockBits: g.BlockBits(),
		setBits:   g.SetBits(),
		setMask:   uint64(g.Sets() - 1),
	}, nil
}

// MustNew is New but panics on error, for configurations fixed at build
// time.
func MustNew[L any](g Geometry, policy Policy, seed int64) *Cache[L] {
	c, err := New[L](g, policy, seed)
	if err != nil {
		panic(err)
	}
	return c
}

// Geometry returns the cache's shape.
func (c *Cache[L]) Geometry() Geometry { return c.geom }

// BlockNum returns the block number of byte address a using the shift
// precomputed at construction.
func (c *Cache[L]) BlockNum(a uint64) uint64 { return a >> c.blockBits }

// Locate maps a byte address to its (set, tag) pair. It is equivalent to
// Geometry.Locate but uses the cached shift and mask fields, keeping the
// per-reference path free of log2 computation.
func (c *Cache[L]) Locate(a uint64) (set int, tag uint64) {
	block := a >> c.blockBits
	return int(block & c.setMask), block >> c.setBits
}

// BlockAddr reconstructs the block-aligned byte address of (set, tag).
func (c *Cache[L]) BlockAddr(set int, tag uint64) uint64 {
	return (tag<<c.setBits | uint64(set)) << c.blockBits
}

// Sets returns the number of sets.
func (c *Cache[L]) Sets() int { return len(c.sets) }

// Assoc returns the number of ways per set.
func (c *Cache[L]) Assoc() int { return c.geom.Assoc }

// Probe looks for tag in set without updating recency.
func (c *Cache[L]) Probe(set int, tag uint64) (wayIdx int, ok bool) {
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			return i, true
		}
	}
	return -1, false
}

// Touch marks (set, way) most recently used. FIFO caches ignore touches.
func (c *Cache[L]) Touch(set, wayIdx int) {
	if c.policy == FIFO {
		return
	}
	c.clock++
	c.materialize(set)[wayIdx].stamp = c.clock
}

// Line returns a pointer to the payload of (set, way). The pointer stays
// valid until the cache is discarded; invalidation does not clear payloads.
func (c *Cache[L]) Line(set, wayIdx int) *L { return &c.materialize(set)[wayIdx].line }

// TagAt returns the tag stored at (set, way); meaningful only when valid.
func (c *Cache[L]) TagAt(set, wayIdx int) uint64 {
	if ws := c.sets[set]; ws != nil {
		return ws[wayIdx].tag
	}
	return 0
}

// ValidAt reports whether (set, way) holds a valid entry.
func (c *Cache[L]) ValidAt(set, wayIdx int) bool {
	if ws := c.sets[set]; ws != nil {
		return ws[wayIdx].valid
	}
	return false
}

// Victim picks a way of set to replace. Invalid ways are taken first. If
// prefer is non-nil, valid ways satisfying prefer are chosen (by policy)
// before ways that do not, and the second return value reports whether the
// chosen valid victim satisfied prefer. For an invalid way, preferred is
// true.
//
// prefer receives the (set, way) pair, so callers can install one
// long-lived predicate at construction instead of closing over the set on
// every call — the per-reference path then allocates nothing.
func (c *Cache[L]) Victim(set int, prefer func(set, wayIdx int) bool) (wayIdx int, preferred bool) {
	ws := c.materialize(set)
	for i := range ws {
		if !ws[i].valid {
			return i, true
		}
	}
	if prefer != nil {
		if i := c.pick(set, prefer); i >= 0 {
			return i, true
		}
	}
	return c.pick(set, nil), prefer == nil
}

// pick applies the replacement policy over ways of set satisfying filter
// (nil accepts all); returns -1 when none qualifies.
func (c *Cache[L]) pick(set int, filter func(set, wayIdx int) bool) int {
	ws := c.sets[set]
	switch c.policy {
	case Random:
		// Count the qualifying ways, draw once, then walk to the chosen
		// one: same single rng draw (and therefore the same choice) as
		// collecting candidates into a slice, without the allocation.
		n := 0
		for i := range ws {
			if filter == nil || filter(set, i) {
				n++
			}
		}
		if n == 0 {
			return -1
		}
		k := c.rng.Intn(n)
		for i := range ws {
			if filter == nil || filter(set, i) {
				if k == 0 {
					return i
				}
				k--
			}
		}
		panic("cache: random pick out of range")
	default: // LRU and FIFO: minimum stamp
		best, bestStamp := -1, uint64(0)
		for i := range ws {
			if filter != nil && !filter(set, i) {
				continue
			}
			if best == -1 || ws[i].stamp < bestStamp {
				best, bestStamp = i, ws[i].stamp
			}
		}
		return best
	}
}

// Install writes tag into (set, way), marks it valid and most recently used,
// and returns a pointer to the payload for the caller to initialize.
func (c *Cache[L]) Install(set, wayIdx int, tag uint64) *L {
	w := &c.materialize(set)[wayIdx]
	w.tag = tag
	w.valid = true
	c.clock++
	w.stamp = c.clock
	return &w.line
}

// Retag changes the tag of a valid entry in place (the paper's sameset
// synonym handling retags the line under the new virtual address).
func (c *Cache[L]) Retag(set, wayIdx int, tag uint64) {
	w := &c.materialize(set)[wayIdx]
	if !w.valid {
		panic("cache: Retag of invalid way")
	}
	w.tag = tag
}

// Invalidate clears the valid bit of (set, way). The payload is untouched;
// callers that keep state across invalidation (the V-cache's swapped-valid
// blocks) manage it in the payload.
func (c *Cache[L]) Invalidate(set, wayIdx int) {
	if ws := c.sets[set]; ws != nil {
		ws[wayIdx].valid = false
	}
}

// InvalidateAll clears every valid bit. Never-materialized sets hold no
// valid entries and are left alone.
func (c *Cache[L]) InvalidateAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w].valid = false
		}
	}
}

// ForEach visits every way (valid or not) as (set, way), including ways of
// sets that were never materialized.
func (c *Cache[L]) ForEach(fn func(set, wayIdx int)) {
	for s := range c.sets {
		for w := 0; w < c.geom.Assoc; w++ {
			fn(s, w)
		}
	}
}

// ForEachValid visits every valid way as (set, way).
func (c *Cache[L]) ForEachValid(fn func(set, wayIdx int)) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid {
				fn(s, w)
			}
		}
	}
}

// CountValid returns the number of valid entries.
func (c *Cache[L]) CountValid() int {
	n := 0
	c.ForEachValid(func(int, int) { n++ })
	return n
}

// Entry is one way's serializable state (checkpoint support).
type Entry[L any] struct {
	Tag   uint64
	Valid bool
	Stamp uint64
	Line  L
}

// State is a tag store's serializable state: the recency clock, the rng
// draw count (Random replacement only), and every way in (set, way) order.
// The payloads are shallow copies; callers whose payload holds reference
// types deep-copy around Export/Restore.
type State[L any] struct {
	Clock uint64
	Draws uint64
	Ways  []Entry[L]
}

// ExportState captures the tag store's full contents, walking ways in
// deterministic (set, way) order so identical caches export identical
// states.
func (c *Cache[L]) ExportState() State[L] {
	s := State[L]{Clock: c.clock, Draws: c.rngSrc.n, Ways: make([]Entry[L], 0, len(c.sets)*c.geom.Assoc)}
	for _, ws := range c.sets {
		if ws == nil {
			// Never-materialized sets export as zero entries, identical to
			// what an eagerly allocated untouched set would produce.
			for i := 0; i < c.geom.Assoc; i++ {
				s.Ways = append(s.Ways, Entry[L]{})
			}
			continue
		}
		for i := range ws {
			w := &ws[i]
			s.Ways = append(s.Ways, Entry[L]{Tag: w.tag, Valid: w.valid, Stamp: w.stamp, Line: w.line})
		}
	}
	return s
}

// RestoreState replaces the tag store's contents with a previously exported
// state. The way count must match the cache's geometry, and no stamp may be
// ahead of the recency clock; the rng is rewound to the construction seed
// and the recorded draws are replayed so Random replacement continues
// identically.
func (c *Cache[L]) RestoreState(s State[L]) error {
	if len(s.Ways) != len(c.sets)*c.geom.Assoc {
		return fmt.Errorf("cache: state has %d ways, geometry %v needs %d",
			len(s.Ways), c.geom, len(c.sets)*c.geom.Assoc)
	}
	for i := range s.Ways {
		if s.Ways[i].Stamp > s.Clock {
			return fmt.Errorf("cache: state way %d stamp %d is ahead of clock %d",
				i, s.Ways[i].Stamp, s.Clock)
		}
	}
	c.clock = s.Clock
	c.rngSrc = &countingSource{src: rand.NewSource(c.seed)}
	c.rng = rand.New(c.rngSrc)
	for d := uint64(0); d < s.Draws; d++ {
		c.rngSrc.Int63()
	}
	c.rngSrc.n = s.Draws
	// Restore materializes every set: a payload may carry meaningful state
	// even on an invalid line (the V-cache keeps swapped blocks there), so
	// no set can be skipped as trivially empty.
	k := 0
	for si := range c.sets {
		ws := c.materialize(si)
		for i := range ws {
			e := &s.Ways[k]
			ws[i] = way[L]{tag: e.Tag, valid: e.Valid, stamp: e.Stamp, line: e.Line}
			k++
		}
	}
	return nil
}
