package cache

import (
	"strings"
	"testing"
	"testing/quick"
)

func dm16K() Geometry { return Geometry{Size: 16 << 10, Block: 16, Assoc: 1} }

func TestGeometryValidate(t *testing.T) {
	good := []Geometry{
		dm16K(),
		{Size: 256 << 10, Block: 32, Assoc: 4},
		{Size: 64, Block: 16, Assoc: 4}, // fully associative
		{Size: 512, Block: 16, Assoc: 1},
	}
	for _, g := range good {
		if err := g.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", g, err)
		}
	}
	bad := []Geometry{
		{Size: 0, Block: 16, Assoc: 1},
		{Size: 1000, Block: 16, Assoc: 1},
		{Size: 16 << 10, Block: 0, Assoc: 1},
		{Size: 16 << 10, Block: 17, Assoc: 1},
		{Size: 16 << 10, Block: 16, Assoc: 0},
		{Size: 16 << 10, Block: 16, Assoc: 3},
		{Size: 16 << 10, Block: 16, Assoc: -4},
		{Size: 32, Block: 16, Assoc: 4}, // too small
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("Validate(%v) = nil, want error", g)
		}
	}
}

func TestGeometrySets(t *testing.T) {
	cases := []struct {
		g    Geometry
		want int
	}{
		{dm16K(), 1024},
		{Geometry{Size: 256 << 10, Block: 32, Assoc: 4}, 2048},
		{Geometry{Size: 64, Block: 16, Assoc: 4}, 1},
	}
	for _, c := range cases {
		if got := c.g.Sets(); got != c.want {
			t.Errorf("Sets(%v) = %d, want %d", c.g, got, c.want)
		}
	}
}

func TestLocateRoundTrip(t *testing.T) {
	for _, g := range []Geometry{
		dm16K(),
		{Size: 256 << 10, Block: 32, Assoc: 4},
		{Size: 64, Block: 16, Assoc: 4},
	} {
		f := func(a uint64) bool {
			set, tag := g.Locate(a)
			back := g.BlockAddr(set, tag)
			return back == a&^(g.Block-1) && set >= 0 && set < g.Sets()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("geometry %v: %v", g, err)
		}
	}
}

func TestLocateDistinguishesBlocks(t *testing.T) {
	g := dm16K()
	s1, t1 := g.Locate(0x1000)
	s2, t2 := g.Locate(0x1010)
	if s1 == s2 && t1 == t2 {
		t.Error("adjacent blocks mapped to same (set, tag)")
	}
	s3, t3 := g.Locate(0x1004)
	if s3 != s1 || t3 != t1 {
		t.Error("same-block addresses mapped differently")
	}
}

func TestGeometryString(t *testing.T) {
	if got := dm16K().String(); got != "16K/16B/1-way" {
		t.Errorf("String = %q", got)
	}
	g := Geometry{Size: 2 << 20, Block: 64, Assoc: 8}
	if got := g.String(); got != "2M/64B/8-way" {
		t.Errorf("String = %q", got)
	}
	g = Geometry{Size: 512, Block: 16, Assoc: 1}
	if got := g.String(); !strings.HasPrefix(got, "512/") {
		t.Errorf("String = %q", got)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || Random.String() != "Random" {
		t.Error("policy names wrong")
	}
	if !strings.Contains(Policy(9).String(), "9") {
		t.Error("unknown policy should include number")
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New[int](Geometry{Size: 5}, LRU, 0); err == nil {
		t.Fatal("bad geometry accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad geometry did not panic")
		}
	}()
	MustNew[int](Geometry{Size: 5}, LRU, 0)
}

func TestProbeInstall(t *testing.T) {
	c := MustNew[int](Geometry{Size: 64, Block: 16, Assoc: 2}, LRU, 0)
	if _, ok := c.Probe(0, 42); ok {
		t.Fatal("probe of empty cache hit")
	}
	w, pref := c.Victim(0, nil)
	if !pref {
		t.Error("victim in non-full set should be an invalid way (preferred)")
	}
	line := c.Install(0, w, 42)
	*line = 7
	got, ok := c.Probe(0, 42)
	if !ok || got != w {
		t.Fatalf("probe after install: way %d ok %v", got, ok)
	}
	if *c.Line(0, got) != 7 {
		t.Error("payload lost")
	}
	if c.TagAt(0, got) != 42 || !c.ValidAt(0, got) {
		t.Error("tag/valid wrong after install")
	}
}

func TestLRUVictim(t *testing.T) {
	// 2-way set; fill, touch way of tag 1, then victim must be tag 2's way.
	c := MustNew[int](Geometry{Size: 32, Block: 16, Assoc: 2}, LRU, 0)
	w1, _ := c.Victim(0, nil)
	c.Install(0, w1, 1)
	w2, _ := c.Victim(0, nil)
	c.Install(0, w2, 2)
	if w1 == w2 {
		t.Fatal("both installs picked the same way")
	}
	c.Touch(0, w1)
	v, pref := c.Victim(0, nil)
	if v != w2 {
		t.Errorf("LRU victim = way %d (tag %d), want way %d", v, c.TagAt(0, v), w2)
	}
	if !pref {
		t.Error("with nil prefer, victim should report preferred")
	}
}

func TestLRUTouchOrdering(t *testing.T) {
	c := MustNew[int](Geometry{Size: 64, Block: 16, Assoc: 4}, LRU, 0)
	for tag := uint64(1); tag <= 4; tag++ {
		w, _ := c.Victim(0, nil)
		c.Install(0, w, tag)
	}
	// Touch tags 2,3,4 -> tag 1 is LRU.
	for tag := uint64(2); tag <= 4; tag++ {
		w, ok := c.Probe(0, tag)
		if !ok {
			t.Fatalf("tag %d missing", tag)
		}
		c.Touch(0, w)
	}
	v, _ := c.Victim(0, nil)
	if c.TagAt(0, v) != 1 {
		t.Errorf("LRU victim tag = %d, want 1", c.TagAt(0, v))
	}
}

func TestFIFOIgnoresTouch(t *testing.T) {
	c := MustNew[int](Geometry{Size: 32, Block: 16, Assoc: 2}, FIFO, 0)
	w1, _ := c.Victim(0, nil)
	c.Install(0, w1, 1)
	w2, _ := c.Victim(0, nil)
	c.Install(0, w2, 2)
	c.Touch(0, w1) // FIFO: no effect
	v, _ := c.Victim(0, nil)
	if v != w1 {
		t.Errorf("FIFO victim = way %d, want first-installed way %d", v, w1)
	}
}

func TestRandomVictimDeterministicSeed(t *testing.T) {
	mk := func(seed int64) []int {
		c := MustNew[int](Geometry{Size: 64, Block: 16, Assoc: 4}, Random, seed)
		for tag := uint64(1); tag <= 4; tag++ {
			w, _ := c.Victim(0, nil)
			c.Install(0, w, tag)
		}
		var picks []int
		for i := 0; i < 16; i++ {
			v, _ := c.Victim(0, nil)
			picks = append(picks, v)
		}
		return picks
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different victim sequences")
		}
	}
}

func TestVictimPreference(t *testing.T) {
	c := MustNew[int](Geometry{Size: 64, Block: 16, Assoc: 4}, LRU, 0)
	for tag := uint64(1); tag <= 4; tag++ {
		w, _ := c.Victim(0, nil)
		*c.Install(0, w, tag) = int(tag)
	}
	// Prefer ways whose payload is even.
	v, pref := c.Victim(0, func(set, w int) bool { return *c.Line(set, w)%2 == 0 })
	if !pref {
		t.Fatal("preference not honored though candidates exist")
	}
	if *c.Line(0, v)%2 != 0 {
		t.Errorf("victim payload %d is odd", *c.Line(0, v))
	}
	// No way qualifies: falls back, preferred=false.
	v2, pref2 := c.Victim(0, func(int, int) bool { return false })
	if pref2 {
		t.Error("impossible preference reported as honored")
	}
	if v2 < 0 || v2 >= 4 {
		t.Errorf("fallback victim out of range: %d", v2)
	}
}

func TestVictimPreferenceFollowsLRUAmongPreferred(t *testing.T) {
	c := MustNew[int](Geometry{Size: 64, Block: 16, Assoc: 4}, LRU, 0)
	for tag := uint64(1); tag <= 4; tag++ {
		w, _ := c.Victim(0, nil)
		c.Install(0, w, tag)
	}
	// All preferred; LRU among them is tag 1.
	v, _ := c.Victim(0, func(int, int) bool { return true })
	if c.TagAt(0, v) != 1 {
		t.Errorf("preferred LRU victim tag = %d, want 1", c.TagAt(0, v))
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew[int](Geometry{Size: 32, Block: 16, Assoc: 2}, LRU, 0)
	w, _ := c.Victim(0, nil)
	*c.Install(0, w, 5) = 99
	c.Invalidate(0, w)
	if _, ok := c.Probe(0, 5); ok {
		t.Error("probe hit after invalidate")
	}
	if *c.Line(0, w) != 99 {
		t.Error("payload should survive invalidation")
	}
	// Invalid way is the next victim.
	v, pref := c.Victim(0, nil)
	if v != w || !pref {
		t.Error("invalid way not chosen as victim")
	}
}

func TestInvalidateAllAndCountValid(t *testing.T) {
	c := MustNew[int](Geometry{Size: 128, Block: 16, Assoc: 2}, LRU, 0)
	addrs := []uint64{0x00, 0x10, 0x20, 0x30, 0x40}
	for _, a := range addrs {
		set, tag := c.Geometry().Locate(a)
		w, _ := c.Victim(set, nil)
		c.Install(set, w, tag)
	}
	if got := c.CountValid(); got != len(addrs) {
		t.Fatalf("CountValid = %d, want %d", got, len(addrs))
	}
	c.InvalidateAll()
	if got := c.CountValid(); got != 0 {
		t.Fatalf("CountValid after InvalidateAll = %d", got)
	}
}

func TestRetag(t *testing.T) {
	c := MustNew[int](Geometry{Size: 32, Block: 16, Assoc: 2}, LRU, 0)
	w, _ := c.Victim(0, nil)
	*c.Install(0, w, 5) = 77
	c.Retag(0, w, 9)
	if _, ok := c.Probe(0, 5); ok {
		t.Error("old tag still hits after retag")
	}
	got, ok := c.Probe(0, 9)
	if !ok || got != w || *c.Line(0, got) != 77 {
		t.Error("retagged entry lost")
	}
}

func TestRetagInvalidPanics(t *testing.T) {
	c := MustNew[int](Geometry{Size: 32, Block: 16, Assoc: 2}, LRU, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Retag of invalid way did not panic")
		}
	}()
	c.Retag(0, 0, 1)
}

func TestForEach(t *testing.T) {
	c := MustNew[int](Geometry{Size: 64, Block: 16, Assoc: 2}, LRU, 0)
	n := 0
	c.ForEach(func(int, int) { n++ })
	if n != 4 {
		t.Errorf("ForEach visited %d ways, want 4", n)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// Two addresses one cache-size apart conflict in a direct-mapped cache.
	g := Geometry{Size: 256, Block: 16, Assoc: 1}
	c := MustNew[int](g, LRU, 0)
	s1, t1 := g.Locate(0x000)
	s2, t2 := g.Locate(0x100)
	if s1 != s2 {
		t.Fatal("expected conflicting sets")
	}
	w, _ := c.Victim(s1, nil)
	c.Install(s1, w, t1)
	w2, pref := c.Victim(s2, nil)
	if pref == true && !c.ValidAt(s2, w2) {
		// ok: but in a full 1-way set the victim must be the valid way
	}
	c.Install(s2, w2, t2)
	if _, ok := c.Probe(s1, t1); ok {
		t.Error("direct-mapped conflict did not evict")
	}
}

// Property: after any sequence of installs the cache never holds two valid
// ways with the same tag in one set.
func TestNoDuplicateTagsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		g := Geometry{Size: 256, Block: 16, Assoc: 4}
		c := MustNew[int](g, LRU, 1)
		for _, op := range ops {
			a := uint64(op) * 8
			set, tag := g.Locate(a)
			if w, ok := c.Probe(set, tag); ok {
				c.Touch(set, w)
				continue
			}
			w, _ := c.Victim(set, nil)
			c.Install(set, w, tag)
		}
		for s := 0; s < c.Sets(); s++ {
			seen := map[uint64]bool{}
			for w := 0; w < c.Assoc(); w++ {
				if !c.ValidAt(s, w) {
					continue
				}
				if seen[c.TagAt(s, w)] {
					return false
				}
				seen[c.TagAt(s, w)] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: LRU with a working set no larger than associativity never
// evicts a live block (all ways in one set).
func TestLRUNoEvictSmallWorkingSet(t *testing.T) {
	g := Geometry{Size: 64, Block: 16, Assoc: 4}
	c := MustNew[int](g, LRU, 0)
	tags := []uint64{10, 20, 30, 40}
	miss := 0
	for round := 0; round < 10; round++ {
		for _, tag := range tags {
			if w, ok := c.Probe(0, tag); ok {
				c.Touch(0, w)
				continue
			}
			miss++
			w, _ := c.Victim(0, nil)
			c.Install(0, w, tag)
		}
	}
	if miss != len(tags) {
		t.Errorf("misses = %d, want %d cold misses only", miss, len(tags))
	}
}
