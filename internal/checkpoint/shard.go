package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"repro/internal/sweep"
	"repro/internal/system"
	"repro/internal/trace"
)

// ShardOptions configures a time-sharded run. The trace must be
// deterministic and regenerable from scratch (Source is called once per
// shard plus once for any prior pass), and the systems NewSystem builds
// must be cold, identically configured, and free of the features a
// checkpoint refuses (probe, periodic auditor) and of the consistency
// oracle — a shard that skips the trace prefix cannot know the tokens
// earlier writes left behind.
type ShardOptions struct {
	// Shards is the number of trace windows, K >= 1.
	Shards int
	// Workers bounds the worker goroutines (default GOMAXPROCS).
	Workers int
	// Warmup is the number of memory references simulated before each
	// window in approximate mode to rebuild cache and TLB contents the
	// shard did not simulate. Ignored in exact mode.
	Warmup uint64
	// TotalRefs is the trace's length in memory references (context
	// switches excluded); window boundaries are cut in these units.
	TotalRefs uint64
	// Exact selects exact mode: a sequential prior pass checkpoints the
	// machine at every boundary, each shard resumes from its checkpoint,
	// and every shard's end state is byte-compared against the next
	// boundary's checkpoint — the differential verification of the
	// checkpoint layer. Approximate mode (the default) skips the prefix,
	// warms up, and measures only its own window.
	Exact bool
	// Signature identifies the configuration+workload (checkpoint
	// provenance).
	Signature string
	// NewSystem builds one cold machine.
	NewSystem func() (*system.System, error)
	// Source regenerates the trace from its first record.
	Source func() (trace.Reader, error)
}

// ShardOutcome reports what a sharded run did.
type ShardOutcome struct {
	Mode       string   // "exact" or "approximate"
	Shards     int      //
	Warmup     uint64   // approximate mode's warm-up prefix, in references
	Boundaries []uint64 // window starts in memory references, plus TotalRefs
	Verified   int      // exact mode: shard end states byte-matched against checkpoints
}

func (o *ShardOptions) validate() error {
	if o.Shards < 1 {
		return fmt.Errorf("checkpoint: %d shards", o.Shards)
	}
	if o.NewSystem == nil || o.Source == nil {
		return fmt.Errorf("checkpoint: NewSystem and Source are required")
	}
	if o.TotalRefs == 0 {
		return fmt.Errorf("checkpoint: TotalRefs is required")
	}
	return nil
}

// boundaries returns the window starts plus the total: boundaries[k] is
// shard k's first reference, boundaries[K] == TotalRefs.
func (o *ShardOptions) boundaries() []uint64 {
	b := make([]uint64, o.Shards+1)
	for k := 0; k <= o.Shards; k++ {
		b[k] = uint64(k) * o.TotalRefs / uint64(o.Shards)
	}
	return b
}

// ShardedRun splits the trace into opts.Shards windows, simulates them on
// worker goroutines, and returns a system holding the stitched statistics
// (shard statistics merged through the same Add paths the reports read)
// plus an outcome summary. See ShardOptions.Exact for the two modes.
func ShardedRun(opts ShardOptions) (*system.System, *ShardOutcome, error) {
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if opts.Exact {
		return exactRun(opts)
	}
	return approxRun(opts)
}

// skipTranslating discards n memory references from r while still walking
// every reference through sys's MMU. Demand paging assigns frames in
// first-touch order, so translating the skipped prefix gives the shard the
// exact page tables the sequential run had at this point — frame layout,
// and with it physical cache indexing, does not diverge. Costs a map
// lookup per reference instead of a full simulation step.
func skipTranslating(sys *system.System, r trace.Reader, n uint64) (uint64, error) {
	mmu := sys.MMU()
	buf := make([]trace.Ref, 4096)
	var done uint64
	for done < n {
		// Never request more records than references still owed: a batch
		// can then only reach the nth reference as its final record, so the
		// reader is left positioned exactly where a record-at-a-time skip
		// would leave it.
		want := n - done
		if want > uint64(len(buf)) {
			want = uint64(len(buf))
		}
		got, err := trace.FillBatch(r, buf[:want])
		for _, ref := range buf[:got] {
			if ref.Kind == trace.CtxSwitch {
				continue
			}
			mmu.Translate(ref.PID, ref.Addr)
			done++
		}
		if errors.Is(err, io.EOF) {
			return done, nil
		}
		if err != nil {
			return done, err
		}
	}
	return done, nil
}

// approxRun is the embarrassingly parallel mode: each shard rebuilds its
// warm state by simulating a Warmup-reference prefix, measures its own
// window, and the windows' statistics are merged.
func approxRun(opts ShardOptions) (*system.System, *ShardOutcome, error) {
	bounds := opts.boundaries()
	systems := make([]*system.System, opts.Shards)
	err := sweep.Parallel(opts.Shards, opts.Workers, func(k int) error {
		sys, err := opts.NewSystem()
		if err != nil {
			return err
		}
		r, err := opts.Source()
		if err != nil {
			return err
		}
		start, end := bounds[k], bounds[k+1]
		warm := opts.Warmup
		if warm > start {
			warm = start
		}
		if n, err := skipTranslating(sys, r, start-warm); err != nil {
			return err
		} else if n != start-warm {
			return fmt.Errorf("trace ended %d references into a %d-reference skip", n, start-warm)
		}
		if n, err := sys.RunRefs(r, warm); err != nil {
			return err
		} else if n != warm {
			return fmt.Errorf("trace ended %d references into a %d-reference warm-up", n, warm)
		}
		// Only the window is measured; the warm-up (and the skipped MMU
		// walk's translation counters) are scaffolding.
		sys.ResetStats()
		if n, err := sys.RunRefs(r, end-start); err != nil {
			return err
		} else if n != end-start {
			return fmt.Errorf("trace ended %d references into a %d-reference window", n, end-start)
		}
		sys.Drain()
		systems[k] = sys
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	merged := systems[0]
	for _, sys := range systems[1:] {
		if err := merged.MergeStatsFrom(sys); err != nil {
			return nil, nil, err
		}
	}
	return merged, &ShardOutcome{
		Mode:       "approximate",
		Shards:     opts.Shards,
		Warmup:     opts.Warmup,
		Boundaries: bounds,
	}, nil
}

// exactRun is the checkpoint-verified mode. A sequential prior pass saves
// a checkpoint at every window boundary; the shards then restore their
// starting checkpoints in parallel, re-simulate their windows, and each
// end state must encode byte-identically to the next boundary's
// checkpoint. The returned system is the last shard's — its statistics are
// cumulative from reference zero, exactly the sequential run's.
func exactRun(opts ShardOptions) (*system.System, *ShardOutcome, error) {
	bounds := opts.boundaries()

	// Prior pass: simulate sequentially, checkpointing at each boundary.
	seq, err := opts.NewSystem()
	if err != nil {
		return nil, nil, err
	}
	r, err := opts.Source()
	if err != nil {
		return nil, nil, err
	}
	cr := &countingReader{r: r}
	checks := make([]*Checkpoint, opts.Shards+1)
	if checks[0], err = Capture(seq, opts.Signature, 0); err != nil {
		return nil, nil, err
	}
	for k := 1; k <= opts.Shards; k++ {
		want := bounds[k] - bounds[k-1]
		if n, err := seq.RunRefs(cr, want); err != nil {
			return nil, nil, err
		} else if n != want {
			return nil, nil, fmt.Errorf("checkpoint: trace ended %d references into window %d", n, k-1)
		}
		if checks[k], err = Capture(seq, opts.Signature, cr.n); err != nil {
			return nil, nil, err
		}
	}

	// Parallel pass: every shard resumes its checkpoint, runs its window,
	// and must land byte-exactly on the next checkpoint.
	final := make([]*system.System, opts.Shards)
	err = sweep.Parallel(opts.Shards, opts.Workers, func(k int) error {
		sys, err := opts.NewSystem()
		if err != nil {
			return err
		}
		if err := Restore(sys, checks[k], opts.Signature); err != nil {
			return err
		}
		r, err := ResumeReader(opts.Source, checks[k])
		if err != nil {
			return err
		}
		cr := &countingReader{r: r, n: checks[k].Cursor}
		want := bounds[k+1] - bounds[k]
		if n, err := sys.RunRefs(cr, want); err != nil {
			return err
		} else if n != want {
			return fmt.Errorf("trace ended %d references into the window", n)
		}
		got, err := Capture(sys, opts.Signature, cr.n)
		if err != nil {
			return err
		}
		if !bytes.Equal(got.Encode(), checks[k+1].Encode()) {
			return fmt.Errorf("shard end state diverges from the boundary-%d checkpoint", k+1)
		}
		final[k] = sys
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	last := final[opts.Shards-1]
	last.Drain()
	return last, &ShardOutcome{
		Mode:       "exact",
		Shards:     opts.Shards,
		Boundaries: bounds,
		Verified:   opts.Shards,
	}, nil
}

// countingReader counts every record (references and context switches)
// passing through, maintaining the trace cursor checkpoints store.
type countingReader struct {
	r trace.Reader
	n uint64
}

func (c *countingReader) Next() (trace.Ref, error) {
	ref, err := c.r.Next()
	if err == nil {
		c.n++
	}
	return ref, err
}
