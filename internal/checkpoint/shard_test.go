package checkpoint

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// shardOpts builds ShardOptions for a scenario.
func shardOpts(cfg system.Config, tc tracegen.Config, shards int, warmup uint64, exact bool) ShardOptions {
	return ShardOptions{
		Shards:    shards,
		Warmup:    warmup,
		TotalRefs: uint64(tc.TotalRefs),
		Exact:     exact,
		Signature: tc.Signature() + "|" + cfg.Organization.String(),
		NewSystem: func() (*system.System, error) {
			sys, err := system.New(cfg)
			if err != nil {
				return nil, err
			}
			if err := tc.SetupSharedMappings(sys.MMU()); err != nil {
				return nil, err
			}
			return sys, nil
		},
		Source: func() (trace.Reader, error) { return tracegen.MustNew(tc), nil },
	}
}

// TestExactShardedMatchesSequential: exact mode must reproduce the
// sequential run's full JSON report byte-for-byte — every shard resumed
// from a checkpoint, re-simulated, and byte-verified against the next
// boundary.
func TestExactShardedMatchesSequential(t *testing.T) {
	for _, org := range []system.Organization{system.VR, system.RRNoInclusion} {
		org := org
		t.Run(org.String(), func(t *testing.T) {
			t.Parallel()
			cfg := testMachine(org, 2)
			tc := testWorkload(t, "pops", 0.01, 2)
			want := runUninterrupted(t, cfg, tc)

			sys, outcome, err := ShardedRun(shardOpts(cfg, tc, 4, 0, true))
			if err != nil {
				t.Fatal(err)
			}
			if outcome.Verified != 4 {
				t.Errorf("verified %d of 4 boundaries", outcome.Verified)
			}
			if got := reportJSON(t, sys, cfg); !bytes.Equal(want, got) {
				t.Errorf("exact sharded report diverges:\nsequential:\n%s\nsharded:\n%s", want, got)
			}
		})
	}
}

// TestExactShardedCatchesCorruption: the differential harness must notice
// when a restored shard does not land on the next boundary's state. A
// workload whose signature (and thus trace) differs between the prior pass
// and nothing else would be caught by the signature check, so corrupt the
// comparison itself: run with a Source whose second regeneration uses a
// different seed.
func TestExactShardedCatchesCorruption(t *testing.T) {
	cfg := testMachine(system.VR, 1)
	tc := testWorkload(t, "pops", 0.005, 1)
	opts := shardOpts(cfg, tc, 2, 0, true)
	calls := 0
	opts.Source = func() (trace.Reader, error) {
		calls++
		cc := tc
		if calls > 1 {
			cc.Seed++ // shards replay a different trace than the prior pass
		}
		return tracegen.MustNew(cc), nil
	}
	if _, _, err := ShardedRun(opts); err == nil {
		t.Fatal("sharded run over a diverging trace passed verification")
	}
}

// TestApproxShardedWithinTolerance: with a 64K-reference warm-up, every
// hit ratio of the approximate sharded run must agree with the sequential
// run within 1e-3.
func TestApproxShardedWithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-thousand-reference run")
	}
	cfg := testMachine(system.VR, 2)
	tc := testWorkload(t, "pops", 0.1, 2) // ~329k references
	seq := build(t, cfg, tc)
	if err := seq.Run(tracegen.MustNew(tc)); err != nil {
		t.Fatal(err)
	}
	shard, outcome, err := ShardedRun(shardOpts(cfg, tc, 4, 65536, false))
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Mode != "approximate" || outcome.Warmup != 65536 {
		t.Errorf("outcome = %+v", outcome)
	}
	if shard.Refs() != seq.Refs() {
		t.Errorf("sharded run measured %d references, sequential %d", shard.Refs(), seq.Refs())
	}
	a, b := seq.Aggregate(), shard.Aggregate()
	ratios := [][3]interface{}{
		{"L1 overall", a.L1.Overall, b.L1.Overall},
		{"L1 read", a.L1.DataRead, b.L1.DataRead},
		{"L1 write", a.L1.DataWrite, b.L1.DataWrite},
		{"L1 ifetch", a.L1.Instr, b.L1.Instr},
		{"L2 overall", a.L2.Overall, b.L2.Overall},
		{"L2 read", a.L2.DataRead, b.L2.DataRead},
		{"L2 write", a.L2.DataWrite, b.L2.DataWrite},
		{"L2 ifetch", a.L2.Instr, b.L2.Instr},
	}
	for _, r := range ratios {
		name, want, got := r[0].(string), r[1].(float64), r[2].(float64)
		if d := math.Abs(want - got); d > 1e-3 {
			t.Errorf("%s: sequential %.6f, sharded %.6f (|Δ| = %.2e > 1e-3)", name, want, got, d)
		}
	}
}

// TestShardedRunValidation rejects unusable options.
func TestShardedRunValidation(t *testing.T) {
	cfg := testMachine(system.VR, 1)
	tc := testWorkload(t, "pops", 0.001, 1)
	bad := []ShardOptions{
		{},
		func() ShardOptions { o := shardOpts(cfg, tc, 0, 0, false); return o }(),
		func() ShardOptions { o := shardOpts(cfg, tc, 2, 0, false); o.TotalRefs = 0; return o }(),
		func() ShardOptions { o := shardOpts(cfg, tc, 2, 0, false); o.Source = nil; return o }(),
		func() ShardOptions { o := shardOpts(cfg, tc, 2, 0, false); o.NewSystem = nil; return o }(),
	}
	for i, o := range bad {
		if _, _, err := ShardedRun(o); err == nil {
			t.Errorf("case %d: bad options accepted", i)
		}
	}
}

// TestSingleShardApproxMatchesSequential: one shard with no warm-up is the
// sequential run, so even approximate mode must be byte-identical.
func TestSingleShardApproxMatchesSequential(t *testing.T) {
	cfg := testMachine(system.RRInclusion, 2)
	tc := testWorkload(t, "abaqus", 0.005, 2)
	want := runUninterrupted(t, cfg, tc)
	sys, _, err := ShardedRun(shardOpts(cfg, tc, 1, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, sys, cfg); !bytes.Equal(want, got) {
		t.Errorf("single-shard report diverges:\nsequential:\n%s\nsharded:\n%s", want, got)
	}
}
