package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
)

// The checkpoint file format, version 1:
//
//	"VRCK"            4-byte magic
//	uvarint           format version
//	value             the Checkpoint struct, canonically encoded
//
// The value encoding walks the Go value by reflection, in declared field
// order, with no self-description:
//
//	bool              1 byte, 0 or 1
//	intN              zigzag uvarint
//	uintN             uvarint
//	float64           uvarint of the IEEE 754 bits
//	string            uvarint length + bytes
//	pointer, slice    1-byte nil flag (0 = nil), then (for slices) a
//	                  uvarint length, then the elements
//	array, struct     elements / exported fields in order
//
// Canonical means equal values encode to equal bytes: every aggregate in a
// MachineState is a struct or a sorted slice (never a map), so the byte
// stream is a fingerprint of the machine — the differential harness
// compares checkpoints with bytes.Equal. The decoder is defensive: every
// length is bounds-checked against the remaining input before allocation,
// so arbitrary bytes produce an error, never a panic or a huge allocation.
// It is strict — trailing bytes and non-minimal encodings are the only
// latitude varints allow, and decode→encode restores minimality.

var magic = [4]byte{'V', 'R', 'C', 'K'}

// Version is the current checkpoint format version.
const Version = 1

// encoder accumulates the canonical byte stream.
type encoder struct {
	buf []byte
}

func (e *encoder) uvarint(u uint64) {
	e.buf = binary.AppendUvarint(e.buf, u)
}

func (e *encoder) value(v reflect.Value) {
	switch v.Kind() {
	case reflect.Bool:
		b := byte(0)
		if v.Bool() {
			b = 1
		}
		e.buf = append(e.buf, b)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n := v.Int()
		e.uvarint(uint64(n)<<1 ^ uint64(n>>63)) // zigzag
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		e.uvarint(v.Uint())
	case reflect.Float64:
		e.uvarint(math.Float64bits(v.Float()))
	case reflect.String:
		s := v.String()
		e.uvarint(uint64(len(s)))
		e.buf = append(e.buf, s...)
	case reflect.Ptr:
		if v.IsNil() {
			e.buf = append(e.buf, 0)
			return
		}
		e.buf = append(e.buf, 1)
		e.value(v.Elem())
	case reflect.Slice:
		if v.IsNil() {
			e.buf = append(e.buf, 0)
			return
		}
		e.buf = append(e.buf, 1)
		e.uvarint(uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			e.value(v.Index(i))
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			e.value(v.Index(i))
		}
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				panic(fmt.Sprintf("checkpoint: unexported field %s.%s", t, t.Field(i).Name))
			}
			e.value(v.Field(i))
		}
	default:
		panic(fmt.Sprintf("checkpoint: cannot encode %s", v.Kind()))
	}
}

// decoder consumes the canonical byte stream.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) uvarint() (uint64, error) {
	u, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("checkpoint: bad varint at offset %d", d.off)
	}
	d.off += n
	return u, nil
}

func (d *decoder) byte() (byte, error) {
	if d.remaining() < 1 {
		return 0, fmt.Errorf("checkpoint: truncated at offset %d", d.off)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) value(v reflect.Value) error {
	switch v.Kind() {
	case reflect.Bool:
		b, err := d.byte()
		if err != nil {
			return err
		}
		if b > 1 {
			return fmt.Errorf("checkpoint: bad bool %d at offset %d", b, d.off-1)
		}
		v.SetBool(b == 1)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		u, err := d.uvarint()
		if err != nil {
			return err
		}
		n := int64(u>>1) ^ -int64(u&1) // un-zigzag
		if v.OverflowInt(n) {
			return fmt.Errorf("checkpoint: %d overflows %s", n, v.Type())
		}
		v.SetInt(n)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		u, err := d.uvarint()
		if err != nil {
			return err
		}
		if v.OverflowUint(u) {
			return fmt.Errorf("checkpoint: %d overflows %s", u, v.Type())
		}
		v.SetUint(u)
	case reflect.Float64:
		u, err := d.uvarint()
		if err != nil {
			return err
		}
		v.SetFloat(math.Float64frombits(u))
	case reflect.String:
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(d.remaining()) {
			return fmt.Errorf("checkpoint: string length %d exceeds %d remaining bytes", n, d.remaining())
		}
		v.SetString(string(d.buf[d.off : d.off+int(n)]))
		d.off += int(n)
	case reflect.Ptr:
		b, err := d.byte()
		if err != nil {
			return err
		}
		switch b {
		case 0:
			v.Set(reflect.Zero(v.Type()))
		case 1:
			v.Set(reflect.New(v.Type().Elem()))
			return d.value(v.Elem())
		default:
			return fmt.Errorf("checkpoint: bad pointer flag %d at offset %d", b, d.off-1)
		}
	case reflect.Slice:
		b, err := d.byte()
		if err != nil {
			return err
		}
		switch b {
		case 0:
			v.Set(reflect.Zero(v.Type()))
		case 1:
			n, err := d.uvarint()
			if err != nil {
				return err
			}
			// Every element occupies at least one byte, so a length beyond
			// the remaining input is malformed; checking before allocating
			// keeps hostile input from forcing huge slices.
			if n > uint64(d.remaining()) {
				return fmt.Errorf("checkpoint: slice length %d exceeds %d remaining bytes", n, d.remaining())
			}
			s := reflect.MakeSlice(v.Type(), int(n), int(n))
			for i := 0; i < int(n); i++ {
				if err := d.value(s.Index(i)); err != nil {
					return err
				}
			}
			v.Set(s)
		default:
			return fmt.Errorf("checkpoint: bad slice flag %d at offset %d", b, d.off-1)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if err := d.value(v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				return fmt.Errorf("checkpoint: unexported field %s.%s", t, t.Field(i).Name)
			}
			if err := d.value(v.Field(i)); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("checkpoint: cannot decode %s", v.Kind())
	}
	return nil
}

// Encode serializes c into the versioned binary format. Equal checkpoints
// encode to equal bytes.
func (c *Checkpoint) Encode() []byte {
	e := &encoder{buf: make([]byte, 0, 1<<16)}
	e.buf = append(e.buf, magic[:]...)
	e.uvarint(Version)
	e.value(reflect.ValueOf(c).Elem())
	return e.buf
}

// Decode parses a checkpoint from the versioned binary format. Malformed
// input of any shape returns an error; Decode never panics.
func Decode(data []byte) (*Checkpoint, error) {
	if len(data) < len(magic) || [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic")
	}
	d := &decoder{buf: data, off: len(magic)}
	ver, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("checkpoint: format version %d, this build reads %d", ver, Version)
	}
	c := &Checkpoint{}
	if err := d.value(reflect.ValueOf(c).Elem()); err != nil {
		return nil, err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes", d.remaining())
	}
	return c, nil
}
