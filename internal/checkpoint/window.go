package checkpoint

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/system"
	"repro/internal/trace"
)

// Window is one approximate time shard: references [Start, End) are
// measured after a Warmup-reference prefix rebuilds cache and TLB contents
// (clamped to Start when the window sits near the trace's head). Bounds are
// in memory references; context switches pass through uncounted, exactly as
// ShardedRun cuts its windows.
type Window struct {
	Start, End uint64
	Warmup     uint64
}

// RunWindow drives every system through one approximate window off a single
// shared pass over r — the inner cell of the autotuner's 2D (configurations
// × time shards) schedule. It composes the sweep engine's fan-out with
// ShardedRun's approximate mode: the skipped prefix is still translated
// through every system's MMU so demand paging assigns frames in first-touch
// order (physical indexing cannot diverge from a full run), the warm-up is
// simulated and then discarded by ResetStats, and only [Start, End) lands
// in the statistics, with write buffers drained at the end.
//
// Each batch is read once and applied to every system in turn, so G
// configurations share one trace pass instead of G regenerations. Errors
// are annotated with the failing system's index; the first failure aborts.
func RunWindow(systems []*system.System, r trace.Reader, w Window) error {
	if w.End < w.Start {
		return fmt.Errorf("checkpoint: window [%d, %d) is inverted", w.Start, w.End)
	}
	warm := w.Warmup
	if warm > w.Start {
		warm = w.Start
	}
	buf := make([]trace.Ref, 4096)

	// Phase 1: skip [0, Start-warm), translating through every MMU.
	remaining := w.Start - warm
	for remaining > 0 {
		n, refs, err := trace.FillBatchRefs(r, buf, remaining)
		for _, sys := range systems {
			mmu := sys.MMU()
			for _, ref := range buf[:n] {
				if ref.Kind != trace.CtxSwitch {
					mmu.Translate(ref.PID, ref.Addr)
				}
			}
		}
		remaining -= refs
		if err != nil {
			if errors.Is(err, io.EOF) && remaining > 0 {
				return fmt.Errorf("checkpoint: trace ended %d references short of the skip", remaining)
			}
			if !errors.Is(err, io.EOF) {
				return err
			}
		}
	}

	// Phase 2: warm-up — simulated, then discarded.
	if err := applyRefs(systems, r, buf, warm, "warm-up"); err != nil {
		return err
	}
	for _, sys := range systems {
		sys.ResetStats()
	}

	// Phase 3: the measured window.
	if err := applyRefs(systems, r, buf, w.End-w.Start, "window"); err != nil {
		return err
	}
	for _, sys := range systems {
		sys.Drain()
	}
	return nil
}

// applyRefs streams exactly want memory references from r into every
// system, sharing each batch across all of them.
func applyRefs(systems []*system.System, r trace.Reader, buf []trace.Ref, want uint64, phase string) error {
	remaining := want
	for remaining > 0 {
		n, refs, err := trace.FillBatchRefs(r, buf, remaining)
		for i, sys := range systems {
			if aerr := sys.ApplyBatch(buf[:n]); aerr != nil {
				return fmt.Errorf("checkpoint: system %d: %w", i, aerr)
			}
		}
		remaining -= refs
		if err != nil {
			if errors.Is(err, io.EOF) && remaining > 0 {
				return fmt.Errorf("checkpoint: trace ended %d references into a %d-reference %s",
					want-remaining, want, phase)
			}
			if !errors.Is(err, io.EOF) {
				return err
			}
		}
	}
	return nil
}
