package checkpoint

import (
	"fmt"
	"testing"

	"repro/internal/system"
	"repro/internal/tracegen"
)

// windowSnapshot captures everything a probe pass reads from a system
// (scalar counters only — interval trackers are pointers whose addresses
// would always differ).
func windowSnapshot(sys *system.System) string {
	s := fmt.Sprintf("refs=%d agg=%+v coh=%v", sys.Refs(), sys.Aggregate(), sys.CoherenceMessages())
	for i := 0; i < sys.CPUs(); i++ {
		st := sys.Stats(i)
		s += fmt.Sprintf(" cpu%d{l1=%+v l2=%+v tlb=%+v wb=%d swapped=%d eager=%d incl=%d stalls=%d ctx=%d syn=%v coh=%d}",
			i, st.L1, st.L2, st.TLB, st.WriteBacks, st.SwappedWriteBacks,
			st.EagerFlushWriteBacks, st.InclusionInvals, st.BufferStalls,
			st.CtxSwitches, st.Synonyms, st.Coherence.Total())
	}
	return s
}

// TestRunWindowMatchesPerSystem proves the shared-batch window run produces,
// for every system, exactly the state a solo skip+warm+measure pass over a
// fresh trace would: the fan-out changes the schedule, never the stream.
func TestRunWindowMatchesPerSystem(t *testing.T) {
	tc := tracegen.PopsLike().Scaled(0.005)
	cfgs := []system.Config{
		testMachine(system.VR, tc.CPUs),
		testMachine(system.RRInclusion, tc.CPUs),
		testMachine(system.RRNoInclusion, tc.CPUs),
	}
	w := Window{Start: 6_000, End: 12_000, Warmup: 2_000}

	want := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		sys := build(t, cfg, tc)
		r := tracegen.MustNew(tc)
		if n, err := skipTranslating(sys, r, w.Start-w.Warmup); err != nil || n != w.Start-w.Warmup {
			t.Fatalf("skip: n=%d err=%v", n, err)
		}
		if n, err := sys.RunRefs(r, w.Warmup); err != nil || n != w.Warmup {
			t.Fatalf("warm: n=%d err=%v", n, err)
		}
		sys.ResetStats()
		if n, err := sys.RunRefs(r, w.End-w.Start); err != nil || n != w.End-w.Start {
			t.Fatalf("window: n=%d err=%v", n, err)
		}
		sys.Drain()
		want[i] = windowSnapshot(sys)
	}

	systems := make([]*system.System, len(cfgs))
	for i, cfg := range cfgs {
		systems[i] = build(t, cfg, tc)
	}
	if err := RunWindow(systems, tracegen.MustNew(tc), w); err != nil {
		t.Fatal(err)
	}
	for i, sys := range systems {
		if got := windowSnapshot(sys); got != want[i] {
			t.Errorf("system %d diverged from its solo window run:\n got %s\nwant %s", i, got, want[i])
		}
	}
}

// TestRunWindowHeadClamp covers a window at the trace's head (warm-up
// clamped to Start) and a degenerate empty window.
func TestRunWindowHeadClamp(t *testing.T) {
	tc := tracegen.PopsLike().Scaled(0.002)
	sys := build(t, testMachine(system.VR, tc.CPUs), tc)
	if err := RunWindow([]*system.System{sys}, tracegen.MustNew(tc), Window{Start: 0, End: 3_000, Warmup: 5_000}); err != nil {
		t.Fatal(err)
	}
	if sys.Refs() != 3_000 {
		t.Errorf("Refs = %d, want 3000", sys.Refs())
	}
	sys2 := build(t, testMachine(system.VR, tc.CPUs), tc)
	if err := RunWindow([]*system.System{sys2}, tracegen.MustNew(tc), Window{Start: 100, End: 100}); err != nil {
		t.Fatal(err)
	}
	if sys2.Refs() != 0 {
		t.Errorf("empty window simulated %d refs", sys2.Refs())
	}
}

// TestRunWindowPastEOF proves a window extending past the trace's end is a
// clean error, not a hang.
func TestRunWindowPastEOF(t *testing.T) {
	tc := tracegen.PopsLike().Scaled(0.002)
	sys := build(t, testMachine(system.VR, tc.CPUs), tc)
	err := RunWindow([]*system.System{sys}, tracegen.MustNew(tc), Window{Start: 0, End: 1 << 40})
	if err == nil {
		t.Fatal("window past EOF did not error")
	}
}
