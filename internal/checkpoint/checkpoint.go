// Package checkpoint serializes a running simulation and brings it back:
// a Checkpoint captures the whole machine — caches, TLBs, buffers, page
// tables, memory tokens, statistics and cycle clocks — plus the position
// in the deterministic trace, in a versioned canonical binary format. A
// restored run continues byte-for-byte identically to one that was never
// interrupted, which the package's differential tests verify against the
// full JSON report.
//
// On top of checkpoints the package builds time-sharded execution
// (ShardedRun): the trace is split into K windows, regenerated per shard
// from the seed, simulated on worker goroutines and stitched back
// together. Exact mode resumes each window from a checkpoint written by a
// sequential prior pass and byte-compares every shard's end state against
// the next checkpoint — as much a verification harness for Save/Restore as
// a parallel runner. Approximate mode warms each shard with a prefix of
// references instead, trading exactness for an embarrassingly parallel run
// whose hit ratios match the sequential ones within a stated tolerance.
package checkpoint

import (
	"fmt"
	"os"

	"repro/internal/system"
	"repro/internal/trace"
)

// Checkpoint is one saved machine state plus its provenance: a fingerprint
// of the configuration and workload that produced it, and the trace cursor
// (records consumed, context switches included) at which it was taken.
type Checkpoint struct {
	Signature string
	Cursor    uint64
	Machine   *system.MachineState
}

// Capture exports sys into a checkpoint taken at the given trace cursor.
// The signature should identify both the machine configuration and the
// deterministic workload (tracegen.Config.Signature plus the system
// configuration), so Restore can refuse a mismatched resume.
func Capture(sys *system.System, signature string, cursor uint64) (*Checkpoint, error) {
	m, err := sys.ExportState()
	if err != nil {
		return nil, err
	}
	return &Checkpoint{Signature: signature, Cursor: cursor, Machine: m}, nil
}

// Restore loads c into sys, which must have been built from the same
// configuration the checkpoint was captured from; the caller proves it by
// presenting the matching signature. The caller is responsible for
// positioning the trace reader at c.Cursor (trace.Skip on a regenerated
// stream).
func Restore(sys *system.System, c *Checkpoint, signature string) error {
	if c.Machine == nil {
		return fmt.Errorf("checkpoint: no machine state")
	}
	if c.Signature != signature {
		return fmt.Errorf("checkpoint: signature mismatch:\n  checkpoint: %s\n  this run:   %s", c.Signature, signature)
	}
	return sys.RestoreState(c.Machine)
}

// WriteFile encodes c to path.
func WriteFile(path string, c *Checkpoint) error {
	return os.WriteFile(path, c.Encode(), 0o644)
}

// ReadFile decodes a checkpoint from path.
func ReadFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// ResumeReader regenerates a trace via source and positions it at c's
// cursor, returning the reader ready for the next record.
func ResumeReader(source func() (trace.Reader, error), c *Checkpoint) (trace.Reader, error) {
	r, err := source()
	if err != nil {
		return nil, err
	}
	skipped, err := trace.Skip(r, c.Cursor)
	if err != nil {
		return nil, err
	}
	if skipped != c.Cursor {
		return nil, fmt.Errorf("checkpoint: trace ended after %d of %d records — wrong workload?", skipped, c.Cursor)
	}
	return r, nil
}
