package checkpoint

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/system"
	"repro/internal/tracegen"
)

// FuzzCheckpointRoundTrip feeds arbitrary bytes to the checkpoint decoder.
// Malformed input must be rejected with an error — never a panic and never
// a huge allocation — and anything that decodes must re-encode canonically:
// decode(encode(c)) == c exactly, and the re-encoding is a fixed point.
// (encode(decode(data)) may differ from data itself: varints admit
// non-minimal forms, which re-encoding normalizes.)
func FuzzCheckpointRoundTrip(f *testing.F) {
	// A minimal checkpoint and a real mid-run machine state.
	f.Add((&Checkpoint{Signature: "seed", Cursor: 42}).Encode())
	f.Add(realCheckpoint(f).Encode())
	// Structurally hostile variants.
	f.Add([]byte{})
	f.Add([]byte("VRCK"))
	f.Add([]byte{'V', 'R', 'C', 'K', 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			return // rejected without panicking: fine
		}
		enc := c.Encode()
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decoding our own encoding failed: %v", err)
		}
		if !reflect.DeepEqual(c, back) {
			t.Fatalf("decode(encode(c)) != c:\n%+v\n%+v", c, back)
		}
		if again := back.Encode(); !bytes.Equal(again, enc) {
			t.Fatalf("encoding is not a fixed point:\n% x\n% x", enc, again)
		}
	})
}

// realCheckpoint captures a small machine mid-run so the corpus starts
// from a structurally complete state (all hierarchy components populated).
func realCheckpoint(f *testing.F) *Checkpoint {
	f.Helper()
	tc, err := tracegen.PresetByName("pops")
	if err != nil {
		f.Fatal(err)
	}
	tc = tc.Scaled(0.0005)
	tc.CPUs = 2
	sys, err := system.New(testMachine(system.VR, 2))
	if err != nil {
		f.Fatal(err)
	}
	if err := tc.SetupSharedMappings(sys.MMU()); err != nil {
		f.Fatal(err)
	}
	if _, err := sys.RunRecords(tracegen.MustNew(tc), 800); err != nil {
		f.Fatal(err)
	}
	ck, err := Capture(sys, "fuzz-seed", 800)
	if err != nil {
		f.Fatal(err)
	}
	return ck
}
