package checkpoint

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/cycles"
	"repro/internal/report"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// testMachine is a small machine exercising every organization's moving
// parts (split V-cache, write buffer, TLB) without making the differential
// matrix slow.
func testMachine(org system.Organization, cpus int) system.Config {
	return system.Config{
		CPUs:         cpus,
		Organization: org,
		L1:           cache.Geometry{Size: 4096, Block: 16, Assoc: 1},
		L2:           cache.Geometry{Size: 16384, Block: 32, Assoc: 2},
	}
}

// testWorkload scales a preset down and pins its CPU count.
func testWorkload(t *testing.T, preset string, scale float64, cpus int) tracegen.Config {
	t.Helper()
	tc, err := tracegen.PresetByName(preset)
	if err != nil {
		t.Fatal(err)
	}
	tc = tc.Scaled(scale)
	tc.CPUs = cpus
	return tc
}

// build assembles a cold machine with the workload's shared mappings.
func build(t *testing.T, cfg system.Config, tc tracegen.Config) *system.System {
	t.Helper()
	sys, err := system.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.SetupSharedMappings(sys.MMU()); err != nil {
		t.Fatal(err)
	}
	return sys
}

// reportJSON finishes a report for comparison.
func reportJSON(t *testing.T, sys *system.System, cfg system.Config) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := report.FromSystem(sys, cfg).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// signature fingerprints a test scenario.
func signature(cfg system.Config, tc tracegen.Config) string {
	return tc.Signature() + "|" + cfg.Organization.String()
}

// runUninterrupted simulates the whole trace in one go.
func runUninterrupted(t *testing.T, cfg system.Config, tc tracegen.Config) []byte {
	t.Helper()
	sys := build(t, cfg, tc)
	if err := sys.Run(tracegen.MustNew(tc)); err != nil {
		t.Fatal(err)
	}
	return reportJSON(t, sys, cfg)
}

// runInterrupted simulates half the records, saves a checkpoint through a
// full encode/decode cycle, restores it into a brand-new machine, and
// finishes the trace there.
func runInterrupted(t *testing.T, cfg system.Config, tc tracegen.Config) []byte {
	t.Helper()
	sig := signature(cfg, tc)

	first := build(t, cfg, tc)
	r := &countingReader{r: tracegen.MustNew(tc)}
	if _, err := first.RunRecords(r, uint64(tc.TotalRefs)/2); err != nil {
		t.Fatal(err)
	}
	ck, err := Capture(first, sig, r.n)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the bytes, as a save-to-disk-and-reload would.
	ck2, err := Decode(ck.Encode())
	if err != nil {
		t.Fatal(err)
	}

	second := build(t, cfg, tc)
	if err := Restore(second, ck2, sig); err != nil {
		t.Fatal(err)
	}
	rr, err := ResumeReader(func() (trace.Reader, error) { return tracegen.MustNew(tc), nil }, ck2)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Run(rr); err != nil {
		t.Fatal(err)
	}
	return reportJSON(t, second, cfg)
}

// TestSaveRestoreByteIdentical is the differential equivalence matrix: for
// every preset, organization and CPU count, a run interrupted by a
// checkpoint-save-restore cycle must produce a byte-identical full JSON
// report to the run that was never interrupted.
func TestSaveRestoreByteIdentical(t *testing.T) {
	for _, preset := range []string{"pops", "thor", "abaqus"} {
		for _, org := range []system.Organization{system.VR, system.RRInclusion, system.RRNoInclusion} {
			for _, cpus := range []int{1, 2, 4} {
				preset, org, cpus := preset, org, cpus
				t.Run(preset+"/"+org.String()+"/"+itoa(cpus), func(t *testing.T) {
					t.Parallel()
					cfg := testMachine(org, cpus)
					tc := testWorkload(t, preset, 0.003, cpus)
					want := runUninterrupted(t, cfg, tc)
					got := runInterrupted(t, cfg, tc)
					if !bytes.Equal(want, got) {
						t.Errorf("restored run's report diverges:\nuninterrupted:\n%s\nrestored:\n%s", want, got)
					}
				})
			}
		}
	}
}

// TestSaveRestoreWithTimingAndOracle covers the optional machine state the
// plain matrix leaves off: cycle clocks and the consistency oracle.
func TestSaveRestoreWithTimingAndOracle(t *testing.T) {
	tc := testWorkload(t, "pops", 0.003, 2)
	cfg := testMachine(system.VR, 2)
	cfg.CheckOracle = true

	mk := func() system.Config {
		c := cfg
		c.Cycles = cycles.MustNew(cycles.ContentionParams(), nil)
		return c
	}
	cfgA := mk()
	sysA := build(t, cfgA, tc)
	if err := sysA.Run(tracegen.MustNew(tc)); err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, sysA, cfgA)

	sig := signature(cfg, tc)
	cfgB := mk()
	first := build(t, cfgB, tc)
	r := &countingReader{r: tracegen.MustNew(tc)}
	if _, err := first.RunRecords(r, uint64(tc.TotalRefs)/3); err != nil {
		t.Fatal(err)
	}
	ck, err := Capture(first, sig, r.n)
	if err != nil {
		t.Fatal(err)
	}
	ck, err = Decode(ck.Encode())
	if err != nil {
		t.Fatal(err)
	}
	cfgC := mk()
	second := build(t, cfgC, tc)
	if err := Restore(second, ck, sig); err != nil {
		t.Fatal(err)
	}
	rr, err := ResumeReader(func() (trace.Reader, error) { return tracegen.MustNew(tc), nil }, ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Run(rr); err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, second, cfgC); !bytes.Equal(want, got) {
		t.Errorf("restored timed run diverges:\nuninterrupted:\n%s\nrestored:\n%s", want, got)
	}
}

// TestRestoreRejectsMismatches exercises the validation paths a wrong
// resume must hit instead of corrupting a simulation.
func TestRestoreRejectsMismatches(t *testing.T) {
	tc := testWorkload(t, "pops", 0.002, 1)
	cfg := testMachine(system.VR, 1)
	sig := signature(cfg, tc)
	sys := build(t, cfg, tc)
	if _, err := sys.RunRecords(tracegen.MustNew(tc), 500); err != nil {
		t.Fatal(err)
	}
	ck, err := Capture(sys, sig, 500)
	if err != nil {
		t.Fatal(err)
	}

	if err := Restore(build(t, cfg, tc), ck, "other-signature"); err == nil {
		t.Error("restore with a mismatched signature succeeded")
	}
	if err := Restore(build(t, cfg, tc), &Checkpoint{Signature: sig}, sig); err == nil {
		t.Error("restore with no machine state succeeded")
	}
	wrongOrg := testMachine(system.RRNoInclusion, 1)
	if err := Restore(build(t, wrongOrg, tc), ck, sig); err == nil {
		t.Error("restore into the wrong organization succeeded")
	}
	wrongCPUs := testMachine(system.VR, 2)
	tc2 := tc
	tc2.CPUs = 2
	if err := Restore(build(t, wrongCPUs, tc2), ck, sig); err == nil {
		t.Error("restore into the wrong CPU count succeeded")
	}
}

// TestCodecRoundTrip checks Encode/Decode on a real machine state: decode
// must reproduce the value exactly and re-encode to the same bytes.
func TestCodecRoundTrip(t *testing.T) {
	tc := testWorkload(t, "thor", 0.002, 2)
	cfg := testMachine(system.RRInclusion, 2)
	sys := build(t, cfg, tc)
	if _, err := sys.RunRecords(tracegen.MustNew(tc), 2000); err != nil {
		t.Fatal(err)
	}
	ck, err := Capture(sys, signature(cfg, tc), 2000)
	if err != nil {
		t.Fatal(err)
	}
	data := ck.Encode()
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, back) {
		t.Error("decode(encode(c)) != c")
	}
	if !bytes.Equal(back.Encode(), data) {
		t.Error("encode(decode(data)) != data")
	}
}

// TestDecodeRejectsMalformed spot-checks the decoder's defenses; the fuzz
// target explores far more.
func TestDecodeRejectsMalformed(t *testing.T) {
	good := (&Checkpoint{Signature: "s", Cursor: 7}).Encode()
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    {'X', 'R', 'C', 'K', 1},
		"bad version":  {'V', 'R', 'C', 'K', 99},
		"truncated":    good[:len(good)-1],
		"trailing":     append(append([]byte{}, good...), 0),
		"huge string":  {'V', 'R', 'C', 'K', 1, 0xff, 0xff, 0xff, 0xff, 0x7f},
		"bad ptr flag": func() []byte { b := append([]byte{}, good...); b[len(b)-1] = 9; return b }(),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
