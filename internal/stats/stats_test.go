package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("test", 10)
	for _, v := range []int{1, 1, 2, 9, 10, 11, 100} {
		h.Observe(v)
	}
	if got := h.Count(1); got != 2 {
		t.Errorf("Count(1) = %d, want 2", got)
	}
	if got := h.Count(2); got != 1 {
		t.Errorf("Count(2) = %d, want 1", got)
	}
	if got := h.Count(9); got != 1 {
		t.Errorf("Count(9) = %d, want 1", got)
	}
	if got := h.Overflow(); got != 3 {
		t.Errorf("Overflow = %d, want 3", got)
	}
	if got := h.Total(); got != 7 {
		t.Errorf("Total = %d, want 7", got)
	}
	if got := h.Sum(); got != 1+1+2+9+10+11+100 {
		t.Errorf("Sum = %d", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram("neg", 5)
	h.Observe(-3)
	if h.Count(0) != 1 {
		t.Errorf("negative value not clamped to bucket 0")
	}
}

func TestHistogramOutOfRangeCount(t *testing.T) {
	h := NewHistogram("range", 5)
	if h.Count(-1) != 0 || h.Count(5) != 0 || h.Count(99) != 0 {
		t.Error("out-of-range Count should be 0")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram("mean", 100)
	if h.Mean() != 0 {
		t.Error("empty histogram mean should be 0")
	}
	h.Observe(2)
	h.Observe(4)
	if math.Abs(h.Mean()-3) > 1e-9 {
		t.Errorf("Mean = %v, want 3", h.Mean())
	}
}

func TestHistogramTinyCap(t *testing.T) {
	h := NewHistogram("tiny", 0)
	h.Observe(0)
	h.Observe(5)
	if h.Count(0) != 1 || h.Overflow() != 1 {
		t.Errorf("cap clamping failed: count0=%d over=%d", h.Count(0), h.Overflow())
	}
}

func TestHistogramWriteTable(t *testing.T) {
	h := NewHistogram("tbl", 3)
	h.Observe(1)
	h.Observe(2)
	h.Observe(7)
	var b strings.Builder
	h.WriteTable(&b, 1)
	out := b.String()
	for _, want := range []string{"1", "2", "3 and larger"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramTotalInvariant(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHistogram("q", 16)
		for _, v := range vals {
			h.Observe(int(v))
		}
		var inBuckets uint64
		for i := 0; i < 16; i++ {
			inBuckets += h.Count(i)
		}
		return inBuckets+h.Overflow() == h.Total() && h.Total() == uint64(len(vals))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Error("empty ratio should be 0")
	}
	r.Hit(true)
	r.Hit(true)
	r.Hit(false)
	r.Hit(true)
	if math.Abs(r.Value()-0.75) > 1e-9 {
		t.Errorf("Value = %v, want 0.75", r.Value())
	}
	if r.Misses() != 1 {
		t.Errorf("Misses = %d, want 1", r.Misses())
	}
	if r.String() != "0.750" {
		t.Errorf("String = %q, want 0.750", r.String())
	}
}

func TestRatioAdd(t *testing.T) {
	a := Ratio{Hits: 3, Total: 4}
	b := Ratio{Hits: 1, Total: 4}
	a.Add(b)
	if a.Hits != 4 || a.Total != 8 {
		t.Errorf("Add: got %+v", a)
	}
}

func TestLevelStats(t *testing.T) {
	var s LevelStats
	s.Record(KindRead, true)
	s.Record(KindRead, false)
	s.Record(KindWrite, true)
	s.Record(KindIFetch, true)
	if got := s.Kind(KindRead).Value(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("read ratio = %v, want 0.5", got)
	}
	if got := s.Overall(); got.Hits != 3 || got.Total != 4 {
		t.Errorf("overall = %+v", got)
	}
}

func TestLevelStatsAdd(t *testing.T) {
	var a, b LevelStats
	a.Record(KindWrite, true)
	b.Record(KindWrite, false)
	a.Add(&b)
	if got := a.Kind(KindWrite); got.Hits != 1 || got.Total != 2 {
		t.Errorf("merged write ratio = %+v", got)
	}
}

func TestAccessKindString(t *testing.T) {
	if KindIFetch.String() != "instruction" ||
		KindRead.String() != "data read" ||
		KindWrite.String() != "data write" {
		t.Error("kind labels wrong")
	}
	if !strings.Contains(AccessKind(99).String(), "99") {
		t.Error("unknown kind should include its number")
	}
}

func TestKindsOrder(t *testing.T) {
	ks := Kinds()
	if len(ks) != 3 || ks[0] != KindRead || ks[1] != KindWrite || ks[2] != KindIFetch {
		t.Errorf("Kinds() = %v", ks)
	}
}

func TestCoherenceStats(t *testing.T) {
	var c CoherenceStats
	c.Record(MsgInvalidate)
	c.Record(MsgInvalidate)
	c.Record(MsgFlush)
	c.RecordN(MsgProbe, 10)
	if c.Get(MsgInvalidate) != 2 || c.Get(MsgFlush) != 1 || c.Get(MsgProbe) != 10 {
		t.Errorf("counters wrong: %s", c.String())
	}
	if c.Total() != 13 {
		t.Errorf("Total = %d, want 13", c.Total())
	}
	s := c.String()
	if !strings.Contains(s, "invalidate(v-pointer)=2") {
		t.Errorf("String missing invalidate: %q", s)
	}
}

func TestCoherenceStatsAdd(t *testing.T) {
	var a, b CoherenceStats
	a.Record(MsgFlushBuffer)
	b.Record(MsgFlushBuffer)
	b.Record(MsgInclusionInvalidate)
	a.Add(&b)
	if a.Get(MsgFlushBuffer) != 2 || a.Get(MsgInclusionInvalidate) != 1 {
		t.Errorf("Add wrong: %s", a.String())
	}
}

func TestCoherenceMsgStrings(t *testing.T) {
	msgs := []CoherenceMsg{MsgInvalidate, MsgFlush, MsgInvalidateBuffer,
		MsgFlushBuffer, MsgInclusionInvalidate, MsgProbe}
	seen := map[string]bool{}
	for _, m := range msgs {
		s := m.String()
		if s == "" || seen[s] {
			t.Errorf("bad or duplicate label %q", s)
		}
		seen[s] = true
	}
	if !strings.Contains(CoherenceMsg(42).String(), "42") {
		t.Error("unknown msg should include its number")
	}
}

func TestIntervalTracker(t *testing.T) {
	tr := NewIntervalTracker("iv", 10)
	tr.Event() // first event: no interval
	tr.Tick()
	tr.Tick()
	tr.Event() // interval 2
	tr.Tick()
	tr.Event() // interval 1
	h := tr.Histogram()
	if h.Count(2) != 1 || h.Count(1) != 1 || h.Total() != 2 {
		t.Errorf("intervals wrong: total=%d c1=%d c2=%d", h.Total(), h.Count(1), h.Count(2))
	}
}

func TestIntervalTrackerReset(t *testing.T) {
	tr := NewIntervalTracker("iv", 10)
	tr.Event()
	tr.Tick()
	tr.Reset()
	tr.Event() // no interval recorded after reset
	if tr.Histogram().Total() != 0 {
		t.Errorf("reset did not clear previous event")
	}
}

func TestIntervalTrackerZeroInterval(t *testing.T) {
	tr := NewIntervalTracker("iv", 10)
	tr.Event()
	tr.Event() // same clock: interval 0
	if tr.Histogram().Count(0) != 1 {
		t.Error("zero interval not recorded")
	}
}
