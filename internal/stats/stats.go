// Package stats provides the counters and histograms the simulator uses to
// reproduce the paper's tables: per-kind hit ratios, coherence-message
// breakdowns, inter-write intervals and procedure-call write bursts.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Histogram counts occurrences of small non-negative integer values, with an
// overflow bucket for values at or above the cap. It reproduces the paper's
// "10 and larger" style tables.
type Histogram struct {
	name    string
	cap     int // values >= cap land in the overflow bucket
	buckets []uint64
	over    uint64
	total   uint64
	sum     uint64
}

// NewHistogram creates a histogram with buckets for 0..cap-1 plus an
// overflow bucket.
func NewHistogram(name string, cap int) *Histogram {
	if cap < 1 {
		cap = 1
	}
	return &Histogram{name: name, cap: cap, buckets: make([]uint64, cap)}
}

// Observe records one occurrence of v. Negative values are clamped to 0.
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	h.total++
	h.sum += uint64(v)
	if v >= h.cap {
		h.over++
		return
	}
	h.buckets[v]++
}

// Name returns the histogram's label.
func (h *Histogram) Name() string { return h.name }

// Count returns the number of occurrences of v observed, where v < cap.
func (h *Histogram) Count(v int) uint64 {
	if v < 0 || v >= h.cap {
		return 0
	}
	return h.buckets[v]
}

// Overflow returns the count of observations >= cap.
func (h *Histogram) Overflow() uint64 { return h.over }

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the average observed value, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// WriteTable renders the histogram in the paper's two-column style, starting
// at the given minimum value (e.g. 1 for inter-write intervals). A negative
// minimum is clamped to 0, mirroring Observe's clamp.
func (h *Histogram) WriteTable(w io.Writer, min int) {
	if min < 0 {
		min = 0
	}
	fmt.Fprintf(w, "%-16s %s\n", "value", "count")
	for v := min; v < h.cap; v++ {
		fmt.Fprintf(w, "%-16d %d\n", v, h.buckets[v])
	}
	fmt.Fprintf(w, "%-16s %d\n", fmt.Sprintf("%d and larger", h.cap), h.over)
}

// Merge adds another histogram's observations into h. The two histograms
// must share a bucket cap so per-bucket counts line up; names may differ
// (h keeps its own). Merging is the bucket-wise sum, so it is commutative
// and associative, and a fresh histogram is its identity.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if h.cap != o.cap {
		return fmt.Errorf("stats: merging histogram with cap %d into cap %d", o.cap, h.cap)
	}
	for i, v := range o.buckets {
		h.buckets[i] += v
	}
	h.over += o.over
	h.total += o.total
	h.sum += o.sum
	return nil
}

// HistogramState is a Histogram's serializable contents (checkpoint
// support).
type HistogramState struct {
	Name    string
	Cap     int
	Buckets []uint64
	Over    uint64
	Total   uint64
	Sum     uint64
}

// ExportState returns a copy of the histogram's contents.
func (h *Histogram) ExportState() HistogramState {
	return HistogramState{
		Name:    h.name,
		Cap:     h.cap,
		Buckets: append([]uint64(nil), h.buckets...),
		Over:    h.over,
		Total:   h.total,
		Sum:     h.sum,
	}
}

// RestoreState replaces the histogram's contents. The state's bucket count
// must match its cap; the receiver's identity (name, cap) is overwritten.
func (h *Histogram) RestoreState(s HistogramState) error {
	if s.Cap < 1 || len(s.Buckets) != s.Cap {
		return fmt.Errorf("stats: histogram state has %d buckets for cap %d", len(s.Buckets), s.Cap)
	}
	var inBuckets uint64
	for _, v := range s.Buckets {
		inBuckets += v
	}
	if inBuckets+s.Over != s.Total {
		return fmt.Errorf("stats: histogram state total %d != bucket sum %d + overflow %d",
			s.Total, inBuckets, s.Over)
	}
	h.name = s.Name
	h.cap = s.Cap
	h.buckets = append([]uint64(nil), s.Buckets...)
	h.over = s.Over
	h.total = s.Total
	h.sum = s.Sum
	return nil
}

// Ratio is a hit/total pair that formats as a 3-decimal hit ratio.
type Ratio struct {
	Hits  uint64
	Total uint64
}

// Add merges another ratio into r.
func (r *Ratio) Add(o Ratio) {
	r.Hits += o.Hits
	r.Total += o.Total
}

// Hit records an access that hit (hit=true) or missed.
func (r *Ratio) Hit(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value returns hits/total, or 0 when no accesses were recorded.
func (r Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// Misses returns total - hits.
func (r Ratio) Misses() uint64 { return r.Total - r.Hits }

// String renders the ratio with three decimals, the paper's table format.
func (r Ratio) String() string { return fmt.Sprintf("%.3f", r.Value()) }

// AccessKind distinguishes the three reference classes the paper reports
// separately in Tables 8-10.
type AccessKind int

// Access kinds.
const (
	KindIFetch AccessKind = iota
	KindRead
	KindWrite
	numKinds
)

// String returns the kind's table label.
func (k AccessKind) String() string {
	switch k {
	case KindIFetch:
		return "instruction"
	case KindRead:
		return "data read"
	case KindWrite:
		return "data write"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// Kinds lists the access kinds in table order (read, write, instruction),
// matching the row order of Tables 8-10.
func Kinds() []AccessKind {
	return []AccessKind{KindRead, KindWrite, KindIFetch}
}

// LevelStats aggregates per-kind hit ratios for one cache level.
type LevelStats struct {
	ByKind [numKinds]Ratio
}

// Record notes one access of the given kind.
func (s *LevelStats) Record(k AccessKind, hit bool) {
	s.ByKind[k].Hit(hit)
}

// Overall returns the hit ratio across all kinds.
func (s *LevelStats) Overall() Ratio {
	var r Ratio
	for i := range s.ByKind {
		r.Add(s.ByKind[i])
	}
	return r
}

// Kind returns the ratio for one access kind.
func (s *LevelStats) Kind(k AccessKind) Ratio { return s.ByKind[k] }

// Add merges another LevelStats into s.
func (s *LevelStats) Add(o *LevelStats) {
	for i := range s.ByKind {
		s.ByKind[i].Add(o.ByKind[i])
	}
}

// CoherenceMsg classifies the messages an L2 (or the bus, in the
// no-inclusion baseline) sends down to its L1. Tables 11-13 count these.
type CoherenceMsg int

// Coherence message kinds, following Table 4 of the paper.
const (
	MsgInvalidate          CoherenceMsg = iota // invalidate(v-pointer)
	MsgFlush                                   // flush(v-pointer)
	MsgInvalidateBuffer                        // invalidate(buffer)
	MsgFlushBuffer                             // flush(buffer)
	MsgInclusionInvalidate                     // child invalidated by an L2 replacement
	MsgProbe                                   // unfiltered bus probe (no-inclusion L1)
	MsgUpdate                                  // update(v-pointer): write-update protocol data delivery
	numMsgs
)

// String returns the message's label.
func (m CoherenceMsg) String() string {
	switch m {
	case MsgInvalidate:
		return "invalidate(v-pointer)"
	case MsgFlush:
		return "flush(v-pointer)"
	case MsgInvalidateBuffer:
		return "invalidate(buffer)"
	case MsgFlushBuffer:
		return "flush(buffer)"
	case MsgInclusionInvalidate:
		return "inclusion-invalidate"
	case MsgProbe:
		return "bus-probe"
	case MsgUpdate:
		return "update(v-pointer)"
	default:
		return fmt.Sprintf("CoherenceMsg(%d)", int(m))
	}
}

// CoherenceStats counts coherence messages reaching a first-level cache.
type CoherenceStats struct {
	ByMsg [numMsgs]uint64
}

// Record counts one message of kind m.
func (c *CoherenceStats) Record(m CoherenceMsg) { c.ByMsg[m]++ }

// RecordN counts n messages of kind m.
func (c *CoherenceStats) RecordN(m CoherenceMsg, n uint64) { c.ByMsg[m] += n }

// Total returns the number of messages of all kinds.
func (c *CoherenceStats) Total() uint64 {
	var t uint64
	for _, v := range c.ByMsg {
		t += v
	}
	return t
}

// Get returns the count for one message kind.
func (c *CoherenceStats) Get(m CoherenceMsg) uint64 { return c.ByMsg[m] }

// Add merges another CoherenceStats into c.
func (c *CoherenceStats) Add(o *CoherenceStats) {
	for i := range c.ByMsg {
		c.ByMsg[i] += o.ByMsg[i]
	}
}

// String summarizes non-zero counters, sorted by kind.
func (c *CoherenceStats) String() string {
	var parts []string
	for m := CoherenceMsg(0); m < numMsgs; m++ {
		if c.ByMsg[m] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", m, c.ByMsg[m]))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// IntervalTracker measures the distance (in references) between successive
// events, feeding the paper's inter-write-interval tables (Tables 2 and 3).
type IntervalTracker struct {
	hist  *Histogram
	last  uint64
	seen  bool
	clock uint64
}

// NewIntervalTracker creates a tracker whose histogram overflows at cap.
func NewIntervalTracker(name string, cap int) *IntervalTracker {
	return &IntervalTracker{hist: NewHistogram(name, cap)}
}

// Tick advances the reference clock by one.
func (t *IntervalTracker) Tick() { t.clock++ }

// Event records an event at the current clock; the interval since the
// previous event is observed (the first event records no interval).
func (t *IntervalTracker) Event() {
	if t.seen {
		t.hist.Observe(int(t.clock - t.last))
	}
	t.seen = true
	t.last = t.clock
}

// Reset forgets the previous event so the next one records no interval.
func (t *IntervalTracker) Reset() { t.seen = false }

// Histogram returns the interval histogram.
func (t *IntervalTracker) Histogram() *Histogram { return t.hist }

// Merge folds another tracker's interval histogram into t. The receiver
// keeps its own clock and last-event position: intervals spanning the
// boundary between two merged trackers were never observed by either, so
// the merged histogram is exactly the union of both observation sets.
func (t *IntervalTracker) Merge(o *IntervalTracker) error {
	if o == nil {
		return nil
	}
	return t.hist.Merge(o.hist)
}

// IntervalTrackerState is an IntervalTracker's serializable contents
// (checkpoint support).
type IntervalTrackerState struct {
	Hist  HistogramState
	Last  uint64
	Seen  bool
	Clock uint64
}

// ExportState returns a copy of the tracker's contents.
func (t *IntervalTracker) ExportState() IntervalTrackerState {
	return IntervalTrackerState{
		Hist:  t.hist.ExportState(),
		Last:  t.last,
		Seen:  t.seen,
		Clock: t.clock,
	}
}

// RestoreState replaces the tracker's contents.
func (t *IntervalTracker) RestoreState(s IntervalTrackerState) error {
	if err := t.hist.RestoreState(s.Hist); err != nil {
		return err
	}
	t.last = s.Last
	t.seen = s.Seen
	t.clock = s.Clock
	return nil
}
