package stats

import (
	"strings"
	"testing"
)

// Table-driven edge cases for the counters' degenerate inputs: empty
// aggregates, zero totals, the overflow bucket, and hostile WriteTable
// minimums (a negative minimum used to index below the bucket slice and
// panic; it now clamps to 0, mirroring Observe).

func TestHistogramEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		observe  []int
		cap      int
		wantMean float64
		wantOver uint64
		wantSum  uint64
	}{
		{name: "empty", cap: 4, wantMean: 0},
		{name: "single zero", observe: []int{0}, cap: 4, wantMean: 0},
		{name: "all overflow", observe: []int{4, 5, 100}, cap: 4, wantMean: 109.0 / 3, wantOver: 3, wantSum: 109},
		{name: "boundary value lands in overflow", observe: []int{3, 4}, cap: 4, wantMean: 3.5, wantOver: 1, wantSum: 7},
		{name: "negative clamps to zero", observe: []int{-7, 2}, cap: 4, wantMean: 1, wantSum: 2},
		{name: "cap below one is raised to one", observe: []int{0, 1}, cap: 0, wantMean: 0.5, wantOver: 1, wantSum: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(tc.name, tc.cap)
			for _, v := range tc.observe {
				h.Observe(v)
			}
			if got := h.Mean(); got != tc.wantMean {
				t.Errorf("Mean() = %v, want %v", got, tc.wantMean)
			}
			if got := h.Overflow(); got != tc.wantOver {
				t.Errorf("Overflow() = %d, want %d", got, tc.wantOver)
			}
			if got := h.Sum(); got != tc.wantSum {
				t.Errorf("Sum() = %d, want %d", got, tc.wantSum)
			}
			if got := h.Total(); got != uint64(len(tc.observe)) {
				t.Errorf("Total() = %d, want %d", got, len(tc.observe))
			}
			// The accounting invariant: buckets + overflow == total.
			var inBuckets uint64
			for v := 0; v < 2*tc.cap+2; v++ {
				inBuckets += h.Count(v)
			}
			if inBuckets+h.Overflow() != h.Total() {
				t.Errorf("buckets (%d) + overflow (%d) != total (%d)", inBuckets, h.Overflow(), h.Total())
			}
		})
	}
}

func TestHistogramWriteTableEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		observe []int
		min     int
		want    []string // substrings the rendering must contain
	}{
		{name: "empty histogram renders", min: 0, want: []string{"value", "3 and larger"}},
		{name: "negative min is clamped", observe: []int{0, 1}, min: -5, want: []string{"0", "1"}},
		{name: "min beyond cap renders only overflow", observe: []int{9}, min: 100, want: []string{"3 and larger"}},
		{name: "overflow row counts", observe: []int{7, 8}, min: 1, want: []string{"3 and larger     2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram("t", 3)
			for _, v := range tc.observe {
				h.Observe(v)
			}
			var sb strings.Builder
			h.WriteTable(&sb, tc.min) // must not panic for any min
			for _, w := range tc.want {
				if !strings.Contains(sb.String(), w) {
					t.Errorf("rendering lacks %q:\n%s", w, sb.String())
				}
			}
		})
	}
}

func TestRatioEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		r          Ratio
		wantValue  float64
		wantMisses uint64
		wantStr    string
	}{
		{name: "zero total", r: Ratio{}, wantValue: 0, wantStr: "0.000"},
		{name: "all hits", r: Ratio{Hits: 5, Total: 5}, wantValue: 1, wantStr: "1.000"},
		{name: "no hits", r: Ratio{Hits: 0, Total: 8}, wantValue: 0, wantMisses: 8, wantStr: "0.000"},
		{name: "half", r: Ratio{Hits: 2, Total: 4}, wantValue: 0.5, wantMisses: 2, wantStr: "0.500"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.r.Value(); got != tc.wantValue {
				t.Errorf("Value() = %v, want %v", got, tc.wantValue)
			}
			if got := tc.r.Misses(); got != tc.wantMisses {
				t.Errorf("Misses() = %d, want %d", got, tc.wantMisses)
			}
			if got := tc.r.String(); got != tc.wantStr {
				t.Errorf("String() = %q, want %q", got, tc.wantStr)
			}
		})
	}
}

func TestLevelStatsEmptyAggregates(t *testing.T) {
	var ls LevelStats
	if got := ls.Overall(); got != (Ratio{}) {
		t.Errorf("empty Overall() = %+v", got)
	}
	if v := ls.Overall().Value(); v != 0 {
		t.Errorf("empty overall ratio = %v", v)
	}
	var agg LevelStats
	agg.Add(&ls)
	if agg != (LevelStats{}) {
		t.Errorf("empty + empty = %+v", agg)
	}
}

func TestIntervalTrackerMergeEdgeCases(t *testing.T) {
	a := NewIntervalTracker("t", 4)
	b := NewIntervalTracker("t", 4)
	// Empty merge is a no-op.
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Histogram().Total() != 0 {
		t.Errorf("empty merge produced %d observations", a.Histogram().Total())
	}
	// Merging nil is a no-op.
	if err := a.Merge(nil); err != nil {
		t.Fatal(err)
	}
	// Cap mismatch is an error.
	if err := a.Merge(NewIntervalTracker("t", 5)); err == nil {
		t.Error("cap-mismatched tracker merge succeeded")
	}
}
