package stats

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// The shard stitcher (internal/checkpoint) reduces per-shard statistics
// with LevelStats.Add, Ratio.Add and Histogram.Merge, in whatever grouping
// the worker pool happens to produce. That is only sound if the merge
// operations form a commutative monoid: commutative and associative with
// the zero value as identity. These property tests prove it with
// testing/quick over random operand values.

// quickCfg sizes the random exploration.
var quickCfg = &quick.Config{MaxCount: 200}

// --- Ratio ---

func TestQuickRatioAddCommutative(t *testing.T) {
	f := func(a, b Ratio) bool {
		x, y := a, b
		x.Add(b)
		y.Add(a)
		return x == y
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRatioAddAssociative(t *testing.T) {
	f := func(a, b, c Ratio) bool {
		// (a+b)+c
		l := a
		l.Add(b)
		l.Add(c)
		// a+(b+c)
		rr := b
		rr.Add(c)
		r := a
		r.Add(rr)
		return l == r
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRatioAddIdentity(t *testing.T) {
	f := func(a Ratio) bool {
		x := a
		x.Add(Ratio{})
		z := Ratio{}
		z.Add(a)
		return x == a && z == a
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// --- LevelStats ---

func TestQuickLevelStatsAddCommutative(t *testing.T) {
	f := func(a, b LevelStats) bool {
		x, y := a, b
		x.Add(&b)
		y.Add(&a)
		return x == y
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickLevelStatsAddAssociative(t *testing.T) {
	f := func(a, b, c LevelStats) bool {
		l := a
		l.Add(&b)
		l.Add(&c)
		bc := b
		bc.Add(&c)
		r := a
		r.Add(&bc)
		return l == r
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickLevelStatsAddIdentity(t *testing.T) {
	f := func(a LevelStats) bool {
		x := a
		x.Add(&LevelStats{})
		z := LevelStats{}
		z.Add(&a)
		return x == a && z == a
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// --- CoherenceStats ---

func TestQuickCoherenceStatsAddProperties(t *testing.T) {
	comm := func(a, b CoherenceStats) bool {
		x, y := a, b
		x.Add(&b)
		y.Add(&a)
		return x == y
	}
	if err := quick.Check(comm, quickCfg); err != nil {
		t.Error("commutativity:", err)
	}
	ident := func(a CoherenceStats) bool {
		x := a
		x.Add(&CoherenceStats{})
		return x == a
	}
	if err := quick.Check(ident, quickCfg); err != nil {
		t.Error("identity:", err)
	}
}

// --- Histogram ---

// histSpec is a generatable description of a histogram's observations:
// quick can't invent *Histogram values directly (unexported fields), so it
// generates the observation stream instead and the test materializes it.
type histSpec struct {
	Values []uint16
}

// Generate implements quick.Generator.
func (histSpec) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size + 1)
	s := histSpec{Values: make([]uint16, n)}
	for i := range s.Values {
		// Spread across buckets and the overflow region.
		s.Values[i] = uint16(r.Intn(2 * histCap))
	}
	return reflect.ValueOf(s)
}

// histCap is the bucket cap every property-test histogram uses — Merge
// requires equal caps, which the simulator guarantees by construction
// (every shard builds its trackers from the same newStats path).
const histCap = 10

func (s histSpec) build() *Histogram {
	h := NewHistogram("prop", histCap)
	for _, v := range s.Values {
		h.Observe(int(v))
	}
	return h
}

// histEqual compares complete observable state.
func histEqual(a, b *Histogram) bool {
	if a.Total() != b.Total() || a.Sum() != b.Sum() || a.Overflow() != b.Overflow() {
		return false
	}
	for v := 0; v < histCap; v++ {
		if a.Count(v) != b.Count(v) {
			return false
		}
	}
	return true
}

func TestQuickHistogramMergeCommutative(t *testing.T) {
	f := func(a, b histSpec) bool {
		x, y := a.build(), b.build()
		if x.Merge(b.build()) != nil || y.Merge(a.build()) != nil {
			return false
		}
		return histEqual(x, y)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickHistogramMergeAssociative(t *testing.T) {
	f := func(a, b, c histSpec) bool {
		l := a.build()
		if l.Merge(b.build()) != nil || l.Merge(c.build()) != nil {
			return false
		}
		bc := b.build()
		if bc.Merge(c.build()) != nil {
			return false
		}
		r := a.build()
		if r.Merge(bc) != nil {
			return false
		}
		return histEqual(l, r)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickHistogramMergeIdentity(t *testing.T) {
	f := func(a histSpec) bool {
		// Merging a fresh histogram in changes nothing; merging into a
		// fresh histogram reproduces the operand.
		x := a.build()
		if x.Merge(NewHistogram("zero", histCap)) != nil {
			return false
		}
		z := NewHistogram("zero", histCap)
		if z.Merge(a.build()) != nil {
			return false
		}
		return histEqual(x, a.build()) && histEqual(z, a.build())
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickHistogramMergeEquivalentToConcatenation ties the algebra back
// to its meaning: merging two histograms is observing the concatenated
// stream.
func TestQuickHistogramMergeEquivalentToConcatenation(t *testing.T) {
	f := func(a, b histSpec) bool {
		merged := a.build()
		if merged.Merge(b.build()) != nil {
			return false
		}
		concat := histSpec{Values: append(append([]uint16{}, a.Values...), b.Values...)}.build()
		return histEqual(merged, concat)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestHistogramMergeCapMismatch(t *testing.T) {
	a, b := NewHistogram("a", 4), NewHistogram("b", 5)
	if err := a.Merge(b); err == nil {
		t.Error("merging mismatched caps succeeded")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("merging nil: %v", err)
	}
}
