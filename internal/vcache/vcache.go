// Package vcache implements the paper's first-level virtually-addressed
// cache. Each line carries, beyond the virtual tag, the control state of
// Figure 3: a dirty bit, a valid bit, a swapped-valid bit, and an r-pointer
// linking the line to its parent subentry in the R-cache so write-backs and
// state checks need no address translation.
//
// Context switches do not write anything back: SwapOut marks every live
// line swapped-valid, making it invisible to lookups while keeping its data
// and its linkage. A dirty swapped line is written back only when its slot
// is re-used — the paper's incremental write-back scheme.
//
// The V-cache is a passive structure; the hierarchy controller in
// internal/core orchestrates the V<->R protocol of Table 4 around it.
package vcache

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
)

// RPtr locates a line's parent subentry in the R-cache: the implementation
// analogue of the paper's r-pointer (low-order physical page-number bits).
type RPtr struct {
	Set, Way, Sub int
}

// String renders the pointer for diagnostics.
func (p RPtr) String() string { return fmt.Sprintf("R[%d.%d.%d]", p.Set, p.Way, p.Sub) }

// Line is the V-cache line payload (the tag and valid bit live in the
// underlying tag store).
type Line struct {
	Dirty bool       // modified relative to the R-cache copy
	SV    bool       // swapped-valid: owned by a switched-out process
	RPtr  RPtr       // parent subentry in the R-cache
	PID   addr.PID   // process that installed the line (diagnostics)
	VBase addr.VAddr // block-aligned virtual address (diagnostics)
	Token uint64     // data oracle token
}

// LookupState classifies a lookup.
type LookupState int

// Lookup outcomes.
const (
	// Miss: no line with the reference's tag is present.
	Miss LookupState = iota
	// MissPresent: a line with the tag exists but is swapped-valid, so the
	// lookup misses; the line must be the replacement victim.
	MissPresent
	// Hit: a live line holds the block.
	Hit
)

// VCache is one virtually-indexed, virtually-tagged cache (the unified
// V-cache, or one half of a split I/D pair).
//
// With PID tagging enabled, the process identifier is part of every tag —
// the alternative context-switch scheme the paper's Section 2 discusses:
// no flush is needed on a switch, at the cost of wider tags and the purge
// complexity the paper objects to.
type VCache struct {
	tags    *cache.Cache[Line]
	geom    cache.Geometry
	pidTags bool
	// swapped is the victim preference (prefer logically-invalid
	// swapped-valid lines), built once so PickVictim allocates no per-call
	// closure.
	swapped func(set, way int) bool
}

// New builds a V-cache with the given geometry and LRU replacement.
func New(g cache.Geometry) (*VCache, error) {
	return NewWithPolicy(g, false, cache.LRU, 0)
}

// NewWithPolicy builds a V-cache with an explicit replacement policy and
// (for Random replacement) deterministic seed; pidTagged widens every tag
// with the process identifier.
func NewWithPolicy(g cache.Geometry, pidTagged bool, policy cache.Policy, seed int64) (*VCache, error) {
	tags, err := cache.New[Line](g, policy, seed)
	if err != nil {
		return nil, err
	}
	v := &VCache{tags: tags, geom: g, pidTags: pidTagged}
	v.swapped = v.isSwapped
	return v, nil
}

// isSwapped reports whether the line at (set, way) is swapped-valid.
func (v *VCache) isSwapped(set, way int) bool { return v.tags.Line(set, way).SV }

// NewPIDTagged builds an LRU V-cache whose tags include the process
// identifier.
func NewPIDTagged(g cache.Geometry) (*VCache, error) {
	return NewWithPolicy(g, true, cache.LRU, 0)
}

// PIDTagged reports whether tags include the process identifier.
func (v *VCache) PIDTagged() bool { return v.pidTags }

// tagFor derives the stored tag for (pid, va).
func (v *VCache) tagFor(pid addr.PID, va addr.VAddr) uint64 {
	_, tag := v.tags.Locate(uint64(va))
	if v.pidTags {
		tag = tag<<16 | uint64(pid)
	}
	return tag
}

// MustNew is New but panics on error.
func MustNew(g cache.Geometry) *VCache {
	v, err := New(g)
	if err != nil {
		panic(err)
	}
	return v
}

// Geometry returns the cache's shape.
func (v *VCache) Geometry() cache.Geometry { return v.geom }

// Locate maps a virtual address to its (set, tag).
func (v *VCache) Locate(va addr.VAddr) (set int, tag uint64) {
	return v.tags.Locate(uint64(va))
}

// Lookup probes for (pid, va). On Hit or MissPresent, set/way identify the
// line; on Miss, way is -1. Without PID tagging the pid does not take part
// in the match.
func (v *VCache) Lookup(pid addr.PID, va addr.VAddr) (set, way int, state LookupState) {
	set, _ = v.Locate(va)
	tag := v.tagFor(pid, va)
	w, ok := v.tags.Probe(set, tag)
	if !ok {
		return set, -1, Miss
	}
	if v.tags.Line(set, w).SV {
		return set, w, MissPresent
	}
	return set, w, Hit
}

// Touch marks (set, way) most recently used.
func (v *VCache) Touch(set, way int) { v.tags.Touch(set, way) }

// Line returns the payload at (set, way).
func (v *VCache) Line(set, way int) *Line { return v.tags.Line(set, way) }

// Present reports whether (set, way) holds a block (live or swapped).
func (v *VCache) Present(set, way int) bool { return v.tags.ValidAt(set, way) }

// Live reports whether (set, way) holds a block visible to lookups.
func (v *VCache) Live(set, way int) bool {
	return v.tags.ValidAt(set, way) && !v.tags.Line(set, way).SV
}

// Victim describes the line a replacement will evict.
type Victim struct {
	Set, Way int
	Present  bool // a block occupies the slot (live or swapped)
	Dirty    bool
	SV       bool
	RPtr     RPtr
	Token    uint64
	PID      addr.PID
	VBase    addr.VAddr
}

// PickVictim chooses the replacement slot for a fill of va. Swapped-valid
// lines are preferred over live ones (they are logically invalid), and a
// swapped line whose tag equals va's must be the victim to keep tags unique
// within the set.
func (v *VCache) PickVictim(pid addr.PID, va addr.VAddr) Victim {
	set, _ := v.Locate(va)
	tag := v.tagFor(pid, va)
	way := -1
	if w, ok := v.tags.Probe(set, tag); ok {
		// Same tag, necessarily swapped-valid (a live line would have hit).
		way = w
	} else {
		way, _ = v.tags.Victim(set, v.swapped)
	}
	vic := Victim{Set: set, Way: way, Present: v.tags.ValidAt(set, way)}
	if vic.Present {
		l := v.tags.Line(set, way)
		vic.Dirty, vic.SV, vic.RPtr, vic.Token = l.Dirty, l.SV, l.RPtr, l.Token
		vic.PID, vic.VBase = l.PID, l.VBase
	}
	return vic
}

// Install fills (set, way) with a block for va, replacing any victim. The
// caller has already disposed of the victim (write-back or inclusion-bit
// clear). Dirty and token carry over when the data arrives via a synonym
// move.
func (v *VCache) Install(set, way int, va addr.VAddr, pid addr.PID, rptr RPtr, dirty bool, token uint64) {
	tag := v.tagFor(pid, va)
	*v.tags.Install(set, way, tag) = Line{
		Dirty: dirty,
		RPtr:  rptr,
		PID:   pid,
		VBase: addr.VAddr(uint64(va) &^ (v.geom.Block - 1)),
		Token: token,
	}
}

// Retag re-addresses a live or swapped line in place under a new virtual
// address mapping to the same set — the paper's sameset synonym handling.
// Dirty state, token and r-pointer are preserved; the swapped-valid bit is
// cleared because the new owner is the running process.
func (v *VCache) Retag(set, way int, va addr.VAddr, pid addr.PID) {
	nset, _ := v.Locate(va)
	if nset != set {
		panic(fmt.Sprintf("vcache: Retag across sets %d -> %d", set, nset))
	}
	v.tags.Retag(set, way, v.tagFor(pid, va))
	l := v.tags.Line(set, way)
	l.SV = false
	l.PID = pid
	l.VBase = addr.VAddr(uint64(va) &^ (v.geom.Block - 1))
	v.tags.Touch(set, way)
}

// WriteTouch records a processor write into a live line.
func (v *VCache) WriteTouch(set, way int, token uint64) {
	l := v.tags.Line(set, way)
	l.Dirty = true
	l.Token = token
	v.tags.Touch(set, way)
}

// CleanLine clears the dirty bit (bus-induced flush keeps the copy, now
// clean and shared).
func (v *VCache) CleanLine(set, way int) { v.tags.Line(set, way).Dirty = false }

// Invalidate removes the block at (set, way) entirely (valid and
// swapped-valid both cleared).
func (v *VCache) Invalidate(set, way int) {
	l := v.tags.Line(set, way)
	l.SV = false
	l.Dirty = false
	v.tags.Invalidate(set, way)
}

// SwapOut implements the context-switch rule: every live line becomes
// swapped-valid; nothing is written back. It returns the number of lines
// swapped.
func (v *VCache) SwapOut() int {
	n := 0
	v.tags.ForEachValid(func(set, way int) {
		l := v.tags.Line(set, way)
		if !l.SV {
			l.SV = true
			n++
		}
	})
	return n
}

// DirtyLines returns the coordinates of every present dirty line (live or
// swapped) — the eager-flush ablation writes these back at switch time.
func (v *VCache) DirtyLines() []RPtrAt {
	var out []RPtrAt
	v.tags.ForEachValid(func(set, way int) {
		l := v.tags.Line(set, way)
		if l.Dirty {
			out = append(out, RPtrAt{Set: set, Way: way, RPtr: l.RPtr, Token: l.Token})
		}
	})
	return out
}

// RPtrAt pairs a line's location with its r-pointer and token.
type RPtrAt struct {
	Set, Way int
	RPtr     RPtr
	Token    uint64
}

// CountLive returns the number of live (non-swapped) lines.
func (v *VCache) CountLive() int {
	n := 0
	v.tags.ForEachValid(func(set, way int) {
		if !v.tags.Line(set, way).SV {
			n++
		}
	})
	return n
}

// CountPresent returns the number of present lines (live + swapped).
func (v *VCache) CountPresent() int { return v.tags.CountValid() }

// ForEachPresent visits every present line.
func (v *VCache) ForEachPresent(fn func(set, way int, l *Line)) {
	v.tags.ForEachValid(func(set, way int) {
		fn(set, way, v.tags.Line(set, way))
	})
}

// ExportState captures the tag store (checkpoint support). Line payloads
// are value types, so the shallow copy is a full copy.
func (v *VCache) ExportState() cache.State[Line] { return v.tags.ExportState() }

// RestoreState replaces the tag store's contents.
func (v *VCache) RestoreState(s cache.State[Line]) error { return v.tags.RestoreState(s) }
