package vcache

import (
	"testing"

	"repro/internal/cache"
)

func small() *VCache {
	// 4 sets x 2 ways x 16B = 128B.
	return MustNew(cache.Geometry{Size: 128, Block: 16, Assoc: 2})
}

func TestLookupMissThenHit(t *testing.T) {
	v := small()
	set, way, st := v.Lookup(1, 0x1000)
	if st != Miss || way != -1 {
		t.Fatalf("cold lookup: set %d way %d state %d", set, way, st)
	}
	vic := v.PickVictim(1, 0x1000)
	if vic.Present {
		t.Fatal("victim in empty cache should be absent")
	}
	v.Install(vic.Set, vic.Way, 0x1000, 1, RPtr{1, 0, 0}, false, 7)
	s2, w2, st2 := v.Lookup(1, 0x1004) // same block
	if st2 != Hit || s2 != vic.Set || w2 != vic.Way {
		t.Fatalf("lookup after install: state %d", st2)
	}
	l := v.Line(s2, w2)
	if l.Token != 7 || l.Dirty || l.SV || l.PID != 1 {
		t.Errorf("line state wrong: %+v", *l)
	}
	if l.VBase != 0x1000 {
		t.Errorf("VBase = %#x", uint64(l.VBase))
	}
}

func TestDifferentBlocksDoNotHit(t *testing.T) {
	v := small()
	vic := v.PickVictim(1, 0x1000)
	v.Install(vic.Set, vic.Way, 0x1000, 1, RPtr{}, false, 1)
	if _, _, st := v.Lookup(1, 0x1010); st == Hit {
		t.Error("adjacent block hit")
	}
}

func TestWriteTouch(t *testing.T) {
	v := small()
	vic := v.PickVictim(1, 0x2000)
	v.Install(vic.Set, vic.Way, 0x2000, 1, RPtr{}, false, 1)
	v.WriteTouch(vic.Set, vic.Way, 42)
	l := v.Line(vic.Set, vic.Way)
	if !l.Dirty || l.Token != 42 {
		t.Errorf("after WriteTouch: %+v", *l)
	}
	v.CleanLine(vic.Set, vic.Way)
	if l.Dirty {
		t.Error("CleanLine did not clear dirty")
	}
}

func TestSwapOutHidesLines(t *testing.T) {
	v := small()
	vic := v.PickVictim(1, 0x3000)
	v.Install(vic.Set, vic.Way, 0x3000, 1, RPtr{}, true, 5)
	if n := v.SwapOut(); n != 1 {
		t.Fatalf("SwapOut = %d, want 1", n)
	}
	set, way, st := v.Lookup(1, 0x3000)
	if st != MissPresent {
		t.Fatalf("lookup of swapped line: state %d, want MissPresent", st)
	}
	if !v.Present(set, way) || v.Live(set, way) {
		t.Error("present/live flags wrong for swapped line")
	}
	l := v.Line(set, way)
	if !l.SV || !l.Dirty || l.Token != 5 {
		t.Errorf("swapped line lost state: %+v", *l)
	}
	// Second SwapOut is a no-op on already-swapped lines.
	if n := v.SwapOut(); n != 0 {
		t.Errorf("second SwapOut = %d, want 0", n)
	}
}

func TestPickVictimPrefersSameTagSwapped(t *testing.T) {
	v := small()
	// Fill both ways of one set: blocks 0x000 and 0x040 share set 0 (4 sets x 16B).
	a := v.PickVictim(1, 0x000)
	v.Install(a.Set, a.Way, 0x000, 1, RPtr{}, true, 1)
	b := v.PickVictim(1, 0x040)
	v.Install(b.Set, b.Way, 0x040, 1, RPtr{}, false, 2)
	if a.Set != b.Set {
		t.Fatal("test expects same set")
	}
	v.SwapOut()
	// A fill of 0x000 must reuse the line already tagged 0x000.
	vic := v.PickVictim(1, 0x000)
	if vic.Way != a.Way {
		t.Errorf("victim way %d, want the same-tag way %d", vic.Way, a.Way)
	}
	if !vic.Present || !vic.SV || !vic.Dirty || vic.Token != 1 {
		t.Errorf("victim info lost: %+v", vic)
	}
}

func TestPickVictimPrefersSwappedOverLive(t *testing.T) {
	v := small()
	a := v.PickVictim(1, 0x000)
	v.Install(a.Set, a.Way, 0x000, 1, RPtr{}, false, 1)
	v.SwapOut() // 0x000 now swapped
	b := v.PickVictim(1, 0x040)
	v.Install(b.Set, b.Way, 0x040, 2, RPtr{}, false, 2) // live, same set
	vic := v.PickVictim(1, 0x080)                       // third block in set 0
	if vic.Way != a.Way {
		t.Errorf("victim = way %d, want swapped way %d", vic.Way, a.Way)
	}
}

func TestPickVictimEmptyWayFirst(t *testing.T) {
	v := small()
	a := v.PickVictim(1, 0x000)
	v.Install(a.Set, a.Way, 0x000, 1, RPtr{}, false, 1)
	vic := v.PickVictim(1, 0x040)
	if vic.Present {
		t.Error("victim should be the empty way")
	}
}

func TestRetagSameSet(t *testing.T) {
	v := small()
	a := v.PickVictim(1, 0x000)
	v.Install(a.Set, a.Way, 0x000, 1, RPtr{2, 1, 0}, true, 9)
	v.SwapOut()
	// New virtual address 0x100 maps to set 0 too (0x100/16 = 16, 16%4 = 0).
	set, _, st := v.Lookup(1, 0x100)
	if st != Miss || set != a.Set {
		t.Fatalf("precondition: set %d st %d", set, st)
	}
	v.Retag(a.Set, a.Way, 0x100, 2)
	_, way, st := v.Lookup(1, 0x100)
	if st != Hit || way != a.Way {
		t.Fatalf("lookup after retag: st %d", st)
	}
	l := v.Line(a.Set, way)
	if l.SV || !l.Dirty || l.Token != 9 || l.PID != 2 || l.VBase != 0x100 {
		t.Errorf("retag mangled line: %+v", *l)
	}
	if l.RPtr != (RPtr{2, 1, 0}) {
		t.Errorf("retag lost r-pointer: %v", l.RPtr)
	}
	if _, _, st := v.Lookup(1, 0x000); st != Miss {
		t.Error("old address still present after retag")
	}
}

func TestRetagAcrossSetsPanics(t *testing.T) {
	v := small()
	a := v.PickVictim(1, 0x000)
	v.Install(a.Set, a.Way, 0x000, 1, RPtr{}, false, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-set Retag did not panic")
		}
	}()
	v.Retag(a.Set, a.Way, 0x010, 1) // block 1 -> set 1
}

func TestInvalidateClearsEverything(t *testing.T) {
	v := small()
	a := v.PickVictim(1, 0x000)
	v.Install(a.Set, a.Way, 0x000, 1, RPtr{}, true, 3)
	v.SwapOut()
	v.Invalidate(a.Set, a.Way)
	if v.Present(a.Set, a.Way) {
		t.Error("line present after invalidate")
	}
	vic := v.PickVictim(1, 0x000)
	if vic.Present {
		t.Error("victim reports stale presence")
	}
}

func TestDirtyLines(t *testing.T) {
	v := small()
	a := v.PickVictim(1, 0x000)
	v.Install(a.Set, a.Way, 0x000, 1, RPtr{1, 0, 0}, true, 11)
	b := v.PickVictim(1, 0x010)
	v.Install(b.Set, b.Way, 0x010, 1, RPtr{2, 0, 1}, false, 12)
	dl := v.DirtyLines()
	if len(dl) != 1 || dl[0].Token != 11 || dl[0].RPtr != (RPtr{1, 0, 0}) {
		t.Errorf("DirtyLines = %+v", dl)
	}
}

func TestCounts(t *testing.T) {
	v := small()
	a := v.PickVictim(1, 0x000)
	v.Install(a.Set, a.Way, 0x000, 1, RPtr{}, false, 0)
	b := v.PickVictim(1, 0x010)
	v.Install(b.Set, b.Way, 0x010, 1, RPtr{}, false, 0)
	if v.CountPresent() != 2 || v.CountLive() != 2 {
		t.Fatalf("counts: present %d live %d", v.CountPresent(), v.CountLive())
	}
	v.SwapOut()
	if v.CountPresent() != 2 || v.CountLive() != 0 {
		t.Errorf("after swap: present %d live %d", v.CountPresent(), v.CountLive())
	}
	n := 0
	v.ForEachPresent(func(_, _ int, l *Line) {
		if !l.SV {
			t.Error("ForEachPresent visited a live line after SwapOut")
		}
		n++
	})
	if n != 2 {
		t.Errorf("ForEachPresent visited %d", n)
	}
}

func TestInstallOverwritesSwapped(t *testing.T) {
	v := small()
	a := v.PickVictim(1, 0x000)
	v.Install(a.Set, a.Way, 0x000, 1, RPtr{}, true, 1)
	b := v.PickVictim(1, 0x040)
	v.Install(b.Set, b.Way, 0x040, 1, RPtr{}, false, 1)
	v.SwapOut()
	vic := v.PickVictim(1, 0x080)
	if !vic.SV {
		t.Fatalf("expected swapped victim, got %+v", vic)
	}
	v.Install(vic.Set, vic.Way, 0x080, 2, RPtr{}, false, 2)
	l := v.Line(vic.Set, vic.Way)
	if l.SV || l.Dirty || l.Token != 2 {
		t.Errorf("install did not reset state: %+v", *l)
	}
	if _, _, st := v.Lookup(1, 0x080); st != Hit {
		t.Error("new block not live")
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(cache.Geometry{Size: 100, Block: 16, Assoc: 1}); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestRPtrString(t *testing.T) {
	if got := (RPtr{1, 2, 3}).String(); got != "R[1.2.3]" {
		t.Errorf("String = %q", got)
	}
}
