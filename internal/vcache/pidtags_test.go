package vcache

import (
	"testing"

	"repro/internal/cache"
)

func pidTagged(t *testing.T) *VCache {
	t.Helper()
	v, err := NewPIDTagged(cache.Geometry{Size: 128, Block: 16, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPIDTaggedFlag(t *testing.T) {
	if small().PIDTagged() {
		t.Error("plain cache reports PID tagging")
	}
	if !pidTagged(t).PIDTagged() {
		t.Error("PID-tagged cache does not report it")
	}
}

func TestPIDTaggedSeparatesProcesses(t *testing.T) {
	v := pidTagged(t)
	vic := v.PickVictim(1, 0x000)
	v.Install(vic.Set, vic.Way, 0x000, 1, RPtr{}, false, 11)
	// Same VA, different PID: miss.
	if _, _, st := v.Lookup(2, 0x000); st != Miss {
		t.Fatal("process 2 hit process 1's line")
	}
	// Same PID: hit.
	if _, _, st := v.Lookup(1, 0x000); st != Hit {
		t.Fatal("owner missed its own line")
	}
	// Install process 2's copy in the other way of the same set.
	vic2 := v.PickVictim(2, 0x000)
	if vic2.Set != vic.Set || vic2.Way == vic.Way {
		t.Fatalf("expected the empty way of the same set, got %+v", vic2)
	}
	v.Install(vic2.Set, vic2.Way, 0x000, 2, RPtr{}, false, 22)
	// Both coexist and resolve by PID.
	_, w1, _ := v.Lookup(1, 0x000)
	_, w2, _ := v.Lookup(2, 0x000)
	if w1 == w2 {
		t.Fatal("both processes resolved to the same way")
	}
	if v.Line(vic.Set, w1).Token != 11 || v.Line(vic.Set, w2).Token != 22 {
		t.Error("tokens crossed between processes")
	}
}

func TestPIDTaggedRetag(t *testing.T) {
	v := pidTagged(t)
	vic := v.PickVictim(1, 0x000)
	v.Install(vic.Set, vic.Way, 0x000, 1, RPtr{}, true, 5)
	// Retag to process 2 under a synonym VA in the same set (0x100:
	// block 16, set 0 in a 4-set cache).
	v.Retag(vic.Set, vic.Way, 0x100, 2)
	if _, _, st := v.Lookup(1, 0x000); st != Miss {
		t.Error("old (pid, va) still hits after retag")
	}
	_, w, st := v.Lookup(2, 0x100)
	if st != Hit || v.Line(vic.Set, w).Token != 5 {
		t.Error("retagged (pid, va) does not resolve")
	}
}

func TestPlainCacheIgnoresPID(t *testing.T) {
	v := small()
	vic := v.PickVictim(1, 0x000)
	v.Install(vic.Set, vic.Way, 0x000, 1, RPtr{}, false, 7)
	// Without PID tags any process matches (the paper's flush-on-switch
	// scheme guarantees no stale hits by swapping out instead).
	if _, _, st := v.Lookup(9, 0x000); st != Hit {
		t.Error("plain cache made PID part of the match")
	}
}
