package vcache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/cache"
)

// Property: under any random operation sequence, (a) no two present lines
// in one set share a tag, (b) Lookup after Install always hits, and
// (c) swapped lines never satisfy lookups.
func TestVCacheRandomOpsInvariants(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		v := MustNew(cache.Geometry{Size: 256, Block: 16, Assoc: 2})
		for op := 0; op < int(nOps); op++ {
			va := addr.VAddr(rng.Intn(64)) * 16
			pid := addr.PID(rng.Intn(3) + 1)
			switch rng.Intn(5) {
			case 0: // install at victim
				vic := v.PickVictim(pid, va)
				v.Install(vic.Set, vic.Way, va, pid, RPtr{}, rng.Intn(2) == 0, rng.Uint64())
				if _, _, st := v.Lookup(pid, va); st != Hit {
					return false
				}
			case 1: // lookup + touch
				if set, way, st := v.Lookup(pid, va); st == Hit {
					v.Touch(set, way)
				} else if st == MissPresent && !v.Line(set, way).SV {
					return false // MissPresent implies swapped
				}
			case 2:
				v.SwapOut()
			case 3: // invalidate something present
				if set, way, st := v.Lookup(pid, va); st != Miss {
					v.Invalidate(set, way)
					if v.Present(set, way) {
						return false
					}
				}
			case 4: // write into a live line
				if set, way, st := v.Lookup(pid, va); st == Hit {
					v.WriteTouch(set, way, rng.Uint64())
					if !v.Line(set, way).Dirty {
						return false
					}
				}
			}
		}
		// (a) tag uniqueness per set, via the external behaviour: every
		// present line must be findable as the victim for its own address,
		// and live count <= present count.
		if v.CountLive() > v.CountPresent() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: SwapOut is idempotent and never changes the present count.
func TestSwapOutIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := MustNew(cache.Geometry{Size: 128, Block: 16, Assoc: 1})
		for i := 0; i < 10; i++ {
			va := addr.VAddr(rng.Intn(16)) * 16
			vic := v.PickVictim(1, va)
			v.Install(vic.Set, vic.Way, va, 1, RPtr{}, false, 0)
		}
		before := v.CountPresent()
		v.SwapOut()
		n2 := v.SwapOut()
		return v.CountPresent() == before && v.CountLive() == 0 && n2 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
