// Package victim implements a small fully-associative victim cache that
// sits between the first and second levels of a hierarchy (Jouppi, ISCA
// 1990; SNIPPETS.md snippet 2). Lines evicted from the first level by
// capacity pressure are parked here; a first-level miss that hits the
// victim cache costs a short transfer instead of a full second-level
// access.
//
// The cache is deliberately passive with respect to correctness: it holds
// only blocks that the second level also holds (VC ⊆ L2), so a victim hit
// never changes which data a reference observes — it only changes the
// timing charge and the hit/miss accounting. The hierarchies enforce that
// containment by invalidating victim entries whenever the overlapping L2
// block is evicted, invalidated, or updated by the coherence protocol.
// That passivity is what lets the cross-organization differential harness
// demand byte-identical data behaviour with and without a victim cache.
//
// All methods are nil-safe in the style of cycles.CPU: a nil *Cache is a
// disabled victim cache, and the hot path pays only a nil check.
package victim

import "repro/internal/addr"

// entry is one parked block, keyed by its L1-block-aligned physical
// address. The token mirrors the L2 subentry's data token; audits use it
// to verify the VC ⊆ L2 containment.
type entry struct {
	pa    addr.PAddr
	token uint64
	valid bool
}

// Cache is a fixed-size fully-associative FIFO victim cache.
type Cache struct {
	entries []entry
	next    int // FIFO insertion cursor
}

// New builds a victim cache with the given number of entries; entries <= 0
// returns nil, the disabled cache.
func New(entries int) *Cache {
	if entries <= 0 {
		return nil
	}
	return &Cache{entries: make([]entry, entries)}
}

// Cap returns the entry count (0 when disabled).
func (c *Cache) Cap() int {
	if c == nil {
		return 0
	}
	return len(c.entries)
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.entries {
		if c.entries[i].valid {
			n++
		}
	}
	return n
}

// Take looks up the L1-block-aligned physical address pa and, on a hit,
// removes the entry (the block is moving back into the first level, and
// the two levels are exclusive). It returns the parked token.
func (c *Cache) Take(pa addr.PAddr) (uint64, bool) {
	if c == nil {
		return 0, false
	}
	for i := range c.entries {
		if c.entries[i].valid && c.entries[i].pa == pa {
			c.entries[i].valid = false
			return c.entries[i].token, true
		}
	}
	return 0, false
}

// Insert parks an evicted first-level block. A same-address entry is
// refreshed in place; otherwise the oldest slot is overwritten (entries
// are always clean with respect to L2, so dropping one is free).
func (c *Cache) Insert(pa addr.PAddr, token uint64) {
	if c == nil {
		return
	}
	for i := range c.entries {
		if c.entries[i].valid && c.entries[i].pa == pa {
			c.entries[i].token = token
			return
		}
	}
	c.entries[c.next] = entry{pa: pa, token: token, valid: true}
	c.next++
	if c.next == len(c.entries) {
		c.next = 0
	}
}

// InvalidateRange drops every entry whose address falls in
// [start, start+size): the overlapping L2 block is going away or changing,
// so the parked copies may no longer be supplied.
func (c *Cache) InvalidateRange(start addr.PAddr, size uint64) {
	if c == nil {
		return
	}
	for i := range c.entries {
		if c.entries[i].valid && c.entries[i].pa >= start && uint64(c.entries[i].pa) < uint64(start)+size {
			c.entries[i].valid = false
		}
	}
}

// ForEach visits every live entry in slot order (audit snapshots rely on
// the deterministic order).
func (c *Cache) ForEach(fn func(pa addr.PAddr, token uint64)) {
	if c == nil {
		return
	}
	for i := range c.entries {
		if c.entries[i].valid {
			fn(c.entries[i].pa, c.entries[i].token)
		}
	}
}

// EntryState is one serialized entry.
type EntryState struct {
	PA    uint64
	Token uint64
	Valid bool
}

// State is the canonical serialized form of a victim cache: every slot in
// order plus the FIFO cursor, so restore reproduces the exact replacement
// behaviour.
type State struct {
	Entries []EntryState
	Next    int
}

// ExportState captures the full cache state; nil caches export nil.
func (c *Cache) ExportState() *State {
	if c == nil {
		return nil
	}
	s := &State{Entries: make([]EntryState, len(c.entries)), Next: c.next}
	for i, e := range c.entries {
		s.Entries[i] = EntryState{PA: uint64(e.pa), Token: e.token, Valid: e.valid}
	}
	return s
}

// RestoreState restores a state captured by ExportState on an identically
// sized cache.
func (c *Cache) RestoreState(s *State) error {
	if c == nil {
		if s == nil {
			return nil
		}
		return errState("state for a disabled victim cache")
	}
	if s == nil {
		return errState("missing victim cache state")
	}
	if len(s.Entries) != len(c.entries) {
		return errState("entry count mismatch")
	}
	if s.Next < 0 || s.Next >= len(c.entries) {
		return errState("cursor out of range")
	}
	for i, e := range s.Entries {
		c.entries[i] = entry{pa: addr.PAddr(e.PA), token: e.Token, valid: e.Valid}
	}
	c.next = s.Next
	return nil
}

type errState string

func (e errState) Error() string { return "victim: " + string(e) }
