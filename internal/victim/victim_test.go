package victim

import (
	"testing"

	"repro/internal/addr"
)

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if c != New(0) || New(-3) != nil {
		t.Fatalf("New with entries <= 0 must return nil")
	}
	if c.Cap() != 0 || c.Len() != 0 {
		t.Fatalf("nil cache reports capacity %d len %d", c.Cap(), c.Len())
	}
	c.Insert(0x100, 1)
	c.InvalidateRange(0, 1<<32)
	c.ForEach(func(addr.PAddr, uint64) { t.Fatal("nil cache visited an entry") })
	if _, ok := c.Take(0x100); ok {
		t.Fatal("nil cache produced a hit")
	}
	if c.ExportState() != nil {
		t.Fatal("nil cache exported state")
	}
	if err := c.RestoreState(nil); err != nil {
		t.Fatalf("nil cache rejects nil state: %v", err)
	}
	if err := c.RestoreState(&State{}); err == nil {
		t.Fatal("nil cache accepted non-nil state")
	}
}

func TestTakeRemovesEntry(t *testing.T) {
	c := New(4)
	c.Insert(0x100, 7)
	if tok, ok := c.Take(0x100); !ok || tok != 7 {
		t.Fatalf("Take = %d,%v want 7,true", tok, ok)
	}
	if _, ok := c.Take(0x100); ok {
		t.Fatal("entry survived Take")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Take", c.Len())
	}
}

func TestInsertRefreshesSameAddress(t *testing.T) {
	c := New(2)
	c.Insert(0x100, 1)
	c.Insert(0x100, 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, same-address insert must not duplicate", c.Len())
	}
	if tok, _ := c.Take(0x100); tok != 2 {
		t.Fatalf("token = %d, want refreshed 2", tok)
	}
}

func TestFIFOReplacement(t *testing.T) {
	c := New(2)
	c.Insert(0x100, 1)
	c.Insert(0x200, 2)
	c.Insert(0x300, 3) // overwrites 0x100, the oldest
	if _, ok := c.Take(0x100); ok {
		t.Fatal("oldest entry survived a full insert")
	}
	for _, want := range []addr.PAddr{0x200, 0x300} {
		if _, ok := c.Take(want); !ok {
			t.Fatalf("entry %#x missing after FIFO replacement", want)
		}
	}
}

func TestInvalidateRange(t *testing.T) {
	c := New(4)
	c.Insert(0x100, 1)
	c.Insert(0x110, 2)
	c.Insert(0x200, 3)
	c.InvalidateRange(0x100, 0x20)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after invalidating [0x100,0x120)", c.Len())
	}
	if _, ok := c.Take(0x200); !ok {
		t.Fatal("entry outside the range was dropped")
	}
}

func TestStateRoundTrip(t *testing.T) {
	c := New(3)
	c.Insert(0x100, 1)
	c.Insert(0x200, 2)
	c.Take(0x100)
	s := c.ExportState()

	r := New(3)
	if err := r.RestoreState(s); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if r.Len() != c.Len() {
		t.Fatalf("restored Len = %d want %d", r.Len(), c.Len())
	}
	// Replacement behaviour must continue identically: fill both and
	// compare survivors.
	for _, pa := range []addr.PAddr{0x300, 0x400, 0x500} {
		c.Insert(pa, uint64(pa))
		r.Insert(pa, uint64(pa))
	}
	var got, want []addr.PAddr
	c.ForEach(func(pa addr.PAddr, _ uint64) { want = append(want, pa) })
	r.ForEach(func(pa addr.PAddr, _ uint64) { got = append(got, pa) })
	if len(got) != len(want) {
		t.Fatalf("survivor count %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("survivor %d = %#x want %#x", i, got[i], want[i])
		}
	}
}

func TestRestoreStateRejectsMismatch(t *testing.T) {
	c := New(2)
	if err := c.RestoreState(nil); err == nil {
		t.Fatal("accepted nil state on a live cache")
	}
	if err := c.RestoreState(&State{Entries: make([]EntryState, 3)}); err == nil {
		t.Fatal("accepted wrong entry count")
	}
	if err := c.RestoreState(&State{Entries: make([]EntryState, 2), Next: 2}); err == nil {
		t.Fatal("accepted out-of-range cursor")
	}
}
