package system

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/cache"
	"repro/internal/tracegen"
)

// TestAuditCleanAcrossConfigs runs every preset through every organization
// at several CPU counts with the auditor ticking, and requires zero
// violations: the real machine never breaks its own invariants, so any
// auditor finding on these runs is an auditor bug (or a real one).
func TestAuditCleanAcrossConfigs(t *testing.T) {
	presets := []func() tracegen.Config{
		tracegen.PopsLike, tracegen.ThorLike, tracegen.AbaqusLike,
	}
	orgs := []Organization{VR, RRInclusion, RRNoInclusion}
	for _, preset := range presets {
		for _, org := range orgs {
			for _, cpus := range []int{1, 2, 4} {
				tc := preset().Scaled(0.01)
				tc.CPUs = cpus
				t.Run(fmt.Sprintf("%s/%v/%dcpu", tc.Name, org, cpus), func(t *testing.T) {
					aud := audit.New(500)
					sys, err := New(Config{
						CPUs:         cpus,
						Organization: org,
						PageSize:     tc.PageSize,
						L1:           cache.Geometry{Size: 4 << 10, Block: 16, Assoc: 1},
						L2:           cache.Geometry{Size: 64 << 10, Block: 32, Assoc: 1},
						Audit:        aud,
					})
					if err != nil {
						t.Fatal(err)
					}
					if err := tc.SetupSharedMappings(sys.MMU()); err != nil {
						t.Fatal(err)
					}
					gen, err := tracegen.New(tc)
					if err != nil {
						t.Fatal(err)
					}
					if err := sys.Run(gen); err != nil {
						t.Fatal(err)
					}
					aud.Audit(sys) // final on-demand audit of the end state
					if aud.Audits() < 2 {
						t.Fatalf("auditor barely ran: %d audits", aud.Audits())
					}
					if n := aud.Total(); n != 0 {
						t.Fatalf("%d violations on a clean run:\n%v", n, aud.Violations())
					}
				})
			}
		}
	}
}

// TestAuditSnapshotDeterministic runs the same workload twice and requires
// byte-identical snapshot dumps — the diffable-dump guarantee.
func TestAuditSnapshotDeterministic(t *testing.T) {
	dump := func() string {
		tc := tracegen.PopsLike().Scaled(0.005)
		sys, err := New(Config{
			CPUs:         tc.CPUs,
			Organization: VR,
			PageSize:     tc.PageSize,
			L1:           cache.Geometry{Size: 4 << 10, Block: 16, Assoc: 1},
			L2:           cache.Geometry{Size: 64 << 10, Block: 32, Assoc: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := tc.SetupSharedMappings(sys.MMU()); err != nil {
			t.Fatal(err)
		}
		gen, err := tracegen.New(tc)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(gen); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := sys.AuditSnapshot().WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := dump(), dump()
	if a != b {
		t.Fatal("identical runs produced different snapshot dumps")
	}
	if len(a) == 0 {
		t.Fatal("empty snapshot dump")
	}
}
