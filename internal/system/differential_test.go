package system

import (
	"fmt"
	"testing"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// The cross-organization differential harness. Every cache organization is
// a different implementation of the same architectural contract: loads
// return the newest store to the same physical address. So for one trace,
// every organization must produce (a) the identical per-reference token
// stream and (b) the identical final memory image once the hierarchy's
// dirty state is folded down over memory. The victim cache and the
// reverse-lookup synonym table are timing/organization artifacts and must
// not change either.

// orgVariant is one point in the organization matrix.
type orgVariant struct {
	name         string
	org          Organization
	writeThrough bool
	victim       int
	rltEntries   int
}

func orgMatrix() []orgVariant {
	return []orgVariant{
		{name: "vr", org: VR},
		{name: "vr+vc", org: VR, victim: 4},
		{name: "vr-wt", org: VR, writeThrough: true},
		{name: "vr-wt+vc", org: VR, writeThrough: true, victim: 4},
		{name: "rlt", org: VRRLT, rltEntries: 16},
		{name: "rlt+vc", org: VRRLT, rltEntries: 16, victim: 4},
		{name: "rr", org: RRInclusion},
		{name: "rr+vc", org: RRInclusion, victim: 4},
		{name: "rr-wt", org: RRInclusion, writeThrough: true},
		{name: "rrnoincl", org: RRNoInclusion},
		{name: "rrnoincl+vc", org: RRNoInclusion, victim: 4},
	}
}

// diffConfig builds a deliberately small machine so the scaled-down traces
// still churn through evictions, synonyms and write-backs.
func diffConfig(tc tracegen.Config, v orgVariant) Config {
	return Config{
		CPUs:           tc.CPUs,
		Organization:   v.org,
		PageSize:       tc.PageSize,
		L1:             cache.Geometry{Size: 1 << 10, Block: 16, Assoc: 2},
		L2:             cache.Geometry{Size: 8 << 10, Block: 32, Assoc: 2},
		L1WriteThrough: v.writeThrough,
		VictimEntries:  v.victim,
		RLTEntries:     v.rltEntries,
		CheckOracle:    true,
	}
}

// genRefs materializes one scaled preset trace so every variant replays
// byte-identical input.
func genRefs(t *testing.T, tc tracegen.Config) []trace.Ref {
	t.Helper()
	gen, err := tracegen.New(tc)
	if err != nil {
		t.Fatal(err)
	}
	var refs []trace.Ref
	buf := make([]trace.Ref, 4096)
	for {
		n, err := trace.FillBatch(gen, buf)
		refs = append(refs, buf[:n]...)
		if err != nil {
			return refs
		}
	}
}

// refRecord is one reference's architecturally visible outcome.
type refRecord struct {
	pa    uint64
	token uint64
}

// runVariant replays refs through one organization, returning the
// per-reference outcome stream and the machine (drained, post-run).
func runVariant(t *testing.T, tc tracegen.Config, v orgVariant, refs []trace.Ref) ([]refRecord, *System) {
	t.Helper()
	sys, err := New(diffConfig(tc, v))
	if err != nil {
		t.Fatalf("%s: %v", v.name, err)
	}
	if err := tc.SetupSharedMappings(sys.MMU()); err != nil {
		t.Fatalf("%s: %v", v.name, err)
	}
	out := make([]refRecord, 0, len(refs))
	for i, ref := range refs {
		res, err := sys.Apply(ref)
		if err != nil {
			t.Fatalf("%s: ref %d: %v", v.name, i, err)
		}
		if res.CtxSwitch {
			out = append(out, refRecord{})
			continue
		}
		out = append(out, refRecord{pa: uint64(res.PA), token: res.Token})
		// Structural invariants are O(cache) per call, so sample them
		// rather than paying the walk on every reference.
		if i%1021 == 0 {
			for c := 0; c < sys.CPUs(); c++ {
				if err := sys.CPU(c).Check(); err != nil {
					t.Fatalf("%s: ref %d: cpu %d: %v", v.name, i, c, err)
				}
			}
		}
	}
	sys.Drain()
	if vs := sys.AuditSnapshot().Check(); len(vs) != 0 {
		t.Fatalf("%s: audit violations after drain: %v", v.name, vs[0])
	}
	return out, sys
}

// finalImage folds the drained hierarchy's dirty state down over memory:
// a first-level dirty copy is the newest value, then a dirty second-level
// subentry, then memory. The domain is the set of addresses the run ever
// wrote (the oracle's keys), at L1-block granularity.
func finalImage(t *testing.T, sys *System) map[uint64]uint64 {
	t.Helper()
	img := make(map[uint64]uint64)
	snap := sys.AuditSnapshot()
	for _, cs := range snap.CPUs {
		if len(cs.WriteBuffer) != 0 {
			t.Fatalf("cpu %d: write buffer not empty after drain", cs.CPU)
		}
		type vk struct{ c, set, way int }
		vtok := make(map[vk]uint64)
		vdirty := make(map[vk]bool)
		for _, vcs := range cs.VCaches {
			for _, l := range vcs.Lines {
				k := vk{vcs.Cache, l.Set, l.Way}
				vtok[k] = l.Token
				vdirty[k] = l.Dirty
			}
		}
		for _, rl := range cs.RLines {
			for _, sub := range rl.Subs {
				pa := rl.Addr + uint64(sub.Sub)*cs.L1Block
				k := vk{sub.VCache, sub.VSet, sub.VWay}
				switch {
				case sub.Inclusion && vdirty[k]:
					img[pa] = vtok[k]
				case sub.RDirty:
					if _, dirtier := img[pa]; !dirtier {
						img[pa] = sub.Token
					}
				}
			}
		}
		// The no-inclusion baseline's L1 holds dirty blocks that may not
		// be in L2 at all; where both levels are dirty, L1 is newer.
		for _, l1 := range cs.L1Lines {
			if l1.Dirty {
				img[l1.Addr] = l1.Token
			}
		}
	}
	for pa := range sys.oracle {
		if _, ok := img[uint64(pa)]; !ok {
			img[uint64(pa)] = sys.mem.Peek(pa)
		}
	}
	return img
}

// TestDifferentialOrganizations replays the three paper workloads, at one,
// two and four CPUs, through every organization variant and demands the
// per-reference token stream and the final memory image match the V-R
// baseline exactly.
func TestDifferentialOrganizations(t *testing.T) {
	scale := 0.002
	if testing.Short() {
		scale = 0.0005
	}
	for _, preset := range tracegen.Presets() {
		for _, cpus := range []int{1, 2, 4} {
			tc := preset.Scaled(scale)
			tc.CPUs = cpus
			name := fmt.Sprintf("%s/cpus=%d", tc.Name, cpus)
			t.Run(name, func(t *testing.T) {
				refs := genRefs(t, tc)
				if len(refs) == 0 {
					t.Fatal("empty trace")
				}
				base, baseSys := runVariant(t, tc, orgMatrix()[0], refs)
				baseImg := finalImage(t, baseSys)
				checkImageMatchesOracle(t, "vr", baseSys, baseImg)
				for _, v := range orgMatrix()[1:] {
					got, sys := runVariant(t, tc, v, refs)
					for i := range base {
						if got[i] != base[i] {
							t.Fatalf("%s: ref %d (%v): got pa=%#x token=%d, vr baseline pa=%#x token=%d",
								v.name, i, refs[i], got[i].pa, got[i].token, base[i].pa, base[i].token)
						}
					}
					img := finalImage(t, sys)
					checkImageMatchesOracle(t, v.name, sys, img)
					if len(img) != len(baseImg) {
						t.Fatalf("%s: final image has %d blocks, vr baseline %d", v.name, len(img), len(baseImg))
					}
					for pa, tok := range baseImg {
						if img[pa] != tok {
							t.Fatalf("%s: final image at pa %#x: token %d, vr baseline %d", v.name, pa, img[pa], tok)
						}
					}
				}
			})
		}
	}
}

// checkImageMatchesOracle verifies the folded-down image agrees with the
// sequential-consistency oracle: every written block ends holding its
// newest store, no matter which level it was parked in.
func checkImageMatchesOracle(t *testing.T, name string, sys *System, img map[uint64]uint64) {
	t.Helper()
	if len(sys.oracle) == 0 {
		t.Fatalf("%s: oracle empty — trace generated no writes", name)
	}
	for pa, want := range sys.oracle {
		if got := img[uint64(pa)]; got != want {
			t.Fatalf("%s: pa %#x: final image token %d, oracle %d", name, uint64(pa), got, want)
		}
	}
	for pa := range img {
		if _, ok := sys.oracle[addr.PAddr(pa)]; !ok {
			// A dirty block the oracle never saw written cannot exist.
			t.Fatalf("%s: image holds pa %#x the oracle never recorded", name, pa)
		}
	}
}

// TestDifferentialVictimActuallyUsed guards the harness itself: if the
// victim-cache variants never hit the victim cache, the matrix is not
// exercising the new machinery.
func TestDifferentialVictimActuallyUsed(t *testing.T) {
	tc := tracegen.AbaqusLike().Scaled(0.002)
	refs := genRefs(t, tc)
	for _, v := range []orgVariant{
		{name: "vr+vc", org: VR, victim: 4},
		{name: "rrnoincl+vc", org: RRNoInclusion, victim: 4},
		{name: "rlt+vc", org: VRRLT, rltEntries: 16, victim: 4},
	} {
		_, sys := runVariant(t, tc, v, refs)
		var hits, inserts uint64
		for c := 0; c < sys.CPUs(); c++ {
			hits += sys.Stats(c).VictimHits
			inserts += sys.Stats(c).VictimInserts
		}
		if inserts == 0 {
			t.Errorf("%s: victim cache never filled", v.name)
		}
		if hits == 0 {
			t.Errorf("%s: victim cache never hit", v.name)
		}
	}
}

// TestDifferentialRLTActuallyEvicts guards the RLT variant the same way:
// the 16-entry table must be under capacity pressure, or the reciprocity
// invariant is only tested in the trivial regime.
func TestDifferentialRLTActuallyEvicts(t *testing.T) {
	tc := tracegen.AbaqusLike().Scaled(0.002)
	refs := genRefs(t, tc)
	_, sys := runVariant(t, tc, orgVariant{name: "rlt", org: VRRLT, rltEntries: 16}, refs)
	var ev uint64
	for c := 0; c < sys.CPUs(); c++ {
		ev += sys.Stats(c).RLTEvictions
	}
	if ev == 0 {
		t.Error("16-entry RLT under a 64-line L1 never evicted")
	}
}
