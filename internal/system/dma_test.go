package system

import (
	"testing"

	"repro/internal/trace"
)

func TestDMAWriteInvalidatesCaches(t *testing.T) {
	s := MustNew(smallConfig(VR))
	// CPU 0 caches a block.
	res, err := s.Apply(trace.Ref{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x100})
	if err != nil {
		t.Fatal(err)
	}
	pa := res.PA
	// Device writes the same physical block.
	dma := s.NewDMA()
	want := dma.WriteBlock(pa)
	// The CPU's next read must miss and observe the device's data.
	got, err := s.Apply(trace.Ref{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x100})
	if err != nil {
		t.Fatal(err)
	}
	if got.L1Hit {
		t.Error("stale cached copy survived the DMA write")
	}
	if got.Token != want {
		t.Errorf("CPU read token %d, want device's %d", got.Token, want)
	}
}

func TestDMAReadFlushesDirtyCopy(t *testing.T) {
	s := MustNew(smallConfig(VR))
	res, err := s.Apply(trace.Ref{CPU: 0, Kind: trace.Write, PID: 1, Addr: 0x200})
	if err != nil {
		t.Fatal(err)
	}
	dma := s.NewDMA()
	got, err := dma.ReadBlock(res.PA)
	if err != nil {
		t.Fatal(err)
	}
	if got != res.Token {
		t.Errorf("device read %d, want CPU's dirty data %d", got, res.Token)
	}
	// The CPU keeps a now-clean copy.
	again, err := s.Apply(trace.Ref{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x200})
	if err != nil {
		t.Fatal(err)
	}
	if !again.L1Hit || again.Token != res.Token {
		t.Errorf("CPU copy damaged by device read: %+v", again)
	}
}

func TestDMAWritePreservesUnrelatedDirtySub(t *testing.T) {
	// An L2 line spans two L1 blocks. The CPU dirties one sub-block; the
	// device writes the *other*. The invalidation of the shared L2 line
	// must not lose the CPU's dirty data (it is flushed to memory first).
	s := MustNew(smallConfig(VR))
	w, err := s.Apply(trace.Ref{CPU: 0, Kind: trace.Write, PID: 1, Addr: 0x100})
	if err != nil {
		t.Fatal(err)
	}
	dma := s.NewDMA()
	// The sibling sub-block within the same 32B L2 line.
	sibling := w.PA ^ 0x10
	dma.WriteBlock(sibling)
	got, err := s.Apply(trace.Ref{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x100})
	if err != nil {
		t.Fatal(err)
	}
	if got.Token != w.Token {
		t.Errorf("unrelated dirty sub lost: read %d, want %d", got.Token, w.Token)
	}
}

func TestDMATransfers(t *testing.T) {
	s := MustNew(smallConfig(VR))
	dma := s.NewDMA()
	if n := dma.TransferIn(0x400, 64); n != 4 {
		t.Errorf("TransferIn wrote %d blocks, want 4", n)
	}
	n, err := dma.TransferOut(0x400, 64)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("TransferOut read %d blocks, want 4", n)
	}
	st := dma.Stats()
	if st.Writes != 4 || st.Reads != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDMAWithAllOrganizations(t *testing.T) {
	for _, org := range []Organization{VR, RRInclusion, RRNoInclusion} {
		s := MustNew(smallConfig(org))
		w, err := s.Apply(trace.Ref{CPU: 0, Kind: trace.Write, PID: 1, Addr: 0x300})
		if err != nil {
			t.Fatal(err)
		}
		dma := s.NewDMA()
		got, err := dma.ReadBlock(w.PA)
		if err != nil {
			t.Fatalf("%v: %v", org, err)
		}
		if got != w.Token {
			t.Errorf("%v: device read %d, want %d", org, got, w.Token)
		}
		devTok := dma.WriteBlock(w.PA)
		back, err := s.Apply(trace.Ref{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x300})
		if err != nil {
			t.Fatal(err)
		}
		if back.Token != devTok {
			t.Errorf("%v: CPU read %d after DMA write, want %d", org, back.Token, devTok)
		}
	}
}

func TestDMAInterleavedWithWorkload(t *testing.T) {
	s := MustNew(smallConfig(VR))
	dma := s.NewDMA()
	// Interleave CPU traffic and device traffic over one page of physical
	// memory; the oracle (enabled in smallConfig) checks every read.
	for i := 0; i < 200; i++ {
		cpu := uint8(i % 2)
		ref := trace.Ref{CPU: cpu, Kind: trace.Write, PID: 1, Addr: 0x100}
		if cpu == 1 {
			ref.PID = 2
			ref.Kind = trace.Read
			ref.Addr = 0x500
		}
		res, err := s.Apply(ref)
		if err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			dma.WriteBlock(res.PA)
		}
		if i%7 == 0 {
			if _, err := dma.ReadBlock(res.PA); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range make([]struct{}, s.CPUs()) {
		if err := s.CPU(i).Check(); err != nil {
			t.Fatal(err)
		}
	}
}
