package system

import (
	"bytes"
	"testing"

	"repro/internal/cache"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// TestReplayEquivalence: running a generated workload directly and
// replaying the same workload from a serialized trace must produce
// identical statistics — the foundation of the save/replay workflow.
func TestReplayEquivalence(t *testing.T) {
	wl := tracegen.PopsLike().Scaled(0.002)
	build := func() *System {
		s := MustNew(Config{
			CPUs:         wl.CPUs,
			Organization: VR,
			PageSize:     wl.PageSize,
			L1:           cache.Geometry{Size: 4 << 10, Block: 16, Assoc: 1},
			L2:           cache.Geometry{Size: 64 << 10, Block: 32, Assoc: 1},
		})
		if err := wl.SetupSharedMappings(s.MMU()); err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Direct run.
	direct := build()
	gen, err := tracegen.New(wl)
	if err != nil {
		t.Fatal(err)
	}
	if err := direct.Run(gen); err != nil {
		t.Fatal(err)
	}

	// Serialize the identical trace, then replay.
	gen2, err := tracegen.New(wl)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := trace.NewGzipWriter(&buf)
	for {
		ref, err := gen2.Next()
		if err != nil {
			break
		}
		if err := w.Write(ref); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	replayed := build()
	r, err := trace.OpenBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := replayed.Run(r); err != nil {
		t.Fatal(err)
	}

	if direct.Aggregate() != replayed.Aggregate() {
		t.Errorf("aggregates diverged:\n direct  %+v\n replay  %+v",
			direct.Aggregate(), replayed.Aggregate())
	}
	if direct.Refs() != replayed.Refs() {
		t.Errorf("refs diverged: %d vs %d", direct.Refs(), replayed.Refs())
	}
	for cpu := 0; cpu < direct.CPUs(); cpu++ {
		if direct.Stats(cpu).Coherence.Total() != replayed.Stats(cpu).Coherence.Total() {
			t.Errorf("cpu %d coherence counts diverged", cpu)
		}
	}
}
