package system

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/bus"
	"repro/internal/probe"
)

// DMA models an I/O device doing direct memory access — the paper's
// problem #4 with virtually-addressed caches: devices use physical
// addresses, so a virtually-addressed cache would need reverse translation
// to stay coherent with them. In the V-R organization the device simply
// participates in the physical bus protocol; the R-cache's existing
// v-pointers reach any first-level copies, and no translation hardware is
// involved anywhere.
//
// A device write behaves like a read-modified-write by an agent that
// caches nothing: dirty copies anywhere are first flushed to memory, every
// cached copy is invalidated, then memory is updated. A device read is a
// plain read-miss: dirty copies are flushed and memory supplies current
// data.
type DMA struct {
	sys *System
	id  int
	st  DMAStats
}

// DMAStats counts device activity.
type DMAStats struct {
	Reads  uint64
	Writes uint64
}

// NewDMA attaches a DMA agent to the machine's bus.
func (s *System) NewDMA() *DMA {
	d := &DMA{sys: s}
	d.id = s.bus.Attach(d)
	return d
}

// SnoopBus implements bus.Snooper; a device caches nothing, so it never
// responds.
func (d *DMA) SnoopBus(bus.Txn) bus.SnoopResult { return bus.SnoopResult{} }

// Stats returns a copy of the device counters.
func (d *DMA) Stats() DMAStats { return d.st }

// WriteBlock performs a device write of one minimum-granularity block at
// physical address pa, returning the token it stamped. Cached copies are
// flushed and invalidated through the ordinary physical protocol.
func (d *DMA) WriteBlock(pa addr.PAddr) uint64 {
	base := pa &^ addr.PAddr(d.sys.mem.Granularity()-1)
	d.sys.bus.Issue(bus.Txn{
		Kind: bus.ReadMod,
		From: d.id,
		Addr: base,
		Size: d.sys.mem.Granularity(),
	})
	token := d.sys.tokens.Next()
	d.sys.mem.Write(base, token)
	if d.sys.oracle != nil {
		d.sys.oracle[base] = token
	}
	d.st.Writes++
	if pr := d.sys.cfg.Probe; pr != nil {
		pr.Emit(probe.Event{CPU: d.id, Kind: probe.EvDMAWrite, PA: base, Aux: token})
	}
	return token
}

// ReadBlock performs a device read of one block at physical address pa:
// any dirty cached copy is flushed first, then memory supplies the data.
func (d *DMA) ReadBlock(pa addr.PAddr) (uint64, error) {
	base := pa &^ addr.PAddr(d.sys.mem.Granularity()-1)
	d.sys.bus.Issue(bus.Txn{
		Kind: bus.Read,
		From: d.id,
		Addr: base,
		Size: d.sys.mem.Granularity(),
	})
	token := d.sys.mem.Read(base)
	d.st.Reads++
	if pr := d.sys.cfg.Probe; pr != nil {
		pr.Emit(probe.Event{CPU: d.id, Kind: probe.EvDMARead, PA: base, Aux: token})
	}
	if d.sys.oracle != nil {
		if want := d.sys.oracle[base]; token != want {
			return token, fmt.Errorf("system: DMA oracle violation at %#x: read %d, want %d",
				uint64(base), token, want)
		}
	}
	return token, nil
}

// TransferIn models a device-to-memory transfer (e.g. disk input) covering
// [pa, pa+n) and returns the number of blocks written.
func (d *DMA) TransferIn(pa addr.PAddr, n uint64) int {
	g := d.sys.mem.Granularity()
	count := 0
	for off := uint64(0); off < n; off += g {
		d.WriteBlock(pa + addr.PAddr(off))
		count++
	}
	return count
}

// TransferOut models a memory-to-device transfer (e.g. disk output),
// returning the blocks read.
func (d *DMA) TransferOut(pa addr.PAddr, n uint64) (int, error) {
	g := d.sys.mem.Granularity()
	count := 0
	for off := uint64(0); off < n; off += g {
		if _, err := d.ReadBlock(pa + addr.PAddr(off)); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}
