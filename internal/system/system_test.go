package system

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/trace"
)

func smallConfig(org Organization) Config {
	return Config{
		CPUs:            2,
		Organization:    org,
		PageSize:        64,
		L1:              cache.Geometry{Size: 128, Block: 16, Assoc: 1},
		L2:              cache.Geometry{Size: 512, Block: 32, Assoc: 2},
		CheckOracle:     true,
		CheckInvariants: true,
	}
}

func TestNewAllOrganizations(t *testing.T) {
	for _, org := range []Organization{VR, RRInclusion, RRNoInclusion} {
		s, err := New(smallConfig(org))
		if err != nil {
			t.Fatalf("%v: %v", org, err)
		}
		if s.CPUs() != 2 {
			t.Errorf("%v: CPUs = %d", org, s.CPUs())
		}
	}
}

func TestNewErrors(t *testing.T) {
	cfg := smallConfig(VR)
	cfg.CPUs = 300
	if _, err := New(cfg); err == nil {
		t.Error("300 CPUs accepted")
	}
	cfg = smallConfig(VR)
	cfg.Organization = Organization(99)
	if _, err := New(cfg); err == nil {
		t.Error("unknown organization accepted")
	}
	cfg = smallConfig(VR)
	cfg.L1.Size = 100
	if _, err := New(cfg); err == nil {
		t.Error("bad L1 accepted")
	}
	cfg = smallConfig(VR)
	cfg.PageSize = 1000
	if _, err := New(cfg); err == nil {
		t.Error("bad page size accepted")
	}
}

func TestOrganizationString(t *testing.T) {
	if VR.String() != "VR" || RRInclusion.String() != "RR(incl)" ||
		RRNoInclusion.String() != "RR(no incl)" {
		t.Error("labels wrong")
	}
	if !strings.Contains(Organization(9).String(), "9") {
		t.Error("unknown organization should render its number")
	}
}

func TestRunSmallTrace(t *testing.T) {
	s := MustNew(smallConfig(VR))
	refs := []trace.Ref{
		{CPU: 0, Kind: trace.IFetch, PID: 1, Addr: 0x000},
		{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x100},
		{CPU: 0, Kind: trace.Write, PID: 1, Addr: 0x100},
		{CPU: 1, Kind: trace.Read, PID: 2, Addr: 0x100},
		{CPU: 0, Kind: trace.CtxSwitch, PID: 3},
		{CPU: 0, Kind: trace.Read, PID: 3, Addr: 0x100},
	}
	if err := s.Run(trace.NewSliceReader(refs)); err != nil {
		t.Fatal(err)
	}
	if s.Refs() != 5 {
		t.Errorf("Refs = %d, want 5 (context switch excluded)", s.Refs())
	}
	if s.Stats(0).CtxSwitches != 1 {
		t.Error("context switch not applied")
	}
}

func TestRunRejectsUnknownCPU(t *testing.T) {
	s := MustNew(smallConfig(VR))
	refs := []trace.Ref{{CPU: 5, Kind: trace.Read, PID: 1, Addr: 0}}
	if err := s.Run(trace.NewSliceReader(refs)); err == nil {
		t.Fatal("record for CPU 5 accepted on 2-CPU machine")
	}
}

func TestSharedWritesAcrossCPUs(t *testing.T) {
	s := MustNew(smallConfig(VR))
	seg := s.MMU().NewSegment(64)
	if err := s.MMU().MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := s.MMU().MapShared(2, 0x080, seg); err != nil {
		t.Fatal(err)
	}
	refs := []trace.Ref{
		{CPU: 0, Kind: trace.Write, PID: 1, Addr: 0x040},
		{CPU: 1, Kind: trace.Read, PID: 2, Addr: 0x080},
		{CPU: 1, Kind: trace.Write, PID: 2, Addr: 0x080},
		{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x040},
	}
	// The oracle inside Run verifies cross-CPU propagation.
	if err := s.Run(trace.NewSliceReader(refs)); err != nil {
		t.Fatal(err)
	}
	if s.Bus().Stats().Total() == 0 {
		t.Error("sharing generated no bus traffic")
	}
}

func TestAggregate(t *testing.T) {
	s := MustNew(smallConfig(VR))
	refs := []trace.Ref{
		{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x000},
		{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x004}, // L1 hit
		{CPU: 1, Kind: trace.Write, PID: 2, Addr: 0x000},
		{CPU: 1, Kind: trace.Write, PID: 2, Addr: 0x004}, // L1 hit
		{CPU: 0, Kind: trace.IFetch, PID: 1, Addr: 0x200},
	}
	if err := s.Run(trace.NewSliceReader(refs)); err != nil {
		t.Fatal(err)
	}
	a := s.Aggregate()
	if a.H1 != 0.4 {
		t.Errorf("H1 = %v, want 0.4", a.H1)
	}
	if a.L1.DataRead != 0.5 || a.L1.DataWrite != 0.5 || a.L1.Instr != 0 {
		t.Errorf("per-kind L1 = %+v", a.L1)
	}
	if a.H2 != a.L2.Overall {
		t.Error("H2 alias broken")
	}
}

func TestCoherenceMessages(t *testing.T) {
	s := MustNew(smallConfig(RRNoInclusion))
	refs := []trace.Ref{
		{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x000},
		{CPU: 1, Kind: trace.Read, PID: 2, Addr: 0x100},
		{CPU: 1, Kind: trace.Read, PID: 2, Addr: 0x200},
	}
	if err := s.Run(trace.NewSliceReader(refs)); err != nil {
		t.Fatal(err)
	}
	msgs := s.CoherenceMessages()
	if len(msgs) != 2 {
		t.Fatalf("msgs = %v", msgs)
	}
	if msgs[0] != 2 { // two remote misses probed cpu0's L1
		t.Errorf("cpu0 probes = %d, want 2", msgs[0])
	}
	if msgs[1] != 1 {
		t.Errorf("cpu1 probes = %d, want 1", msgs[1])
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{
		L1: cache.Geometry{Size: 128, Block: 16, Assoc: 1},
		L2: cache.Geometry{Size: 512, Block: 32, Assoc: 2},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.CPUs() != 1 {
		t.Errorf("default CPUs = %d", s.CPUs())
	}
	if s.MMU().PageGeom().Size() != 4096 {
		t.Errorf("default page size = %d", s.MMU().PageGeom().Size())
	}
}

func TestStatsAccessors(t *testing.T) {
	s := MustNew(smallConfig(VR))
	if s.CPU(0) == nil || s.Stats(1) == nil || s.Memory() == nil {
		t.Error("accessors returned nil")
	}
}

func TestResetStats(t *testing.T) {
	s := MustNew(smallConfig(VR))
	refs := []trace.Ref{
		{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x000},
		{CPU: 1, Kind: trace.Write, PID: 2, Addr: 0x100},
	}
	if err := s.Run(trace.NewSliceReader(refs)); err != nil {
		t.Fatal(err)
	}
	if s.Refs() == 0 || s.Stats(0).L1.Overall().Total == 0 {
		t.Fatal("precondition: stats populated")
	}
	s.ResetStats()
	if s.Refs() != 0 {
		t.Error("refs not reset")
	}
	if s.Stats(0).L1.Overall().Total != 0 || s.Stats(1).L1.Overall().Total != 0 {
		t.Error("per-CPU stats not reset")
	}
	if s.Bus().Stats().Total() != 0 || s.Memory().Stats().BlockReads != 0 {
		t.Error("bus/memory stats not reset")
	}
	// Cache contents survive: the warmed block still hits.
	res, err := s.Apply(trace.Ref{CPU: 0, Kind: trace.Read, PID: 1, Addr: 0x000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.L1Hit {
		t.Error("reset evicted cache contents")
	}
	if s.Stats(0).L1.Overall().Total != 1 {
		t.Error("post-reset accounting wrong")
	}
}
