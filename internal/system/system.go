// Package system assembles a shared-bus multiprocessor (Figure 1 of the
// paper): N per-processor two-level hierarchies snooping one bus over one
// memory, all sharing an MMU. It drives traces through the machine,
// optionally checking a sequential-consistency oracle and the hierarchies'
// structural invariants after every reference.
package system

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/addr"
	"repro/internal/audit"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/memory"
	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Organization selects the cache organization under evaluation.
type Organization int

// Organizations the paper compares, plus the reverse-lookup-table synonym
// variant.
const (
	VR            Organization = iota // virtual L1 / real L2 with inclusion
	RRInclusion                       // real L1 / real L2 with inclusion
	RRNoInclusion                     // real L1 / real L2, independent levels
	VRRLT                             // VR with the reverse-lookup synonym table
)

// String returns the organization's table label.
func (o Organization) String() string {
	switch o {
	case VR:
		return "VR"
	case RRInclusion:
		return "RR(incl)"
	case RRNoInclusion:
		return "RR(no incl)"
	case VRRLT:
		return "VR(rlt)"
	default:
		return fmt.Sprintf("Organization(%d)", int(o))
	}
}

// Config describes a machine.
type Config struct {
	CPUs         int
	Organization Organization
	PageSize     uint64 // default 4096

	L1    cache.Geometry
	Split bool
	L2    cache.Geometry

	TLBEntries      int
	TLBAssoc        int
	WriteBufDepth   int
	WriteBufLatency uint64
	EagerCtxFlush   bool

	// L1Policy and L2Policy select each level's replacement policy; the
	// zero value is LRU (the paper's). PolicySeed seeds Random replacement
	// deterministically per cache.
	L1Policy   cache.Policy
	L2Policy   cache.Policy
	PolicySeed int64

	// PIDTagged enables the Section 2 PID-tag alternative to flushing the
	// V-cache on context switches (V-R only).
	PIDTagged bool
	// Protocol selects the coherence protocol (default write-invalidate).
	Protocol core.Protocol
	// NaiveL2Replacement disables the relaxed-inclusion victim preference.
	NaiveL2Replacement bool
	// L1WriteThrough selects the Section 2 write-through, no-write-allocate
	// first-level policy instead of write-back.
	L1WriteThrough bool
	// VictimEntries inserts a victim cache of that many blocks between the
	// levels of every CPU (any organization; 0 disables).
	VictimEntries int
	// RLTEntries sizes the VRRLT organization's reverse-lookup synonym
	// table; 0 defaults to half the first level's line count. RLTAssoc is
	// the table's associativity (0: rlt.DefaultAssoc). Ignored by the other
	// organizations.
	RLTEntries int
	RLTAssoc   int
	// Tracer, when set, observes every hierarchy's Table 4 interface
	// signals (Signal.CPU attributes them).
	Tracer core.Tracer
	// Probe, when set, receives typed events from every hierarchy, the
	// bus, and any DMA agents (see internal/probe). Nil disables all
	// emission.
	Probe *probe.Probe
	// ProbeEphemeral marks the attached Probe as observational-only for
	// checkpointing purposes. Export/RestoreState normally refuse a
	// machine with a probe because the probe's internal cursors (ring
	// positions, window boundaries, the reference counter) are not
	// serialized; with ProbeEphemeral set the caller accepts that a
	// restored run's observability output restarts from zero. Simulated
	// state — and therefore the statistics report — is unaffected either
	// way. The job server uses this to stream progress windows from
	// checkpointable jobs whose reports exclude the probe section.
	ProbeEphemeral bool
	// Cycles, when set, measures per-CPU access times: the system charges
	// each reference's service time (t1/t2/tm) and context-switch cost,
	// the hierarchies charge TLB penalties, write-back occupancy and
	// stalls, and the bus arbitrates timed transactions through it. Nil
	// disables all cycle accounting.
	Cycles *cycles.Engine

	// Audit, when set, re-verifies the machine's structural invariants
	// online: the auditor snapshots every hierarchy and checks inclusion,
	// copy uniqueness, pointer reciprocity, buffer-bit bijection, dirty-bit
	// consistency and cross-CPU coherence every N references (see
	// internal/audit). Nil disables auditing; the hot path then pays only a
	// nil check.
	Audit *audit.Auditor

	// CheckOracle verifies on every read that the newest write to the
	// physical block is observed. CheckInvariants additionally validates
	// every hierarchy's structural invariants after every reference (slow;
	// for tests).
	CheckOracle     bool
	CheckInvariants bool
}

func (c *Config) applyDefaults() {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.CPUs == 0 {
		c.CPUs = 1
	}
}

// System is an assembled machine.
type System struct {
	cfg    Config
	mmu    *vm.MMU
	bus    *bus.Bus
	mem    *memory.Memory
	tokens *core.TokenSource
	cpus   []core.Hierarchy
	cyc    []*cycles.CPU  // per-CPU timing handles; nil entries when disabled
	aud    *audit.Auditor // nil when auditing is disabled
	oracle map[addr.PAddr]uint64
	refs   uint64
}

// New builds a machine from cfg.
func New(cfg Config) (*System, error) {
	cfg.applyDefaults()
	if cfg.CPUs < 1 || cfg.CPUs > 255 {
		return nil, fmt.Errorf("system: %d CPUs out of range", cfg.CPUs)
	}
	// Validate geometries up front: the memory and per-CPU constructors
	// below assume a legal L1 block size.
	if err := cfg.L1.Validate(); err != nil {
		return nil, fmt.Errorf("system: L1: %w", err)
	}
	if err := cfg.L2.Validate(); err != nil {
		return nil, fmt.Errorf("system: L2: %w", err)
	}
	// The reverse-lookup table exists only under VRRLT; a size on any other
	// organization would be silently ignored, so reject it instead (the CLI
	// and job surfaces enforce the same rule).
	if (cfg.RLTEntries != 0 || cfg.RLTAssoc != 0) && cfg.Organization != VRRLT {
		return nil, fmt.Errorf("system: RLTEntries/RLTAssoc require the VRRLT organization")
	}
	mmu, err := vm.New(cfg.PageSize)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:    cfg,
		mmu:    mmu,
		bus:    bus.New(),
		mem:    memory.MustNew(cfg.L1.Block),
		tokens: &core.TokenSource{},
		aud:    cfg.Audit,
	}
	s.bus.SetProbe(cfg.Probe)
	if cfg.Cycles != nil {
		s.bus.SetTimer(cfg.Cycles)
	}
	if cfg.CheckOracle {
		s.oracle = make(map[addr.PAddr]uint64)
	}
	for i := 0; i < cfg.CPUs; i++ {
		opts := core.Options{
			MMU:             s.mmu,
			Bus:             s.bus,
			Mem:             s.mem,
			Tokens:          s.tokens,
			L1:              cfg.L1,
			Split:           cfg.Split,
			L2:              cfg.L2,
			TLBEntries:      cfg.TLBEntries,
			TLBAssoc:        cfg.TLBAssoc,
			WriteBufDepth:   cfg.WriteBufDepth,
			WriteBufLatency: cfg.WriteBufLatency,
			EagerCtxFlush:   cfg.EagerCtxFlush,
			L1Policy:        cfg.L1Policy,
			L2Policy:        cfg.L2Policy,
			PolicySeed:      cfg.PolicySeed + int64(i)*1000,
			PIDTagged:       cfg.PIDTagged,
			Protocol:        cfg.Protocol,

			NaiveL2Replacement: cfg.NaiveL2Replacement,
			L1WriteThrough:     cfg.L1WriteThrough,
			VictimEntries:      cfg.VictimEntries,
			Tracer:             cfg.Tracer,
			Probe:              cfg.Probe,
			Cycles:             cfg.Cycles,
		}
		var h core.Hierarchy
		switch cfg.Organization {
		case VR:
			h, err = core.NewVR(opts)
		case RRInclusion:
			h, err = core.NewRR(opts)
		case RRNoInclusion:
			h, err = core.NewRRNoInclusion(opts)
		case VRRLT:
			opts.RLTEntries = cfg.RLTEntries
			opts.RLTAssoc = cfg.RLTAssoc
			if opts.RLTEntries == 0 {
				// Default: the largest power of two no bigger than half the
				// first level's line count — small enough that capacity
				// evictions actually occur (the trade-off stays visible),
				// and a legal set count for any associativity.
				lines := int(cfg.L1.Size / cfg.L1.Block)
				opts.RLTEntries = 1
				for opts.RLTEntries*2 <= lines/2 {
					opts.RLTEntries *= 2
				}
			}
			h, err = core.NewVR(opts)
		default:
			err = fmt.Errorf("system: unknown organization %d", cfg.Organization)
		}
		if err != nil {
			return nil, err
		}
		s.cpus = append(s.cpus, h)
		// Hierarchies attach to the bus in CPU order, so CPU i's snooper
		// (and timing agent) id is i.
		s.cyc = append(s.cyc, cfg.Cycles.CPU(i))
	}
	return s, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// MMU exposes the machine's MMU so workloads can set up shared mappings.
func (s *System) MMU() *vm.MMU { return s.mmu }

// Memory exposes the machine's memory.
func (s *System) Memory() *memory.Memory { return s.mem }

// Bus exposes the machine's bus.
func (s *System) Bus() *bus.Bus { return s.bus }

// CPUs returns the number of processors.
func (s *System) CPUs() int { return len(s.cpus) }

// CPU returns processor i's hierarchy.
func (s *System) CPU(i int) core.Hierarchy { return s.cpus[i] }

// Stats returns processor i's counters.
func (s *System) Stats(i int) *core.Stats { return s.cpus[i].Stats() }

// Refs returns the number of memory references applied so far.
func (s *System) Refs() uint64 { return s.refs }

// Probe returns the machine's event probe (nil when observability is
// disabled).
func (s *System) Probe() *probe.Probe { return s.cfg.Probe }

// Cycles returns the machine's cycle engine (nil when timing is disabled).
func (s *System) Cycles() *cycles.Engine { return s.cfg.Cycles }

// Config returns the machine's (defaults-applied) configuration, so
// attached tooling — the telemetry layer needs the L2 geometry and page
// size — can describe the machine it is observing.
func (s *System) Config() Config { return s.cfg }

// Apply runs one trace record through the machine.
func (s *System) Apply(ref trace.Ref) (core.AccessResult, error) {
	if int(ref.CPU) >= len(s.cpus) {
		return core.AccessResult{}, fmt.Errorf("system: record for CPU %d on a %d-CPU machine",
			ref.CPU, len(s.cpus))
	}
	if s.cfg.Probe != nil && ref.Kind != trace.CtxSwitch {
		s.cfg.Probe.AdvanceRef()
	}
	res := s.cpus[ref.CPU].Access(ref)
	if res.CtxSwitch {
		s.cyc[ref.CPU].CtxSwitch()
	} else {
		s.refs++
		if res.VictimHit {
			s.cyc[ref.CPU].EndAccessVictim(res.Kind)
		} else {
			s.cyc[ref.CPU].EndAccess(res.Kind, res.Level())
		}
	}
	if s.oracle != nil && !res.CtxSwitch {
		if ref.Kind == trace.Write {
			s.oracle[res.PA] = res.Token
		} else if want := s.oracle[res.PA]; res.Token != want {
			return res, fmt.Errorf("system: oracle violation: cpu %d %v %#x (pa %#x) read token %d, want %d",
				ref.CPU, ref.Kind, uint64(ref.Addr), uint64(res.PA), res.Token, want)
		}
	}
	if s.cfg.CheckInvariants {
		for i, h := range s.cpus {
			if err := h.Check(); err != nil {
				return res, fmt.Errorf("system: cpu %d invariants after %v: %w", i, ref, err)
			}
		}
	}
	if s.aud != nil {
		s.aud.Tick(s)
	}
	return res, nil
}

// Auditor returns the machine's online auditor (nil when auditing is
// disabled).
func (s *System) Auditor() *audit.Auditor { return s.aud }

// AuditSnapshot implements audit.Source: a point-in-time copy of every
// hierarchy's structural state, in CPU order.
func (s *System) AuditSnapshot() *audit.Snapshot {
	snap := &audit.Snapshot{
		Organization: s.cfg.Organization.String(),
		Protocol:     s.cfg.Protocol.String(),
		Refs:         s.refs,
	}
	for _, h := range s.cpus {
		snap.CPUs = append(snap.CPUs, h.Snapshot())
	}
	return snap
}

// ApplyBatch runs a slice of trace records through the machine. It is the
// batched entry point the sweep engine uses: one call per batch instead of
// one interface call per reference.
func (s *System) ApplyBatch(refs []trace.Ref) error {
	for _, ref := range refs {
		if _, err := s.Apply(ref); err != nil {
			return err
		}
	}
	return nil
}

// runBatchSize is the slice length Run reads at a time; large enough to
// amortize the Reader interface call, small enough to stay cache-resident.
const runBatchSize = 4096

// Run drives every record from r through the machine and drains the write
// buffers at the end. Reads go through the batched path (trace.FillBatch),
// so readers implementing trace.BatchReader are consumed a slice at a time.
func (s *System) Run(r trace.Reader) error {
	buf := make([]trace.Ref, runBatchSize)
	for {
		n, err := trace.FillBatch(r, buf)
		if aerr := s.ApplyBatch(buf[:n]); aerr != nil {
			return aerr
		}
		if errors.Is(err, io.EOF) {
			s.Drain()
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// Drain empties every write buffer into the second level.
func (s *System) Drain() {
	for _, h := range s.cpus {
		h.Drain()
	}
}

// ResetStats zeroes every statistic — per-CPU, bus and memory — without
// touching cache contents, so measurements can exclude warm-up. The
// reference count restarts too.
func (s *System) ResetStats() {
	for _, h := range s.cpus {
		h.Stats().Reset()
	}
	s.bus.ResetStats()
	s.mem.ResetStats()
	if s.cfg.Cycles != nil {
		s.cfg.Cycles.Reset()
	}
	s.refs = 0
}

// AggregateStats sums hit-ratio statistics across CPUs, the form the
// paper's Tables 6-10 report.
type AggregateStats struct {
	L1, L2 struct {
		Overall   float64
		DataRead  float64
		DataWrite float64
		Instr     float64
	}
	H1, H2 float64 // aliases of the overall ratios, the paper's h1/h2
}

// Aggregate computes machine-wide hit ratios.
func (s *System) Aggregate() AggregateStats {
	var l1, l2 stats.LevelStats
	for _, h := range s.cpus {
		st := h.Stats()
		l1.Add(&st.L1)
		l2.Add(&st.L2)
	}
	var a AggregateStats
	a.L1.Overall = l1.Overall().Value()
	a.L1.DataRead = l1.Kind(stats.KindRead).Value()
	a.L1.DataWrite = l1.Kind(stats.KindWrite).Value()
	a.L1.Instr = l1.Kind(stats.KindIFetch).Value()
	a.L2.Overall = l2.Overall().Value()
	a.L2.DataRead = l2.Kind(stats.KindRead).Value()
	a.L2.DataWrite = l2.Kind(stats.KindWrite).Value()
	a.L2.Instr = l2.Kind(stats.KindIFetch).Value()
	a.H1, a.H2 = a.L1.Overall, a.L2.Overall
	return a
}

// CoherenceMessages returns, per CPU, the number of coherence messages that
// reached the first-level cache — the quantity of Tables 11-13.
func (s *System) CoherenceMessages() []uint64 {
	out := make([]uint64, len(s.cpus))
	for i, h := range s.cpus {
		out[i] = h.Stats().Coherence.Total()
	}
	return out
}
