package system

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/addr"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/memory"
	"repro/internal/trace"
	"repro/internal/vm"
)

// OracleEntry is one sequential-consistency oracle binding's serializable
// form.
type OracleEntry struct {
	PA    addr.PAddr
	Token uint64
}

// MachineState is the whole machine's serializable state: everything a
// restored system needs to continue a run byte-for-byte identically —
// caches, TLBs, buffers, page tables, memory tokens, the token source, all
// statistics, cycle clocks and the consistency oracle.
type MachineState struct {
	Refs   uint64
	Tokens uint64

	MMU    vm.State
	Memory memory.State
	Bus    bus.Stats
	Cycles *cycles.State // nil when timing is disabled
	Oracle []OracleEntry // nil when the oracle is disabled

	CPUs []*core.HierarchyState
}

// ExportState captures the machine. It refuses machines with an attached
// probe or a periodic auditor: both carry internal cursors (ring positions,
// countdowns, window boundaries) that are not serialized, so a restored run
// would diverge in its observability output. Final-only auditing
// (audit.New(0)) is fine — it holds no mid-run state, and a probe marked
// Config.ProbeEphemeral is accepted because its caller has opted into the
// observability reset.
func (s *System) ExportState() (*MachineState, error) {
	if s.cfg.Probe != nil && !s.cfg.ProbeEphemeral {
		return nil, fmt.Errorf("system: cannot checkpoint a machine with an attached probe")
	}
	if s.aud != nil && s.aud.Every() != 0 {
		return nil, fmt.Errorf("system: cannot checkpoint a machine with a periodic auditor (period %d)", s.aud.Every())
	}
	st := &MachineState{
		Refs:   s.refs,
		Tokens: s.tokens.Last(),
		MMU:    s.mmu.ExportState(),
		Memory: s.mem.ExportState(),
		Bus:    s.bus.Stats(),
	}
	if s.cfg.Cycles != nil {
		cs := s.cfg.Cycles.ExportState()
		st.Cycles = &cs
	}
	if s.oracle != nil {
		st.Oracle = make([]OracleEntry, 0, len(s.oracle))
		for pa, tok := range s.oracle {
			st.Oracle = append(st.Oracle, OracleEntry{PA: pa, Token: tok})
		}
		sort.Slice(st.Oracle, func(i, j int) bool { return st.Oracle[i].PA < st.Oracle[j].PA })
	}
	for _, h := range s.cpus {
		st.CPUs = append(st.CPUs, h.ExportState())
	}
	return st, nil
}

// RestoreState replaces the machine's state with st. The receiving system
// must have been built from the same Config as the exporter; mismatches the
// component validators can detect are errors, the rest silently corrupt the
// simulation (callers should validate a configuration signature first, as
// internal/checkpoint does).
func (s *System) RestoreState(st *MachineState) error {
	if s.cfg.Probe != nil && !s.cfg.ProbeEphemeral {
		return fmt.Errorf("system: cannot restore into a machine with an attached probe")
	}
	if s.aud != nil && s.aud.Every() != 0 {
		return fmt.Errorf("system: cannot restore into a machine with a periodic auditor")
	}
	if len(st.CPUs) != len(s.cpus) {
		return fmt.Errorf("system: state has %d CPUs, machine has %d", len(st.CPUs), len(s.cpus))
	}
	if (st.Cycles != nil) != (s.cfg.Cycles != nil) {
		return fmt.Errorf("system: state and machine disagree about cycle timing")
	}
	if err := s.mmu.RestoreState(st.MMU); err != nil {
		return err
	}
	if err := s.mem.RestoreState(st.Memory); err != nil {
		return err
	}
	if st.Cycles != nil {
		if err := s.cfg.Cycles.RestoreState(*st.Cycles); err != nil {
			return err
		}
	}
	for i, h := range s.cpus {
		if err := h.RestoreState(st.CPUs[i]); err != nil {
			return fmt.Errorf("system: cpu %d: %w", i, err)
		}
	}
	s.bus.RestoreStats(st.Bus)
	s.tokens.RestoreLast(st.Tokens)
	s.refs = st.Refs
	if s.oracle != nil {
		oracle := make(map[addr.PAddr]uint64, len(st.Oracle))
		for _, e := range st.Oracle {
			oracle[e.PA] = e.Token
		}
		s.oracle = oracle
	}
	return nil
}

// MergeStatsFrom folds o's statistics — per-CPU counters, bus and memory
// traffic, cycle clocks and the reference count — into s. It is the shard
// stitcher's reduction: each shard simulates one window of the trace, and
// merging their counters reproduces the sequential run's totals (exactly
// for pure counters, approximately for state-dependent ones like hit
// ratios, which is the sharded mode's documented tolerance). Machine state
// (caches, memory tokens) is not merged; only measurements are.
func (s *System) MergeStatsFrom(o *System) error {
	if len(o.cpus) != len(s.cpus) {
		return fmt.Errorf("system: merging a %d-CPU machine into a %d-CPU machine", len(o.cpus), len(s.cpus))
	}
	if (o.cfg.Cycles != nil) != (s.cfg.Cycles != nil) {
		return fmt.Errorf("system: merging machines that disagree about cycle timing")
	}
	for i, h := range s.cpus {
		if err := h.Stats().Merge(o.cpus[i].Stats()); err != nil {
			return fmt.Errorf("system: cpu %d: %w", i, err)
		}
	}
	s.bus.AddStats(o.bus.Stats())
	s.mem.AddStats(o.mem.Stats())
	if s.cfg.Cycles != nil {
		s.cfg.Cycles.Merge(o.cfg.Cycles)
	}
	s.refs += o.refs
	return nil
}

// RunRecords drives exactly n records (memory references and context
// switches both count) from r through the machine, without draining. It
// returns the number of records actually applied, which is short only when
// the trace ends first.
func (s *System) RunRecords(r trace.Reader, n uint64) (uint64, error) {
	var done uint64
	buf := make([]trace.Ref, runBatchSize)
	for done < n {
		want := n - done
		if want > uint64(len(buf)) {
			want = uint64(len(buf))
		}
		got, err := trace.FillBatch(r, buf[:want])
		if aerr := s.ApplyBatch(buf[:got]); aerr != nil {
			return done, aerr
		}
		done += uint64(got)
		if errors.Is(err, io.EOF) {
			return done, nil
		}
		if err != nil {
			return done, err
		}
	}
	return done, nil
}

// RunRefs drives records from r until n memory references have been applied
// (context switches are applied but not counted), without draining. It
// returns the number counted, short only when the trace ends first.
func (s *System) RunRefs(r trace.Reader, n uint64) (uint64, error) {
	var done uint64
	for done < n {
		ref, err := r.Next()
		if errors.Is(err, io.EOF) {
			return done, nil
		}
		if err != nil {
			return done, err
		}
		if _, err := s.Apply(ref); err != nil {
			return done, err
		}
		if ref.Kind != trace.CtxSwitch {
			done++
		}
	}
	return done, nil
}
