package rcache

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/cache"
)

// small returns a 2-set, 2-way R-cache with 32B lines and 16B subentries.
func small() *RCache {
	return MustNew(cache.Geometry{Size: 128, Block: 32, Assoc: 2}, 16)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(cache.Geometry{Size: 100, Block: 32, Assoc: 1}, 16); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := New(cache.Geometry{Size: 128, Block: 32, Assoc: 2}, 64); err == nil {
		t.Error("L1 block larger than L2 block accepted")
	}
	if _, err := New(cache.Geometry{Size: 128, Block: 32, Assoc: 2}, 12); err == nil {
		t.Error("non-power-of-two L1 block accepted")
	}
}

func TestSubGeometry(t *testing.T) {
	r := small()
	if r.SubsPerLine() != 2 || r.SubSize() != 16 {
		t.Fatalf("subs %d size %d", r.SubsPerLine(), r.SubSize())
	}
	if r.SubIndex(0x100) != 0 || r.SubIndex(0x110) != 1 || r.SubIndex(0x11F) != 1 {
		t.Error("SubIndex wrong")
	}
	r2 := MustNew(cache.Geometry{Size: 256, Block: 64, Assoc: 1}, 16)
	if r2.SubsPerLine() != 4 {
		t.Errorf("64/16 line should have 4 subs, got %d", r2.SubsPerLine())
	}
}

func TestEqualBlockSizes(t *testing.T) {
	r := MustNew(cache.Geometry{Size: 128, Block: 16, Assoc: 2}, 16)
	if r.SubsPerLine() != 1 {
		t.Errorf("B2 == B1 should mean 1 sub, got %d", r.SubsPerLine())
	}
}

func TestInstallLookup(t *testing.T) {
	r := small()
	if _, _, ok := r.Lookup(0x100); ok {
		t.Fatal("cold lookup hit")
	}
	vic := r.PickVictim(0x100)
	if vic.Present || !vic.Preferred {
		t.Fatalf("victim = %+v", vic)
	}
	l := r.Install(vic.Set, vic.Way, 0x100, Private)
	if l.State != Private || len(l.Subs) != 2 {
		t.Fatalf("installed line: %+v", l)
	}
	set, way, ok := r.Lookup(0x11F) // same 32B line
	if !ok || set != vic.Set || way != vic.Way {
		t.Fatal("lookup after install missed")
	}
	if _, _, ok := r.Lookup(0x120); ok {
		t.Error("next line hit")
	}
}

func TestBlockAndSubAddr(t *testing.T) {
	r := small()
	vic := r.PickVictim(0x234)
	r.Install(vic.Set, vic.Way, 0x234, Shared)
	if got := r.BlockAddr(vic.Set, vic.Way); got != 0x220 {
		t.Errorf("BlockAddr = %#x, want 0x220", uint64(got))
	}
	if got := r.SubAddr(vic.Set, vic.Way, 1); got != 0x230 {
		t.Errorf("SubAddr(1) = %#x, want 0x230", uint64(got))
	}
}

func TestInstallResetsSubs(t *testing.T) {
	r := small()
	vic := r.PickVictim(0x100)
	l := r.Install(vic.Set, vic.Way, 0x100, Private)
	l.Subs[0].Inclusion = true
	l.Subs[0].VDirty = true
	l.Subs[1].Token = 99
	l2 := r.Install(vic.Set, vic.Way, 0x300, Shared)
	for i := range l2.Subs {
		if l2.Subs[i] != (SubEntry{}) {
			t.Errorf("sub %d not reset: %+v", i, l2.Subs[i])
		}
	}
	if l2.State != Shared {
		t.Error("state not set")
	}
}

func TestVictimPrefersChildless(t *testing.T) {
	r := small()
	// Fill set of 0x100 (set index of block 8 in 2 sets: 8 % 2 = 0).
	v1 := r.PickVictim(0x100)
	r.Install(v1.Set, v1.Way, 0x100, Private)
	r.Sub(v1.Set, v1.Way, 0).Inclusion = true
	v2 := r.PickVictim(0x180) // same set (block 12 % 2 = 0)
	if v2.Set != v1.Set {
		t.Fatalf("expected same set: %d vs %d", v2.Set, v1.Set)
	}
	r.Install(v2.Set, v2.Way, 0x180, Private)
	// Set full: one line has a child, the other does not.
	vic := r.PickVictim(0x200)
	if !vic.Preferred {
		t.Fatal("childless line exists but not preferred")
	}
	if vic.Way != v2.Way {
		t.Errorf("victim way %d, want childless way %d", vic.Way, v2.Way)
	}
}

func TestVictimBufferBitBlocksPreference(t *testing.T) {
	r := small()
	v1 := r.PickVictim(0x100)
	r.Install(v1.Set, v1.Way, 0x100, Private)
	r.Sub(v1.Set, v1.Way, 1).Buffer = true
	v2 := r.PickVictim(0x180)
	r.Install(v2.Set, v2.Way, 0x180, Private)
	r.Sub(v2.Set, v2.Way, 0).Inclusion = true
	vic := r.PickVictim(0x200)
	if vic.Preferred {
		t.Error("all lines have children; preference impossible")
	}
}

func TestHasChild(t *testing.T) {
	var s SubEntry
	if s.HasChild() {
		t.Error("empty subentry has child")
	}
	s.Inclusion = true
	if !s.HasChild() {
		t.Error("inclusion not seen")
	}
	s = SubEntry{Buffer: true}
	if !s.HasChild() {
		t.Error("buffer not seen")
	}
}

func TestInvalidateClearsSubs(t *testing.T) {
	r := small()
	vic := r.PickVictim(0x100)
	r.Install(vic.Set, vic.Way, 0x100, Private)
	r.Sub(vic.Set, vic.Way, 0).Inclusion = true
	r.Sub(vic.Set, vic.Way, 0).VPtr = VPtr{0, 3, 1}
	r.Invalidate(vic.Set, vic.Way)
	if r.Present(vic.Set, vic.Way) {
		t.Fatal("line present after invalidate")
	}
	if _, _, ok := r.Lookup(0x100); ok {
		t.Fatal("lookup hit after invalidate")
	}
	// Reinstall: subs must be clean even without an intervening Install reset.
	l := r.Install(vic.Set, vic.Way, 0x500, Shared)
	if l.Subs[0].Inclusion || l.Subs[0].VPtr != (VPtr{}) {
		t.Error("stale sub state leaked")
	}
}

func TestCountAndForEach(t *testing.T) {
	r := small()
	v1 := r.PickVictim(0x000)
	r.Install(v1.Set, v1.Way, 0x000, Private)
	v2 := r.PickVictim(0x020)
	r.Install(v2.Set, v2.Way, 0x020, Shared)
	if r.CountValid() != 2 {
		t.Fatalf("CountValid = %d", r.CountValid())
	}
	states := map[State]int{}
	r.ForEachValid(func(_, _ int, l *Line) { states[l.State]++ })
	if states[Private] != 1 || states[Shared] != 1 {
		t.Errorf("states = %v", states)
	}
}

func TestStateString(t *testing.T) {
	if Shared.String() != "shared" || Private.String() != "private" {
		t.Error("state names wrong")
	}
	if State(9).String() == "" {
		t.Error("unknown state should render")
	}
}

func TestVPtrString(t *testing.T) {
	if got := (VPtr{1, 2, 3}).String(); got != "V1[2.3]" {
		t.Errorf("VPtr.String = %q", got)
	}
}

func TestLocateConsistentWithSubAddr(t *testing.T) {
	r := small()
	for _, pa := range []addr.PAddr{0x0, 0x10, 0x20, 0x100, 0x3F0} {
		vic := r.PickVictim(pa)
		r.Install(vic.Set, vic.Way, pa, Private)
		sub := r.SubIndex(pa)
		got := r.SubAddr(vic.Set, vic.Way, sub)
		want := pa &^ 0xF
		if got != want {
			t.Errorf("SubAddr(%#x) = %#x, want %#x", uint64(pa), uint64(got), uint64(want))
		}
	}
}
