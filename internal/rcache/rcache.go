// Package rcache implements the paper's second-level physically-addressed
// cache. Beyond the physical tag, each line carries the control state of
// Figure 3: a coherence state shared with the other R-caches on the bus,
// and one subentry per first-level block (R-cache blocks may be a multiple
// of V-cache blocks). A subentry holds the inclusion bit, the buffer bit
// (copy in the V-cache's write buffer), the V-dirty and R-dirty bits, and
// the v-pointer locating the child copy in the V-cache — the reverse
// translation information that lets the R-cache resolve synonyms and shield
// the V-cache from irrelevant coherence traffic.
//
// Victim selection implements the paper's relaxed inclusion rule: prefer a
// line with every inclusion and buffer bit clear; when none exists, evict
// anyway and let the controller invalidate the V-cache children (an
// "inclusion invalidation", which the paper shows is rare).
package rcache

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
)

// State is the bus-coherence state of an R-cache line. Invalid lines are
// simply absent from the tag store.
type State int

// Coherence states of the paper's invalidation protocol.
const (
	Shared  State = iota // other hierarchies may hold clean copies
	Private              // no other hierarchy holds a copy; writes need no bus traffic
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Shared:
		return "shared"
	case Private:
		return "private"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// VPtr is the v-pointer: the V-cache location of a subentry's child copy.
// Cache selects the first-level cache in a split organization (0 = unified
// or data, 1 = instruction).
type VPtr struct {
	Cache, Set, Way int
}

// String renders the pointer for diagnostics.
func (p VPtr) String() string { return fmt.Sprintf("V%d[%d.%d]", p.Cache, p.Set, p.Way) }

// SubEntry is the per-first-level-block control state within an R-cache
// line.
type SubEntry struct {
	Inclusion bool   // a copy is resident in the V-cache (live or swapped)
	Buffer    bool   // a modified copy sits in the V-cache's write buffer
	VDirty    bool   // the first-level copy (or buffered copy) is modified
	RDirty    bool   // this cache's copy is modified relative to memory
	VPtr      VPtr   // child location; meaningful when Inclusion is set
	Token     uint64 // data oracle token of this cache's copy
}

// HasChild reports whether the subentry tracks first-level data (resident
// or buffered).
func (s *SubEntry) HasChild() bool { return s.Inclusion || s.Buffer }

// Line is the R-cache line payload.
type Line struct {
	State State
	Subs  []SubEntry
}

// RCache is the physically-indexed, physically-tagged second-level cache.
type RCache struct {
	tags    *cache.Cache[Line]
	geom    cache.Geometry
	subSize uint64 // first-level block size
	subs    int    // subentries per line
	naive   bool   // ignore children when picking victims (ablation)

	subShift uint   // log2(subSize)
	subMask  uint64 // subs - 1
	// childless is the relaxed-inclusion victim preference, built once at
	// construction so PickVictim allocates no per-call closure.
	childless func(set, way int) bool
	// slab backs lazily attached Subs slices in large chunks: one
	// allocation covers slabLines lines, so filling a cold cache costs a
	// handful of allocations instead of one per line — and the garbage
	// collector scans a few large objects instead of hundreds of
	// thousands of small ones (measured ~20% of sweep time at 18
	// configurations).
	slab []SubEntry
}

// slabLines is the number of lines' worth of subentries per slab chunk.
const slabLines = 256

// newSubs hands out one line's subentry slice from the slab.
func (r *RCache) newSubs() []SubEntry {
	if len(r.slab) < r.subs {
		r.slab = make([]SubEntry, r.subs*slabLines)
	}
	s := r.slab[:r.subs:r.subs]
	r.slab = r.slab[r.subs:]
	return s
}

// SetNaiveReplacement disables the relaxed-inclusion victim preference so
// replacements ignore first-level children — the ablation quantifying how
// much the paper's preference rule saves.
func (r *RCache) SetNaiveReplacement(naive bool) { r.naive = naive }

// New builds an LRU R-cache with geometry g whose lines are divided into
// subentries of l1Block bytes. g.Block must be a multiple of l1Block.
func New(g cache.Geometry, l1Block uint64) (*RCache, error) {
	return NewWithPolicy(g, l1Block, cache.LRU, 0)
}

// NewWithPolicy is New with an explicit replacement policy and (for Random
// replacement) deterministic seed. The relaxed-inclusion victim preference
// applies on top of whichever policy breaks ties among preferred lines.
func NewWithPolicy(g cache.Geometry, l1Block uint64, policy cache.Policy, seed int64) (*RCache, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !addr.IsPow2(l1Block) || l1Block > g.Block {
		return nil, fmt.Errorf("rcache: L1 block %d incompatible with L2 block %d", l1Block, g.Block)
	}
	tags, err := cache.New[Line](g, policy, seed)
	if err != nil {
		return nil, err
	}
	r := &RCache{
		tags:     tags,
		geom:     g,
		subSize:  l1Block,
		subs:     int(g.Block / l1Block),
		subShift: addr.MustLog2(l1Block),
	}
	r.subMask = uint64(r.subs - 1)
	r.childless = r.hasNoChildren
	return r, nil
}

// hasNoChildren reports whether the line at (set, way) tracks no
// first-level data — the paper's preferred replacement victim.
func (r *RCache) hasNoChildren(set, way int) bool {
	l := r.tags.Line(set, way)
	for i := range l.Subs {
		if l.Subs[i].HasChild() {
			return false
		}
	}
	return true
}

// MustNew is New but panics on error.
func MustNew(g cache.Geometry, l1Block uint64) *RCache {
	r, err := New(g, l1Block)
	if err != nil {
		panic(err)
	}
	return r
}

// Geometry returns the cache's shape.
func (r *RCache) Geometry() cache.Geometry { return r.geom }

// SubsPerLine returns the number of subentries per line.
func (r *RCache) SubsPerLine() int { return r.subs }

// SubSize returns the subentry (first-level block) size in bytes.
func (r *RCache) SubSize() uint64 { return r.subSize }

// Locate maps a physical address to its (set, tag).
func (r *RCache) Locate(pa addr.PAddr) (set int, tag uint64) {
	return r.tags.Locate(uint64(pa))
}

// SubIndex returns which subentry of its line pa falls in.
func (r *RCache) SubIndex(pa addr.PAddr) int {
	return int(uint64(pa) >> r.subShift & r.subMask)
}

// Lookup probes for pa's line without touching recency.
func (r *RCache) Lookup(pa addr.PAddr) (set, way int, ok bool) {
	set, tag := r.Locate(pa)
	way, ok = r.tags.Probe(set, tag)
	return set, way, ok
}

// Touch marks (set, way) most recently used.
func (r *RCache) Touch(set, way int) { r.tags.Touch(set, way) }

// Line returns the payload at (set, way); its Subs slice is always
// SubsPerLine long.
func (r *RCache) Line(set, way int) *Line {
	l := r.tags.Line(set, way)
	if l.Subs == nil {
		l.Subs = r.newSubs()
	}
	return l
}

// Sub returns one subentry of a line.
func (r *RCache) Sub(set, way, sub int) *SubEntry { return &r.Line(set, way).Subs[sub] }

// Present reports whether (set, way) holds a valid line.
func (r *RCache) Present(set, way int) bool { return r.tags.ValidAt(set, way) }

// BlockAddr returns the block-aligned physical address of the line at
// (set, way).
func (r *RCache) BlockAddr(set, way int) addr.PAddr {
	return addr.PAddr(r.tags.BlockAddr(set, r.tags.TagAt(set, way)))
}

// SubAddr returns the physical address of subentry sub of the line at
// (set, way).
func (r *RCache) SubAddr(set, way, sub int) addr.PAddr {
	return r.BlockAddr(set, way) + addr.PAddr(uint64(sub)*r.subSize)
}

// Victim describes the line a replacement will evict.
type Victim struct {
	Set, Way  int
	Present   bool
	Preferred bool // victim had no first-level children (the paper's preferred case)
}

// PickVictim chooses the replacement slot for a fill of pa, preferring
// lines with every inclusion and buffer bit clear. When Preferred is false
// the caller must invalidate or drain the victim's children before reusing
// the slot.
func (r *RCache) PickVictim(pa addr.PAddr) Victim {
	set, _ := r.Locate(pa)
	prefer := r.childless
	if r.naive {
		prefer = nil
	}
	way, preferred := r.tags.Victim(set, prefer)
	return Victim{Set: set, Way: way, Present: r.tags.ValidAt(set, way), Preferred: preferred}
}

// Install fills (set, way) with the line for pa and returns the payload
// with all subentries reset.
func (r *RCache) Install(set, way int, pa addr.PAddr, state State) *Line {
	_, tag := r.Locate(pa)
	l := r.tags.Install(set, way, tag)
	if l.Subs == nil {
		l.Subs = r.newSubs()
	}
	for i := range l.Subs {
		l.Subs[i] = SubEntry{}
	}
	l.State = state
	return l
}

// Invalidate removes the line at (set, way). Subentry state is cleared so
// stale pointers cannot leak into a later install.
func (r *RCache) Invalidate(set, way int) {
	l := r.tags.Line(set, way)
	for i := range l.Subs {
		l.Subs[i] = SubEntry{}
	}
	r.tags.Invalidate(set, way)
}

// CountValid returns the number of valid lines.
func (r *RCache) CountValid() int { return r.tags.CountValid() }

// ExportState captures the tag store (checkpoint support). Line payloads
// hold a subentry slice, so each exported line gets its own deep copy — the
// state stays stable if the cache keeps running afterwards.
func (r *RCache) ExportState() cache.State[Line] {
	s := r.tags.ExportState()
	for i := range s.Ways {
		s.Ways[i].Line.Subs = append([]SubEntry(nil), s.Ways[i].Line.Subs...)
	}
	return s
}

// RestoreState replaces the tag store's contents. Each restored line's
// subentry slice must be empty (never-touched payload) or exactly
// SubsPerLine long; the cache takes deep copies.
func (r *RCache) RestoreState(s cache.State[Line]) error {
	for i := range s.Ways {
		if n := len(s.Ways[i].Line.Subs); n != 0 && n != r.subs {
			return fmt.Errorf("rcache: state way %d has %d subentries, want 0 or %d", i, n, r.subs)
		}
	}
	for i := range s.Ways {
		s.Ways[i].Line.Subs = append([]SubEntry(nil), s.Ways[i].Line.Subs...)
	}
	return r.tags.RestoreState(s)
}

// ForEachValid visits every valid line.
func (r *RCache) ForEachValid(fn func(set, way int, l *Line)) {
	r.tags.ForEachValid(func(set, way int) {
		fn(set, way, r.Line(set, way))
	})
}
