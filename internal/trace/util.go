package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
)

// Merge interleaves several per-CPU trace streams round-robin, one record
// at a time, skipping streams that have ended — the standard way to build
// a multiprocessor trace from per-processor captures.
type Merge struct {
	readers []Reader
	next    int
	done    []bool
	left    int
}

// NewMerge creates a merged stream over the given readers.
func NewMerge(readers ...Reader) *Merge {
	return &Merge{
		readers: readers,
		done:    make([]bool, len(readers)),
		left:    len(readers),
	}
}

// Next implements Reader.
func (m *Merge) Next() (Ref, error) {
	for m.left > 0 {
		i := m.next
		m.next = (m.next + 1) % len(m.readers)
		if m.done[i] {
			continue
		}
		ref, err := m.readers[i].Next()
		if err == io.EOF {
			m.done[i] = true
			m.left--
			continue
		}
		if err != nil {
			return Ref{}, err
		}
		return ref, nil
	}
	return Ref{}, io.EOF
}

// FilterCPU passes through only one CPU's records (context switches
// included).
type FilterCPU struct {
	r   Reader
	cpu uint8
}

// NewFilterCPU wraps r, keeping only records for cpu.
func NewFilterCPU(r Reader, cpu uint8) *FilterCPU {
	return &FilterCPU{r: r, cpu: cpu}
}

// Next implements Reader.
func (f *FilterCPU) Next() (Ref, error) {
	for {
		ref, err := f.r.Next()
		if err != nil {
			return Ref{}, err
		}
		if ref.CPU == f.cpu {
			return ref, nil
		}
	}
}

// Counting wraps a Reader and tallies the records that pass through.
type Counting struct {
	r     Reader
	chars Characteristics
}

// NewCounting wraps r.
func NewCounting(r Reader) *Counting { return &Counting{r: r} }

// Next implements Reader.
func (c *Counting) Next() (Ref, error) {
	ref, err := c.r.Next()
	if err == nil {
		c.chars.Observe(ref)
	}
	return ref, err
}

// Characteristics returns the summary of records read so far.
func (c *Counting) Characteristics() Characteristics { return c.chars }

// Skip discards exactly n records (memory references and context switches
// both count) from r, batched to amortize interface dispatch. It returns
// the number discarded, short only when the trace ends first — the shard
// runner uses it to position a regenerated trace at a checkpoint's cursor.
func Skip(r Reader, n uint64) (uint64, error) {
	var done uint64
	buf := make([]Ref, 4096)
	for done < n {
		want := n - done
		if want > uint64(len(buf)) {
			want = uint64(len(buf))
		}
		got, err := FillBatch(r, buf[:want])
		done += uint64(got)
		if err == io.EOF {
			return done, nil
		}
		if err != nil {
			return done, err
		}
	}
	return done, nil
}

// SkipRefs discards records from r until n memory references have passed
// (context switches are discarded but not counted). It returns the number
// of memory references counted, short only when the trace ends first.
func SkipRefs(r Reader, n uint64) (uint64, error) {
	var done uint64
	for done < n {
		ref, err := r.Next()
		if err == io.EOF {
			return done, nil
		}
		if err != nil {
			return done, err
		}
		if ref.Kind != CtxSwitch {
			done++
		}
	}
	return done, nil
}

// gzipMagic is the 2-byte gzip stream header.
var gzipMagic = [2]byte{0x1f, 0x8b}

// OpenBinary wraps a raw byte stream as a binary trace reader,
// transparently decompressing gzip (detected by its magic bytes).
func OpenBinary(r io.Reader) (Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(2)
	if err != nil {
		return nil, fmt.Errorf("trace: cannot sniff stream: %w", err)
	}
	if head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: gzip: %w", err)
		}
		return NewBinaryReader(gz), nil
	}
	return NewBinaryReader(br), nil
}

// GzipWriter is a BinaryWriter over a gzip stream. Close flushes both
// layers.
type GzipWriter struct {
	*BinaryWriter
	gz *gzip.Writer
}

// NewGzipWriter creates a compressed binary trace writer on w.
func NewGzipWriter(w io.Writer) *GzipWriter {
	gz := gzip.NewWriter(w)
	return &GzipWriter{BinaryWriter: NewBinaryWriter(gz), gz: gz}
}

// Close flushes the trace and terminates the gzip stream.
func (g *GzipWriter) Close() error {
	if err := g.Flush(); err != nil {
		return err
	}
	return g.gz.Close()
}
