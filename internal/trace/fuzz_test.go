package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzBinaryRoundTrip feeds arbitrary bytes to the binary decoder. The
// decoder must never panic, must reject streams without the magic header,
// and any stream it fully accepts must survive a decode → encode → decode
// round trip record-for-record. (Byte-identity is not required: the uvarint
// reader tolerates non-minimal encodings the writer never produces.)
func FuzzBinaryRoundTrip(f *testing.F) {
	// A valid two-record stream, an empty-but-valid stream, a bad magic,
	// and truncations mid-record.
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	for _, r := range []Ref{
		{CPU: 1, Kind: Read, PID: 2, Addr: 0x1000},
		{CPU: 15, Kind: CtxSwitch, PID: 0xFFFF, Addr: 0},
	} {
		if err := bw.Write(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("VRT1"))
	f.Add([]byte("VRT2\x11\x02\x20"))
	f.Add([]byte("VRT1\x11\x02"))
	f.Add([]byte("VRT1\x13\x80"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		refs, err := ReadAll(NewBinaryReader(bytes.NewReader(data)))
		if err != nil {
			return // rejected input: any error but a panic is acceptable
		}
		// Every accepted record must be encodable again: the decoder
		// enforces the same CPU and PID ranges the writer does.
		var out bytes.Buffer
		w := NewBinaryWriter(&out)
		for _, r := range refs {
			if r.CPU > 15 {
				t.Fatalf("decoder accepted CPU %d > 15", r.CPU)
			}
			if err := w.Write(r); err != nil {
				t.Fatalf("re-encoding decoded record %v: %v", r, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := ReadAll(NewBinaryReader(bytes.NewReader(out.Bytes())))
		if err != nil {
			t.Fatalf("re-decoding re-encoded stream: %v", err)
		}
		if len(again) != len(refs) {
			t.Fatalf("round trip changed record count: %d != %d", len(again), len(refs))
		}
		for i := range refs {
			if again[i] != refs[i] {
				t.Fatalf("record %d changed in round trip: %v != %v", i, again[i], refs[i])
			}
		}
	})
}

// FuzzTextParse feeds arbitrary text to the line parser and the streaming
// text reader. Neither may panic, and any line the parser accepts must
// render back (Ref.String) to a line that parses to the identical record.
func FuzzTextParse(f *testing.F) {
	f.Add("1 R 2 0x1000")
	f.Add("0 S 3 0x0")
	f.Add("15 W 65535 0xdeadbeef")
	f.Add("# comment\n\n2 I 7 0777\n")
	f.Add("1 R 2")
	f.Add("1 X 2 0x0")
	f.Add("256 R 2 0x0")

	f.Fuzz(func(t *testing.T, s string) {
		// The streaming reader over the whole input must terminate
		// cleanly (EOF) or with an error, never panic or loop.
		tr := NewTextReader(strings.NewReader(s))
		for {
			if _, err := tr.Next(); err != nil {
				break
			}
		}

		ref, err := ParseLine(s)
		if err != nil {
			return
		}
		back, err := ParseLine(ref.String())
		if err != nil {
			t.Fatalf("Ref.String %q does not re-parse: %v", ref.String(), err)
		}
		if back != ref {
			t.Fatalf("text round trip changed record: %v != %v", back, ref)
		}
	})
}
