package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func sampleRefs() []Ref {
	return []Ref{
		{CPU: 0, Kind: IFetch, PID: 1, Addr: 0x1000},
		{CPU: 1, Kind: Read, PID: 2, Addr: 0xDEADBEEF},
		{CPU: 2, Kind: Write, PID: 3, Addr: 0},
		{CPU: 3, Kind: CtxSwitch, PID: 7, Addr: 0},
		{CPU: 15, Kind: Write, PID: 0xFFFF, Addr: 1<<40 - 1},
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{IFetch: "I", Read: "R", Write: "W", CtxSwitch: "S"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
		back, err := ParseKind(want)
		if err != nil || back != k {
			t.Errorf("ParseKind(%q) = %v, %v", want, back, err)
		}
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind should include number")
	}
	if _, err := ParseKind("X"); err == nil {
		t.Error("ParseKind(X) should fail")
	}
}

func TestKindIsMemory(t *testing.T) {
	if !IFetch.IsMemory() || !Read.IsMemory() || !Write.IsMemory() {
		t.Error("memory kinds misclassified")
	}
	if CtxSwitch.IsMemory() {
		t.Error("CtxSwitch should not be memory")
	}
}

func TestSliceReader(t *testing.T) {
	refs := sampleRefs()
	r := NewSliceReader(refs)
	if r.Len() != len(refs) {
		t.Fatalf("Len = %d", r.Len())
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, refs) {
		t.Fatalf("ReadAll mismatch:\n got %v\nwant %v", got, refs)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Error("want EOF after drain")
	}
	r.Reset()
	if ref, err := r.Next(); err != nil || ref != refs[0] {
		t.Error("Reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	r := NewLimit(NewSliceReader(sampleRefs()), 2)
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Limit yielded %d records, want 2", len(got))
	}
}

func TestLimitZero(t *testing.T) {
	r := NewLimit(NewSliceReader(sampleRefs()), 0)
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Error("Limit(0) should be empty")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	refs := sampleRefs()
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, r := range refs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewBinaryReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, refs) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, refs)
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewBinaryReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty trace yielded %d records", len(got))
	}
}

func TestBinaryCPULimit(t *testing.T) {
	w := NewBinaryWriter(io.Discard)
	if err := w.Write(Ref{CPU: 16}); err == nil {
		t.Error("CPU 16 should be rejected by binary format")
	}
}

func TestBinaryBadMagic(t *testing.T) {
	r := NewBinaryReader(strings.NewReader("NOPE...."))
	if _, err := r.Next(); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestBinaryTruncated(t *testing.T) {
	refs := sampleRefs()
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, r := range refs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop mid-record (one byte short): must yield a non-EOF error eventually.
	r := NewBinaryReader(bytes.NewReader(full[:len(full)-1]))
	var err error
	for err == nil {
		_, err = r.Next()
	}
	if errors.Is(err, io.EOF) {
		t.Error("mid-record truncation reported as clean EOF")
	}
}

func TestBinaryBadKind(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{'V', 'R', 'T', '1'})
	buf.WriteByte(0x0F) // kind 15: invalid
	buf.WriteByte(0)
	buf.WriteByte(0)
	if _, err := NewBinaryReader(&buf).Next(); err == nil {
		t.Error("bad kind should fail")
	}
}

func TestBinaryQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		refs := make([]Ref, int(n))
		for i := range refs {
			refs[i] = Ref{
				CPU:  uint8(rng.Intn(16)),
				Kind: Kind(rng.Intn(4)),
				PID:  addr.PID(rng.Intn(1 << 16)),
				Addr: addr.VAddr(rng.Uint64() >> uint(rng.Intn(64))),
			}
		}
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf)
		for _, r := range refs {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := ReadAll(NewBinaryReader(&buf))
		if err != nil {
			return false
		}
		if len(got) != len(refs) {
			return false
		}
		for i := range refs {
			if got[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	refs := sampleRefs()
	var buf bytes.Buffer
	w := NewTextWriter(&buf)
	for _, r := range refs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewTextReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, refs) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, refs)
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n0 R 1 0x10\n   \n# trailing\n1 W 2 32\n"
	got, err := ReadAll(NewTextReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	want := []Ref{
		{CPU: 0, Kind: Read, PID: 1, Addr: 0x10},
		{CPU: 1, Kind: Write, PID: 2, Addr: 32},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTextErrors(t *testing.T) {
	bad := []string{
		"0 R 1",          // too few fields
		"0 R 1 0x10 zz",  // too many fields
		"9999 R 1 0x10",  // cpu overflow
		"0 Q 1 0x10",     // bad kind
		"0 R 99999999 1", // pid overflow
		"0 R 1 nothex",   // bad addr
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q): want error", line)
		}
	}
}

func TestTextErrorIncludesLineNumber(t *testing.T) {
	in := "0 R 1 0x10\nbogus line here\n"
	r := NewTextReader(strings.NewReader(in))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-numbered error, got %v", err)
	}
}

func TestCharacteristics(t *testing.T) {
	refs := []Ref{
		{CPU: 0, Kind: IFetch, PID: 1},
		{CPU: 0, Kind: Read, PID: 1},
		{CPU: 1, Kind: Write, PID: 2},
		{CPU: 1, Kind: CtxSwitch, PID: 3},
		{CPU: 1, Kind: Read, PID: 3},
	}
	c, err := Summarize(NewSliceReader(refs))
	if err != nil {
		t.Fatal(err)
	}
	if c.CPUs != 2 {
		t.Errorf("CPUs = %d, want 2", c.CPUs)
	}
	if c.TotalRefs != 4 {
		t.Errorf("TotalRefs = %d, want 4", c.TotalRefs)
	}
	if c.Instrs != 1 || c.Reads != 2 || c.Writes != 1 {
		t.Errorf("mix = %d/%d/%d", c.Instrs, c.Reads, c.Writes)
	}
	if c.CtxSwitches != 1 {
		t.Errorf("CtxSwitches = %d, want 1", c.CtxSwitches)
	}
	if c.DistinctPIDs != 3 {
		t.Errorf("DistinctPIDs = %d, want 3", c.DistinctPIDs)
	}
}

func TestRefString(t *testing.T) {
	r := Ref{CPU: 2, Kind: Write, PID: 5, Addr: 0x1F}
	if got := r.String(); got != "2 W 5 0x1f" {
		t.Errorf("String = %q", got)
	}
}
