package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestMergeRoundRobin(t *testing.T) {
	a := NewSliceReader([]Ref{
		{CPU: 0, Kind: Read, PID: 1, Addr: 0x0},
		{CPU: 0, Kind: Read, PID: 1, Addr: 0x1},
	})
	b := NewSliceReader([]Ref{
		{CPU: 1, Kind: Write, PID: 2, Addr: 0x2},
		{CPU: 1, Kind: Write, PID: 2, Addr: 0x3},
	})
	got, err := ReadAll(NewMerge(a, b))
	if err != nil {
		t.Fatal(err)
	}
	want := []Ref{
		{CPU: 0, Kind: Read, PID: 1, Addr: 0x0},
		{CPU: 1, Kind: Write, PID: 2, Addr: 0x2},
		{CPU: 0, Kind: Read, PID: 1, Addr: 0x1},
		{CPU: 1, Kind: Write, PID: 2, Addr: 0x3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order:\n got %v\nwant %v", got, want)
	}
}

func TestMergeUnequalLengths(t *testing.T) {
	a := NewSliceReader([]Ref{{CPU: 0, Addr: 1}})
	b := NewSliceReader([]Ref{{CPU: 1, Addr: 2}, {CPU: 1, Addr: 3}, {CPU: 1, Addr: 4}})
	got, err := ReadAll(NewMerge(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("merged %d records, want 4", len(got))
	}
	// The longer stream keeps flowing after the shorter ends.
	if got[3].Addr != 4 {
		t.Errorf("tail record = %v", got[3])
	}
}

func TestMergeEmpty(t *testing.T) {
	if _, err := NewMerge().Next(); !errors.Is(err, io.EOF) {
		t.Error("empty merge should be EOF")
	}
	m := NewMerge(NewSliceReader(nil), NewSliceReader(nil))
	if _, err := m.Next(); !errors.Is(err, io.EOF) {
		t.Error("merge of empty streams should be EOF")
	}
}

func TestFilterCPU(t *testing.T) {
	refs := []Ref{
		{CPU: 0, Addr: 1},
		{CPU: 1, Addr: 2},
		{CPU: 0, Kind: CtxSwitch, PID: 3},
		{CPU: 2, Addr: 4},
		{CPU: 0, Addr: 5},
	}
	got, err := ReadAll(NewFilterCPU(NewSliceReader(refs), 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("filtered %d records, want 3", len(got))
	}
	for _, r := range got {
		if r.CPU != 0 {
			t.Errorf("leaked record %v", r)
		}
	}
}

func TestCounting(t *testing.T) {
	refs := []Ref{
		{CPU: 0, Kind: Read, PID: 1, Addr: 1},
		{CPU: 0, Kind: Write, PID: 1, Addr: 2},
		{CPU: 1, Kind: CtxSwitch, PID: 2},
	}
	c := NewCounting(NewSliceReader(refs))
	if _, err := ReadAll(c); err != nil {
		t.Fatal(err)
	}
	ch := c.Characteristics()
	if ch.TotalRefs != 2 || ch.Writes != 1 || ch.CtxSwitches != 1 {
		t.Errorf("characteristics = %+v", ch)
	}
}

func TestGzipRoundTrip(t *testing.T) {
	refs := sampleRefs()
	var buf bytes.Buffer
	w := NewGzipWriter(&buf)
	for _, r := range refs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The stream really is gzip.
	if buf.Bytes()[0] != 0x1f || buf.Bytes()[1] != 0x8b {
		t.Fatal("output is not gzip")
	}
	r, err := OpenBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, refs) {
		t.Fatalf("gzip round trip mismatch")
	}
}

func TestOpenBinaryPlain(t *testing.T) {
	refs := sampleRefs()
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, r := range refs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, refs) {
		t.Fatal("plain round trip mismatch")
	}
}

func TestOpenBinaryTooShort(t *testing.T) {
	if _, err := OpenBinary(strings.NewReader("x")); err == nil {
		t.Error("1-byte stream accepted")
	}
}

func TestOpenBinaryBadGzip(t *testing.T) {
	if _, err := OpenBinary(bytes.NewReader([]byte{0x1f, 0x8b, 0xff, 0xff})); err == nil {
		t.Error("corrupt gzip accepted")
	}
}
