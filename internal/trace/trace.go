// Package trace defines the memory-reference record driving the simulator
// and streaming readers/writers for it, in both a compact binary format and
// a human-readable text format.
//
// A trace is an interleaved sequence of per-CPU references, in global order,
// the same model as the ATUM multiprocessor traces the paper used. Context
// switches appear in-band as CtxSwitch records naming the incoming process.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/addr"
)

// Kind classifies a trace record.
type Kind uint8

// Record kinds.
const (
	IFetch    Kind = iota // instruction fetch
	Read                  // data read
	Write                 // data write
	CtxSwitch             // context switch: Addr is unused, PID is the incoming process
)

// String returns the kind's single-letter trace mnemonic.
func (k Kind) String() string {
	switch k {
	case IFetch:
		return "I"
	case Read:
		return "R"
	case Write:
		return "W"
	case CtxSwitch:
		return "S"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsMemory reports whether the record is a memory reference (not a context
// switch).
func (k Kind) IsMemory() bool { return k != CtxSwitch }

// ParseKind converts a mnemonic back to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "I":
		return IFetch, nil
	case "R":
		return Read, nil
	case "W":
		return Write, nil
	case "S":
		return CtxSwitch, nil
	default:
		return 0, fmt.Errorf("trace: unknown kind %q", s)
	}
}

// Ref is one trace record.
type Ref struct {
	CPU  uint8      // which processor issued the reference
	Kind Kind       //
	PID  addr.PID   // issuing process; for CtxSwitch, the incoming process
	Addr addr.VAddr // virtual address; meaningless for CtxSwitch
}

// String renders the record in the text-trace line format.
func (r Ref) String() string {
	return fmt.Sprintf("%d %s %d %#x", r.CPU, r.Kind, r.PID, uint64(r.Addr))
}

// Reader is a stream of trace records. Next returns io.EOF after the last
// record.
type Reader interface {
	Next() (Ref, error)
}

// BatchReader is a Reader that can fill a caller-provided slice in one call,
// amortizing the per-record interface dispatch. ReadBatch returns the number
// of records written into dst; it returns io.EOF (with n == 0) only once the
// stream is exhausted. n may be short of len(dst) without the stream being
// done.
type BatchReader interface {
	Reader
	ReadBatch(dst []Ref) (n int, err error)
}

// FillBatch fills dst from r, using ReadBatch when r implements BatchReader
// and falling back to per-record Next calls otherwise. Like ReadBatch it
// returns io.EOF only with n == 0.
func FillBatch(r Reader, dst []Ref) (int, error) {
	if br, ok := r.(BatchReader); ok {
		return br.ReadBatch(dst)
	}
	for n := range dst {
		ref, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) && n > 0 {
				return n, nil
			}
			return n, err
		}
		dst[n] = ref
	}
	return len(dst), nil
}

// FillBatchRefs fills dst from r without reading past the maxRefs-th memory
// reference (context switches do not count). dst is capped at maxRefs
// records, so a reference that exhausts the budget can only be the final
// record and the reader is left positioned exactly where a record-at-a-time
// read would leave it. Returns the records written and the memory
// references among them; like FillBatch it returns io.EOF only with n == 0.
func FillBatchRefs(r Reader, dst []Ref, maxRefs uint64) (n int, refs uint64, err error) {
	if maxRefs < uint64(len(dst)) {
		dst = dst[:maxRefs]
	}
	n, err = FillBatch(r, dst)
	for i := 0; i < n; i++ {
		if dst[i].Kind != CtxSwitch {
			refs++
		}
	}
	return n, refs, err
}

// SliceReader adapts a slice of records to the Reader interface.
type SliceReader struct {
	refs []Ref
	pos  int
}

// NewSliceReader wraps refs. The slice is not copied.
func NewSliceReader(refs []Ref) *SliceReader { return &SliceReader{refs: refs} }

// Next implements Reader.
func (r *SliceReader) Next() (Ref, error) {
	if r.pos >= len(r.refs) {
		return Ref{}, io.EOF
	}
	ref := r.refs[r.pos]
	r.pos++
	return ref, nil
}

// ReadBatch implements BatchReader by copying directly from the backing
// slice.
func (r *SliceReader) ReadBatch(dst []Ref) (int, error) {
	if r.pos >= len(r.refs) {
		return 0, io.EOF
	}
	n := copy(dst, r.refs[r.pos:])
	r.pos += n
	return n, nil
}

// Len returns the total number of records.
func (r *SliceReader) Len() int { return len(r.refs) }

// Reset rewinds the reader to the first record.
func (r *SliceReader) Reset() { r.pos = 0 }

// ReadAll drains a Reader into a slice.
func ReadAll(r Reader) ([]Ref, error) {
	var out []Ref
	for {
		ref, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ref)
	}
}

// Limit wraps a Reader and stops after n records.
type Limit struct {
	r    Reader
	left int
}

// NewLimit returns a Reader that yields at most n records from r.
func NewLimit(r Reader, n int) *Limit { return &Limit{r: r, left: n} }

// Next implements Reader.
func (l *Limit) Next() (Ref, error) {
	if l.left <= 0 {
		return Ref{}, io.EOF
	}
	l.left--
	return l.r.Next()
}

// ReadBatch implements BatchReader, delegating to the wrapped reader's batch
// path when it has one.
func (l *Limit) ReadBatch(dst []Ref) (int, error) {
	if l.left <= 0 {
		return 0, io.EOF
	}
	if l.left < len(dst) {
		dst = dst[:l.left]
	}
	n, err := FillBatch(l.r, dst)
	l.left -= n
	return n, err
}

// binaryMagic begins every binary trace stream.
var binaryMagic = [4]byte{'V', 'R', 'T', '1'}

// BinaryWriter encodes records in the compact binary trace format:
// a 4-byte magic, then per record a fixed header byte (cpu<<4 | kind),
// a uvarint PID and a uvarint address.
type BinaryWriter struct {
	w     *bufio.Writer
	begun bool
	buf   [2 * binary.MaxVarintLen64]byte
}

// NewBinaryWriter creates a writer on w.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriter(w)}
}

// Write appends one record.
func (bw *BinaryWriter) Write(r Ref) error {
	if !bw.begun {
		if _, err := bw.w.Write(binaryMagic[:]); err != nil {
			return err
		}
		bw.begun = true
	}
	if r.CPU > 15 {
		return fmt.Errorf("trace: CPU %d exceeds binary format limit of 15", r.CPU)
	}
	if err := bw.w.WriteByte(byte(r.CPU)<<4 | byte(r.Kind)); err != nil {
		return err
	}
	n := binary.PutUvarint(bw.buf[:], uint64(r.PID))
	n += binary.PutUvarint(bw.buf[n:], uint64(r.Addr))
	_, err := bw.w.Write(bw.buf[:n])
	return err
}

// Flush writes out any buffered data; call it before closing the underlying
// writer. An empty trace still emits the magic header.
func (bw *BinaryWriter) Flush() error {
	if !bw.begun {
		if _, err := bw.w.Write(binaryMagic[:]); err != nil {
			return err
		}
		bw.begun = true
	}
	return bw.w.Flush()
}

// BinaryReader decodes the binary trace format.
type BinaryReader struct {
	r     *bufio.Reader
	begun bool
}

// NewBinaryReader creates a reader on r.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReader(r)}
}

// Next implements Reader.
func (br *BinaryReader) Next() (Ref, error) {
	if !br.begun {
		var magic [4]byte
		if _, err := io.ReadFull(br.r, magic[:]); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				err = fmt.Errorf("trace: truncated magic: %w", err)
			}
			return Ref{}, err
		}
		if magic != binaryMagic {
			return Ref{}, fmt.Errorf("trace: bad magic %q", magic[:])
		}
		br.begun = true
	}
	hdr, err := br.r.ReadByte()
	if err != nil {
		return Ref{}, err // io.EOF at a record boundary is clean EOF
	}
	kind := Kind(hdr & 0x0F)
	if kind > CtxSwitch {
		return Ref{}, fmt.Errorf("trace: bad kind %d in header byte %#x", kind, hdr)
	}
	pid, err := binary.ReadUvarint(br.r)
	if err != nil {
		return Ref{}, fmt.Errorf("trace: truncated pid: %w", noEOF(err))
	}
	if pid > 0xFFFF {
		return Ref{}, fmt.Errorf("trace: pid %d out of range", pid)
	}
	a, err := binary.ReadUvarint(br.r)
	if err != nil {
		return Ref{}, fmt.Errorf("trace: truncated addr: %w", noEOF(err))
	}
	return Ref{CPU: hdr >> 4, Kind: kind, PID: addr.PID(pid), Addr: addr.VAddr(a)}, nil
}

// noEOF converts io.EOF to io.ErrUnexpectedEOF so that a mid-record EOF is
// not mistaken for a clean end of stream.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// TextWriter encodes records one per line as "cpu kind pid hexaddr".
// Lines beginning with '#' and blank lines are comments on input.
type TextWriter struct {
	w *bufio.Writer
}

// NewTextWriter creates a writer on w.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: bufio.NewWriter(w)}
}

// Write appends one record.
func (tw *TextWriter) Write(r Ref) error {
	_, err := fmt.Fprintln(tw.w, r.String())
	return err
}

// Flush writes out buffered data.
func (tw *TextWriter) Flush() error { return tw.w.Flush() }

// TextReader decodes the text trace format.
type TextReader struct {
	s    *bufio.Scanner
	line int
}

// NewTextReader creates a reader on r.
func NewTextReader(r io.Reader) *TextReader {
	return &TextReader{s: bufio.NewScanner(r)}
}

// Next implements Reader.
func (tr *TextReader) Next() (Ref, error) {
	for tr.s.Scan() {
		tr.line++
		line := strings.TrimSpace(tr.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ref, err := ParseLine(line)
		if err != nil {
			return Ref{}, fmt.Errorf("trace: line %d: %w", tr.line, err)
		}
		return ref, nil
	}
	if err := tr.s.Err(); err != nil {
		return Ref{}, err
	}
	return Ref{}, io.EOF
}

// ParseLine parses one text-format record.
func ParseLine(line string) (Ref, error) {
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return Ref{}, fmt.Errorf("want 4 fields, got %d", len(fields))
	}
	cpu, err := strconv.ParseUint(fields[0], 10, 8)
	if err != nil {
		return Ref{}, fmt.Errorf("bad cpu %q: %w", fields[0], err)
	}
	kind, err := ParseKind(fields[1])
	if err != nil {
		return Ref{}, err
	}
	pid, err := strconv.ParseUint(fields[2], 10, 16)
	if err != nil {
		return Ref{}, fmt.Errorf("bad pid %q: %w", fields[2], err)
	}
	a, err := strconv.ParseUint(fields[3], 0, 64)
	if err != nil {
		return Ref{}, fmt.Errorf("bad addr %q: %w", fields[3], err)
	}
	return Ref{CPU: uint8(cpu), Kind: kind, PID: addr.PID(pid), Addr: addr.VAddr(a)}, nil
}

// Characteristics summarizes a trace in the style of the paper's Table 5.
// The seen-CPU and seen-PID sets are fixed-size bitsets rather than maps so
// Observe stays on the per-reference hot path without hashing or allocating.
type Characteristics struct {
	CPUs         int
	TotalRefs    uint64
	Instrs       uint64
	Reads        uint64
	Writes       uint64
	CtxSwitches  uint64
	DistinctPIDs int
	seenCPU      [4]uint64    // 256 possible CPU ids
	seenPID      [1024]uint64 // 65536 possible PIDs
}

// Observe folds one record into the summary.
func (c *Characteristics) Observe(r Ref) {
	if bit := uint64(1) << (r.CPU & 63); c.seenCPU[r.CPU>>6]&bit == 0 {
		c.seenCPU[r.CPU>>6] |= bit
		c.CPUs++
	}
	if r.PID != addr.NoPID {
		if bit := uint64(1) << (r.PID & 63); c.seenPID[r.PID>>6]&bit == 0 {
			c.seenPID[r.PID>>6] |= bit
			c.DistinctPIDs++
		}
	}
	switch r.Kind {
	case IFetch:
		c.TotalRefs++
		c.Instrs++
	case Read:
		c.TotalRefs++
		c.Reads++
	case Write:
		c.TotalRefs++
		c.Writes++
	case CtxSwitch:
		c.CtxSwitches++
	}
}

// Summarize drains a Reader and returns its characteristics.
func Summarize(r Reader) (Characteristics, error) {
	var c Characteristics
	for {
		ref, err := r.Next()
		if errors.Is(err, io.EOF) {
			return c, nil
		}
		if err != nil {
			return c, err
		}
		c.Observe(ref)
	}
}
