package core

import (
	"strings"
	"testing"

	"repro/internal/rcache"
	"repro/internal/vcache"
)

// These tests corrupt hierarchy state deliberately and assert that Check
// reports each class of violation — validating the validator.

func corruptibleVR(t *testing.T) (*rig, *VR) {
	t.Helper()
	r := newRig(t, 1, vrMk, nil)
	r.write(0, 1, 0x100) // one dirty resident line
	r.read(0, 1, 0x200)  // one clean resident line
	h := r.hs[0].(*VR)
	if err := h.Check(); err != nil {
		t.Fatalf("precondition: %v", err)
	}
	return r, h
}

// findResident returns the location and line of some resident V line.
func findResident(h *VR) (set, way int) {
	found := false
	h.vcs[0].ForEachPresent(func(s, w int, _ *vcache.Line) {
		if !found {
			set, way = s, w
			found = true
		}
	})
	return set, way
}

func TestCheckDetectsClearedInclusion(t *testing.T) {
	_, h := corruptibleVR(t)
	set, way := findResident(h)
	rp := h.vcs[0].Line(set, way).RPtr
	h.rc.Sub(rp.Set, rp.Way, rp.Sub).Inclusion = false
	err := h.Check()
	if err == nil || !strings.Contains(err.Error(), "inclusion clear") {
		t.Errorf("Check = %v, want inclusion-clear violation", err)
	}
}

func TestCheckDetectsBrokenVPointer(t *testing.T) {
	_, h := corruptibleVR(t)
	set, way := findResident(h)
	rp := h.vcs[0].Line(set, way).RPtr
	h.rc.Sub(rp.Set, rp.Way, rp.Sub).VPtr = rcache.VPtr{Cache: 0, Set: set + 1, Way: way}
	if err := h.Check(); err == nil {
		t.Error("broken v-pointer not detected")
	}
}

func TestCheckDetectsDirtyMismatch(t *testing.T) {
	_, h := corruptibleVR(t)
	set, way := findResident(h)
	l := h.vcs[0].Line(set, way)
	l.Dirty = !l.Dirty
	if err := h.Check(); err == nil || !strings.Contains(err.Error(), "VDirty") {
		t.Errorf("Check = %v, want dirty mismatch", err)
	}
}

func TestCheckDetectsPhantomBufferBit(t *testing.T) {
	r, h := corruptibleVR(t)
	_ = r
	// Set a buffer bit on a childless subentry with nothing buffered.
	var done bool
	h.rc.ForEachValid(func(set, way int, l *rcache.Line) {
		if done {
			return
		}
		for i := range l.Subs {
			if !l.Subs[i].HasChild() {
				l.Subs[i].Buffer = true
				l.Subs[i].VDirty = true
				done = true
				return
			}
		}
	})
	if !done {
		t.Skip("no childless subentry available")
	}
	if err := h.Check(); err == nil {
		t.Error("phantom buffer bit not detected")
	}
}

func TestCheckDetectsDanglingVDirty(t *testing.T) {
	_, h := corruptibleVR(t)
	var done bool
	h.rc.ForEachValid(func(set, way int, l *rcache.Line) {
		if done {
			return
		}
		for i := range l.Subs {
			if !l.Subs[i].HasChild() {
				l.Subs[i].VDirty = true
				done = true
				return
			}
		}
	})
	if !done {
		t.Skip("no childless subentry available")
	}
	if err := h.Check(); err == nil || !strings.Contains(err.Error(), "VDirty without") {
		t.Errorf("Check = %v, want dangling VDirty", err)
	}
}

func TestCheckDetectsOrphanedParentLine(t *testing.T) {
	_, h := corruptibleVR(t)
	set, way := findResident(h)
	rp := h.vcs[0].Line(set, way).RPtr
	// Invalidate the parent line under the child's feet.
	h.rc.Invalidate(rp.Set, rp.Way)
	if err := h.Check(); err == nil {
		t.Error("orphaned child not detected")
	}
}

func TestCheckDetectsCountMismatch(t *testing.T) {
	_, h := corruptibleVR(t)
	// Mark an extra inclusion bit with a v-pointer that points at a
	// present line already owned by another subentry: pointer round-trip
	// fails or counts diverge.
	set, way := findResident(h)
	var done bool
	h.rc.ForEachValid(func(s, w int, l *rcache.Line) {
		if done {
			return
		}
		for i := range l.Subs {
			if !l.Subs[i].HasChild() {
				l.Subs[i].Inclusion = true
				l.Subs[i].VPtr = rcache.VPtr{Cache: 0, Set: set, Way: way}
				done = true
				return
			}
		}
	})
	if !done {
		t.Skip("no spare subentry")
	}
	if err := h.Check(); err == nil {
		t.Error("duplicated child ownership not detected")
	}
}

func TestNoInclusionCheckDetectsSharedDirty(t *testing.T) {
	r := newRig(t, 1, niMk, nil)
	r.write(0, 1, 0x100)
	h := r.hs[0].(*RRNoInclusion)
	// Force the dirty L1 line to Shared: the baseline invariant forbids it.
	corrupted := false
	h.l1.ForEachValid(func(set, way int) {
		l := h.l1.Line(set, way)
		if l.dirty {
			l.state = rcache.Shared
			corrupted = true
		}
	})
	if !corrupted {
		t.Fatal("no dirty line to corrupt")
	}
	if err := h.Check(); err == nil {
		t.Error("shared-dirty L1 line not detected")
	}
}
