package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/rcache"
	"repro/internal/rlt"
	"repro/internal/stats"
	"repro/internal/tlb"
	"repro/internal/vcache"
	"repro/internal/victim"
	"repro/internal/writebuf"
)

// This file is the checkpoint layer's view of a hierarchy: every bit of
// state the audit snapshot captures plus the bits it deliberately leaves
// out (LRU stamps, recency clocks, drain deadlines, counters) — enough to
// continue a run byte-for-byte identically after a restore.

// StatsState is a Stats' serializable form. All counter fields are copied
// verbatim; the interval trackers are flattened into their own states.
type StatsState struct {
	L1, L2    stats.LevelStats
	Coherence stats.CoherenceStats
	Synonyms  [5]uint64
	TLBHits   uint64
	TLBMisses uint64

	WriteBacks           uint64
	SwappedWriteBacks    uint64
	CtxSwitches          uint64
	InclusionInvals      uint64
	BufferStalls         uint64
	EagerFlushWriteBacks uint64
	MemWritesDirect      uint64
	VictimHits           uint64
	VictimInserts        uint64
	RLTEvictions         uint64

	WriteIntervals     stats.IntervalTrackerState
	WriteBackIntervals stats.IntervalTrackerState
}

// ExportState captures the counters.
func (s *Stats) ExportState() StatsState {
	return StatsState{
		L1:                   s.L1,
		L2:                   s.L2,
		Coherence:            s.Coherence,
		Synonyms:             s.Synonyms,
		TLBHits:              s.TLB.Hits,
		TLBMisses:            s.TLB.Misses,
		WriteBacks:           s.WriteBacks,
		SwappedWriteBacks:    s.SwappedWriteBacks,
		CtxSwitches:          s.CtxSwitches,
		InclusionInvals:      s.InclusionInvals,
		BufferStalls:         s.BufferStalls,
		EagerFlushWriteBacks: s.EagerFlushWriteBacks,
		MemWritesDirect:      s.MemWritesDirect,
		VictimHits:           s.VictimHits,
		VictimInserts:        s.VictimInserts,
		RLTEvictions:         s.RLTEvictions,
		WriteIntervals:       s.WriteIntervals.ExportState(),
		WriteBackIntervals:   s.WriteBackIntervals.ExportState(),
	}
}

// RestoreState replaces the counters.
func (s *Stats) RestoreState(st StatsState) error {
	if err := s.WriteIntervals.RestoreState(st.WriteIntervals); err != nil {
		return fmt.Errorf("core: write intervals: %w", err)
	}
	if err := s.WriteBackIntervals.RestoreState(st.WriteBackIntervals); err != nil {
		return fmt.Errorf("core: write-back intervals: %w", err)
	}
	s.L1 = st.L1
	s.L2 = st.L2
	s.Coherence = st.Coherence
	s.Synonyms = st.Synonyms
	s.TLB.Hits = st.TLBHits
	s.TLB.Misses = st.TLBMisses
	s.WriteBacks = st.WriteBacks
	s.SwappedWriteBacks = st.SwappedWriteBacks
	s.CtxSwitches = st.CtxSwitches
	s.InclusionInvals = st.InclusionInvals
	s.BufferStalls = st.BufferStalls
	s.EagerFlushWriteBacks = st.EagerFlushWriteBacks
	s.MemWritesDirect = st.MemWritesDirect
	s.VictimHits = st.VictimHits
	s.VictimInserts = st.VictimInserts
	s.RLTEvictions = st.RLTEvictions
	return nil
}

// Merge folds another hierarchy's counters into s — the shard stitcher's
// per-CPU merge path. Ratios, coherence counts and scalar counters add;
// interval histograms merge bucket-wise (boundary-spanning intervals were
// observed by neither shard, so the union is exact).
func (s *Stats) Merge(o *Stats) error {
	s.L1.Add(&o.L1)
	s.L2.Add(&o.L2)
	s.Coherence.Add(&o.Coherence)
	for i := range s.Synonyms {
		s.Synonyms[i] += o.Synonyms[i]
	}
	s.TLB.Hits += o.TLB.Hits
	s.TLB.Misses += o.TLB.Misses
	s.WriteBacks += o.WriteBacks
	s.SwappedWriteBacks += o.SwappedWriteBacks
	s.CtxSwitches += o.CtxSwitches
	s.InclusionInvals += o.InclusionInvals
	s.BufferStalls += o.BufferStalls
	s.EagerFlushWriteBacks += o.EagerFlushWriteBacks
	s.MemWritesDirect += o.MemWritesDirect
	s.VictimHits += o.VictimHits
	s.VictimInserts += o.VictimInserts
	s.RLTEvictions += o.RLTEvictions
	if err := s.WriteIntervals.Merge(o.WriteIntervals); err != nil {
		return err
	}
	return s.WriteBackIntervals.Merge(o.WriteBackIntervals)
}

// NL1LineState is the exported form of the no-inclusion baseline's L1 line
// payload.
type NL1LineState struct {
	State rcache.State
	Dirty bool
	Token uint64
}

// WTQueueState is the write-through buffer's serializable occupancy.
type WTQueueState struct {
	Deadlines []uint64
	Clock     uint64
}

// HierarchyState is one hierarchy's full serializable state. The VCaches
// and WriteBuf fields are used by the V-R and R-R(incl) organizations, L1
// by the no-inclusion baseline; RCache, TLB and Stats by all three.
type HierarchyState struct {
	PID addr.PID

	VCaches []cache.State[vcache.Line]
	L1      *cache.State[NL1LineState]
	RCache  cache.State[rcache.Line]

	TLB      cache.State[tlb.EntryState]
	TLBStats tlb.Stats

	WriteBuf *writebuf.State
	WTQueue  WTQueueState

	// Victim and RLT are present exactly when the exporting hierarchy had a
	// victim cache / reverse-lookup table configured.
	Victim *victim.State
	RLT    *rlt.State

	Stats StatsState
}

// ExportState implements Hierarchy.
func (h *VR) ExportState() *HierarchyState {
	st := &HierarchyState{
		PID:    h.pid,
		RCache: h.rc.ExportState(),
		Stats:  h.st.ExportState(),
		WTQueue: WTQueueState{
			Deadlines: append([]uint64(nil), h.wt.deadlines...),
			Clock:     h.wt.clock,
		},
	}
	for _, vc := range h.vcs {
		st.VCaches = append(st.VCaches, vc.ExportState())
	}
	st.TLB, st.TLBStats = h.tlb.ExportState()
	wb := h.wb.ExportState()
	st.WriteBuf = &wb
	st.Victim = h.vic.ExportState()
	st.RLT = h.rlt.ExportState()
	return st
}

// RestoreState implements Hierarchy.
func (h *VR) RestoreState(st *HierarchyState) error {
	if len(st.VCaches) != len(h.vcs) {
		return fmt.Errorf("core: state has %d v-caches, hierarchy has %d", len(st.VCaches), len(h.vcs))
	}
	if st.L1 != nil {
		return fmt.Errorf("core: state carries a no-inclusion L1, hierarchy is V-R/R-R")
	}
	if st.WriteBuf == nil {
		return fmt.Errorf("core: state carries no write buffer, hierarchy is V-R/R-R")
	}
	for i, vc := range h.vcs {
		if err := vc.RestoreState(st.VCaches[i]); err != nil {
			return err
		}
	}
	if err := h.rc.RestoreState(st.RCache); err != nil {
		return err
	}
	if err := h.tlb.RestoreState(st.TLB, st.TLBStats); err != nil {
		return err
	}
	if err := h.wb.RestoreState(*st.WriteBuf); err != nil {
		return err
	}
	if err := h.st.RestoreState(st.Stats); err != nil {
		return err
	}
	if err := h.vic.RestoreState(st.Victim); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := h.rlt.RestoreState(st.RLT); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	h.wt.deadlines = append(h.wt.deadlines[:0], st.WTQueue.Deadlines...)
	h.wt.clock = st.WTQueue.Clock
	h.pid = st.PID
	return nil
}

// ExportState implements Hierarchy.
func (h *RRNoInclusion) ExportState() *HierarchyState {
	in := h.l1.ExportState()
	l1 := cache.State[NL1LineState]{Clock: in.Clock, Draws: in.Draws, Ways: make([]cache.Entry[NL1LineState], len(in.Ways))}
	for i, e := range in.Ways {
		l1.Ways[i] = cache.Entry[NL1LineState]{
			Tag: e.Tag, Valid: e.Valid, Stamp: e.Stamp,
			Line: NL1LineState{State: e.Line.state, Dirty: e.Line.dirty, Token: e.Line.token},
		}
	}
	st := &HierarchyState{
		PID:    h.pid,
		L1:     &l1,
		RCache: h.l2.ExportState(),
		Stats:  h.st.ExportState(),
	}
	st.TLB, st.TLBStats = h.tlb.ExportState()
	st.Victim = h.vic.ExportState()
	return st
}

// RestoreState implements Hierarchy.
func (h *RRNoInclusion) RestoreState(st *HierarchyState) error {
	if st.L1 == nil {
		return fmt.Errorf("core: state carries no no-inclusion L1")
	}
	if len(st.VCaches) != 0 || st.WriteBuf != nil || st.RLT != nil {
		return fmt.Errorf("core: state carries V-R machinery, hierarchy is the no-inclusion baseline")
	}
	in := cache.State[nl1Line]{Clock: st.L1.Clock, Draws: st.L1.Draws, Ways: make([]cache.Entry[nl1Line], len(st.L1.Ways))}
	for i, e := range st.L1.Ways {
		in.Ways[i] = cache.Entry[nl1Line]{
			Tag: e.Tag, Valid: e.Valid, Stamp: e.Stamp,
			Line: nl1Line{state: e.Line.State, dirty: e.Line.Dirty, token: e.Line.Token},
		}
	}
	if err := h.l1.RestoreState(in); err != nil {
		return err
	}
	if err := h.l2.RestoreState(st.RCache); err != nil {
		return err
	}
	if err := h.tlb.RestoreState(st.TLB, st.TLBStats); err != nil {
		return err
	}
	if err := h.st.RestoreState(st.Stats); err != nil {
		return err
	}
	if err := h.vic.RestoreState(st.Victim); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	h.pid = st.PID
	return nil
}
