package core

import (
	"repro/internal/addr"
	"repro/internal/bus"
	"repro/internal/probe"
	"repro/internal/rcache"
	"repro/internal/stats"
)

// SnoopBus implements the bus-induced half of the coherence protocol
// (Section 3). Thanks to inclusion, the R-cache filters: the V-cache is
// disturbed only when it actually holds (or buffers) the block — the
// shielding effect Tables 11-13 measure. When probing, a transaction the
// R-cache absorbed without sending any message down is reported as
// shielded.
func (h *VR) SnoopBus(t bus.Txn) bus.SnoopResult {
	if h.pr == nil {
		return h.snoop(t)
	}
	before := h.st.Coherence.Total()
	res := h.snoop(t)
	if h.st.Coherence.Total() == before {
		h.emit(probe.EvShielded, 0, 0, t.Addr, uint64(t.Kind))
	}
	return res
}

// snoop dispatches one remote transaction against this hierarchy.
func (h *VR) snoop(t bus.Txn) bus.SnoopResult {
	var res bus.SnoopResult
	// Walk the transaction's range in our own L2-block strides (hierarchies
	// are homogeneous in practice, so this is a single iteration).
	for a := t.Addr; a < t.Addr+addr.PAddr(t.Size); a += addr.PAddr(h.opts.L2.Block) {
		switch t.Kind {
		case bus.Read:
			r := h.snoopRead(a)
			res.Shared = res.Shared || r.Shared
			res.Supplied = res.Supplied || r.Supplied
		case bus.Invalidate:
			h.snoopInvalidate(a)
		case bus.ReadMod:
			// Treated as a read-miss followed by an invalidation.
			r := h.snoopRead(a)
			res.Shared = res.Shared || r.Shared
			res.Supplied = res.Supplied || r.Supplied
			h.snoopInvalidate(a)
		case bus.Update:
			// Write-update protocol: refresh our copy in place. The
			// transaction covers a single first-level block.
			if h.snoopUpdate(t.Addr, t.Token) {
				res.Shared = true
			}
		}
	}
	return res
}

// snoopUpdate applies a remote write-update to our copies, reaching a
// first-level child through its v-pointer when one exists. It reports
// whether we retain a copy (so the writer keeps broadcasting).
func (h *VR) snoopUpdate(a addr.PAddr, token uint64) bool {
	set, way, ok := h.rc.Lookup(a)
	if !ok {
		return false
	}
	sub := h.rc.SubIndex(a)
	se := h.rc.Sub(set, way, sub)
	se.Token = token
	se.RDirty = false
	// A parked victim copy is stale now; drop it rather than refresh.
	h.vic.InvalidateRange(a, h.opts.L1.Block)
	if se.Buffer {
		// A buffered modified copy being updated remotely cannot happen
		// under a consistent protocol (dirty implies private), but refresh
		// it defensively rather than lose the ordering.
		h.wb.Update(rptrOf(set, way, sub), token)
		h.st.Coherence.Record(stats.MsgUpdate)
		h.emit(probe.EvCohUpdate, 0, 0, a, token)
	}
	if se.Inclusion {
		child := h.vcs[se.VPtr.Cache]
		cl := child.Line(se.VPtr.Set, se.VPtr.Way)
		cl.Token = token
		cl.Dirty = false
		se.VDirty = false
		h.st.Coherence.Record(stats.MsgUpdate)
		h.emit(probe.EvCohUpdate, 0, 0, a, token)
		h.sig(SigUpdate, rptrOf(set, way, sub), se.VPtr, a)
	}
	h.rc.Line(set, way).State = rcache.Shared
	return true
}

// snoopRead handles a remote read-miss: flush modified data (from the
// V-cache, the write buffer, or the R-cache itself) to memory, downgrade to
// shared, and acknowledge sharing.
func (h *VR) snoopRead(a addr.PAddr) bus.SnoopResult {
	set, way, ok := h.rc.Lookup(a)
	if !ok {
		return bus.SnoopResult{}
	}
	res := bus.SnoopResult{Shared: true}
	l := h.rc.Line(set, way)
	for i := range l.Subs {
		se := &l.Subs[i]
		subAddr := h.rc.SubAddr(set, way, i)
		switch {
		case se.Buffer:
			// Modified data in the write buffer: flush(buffer).
			e, found := h.wb.Flush(rptrOf(set, way, i))
			if !found {
				panic("core: snoop found buffer bit without buffered entry")
			}
			se.Token = e.Token
			h.opts.Mem.Write(subAddr, e.Token)
			se.Buffer = false
			se.VDirty = false
			h.st.Coherence.Record(stats.MsgFlushBuffer)
			h.emit(probe.EvCohFlushBuffer, 0, 0, subAddr, e.Token)
			h.sig(SigFlushBuffer, rptrOf(set, way, i), rcache.VPtr{}, subAddr)
			// flush(buffer) is one of the two events that stall the
			// processor behind its write buffer: the flush occupies the
			// bus and we wait for it to complete.
			h.cy.BusWrite()
			h.cy.WBStall()
			res.Supplied = true
		case se.Inclusion && se.VDirty:
			// Modified data in the V-cache: flush(v-pointer). The child
			// keeps a now-clean copy.
			child := h.vcs[se.VPtr.Cache]
			token := child.Line(se.VPtr.Set, se.VPtr.Way).Token
			child.CleanLine(se.VPtr.Set, se.VPtr.Way)
			se.Token = token
			h.opts.Mem.Write(subAddr, token)
			h.cy.BusWrite()
			se.VDirty = false
			h.st.Coherence.Record(stats.MsgFlush)
			h.emit(probe.EvCohFlush, 0, 0, subAddr, token)
			h.sig(SigFlush, rptrOf(set, way, i), se.VPtr, subAddr)
			res.Supplied = true
		case se.RDirty:
			// Modified only here: supply from the R-cache.
			h.opts.Mem.Write(subAddr, se.Token)
			h.cy.BusWrite()
			res.Supplied = true
		}
		se.RDirty = false
	}
	l.State = rcache.Shared
	return res
}

// snoopInvalidate handles a remote invalidation (or the invalidation half
// of a read-modified-write): drop the line and any first-level children or
// buffered data.
func (h *VR) snoopInvalidate(a addr.PAddr) {
	set, way, ok := h.rc.Lookup(a)
	if !ok {
		return
	}
	l := h.rc.Line(set, way)
	// The line leaves the second level, so parked victims under it go too.
	h.vic.InvalidateRange(h.rc.BlockAddr(set, way), h.opts.L2.Block)
	for i := range l.Subs {
		se := &l.Subs[i]
		if se.Buffer {
			// invalidate(buffer): the remote writer supersedes our data.
			if _, found := h.wb.Cancel(rptrOf(set, way, i)); !found {
				panic("core: invalidate found buffer bit without buffered entry")
			}
			h.st.Coherence.Record(stats.MsgInvalidateBuffer)
			h.emit(probe.EvCohInvalidateBuffer, 0, 0, a, 0)
			h.sig(SigInvalidateBuffer, rptrOf(set, way, i), rcache.VPtr{}, a)
		}
		if se.Inclusion {
			// invalidate(v-pointer): only blocks actually present at the
			// first level disturb it — the shielding effect.
			h.vcs[se.VPtr.Cache].Invalidate(se.VPtr.Set, se.VPtr.Way)
			h.syn.Invalidated(h.rc.SubAddr(set, way, i))
			h.st.Coherence.Record(stats.MsgInvalidate)
			h.emit(probe.EvCohInvalidate, 0, 0, a, 0)
			h.sig(SigInvalidate, rptrOf(set, way, i), se.VPtr, a)
		}
	}
	h.rc.Invalidate(set, way)
}
