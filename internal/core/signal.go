package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/rcache"
	"repro/internal/vcache"
)

// SignalKind names the V-cache/R-cache interface signals of the paper's
// Table 4 (plus the write-update extension's delivery signal). A Tracer
// attached to a hierarchy observes each one as the controller raises it,
// which makes the protocol itself testable and demonstrable.
type SignalKind int

// Table 4 signals.
const (
	// SigHit: V-cache hit; the R-cache access and translation are aborted.
	SigHit SignalKind = iota
	// SigReplacement: a V-cache block is being replaced (V -> R).
	SigReplacement
	// SigMiss: miss(v-pointer, r-pointer) — the V-cache asks the R-cache
	// to service a miss (V -> R).
	SigMiss
	// SigWriteBack: write-back(r-pointer) — buffered data drains into the
	// R-cache (V -> R).
	SigWriteBack
	// SigSameSet: sameset(v-pointer) — the synonym copy is in the same V
	// set; any pending write-back is canceled (R -> V).
	SigSameSet
	// SigMove: move(v-pointer) — the synonym copy is moved to the new set
	// (R -> V).
	SigMove
	// SigDataSupply: data supply(r-pointer) — the R-cache supplies the
	// block (R -> V).
	SigDataSupply
	// SigInvalidate: invalidation(v-pointer) (R -> V).
	SigInvalidate
	// SigFlush: flush(v-pointer) (R -> V).
	SigFlush
	// SigInvalidateBuffer: invalidation(buffer) (R -> V).
	SigInvalidateBuffer
	// SigFlushBuffer: flush(buffer) (R -> V).
	SigFlushBuffer
	// SigInvAck: invack — coherence cleared, the V-cache may update
	// (R -> V).
	SigInvAck
	// SigUpdate: update(v-pointer) — write-update protocol data delivery
	// (R -> V; extension).
	SigUpdate
)

// String returns the paper's name for the signal.
func (k SignalKind) String() string {
	switch k {
	case SigHit:
		return "hit"
	case SigReplacement:
		return "replacement"
	case SigMiss:
		return "miss(v-pointer, r-pointer)"
	case SigWriteBack:
		return "write-back(r-pointer)"
	case SigSameSet:
		return "sameset(v-pointer)"
	case SigMove:
		return "move(v-pointer)"
	case SigDataSupply:
		return "data supply(r-pointer)"
	case SigInvalidate:
		return "invalidation(v-pointer)"
	case SigFlush:
		return "flush(v-pointer)"
	case SigInvalidateBuffer:
		return "invalidation(buffer)"
	case SigFlushBuffer:
		return "flush(buffer)"
	case SigInvAck:
		return "invack"
	case SigUpdate:
		return "update(v-pointer)"
	default:
		return fmt.Sprintf("SignalKind(%d)", int(k))
	}
}

// Signal is one raised interface signal.
type Signal struct {
	CPU  int // bus id of the raising hierarchy
	Kind SignalKind
	RPtr vcache.RPtr // R-cache subentry involved, when applicable
	VPtr rcache.VPtr // V-cache location involved, when applicable
	PA   addr.PAddr  // physical block, when known
}

// String renders the signal for logs.
func (s Signal) String() string {
	return fmt.Sprintf("cpu%d %v %v %v pa=%#x", s.CPU, s.Kind, s.RPtr, s.VPtr, uint64(s.PA))
}

// Tracer observes interface signals. Implementations must be cheap; the
// controller calls them inline.
type Tracer interface {
	Signal(Signal)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(Signal)

// Signal implements Tracer.
func (f TracerFunc) Signal(s Signal) { f(s) }

// sig raises a signal if a tracer is attached.
func (h *VR) sig(kind SignalKind, rp vcache.RPtr, vp rcache.VPtr, pa addr.PAddr) {
	if h.opts.Tracer == nil {
		return
	}
	h.opts.Tracer.Signal(Signal{CPU: h.id, Kind: kind, RPtr: rp, VPtr: vp, PA: pa})
}
