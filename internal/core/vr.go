package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/bus"
	"repro/internal/cycles"
	"repro/internal/probe"
	"repro/internal/rcache"
	"repro/internal/rlt"
	"repro/internal/stats"
	"repro/internal/tlb"
	"repro/internal/trace"
	"repro/internal/vcache"
	"repro/internal/victim"
	"repro/internal/writebuf"
)

// VR is the two-level hierarchy with inclusion. With virtual=true it is the
// paper's V-R organization (virtually-addressed L1, synonym resolution at
// L2, swapped-valid context switching); with virtual=false it is the R-R
// (incl) baseline, whose L1 is physically addressed behind a per-reference
// TLB and which needs no synonym or context-switch machinery — the same
// controller code covers both, with the virtual-only paths simply never
// taken.
type VR struct {
	opts    Options
	virtual bool
	id      int

	vcs []*vcache.VCache // [0] = unified or D; [1] = I when split
	rc  *rcache.RCache
	tlb *tlb.TLB
	wb  *writebuf.Buffer
	wt  wtQueue // write-through buffer occupancy (L1WriteThrough only)

	syn SynonymStrategy // how first-level copies are found on a miss
	rlt *rlt.Table      // non-nil iff syn is the reverse-lookup strategy
	vic *victim.Cache   // nil: no victim cache between the levels

	pid addr.PID
	st  *Stats
	pr  *probe.Probe // nil: no event emission
	cy  *cycles.CPU  // nil: no cycle accounting
}

// emit forwards one probe event attributed to this hierarchy. The nil
// check keeps the disabled cost to a predictable branch.
func (h *VR) emit(k probe.Kind, acc statsKind, va addr.VAddr, pa addr.PAddr, aux uint64) {
	if h.pr == nil {
		return
	}
	h.pr.Emit(probe.Event{CPU: h.id, Kind: k, Access: acc, VA: va, PA: pa, Aux: aux})
}

var _ Hierarchy = (*VR)(nil)

// NewVR builds the paper's virtual-real hierarchy and attaches it to the
// bus.
func NewVR(o Options) (*VR, error) { return newVR(o, true) }

// NewRR builds the physically-addressed baseline with inclusion and
// attaches it to the bus.
func NewRR(o Options) (*VR, error) {
	if o.EagerCtxFlush || o.PIDTagged {
		return nil, fmt.Errorf("core: EagerCtxFlush and PIDTagged apply only to the V-R organization")
	}
	return newVR(o, false)
}

func newVR(o Options, virtual bool) (*VR, error) {
	o.applyDefaults()
	if err := o.validate(); err != nil {
		return nil, err
	}
	if o.PIDTagged && o.EagerCtxFlush {
		return nil, fmt.Errorf("core: PIDTagged and EagerCtxFlush are mutually exclusive")
	}
	if o.L1WriteThrough && o.Protocol == WriteUpdate {
		return nil, fmt.Errorf("core: L1WriteThrough is incompatible with the write-update protocol")
	}
	if o.L1WriteThrough && o.EagerCtxFlush {
		return nil, fmt.Errorf("core: a write-through first level has nothing to flush eagerly")
	}
	h := &VR{
		opts:    o,
		virtual: virtual,
		rc:      mustRCache(o),
		wb:      writebuf.MustNew(o.WriteBufDepth, o.WriteBufLatency),
		st:      newStats(),
		pr:      o.Probe,
	}
	if h.pr != nil {
		// The buffer reports its own traffic; translate its operations
		// into probe events carrying the R-cache subentry's physical
		// address. Wired only when probing, so the disabled path pays
		// nothing inside the buffer either.
		h.wb.Observer = func(op writebuf.Op, e writebuf.Entry) {
			k := probe.EvWBEnqueue
			switch op {
			case writebuf.OpDrain:
				k = probe.EvWBDrain
			case writebuf.OpCancel:
				k = probe.EvWBCancel
			case writebuf.OpFlush:
				k = probe.EvWBFlush
			}
			h.emit(k, 0, 0, h.rc.SubAddr(e.RPtr.Set, e.RPtr.Way, e.RPtr.Sub), e.Token)
		}
	}
	h.rc.SetNaiveReplacement(o.NaiveL2Replacement)
	h.wt = wtQueue{depth: o.WriteBufDepth, latency: o.WriteBufLatency}
	h.syn = vptrStrategy{}
	if o.RLTEntries > 0 {
		if !virtual {
			return nil, fmt.Errorf("core: the reverse-lookup synonym table applies only to the V-R organization")
		}
		tbl, err := rlt.New(o.RLTEntries, o.RLTAssoc, o.L1.Block)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		h.rlt = tbl
		h.syn = &rltStrategy{h: h}
	}
	h.vic = victim.New(o.VictimEntries)
	t, err := tlb.New(o.MMU, o.TLBEntries, o.TLBAssoc)
	if err != nil {
		return nil, err
	}
	h.tlb = t
	for i, g := range o.sideGeoms() {
		// Offset the seed per side so split I/D caches draw independent
		// Random-replacement streams.
		vc, err := vcache.NewWithPolicy(g, o.PIDTagged, o.L1Policy, o.PolicySeed+int64(i)+1)
		if err != nil {
			return nil, err
		}
		h.vcs = append(h.vcs, vc)
	}
	h.id = o.Bus.Attach(h)
	h.cy = o.Cycles.CPU(h.id)
	return h, nil
}

// Stats implements Hierarchy.
func (h *VR) Stats() *Stats { return h.st }

// BusID returns the hierarchy's snooper id.
func (h *VR) BusID() int { return h.id }

// Virtual reports whether the first level is virtually addressed.
func (h *VR) Virtual() bool { return h.virtual }

// cacheIndex selects the first-level cache for a record kind.
func (h *VR) cacheIndex(k trace.Kind) int {
	if h.opts.Split && k == trace.IFetch {
		return 1
	}
	return 0
}

// translate runs the TLB (counting its activity) and returns the physical
// address.
func (h *VR) translate(pid addr.PID, va addr.VAddr) addr.PAddr {
	pa, hit := h.tlb.Translate(pid, va)
	if hit {
		h.st.TLB.Hits++
		h.emit(probe.EvTLBHit, 0, va, pa, 0)
	} else {
		h.st.TLB.Misses++
		h.emit(probe.EvTLBMiss, 0, va, pa, 0)
		h.cy.TLBMiss()
	}
	return pa
}

// subAlign truncates pa to its L1-block base.
func (h *VR) subAlign(pa addr.PAddr) addr.PAddr {
	return pa &^ addr.PAddr(h.opts.L1.Block-1)
}

// rptrOf bundles an R-cache coordinate.
func rptrOf(set, way, sub int) vcache.RPtr { return vcache.RPtr{Set: set, Way: way, Sub: sub} }

// Access implements Hierarchy.
func (h *VR) Access(ref trace.Ref) AccessResult {
	if ref.Kind == trace.CtxSwitch {
		h.contextSwitch(ref.PID)
		return AccessResult{CtxSwitch: true}
	}
	h.st.WriteIntervals.Tick()
	h.st.WriteBackIntervals.Tick()
	h.drainDue()
	if h.opts.L1WriteThrough {
		h.wt.tick()
	}

	kind := statKind(ref.Kind)
	ci := h.cacheIndex(ref.Kind)
	vc := h.vcs[ci]

	// The V-R organization looks up L1 by virtual address and translates
	// only on a miss; the R-R baseline translates first.
	la := ref.Addr
	var paKnown addr.PAddr
	if !h.virtual {
		paKnown = h.translate(ref.PID, ref.Addr)
		la = addr.VAddr(paKnown)
	}

	set, way, lst := vc.Lookup(ref.PID, la)
	if lst == vcache.Hit && h.virtual && !vc.PIDTagged() && vc.Line(set, way).PID != ref.PID {
		// Without PID tags, a live line of another process matches on the
		// bare virtual tag — but the same virtual address in a different
		// address space is a different physical block. The swapped-valid
		// scheme normally rules this out (a switch marks every line SV
		// before the next process runs); a trace that interleaves the
		// outgoing process's last references past the switch record would
		// otherwise alias here. Treat it as the revalidation miss it is.
		lst = vcache.MissPresent
	}
	if lst == vcache.Hit {
		h.st.L1.Record(kind, true)
		vc.Touch(set, way)
		l := vc.Line(set, way)
		pa := h.rc.SubAddr(l.RPtr.Set, l.RPtr.Way, l.RPtr.Sub)
		h.sig(SigHit, l.RPtr, rcache.VPtr{Cache: ci, Set: set, Way: way}, pa)
		if h.pr != nil {
			h.emit(probe.EvL1Hit, kind, ref.Addr, pa, l.Token)
			if h.virtual {
				// The V-cache hit aborts the translation started in
				// parallel — the paper's Section 3 abort signal.
				h.emit(probe.EvTLBAbort, kind, ref.Addr, 0, 0)
			}
		}
		if ref.Kind != trace.Write {
			return AccessResult{Kind: kind, L1Hit: true, PA: pa, Token: l.Token}
		}
		h.st.WriteIntervals.Event()
		if h.opts.L1WriteThrough {
			return h.wtWrite(ref, kind, true, ci, set, way, paKnown)
		}
		token := h.opts.Tokens.Next()
		h.performWrite(vc, set, way, l.RPtr, token)
		return AccessResult{Kind: kind, L1Hit: true, PA: pa, Token: token}
	}

	h.st.L1.Record(kind, false)
	h.emit(probe.EvL1Miss, kind, ref.Addr, h.subAlign(paKnown), 0)
	if ref.Kind == trace.Write {
		h.st.WriteIntervals.Event()
		if h.opts.L1WriteThrough {
			// No-write-allocate: the write updates the R-cache directly.
			return h.wtWrite(ref, kind, false, ci, -1, -1, paKnown)
		}
	}
	return h.fill(ci, ref, kind, la, paKnown)
}

// performWrite applies a processor write to a first-level-resident block,
// running the protocol's coherence step first.
//
// Under write-invalidate this is the paper's "write hit on clean block":
// if the block is shared, remote copies are invalidated before the write
// proceeds (the invack handshake is implicit in the serial simulator), and
// the block becomes privately dirty.
//
// Under write-update a shared write instead broadcasts the new data: the
// local copy, the R-cache copy, remote copies and memory are all
// refreshed, and the block stays shared and clean (write-through
// semantics); only private blocks are written back lazily.
func (h *VR) performWrite(vc *vcache.VCache, set, way int, rp vcache.RPtr, token uint64) {
	rl := h.rc.Line(rp.Set, rp.Way)
	se := h.rc.Sub(rp.Set, rp.Way, rp.Sub)
	if rl.State == rcache.Shared {
		if h.opts.Protocol == WriteUpdate {
			subAddr := h.rc.SubAddr(rp.Set, rp.Way, rp.Sub)
			snoop := h.opts.Bus.Issue(bus.Txn{
				Kind:  bus.Update,
				From:  h.id,
				Addr:  subAddr,
				Size:  h.opts.L1.Block,
				Token: token,
			})
			h.opts.Mem.Write(subAddr, token)
			vcl := vc.Line(set, way)
			vcl.Token = token
			vc.Touch(set, way)
			se.Token = token
			se.VDirty = false
			se.RDirty = false
			if !snoop.Shared {
				// No sharer left: stop broadcasting further writes.
				rl.State = rcache.Private
			}
			return
		}
		h.opts.Bus.Issue(bus.Txn{
			Kind: bus.Invalidate,
			From: h.id,
			Addr: h.rc.BlockAddr(rp.Set, rp.Way),
			Size: h.opts.L2.Block,
		})
		rl.State = rcache.Private
	}
	if !vc.Line(set, way).Dirty {
		// The paper's invack: coherence is clear, the V-cache may update.
		h.sig(SigInvAck, rp, rcache.VPtr{}, h.rc.SubAddr(rp.Set, rp.Way, rp.Sub))
	}
	vc.WriteTouch(set, way, token)
	se.VDirty = true
}

// fill handles a first-level miss end to end: victim disposal, translation,
// second-level access (with coherence), synonym resolution, install, and —
// for writes — the write itself.
func (h *VR) fill(ci int, ref trace.Ref, kind statsKind, la addr.VAddr, paKnown addr.PAddr) AccessResult {
	vc := h.vcs[ci]
	isWrite := ref.Kind == trace.Write

	// 1. Choose and dispose of the first-level victim, notifying the
	// R-cache (replacement + hit/miss signals of Table 4).
	vic := vc.PickVictim(ref.PID, la)
	if vic.Present {
		h.sig(SigReplacement, vic.RPtr, rcache.VPtr{Cache: ci, Set: vic.Set, Way: vic.Way}, 0)
		vicPA := h.rc.SubAddr(vic.RPtr.Set, vic.RPtr.Way, vic.RPtr.Sub)
		h.evictVVictim(vic)
		// The slot is logically empty from here on; the sameset synonym
		// path below fills a different way and leaves this one free.
		vc.Invalidate(vic.Set, vic.Way)
		h.syn.Invalidated(vicPA)
		h.victimInsert(vicPA, vic.Token)
	}

	// 2. Translate (the V-R hierarchy reaches its TLB only now).
	pa := paKnown
	if h.virtual {
		pa = h.translate(ref.PID, ref.Addr)
	}
	paSub := h.subAlign(pa)
	h.sig(SigMiss, vic.RPtr, rcache.VPtr{Cache: ci, Set: vic.Set, Way: vic.Way}, paSub)
	vhit := h.victimTake(kind, ref.Addr, paSub)

	// 3. Second-level lookup.
	rset, rway, l2hit := h.rc.Lookup(pa)
	h.st.L2.Record(kind, l2hit)
	if h.pr != nil {
		k := probe.EvL2Miss
		if l2hit {
			k = probe.EvL2Hit
		}
		h.emit(k, kind, ref.Addr, paSub, 0)
	}
	if l2hit {
		if isWrite && h.opts.Protocol == WriteInvalidate &&
			h.rc.Line(rset, rway).State == rcache.Shared {
			h.opts.Bus.Issue(bus.Txn{
				Kind: bus.Invalidate,
				From: h.id,
				Addr: h.rc.BlockAddr(rset, rway),
				Size: h.opts.L2.Block,
			})
			h.rc.Line(rset, rway).State = rcache.Private
		}
	} else {
		rset, rway = h.l2Miss(pa, isWrite)
	}
	h.rc.Touch(rset, rway)
	sub := h.rc.SubIndex(pa)
	se := h.rc.Sub(rset, rway, sub)
	rp := rptrOf(rset, rway, sub)

	// 4. Synonym resolution / data supply. The strategy seam answers "where
	// does a first-level copy live?"; the v-pointer strategy reads the
	// subentry, the reverse-lookup strategy consults its table.
	fset, fway := vic.Set, vic.Way
	syn := SynNone
	loc, resident := h.syn.Locate(se, paSub)
	switch {
	case se.Buffer:
		// The modified copy sits in the write buffer (often it was the very
		// victim evicted in step 1 — the paper's sameset case, where the
		// pending write-back is canceled). Reattach it under the new
		// virtual address.
		e, ok := h.wb.Cancel(rp)
		if !ok {
			panic("core: buffer bit set but no buffered entry")
		}
		se.Buffer = false
		vc.Install(fset, fway, la, ref.PID, rp, true, e.Token)
		se.Inclusion = true
		se.VPtr = rcache.VPtr{Cache: ci, Set: fset, Way: fway}
		h.syn.Installed(paSub, se.VPtr)
		syn = SynBuffered
		h.sig(SigSameSet, rp, se.VPtr, paSub)
	case resident:
		old := loc
		if old.Cache == ci && old.Set == fset {
			// Same set: retag the existing line in place; the slot freed in
			// step 1 stays free. The copy's location is unchanged, so the
			// strategy needs no notification.
			vc.Retag(old.Set, old.Way, la, ref.PID)
			fset, fway = old.Set, old.Way
			syn = SynSameSet
			h.sig(SigSameSet, rp, old, paSub)
		} else {
			// Different set (or the other cache of a split pair): move the
			// copy, carrying its dirty state and data.
			src := h.vcs[old.Cache]
			sl := src.Line(old.Set, old.Way)
			dirty, token := sl.Dirty, sl.Token
			src.Invalidate(old.Set, old.Way)
			vc.Install(fset, fway, la, ref.PID, rp, dirty, token)
			se.VPtr = rcache.VPtr{Cache: ci, Set: fset, Way: fway}
			h.syn.Installed(paSub, se.VPtr)
			if old.Cache != ci {
				syn = SynCross
			} else {
				syn = SynMove
			}
			h.sig(SigMove, rp, se.VPtr, paSub)
		}
	default:
		vc.Install(fset, fway, la, ref.PID, rp, false, se.Token)
		se.Inclusion = true
		se.VPtr = rcache.VPtr{Cache: ci, Set: fset, Way: fway}
		h.syn.Installed(paSub, se.VPtr)
		if vic.Present && vic.RPtr == rp {
			// The clean victim evicted in step 1 was the synonym itself
			// (the common direct-mapped sameset case): the R-cache just
			// sets the inclusion bit back and retags — no data transfer.
			syn = SynSameSet
			h.sig(SigSameSet, rp, se.VPtr, paSub)
		} else {
			// No first-level copy anywhere: plain data supply.
			h.sig(SigDataSupply, rp, se.VPtr, paSub)
		}
	}
	h.st.Synonyms[syn]++
	if syn != SynNone {
		h.emit(synEvent[syn], kind, ref.Addr, paSub, 0)
	}

	// 5. Perform the write.
	token := vc.Line(fset, fway).Token
	if isWrite {
		token = h.opts.Tokens.Next()
		h.performWrite(vc, fset, fway, rp, token)
	}
	return AccessResult{
		Kind:      kind,
		L2Hit:     l2hit,
		VictimHit: vhit,
		Synonym:   syn,
		PA:        paSub,
		Token:     token,
	}
}

// evictVVictim disposes of a first-level victim: a clean block just clears
// its inclusion bit; a dirty block moves to the write buffer and sets the
// buffer bit (the paper's read/write-miss replacement protocol).
func (h *VR) evictVVictim(vic vcache.Victim) {
	se := h.rc.Sub(vic.RPtr.Set, vic.RPtr.Way, vic.RPtr.Sub)
	if !se.Inclusion {
		panic(fmt.Sprintf("core: victim %v has no inclusion bit", vic.RPtr))
	}
	se.Inclusion = false
	se.VPtr = rcache.VPtr{}
	if !vic.Dirty {
		return
	}
	h.st.WriteBacks++
	h.st.WriteBackIntervals.Event()
	var aux uint64
	if vic.SV {
		h.st.SwappedWriteBacks++
		aux = probe.WBSwapped
	}
	h.emit(probe.EvWriteBack, 0, 0, h.rc.SubAddr(vic.RPtr.Set, vic.RPtr.Way, vic.RPtr.Sub), aux)
	se.Buffer = true
	if evicted, forced := h.wb.Push(vic.RPtr, vic.Token); forced {
		h.st.BufferStalls++
		h.emit(probe.EvWBStall, 0, 0, 0, 0)
		h.drainEntry(evicted)
		// The buffer was full: the processor waits for the forced drain
		// to clear the bus before its own miss can proceed.
		h.cy.WBStall()
	}
}

// l2Miss handles a second-level miss: victim disposal (relaxed inclusion),
// the bus transaction, and the fill. It returns the line's location.
func (h *VR) l2Miss(pa addr.PAddr, isWrite bool) (set, way int) {
	vic := h.rc.PickVictim(pa)
	if vic.Present {
		h.evictRVictim(vic)
	}
	txn := bus.Txn{
		Kind: bus.Read,
		From: h.id,
		Addr: addr.PAddr(uint64(pa) &^ (h.opts.L2.Block - 1)),
		Size: h.opts.L2.Block,
	}
	if isWrite && h.opts.Protocol == WriteInvalidate {
		txn.Kind = bus.ReadMod
	}
	snoop := h.opts.Bus.Issue(txn)
	state := rcache.Private
	if txn.Kind == bus.Read && snoop.Shared {
		state = rcache.Shared
	}
	l := h.rc.Install(vic.Set, vic.Way, pa, state)
	for i := range l.Subs {
		l.Subs[i].Token = h.opts.Mem.Read(h.rc.SubAddr(vic.Set, vic.Way, i))
	}
	return vic.Set, vic.Way
}

// evictRVictim writes back and invalidates a second-level victim,
// invalidating any first-level children (the paper's relaxed-inclusion
// fallback) and draining any buffered write-backs it owns.
func (h *VR) evictRVictim(vic rcache.Victim) {
	l := h.rc.Line(vic.Set, vic.Way)
	// Parked victims live under the second level; when their line leaves,
	// so do they (the VC-subset-of-L2 containment invariant).
	h.vic.InvalidateRange(h.rc.BlockAddr(vic.Set, vic.Way), h.opts.L2.Block)
	for i := range l.Subs {
		se := &l.Subs[i]
		subAddr := h.rc.SubAddr(vic.Set, vic.Way, i)
		switch {
		case se.Buffer:
			e, ok := h.wb.Cancel(rptrOf(vic.Set, vic.Way, i))
			if !ok {
				panic("core: buffer bit set but no buffered entry at L2 eviction")
			}
			h.opts.Mem.Write(subAddr, e.Token)
			h.cy.BusWrite()
		case se.Inclusion:
			child := h.vcs[se.VPtr.Cache]
			if se.VDirty {
				h.opts.Mem.Write(subAddr, child.Line(se.VPtr.Set, se.VPtr.Way).Token)
				h.cy.BusWrite()
			} else if se.RDirty {
				h.opts.Mem.Write(subAddr, se.Token)
				h.cy.BusWrite()
			}
			child.Invalidate(se.VPtr.Set, se.VPtr.Way)
			h.syn.Invalidated(subAddr)
			h.st.InclusionInvals++
			h.st.Coherence.Record(stats.MsgInclusionInvalidate)
			h.emit(probe.EvInclusionInval, 0, 0, subAddr, 0)
			h.sig(SigInvalidate, rptrOf(vic.Set, vic.Way, i), se.VPtr, subAddr)
		case se.RDirty:
			h.opts.Mem.Write(subAddr, se.Token)
			h.cy.BusWrite()
		}
	}
	h.rc.Invalidate(vic.Set, vic.Way)
}

// drainDue writes aged-out buffer entries back into the R-cache.
func (h *VR) drainDue() {
	h.wb.Tick()
	for {
		e, ok := h.wb.PopDue()
		if !ok {
			break
		}
		h.drainEntry(e)
	}
}

// drainEntry completes one write-back(r-pointer): the buffered data lands
// in the R-cache, whose copy becomes the dirty one.
func (h *VR) drainEntry(e writebuf.Entry) {
	se := h.rc.Sub(e.RPtr.Set, e.RPtr.Way, e.RPtr.Sub)
	if !se.Buffer {
		panic(fmt.Sprintf("core: draining %v without buffer bit", e.RPtr))
	}
	se.Buffer = false
	se.VDirty = false
	se.RDirty = true
	se.Token = e.Token
	h.sig(SigWriteBack, e.RPtr, rcache.VPtr{}, h.rc.SubAddr(e.RPtr.Set, e.RPtr.Way, e.RPtr.Sub))
	// The drain occupies the bus but overlaps with subsequent hits: no
	// processor time is charged here.
	h.cy.BusWrite()
}

// Drain implements Hierarchy.
func (h *VR) Drain() {
	for _, e := range h.wb.DrainAll() {
		h.drainEntry(e)
	}
}

// contextSwitch implements the paper's lazy flush: mark every live line
// swapped-valid and write nothing back. With EagerCtxFlush the ablation
// behaviour — write back every dirty line and invalidate everything now —
// runs instead. The R-R baseline's physically-addressed L1 needs neither.
func (h *VR) contextSwitch(newPID addr.PID) {
	h.st.CtxSwitches++
	h.pid = newPID
	if !h.virtual || h.opts.PIDTagged {
		// Physically-addressed or PID-tagged first levels keep their
		// contents across switches.
		h.emit(probe.EvCtxSwitch, 0, 0, 0, probe.CtxNone)
		return
	}
	if !h.opts.EagerCtxFlush {
		h.emit(probe.EvCtxSwitch, 0, 0, 0, probe.CtxLazy)
		for _, vc := range h.vcs {
			vc.SwapOut()
		}
		return
	}
	h.emit(probe.EvCtxSwitch, 0, 0, 0, probe.CtxEager)
	for _, vc := range h.vcs {
		vc.ForEachPresent(func(set, way int, l *vcache.Line) {
			se := h.rc.Sub(l.RPtr.Set, l.RPtr.Way, l.RPtr.Sub)
			subAddr := h.rc.SubAddr(l.RPtr.Set, l.RPtr.Way, l.RPtr.Sub)
			if l.Dirty {
				se.Token = l.Token
				se.RDirty = true
				h.st.EagerFlushWriteBacks++
				h.st.WriteBacks++
				h.st.WriteBackIntervals.Event()
				h.emit(probe.EvWriteBack, 0, 0, subAddr, probe.WBEager)
			}
			se.VDirty = false
			se.Inclusion = false
			se.VPtr = rcache.VPtr{}
			vc.Invalidate(set, way)
			h.syn.Invalidated(subAddr)
		})
	}
}

// statsKind aliases the stats package's access kind for brevity in
// signatures.
type statsKind = stats.AccessKind

// synEvent maps a synonym resolution (other than SynNone) to its probe
// event kind.
var synEvent = [...]probe.Kind{
	SynSameSet:  probe.EvSynSameSet,
	SynMove:     probe.EvSynMove,
	SynCross:    probe.EvSynCross,
	SynBuffered: probe.EvSynBuffered,
}
