// Package core implements the paper's contribution: the two-level
// virtual-real (V-R) cache hierarchy controller of Section 3, together with
// the physically-addressed (R-R) organizations the paper evaluates against.
//
// A Hierarchy is one processor's private two-level cache attached to the
// shared bus. Three organizations are provided:
//
//   - NewVR: virtually-addressed L1 over a physically-addressed L2 with
//     inclusion, synonym resolution through the L2's v-pointers, lazy
//     swapped-valid context-switch flushing, and coherence shielding.
//   - NewRR: physically-addressed L1 (behind a per-reference TLB) over the
//     same L2 with inclusion — the paper's R-R (incl) baseline.
//   - NewRRNoInclusion: physically-addressed two-level hierarchy without
//     inclusion, where every remote bus transaction must probe the L1 —
//     the paper's R-R (no incl) baseline.
//
// The simulator is reference-serial: references are applied one at a time
// in global trace order, and a bus transaction runs all other hierarchies'
// snoop handlers synchronously. Each processor write stamps a fresh token;
// reads report the token they observed so the system layer can check
// sequential consistency against an oracle.
package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/audit"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/cycles"
	"repro/internal/memory"
	"repro/internal/probe"
	"repro/internal/rcache"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
)

// TokenSource hands out unique, monotonically increasing write tokens. One
// source is shared by every hierarchy in a system so that "newest write"
// is globally well defined.
type TokenSource struct{ n uint64 }

// Next returns a fresh token (never zero).
func (t *TokenSource) Next() uint64 {
	t.n++
	return t.n
}

// Last returns the most recently issued token.
func (t *TokenSource) Last() uint64 { return t.n }

// RestoreLast rewinds (or advances) the source so that Last() == n
// (checkpoint support).
func (t *TokenSource) RestoreLast(n uint64) { t.n = n }

// SynonymKind classifies how a first-level miss found its data already at
// the first level under another address.
type SynonymKind int

// Synonym resolution outcomes.
const (
	SynNone     SynonymKind = iota
	SynSameSet              // live copy in the same V set: retagged in place
	SynMove                 // live copy in a different set: moved
	SynCross                // copy in the other cache of a split pair: moved
	SynBuffered             // modified copy reattached from the write buffer
)

// String returns the outcome's label.
func (k SynonymKind) String() string {
	switch k {
	case SynNone:
		return "none"
	case SynSameSet:
		return "sameset"
	case SynMove:
		return "move"
	case SynCross:
		return "cross-cache"
	case SynBuffered:
		return "buffer-reattach"
	default:
		return fmt.Sprintf("SynonymKind(%d)", int(k))
	}
}

// AccessResult reports what one memory reference did.
type AccessResult struct {
	CtxSwitch bool             // the record was a context switch, nothing else applies
	Kind      stats.AccessKind //
	L1Hit     bool             //
	L2Hit     bool             // meaningful only when !L1Hit
	VictimHit bool             // the miss was served by the victim cache (timing only)
	Synonym   SynonymKind      //
	PA        addr.PAddr       // physical address of the referenced L1 block
	Token     uint64           // token read (loads) or written (stores)
}

// Level returns 1, 2 or 3 for L1 hit, L2 hit, or memory.
func (r AccessResult) Level() int {
	switch {
	case r.L1Hit:
		return 1
	case r.L2Hit:
		return 2
	default:
		return 3
	}
}

// Stats aggregates one hierarchy's counters.
type Stats struct {
	L1, L2    stats.LevelStats     // hit ratios by access kind
	Coherence stats.CoherenceStats // messages reaching the first level
	Synonyms  [5]uint64            // indexed by SynonymKind
	TLB       struct{ Hits, Misses uint64 }

	WriteBacks           uint64 // dirty victims leaving L1
	SwappedWriteBacks    uint64 // of which swapped-valid
	CtxSwitches          uint64
	InclusionInvals      uint64 // L1 children invalidated by an L2 replacement
	BufferStalls         uint64 // write-buffer pushes that found the buffer full
	EagerFlushWriteBacks uint64 // write-backs clustered at switch time (ablation)
	MemWritesDirect      uint64 // L1 write-backs bypassing L2 (no-inclusion only)
	VictimHits           uint64 // first-level misses served by the victim cache
	VictimInserts        uint64 // first-level victims parked in the victim cache
	RLTEvictions         uint64 // L1 lines evicted by reverse-lookup-table capacity

	// WriteIntervals tracks distances between processor writes (the paper's
	// Table 2 — the downward write stream of a write-through L1).
	WriteIntervals *stats.IntervalTracker
	// WriteBackIntervals tracks distances between write-backs leaving the
	// L1 under write-back + swapped-valid (Table 3).
	WriteBackIntervals *stats.IntervalTracker
}

func newStats() *Stats {
	return &Stats{
		WriteIntervals:     stats.NewIntervalTracker("inter-write", 10),
		WriteBackIntervals: stats.NewIntervalTracker("inter-write-back", 10),
	}
}

// Reset zeroes every counter and starts fresh interval trackers, so
// steady-state behaviour can be measured without cold-start effects.
func (s *Stats) Reset() {
	*s = Stats{
		WriteIntervals:     stats.NewIntervalTracker("inter-write", 10),
		WriteBackIntervals: stats.NewIntervalTracker("inter-write-back", 10),
	}
}

// SynonymTotal returns the number of synonym resolutions of all kinds.
func (s *Stats) SynonymTotal() uint64 {
	var t uint64
	for _, v := range s.Synonyms {
		t += v
	}
	return t
}

// Hierarchy is one processor's two-level cache organization.
type Hierarchy interface {
	// Access applies one trace record for this hierarchy's processor.
	Access(ref trace.Ref) AccessResult
	// SnoopBus handles a bus transaction issued by another hierarchy.
	SnoopBus(t bus.Txn) bus.SnoopResult
	// Drain empties the write buffer into the second level (end of run).
	Drain()
	// Stats exposes the hierarchy's counters.
	Stats() *Stats
	// Check validates internal invariants (inclusion, pointer round-trips,
	// buffer-bit consistency); test harnesses call it after every access.
	Check() error
	// Snapshot copies the hierarchy's structural state for the audit
	// layer's invariant checks and diffable JSON dumps.
	Snapshot() *audit.CPUSnapshot
	// ExportState copies the hierarchy's complete state — tags, stamps,
	// recency clocks, buffers and counters — for checkpointing. Unlike
	// Snapshot it loses nothing: a restore continues byte-identically.
	ExportState() *HierarchyState
	// RestoreState replaces the hierarchy's state with a previously
	// exported one. The receiving hierarchy must have the same geometry
	// and organization as the exporter.
	RestoreState(*HierarchyState) error
}

// Protocol selects the bus coherence protocol.
type Protocol int

// Protocols.
const (
	// WriteInvalidate is the paper's protocol: remote copies are
	// invalidated before a shared block is modified.
	WriteInvalidate Protocol = iota
	// WriteUpdate broadcasts the new data instead (Firefly/Dragon style):
	// shared writes go through to the bus and memory, and remote copies —
	// including first-level children, reached through the v-pointers — are
	// refreshed in place. The paper notes its organization "will also work
	// for other protocols"; this option demonstrates it.
	WriteUpdate
)

// String returns the protocol name.
func (p Protocol) String() string {
	switch p {
	case WriteInvalidate:
		return "write-invalidate"
	case WriteUpdate:
		return "write-update"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Options configures a hierarchy.
type Options struct {
	MMU *vm.MMU
	Bus *bus.Bus
	Mem *memory.Memory

	L1    cache.Geometry // total first-level capacity (split halves it per side)
	Split bool           // split L1 into equal I and D caches
	L2    cache.Geometry

	TLBEntries int // default 64
	TLBAssoc   int // default 2

	// L1Policy and L2Policy select each level's replacement policy (the
	// zero value is LRU, the paper's choice). PolicySeed seeds Random
	// replacement deterministically; each cache derives its own stream
	// from it, so L1 and L2 victim choices stay uncorrelated.
	L1Policy   cache.Policy
	L2Policy   cache.Policy
	PolicySeed int64

	WriteBufDepth   int    // default 1 (the paper's single swapped write-back buffer)
	WriteBufLatency uint64 // references until a buffered write-back drains; default 4

	// EagerCtxFlush disables the swapped-valid scheme: context switches
	// write every dirty line back immediately (the ablation the paper's
	// Table 3 argues against). V-R only.
	EagerCtxFlush bool

	// PIDTagged widens every V-cache tag with the process identifier — the
	// Section 2 alternative to flushing on context switches. V-R only;
	// mutually exclusive with EagerCtxFlush.
	PIDTagged bool

	// Protocol selects the coherence protocol (default WriteInvalidate).
	Protocol Protocol

	// NaiveL2Replacement disables the relaxed-inclusion victim preference
	// (ablation: how many inclusion invalidations the preference avoids).
	NaiveL2Replacement bool

	// L1WriteThrough switches the first level to the write-through,
	// no-write-allocate policy the paper's Section 2 examines and rejects:
	// every write goes down to the R-cache (through a bounded buffer whose
	// stalls are counted), first-level lines are never dirty, and write
	// misses do not allocate. Incompatible with WriteUpdate.
	L1WriteThrough bool

	// VictimEntries, when positive, inserts a small fully-associative
	// victim cache (Jouppi style) between the levels: first-level victims
	// are parked there and a first-level miss that finds its block parked
	// is charged TVictim instead of the second-level time. Purely a timing
	// layer — the data a reference observes never changes. Any
	// organization may enable it.
	VictimEntries int

	// RLTEntries, when positive, replaces the paper's per-subentry
	// v-pointer synonym mechanism with a bounded reverse-lookup table of
	// that many entries (internal/rlt): smaller SRAM state, but table
	// capacity evictions force first-level lines out. V-R only. RLTAssoc
	// selects the table's associativity (0: rlt.DefaultAssoc).
	RLTEntries int
	RLTAssoc   int

	// Tracer, when set, observes every V<->R interface signal of the
	// paper's Table 4 (see SignalKind).
	Tracer Tracer

	// Probe, when set, receives a typed event for every mechanism the
	// hierarchy exercises (hits, misses, synonyms, write-buffer traffic,
	// coherence messages, ...). Nil disables emission entirely; the hot
	// paths then pay only a nil check.
	Probe *probe.Probe

	// Cycles, when set, charges the hierarchy's TLB-miss penalties,
	// write-back bus occupancy and stalls to the cycle engine (the system
	// layer charges the per-reference service time). Nil disables timing;
	// the hot paths then pay only nil checks.
	Cycles *cycles.Engine

	Tokens *TokenSource
}

// mustRCache builds a second-level cache from the options' L2 policy, with
// its Random-replacement stream offset away from the first level's.
func mustRCache(o Options) *rcache.RCache {
	r, err := rcache.NewWithPolicy(o.L2, o.L1.Block, o.L2Policy, o.PolicySeed+100)
	if err != nil {
		panic(err)
	}
	return r
}

func (o *Options) applyDefaults() {
	if o.TLBEntries == 0 {
		o.TLBEntries = 64
	}
	if o.TLBAssoc == 0 {
		o.TLBAssoc = 2
	}
	if o.WriteBufDepth == 0 {
		o.WriteBufDepth = 1
	}
	if o.WriteBufLatency == 0 {
		o.WriteBufLatency = 4
	}
	if o.Tokens == nil {
		o.Tokens = &TokenSource{}
	}
}

func (o *Options) validate() error {
	if o.MMU == nil || o.Bus == nil || o.Mem == nil {
		return fmt.Errorf("core: MMU, Bus and Mem are required")
	}
	if err := o.L1.Validate(); err != nil {
		return fmt.Errorf("core: L1: %w", err)
	}
	if err := o.L2.Validate(); err != nil {
		return fmt.Errorf("core: L2: %w", err)
	}
	if o.L2.Block < o.L1.Block {
		return fmt.Errorf("core: L2 block (%d) smaller than L1 block (%d)", o.L2.Block, o.L1.Block)
	}
	if o.Mem.Granularity() != o.L1.Block {
		return fmt.Errorf("core: memory granularity %d != L1 block %d",
			o.Mem.Granularity(), o.L1.Block)
	}
	if o.Split {
		half := o.L1
		half.Size /= 2
		if err := half.Validate(); err != nil {
			return fmt.Errorf("core: split L1 half: %w", err)
		}
	}
	if o.VictimEntries < 0 {
		return fmt.Errorf("core: VictimEntries must be non-negative, got %d", o.VictimEntries)
	}
	if o.RLTEntries < 0 {
		return fmt.Errorf("core: RLTEntries must be non-negative, got %d", o.RLTEntries)
	}
	return nil
}

// sideGeoms returns the geometries of the first-level caches: one unified,
// or the D and I halves.
func (o *Options) sideGeoms() []cache.Geometry {
	if !o.Split {
		return []cache.Geometry{o.L1}
	}
	half := o.L1
	half.Size /= 2
	return []cache.Geometry{half, half}
}

// statKind maps a trace record kind to its statistics class.
func statKind(k trace.Kind) stats.AccessKind {
	switch k {
	case trace.IFetch:
		return stats.KindIFetch
	case trace.Read:
		return stats.KindRead
	default:
		return stats.KindWrite
	}
}
