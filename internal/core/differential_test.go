package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/memory"
	"repro/internal/trace"
	"repro/internal/vm"
)

// driveBoth runs the same reference sequence through two hierarchies built
// on separate machines and returns their stats.
func driveBoth(t *testing.T, mkA, mkB mkFunc, tweak func(*Options), refs []trace.Ref) (a, b *Stats) {
	t.Helper()
	run := func(mk mkFunc) *Stats {
		r := &rig{
			t:      t,
			mmu:    vm.MustNew(testPageSize),
			bus:    bus.New(),
			mem:    memory.MustNew(16),
			tokens: &TokenSource{},
			oracle: map[addr.PAddr]uint64{},
		}
		o := baseOptions(r)
		if tweak != nil {
			tweak(&o)
		}
		h, err := mk(o)
		if err != nil {
			t.Fatal(err)
		}
		r.hs = []Hierarchy{h}
		for _, ref := range refs {
			r.access(0, ref.Kind, ref.PID, ref.Addr)
		}
		return h.Stats()
	}
	return run(mkA), run(mkB)
}

// randomRefs builds a single-process reference stream with no context
// switches.
func randomRefs(seed int64, n int) []trace.Ref {
	rng := rand.New(rand.NewSource(seed))
	refs := make([]trace.Ref, 0, n)
	for i := 0; i < n; i++ {
		kinds := []trace.Kind{trace.Read, trace.Read, trace.IFetch, trace.Write}
		refs = append(refs, trace.Ref{
			CPU:  0,
			Kind: kinds[rng.Intn(len(kinds))],
			PID:  1,
			Addr: addr.VAddr(rng.Intn(2048)) &^ 3,
		})
	}
	return refs
}

// When the first level is no larger than a page (times associativity), the
// virtual and physical index bits coincide, so with a single process and
// no context switches the V-R and R-R organizations must produce exactly
// the same hit/miss sequence.
func TestVREqualsRRWhenIndexBitsFitInPage(t *testing.T) {
	// testPageSize is 64; a 64B direct-mapped L1 satisfies the condition.
	tweak := func(o *Options) {
		o.L1 = cache.Geometry{Size: 64, Block: 16, Assoc: 1}
	}
	refs := randomRefs(11, 4000)
	vr, rr := driveBoth(t, vrMk, rrMk, tweak, refs)
	if vr.L1.Overall() != rr.L1.Overall() {
		t.Errorf("L1 diverged: VR %+v, RR %+v", vr.L1.Overall(), rr.L1.Overall())
	}
	if vr.L2.Overall() != rr.L2.Overall() {
		t.Errorf("L2 diverged: VR %+v, RR %+v", vr.L2.Overall(), rr.L2.Overall())
	}
	if vr.WriteBacks != rr.WriteBacks {
		t.Errorf("write-backs diverged: %d vs %d", vr.WriteBacks, rr.WriteBacks)
	}
}

// The same equivalence holds per-seed as a property.
func TestVREqualsRRProperty(t *testing.T) {
	f := func(seed int64) bool {
		tweak := func(o *Options) {
			o.L1 = cache.Geometry{Size: 64, Block: 16, Assoc: 1}
		}
		refs := randomRefs(seed, 800)
		vr, rr := driveBoth(t, vrMk, rrMk, tweak, refs)
		return vr.L1.Overall() == rr.L1.Overall() && vr.L2.Overall() == rr.L2.Overall()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// With a single CPU nothing is ever shared, so the write-update and
// write-invalidate protocols must behave identically.
func TestProtocolsEquivalentUniprocessor(t *testing.T) {
	refs := randomRefs(23, 4000)
	inv, upd := driveBoth(t, vrMk, updMk, nil, refs)
	if inv.L1.Overall() != upd.L1.Overall() || inv.L2.Overall() != upd.L2.Overall() {
		t.Error("protocols diverged on a uniprocessor")
	}
	if inv.WriteBacks != upd.WriteBacks {
		t.Errorf("write-backs diverged: %d vs %d", inv.WriteBacks, upd.WriteBacks)
	}
}

// Without context switches the PID-tagged V-cache matches the plain one
// exactly (the tag widening changes nothing for a single process).
func TestPIDTagsEquivalentWithoutSwitches(t *testing.T) {
	refs := randomRefs(37, 4000)
	plain, pid := driveBoth(t, vrMk, pidMk, nil, refs)
	if plain.L1.Overall() != pid.L1.Overall() || plain.L2.Overall() != pid.L2.Overall() {
		t.Error("PID tagging changed single-process behaviour")
	}
}

// Determinism: identical machines fed identical references produce
// identical statistics, including coherence counters.
func TestDeterminism(t *testing.T) {
	refs := randomRefs(51, 3000)
	a, b := driveBoth(t, vrMk, vrMk, nil, refs)
	if *aggOf(a) != *aggOf(b) {
		t.Error("two identical runs diverged")
	}
}

// aggOf reduces a Stats to a comparable summary.
type statSummary struct {
	l1h, l1t, l2h, l2t uint64
	wbs, syn, coh      uint64
}

func aggOf(s *Stats) *statSummary {
	o1, o2 := s.L1.Overall(), s.L2.Overall()
	return &statSummary{
		l1h: o1.Hits, l1t: o1.Total,
		l2h: o2.Hits, l2t: o2.Total,
		wbs: s.WriteBacks, syn: s.SynonymTotal(), coh: s.Coherence.Total(),
	}
}

// Geometry fuzz: random legal cache shapes, organizations and option
// combinations run a short random multiprocessor workload under full
// invariant and oracle checking.
func TestGeometryFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		l1Block := uint64(16)
		l1Assoc := 1 << rng.Intn(3)
		l1Sets := 1 << (2 + rng.Intn(3))
		l1Size := l1Block * uint64(l1Assoc) * uint64(l1Sets)
		mult := uint64(1 << rng.Intn(3)) // B2 in {16,32,64}
		l2Block := l1Block * mult
		l2Assoc := 1 << rng.Intn(3)
		l2Sets := 1 << (2 + rng.Intn(4))
		l2Size := l2Block * uint64(l2Assoc) * uint64(l2Sets)
		tweak := func(o *Options) {
			o.L1 = cache.Geometry{Size: l1Size, Block: l1Block, Assoc: l1Assoc}
			o.L2 = cache.Geometry{Size: l2Size, Block: l2Block, Assoc: l2Assoc}
			o.WriteBufDepth = 1 + rng.Intn(4)
			o.WriteBufLatency = uint64(rng.Intn(16))
		}
		var mk mkFunc
		switch rng.Intn(10) {
		case 0:
			mk = vrMk
		case 1:
			mk = rrMk
		case 2:
			mk = updMk
		case 3:
			mk = pidMk
		case 4:
			mk = wtMk
		case 5:
			vcn := 1 + rng.Intn(8)
			mk = func(o Options) (Hierarchy, error) {
				o.VictimEntries = vcn
				return NewVR(o)
			}
		case 6:
			rln := 1 << rng.Intn(5)
			mk = func(o Options) (Hierarchy, error) {
				o.RLTEntries = rln
				return NewVR(o)
			}
		case 7:
			vcn, rln := 1+rng.Intn(8), 1<<rng.Intn(5)
			mk = func(o Options) (Hierarchy, error) {
				o.VictimEntries = vcn
				o.RLTEntries = rln
				return NewVR(o)
			}
		case 8:
			vcn := 1 + rng.Intn(8)
			mk = func(o Options) (Hierarchy, error) {
				o.VictimEntries = vcn
				return NewRRNoInclusion(o)
			}
		default:
			mk = func(o Options) (Hierarchy, error) {
				o.NaiveL2Replacement = true
				return NewVR(o)
			}
		}
		cpus := 1 + rng.Intn(3)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d (L1 %d/%d-way, L2 %d/%dB/%d-way, %d cpus): panic %v",
						trial, l1Size, l1Assoc, l2Size, l2Block, l2Assoc, cpus, p)
				}
			}()
			randomWorkload(t, mk, tweak, cpus, 600, true)
		}()
	}
}
