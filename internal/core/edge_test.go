package core

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/memory"
	"repro/internal/vcache"
	"repro/internal/vm"
)

// TestHeterogeneousBlockSizesOnOneBus checks the snoop stride logic: two
// hierarchies with different L2 block sizes share data correctly (each
// walks a transaction's range in its own block strides).
func TestHeterogeneousBlockSizesOnOneBus(t *testing.T) {
	r := &rig{
		t:      t,
		mmu:    vm.MustNew(testPageSize),
		bus:    bus.New(),
		mem:    memory.MustNew(16),
		tokens: &TokenSource{},
		oracle: map[addr.PAddr]uint64{},
	}
	oA := baseOptions(r) // 32B L2 blocks
	hA, err := NewVR(oA)
	if err != nil {
		t.Fatal(err)
	}
	oB := baseOptions(r)
	oB.L2 = cache.Geometry{Size: 1024, Block: 64, Assoc: 2} // 64B L2 blocks
	hB, err := NewVR(oB)
	if err != nil {
		t.Fatal(err)
	}
	r.hs = []Hierarchy{hA, hB}

	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(2, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	// Ping-pong writes across the two; the oracle checks every read.
	for i := 0; i < 20; i++ {
		r.write(i%2, addr.PID(i%2+1), 0x040)
		r.read((i+1)%2, addr.PID((i+1)%2+1), 0x040)
	}
	// Adjacent sub-blocks of B's wide line behave independently.
	w1 := r.write(1, 2, 0x050)
	w0 := r.write(0, 1, 0x040)
	if got := r.read(1, 2, 0x050); got.Token != w1.Token {
		t.Fatalf("adjacent sub-block clobbered: %d want %d", got.Token, w1.Token)
	}
	if got := r.read(0, 1, 0x040); got.Token != w0.Token {
		t.Fatalf("first sub-block clobbered: %d want %d", got.Token, w0.Token)
	}
}

// TestWideL2BlocksSubIndependence writes each sub-block of a 4-sub L2 line
// and checks they do not interfere through eviction and refill.
func TestWideL2BlocksSubIndependence(t *testing.T) {
	r := newRig(t, 1, vrMk, func(o *Options) {
		o.L2 = cache.Geometry{Size: 1024, Block: 64, Assoc: 2} // 4 subs per line
	})
	var tokens [4]uint64
	for i := 0; i < 4; i++ {
		tokens[i] = r.write(0, 1, addr.VAddr(0x100+i*16)).Token
	}
	// Conflict-evict everything from L1 (8 sets of 16B, so 0x100+idx*16
	// lands in sets 0..3; evict with +0x80 aliases).
	for i := 0; i < 4; i++ {
		r.read(0, 1, addr.VAddr(0x300+i*16))
	}
	// Drain the write buffer.
	for i := 0; i < 12; i++ {
		r.read(0, 1, 0x400)
	}
	for i := 0; i < 4; i++ {
		got := r.read(0, 1, addr.VAddr(0x100+i*16))
		if got.Token != tokens[i] {
			t.Errorf("sub %d: read %d, want %d", i, got.Token, tokens[i])
		}
	}
}

// TestTinyTLBThrashing runs with a 2-entry TLB: translations keep getting
// evicted and refilled, and nothing else may break.
func TestTinyTLBThrashing(t *testing.T) {
	randomWorkload(t, vrMk, func(o *Options) {
		o.TLBEntries = 2
		o.TLBAssoc = 1
	}, 2, 2000, true)
}

// TestDrainMidRunThenContinue drains the write buffer in the middle of a
// run and keeps going; invariants must hold throughout.
func TestDrainMidRunThenContinue(t *testing.T) {
	r := newRig(t, 1, vrMk, func(o *Options) { o.WriteBufLatency = 1000 })
	w := r.write(0, 1, 0x000)
	r.read(0, 1, 0x080) // dirty victim parked in buffer
	r.hs[0].Drain()
	if err := r.hs[0].Check(); err != nil {
		t.Fatal(err)
	}
	got := r.read(0, 1, 0x000)
	if got.Token != w.Token {
		t.Fatalf("data lost across mid-run drain: %d want %d", got.Token, w.Token)
	}
	// Draining an empty buffer is a no-op.
	r.hs[0].Drain()
	r.hs[0].Drain()
	if err := r.hs[0].Check(); err != nil {
		t.Fatal(err)
	}
}

// TestSnoopAbsentBlock checks that transactions for blocks we do not hold
// are answered empty and disturb nothing.
func TestSnoopAbsentBlock(t *testing.T) {
	r := newRig(t, 1, vrMk, nil)
	r.read(0, 1, 0x000)
	h := r.hs[0].(*VR)
	res := h.SnoopBus(bus.Txn{Kind: bus.Read, From: 99, Addr: 0xF000, Size: 32})
	if res.Shared || res.Supplied {
		t.Error("snoop of absent block reported a copy")
	}
	res = h.SnoopBus(bus.Txn{Kind: bus.ReadMod, From: 99, Addr: 0xF000, Size: 32})
	if res.Shared {
		t.Error("RMW snoop of absent block reported a copy")
	}
	h.SnoopBus(bus.Txn{Kind: bus.Invalidate, From: 99, Addr: 0xF000, Size: 32})
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
	if h.Stats().Coherence.Total() != 0 {
		t.Error("absent-block snoops generated L1 messages")
	}
}

// TestSwitchStorm alternates context switches with single references; the
// sv machinery must stay consistent under pathological switching.
func TestSwitchStorm(t *testing.T) {
	r := newRig(t, 1, vrMk, nil)
	for i := 0; i < 100; i++ {
		pid := addr.PID(i%3 + 1)
		r.ctxSwitch(0, pid)
		if i%2 == 0 {
			r.write(0, pid, addr.VAddr(uint64(i%8)*16))
		} else {
			r.read(0, pid, addr.VAddr(uint64(i%8)*16))
		}
	}
	if r.hs[0].Stats().CtxSwitches != 100 {
		t.Error("switch count wrong")
	}
}

// TestBackToBackSwitchesNoRefs issues consecutive context switches with no
// references in between.
func TestBackToBackSwitchesNoRefs(t *testing.T) {
	r := newRig(t, 1, vrMk, nil)
	r.write(0, 1, 0x000)
	for i := 0; i < 10; i++ {
		r.ctxSwitch(0, addr.PID(i%4+1))
	}
	// The dirty line is still recoverable by its owner.
	got := r.read(0, 1, 0x000)
	if got.Token == 0 {
		t.Error("data lost across switch storm")
	}
}

// TestIFetchNeverDirty confirms instruction fetches cannot dirty lines,
// even through synonym moves.
func TestIFetchNeverDirty(t *testing.T) {
	r := newRig(t, 1, vrMk, func(o *Options) { o.Split = true })
	r.ifetch(0, 1, 0x200)
	r.ifetch(0, 1, 0x210)
	h := r.hs[0].(*VR)
	for ci, vc := range h.vcs {
		vc.ForEachPresent(func(set, way int, l *vcache.Line) {
			if l.Dirty && ci == 1 {
				t.Errorf("dirty line in I-cache at [%d.%d]", set, way)
			}
		})
	}
}

// TestUnalignedReferences exercises byte addresses that are not block
// aligned.
func TestUnalignedReferences(t *testing.T) {
	r := newRig(t, 1, vrMk, nil)
	w := r.write(0, 1, 0x107) // mid-block
	got := r.read(0, 1, 0x10F)
	if !got.L1Hit || got.Token != w.Token {
		t.Fatalf("same-block unaligned access: %+v want %d", got, w.Token)
	}
	if got := r.read(0, 1, 0x110); got.L1Hit {
		t.Error("next block should miss")
	}
}

func TestAccessorsAndReset(t *testing.T) {
	r := newRig(t, 2, vrMk, nil)
	h0 := r.hs[0].(*VR)
	h1 := r.hs[1].(*VR)
	if h0.BusID() == h1.BusID() {
		t.Error("bus ids must differ")
	}
	if !h0.Virtual() {
		t.Error("VR should report virtual")
	}
	rr := newRig(t, 1, rrMk, nil)
	if rr.hs[0].(*VR).Virtual() {
		t.Error("RR should not report virtual")
	}
	// Stats reset preserves tracker plumbing.
	r.write(0, 1, 0x100)
	st := r.hs[0].Stats()
	if st.L1.Overall().Total == 0 {
		t.Fatal("precondition")
	}
	st.Reset()
	if st.L1.Overall().Total != 0 || st.WriteIntervals == nil || st.WriteBackIntervals == nil {
		t.Error("Reset incomplete")
	}
	r.write(0, 1, 0x100) // must keep working after reset
	if st.L1.Overall().Total != 1 {
		t.Error("post-reset accounting wrong")
	}
}

func TestNoInclusionDrainNoop(t *testing.T) {
	r := newRig(t, 1, niMk, nil)
	r.write(0, 1, 0x100)
	r.hs[0].Drain() // no write buffer: must be a safe no-op
	if err := r.hs[0].Check(); err != nil {
		t.Fatal(err)
	}
}
