package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/probe"
	"repro/internal/rcache"
	"repro/internal/rlt"
)

// SynonymStrategy is the seam between the fill path and the mechanism that
// locates a first-level copy of a physical block under another virtual
// address. The paper's proposal stores a v-pointer in every R-cache
// subentry (vptrStrategy); the reverse-lookup-table alternative (Desai &
// Deshmukh, arXiv 2108.00444) keeps the pointers in a separate bounded
// table instead (rltStrategy). Strategies may only differ in *performance*
// — extra evictions, state and bus traffic — never in which data a
// reference observes; the cross-organization differential harness enforces
// that.
//
// The controller keeps the subentry v-pointers as ground truth under every
// strategy (snoops, L2 replacement and the write-through path all follow
// them); a strategy's Locate answers from its own state, and the RLT
// strategy's audit invariant asserts the two agree. What a bounded table
// changes is capacity: Installed may have to evict a reverse translation,
// and with it the first-level line it named.
type SynonymStrategy interface {
	// Name labels the strategy in reports.
	Name() string
	// Locate reports where a first-level copy of the block at pa (L1-block
	// aligned) lives. se is the block's R-cache subentry.
	Locate(se *rcache.SubEntry, pa addr.PAddr) (rcache.VPtr, bool)
	// Installed records that a first-level copy of pa now lives at vp
	// (called after the subentry's inclusion bit and v-pointer are set).
	Installed(pa addr.PAddr, vp rcache.VPtr)
	// Invalidated records that the first-level copy of pa is gone.
	Invalidated(pa addr.PAddr)
}

// vptrStrategy is the paper's synonym mechanism: the v-pointer lives in
// the R-cache subentry, so Locate just reads it and the notifications are
// free. This is the default, and byte-identical to the pre-seam behaviour.
type vptrStrategy struct{}

func (vptrStrategy) Name() string { return "vptr" }

func (vptrStrategy) Locate(se *rcache.SubEntry, _ addr.PAddr) (rcache.VPtr, bool) {
	return se.VPtr, se.Inclusion
}

func (vptrStrategy) Installed(addr.PAddr, rcache.VPtr) {}

func (vptrStrategy) Invalidated(addr.PAddr) {}

// rltStrategy answers reverse lookups from a bounded set-associative table
// that mirrors the first level: one entry per present line, inserted on
// fill and removed on invalidation. Because the table is smaller than the
// first level can be, an insert may evict a reverse translation — and the
// first-level line it named must then be evicted too (written back to the
// R-cache first if dirty), since nothing can find it any more. Those
// forced evictions are the strategy's measurable cost.
type rltStrategy struct {
	h *VR
}

func (s *rltStrategy) Name() string { return "rlt" }

func (s *rltStrategy) Locate(se *rcache.SubEntry, pa addr.PAddr) (rcache.VPtr, bool) {
	vp, ok := s.h.rlt.Lookup(pa)
	// The table mirrors the first level exactly, so it must agree with the
	// subentry ground truth; a disagreement is a simulator bug, not a
	// modelled hardware state.
	if ok != se.Inclusion || (ok && vp != se.VPtr) {
		panic(fmt.Sprintf("core: rlt disagrees with subentry at %#x: table %v,%v subentry %v,%v",
			uint64(pa), vp, ok, se.VPtr, se.Inclusion))
	}
	return vp, ok
}

func (s *rltStrategy) Installed(pa addr.PAddr, vp rcache.VPtr) {
	if ev, evicted := s.h.rlt.Insert(pa, vp); evicted {
		s.h.rltEvict(ev)
	}
}

func (s *rltStrategy) Invalidated(pa addr.PAddr) {
	s.h.rlt.Remove(pa)
}

// rltEvict disposes of the first-level line whose reverse translation was
// just evicted from the table. The line is still perfectly coherent — only
// unfindable — so a dirty copy is written back into the R-cache (the
// eager-flush data path: the R-cache copy becomes the dirty one) and the
// line is invalidated. The entry itself already left the table.
func (h *VR) rltEvict(e rlt.Entry) {
	child := h.vcs[e.VP.Cache]
	l := child.Line(e.VP.Set, e.VP.Way)
	rp := l.RPtr
	se := h.rc.Sub(rp.Set, rp.Way, rp.Sub)
	if !se.Inclusion || se.VPtr != e.VP {
		panic(fmt.Sprintf("core: rlt evicted %v -> %v but subentry says %v,%v",
			uint64(e.PA), e.VP, se.VPtr, se.Inclusion))
	}
	se.Inclusion = false
	se.VPtr = rcache.VPtr{}
	if l.Dirty {
		se.Token = l.Token
		se.RDirty = true
		h.st.WriteBacks++
		h.st.WriteBackIntervals.Event()
		h.emit(probe.EvWriteBack, 0, 0, e.PA, probe.WBRLT)
		// The write-back occupies the bus like any background write.
		h.cy.BusWrite()
	}
	se.VDirty = false
	child.Invalidate(e.VP.Set, e.VP.Way)
	h.st.RLTEvictions++
	h.emit(probe.EvRLTEvict, 0, 0, e.PA, 0)
	h.sig(SigInvalidate, rp, e.VP, e.PA)
}

// victimInsert parks a first-level victim in the victim cache (when one is
// configured), with its counter and probe event.
func (h *VR) victimInsert(pa addr.PAddr, token uint64) {
	if h.vic == nil {
		return
	}
	h.vic.Insert(pa, token)
	h.st.VictimInserts++
	h.emit(probe.EvVictimInsert, 0, 0, pa, token)
}

// victimTake consults the victim cache on a first-level miss; a hit removes
// the entry (the block moves back up, keeping the levels exclusive) and is
// charged TVictim instead of t2 by the system layer.
func (h *VR) victimTake(kind statsKind, va addr.VAddr, pa addr.PAddr) bool {
	if h.vic == nil {
		return false
	}
	token, ok := h.vic.Take(pa)
	if !ok {
		return false
	}
	h.st.VictimHits++
	h.emit(probe.EvVictimHit, kind, va, pa, token)
	return true
}
