package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/rcache"
	"repro/internal/rlt"
	"repro/internal/vcache"
)

// Check validates the hierarchy's structural invariants:
//
//  1. Inclusion: every present first-level line has a valid r-pointer to a
//     present R-cache line whose matching subentry has the inclusion bit
//     set and a v-pointer that points straight back.
//  2. Uniqueness: at most one first-level copy of any physical block exists
//     across the (possibly split) first level — the paper's synonym
//     guarantee.
//  3. Buffer bits and write-buffer contents are in bijection.
//  4. VDirty is set exactly when a first-level or buffered copy is dirty;
//     dangling VDirty without a child is impossible.
//  5. In the V-R organization, the r-pointer agrees with the MMU: the
//     line's virtual base translates to the subentry's physical address.
//
// It runs in O(cache size) and is meant to be called after every reference
// in tests.
func (h *VR) Check() error {
	children := 0
	for ci, vc := range h.vcs {
		var err error
		vc.ForEachPresent(func(set, way int, l *vcache.Line) {
			if err != nil {
				return
			}
			children++
			rp := l.RPtr
			if !h.rc.Present(rp.Set, rp.Way) {
				err = fmt.Errorf("V%d[%d.%d] parent %v not present", ci, set, way, rp)
				return
			}
			se := h.rc.Sub(rp.Set, rp.Way, rp.Sub)
			if !se.Inclusion {
				err = fmt.Errorf("V%d[%d.%d] parent %v inclusion clear", ci, set, way, rp)
				return
			}
			want := rcache.VPtr{Cache: ci, Set: set, Way: way}
			if se.VPtr != want {
				err = fmt.Errorf("V%d[%d.%d] parent %v v-pointer %v, want %v",
					ci, set, way, rp, se.VPtr, want)
				return
			}
			if se.VDirty != l.Dirty {
				err = fmt.Errorf("V%d[%d.%d] dirty %v but parent VDirty %v",
					ci, set, way, l.Dirty, se.VDirty)
				return
			}
			if se.Buffer {
				err = fmt.Errorf("V%d[%d.%d] parent %v has both inclusion and buffer bits",
					ci, set, way, rp)
				return
			}
			if h.virtual {
				pa, ok := h.opts.MMU.Lookup(l.PID, l.VBase)
				if !ok {
					err = fmt.Errorf("V%d[%d.%d] vbase %#x pid %d unmapped",
						ci, set, way, uint64(l.VBase), l.PID)
					return
				}
				if got := h.rc.SubAddr(rp.Set, rp.Way, rp.Sub); h.subAlign(pa) != got {
					err = fmt.Errorf("V%d[%d.%d] vbase %#x translates to %#x but r-pointer says %#x",
						ci, set, way, uint64(l.VBase), uint64(h.subAlign(pa)), uint64(got))
					return
				}
			}
		})
		if err != nil {
			return err
		}
	}

	inclusionBits := 0
	bufferBits := 0
	var err error
	h.rc.ForEachValid(func(set, way int, l *rcache.Line) {
		if err != nil {
			return
		}
		for i := range l.Subs {
			se := &l.Subs[i]
			if se.Inclusion {
				inclusionBits++
				child := h.vcs[se.VPtr.Cache]
				if !child.Present(se.VPtr.Set, se.VPtr.Way) {
					err = fmt.Errorf("R[%d.%d.%d] v-pointer %v to absent line", set, way, i, se.VPtr)
					return
				}
				cl := child.Line(se.VPtr.Set, se.VPtr.Way)
				if cl.RPtr != rptrOf(set, way, i) {
					err = fmt.Errorf("R[%d.%d.%d] child r-pointer %v does not round-trip",
						set, way, i, cl.RPtr)
					return
				}
			}
			if se.Buffer {
				bufferBits++
				if _, found := h.wb.Find(rptrOf(set, way, i)); !found {
					err = fmt.Errorf("R[%d.%d.%d] buffer bit set but nothing buffered", set, way, i)
					return
				}
				if !se.VDirty {
					err = fmt.Errorf("R[%d.%d.%d] buffered but VDirty clear", set, way, i)
					return
				}
			}
			if se.VDirty && !se.Inclusion && !se.Buffer {
				err = fmt.Errorf("R[%d.%d.%d] VDirty without child or buffer", set, way, i)
				return
			}
		}
	})
	if err != nil {
		return err
	}
	if inclusionBits != children {
		return fmt.Errorf("%d inclusion bits but %d first-level lines", inclusionBits, children)
	}
	if bufferBits != h.wb.Len() {
		return fmt.Errorf("%d buffer bits but %d buffered entries", bufferBits, h.wb.Len())
	}
	if err := h.checkVictim(); err != nil {
		return err
	}
	return h.checkRLT(children)
}

// checkVictim validates the victim cache's invariants: every parked entry
// is (a) exclusive — the block is not resident at the first level, (b)
// contained — the second level still holds the block, and (c) fresh — it
// carries the second level's current token (or the buffered one while a
// write-back is in flight).
func (h *VR) checkVictim() error {
	var err error
	h.vic.ForEach(func(pa addr.PAddr, token uint64) {
		if err != nil {
			return
		}
		set, way, ok := h.rc.Lookup(pa)
		if !ok {
			err = fmt.Errorf("victim entry %#x not contained in the R-cache", uint64(pa))
			return
		}
		sub := h.rc.SubIndex(pa)
		se := h.rc.Sub(set, way, sub)
		switch {
		case se.Inclusion:
			err = fmt.Errorf("victim entry %#x also resident at the first level (%v)", uint64(pa), se.VPtr)
		case se.Buffer:
			if e, found := h.wb.Find(rptrOf(set, way, sub)); !found || e.Token != token {
				err = fmt.Errorf("victim entry %#x token %d disagrees with buffered write-back", uint64(pa), token)
			}
		case se.Token != token:
			err = fmt.Errorf("victim entry %#x token %d, R-cache holds %d", uint64(pa), token, se.Token)
		}
	})
	return err
}

// checkRLT validates the reverse-lookup table's reciprocity: the table
// mirrors the first level exactly — one entry per present line, each
// pointing at a line whose physical address is the entry's key and whose
// subentry v-pointer agrees.
func (h *VR) checkRLT(children int) error {
	if h.rlt == nil {
		return nil
	}
	if n := h.rlt.Len(); n != children {
		return fmt.Errorf("rlt holds %d entries but %d first-level lines are present", n, children)
	}
	var err error
	h.rlt.ForEach(func(e rlt.Entry) {
		if err != nil {
			return
		}
		if e.VP.Cache < 0 || e.VP.Cache >= len(h.vcs) {
			err = fmt.Errorf("rlt entry %#x points at cache %d", uint64(e.PA), e.VP.Cache)
			return
		}
		child := h.vcs[e.VP.Cache]
		if !child.Present(e.VP.Set, e.VP.Way) {
			err = fmt.Errorf("rlt entry %#x points at absent line %v", uint64(e.PA), e.VP)
			return
		}
		rp := child.Line(e.VP.Set, e.VP.Way).RPtr
		if pa := h.rc.SubAddr(rp.Set, rp.Way, rp.Sub); pa != e.PA {
			err = fmt.Errorf("rlt entry %#x points at line holding %#x", uint64(e.PA), uint64(pa))
			return
		}
		if se := h.rc.Sub(rp.Set, rp.Way, rp.Sub); se.VPtr != e.VP {
			err = fmt.Errorf("rlt entry %#x disagrees with subentry v-pointer %v != %v",
				uint64(e.PA), e.VP, se.VPtr)
		}
	})
	return err
}
