package core

import (
	"fmt"

	"repro/internal/rcache"
	"repro/internal/vcache"
)

// Check validates the hierarchy's structural invariants:
//
//  1. Inclusion: every present first-level line has a valid r-pointer to a
//     present R-cache line whose matching subentry has the inclusion bit
//     set and a v-pointer that points straight back.
//  2. Uniqueness: at most one first-level copy of any physical block exists
//     across the (possibly split) first level — the paper's synonym
//     guarantee.
//  3. Buffer bits and write-buffer contents are in bijection.
//  4. VDirty is set exactly when a first-level or buffered copy is dirty;
//     dangling VDirty without a child is impossible.
//  5. In the V-R organization, the r-pointer agrees with the MMU: the
//     line's virtual base translates to the subentry's physical address.
//
// It runs in O(cache size) and is meant to be called after every reference
// in tests.
func (h *VR) Check() error {
	children := 0
	for ci, vc := range h.vcs {
		var err error
		vc.ForEachPresent(func(set, way int, l *vcache.Line) {
			if err != nil {
				return
			}
			children++
			rp := l.RPtr
			if !h.rc.Present(rp.Set, rp.Way) {
				err = fmt.Errorf("V%d[%d.%d] parent %v not present", ci, set, way, rp)
				return
			}
			se := h.rc.Sub(rp.Set, rp.Way, rp.Sub)
			if !se.Inclusion {
				err = fmt.Errorf("V%d[%d.%d] parent %v inclusion clear", ci, set, way, rp)
				return
			}
			want := rcache.VPtr{Cache: ci, Set: set, Way: way}
			if se.VPtr != want {
				err = fmt.Errorf("V%d[%d.%d] parent %v v-pointer %v, want %v",
					ci, set, way, rp, se.VPtr, want)
				return
			}
			if se.VDirty != l.Dirty {
				err = fmt.Errorf("V%d[%d.%d] dirty %v but parent VDirty %v",
					ci, set, way, l.Dirty, se.VDirty)
				return
			}
			if se.Buffer {
				err = fmt.Errorf("V%d[%d.%d] parent %v has both inclusion and buffer bits",
					ci, set, way, rp)
				return
			}
			if h.virtual {
				pa, ok := h.opts.MMU.Lookup(l.PID, l.VBase)
				if !ok {
					err = fmt.Errorf("V%d[%d.%d] vbase %#x pid %d unmapped",
						ci, set, way, uint64(l.VBase), l.PID)
					return
				}
				if got := h.rc.SubAddr(rp.Set, rp.Way, rp.Sub); h.subAlign(pa) != got {
					err = fmt.Errorf("V%d[%d.%d] vbase %#x translates to %#x but r-pointer says %#x",
						ci, set, way, uint64(l.VBase), uint64(h.subAlign(pa)), uint64(got))
					return
				}
			}
		})
		if err != nil {
			return err
		}
	}

	inclusionBits := 0
	bufferBits := 0
	var err error
	h.rc.ForEachValid(func(set, way int, l *rcache.Line) {
		if err != nil {
			return
		}
		for i := range l.Subs {
			se := &l.Subs[i]
			if se.Inclusion {
				inclusionBits++
				child := h.vcs[se.VPtr.Cache]
				if !child.Present(se.VPtr.Set, se.VPtr.Way) {
					err = fmt.Errorf("R[%d.%d.%d] v-pointer %v to absent line", set, way, i, se.VPtr)
					return
				}
				cl := child.Line(se.VPtr.Set, se.VPtr.Way)
				if cl.RPtr != rptrOf(set, way, i) {
					err = fmt.Errorf("R[%d.%d.%d] child r-pointer %v does not round-trip",
						set, way, i, cl.RPtr)
					return
				}
			}
			if se.Buffer {
				bufferBits++
				if _, found := h.wb.Find(rptrOf(set, way, i)); !found {
					err = fmt.Errorf("R[%d.%d.%d] buffer bit set but nothing buffered", set, way, i)
					return
				}
				if !se.VDirty {
					err = fmt.Errorf("R[%d.%d.%d] buffered but VDirty clear", set, way, i)
					return
				}
			}
			if se.VDirty && !se.Inclusion && !se.Buffer {
				err = fmt.Errorf("R[%d.%d.%d] VDirty without child or buffer", set, way, i)
				return
			}
		}
	})
	if err != nil {
		return err
	}
	if inclusionBits != children {
		return fmt.Errorf("%d inclusion bits but %d first-level lines", inclusionBits, children)
	}
	if bufferBits != h.wb.Len() {
		return fmt.Errorf("%d buffer bits but %d buffered entries", bufferBits, h.wb.Len())
	}
	return nil
}
