package core

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/memory"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
)

// rig is a miniature multiprocessor: n hierarchies on one bus, one MMU, one
// memory, plus a sequential-consistency oracle. Every access re-validates
// every hierarchy's invariants.
type rig struct {
	t      *testing.T
	mmu    *vm.MMU
	bus    *bus.Bus
	mem    *memory.Memory
	tokens *TokenSource
	hs     []Hierarchy
	oracle map[addr.PAddr]uint64
}

// testPageSize is small so virtual L1 index bits exceed the page offset and
// synonym moves (not just sameset) occur.
const testPageSize = 64

func baseOptions(r *rig) Options {
	return Options{
		MMU:    r.mmu,
		Bus:    r.bus,
		Mem:    r.mem,
		Tokens: r.tokens,
		L1:     cache.Geometry{Size: 128, Block: 16, Assoc: 1},
		L2:     cache.Geometry{Size: 512, Block: 32, Assoc: 2},
	}
}

type mkFunc func(Options) (Hierarchy, error)

func vrMk(o Options) (Hierarchy, error) { return NewVR(o) }
func rrMk(o Options) (Hierarchy, error) { return NewRR(o) }
func niMk(o Options) (Hierarchy, error) { return NewRRNoInclusion(o) }

func newRig(t *testing.T, n int, mk mkFunc, tweak func(*Options)) *rig {
	t.Helper()
	r := &rig{
		t:      t,
		mmu:    vm.MustNew(testPageSize),
		bus:    bus.New(),
		mem:    memory.MustNew(16),
		tokens: &TokenSource{},
		oracle: map[addr.PAddr]uint64{},
	}
	for i := 0; i < n; i++ {
		o := baseOptions(r)
		if tweak != nil {
			tweak(&o)
		}
		h, err := mk(o)
		if err != nil {
			t.Fatal(err)
		}
		r.hs = append(r.hs, h)
	}
	return r
}

// access applies one reference, checks invariants on every hierarchy, and
// checks the data oracle.
func (r *rig) access(cpu int, kind trace.Kind, pid addr.PID, va addr.VAddr) AccessResult {
	r.t.Helper()
	res := r.hs[cpu].Access(trace.Ref{CPU: uint8(cpu), Kind: kind, PID: pid, Addr: va})
	for i, h := range r.hs {
		if err := h.Check(); err != nil {
			r.t.Fatalf("cpu %d invariants after %v %v by cpu %d: %v", i, kind, va, cpu, err)
		}
	}
	if !res.CtxSwitch {
		if kind == trace.Write {
			r.oracle[res.PA] = res.Token
		} else {
			if want := r.oracle[res.PA]; res.Token != want {
				r.t.Fatalf("oracle: cpu %d %v %#x (pa %#x) read token %d, want %d",
					cpu, kind, uint64(va), uint64(res.PA), res.Token, want)
			}
		}
	}
	return res
}

func (r *rig) read(cpu int, pid addr.PID, va addr.VAddr) AccessResult {
	return r.access(cpu, trace.Read, pid, va)
}
func (r *rig) write(cpu int, pid addr.PID, va addr.VAddr) AccessResult {
	return r.access(cpu, trace.Write, pid, va)
}
func (r *rig) ifetch(cpu int, pid addr.PID, va addr.VAddr) AccessResult {
	return r.access(cpu, trace.IFetch, pid, va)
}
func (r *rig) ctxSwitch(cpu int, pid addr.PID) {
	r.access(cpu, trace.CtxSwitch, pid, 0)
}

func TestReadMissThenHit(t *testing.T) {
	r := newRig(t, 1, vrMk, nil)
	res := r.read(0, 1, 0x100)
	if res.L1Hit || res.L2Hit {
		t.Fatalf("cold read: %+v", res)
	}
	if res.Level() != 3 {
		t.Fatalf("Level = %d", res.Level())
	}
	res = r.read(0, 1, 0x104)
	if !res.L1Hit {
		t.Fatalf("second read should hit L1: %+v", res)
	}
	st := r.hs[0].Stats()
	if st.L1.Overall().Hits != 1 || st.L1.Overall().Total != 2 {
		t.Errorf("L1 stats = %+v", st.L1.Overall())
	}
}

func TestWriteReadBack(t *testing.T) {
	r := newRig(t, 1, vrMk, nil)
	w := r.write(0, 1, 0x200)
	if w.Token == 0 {
		t.Fatal("write got no token")
	}
	got := r.read(0, 1, 0x200)
	if got.Token != w.Token {
		t.Fatalf("read back %d, want %d", got.Token, w.Token)
	}
}

func TestL1ConflictEvictionWritesBack(t *testing.T) {
	r := newRig(t, 1, vrMk, nil)
	// 128B direct-mapped L1: 0x000 and 0x080 conflict (8 sets of 16B).
	w := r.write(0, 1, 0x000)
	r.read(0, 1, 0x080) // evicts dirty 0x000 into the write buffer
	st := r.hs[0].Stats()
	if st.WriteBacks != 1 {
		t.Fatalf("WriteBacks = %d, want 1", st.WriteBacks)
	}
	// Let the buffer drain, then read the block back through L2.
	for i := 0; i < 8; i++ {
		r.read(0, 1, 0x080)
	}
	got := r.read(0, 1, 0x000)
	if got.Token != w.Token {
		t.Fatalf("read back after write-back: %d, want %d", got.Token, w.Token)
	}
	if got.L1Hit {
		t.Fatal("block should have been evicted from L1")
	}
}

func TestBufferReattachCancelsWriteBack(t *testing.T) {
	r := newRig(t, 1, vrMk, func(o *Options) {
		o.WriteBufLatency = 1000 // keep entries buffered
	})
	// Map one segment at two virtual bases conflicting in L1 set 0:
	// 0x080 (block 8, set 0) and 0x200 (block 32, set 0).
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x080, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(1, 0x200, seg); err != nil {
		t.Fatal(err)
	}
	w := r.write(0, 1, 0x080)
	// Access the same physical block via the other name: the dirty victim
	// is the synonym itself; its write-back must be canceled and the data
	// reattached.
	got := r.read(0, 1, 0x200)
	if got.Token != w.Token {
		t.Fatalf("synonym read token %d, want %d", got.Token, w.Token)
	}
	if got.Synonym != SynBuffered {
		t.Fatalf("synonym kind = %v, want %v", got.Synonym, SynBuffered)
	}
	st := r.hs[0].Stats()
	if st.Synonyms[SynBuffered] != 1 {
		t.Errorf("SynBuffered = %d", st.Synonyms[SynBuffered])
	}
	// The block must still be dirty under its new name: a further write
	// needs no coherence work, and reading back via the old name returns
	// the newest data.
	w2 := r.write(0, 1, 0x200)
	got = r.read(0, 1, 0x080)
	if got.Token != w2.Token {
		t.Fatalf("re-synonym read %d, want %d", got.Token, w2.Token)
	}
}

func TestSynonymMoveAcrossSets(t *testing.T) {
	r := newRig(t, 1, vrMk, nil)
	// Page size 64: bases 0x040 (block 4, set 4) and 0x080 (block 8, set 0)
	// name the same physical page but land in different L1 sets.
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(1, 0x080, seg); err != nil {
		t.Fatal(err)
	}
	w := r.write(0, 1, 0x040)
	got := r.read(0, 1, 0x080)
	if got.Synonym != SynMove {
		t.Fatalf("synonym kind = %v, want %v", got.Synonym, SynMove)
	}
	if got.Token != w.Token {
		t.Fatalf("moved synonym token %d, want %d", got.Token, w.Token)
	}
	// The old name must now miss in L1 (single-copy guarantee) but find the
	// data again by moving it back.
	got = r.read(0, 1, 0x040)
	if got.L1Hit {
		t.Fatal("old virtual name still live after move")
	}
	if got.Synonym != SynMove || got.Token != w.Token {
		t.Fatalf("move back: %+v", got)
	}
	if st := r.hs[0].Stats(); st.Synonyms[SynMove] != 2 {
		t.Errorf("SynMove = %d, want 2", st.Synonyms[SynMove])
	}
}

func TestSynonymSameSetRetag(t *testing.T) {
	r := newRig(t, 1, vrMk, func(o *Options) {
		o.L1.Assoc = 2 // two ways so the synonym is not the victim
	})
	// 128B 2-way: 4 sets. Bases 0x100 (block 16, set 0) and 0x200
	// (block 32, set 0) collide in set 0.
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x100, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(1, 0x200, seg); err != nil {
		t.Fatal(err)
	}
	w := r.write(0, 1, 0x100)
	got := r.read(0, 1, 0x200)
	if got.Synonym != SynSameSet {
		t.Fatalf("synonym kind = %v, want %v", got.Synonym, SynSameSet)
	}
	if got.Token != w.Token {
		t.Fatalf("retagged token %d, want %d", got.Token, w.Token)
	}
	if got2 := r.read(0, 1, 0x200); !got2.L1Hit {
		t.Fatal("retagged line should hit")
	}
}

func TestCrossProcessSynonym(t *testing.T) {
	r := newRig(t, 1, vrMk, nil)
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(2, 0x080, seg); err != nil {
		t.Fatal(err)
	}
	w := r.write(0, 1, 0x040)
	r.ctxSwitch(0, 2)
	// Process 2 reads the shared page under its own mapping; the swapped
	// dirty copy of process 1 must be found and handed over.
	got := r.read(0, 2, 0x080)
	if got.Token != w.Token {
		t.Fatalf("cross-process synonym token %d, want %d", got.Token, w.Token)
	}
	if got.Synonym == SynNone {
		t.Fatal("no synonym resolution recorded")
	}
}

func TestContextSwitchLazyWriteBack(t *testing.T) {
	r := newRig(t, 1, vrMk, nil)
	w := r.write(0, 1, 0x000)
	r.ctxSwitch(0, 2)
	st := r.hs[0].Stats()
	if st.CtxSwitches != 1 {
		t.Fatalf("CtxSwitches = %d", st.CtxSwitches)
	}
	if st.WriteBacks != 0 {
		t.Fatal("lazy switch wrote back immediately")
	}
	// Process 2 touches a conflicting private block: now the swapped dirty
	// line is replaced and written back.
	r.read(0, 2, 0x080)
	st = r.hs[0].Stats()
	if st.WriteBacks != 1 || st.SwappedWriteBacks != 1 {
		t.Fatalf("writebacks = %d swapped = %d", st.WriteBacks, st.SwappedWriteBacks)
	}
	// Process 1 returns; its data survived via L2.
	r.ctxSwitch(0, 1)
	for i := 0; i < 8; i++ { // drain the buffer
		r.read(0, 2, 0x080)
	}
	got := r.read(0, 1, 0x000)
	if got.Token != w.Token {
		t.Fatalf("data lost across context switches: %d want %d", got.Token, w.Token)
	}
}

func TestContextSwitchHidesLines(t *testing.T) {
	r := newRig(t, 1, vrMk, nil)
	r.read(0, 1, 0x000)
	r.ctxSwitch(0, 2)
	got := r.read(0, 2, 0x000)
	if got.L1Hit {
		t.Fatal("new process hit old process's line")
	}
	// Distinct processes' private pages are distinct physical blocks.
	if got.L2Hit {
		t.Fatal("private pages aliased in L2")
	}
}

func TestEagerFlushAblation(t *testing.T) {
	r := newRig(t, 1, vrMk, func(o *Options) { o.EagerCtxFlush = true })
	r.write(0, 1, 0x000)
	r.write(0, 1, 0x010)
	r.read(0, 1, 0x020)
	r.ctxSwitch(0, 2)
	st := r.hs[0].Stats()
	if st.EagerFlushWriteBacks != 2 {
		t.Fatalf("EagerFlushWriteBacks = %d, want 2", st.EagerFlushWriteBacks)
	}
	// Everything was invalidated: nothing swapped remains.
	got := r.read(0, 2, 0x000)
	if got.L1Hit {
		t.Fatal("line survived eager flush")
	}
}

func TestCoherenceWritePropagates(t *testing.T) {
	r := newRig(t, 2, vrMk, nil)
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(2, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	w := r.write(0, 1, 0x040)
	got := r.read(1, 2, 0x040)
	if got.Token != w.Token {
		t.Fatalf("cpu1 read %d, want %d", got.Token, w.Token)
	}
	// cpu0's copy is now clean-shared; writing again must invalidate cpu1.
	w2 := r.write(0, 1, 0x040)
	got = r.read(1, 2, 0x040)
	if got.Token != w2.Token {
		t.Fatalf("cpu1 read %d after second write, want %d", got.Token, w2.Token)
	}
	if got.L1Hit {
		t.Fatal("cpu1's stale copy survived the invalidation")
	}
}

func TestCoherencePingPongWrites(t *testing.T) {
	r := newRig(t, 2, vrMk, nil)
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(2, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	var last AccessResult
	for i := 0; i < 6; i++ {
		last = r.write(i%2, addr.PID(i%2+1), 0x040)
	}
	got := r.read(0, 1, 0x040)
	if got.Token != last.Token {
		t.Fatalf("final read %d, want %d", got.Token, last.Token)
	}
}

func TestShieldingCleanBlocksNotDisturbed(t *testing.T) {
	r := newRig(t, 2, vrMk, nil)
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(2, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	// Both CPUs read (clean copies everywhere).
	r.read(0, 1, 0x040)
	r.read(1, 2, 0x040)
	before := r.hs[0].Stats().Coherence.Total()
	// cpu1 re-reads: no bus traffic at all (hit). cpu1 misses elsewhere
	// (private blocks): bus read-miss transactions that cpu0's R-cache
	// answers without disturbing its V-cache.
	for i := 0; i < 10; i++ {
		r.read(1, 2, addr.VAddr(0x400+i*16))
	}
	after := r.hs[0].Stats().Coherence.Total()
	if after != before {
		t.Fatalf("V-cache disturbed %d times by irrelevant traffic", after-before)
	}
}

func TestSnoopFlushOnRemoteRead(t *testing.T) {
	r := newRig(t, 2, vrMk, nil)
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(2, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	r.write(0, 1, 0x040)
	r.read(1, 2, 0x040)
	st0 := r.hs[0].Stats()
	if st0.Coherence.Get(stats.MsgFlush) != 1 {
		t.Fatalf("flush messages = %d, want 1 (%s)", st0.Coherence.Get(stats.MsgFlush), st0.Coherence.String())
	}
	// cpu0 still holds the copy, now clean: its next read hits.
	got := r.read(0, 1, 0x040)
	if !got.L1Hit {
		t.Fatal("flushed copy was lost instead of cleaned")
	}
}

func TestSnoopInvalidateMessage(t *testing.T) {
	r := newRig(t, 2, vrMk, nil)
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(2, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	r.read(0, 1, 0x040) // cpu0 clean copy
	r.write(1, 2, 0x040)
	st0 := r.hs[0].Stats()
	if st0.Coherence.Get(stats.MsgInvalidate) == 0 {
		t.Fatalf("no invalidate message reached cpu0's V-cache (%s)", st0.Coherence.String())
	}
	if got := r.read(0, 1, 0x040); got.L1Hit {
		t.Fatal("invalidated copy still live")
	}
}

func TestSplitIDCaches(t *testing.T) {
	r := newRig(t, 1, vrMk, func(o *Options) { o.Split = true })
	r.ifetch(0, 1, 0x000)
	r.read(0, 1, 0x000) // same VA as data: cross-cache synonym
	st := r.hs[0].Stats()
	if st.Synonyms[SynCross] != 1 {
		t.Fatalf("SynCross = %d, want 1 (%v)", st.Synonyms[SynCross], st.Synonyms)
	}
	// And back: instruction fetch pulls it from the D side again.
	res := r.ifetch(0, 1, 0x000)
	if res.Synonym != SynCross {
		t.Fatalf("second cross move: %+v", res)
	}
}

func TestSplitWriteThenFetch(t *testing.T) {
	r := newRig(t, 1, vrMk, func(o *Options) { o.Split = true })
	w := r.write(0, 1, 0x300)
	got := r.ifetch(0, 1, 0x300)
	if got.Token != w.Token {
		t.Fatalf("ifetch of freshly written block: %d want %d", got.Token, w.Token)
	}
}

func TestInclusionInvalidationFallback(t *testing.T) {
	// L2 with a single set (fully associative, 2 ways) and L1 big enough to
	// keep children in every L2 line: the third distinct L2 block forces a
	// victim with children.
	r := newRig(t, 1, vrMk, func(o *Options) {
		o.L1 = cache.Geometry{Size: 256, Block: 16, Assoc: 2}
		o.L2 = cache.Geometry{Size: 64, Block: 32, Assoc: 2}
	})
	r.read(0, 1, 0x000)
	r.read(0, 1, 0x110)
	r.read(0, 1, 0x220)
	st := r.hs[0].Stats()
	if st.InclusionInvals == 0 {
		t.Fatal("expected inclusion invalidations with a tiny L2")
	}
	if st.Coherence.Get(stats.MsgInclusionInvalidate) != st.InclusionInvals {
		t.Error("inclusion invalidations not counted as coherence messages")
	}
}

func TestRRBasics(t *testing.T) {
	r := newRig(t, 1, rrMk, nil)
	w := r.write(0, 1, 0x123)
	got := r.read(0, 1, 0x123)
	if !got.L1Hit || got.Token != w.Token {
		t.Fatalf("RR read back: %+v want token %d", got, w.Token)
	}
	// Context switches leave the physical L1 alone.
	r.ctxSwitch(0, 2)
	r.ctxSwitch(0, 1)
	got = r.read(0, 1, 0x123)
	if !got.L1Hit {
		t.Fatal("RR L1 lost lines across context switches")
	}
	if st := r.hs[0].Stats(); st.SynonymTotal() != st.Synonyms[SynNone] {
		t.Error("RR hierarchy resolved synonyms; none should occur")
	}
}

func TestRRTranslatesEveryReference(t *testing.T) {
	r := newRig(t, 1, rrMk, nil)
	for i := 0; i < 5; i++ {
		r.read(0, 1, 0x040)
	}
	st := r.hs[0].Stats()
	if st.TLB.Hits+st.TLB.Misses != 5 {
		t.Fatalf("RR TLB lookups = %d, want 5", st.TLB.Hits+st.TLB.Misses)
	}
	// The V-R organization translates only on L1 misses.
	rv := newRig(t, 1, vrMk, nil)
	for i := 0; i < 5; i++ {
		rv.read(0, 1, 0x040)
	}
	stv := rv.hs[0].Stats()
	if stv.TLB.Hits+stv.TLB.Misses != 1 {
		t.Fatalf("VR TLB lookups = %d, want 1", stv.TLB.Hits+stv.TLB.Misses)
	}
}

func TestNoInclusionBasics(t *testing.T) {
	r := newRig(t, 2, niMk, nil)
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(2, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	w := r.write(0, 1, 0x040)
	got := r.read(1, 2, 0x040)
	if got.Token != w.Token {
		t.Fatalf("no-incl coherence: read %d want %d", got.Token, w.Token)
	}
	w2 := r.write(1, 2, 0x040)
	got = r.read(0, 1, 0x040)
	if got.Token != w2.Token {
		t.Fatalf("no-incl invalidation: read %d want %d", got.Token, w2.Token)
	}
}

func TestNoInclusionProbesOnEveryTransaction(t *testing.T) {
	r := newRig(t, 2, niMk, nil)
	// cpu1 generates misses on private data; cpu0's L1 gets probed each time.
	for i := 0; i < 10; i++ {
		r.read(1, 2, addr.VAddr(0x400+i*32))
	}
	probes := r.hs[0].Stats().Coherence.Get(stats.MsgProbe)
	if probes != 10 {
		t.Fatalf("probes = %d, want 10", probes)
	}
}

func TestNoInclusionL1SurvivesL2Eviction(t *testing.T) {
	r := newRig(t, 1, niMk, func(o *Options) {
		o.L2 = cache.Geometry{Size: 64, Block: 32, Assoc: 2} // 1 set, 2 ways
	})
	w := r.write(0, 1, 0x000)
	// Two more L2 blocks (in other L1 sets) evict 0x000's L2 line; the L1
	// copy must survive.
	r.read(0, 1, 0x110)
	r.read(0, 1, 0x220)
	got := r.read(0, 1, 0x000)
	if !got.L1Hit {
		t.Fatal("no-inclusion L1 lost its line on L2 eviction")
	}
	if got.Token != w.Token {
		t.Fatalf("token %d want %d", got.Token, w.Token)
	}
}

func TestNoInclusionDirtyVictimBypassesAbsentL2(t *testing.T) {
	r := newRig(t, 1, niMk, func(o *Options) {
		o.L2 = cache.Geometry{Size: 64, Block: 32, Assoc: 2}
	})
	// Frames are demand-allocated in touch order: VA 0x000 -> pa 0x000,
	// VA 0x110 -> pa 0x050, VA 0x210 -> pa 0x090. The two reads evict pa
	// 0x000's L2 line (1-set L2) without touching its L1 set.
	w := r.write(0, 1, 0x000)
	r.read(0, 1, 0x110)
	r.read(0, 1, 0x210) // L2 line for pa 0x000 now gone
	// VA 0x200 -> pa 0x080, which conflicts with pa 0x000 in the
	// direct-mapped L1: the dirty victim's L2 line is absent.
	r.read(0, 1, 0x200)
	if r.hs[0].Stats().MemWritesDirect == 0 {
		t.Fatal("dirty victim with absent L2 line should write straight to memory")
	}
	got := r.read(0, 1, 0x000)
	if got.Token != w.Token {
		t.Fatalf("data lost on direct write-back: %d want %d", got.Token, w.Token)
	}
}

func TestDrainFlushesBuffer(t *testing.T) {
	r := newRig(t, 1, vrMk, func(o *Options) { o.WriteBufLatency = 1000 })
	r.write(0, 1, 0x000)
	r.read(0, 1, 0x080) // dirty victim parked in buffer
	r.hs[0].Drain()
	for _, h := range r.hs {
		if err := h.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	r := newRig(t, 1, vrMk, nil) // provides mmu/bus/mem
	bad := []func(*Options){
		func(o *Options) { o.MMU = nil },
		func(o *Options) { o.L1.Size = 100 },
		func(o *Options) { o.L2.Block = 8 }, // smaller than L1 block
		func(o *Options) { o.L1.Block = 32 },
		func(o *Options) { o.Split = true; o.L1 = cache.Geometry{Size: 32, Block: 16, Assoc: 2} },
	}
	for i, tweak := range bad {
		o := baseOptions(r)
		tweak(&o)
		if _, err := NewVR(o); err == nil {
			t.Errorf("case %d: bad options accepted", i)
		}
	}
	o := baseOptions(r)
	o.EagerCtxFlush = true
	if _, err := NewRR(o); err == nil {
		t.Error("RR with EagerCtxFlush accepted")
	}
	o = baseOptions(r)
	o.Split = true
	o.L1 = cache.Geometry{Size: 256, Block: 16, Assoc: 1}
	if _, err := NewRRNoInclusion(o); err == nil {
		t.Error("no-inclusion with split accepted")
	}
}

func TestAccessResultLevel(t *testing.T) {
	if (AccessResult{L1Hit: true}).Level() != 1 {
		t.Error("L1 level")
	}
	if (AccessResult{L2Hit: true}).Level() != 2 {
		t.Error("L2 level")
	}
	if (AccessResult{}).Level() != 3 {
		t.Error("memory level")
	}
}

func TestSynonymKindString(t *testing.T) {
	for k := SynNone; k <= SynBuffered; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no label", k)
		}
	}
}

func TestTokenSource(t *testing.T) {
	var ts TokenSource
	if ts.Next() != 1 || ts.Next() != 2 || ts.Last() != 2 {
		t.Error("token sequence wrong")
	}
}

// randomWorkload drives a rig with a seeded random mix of reads, writes,
// ifetches and context switches over private and shared pages, relying on
// the per-access oracle and invariant checks.
func randomWorkload(t *testing.T, mk mkFunc, tweak func(*Options), cpus, steps int, ctxSwitches bool) {
	t.Helper()
	r := newRig(t, cpus, mk, tweak)
	rng := rand.New(rand.NewSource(7))
	// Shared segment mapped by every process at a process-specific base.
	seg := r.mmu.NewSegment(2 * testPageSize)
	nProcs := 2 * cpus
	bases := make([]addr.VAddr, nProcs+1)
	for p := 1; p <= nProcs; p++ {
		bases[p] = addr.VAddr(0x1000 * uint64(p))
		if err := r.mmu.MapShared(addr.PID(p), bases[p], seg); err != nil {
			t.Fatal(err)
		}
	}
	cur := make([]addr.PID, cpus)
	for c := range cur {
		cur[c] = addr.PID(c + 1)
	}
	for i := 0; i < steps; i++ {
		c := rng.Intn(cpus)
		if ctxSwitches && rng.Intn(97) == 0 {
			cur[c] = addr.PID(rng.Intn(nProcs) + 1)
			r.ctxSwitch(c, cur[c])
			continue
		}
		pid := cur[c]
		var va addr.VAddr
		if rng.Intn(3) == 0 {
			va = bases[pid] + addr.VAddr(rng.Intn(2*testPageSize))
		} else {
			va = addr.VAddr(0x8000 + 0x400*uint64(pid) + uint64(rng.Intn(512)))
		}
		switch rng.Intn(4) {
		case 0:
			r.write(c, pid, va)
		case 1:
			r.ifetch(c, pid, va)
		default:
			r.read(c, pid, va)
		}
	}
}

func TestRandomVRUniprocessor(t *testing.T) {
	randomWorkload(t, vrMk, nil, 1, 3000, true)
}

func TestRandomVRMultiprocessor(t *testing.T) {
	randomWorkload(t, vrMk, nil, 4, 4000, true)
}

func TestRandomVRSplit(t *testing.T) {
	randomWorkload(t, vrMk, func(o *Options) { o.Split = true }, 2, 3000, true)
}

func TestRandomVRAssociative(t *testing.T) {
	randomWorkload(t, vrMk, func(o *Options) {
		o.L1.Assoc = 2
		o.L2.Assoc = 4
	}, 2, 3000, true)
}

func TestRandomVREagerFlush(t *testing.T) {
	randomWorkload(t, vrMk, func(o *Options) { o.EagerCtxFlush = true }, 2, 3000, true)
}

func TestRandomVRDeepBuffer(t *testing.T) {
	randomWorkload(t, vrMk, func(o *Options) {
		o.WriteBufDepth = 4
		o.WriteBufLatency = 16
	}, 2, 3000, true)
}

func TestRandomVRWideL2Blocks(t *testing.T) {
	randomWorkload(t, vrMk, func(o *Options) {
		o.L2 = cache.Geometry{Size: 1024, Block: 64, Assoc: 2}
	}, 2, 3000, true)
}

func TestRandomVRTinyL2(t *testing.T) {
	// Forces frequent inclusion invalidations.
	randomWorkload(t, vrMk, func(o *Options) {
		o.L2 = cache.Geometry{Size: 128, Block: 32, Assoc: 2}
	}, 2, 2000, true)
}

func TestRandomRR(t *testing.T) {
	randomWorkload(t, rrMk, nil, 4, 4000, true)
}

func TestRandomNoInclusion(t *testing.T) {
	randomWorkload(t, niMk, nil, 4, 4000, true)
}

func TestRandomNoInclusionTinyL2(t *testing.T) {
	randomWorkload(t, niMk, func(o *Options) {
		o.L2 = cache.Geometry{Size: 128, Block: 32, Assoc: 2}
	}, 2, 2000, true)
}
