package core

import (
	"repro/internal/addr"
	"repro/internal/bus"
	"repro/internal/probe"
	"repro/internal/rcache"
	"repro/internal/trace"
)

// This file implements the write-through, no-write-allocate first-level
// policy of Section 2 — the design the paper examines and rejects in favour
// of write-back. Under it:
//
//   - first-level lines are never dirty: every processor write is sent
//     down to the R-cache immediately (the R-cache copy becomes the dirty
//     one relative to memory);
//   - writes pass through a bounded buffer; the short inter-write
//     intervals of Table 2 make it fill up, and the resulting stalls are
//     counted (the paper's "several write buffers may be needed");
//   - write misses do not allocate in the first level, which is why the
//     paper notes write-through caches have smaller hit ratios;
//   - context switches never cluster write-backs (there is nothing dirty),
//     which is the property the swapped-valid bit recovers for write-back.

// wtQueue models the write-through buffer's occupancy. Entries carry no
// data (the write already updated the R-cache synchronously in this serial
// simulator); only the timing — how many writes are still in flight —
// matters for stall accounting.
type wtQueue struct {
	deadlines []uint64
	depth     int
	latency   uint64
	clock     uint64
}

// tick advances time and retires completed writes.
func (q *wtQueue) tick() {
	q.clock++
	n := 0
	for n < len(q.deadlines) && q.deadlines[n] < q.clock {
		n++
	}
	q.deadlines = q.deadlines[n:]
}

// push enqueues one write; it reports whether the buffer was full (a
// stall), in which case the oldest write retires immediately.
func (q *wtQueue) push() (stalled bool) {
	if len(q.deadlines) >= q.depth {
		q.deadlines = q.deadlines[1:]
		stalled = true
	}
	q.deadlines = append(q.deadlines, q.clock+q.latency)
	return stalled
}

// wtWrite performs a processor write under write-through: coherence first,
// then the R-cache copy is updated in place and the buffer occupancy
// charged. Any resident first-level copy — including one under a different
// virtual address — is refreshed through the v-pointer and stays clean.
// paKnown carries the R-R baseline's up-front translation; it is zero for
// the V-R organization, which translates here (or follows the r-pointer on
// a hit).
func (h *VR) wtWrite(ref trace.Ref, kind statsKind, l1hit bool, ci, set, way int, paKnown addr.PAddr) AccessResult {
	var pa addr.PAddr
	var rset, rway int
	l2hit := true
	if l1hit {
		// The r-pointer gives the R-cache location without translation.
		l := h.vcs[ci].Line(set, way)
		rset, rway = l.RPtr.Set, l.RPtr.Way
		pa = h.rc.SubAddr(l.RPtr.Set, l.RPtr.Way, l.RPtr.Sub)
		h.vcs[ci].Touch(set, way)
	} else {
		pa = paKnown
		if h.virtual {
			pa = h.translate(ref.PID, ref.Addr)
		}
		rset, rway, l2hit = h.rc.Lookup(pa)
		h.st.L2.Record(kind, l2hit)
		if h.pr != nil {
			k := probe.EvL2Miss
			if l2hit {
				k = probe.EvL2Hit
			}
			h.emit(k, kind, ref.Addr, h.subAlign(pa), 0)
		}
		if !l2hit {
			rset, rway = h.l2Miss(pa, true)
		}
	}
	rl := h.rc.Line(rset, rway)
	if rl.State == rcache.Shared {
		h.opts.Bus.Issue(bus.Txn{
			Kind: bus.Invalidate,
			From: h.id,
			Addr: h.rc.BlockAddr(rset, rway),
			Size: h.opts.L2.Block,
		})
		rl.State = rcache.Private
	}
	h.rc.Touch(rset, rway)
	sub := h.rc.SubIndex(pa)
	se := h.rc.Sub(rset, rway, sub)
	token := h.opts.Tokens.Next()
	se.Token = token
	se.RDirty = true
	// A parked victim copy of this block is stale now.
	h.vic.InvalidateRange(h.subAlign(pa), h.opts.L1.Block)
	if se.Inclusion {
		// Refresh the first-level copy (the hitting line itself, or a
		// synonym under another virtual address) so it never goes stale.
		child := h.vcs[se.VPtr.Cache]
		cl := child.Line(se.VPtr.Set, se.VPtr.Way)
		cl.Token = token
		cl.Dirty = false
	}
	if h.wt.push() {
		h.st.BufferStalls++
		h.emit(probe.EvWBStall, 0, 0, 0, 0)
		h.cy.WBStall()
	}
	return AccessResult{
		Kind:  kind,
		L1Hit: l1hit,
		L2Hit: l2hit,
		PA:    h.subAlign(pa),
		Token: token,
	}
}
