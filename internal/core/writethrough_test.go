package core

import (
	"testing"
)

func wtMk(o Options) (Hierarchy, error) {
	o.L1WriteThrough = true
	return NewVR(o)
}

func wtRRMk(o Options) (Hierarchy, error) {
	o.L1WriteThrough = true
	return NewRR(o)
}

func TestWriteThroughBasics(t *testing.T) {
	r := newRig(t, 1, wtMk, nil)
	// Write miss: no allocate, data lands in L2.
	w := r.write(0, 1, 0x100)
	got := r.read(0, 1, 0x100)
	if got.L1Hit {
		t.Fatal("no-write-allocate policy allocated on a write miss")
	}
	if got.Token != w.Token {
		t.Fatalf("read back %d, want %d", got.Token, w.Token)
	}
	// Now resident (the read allocated); a write hit refreshes in place and
	// stays clean.
	w2 := r.write(0, 1, 0x100)
	got = r.read(0, 1, 0x100)
	if !got.L1Hit || got.Token != w2.Token {
		t.Fatalf("write-hit data lost: %+v want %d", got, w2.Token)
	}
}

func TestWriteThroughNeverDirty(t *testing.T) {
	r := newRig(t, 1, wtMk, nil)
	r.read(0, 1, 0x000)
	r.write(0, 1, 0x000)
	r.write(0, 1, 0x004)
	// Conflict-evict the line: a dirty line would produce a write-back.
	r.read(0, 1, 0x080)
	if st := r.hs[0].Stats(); st.WriteBacks != 0 {
		t.Errorf("write-through produced %d write-backs", st.WriteBacks)
	}
}

func TestWriteThroughContextSwitchHasNothingToWrite(t *testing.T) {
	r := newRig(t, 1, wtMk, nil)
	for i := 0; i < 6; i++ {
		r.read(0, 1, addr16(i))
		r.write(0, 1, addr16(i))
	}
	r.ctxSwitch(0, 2)
	st := r.hs[0].Stats()
	if st.WriteBacks != 0 || st.SwappedWriteBacks != 0 {
		t.Error("write-through context switch wrote something back")
	}
}

func TestWriteThroughSynonymRefresh(t *testing.T) {
	r := newRig(t, 1, wtMk, nil)
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(1, 0x080, seg); err != nil {
		t.Fatal(err)
	}
	// Make the block resident under the first name, then write it under
	// the second (a write miss — no allocate, no move). The resident
	// synonym copy must be refreshed, not left stale.
	r.read(0, 1, 0x040)
	w := r.write(0, 1, 0x080)
	got := r.read(0, 1, 0x040)
	if !got.L1Hit {
		t.Fatal("resident synonym copy was lost")
	}
	if got.Token != w.Token {
		t.Fatalf("stale synonym copy: read %d, want %d", got.Token, w.Token)
	}
}

func TestWriteThroughStallsAtDepthOne(t *testing.T) {
	r := newRig(t, 1, wtMk, func(o *Options) {
		o.WriteBufDepth = 1
		o.WriteBufLatency = 8
	})
	// Back-to-back writes overwhelm a single buffer slot.
	for i := 0; i < 10; i++ {
		r.write(0, 1, addr16(i%4))
	}
	if r.hs[0].Stats().BufferStalls == 0 {
		t.Error("burst writes through a depth-1 buffer should stall")
	}
}

func TestWriteThroughDeepBufferAbsorbs(t *testing.T) {
	stalls := func(depth int) uint64 {
		r := newRig(t, 1, wtMk, func(o *Options) {
			o.WriteBufDepth = depth
			o.WriteBufLatency = 2
		})
		for i := 0; i < 40; i++ {
			r.write(0, 1, addr16(i%4))
			if i%4 == 3 {
				r.read(0, 1, 0x200) // breathing room
			}
		}
		return r.hs[0].Stats().BufferStalls
	}
	if s8 := stalls(8); s8 > stalls(1)/2 {
		t.Errorf("depth 8 (%d stalls) should absorb far more than depth 1", s8)
	}
}

func TestWriteThroughLowerWriteHitRatio(t *testing.T) {
	// The paper: "assuming no write-allocate, write-through caches will
	// have smaller hit ratios".
	run := func(mk mkFunc) float64 {
		r := newRig(t, 1, mk, nil)
		// Write-then-rewrite pattern: write-allocate turns the second
		// write into a hit; no-allocate misses both.
		for i := 0; i < 16; i++ {
			r.write(0, 1, addr16(i%8))
		}
		st := r.hs[0].Stats()
		return st.L1.Kind(2).Value()
	}
	wt, wb := run(wtMk), run(vrMk)
	if wt >= wb {
		t.Errorf("write-through write hit ratio %.3f should trail write-back %.3f", wt, wb)
	}
}

func TestWriteThroughCoherence(t *testing.T) {
	r := newRig(t, 2, wtMk, nil)
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(2, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	w := r.write(0, 1, 0x040)
	got := r.read(1, 2, 0x040)
	if got.Token != w.Token {
		t.Fatalf("remote read %d, want %d", got.Token, w.Token)
	}
	w2 := r.write(1, 2, 0x040)
	got = r.read(0, 1, 0x040)
	if got.Token != w2.Token {
		t.Fatalf("write-through invalidation failed: %d want %d", got.Token, w2.Token)
	}
}

func TestWriteThroughValidation(t *testing.T) {
	r := newRig(t, 1, vrMk, nil)
	o := baseOptions(r)
	o.L1WriteThrough = true
	o.Protocol = WriteUpdate
	if _, err := NewVR(o); err == nil {
		t.Error("write-through + write-update accepted")
	}
	o = baseOptions(r)
	o.L1WriteThrough = true
	o.EagerCtxFlush = true
	if _, err := NewVR(o); err == nil {
		t.Error("write-through + eager flush accepted")
	}
}

func TestRandomVRWriteThrough(t *testing.T) {
	randomWorkload(t, wtMk, nil, 2, 3000, true)
}

func TestRandomRRWriteThrough(t *testing.T) {
	randomWorkload(t, wtRRMk, nil, 4, 4000, true)
}

func TestRandomVRWriteThroughSplit(t *testing.T) {
	randomWorkload(t, wtMk, func(o *Options) { o.Split = true }, 2, 3000, true)
}
