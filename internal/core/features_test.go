package core

import (
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/stats"
)

func pidMk(o Options) (Hierarchy, error) {
	o.PIDTagged = true
	return NewVR(o)
}

func updMk(o Options) (Hierarchy, error) {
	o.Protocol = WriteUpdate
	return NewVR(o)
}

func TestPIDTagsKeepLinesAcrossSwitches(t *testing.T) {
	// Two ways so the two processes' same-VA lines can coexist (PID tags
	// remove the flush, not set conflicts).
	r := newRig(t, 1, pidMk, func(o *Options) { o.L1.Assoc = 2 })
	w := r.write(0, 1, 0x000)
	r.ctxSwitch(0, 2)
	// Process 2 must not hit process 1's line even at the same VA.
	got := r.read(0, 2, 0x000)
	if got.L1Hit {
		t.Fatal("PID tags failed to separate processes")
	}
	r.ctxSwitch(0, 1)
	// Process 1's line survived the switches and is still dirty.
	got = r.read(0, 1, 0x000)
	if !got.L1Hit || got.Token != w.Token {
		t.Fatalf("PID-tagged line lost: %+v want token %d", got, w.Token)
	}
	if st := r.hs[0].Stats(); st.SwappedWriteBacks != 0 {
		t.Error("PID-tagged cache should never swap lines")
	}
}

func TestPIDTagsNoWriteBackBurst(t *testing.T) {
	r := newRig(t, 1, pidMk, nil)
	for i := 0; i < 8; i++ {
		r.write(0, 1, addr16(i))
	}
	before := r.hs[0].Stats().WriteBacks
	r.ctxSwitch(0, 2)
	if got := r.hs[0].Stats().WriteBacks; got != before {
		t.Errorf("context switch triggered %d write-backs", got-before)
	}
}

func addr16(i int) addr.VAddr { return addr.VAddr(i) * 16 }

func TestPIDTagsRejectedForRR(t *testing.T) {
	r := newRig(t, 1, vrMk, nil)
	o := baseOptions(r)
	o.PIDTagged = true
	if _, err := NewRR(o); err == nil {
		t.Error("PID tags accepted for the R-R baseline")
	}
	if _, err := NewRRNoInclusion(o); err == nil {
		t.Error("PID tags accepted for the no-inclusion baseline")
	}
	o.PIDTagged = true
	o.EagerCtxFlush = true
	if _, err := NewVR(o); err == nil {
		t.Error("PIDTagged+EagerCtxFlush accepted")
	}
}

func TestWriteUpdatePropagates(t *testing.T) {
	r := newRig(t, 2, updMk, nil)
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(2, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	// Both CPUs read: shared copies everywhere.
	r.read(0, 1, 0x040)
	r.read(1, 2, 0x040)
	// cpu0 writes: the update must refresh cpu1's copy in place.
	w := r.write(0, 1, 0x040)
	got := r.read(1, 2, 0x040)
	if !got.L1Hit {
		t.Fatal("write-update invalidated instead of updating")
	}
	if got.Token != w.Token {
		t.Fatalf("cpu1 read %d, want updated %d", got.Token, w.Token)
	}
	if r.hs[1].Stats().Coherence.Get(stats.MsgUpdate) == 0 {
		t.Error("no update message reached cpu1's V-cache")
	}
}

func TestWriteUpdatePingPongKeepsAllCopiesLive(t *testing.T) {
	r := newRig(t, 2, updMk, nil)
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(2, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	r.read(0, 1, 0x040)
	r.read(1, 2, 0x040)
	var last AccessResult
	for i := 0; i < 6; i++ {
		last = r.write(i%2, addr.PID(i%2+1), 0x040)
	}
	// Under write-update, both copies stayed resident throughout.
	g0 := r.read(0, 1, 0x040)
	g1 := r.read(1, 2, 0x040)
	if !g0.L1Hit || !g1.L1Hit {
		t.Error("ping-pong writes evicted copies under write-update")
	}
	if g0.Token != last.Token || g1.Token != last.Token {
		t.Errorf("tokens diverged: %d, %d, want %d", g0.Token, g1.Token, last.Token)
	}
}

func TestWriteUpdateDowngradesToPrivate(t *testing.T) {
	r := newRig(t, 2, updMk, nil)
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(2, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	r.read(0, 1, 0x040)
	r.read(1, 2, 0x040)
	// Evict cpu1's copies entirely: its L1 conflict plus enough L2 pressure.
	// Simpler: cpu1's L1 line is evicted by a conflicting private block and
	// its L2 line by bus invalid... here we just check the snoop response
	// path: after cpu1's copies vanish, a cpu0 write should see Shared=false
	// and stop broadcasting.
	busBefore := r.bus.Stats().Count(bus.Update)
	r.write(0, 1, 0x040) // update broadcast (cpu1 still shares)
	mid := r.bus.Stats().Count(bus.Update)
	if mid != busBefore+1 {
		t.Fatalf("expected one update transaction, got %d", mid-busBefore)
	}
	// cpu1 still had its copy, so the line stays shared; a second write
	// broadcasts again.
	r.write(0, 1, 0x040)
	if got := r.bus.Stats().Count(bus.Update); got != mid+1 {
		t.Fatalf("expected another update transaction, got %d", got-mid)
	}
}

func TestWriteUpdateRejectedForNoInclusion(t *testing.T) {
	r := newRig(t, 1, vrMk, nil)
	o := baseOptions(r)
	o.Protocol = WriteUpdate
	if _, err := NewRRNoInclusion(o); err == nil {
		t.Error("write-update accepted for the no-inclusion baseline")
	}
}

func TestProtocolString(t *testing.T) {
	if WriteInvalidate.String() != "write-invalidate" || WriteUpdate.String() != "write-update" {
		t.Error("protocol names wrong")
	}
	if !strings.Contains(Protocol(9).String(), "9") {
		t.Error("unknown protocol should render its number")
	}
}

func TestNaiveReplacementCausesMoreInclusionInvals(t *testing.T) {
	run := func(naive bool) uint64 {
		r := newRig(t, 1, func(o Options) (Hierarchy, error) {
			o.NaiveL2Replacement = naive
			// 2-way L2 with only 4 sets so replacement decisions matter.
			o.L2 = cache.Geometry{Size: 256, Block: 32, Assoc: 2}
			return NewVR(o)
		}, nil)
		// Touch many distinct blocks; keep a couple hot in L1.
		for i := 0; i < 200; i++ {
			r.read(0, 1, addrAt(i))
			if i%3 == 0 {
				r.read(0, 1, 0x000) // keep one block L1-resident
			}
		}
		return r.hs[0].Stats().InclusionInvals
	}
	naive, relaxed := run(true), run(false)
	if naive <= relaxed {
		t.Errorf("naive replacement (%d invals) should exceed relaxed (%d)", naive, relaxed)
	}
}

func addrAt(i int) addr.VAddr { return 0x1000 + addr.VAddr(i)*16 }

func TestRandomVRPIDTagged(t *testing.T) {
	randomWorkload(t, pidMk, nil, 2, 3000, true)
}

func TestRandomVRWriteUpdate(t *testing.T) {
	randomWorkload(t, updMk, nil, 4, 4000, true)
}

func TestRandomVRWriteUpdateSplit(t *testing.T) {
	randomWorkload(t, updMk, func(o *Options) { o.Split = true }, 2, 3000, true)
}

func TestRandomVRNaiveReplacement(t *testing.T) {
	randomWorkload(t, vrMk, func(o *Options) { o.NaiveL2Replacement = true }, 2, 3000, true)
}

func TestRandomRRWriteUpdate(t *testing.T) {
	randomWorkload(t, func(o Options) (Hierarchy, error) {
		o.Protocol = WriteUpdate
		return NewRR(o)
	}, nil, 2, 3000, true)
}

func TestRandomVRPIDTaggedWriteUpdate(t *testing.T) {
	randomWorkload(t, func(o Options) (Hierarchy, error) {
		o.PIDTagged = true
		o.Protocol = WriteUpdate
		return NewVR(o)
	}, nil, 2, 3000, true)
}
