package core

// Mutation tests for the audit layer against live machines: run real
// references through a rig, corrupt exactly one tracked bit or pointer in
// place, and require the auditor to flag the invariant that bit protects.
// Complementing internal/audit's hand-built-snapshot tests, these prove the
// snapshot producers carry every audited bit out of the real structures.

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/rcache"
	"repro/internal/vcache"
)

// machineSnapshot assembles the cross-CPU snapshot the system layer would.
func machineSnapshot(r *rig) *audit.Snapshot {
	s := &audit.Snapshot{Organization: "test"}
	for _, h := range r.hs {
		s.CPUs = append(s.CPUs, h.Snapshot())
	}
	return s
}

// requireClean fails if the machine snapshot has any violation.
func requireClean(t *testing.T, r *rig) {
	t.Helper()
	if found := machineSnapshot(r).Check(); len(found) != 0 {
		t.Fatalf("clean machine reports violations: %v", found)
	}
}

// requireFlagged asserts the auditor finds the target invariant. When exact
// is true, every finding must be of that invariant — the corruption has no
// legitimate cascade.
func requireFlagged(t *testing.T, r *rig, want audit.Invariant, exact bool) {
	t.Helper()
	found := machineSnapshot(r).Check()
	if len(found) == 0 {
		t.Fatalf("corruption of %v went undetected", want)
	}
	hit := false
	for _, v := range found {
		if v.Invariant == want {
			hit = true
		} else if exact {
			t.Errorf("unexpected %v finding: %s", v.Invariant, v)
		}
	}
	if !hit {
		t.Fatalf("corruption not attributed to %v; found %v", want, found)
	}
}

// vrOf unwraps the rig's hierarchy for in-place corruption.
func vrOf(t *testing.T, r *rig, cpu int) *VR {
	t.Helper()
	h, ok := r.hs[cpu].(*VR)
	if !ok {
		t.Fatalf("hierarchy %d is %T, not *VR", cpu, r.hs[cpu])
	}
	return h
}

func TestMutationInclusionBit(t *testing.T) {
	r := newRig(t, 1, vrMk, nil)
	r.read(0, 1, 0x100)
	requireClean(t, r)
	h := vrOf(t, r, 0)
	cleared := false
	h.rc.ForEachValid(func(set, way int, l *rcache.Line) {
		for i := range l.Subs {
			if !cleared && l.Subs[i].Inclusion {
				l.Subs[i].Inclusion = false
				cleared = true
			}
		}
	})
	if !cleared {
		t.Fatal("no inclusion bit to corrupt")
	}
	requireFlagged(t, r, audit.InvInclusion, true)
}

func TestMutationVPointer(t *testing.T) {
	r := newRig(t, 1, vrMk, nil)
	r.read(0, 1, 0x100)
	requireClean(t, r)
	h := vrOf(t, r, 0)
	bent := false
	h.rc.ForEachValid(func(set, way int, l *rcache.Line) {
		for i := range l.Subs {
			if !bent && l.Subs[i].Inclusion {
				// Point at the other way of the same (direct-mapped-empty)
				// set: no present line can round-trip to it.
				l.Subs[i].VPtr.Way++
				bent = true
			}
		}
	})
	if !bent {
		t.Fatal("no v-pointer to corrupt")
	}
	requireFlagged(t, r, audit.InvReciprocity, true)
}

func TestMutationBufferBit(t *testing.T) {
	// Dirty a line, then conflict it out of the direct-mapped L1 so the
	// write-back sits in the buffer with its buffer bit set.
	r := newRig(t, 1, vrMk, nil)
	r.write(0, 1, 0x100)
	r.read(0, 1, 0x100+128) // same L1 set (128-byte L1), different block
	h := vrOf(t, r, 0)
	requireClean(t, r)
	cleared := false
	h.rc.ForEachValid(func(set, way int, l *rcache.Line) {
		for i := range l.Subs {
			if !cleared && l.Subs[i].Buffer {
				l.Subs[i].Buffer = false
				cleared = true
			}
		}
	})
	if !cleared {
		t.Fatal("no buffered write-back to corrupt; eviction did not buffer")
	}
	// Clearing the buffer bit orphans the write-buffer entry (the target
	// invariant) and leaves VDirty dangling without child or buffered copy —
	// an inherent dirty-bit cascade.
	requireFlagged(t, r, audit.InvBufferBit, false)
}

func TestMutationSVBit(t *testing.T) {
	// In the physically-addressed R-R organization no line may ever be
	// swapped-valid; setting SV is the corruption.
	r := newRig(t, 1, rrMk, nil)
	r.read(0, 1, 0x100)
	requireClean(t, r)
	h := vrOf(t, r, 0)
	set := false
	for _, vc := range h.vcs {
		vc.ForEachPresent(func(s, w int, l *vcache.Line) {
			if !set {
				l.SV = true
				set = true
			}
		})
	}
	if !set {
		t.Fatal("no resident line to corrupt")
	}
	requireFlagged(t, r, audit.InvSwappedValid, true)
}

// victimMk builds a V-R hierarchy with a small victim cache parked between
// the levels; rltMk builds the reverse-lookup-table synonym variant.
func victimMk(o Options) (Hierarchy, error) { o.VictimEntries = 2; return NewVR(o) }
func rltMk(o Options) (Hierarchy, error)    { o.RLTEntries = 8; return NewVR(o) }

// parkVictim drives one conflict eviction so the victim cache holds a
// parked block, and returns the machine.
func parkVictim(t *testing.T) *rig {
	t.Helper()
	r := newRig(t, 1, victimMk, nil)
	r.write(0, 1, 0x100)
	r.read(0, 1, 0x100+128) // same direct-mapped L1 set: evicts, parks 0x100
	requireClean(t, r)
	return r
}

func TestMutationVictimToken(t *testing.T) {
	r := parkVictim(t)
	h := vrOf(t, r, 0)
	st := h.vic.ExportState()
	bent := false
	for i := range st.Entries {
		if st.Entries[i].Valid && !bent {
			st.Entries[i].Token += 7
			bent = true
		}
	}
	if !bent {
		t.Fatal("no parked victim entry to corrupt; eviction did not park")
	}
	if err := h.vic.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	requireFlagged(t, r, audit.InvVictimExclusive, true)
}

func TestMutationVictimResidency(t *testing.T) {
	r := newRig(t, 1, victimMk, nil)
	r.write(0, 1, 0x100)
	res := r.read(0, 1, 0x100+128)
	requireClean(t, r)
	h := vrOf(t, r, 0)
	st := h.vic.ExportState()
	bent := false
	for i := range st.Entries {
		if st.Entries[i].Valid && !bent {
			// Re-key the parked entry to the block that is live in the
			// first level right now: exclusivity broken by construction.
			st.Entries[i].PA = uint64(res.PA) &^ 15
			bent = true
		}
	}
	if !bent {
		t.Fatal("no parked victim entry to corrupt; eviction did not park")
	}
	if err := h.vic.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	requireFlagged(t, r, audit.InvVictimExclusive, true)
}

func TestMutationRLTDroppedEntry(t *testing.T) {
	r := newRig(t, 1, rltMk, nil)
	r.read(0, 1, 0x100)
	requireClean(t, r)
	h := vrOf(t, r, 0)
	st := h.rlt.ExportState()
	dropped := false
	for i := range st.Slots {
		if st.Slots[i].Valid && !dropped {
			st.Slots[i].Valid = false
			dropped = true
		}
	}
	if !dropped {
		t.Fatal("no live RLT entry to corrupt")
	}
	if err := h.rlt.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	requireFlagged(t, r, audit.InvRLTReciprocity, true)
}

func TestMutationRLTBentPointer(t *testing.T) {
	r := newRig(t, 1, rltMk, nil)
	r.read(0, 1, 0x100)
	requireClean(t, r)
	h := vrOf(t, r, 0)
	st := h.rlt.ExportState()
	bent := false
	for i := range st.Slots {
		if st.Slots[i].Valid && !bent {
			// Way 1 of a direct-mapped first level does not exist: the
			// entry now points at an absent line.
			st.Slots[i].VWay++
			bent = true
		}
	}
	if !bent {
		t.Fatal("no live RLT entry to corrupt")
	}
	if err := h.rlt.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	requireFlagged(t, r, audit.InvRLTReciprocity, true)
}

func TestMutationCoherenceState(t *testing.T) {
	// Two CPUs read the same shared address; both hold the block shared.
	// Promoting one copy to private breaks cross-CPU exclusivity.
	r := newRig(t, 2, vrMk, nil)
	r.read(0, 1, 0x100)
	r.read(1, 1, 0x100)
	requireClean(t, r)
	h := vrOf(t, r, 0)
	promoted := false
	h.rc.ForEachValid(func(set, way int, l *rcache.Line) {
		if !promoted && l.State == rcache.Shared {
			l.State = rcache.Private
			promoted = true
		}
	})
	if !promoted {
		t.Fatal("no shared line to corrupt")
	}
	requireFlagged(t, r, audit.InvCoherence, true)
}

// TestMutationDetectedInAllOrgs seeds the one corruption every organization
// shares — a flipped coherence state on a commonly held block — and checks
// detection across all three hierarchies.
func TestMutationDetectedInAllOrgs(t *testing.T) {
	orgs := []struct {
		name string
		mk   mkFunc
	}{{"VR", vrMk}, {"RR", rrMk}, {"NoIncl", niMk}}
	for _, o := range orgs {
		t.Run(o.name, func(t *testing.T) {
			r := newRig(t, 2, o.mk, nil)
			r.read(0, 1, 0x100)
			r.read(1, 1, 0x100)
			requireClean(t, r)
			promoted := false
			switch h := r.hs[0].(type) {
			case *VR:
				h.rc.ForEachValid(func(set, way int, l *rcache.Line) {
					if !promoted && l.State == rcache.Shared {
						l.State = rcache.Private
						promoted = true
					}
				})
			case *RRNoInclusion:
				h.l2.ForEachValid(func(set, way int, l *rcache.Line) {
					if !promoted && l.State == rcache.Shared {
						l.State = rcache.Private
						promoted = true
					}
				})
			}
			if !promoted {
				t.Fatal("no shared line to corrupt")
			}
			requireFlagged(t, r, audit.InvCoherence, true)
		})
	}
}
