package core

import (
	"repro/internal/addr"
	"repro/internal/audit"
	"repro/internal/rcache"
	"repro/internal/rlt"
	"repro/internal/vcache"
	"repro/internal/writebuf"
)

// Snapshot implements Hierarchy: a point-in-time copy of the V-caches, the
// R-cache, the write buffer and the TLB for the audit layer. Translations
// are resolved here (against the MMU this hierarchy already holds) so the
// checker consumes pure data. Iteration follows the tag stores' (set, way)
// order, keeping dumps deterministic and diffable.
func (h *VR) Snapshot() *audit.CPUSnapshot {
	cs := &audit.CPUSnapshot{
		CPU:       h.id,
		Virtual:   h.virtual,
		Inclusive: true,
		LazyFlush: h.virtual && !h.opts.EagerCtxFlush && !h.opts.PIDTagged,
		L1Block:   h.opts.L1.Block,
		L2Block:   h.opts.L2.Block,
		RSets:     h.rc.Geometry().Sets(),
		RWays:     h.rc.Geometry().Assoc,
	}
	for ci, vc := range h.vcs {
		g := vc.Geometry()
		vs := audit.VCacheSnapshot{Cache: ci, Sets: g.Sets(), Ways: g.Assoc}
		vc.ForEachPresent(func(set, way int, l *vcache.Line) {
			vl := audit.VLine{
				Set: set, Way: way,
				Dirty: l.Dirty, SV: l.SV,
				RSet: l.RPtr.Set, RWay: l.RPtr.Way, RSub: l.RPtr.Sub,
				PID: uint64(l.PID), VBase: uint64(l.VBase), Token: l.Token,
			}
			if h.virtual {
				if pa, ok := h.opts.MMU.Lookup(l.PID, l.VBase); ok {
					vl.Mapped = true
					vl.MMUPA = uint64(h.subAlign(pa))
				}
			}
			vs.Lines = append(vs.Lines, vl)
		})
		cs.VCaches = append(cs.VCaches, vs)
	}
	cs.RLines = snapshotRCache(h.rc)
	h.wb.ForEach(func(e writebuf.Entry) {
		cs.WriteBuffer = append(cs.WriteBuffer, audit.WBEntry{
			RSet: e.RPtr.Set, RWay: e.RPtr.Way, RSub: e.RPtr.Sub, Token: e.Token,
		})
	})
	cs.TLB = snapshotTLB(h.tlb, h.opts.MMU)
	cs.HasVictim = h.vic != nil
	h.vic.ForEach(func(pa addr.PAddr, token uint64) {
		cs.Victim = append(cs.Victim, audit.VictimEntry{PA: uint64(pa), Token: token})
	})
	cs.HasRLT = h.rlt != nil
	h.rlt.ForEach(func(e rlt.Entry) {
		cs.RLT = append(cs.RLT, audit.RLTEntry{
			PA: uint64(e.PA), VCache: e.VP.Cache, VSet: e.VP.Set, VWay: e.VP.Way,
		})
	})
	return cs
}

// Snapshot implements Hierarchy for the no-inclusion baseline: both
// physically-addressed levels with their own coherence state, plus the TLB.
func (h *RRNoInclusion) Snapshot() *audit.CPUSnapshot {
	cs := &audit.CPUSnapshot{
		CPU:     h.id,
		L1Block: h.opts.L1.Block,
		L2Block: h.opts.L2.Block,
		L1Sets:  h.l1.Sets(),
		L1Ways:  h.l1.Assoc(),
		RSets:   h.l2.Geometry().Sets(),
		RWays:   h.l2.Geometry().Assoc,
	}
	h.l1.ForEachValid(func(set, way int) {
		l := h.l1.Line(set, way)
		cs.L1Lines = append(cs.L1Lines, audit.L1Line{
			Set: set, Way: way,
			Addr:  h.l1.BlockAddr(set, h.l1.TagAt(set, way)),
			State: l.state.String(),
			Dirty: l.dirty,
			Token: l.token,
		})
	})
	cs.RLines = snapshotRCache(h.l2)
	cs.TLB = snapshotTLB(h.tlb, h.opts.MMU)
	cs.HasVictim = h.vic != nil
	h.vic.ForEach(func(pa addr.PAddr, token uint64) {
		cs.Victim = append(cs.Victim, audit.VictimEntry{PA: uint64(pa), Token: token})
	})
	return cs
}

func snapshotRCache(rc *rcache.RCache) []audit.RLine {
	var out []audit.RLine
	rc.ForEachValid(func(set, way int, l *rcache.Line) {
		rl := audit.RLine{
			Set: set, Way: way,
			Addr:  uint64(rc.BlockAddr(set, way)),
			State: l.State.String(),
			Subs:  make([]audit.RSub, len(l.Subs)),
		}
		for i := range l.Subs {
			se := &l.Subs[i]
			rl.Subs[i] = audit.RSub{
				Sub:       i,
				Inclusion: se.Inclusion,
				Buffer:    se.Buffer,
				VDirty:    se.VDirty,
				RDirty:    se.RDirty,
				VCache:    se.VPtr.Cache,
				VSet:      se.VPtr.Set,
				VWay:      se.VPtr.Way,
				Token:     se.Token,
			}
		}
		out = append(out, rl)
	})
	return out
}

func snapshotTLB(t tlbSnapshotter, mmu mmuLookup) []audit.TLBEntry {
	var out []audit.TLBEntry
	pg := mmu.PageGeom()
	t.ForEachResident(func(pid addr.PID, vpage, frame uint64) {
		e := audit.TLBEntry{PID: uint64(pid), VPage: vpage, Frame: frame}
		if pa, ok := mmu.Lookup(pid, pg.JoinV(vpage, 0)); ok {
			e.Mapped = true
			e.MMUFrame = pg.PFrame(pa)
		}
		out = append(out, e)
	})
	return out
}

// tlbSnapshotter and mmuLookup name just the methods the snapshot walk
// needs, so the helpers read as what they consume.
type tlbSnapshotter interface {
	ForEachResident(fn func(pid addr.PID, vpage, frame uint64))
}

type mmuLookup interface {
	PageGeom() addr.PageGeom
	Lookup(pid addr.PID, va addr.VAddr) (addr.PAddr, bool)
}
