package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/cycles"
	"repro/internal/probe"
	"repro/internal/rcache"
	"repro/internal/stats"
	"repro/internal/tlb"
	"repro/internal/trace"
	"repro/internal/victim"
)

// nl1Line is the first-level line payload of the no-inclusion baseline.
// Without inclusion the L2 cannot answer coherence questions for the L1,
// so the L1 carries its own sharing state.
type nl1Line struct {
	state rcache.State
	dirty bool
	token uint64
}

// RRNoInclusion is the paper's R-R (no incl) baseline: a physically
// addressed two-level hierarchy whose levels replace independently. The
// second level cannot filter coherence traffic, so every remote bus
// transaction probes the first-level cache — the unshielded organization
// Tables 11-13 compare against.
type RRNoInclusion struct {
	opts Options
	id   int

	l1  *cache.Cache[nl1Line]
	l2  *rcache.RCache // inclusion machinery unused; subentries carry data state
	tlb *tlb.TLB
	vic *victim.Cache // nil: no victim cache between the levels

	pid addr.PID
	st  *Stats
	pr  *probe.Probe // nil: no event emission
	cy  *cycles.CPU  // nil: no cycle accounting
}

// emit forwards one probe event attributed to this hierarchy.
func (h *RRNoInclusion) emit(k probe.Kind, acc statsKind, va addr.VAddr, pa addr.PAddr, aux uint64) {
	if h.pr == nil {
		return
	}
	h.pr.Emit(probe.Event{CPU: h.id, Kind: k, Access: acc, VA: va, PA: pa, Aux: aux})
}

var _ Hierarchy = (*RRNoInclusion)(nil)

// NewRRNoInclusion builds the baseline and attaches it to the bus. The
// organization models a unified first level (the paper's coherence tables
// use unified direct-mapped caches).
func NewRRNoInclusion(o Options) (*RRNoInclusion, error) {
	o.applyDefaults()
	if err := o.validate(); err != nil {
		return nil, err
	}
	if o.Split {
		return nil, fmt.Errorf("core: the no-inclusion baseline models a unified L1")
	}
	if o.EagerCtxFlush || o.PIDTagged {
		return nil, fmt.Errorf("core: EagerCtxFlush and PIDTagged apply only to the V-R organization")
	}
	if o.Protocol != WriteInvalidate {
		return nil, fmt.Errorf("core: the no-inclusion baseline models the write-invalidate protocol only")
	}
	if o.RLTEntries > 0 {
		return nil, fmt.Errorf("core: the reverse-lookup synonym table applies only to the V-R organization")
	}
	h := &RRNoInclusion{
		opts: o,
		l1:   cache.MustNew[nl1Line](o.L1, o.L1Policy, o.PolicySeed+1),
		l2:   mustRCache(o),
		vic:  victim.New(o.VictimEntries),
		st:   newStats(),
		pr:   o.Probe,
	}
	t, err := tlb.New(o.MMU, o.TLBEntries, o.TLBAssoc)
	if err != nil {
		return nil, err
	}
	h.tlb = t
	h.id = o.Bus.Attach(h)
	h.cy = o.Cycles.CPU(h.id)
	return h, nil
}

// Stats implements Hierarchy.
func (h *RRNoInclusion) Stats() *Stats { return h.st }

// Drain implements Hierarchy; there is no write buffer to drain.
func (h *RRNoInclusion) Drain() {}

// Access implements Hierarchy.
func (h *RRNoInclusion) Access(ref trace.Ref) AccessResult {
	if ref.Kind == trace.CtxSwitch {
		h.st.CtxSwitches++
		h.pid = ref.PID
		h.emit(probe.EvCtxSwitch, 0, 0, 0, probe.CtxNone)
		return AccessResult{CtxSwitch: true}
	}
	h.st.WriteIntervals.Tick()
	h.st.WriteBackIntervals.Tick()

	kind := statKind(ref.Kind)
	pa, hit := h.tlb.Translate(ref.PID, ref.Addr)
	if hit {
		h.st.TLB.Hits++
		h.emit(probe.EvTLBHit, kind, ref.Addr, pa, 0)
	} else {
		h.st.TLB.Misses++
		h.emit(probe.EvTLBMiss, kind, ref.Addr, pa, 0)
		h.cy.TLBMiss()
	}
	paSub := pa &^ addr.PAddr(h.opts.L1.Block-1)

	set, tag := h.l1.Locate(uint64(pa))
	if way, ok := h.l1.Probe(set, tag); ok {
		h.st.L1.Record(kind, true)
		h.l1.Touch(set, way)
		l := h.l1.Line(set, way)
		h.emit(probe.EvL1Hit, kind, ref.Addr, paSub, l.token)
		if ref.Kind != trace.Write {
			return AccessResult{Kind: kind, L1Hit: true, PA: paSub, Token: l.token}
		}
		h.st.WriteIntervals.Event()
		if l.state == rcache.Shared {
			h.issueInvalidate(pa)
			l.state = rcache.Private
			// Keep our own L2 copy's state in step, if it exists.
			if s2, w2, ok2 := h.l2.Lookup(pa); ok2 {
				h.l2.Line(s2, w2).State = rcache.Private
			}
		}
		token := h.opts.Tokens.Next()
		l.dirty = true
		l.token = token
		return AccessResult{Kind: kind, L1Hit: true, PA: paSub, Token: token}
	}

	h.st.L1.Record(kind, false)
	h.emit(probe.EvL1Miss, kind, ref.Addr, paSub, 0)
	if ref.Kind == trace.Write {
		h.st.WriteIntervals.Event()
	}
	return h.fill(ref, kind, pa, paSub, set, tag)
}

func (h *RRNoInclusion) issueInvalidate(pa addr.PAddr) {
	h.opts.Bus.Issue(bus.Txn{
		Kind: bus.Invalidate,
		From: h.id,
		Addr: pa &^ addr.PAddr(h.opts.L2.Block-1),
		Size: h.opts.L2.Block,
	})
}

// fill handles a first-level miss: independent victim write-back, L2
// access, and install at both levels.
func (h *RRNoInclusion) fill(ref trace.Ref, kind statsKind, pa, paSub addr.PAddr, set int, tag uint64) AccessResult {
	isWrite := ref.Kind == trace.Write

	// Dispose of the L1 victim. Without inclusion the block may or may not
	// be in L2: a dirty victim updates the L2 copy when present, otherwise
	// it is written straight to memory.
	way, _ := h.l1.Victim(set, nil)
	if h.l1.ValidAt(set, way) {
		vl := h.l1.Line(set, way)
		vicPA := addr.PAddr(h.l1.BlockAddr(set, h.l1.TagAt(set, way)))
		inL2 := false
		if vl.dirty {
			h.st.WriteBacks++
			h.st.WriteBackIntervals.Event()
			h.emit(probe.EvWriteBack, 0, 0, vicPA, 0)
			if s2, w2, ok := h.l2.Lookup(vicPA); ok {
				se := h.l2.Sub(s2, w2, h.l2.SubIndex(vicPA))
				se.Token = vl.token
				se.RDirty = true
				inL2 = true
			} else {
				h.opts.Mem.Write(vicPA, vl.token)
				h.st.MemWritesDirect++
				h.cy.BusWrite()
			}
		} else {
			_, _, inL2 = h.l2.Lookup(vicPA)
		}
		h.l1.Invalidate(set, way)
		if inL2 && h.vic != nil {
			// Park the victim only when the second level also holds the
			// block — levels replace independently here, and the victim
			// cache's containment invariant (VC subset of L2) must hold for
			// every organization.
			h.vic.Insert(vicPA, vl.token)
			h.st.VictimInserts++
			h.emit(probe.EvVictimInsert, 0, 0, vicPA, vl.token)
		}
	}

	vhit := false
	if h.vic != nil {
		if token, ok := h.vic.Take(paSub); ok {
			vhit = true
			h.st.VictimHits++
			h.emit(probe.EvVictimHit, kind, ref.Addr, paSub, token)
		}
	}

	// Second level.
	s2, w2, l2hit := h.l2.Lookup(pa)
	h.st.L2.Record(kind, l2hit)
	if h.pr != nil {
		k := probe.EvL2Miss
		if l2hit {
			k = probe.EvL2Hit
		}
		h.emit(k, kind, ref.Addr, paSub, 0)
	}
	if l2hit {
		if isWrite && h.l2.Line(s2, w2).State == rcache.Shared {
			h.issueInvalidate(pa)
			h.l2.Line(s2, w2).State = rcache.Private
		}
	} else {
		s2, w2 = h.l2Miss(pa, isWrite)
	}
	h.l2.Touch(s2, w2)
	sub := h.l2.Sub(s2, w2, h.l2.SubIndex(pa))
	state := h.l2.Line(s2, w2).State

	token := sub.Token
	dirty := false
	if isWrite {
		token = h.opts.Tokens.Next()
		dirty = true
	}
	*h.l1.Install(set, way, tag) = nl1Line{state: state, dirty: dirty, token: token}
	return AccessResult{Kind: kind, L2Hit: l2hit, VictimHit: vhit, PA: paSub, Token: token}
}

// l2Miss replaces an L2 victim (never touching the L1 — the defining
// non-inclusive behaviour) and fills from the bus.
func (h *RRNoInclusion) l2Miss(pa addr.PAddr, isWrite bool) (set, way int) {
	vic := h.l2.PickVictim(pa)
	if vic.Present {
		l := h.l2.Line(vic.Set, vic.Way)
		// Parked victims under the departing line go with it (VC subset
		// of L2).
		h.vic.InvalidateRange(h.l2.BlockAddr(vic.Set, vic.Way), h.opts.L2.Block)
		for i := range l.Subs {
			if l.Subs[i].RDirty {
				h.opts.Mem.Write(h.l2.SubAddr(vic.Set, vic.Way, i), l.Subs[i].Token)
				h.cy.BusWrite()
			}
		}
		h.l2.Invalidate(vic.Set, vic.Way)
	}
	txn := bus.Txn{
		Kind: bus.Read,
		From: h.id,
		Addr: pa &^ addr.PAddr(h.opts.L2.Block-1),
		Size: h.opts.L2.Block,
	}
	if isWrite {
		txn.Kind = bus.ReadMod
	}
	snoop := h.opts.Bus.Issue(txn)
	state := rcache.Private
	if txn.Kind == bus.Read && snoop.Shared {
		state = rcache.Shared
	}
	l := h.l2.Install(vic.Set, vic.Way, pa, state)
	for i := range l.Subs {
		l.Subs[i].Token = h.opts.Mem.Read(h.l2.SubAddr(vic.Set, vic.Way, i))
	}
	return vic.Set, vic.Way
}

// SnoopBus implements Hierarchy. Without inclusion the L2 cannot vouch for
// the L1's contents, so every remote transaction probes the L1 — the
// unshielded disturbance the paper's Tables 11-13 count.
func (h *RRNoInclusion) SnoopBus(t bus.Txn) bus.SnoopResult {
	h.st.Coherence.Record(stats.MsgProbe)
	h.emit(probe.EvCohProbe, 0, 0, t.Addr, uint64(t.Kind))
	var res bus.SnoopResult
	// Probe the L1 in its own block strides.
	for a := t.Addr; a < t.Addr+addr.PAddr(t.Size); a += addr.PAddr(h.opts.L1.Block) {
		set, tag := h.l1.Locate(uint64(a))
		way, ok := h.l1.Probe(set, tag)
		if !ok {
			continue
		}
		l := h.l1.Line(set, way)
		switch t.Kind {
		case bus.Read:
			res.Shared = true
			if l.dirty {
				h.flushL1(a, l)
				res.Supplied = true
			}
			l.state = rcache.Shared
		case bus.Invalidate:
			h.l1.Invalidate(set, way)
		case bus.ReadMod:
			res.Shared = true
			if l.dirty {
				h.flushL1(a, l)
				res.Supplied = true
			}
			h.l1.Invalidate(set, way)
		}
	}
	// Probe the L2.
	for a := t.Addr; a < t.Addr+addr.PAddr(t.Size); a += addr.PAddr(h.opts.L2.Block) {
		s2, w2, ok := h.l2.Lookup(a)
		if !ok {
			continue
		}
		l := h.l2.Line(s2, w2)
		switch t.Kind {
		case bus.Read:
			res.Shared = true
			h.flushL2Subs(s2, w2, l, &res)
			l.State = rcache.Shared
		case bus.Invalidate:
			h.vic.InvalidateRange(h.l2.BlockAddr(s2, w2), h.opts.L2.Block)
			h.l2.Invalidate(s2, w2)
		case bus.ReadMod:
			res.Shared = true
			h.flushL2Subs(s2, w2, l, &res)
			h.vic.InvalidateRange(h.l2.BlockAddr(s2, w2), h.opts.L2.Block)
			h.l2.Invalidate(s2, w2)
		}
	}
	return res
}

// flushL1 writes a dirty L1 block to memory and, when the block is also in
// our L2, refreshes that copy so it cannot later supply stale data.
func (h *RRNoInclusion) flushL1(a addr.PAddr, l *nl1Line) {
	h.opts.Mem.Write(a, l.token)
	h.cy.BusWrite()
	l.dirty = false
	if s2, w2, ok := h.l2.Lookup(a); ok {
		se := h.l2.Sub(s2, w2, h.l2.SubIndex(a))
		se.Token = l.token
		se.RDirty = false
	}
}

func (h *RRNoInclusion) flushL2Subs(s2, w2 int, l *rcache.Line, res *bus.SnoopResult) {
	for i := range l.Subs {
		if l.Subs[i].RDirty {
			h.opts.Mem.Write(h.l2.SubAddr(s2, w2, i), l.Subs[i].Token)
			h.cy.BusWrite()
			l.Subs[i].RDirty = false
			res.Supplied = true
		}
	}
}

// Check validates the baseline's invariants: dirty blocks are held
// privately at the level that owns them.
func (h *RRNoInclusion) Check() error {
	var err error
	h.l1.ForEachValid(func(set, way int) {
		if err != nil {
			return
		}
		l := h.l1.Line(set, way)
		if l.dirty && l.state != rcache.Private {
			err = fmt.Errorf("L1[%d.%d] dirty but %v", set, way, l.state)
		}
	})
	if err != nil {
		return err
	}
	h.l2.ForEachValid(func(set, way int, l *rcache.Line) {
		if err != nil {
			return
		}
		for i := range l.Subs {
			if l.Subs[i].RDirty && l.State != rcache.Private {
				err = fmt.Errorf("L2[%d.%d.%d] dirty but %v", set, way, i, l.State)
			}
			if l.Subs[i].Inclusion || l.Subs[i].Buffer || l.Subs[i].VDirty {
				err = fmt.Errorf("L2[%d.%d.%d] inclusion machinery used in no-inclusion baseline", set, way, i)
			}
		}
	})
	if err != nil {
		return err
	}
	h.vic.ForEach(func(pa addr.PAddr, token uint64) {
		if err != nil {
			return
		}
		set, tag := h.l1.Locate(uint64(pa))
		if _, ok := h.l1.Probe(set, tag); ok {
			err = fmt.Errorf("victim entry %#x also resident at the first level", uint64(pa))
			return
		}
		s2, w2, ok := h.l2.Lookup(pa)
		if !ok {
			err = fmt.Errorf("victim entry %#x not contained in the second level", uint64(pa))
			return
		}
		if se := h.l2.Sub(s2, w2, h.l2.SubIndex(pa)); se.Token != token {
			err = fmt.Errorf("victim entry %#x token %d, second level holds %d", uint64(pa), token, se.Token)
		}
	})
	return err
}
