package core

import (
	"strings"
	"testing"
)

// collector records raised signals.
type collector struct {
	signals []Signal
}

func (c *collector) Signal(s Signal) { c.signals = append(c.signals, s) }

func (c *collector) kinds() []SignalKind {
	out := make([]SignalKind, len(c.signals))
	for i, s := range c.signals {
		out[i] = s.Kind
	}
	return out
}

func (c *collector) reset() { c.signals = nil }

func (c *collector) has(k SignalKind) bool {
	for _, s := range c.signals {
		if s.Kind == k {
			return true
		}
	}
	return false
}

func kindsEqual(got, want []SignalKind) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func tracedRig(t *testing.T, n int, tweak func(*Options)) (*rig, []*collector) {
	t.Helper()
	cols := make([]*collector, 0, n)
	r := newRig(t, n, func(o Options) (Hierarchy, error) {
		c := &collector{}
		cols = append(cols, c)
		o.Tracer = c
		return NewVR(o)
	}, tweak)
	return r, cols
}

func TestSignalColdReadSequence(t *testing.T) {
	r, cols := tracedRig(t, 1, nil)
	c := cols[0]
	r.read(0, 1, 0x100)
	// Cold miss: miss(v-pointer, r-pointer) then data supply; no
	// replacement (the slot was empty).
	want := []SignalKind{SigMiss, SigDataSupply}
	if !kindsEqual(c.kinds(), want) {
		t.Fatalf("cold read signals = %v, want %v", c.kinds(), want)
	}
	c.reset()
	r.read(0, 1, 0x104)
	if !kindsEqual(c.kinds(), []SignalKind{SigHit}) {
		t.Fatalf("hit signals = %v", c.kinds())
	}
}

func TestSignalWriteHitCleanRaisesInvAck(t *testing.T) {
	r, cols := tracedRig(t, 1, nil)
	c := cols[0]
	r.read(0, 1, 0x100)
	c.reset()
	r.write(0, 1, 0x100)
	// Write hit on clean: hit, then invack before the update.
	want := []SignalKind{SigHit, SigInvAck}
	if !kindsEqual(c.kinds(), want) {
		t.Fatalf("write-hit-clean signals = %v, want %v", c.kinds(), want)
	}
	c.reset()
	r.write(0, 1, 0x100)
	// Already dirty: no invack needed.
	if !kindsEqual(c.kinds(), []SignalKind{SigHit}) {
		t.Fatalf("write-hit-dirty signals = %v", c.kinds())
	}
}

func TestSignalReplacementAndWriteBack(t *testing.T) {
	r, cols := tracedRig(t, 1, func(o *Options) { o.WriteBufLatency = 1 })
	c := cols[0]
	r.write(0, 1, 0x000)
	c.reset()
	r.read(0, 1, 0x080) // conflicting block evicts the dirty line
	if !c.has(SigReplacement) {
		t.Fatalf("no replacement signal: %v", c.kinds())
	}
	c.reset()
	r.read(0, 1, 0x084)
	r.read(0, 1, 0x084) // ticks drain the buffered write-back
	if !c.has(SigWriteBack) {
		t.Fatalf("no write-back(r-pointer) signal: %v", c.kinds())
	}
}

func TestSignalSynonymMove(t *testing.T) {
	r, cols := tracedRig(t, 1, nil)
	c := cols[0]
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(1, 0x080, seg); err != nil {
		t.Fatal(err)
	}
	r.read(0, 1, 0x040)
	c.reset()
	r.read(0, 1, 0x080)
	want := []SignalKind{SigMiss, SigMove}
	if !kindsEqual(c.kinds(), want) {
		t.Fatalf("synonym move signals = %v, want %v", c.kinds(), want)
	}
}

func TestSignalSynonymSameSetCancelsWriteBack(t *testing.T) {
	r, cols := tracedRig(t, 1, func(o *Options) { o.WriteBufLatency = 1000 })
	c := cols[0]
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x080, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(1, 0x200, seg); err != nil {
		t.Fatal(err)
	}
	r.write(0, 1, 0x080)
	c.reset()
	r.read(0, 1, 0x200) // same-set synonym; dirty victim's write-back canceled
	got := c.kinds()
	want := []SignalKind{SigReplacement, SigMiss, SigSameSet}
	if !kindsEqual(got, want) {
		t.Fatalf("sameset signals = %v, want %v", got, want)
	}
}

func TestSignalRemoteFlushAndInvalidate(t *testing.T) {
	r, cols := tracedRig(t, 2, nil)
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(2, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	r.write(0, 1, 0x040)
	cols[0].reset()
	r.read(1, 2, 0x040) // remote read flushes cpu0's dirty copy
	if !cols[0].has(SigFlush) {
		t.Fatalf("cpu0 missing flush(v-pointer): %v", cols[0].kinds())
	}
	cols[0].reset()
	r.write(1, 2, 0x040) // remote write invalidates cpu0's copy
	if !cols[0].has(SigInvalidate) {
		t.Fatalf("cpu0 missing invalidation(v-pointer): %v", cols[0].kinds())
	}
}

func TestSignalUpdateProtocol(t *testing.T) {
	cols := make([]*collector, 0, 2)
	r := newRig(t, 2, func(o Options) (Hierarchy, error) {
		c := &collector{}
		cols = append(cols, c)
		o.Tracer = c
		o.Protocol = WriteUpdate
		return NewVR(o)
	}, nil)
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(2, 0x040, seg); err != nil {
		t.Fatal(err)
	}
	r.read(0, 1, 0x040)
	r.read(1, 2, 0x040)
	cols[1].reset()
	r.write(0, 1, 0x040)
	if !cols[1].has(SigUpdate) {
		t.Fatalf("cpu1 missing update(v-pointer): %v", cols[1].kinds())
	}
}

func TestSignalStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := SigHit; k <= SigUpdate; k++ {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("bad or duplicate label for kind %d: %q", int(k), s)
		}
		seen[s] = true
	}
	if !strings.Contains(SignalKind(99).String(), "99") {
		t.Error("unknown kind should render its number")
	}
	sig := Signal{Kind: SigMove, PA: 0x40}
	if !strings.Contains(sig.String(), "move") || !strings.Contains(sig.String(), "0x40") {
		t.Errorf("Signal.String = %q", sig.String())
	}
}

func TestTracerFunc(t *testing.T) {
	var got []SignalKind
	f := TracerFunc(func(s Signal) { got = append(got, s.Kind) })
	f.Signal(Signal{Kind: SigHit})
	if len(got) != 1 || got[0] != SigHit {
		t.Error("TracerFunc adapter broken")
	}
}

func TestNoTracerNoOverhead(t *testing.T) {
	// Just exercise the nil-tracer path under a random workload.
	randomWorkload(t, vrMk, nil, 1, 500, true)
}

func TestSignalSameSetCleanVictim(t *testing.T) {
	// Direct-mapped L1: accessing the same physical block under a second
	// same-set name evicts the clean synonym itself; the paper's sameset
	// path just sets the inclusion bit back — no data supply.
	r, cols := tracedRig(t, 1, nil)
	c := cols[0]
	seg := r.mmu.NewSegment(testPageSize)
	if err := r.mmu.MapShared(1, 0x080, seg); err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.MapShared(1, 0x200, seg); err != nil {
		t.Fatal(err)
	}
	r.read(0, 1, 0x080) // clean copy under the first name
	c.reset()
	got := r.read(0, 1, 0x200)
	if got.Synonym != SynSameSet {
		t.Fatalf("clean-victim synonym = %v, want %v", got.Synonym, SynSameSet)
	}
	want := []SignalKind{SigReplacement, SigMiss, SigSameSet}
	if !kindsEqual(c.kinds(), want) {
		t.Fatalf("signals = %v, want %v", c.kinds(), want)
	}
	if r.hs[0].Stats().Synonyms[SynSameSet] != 1 {
		t.Error("sameset not counted")
	}
}
