package telemetry_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/cycles"
	"repro/internal/probe"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/tracegen"
)

// timingParams is the timed experiments' standard configuration: the
// paper's contention model plus TLB and context-switch charges, so every
// mechanism the attribution tracks is exercised.
func timingParams() cycles.Params {
	p := cycles.ContentionParams()
	p.TLBMissPenalty = 8
	p.CtxSwitchCost = 10
	return p
}

// runAttributed runs one preset through one machine with the attribution
// profiler attached and returns the profiler and the engine it must match.
func runAttributed(t *testing.T, tc tracegen.Config, org system.Organization) (*telemetry.Attribution, *cycles.Engine) {
	t.Helper()
	pr := probe.New(0)
	eng := cycles.MustNew(timingParams(), pr)
	sc := system.Config{
		CPUs:         tc.CPUs,
		Organization: org,
		PageSize:     tc.PageSize,
		L1:           cache.Geometry{Size: 16 << 10, Block: 16, Assoc: 1},
		L2:           cache.Geometry{Size: 256 << 10, Block: 32, Assoc: 1},
		Probe:        pr,
		Cycles:       eng,
	}
	sys, err := system.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	attr := telemetry.NewAttribution(telemetry.AttrConfig{
		PageSize: sys.Config().PageSize,
		L2Sets:   sc.L2.Sets(),
		L2Block:  sc.L2.Block,
	})
	pr.AddSink(attr)
	if err := tc.SetupSharedMappings(sys.MMU()); err != nil {
		t.Fatal(err)
	}
	gen, err := tracegen.New(tc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(gen); err != nil {
		t.Fatal(err)
	}
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
	return attr, eng
}

// TestReconcileMatrix is the acceptance criterion: per-mechanism cycle
// attribution reconciles exactly — to the cycle, per CPU — with the engine's
// clocks for every preset × organization × CPU count.
func TestReconcileMatrix(t *testing.T) {
	presets := []tracegen.Config{
		tracegen.PopsLike(), tracegen.ThorLike(), tracegen.AbaqusLike(),
	}
	orgs := []system.Organization{system.VR, system.RRInclusion, system.RRNoInclusion}
	cpuCounts := []int{1, 2, 4}
	for _, preset := range presets {
		for _, org := range orgs {
			for _, n := range cpuCounts {
				tc := preset.Scaled(0.01)
				tc.CPUs = n
				t.Run(fmt.Sprintf("%s/%s/%dcpu", tc.Name, org, n), func(t *testing.T) {
					attr, eng := runAttributed(t, tc, org)
					if err := attr.Reconcile(eng); err != nil {
						t.Fatal(err)
					}
					r := attr.Report()
					if r.Refs == 0 || r.TotalCycles == 0 {
						t.Fatalf("empty attribution: %d refs, %d cycles", r.Refs, r.TotalCycles)
					}
					if got, want := r.Tacc(), eng.Tacc(); got != want {
						t.Fatalf("Tacc %v, engine %v", got, want)
					}
				})
			}
		}
	}
}

// TestAttributionDeterministic proves two identical runs produce
// byte-identical attribution reports, in both the diffable text form and
// the JSON embedding.
func TestAttributionDeterministic(t *testing.T) {
	run := func() (text, js []byte) {
		tc := tracegen.PopsLike().Scaled(0.01)
		attr, eng := runAttributed(t, tc, system.VR)
		if err := attr.Reconcile(eng); err != nil {
			t.Fatal(err)
		}
		r := attr.Report()
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		j, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), j
	}
	t1, j1 := run()
	t2, j2 := run()
	if !bytes.Equal(t1, t2) {
		t.Fatalf("text reports differ:\n%s\n---\n%s", t1, t2)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("JSON reports differ:\n%s\n---\n%s", j1, j2)
	}
}
