package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ChromeSpanWriter exports span trees in the Chrome trace_event format
// (load into chrome://tracing or Perfetto). Unlike probe.ChromeTrace, which
// plots raw events on category lanes, this exporter writes the *nested*
// causal spans: complete ("X") events whose durations are cycle counts, so
// the service interval visually contains its bus wait and the synonym
// resolutions it triggered. Zero-width spans become instant ("i") events.
type ChromeSpanWriter struct {
	w      *bufio.Writer
	closer io.Closer
	n      int
	err    error
}

// NewChromeSpanWriter creates an exporter writing one JSON trace document
// to w. If w is also an io.Closer (e.g. an *os.File), Close closes it.
func NewChromeSpanWriter(w io.Writer) *ChromeSpanWriter {
	c := &ChromeSpanWriter{w: bufio.NewWriter(w)}
	if cl, ok := w.(io.Closer); ok {
		c.closer = cl
	}
	c.raw(`{"displayTimeUnit":"ns","traceEvents":[`)
	return c
}

// chromeSpanEvent is one trace_event record.
type chromeSpanEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   uint64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ExportSpan implements SpanExporter. Each CPU is a pid so per-CPU tracks
// separate; nesting depth maps to tid, which Chrome renders as rows.
func (c *ChromeSpanWriter) ExportSpan(root *Span) error {
	var rec func(sp *Span, depth int)
	rec = func(sp *Span, depth int) {
		ev := chromeSpanEvent{
			Name: sp.Name,
			TS:   sp.Start,
			PID:  sp.CPU,
			TID:  depth,
			Cat:  sp.Mechanism,
			Args: map[string]any{"ref": sp.Ref},
		}
		if sp.VA != 0 {
			ev.Args["va"] = fmt.Sprintf("%#x", sp.VA)
		}
		if sp.PA != 0 {
			ev.Args["pa"] = fmt.Sprintf("%#x", sp.PA)
		}
		if sp.End > sp.Start {
			ev.Phase, ev.Dur = "X", sp.End-sp.Start
		} else {
			ev.Phase, ev.Scope = "i", "t"
		}
		c.record(ev)
		for _, child := range sp.Children {
			rec(child, depth+1)
		}
	}
	rec(root, 0)
	return c.err
}

func (c *ChromeSpanWriter) record(ev chromeSpanEvent) {
	b, err := json.Marshal(ev)
	if err != nil {
		if c.err == nil {
			c.err = err
		}
		return
	}
	if c.n > 0 {
		c.raw(",\n")
	}
	c.n++
	if _, err := c.w.Write(b); err != nil && c.err == nil {
		c.err = err
	}
}

func (c *ChromeSpanWriter) raw(s string) {
	if c.err == nil {
		if _, err := c.w.WriteString(s); err != nil {
			c.err = err
		}
	}
}

// Events returns the number of trace records written.
func (c *ChromeSpanWriter) Events() int { return c.n }

// Close writes the footer and flushes (closing the underlying writer when
// it is closable).
func (c *ChromeSpanWriter) Close() error {
	c.raw("]}\n")
	if err := c.w.Flush(); err != nil && c.err == nil {
		c.err = err
	}
	if c.closer != nil {
		if err := c.closer.Close(); err != nil && c.err == nil {
			c.err = err
		}
	}
	return c.err
}
