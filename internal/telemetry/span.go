package telemetry

import (
	"fmt"

	"repro/internal/probe"
	"repro/internal/stats"
)

// Span is one node of a causal span tree: a named interval of a CPU's cycle
// clock, with the mechanism activations it caused as children. A reference's
// tree reads top-down the way the paper's Section 3 walk does: the root is
// the whole reference, its children are the TLB consultation, the first-
// level lookup, the bus queueing, and the second-level/memory service, and
// the service span carries the synonym resolutions and bus transactions it
// triggered. Zero-width spans (Start == End) are instant markers.
type Span struct {
	Name      string  `json:"name"`
	Mechanism string  `json:"mechanism,omitempty"`
	CPU       int     `json:"cpu"`
	Ref       uint64  `json:"ref"`
	Start     uint64  `json:"startCycle"`
	End       uint64  `json:"endCycle"`
	VA        uint64  `json:"va,omitempty"`
	PA        uint64  `json:"pa,omitempty"`
	Children  []*Span `json:"children,omitempty"`
}

// Walk visits the span and all descendants, parents first.
func (s *Span) Walk(fn func(parent, span *Span)) {
	var rec func(parent, sp *Span)
	rec = func(parent, sp *Span) {
		fn(parent, sp)
		for _, c := range sp.Children {
			rec(sp, c)
		}
	}
	rec(nil, s)
}

// SpanExporter consumes completed span trees. Exporters that also implement
// `Close() error` are closed by Tracer.Close.
type SpanExporter interface {
	ExportSpan(*Span) error
}

// DefaultSpanSample is the 1-in-N sampling interval used when none is given.
const DefaultSpanSample = 4096

// Tracer is a probe Sink that assembles a causal span tree for every
// sampled reference (1 in N, deterministically: references 1, 1+N, 1+2N,
// ...). Cycle boundaries come from the timing events the cycle engine
// mirrors into the probe stream — the tracer reconstructs each CPU's clock
// by summing the charges, so span edges land exactly on the engine's
// cycle counts. Events of unsampled references cost a few compares and one
// add, with no allocation.
type Tracer struct {
	every   uint64
	exps    []SpanExporter
	clocks  []uint64 // per-agent reconstructed cycle clocks
	buf     []tracedEvent
	active  bool
	started bool
	curRef  uint64
	spans   uint64
	err     error
}

// tracedEvent is one buffered event of the active sampled reference with
// the owning CPU's clock at arrival.
type tracedEvent struct {
	ev    probe.Event
	clock uint64
}

// NewTracer creates a tracer sampling one reference in every (interval 0
// selects DefaultSpanSample), exporting completed trees to the given
// exporters.
func NewTracer(every uint64, exps ...SpanExporter) *Tracer {
	if every == 0 {
		every = DefaultSpanSample
	}
	return &Tracer{every: every, exps: exps}
}

// Every returns the sampling interval.
func (t *Tracer) Every() uint64 { return t.every }

// Spans returns the number of completed span trees exported so far.
func (t *Tracer) Spans() uint64 { return t.spans }

// clockOf returns agent id's reconstructed clock, growing the table on
// demand.
func (t *Tracer) clockOf(cpu int) uint64 {
	if cpu < 0 {
		cpu = 0
	}
	for cpu >= len(t.clocks) {
		t.clocks = append(t.clocks, 0)
	}
	return t.clocks[cpu]
}

// Event implements probe.Sink.
func (t *Tracer) Event(ev probe.Event) {
	if ev.Ref != t.curRef || !t.started {
		if t.active {
			t.finish()
		}
		t.curRef, t.started = ev.Ref, true
		t.active = ev.Ref > 0 && (ev.Ref-1)%t.every == 0
	}
	c := t.clockOf(ev.CPU)
	if t.active {
		t.buf = append(t.buf, tracedEvent{ev, c})
	}
	if ev.Kind.IsTiming() {
		t.clocks[clampCPU(ev.CPU)] = c + ev.Aux
	}
}

func clampCPU(cpu int) int {
	if cpu < 0 {
		return 0
	}
	return cpu
}

// finish builds and exports the active reference's tree.
func (t *Tracer) finish() {
	t.active = false
	if len(t.buf) == 0 {
		return
	}
	root := t.buildTree()
	t.buf = t.buf[:0]
	if root == nil {
		return
	}
	t.spans++
	for _, e := range t.exps {
		if err := e.ExportSpan(root); err != nil && t.err == nil {
			t.err = err
		}
	}
}

// mechanismOf labels the service span by the level that satisfied the
// reference, tracked from the access events preceding the charge.
func mechanismOf(level int) string {
	switch level {
	case 3:
		return "memory-service"
	case 2:
		return "l2-service"
	default:
		return "l1-service"
	}
}

// buildTree assembles the causal tree from the buffered events. The primary
// CPU is the one that issued the reference (the CPU of the first access
// event); its first buffered clock is the root's start and its final
// reconstructed clock the root's end. Functional events become instant
// markers, timing charges become intervals, and second-level markers
// (synonym resolutions, L2 lookups, bus transactions) nest under the
// service interval they belong to.
func (t *Tracer) buildTree() *Span {
	primary := -1
	var acc stats.AccessKind
	var va, pa uint64
	for _, te := range t.buf {
		switch te.ev.Kind {
		case probe.EvL1Hit, probe.EvL1Miss:
			if primary < 0 {
				primary = te.ev.CPU
				acc = te.ev.Access
				va, pa = uint64(te.ev.VA), uint64(te.ev.PA)
			}
		}
	}
	name := fmt.Sprintf("%s ref#%d", acc, t.curRef)
	if primary < 0 {
		// A record with no access event (e.g. a context switch): root on the
		// first event's CPU.
		primary = t.buf[0].ev.CPU
		name = fmt.Sprintf("%s ref#%d", t.buf[0].ev.Kind, t.curRef)
	}
	root := &Span{
		Name: name, CPU: primary, Ref: t.curRef,
		Start: t.buf[0].clock, VA: va, PA: pa,
	}
	for _, te := range t.buf {
		if te.ev.CPU == primary {
			root.Start = te.clock
			break
		}
	}

	level := 1
	var pendingL2 []*Span // markers that belong under the next service span
	addMarker := func(te tracedEvent, toService bool) *Span {
		m := &Span{
			Name: te.ev.Kind.String(), CPU: te.ev.CPU, Ref: te.ev.Ref,
			Start: te.clock, End: te.clock,
			VA: uint64(te.ev.VA), PA: uint64(te.ev.PA),
		}
		if te.ev.CPU != primary {
			m.Name = fmt.Sprintf("cpu%d %s", te.ev.CPU, te.ev.Kind)
			root.Children = append(root.Children, m)
			return m
		}
		if toService {
			pendingL2 = append(pendingL2, m)
		} else {
			root.Children = append(root.Children, m)
		}
		return m
	}
	interval := func(te tracedEvent, name, mech string) *Span {
		sp := &Span{
			Name: name, Mechanism: mech, CPU: te.ev.CPU, Ref: te.ev.Ref,
			Start: te.clock, End: te.clock + te.ev.Aux,
		}
		root.Children = append(root.Children, sp)
		return sp
	}

	for _, te := range t.buf {
		ev := te.ev
		onPrimary := ev.CPU == primary
		switch ev.Kind {
		case probe.EvL1Hit:
			if onPrimary {
				level = 1
			}
			addMarker(te, false)
		case probe.EvL1Miss:
			if onPrimary {
				level = 2
			}
			addMarker(te, false)
		case probe.EvL2Hit:
			if onPrimary {
				level = 2
			}
			addMarker(te, true)
		case probe.EvL2Miss:
			if onPrimary {
				level = 3
			}
			addMarker(te, true)
		case probe.EvSynSameSet, probe.EvSynMove, probe.EvSynCross, probe.EvSynBuffered:
			addMarker(te, onPrimary)
		case probe.EvBusRead, probe.EvBusReadMod, probe.EvBusInvalidate, probe.EvBusUpdate:
			addMarker(te, onPrimary)
		case probe.EvTimeBusWait:
			if onPrimary {
				interval(te, "bus-wait", "bus-wait")
			} else {
				addMarker(te, false)
			}
		case probe.EvTimeTLBMiss:
			if onPrimary {
				interval(te, "tlb-miss-walk", "tlb-miss")
			} else {
				addMarker(te, false)
			}
		case probe.EvTimeWBStall:
			if onPrimary {
				interval(te, "wb-stall", "wb-stall")
			} else {
				addMarker(te, false)
			}
		case probe.EvTimeCtxSwitch:
			if onPrimary {
				interval(te, "ctx-flush", "ctx-switch")
			} else {
				addMarker(te, false)
			}
		case probe.EvTimeAccess:
			if !onPrimary {
				addMarker(te, false)
				continue
			}
			mech := mechanismOf(level)
			sp := interval(te, mech, mech)
			sp.Children = append(sp.Children, pendingL2...)
			pendingL2 = nil
			level = 1
		default:
			addMarker(te, false)
		}
	}
	// Markers that never found a service span (e.g. an L2 drain after the
	// charge) stay on the root.
	root.Children = append(root.Children, pendingL2...)

	root.End = t.clockOf(primary)
	for _, c := range root.Children {
		if c.End > root.End {
			root.End = c.End
		}
	}
	return root
}

// Flush exports the pending tree, if any (the final sampled reference of a
// run has no successor to close it).
func (t *Tracer) Flush() {
	if t.active {
		t.finish()
	}
}

// Close implements the optional Sink close: it exports the pending tree and
// closes every owned exporter, returning the first error.
func (t *Tracer) Close() error {
	t.Flush()
	for _, e := range t.exps {
		if c, ok := e.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil && t.err == nil {
				t.err = err
			}
		}
	}
	return t.err
}
