package telemetry

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/cycles"
	"repro/internal/probe"
	"repro/internal/stats"
)

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.Module == "" || b.Version == "" || b.GoVersion == "" {
		t.Fatalf("incomplete build info: %+v", b)
	}
	if s := b.String(); !strings.Contains(s, b.GoVersion) {
		t.Fatalf("String() %q misses the go version", s)
	}
}

func TestTopKSpaceSaving(t *testing.T) {
	tk := NewTopK(2)
	tk.Add(1, 10)
	tk.Add(2, 5)
	tk.Add(3, 1) // evicts key 2 (the minimum), inherits weight 5
	top := tk.Top()
	if len(top) != 2 {
		t.Fatalf("got %d hitters, want 2", len(top))
	}
	if top[0].Key != 1 || top[0].Weight != 10 || top[0].OverBy != 0 {
		t.Fatalf("heaviest: %+v", top[0])
	}
	if top[1].Key != 3 || top[1].Weight != 6 || top[1].OverBy != 5 {
		t.Fatalf("takeover slot: %+v", top[1])
	}
	// Re-adding a tracked key must not evict.
	tk.Add(1, 1)
	if tk.Len() != 2 || tk.Top()[0].Weight != 11 {
		t.Fatalf("tracked-key update broke the sketch: %+v", tk.Top())
	}
	// Zero weights are ignored.
	tk.Add(99, 0)
	if tk.Len() != 2 {
		t.Fatal("zero-weight add must be a no-op")
	}
}

// collector captures exported span trees for inspection.
type collector struct{ roots []*Span }

func (c *collector) ExportSpan(s *Span) error { c.roots = append(c.roots, s); return nil }

// feedReference pushes one synthetic L2-hit reference through a sink: an L1
// miss, a bus wait of 3 cycles, the L2 access marker, and a 4-cycle service
// charge.
func feedReference(sink probe.Sink, ref uint64, cpu int) {
	evs := []probe.Event{
		{Ref: ref, CPU: cpu, Kind: probe.EvL1Miss, Access: stats.KindRead, VA: 0x1000, PA: 0x2000},
		{Ref: ref, CPU: cpu, Kind: probe.EvTimeBusWait, Aux: 3},
		{Ref: ref, CPU: cpu, Kind: probe.EvL2Hit, Access: stats.KindRead, VA: 0x1000, PA: 0x2000},
		{Ref: ref, CPU: cpu, Kind: probe.EvTimeAccess, Access: stats.KindRead, Aux: 4},
	}
	for _, ev := range evs {
		sink.Event(ev)
	}
}

func TestTracerBuildsCausalTree(t *testing.T) {
	col := &collector{}
	tr := NewTracer(1, col)
	feedReference(tr, 1, 0)
	feedReference(tr, 2, 0) // closes ref 1
	tr.Flush()              // closes ref 2

	if len(col.roots) != 2 || tr.Spans() != 2 {
		t.Fatalf("got %d trees (Spans()=%d), want 2", len(col.roots), tr.Spans())
	}
	root := col.roots[0]
	if root.Ref != 1 || root.Start != 0 || root.End != 7 {
		t.Fatalf("root boundaries: %+v", root)
	}
	var names []string
	root.Walk(func(parent, sp *Span) {
		if parent != nil {
			names = append(names, sp.Name)
		}
	})
	want := []string{"l1-miss", "bus-wait", "l2-service", "l2-hit"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("tree walk %v, want %v", names, want)
	}
	// The bus wait is the interval [0,3), the service charge [3,7), and
	// the L2 marker nests under the service span.
	for _, sp := range root.Children {
		switch sp.Name {
		case "bus-wait":
			if sp.Start != 0 || sp.End != 3 {
				t.Fatalf("bus-wait interval: %+v", sp)
			}
		case "l2-service":
			if sp.Start != 3 || sp.End != 7 || len(sp.Children) != 1 {
				t.Fatalf("service interval: %+v", sp)
			}
		}
	}
	// The second reference starts where the first left the clock.
	if col.roots[1].Start != 7 || col.roots[1].End != 14 {
		t.Fatalf("second tree boundaries: %+v", col.roots[1])
	}
}

func TestTracerSampling(t *testing.T) {
	col := &collector{}
	tr := NewTracer(4, col)
	for ref := uint64(1); ref <= 9; ref++ {
		feedReference(tr, ref, 0)
	}
	tr.Flush()
	// References 1, 5, 9 are the sampled ones.
	if len(col.roots) != 3 {
		t.Fatalf("sampled %d trees, want 3", len(col.roots))
	}
	for i, want := range []uint64{1, 5, 9} {
		if col.roots[i].Ref != want {
			t.Fatalf("tree %d is ref %d, want %d", i, col.roots[i].Ref, want)
		}
	}
	// Unsampled clocks still advance: ref 5's tree starts at 4*7.
	if col.roots[1].Start != 28 {
		t.Fatalf("ref 5 starts at %d, want 28", col.roots[1].Start)
	}
}

func TestSpanExportersProduceValidJSON(t *testing.T) {
	var otlpBuf, chromeBuf bytes.Buffer
	ow := NewOTLPWriter(&otlpBuf)
	cw := NewChromeSpanWriter(&chromeBuf)
	tr := NewTracer(1, ow, cw)
	feedReference(tr, 1, 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var otlp struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					TraceID      string `json:"traceId"`
					SpanID       string `json:"spanId"`
					ParentSpanID string `json:"parentSpanId"`
					Name         string `json:"name"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(otlpBuf.Bytes(), &otlp); err != nil {
		t.Fatalf("OTLP output is not JSON: %v\n%s", err, otlpBuf.String())
	}
	spans := otlp.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) != 5 || ow.Spans() != 5 { // root + 4 nodes
		t.Fatalf("OTLP spans: %d (writer says %d), want 5", len(spans), ow.Spans())
	}
	if spans[0].ParentSpanID != "" || spans[1].ParentSpanID != spans[0].SpanID {
		t.Fatalf("parent links broken: %+v", spans[:2])
	}

	var chrome struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			Dur   uint64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chromeBuf.Bytes(), &chrome); err != nil {
		t.Fatalf("Chrome output is not JSON: %v\n%s", err, chromeBuf.String())
	}
	if len(chrome.TraceEvents) != 5 || cw.Events() != 5 {
		t.Fatalf("chrome events: %d, want 5", len(chrome.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range chrome.TraceEvents {
		phases[ev.Phase]++
	}
	if phases["X"] != 3 || phases["i"] != 2 { // root, bus-wait, service + 2 markers
		t.Fatalf("phase mix %v, want 3 X and 2 i", phases)
	}
}

func TestRecorderRingAndDump(t *testing.T) {
	rec := NewRecorder(RecorderConfig{EventsPerCPU: 4, Label: "test"})
	for seq := uint64(1); seq <= 10; seq++ {
		rec.Event(probe.Event{Seq: seq, Ref: seq, CPU: int(seq % 2), Kind: probe.EvL1Hit})
	}
	data, err := rec.Dump("unit test")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseBundle(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Two CPUs, ring of 4 each: events 3..10 survive, in Seq order.
	if len(b.Events) != 8 || b.Events[0].Seq != 3 || b.Events[7].Seq != 10 {
		t.Fatalf("ring contents: %+v", b.Events)
	}
	if b.Trigger != "on-demand" || b.Detail != "unit test" || b.Label != "test" || b.Ref != 10 {
		t.Fatalf("bundle header: %+v", b)
	}
	if rec.Dumps() != 1 {
		t.Fatalf("Dumps() = %d, want 1", rec.Dumps())
	}
}

func TestRecorderAuditTriggerWritesBundle(t *testing.T) {
	dir := t.TempDir()
	snap := &audit.Snapshot{Organization: "VR"}
	rec := NewRecorder(RecorderConfig{Dir: dir, EventsPerCPU: 8})
	rec.Event(probe.Event{Seq: 1, Ref: 1, CPU: 0, Kind: probe.EvL1Miss})

	rec.OnAudit(snap, nil) // clean audit: snapshot retained, no dump
	if rec.Dumps() != 0 {
		t.Fatal("clean audit must not dump")
	}
	v := audit.Violation{Invariant: audit.InvInclusion, CPU: -1, Location: "x", Detail: "d"}
	rec.OnAudit(snap, []audit.Violation{v})
	if rec.Dumps() != 1 {
		t.Fatal("violating audit must dump")
	}
	files, err := filepath.Glob(filepath.Join(dir, "flightrec-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("bundle files: %v, %v", files, err)
	}
	b, err := ReadBundle(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Trigger != "audit-violation" || b.Snapshot == nil || len(b.Violations) != 1 ||
		len(b.Events) != 1 || b.Events[0].Kind != "l1-miss" {
		t.Fatalf("bundle: %+v", b)
	}
}

func TestRecorderLatencyTrigger(t *testing.T) {
	rec := NewRecorder(RecorderConfig{EventsPerCPU: 8, LatencyThreshold: 10})
	rec.Event(probe.Event{Seq: 1, Ref: 1, CPU: 0, Kind: probe.EvTimeAccess, Aux: 9})
	if rec.Dumps() != 0 {
		t.Fatal("below-threshold access must not dump")
	}
	rec.Event(probe.Event{Seq: 2, Ref: 2, CPU: 0, Kind: probe.EvTimeAccess, Aux: 10})
	if rec.Dumps() != 1 {
		t.Fatal("threshold access must dump")
	}
}

func TestRecorderBundleCap(t *testing.T) {
	rec := NewRecorder(RecorderConfig{EventsPerCPU: 2, MaxBundles: 2})
	rec.Event(probe.Event{Seq: 1, Ref: 1, Kind: probe.EvL1Hit})
	if _, err := rec.Dump("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Dump("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Dump("c"); err == nil {
		t.Fatal("dump past the cap must error")
	}
	if rec.Dumps() != 2 {
		t.Fatalf("Dumps() = %d, want 2", rec.Dumps())
	}
}

func TestRecorderRequestDump(t *testing.T) {
	rec := NewRecorder(RecorderConfig{EventsPerCPU: 8})
	rec.Event(probe.Event{Seq: 1, Ref: 1, Kind: probe.EvL1Hit})

	done := make(chan error, 1)
	go func() {
		data, err := rec.RequestDump("http", 5*time.Second)
		if err == nil {
			if _, perr := ParseBundle(bytes.NewReader(data)); perr != nil {
				err = perr
			}
		}
		done <- err
	}()
	// The simulation goroutine polls the mailbox on each event.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			return
		case <-deadline:
			t.Fatal("request never answered")
		default:
			rec.Event(probe.Event{Seq: 2, Ref: 2, Kind: probe.EvL1Hit})
		}
	}
}

func TestRecorderRequestDumpTimesOutWhenIdle(t *testing.T) {
	rec := NewRecorder(RecorderConfig{EventsPerCPU: 8})
	if _, err := rec.RequestDump("http", 10*time.Millisecond); err != ErrRecorderIdle {
		t.Fatalf("err = %v, want ErrRecorderIdle", err)
	}
	// Close answers a still-pending request from the final ring state
	// instead of leaving the HTTP caller hanging on a finished run.
	done := make(chan error, 1)
	go func() {
		_, err := rec.RequestDump("late", 5*time.Second)
		done <- err
	}()
	for rec.req.Load() == nil { // wait until the mailbox holds the request
		time.Sleep(time.Millisecond)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("close-time answer: %v", err)
	}
}

func TestParseBundleRejectsGarbage(t *testing.T) {
	if _, err := ParseBundle(strings.NewReader("{}")); err == nil {
		t.Fatal("bundle without trigger must be rejected")
	}
	if _, err := ParseBundle(strings.NewReader(`{"trigger":"x","bogus":1}`)); err == nil {
		t.Fatal("unknown fields must be rejected")
	}
	if _, err := ReadBundle(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestAttributionBlameAndHitters(t *testing.T) {
	a := NewAttribution(AttrConfig{TopK: 4, PageSize: 4096, L2Sets: 8, L2Block: 32})
	feedReference(a, 1, 0) // L2 hit: 4 service cycles at level 2, 3 bus-wait
	a.Event(probe.Event{Ref: 2, CPU: 0, Kind: probe.EvL1Miss, VA: 0x1000, PA: 0x2000})
	a.Event(probe.Event{Ref: 2, CPU: 0, Kind: probe.EvL2Miss, VA: 0x1000, PA: 0x2000})
	a.Event(probe.Event{Ref: 2, CPU: 0, Kind: probe.EvSynMove, VA: 0x1000, PA: 0x2000})
	a.Event(probe.Event{Ref: 2, CPU: 0, Kind: probe.EvTimeTLBMiss, Aux: 8})
	a.Event(probe.Event{Ref: 2, CPU: 0, Kind: probe.EvTimeAccess, Access: stats.KindRead, Aux: 21})
	a.Event(probe.Event{Ref: 3, CPU: 1, Kind: probe.EvL1Hit, VA: 0x40, PA: 0x40})
	a.Event(probe.Event{Ref: 3, CPU: 1, Kind: probe.EvTimeAccess, Access: stats.KindRead, Aux: 1})

	r := a.Report()
	if r.Refs != 3 || r.TotalCycles != 4+3+8+21+1 {
		t.Fatalf("totals: %+v", r)
	}
	wantMech := map[string]uint64{
		"l1-service": 1, "l2-service": 4, "memory-service": 21,
		"tlb-miss": 8, "bus-wait": 3, "wb-stall": 0, "ctx-switch": 0,
	}
	for _, m := range r.Mechanisms {
		if m.Cycles != wantMech[m.Mechanism] {
			t.Fatalf("%s = %d, want %d", m.Mechanism, m.Cycles, wantMech[m.Mechanism])
		}
	}
	if len(r.CPUs) != 2 || r.CPUs[0].L1Misses != 2 || r.CPUs[0].L2Misses != 1 || r.CPUs[0].Synonyms != 1 {
		t.Fatalf("per-cpu: %+v", r.CPUs)
	}
	if len(r.TopPagesByMiss) != 1 || r.TopPagesByMiss[0].Key != 1 || r.TopPagesByMiss[0].Weight != 2 {
		t.Fatalf("page hitters: %+v", r.TopPagesByMiss)
	}
	// PA 0x2000, block 32, 8 sets: block 256 % 8 = set 0.
	if len(r.TopSetsByL2Miss) != 1 || r.TopSetsByL2Miss[0].Key != 0 {
		t.Fatalf("set hitters: %+v", r.TopSetsByL2Miss)
	}
	if len(r.TopCPUsByBusWait) != 1 || r.TopCPUsByBusWait[0].Key != 0 || r.TopCPUsByBusWait[0].Weight != 3 {
		t.Fatalf("cpu hitters: %+v", r.TopCPUsByBusWait)
	}

	// The monitor converters carry the same numbers.
	bm := r.BlameMetrics()
	if len(bm) != int(NumMechanisms) || bm[2].Mechanism != "memory-service" || bm[2].Cycles != 21 {
		t.Fatalf("blame metrics: %+v", bm)
	}
	if tm := r.TopMetrics(); len(tm) != 4 {
		t.Fatalf("top metrics: %+v", tm)
	}
}

func TestReconcileCatchesDrift(t *testing.T) {
	eng := cycles.MustNew(cycles.Params{T1: 1, T2: 4, TM: 20}, nil)
	eng.CPU(0).EndAccess(stats.KindRead, 1) // 1 cycle on the engine's books
	a := NewAttribution(AttrConfig{})
	if err := a.Reconcile(eng); err == nil {
		t.Fatal("attribution saw nothing; reconcile must fail")
	}
	// Mirror the charge and it reconciles.
	a.Event(probe.Event{Ref: 1, CPU: 0, Kind: probe.EvL1Hit})
	a.Event(probe.Event{Ref: 1, CPU: 0, Kind: probe.EvTimeAccess, Access: stats.KindRead, Aux: 1})
	if err := a.Reconcile(eng); err != nil {
		t.Fatal(err)
	}
}

func TestWriteTextAndDiffDeterministic(t *testing.T) {
	mk := func() *AttributionReport {
		a := NewAttribution(AttrConfig{TopK: 4, PageSize: 4096, L2Sets: 8, L2Block: 32})
		feedReference(a, 1, 0)
		return a.Report()
	}
	r1, r2 := mk(), mk()
	var b1, b2 bytes.Buffer
	if err := r1.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("text reports differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
	var d bytes.Buffer
	if err := DiffText(&d, "a", r1, "b", r2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.String(), "l2-service") || !strings.Contains(d.String(), "+0") {
		t.Fatalf("diff output:\n%s", d.String())
	}
}
