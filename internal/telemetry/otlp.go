package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// OTLPWriter exports span trees as a single OTLP-style (OpenTelemetry
// protocol, JSON file encoding) document: resourceSpans → scopeSpans →
// spans, with traceId derived from the reference index and explicit
// parentSpanId links. Cycle counts are carried in the *TimeUnixNano fields
// (one cycle = one nanosecond), encoded as decimal strings per the OTLP
// JSON mapping, so standard trace tooling renders the trees unmodified.
type OTLPWriter struct {
	w      *bufio.Writer
	closer io.Closer
	n      int
	spanID uint64
	err    error
}

// NewOTLPWriter creates an exporter writing one OTLP JSON document to w. If
// w is also an io.Closer (e.g. an *os.File), Close closes it after the
// footer.
func NewOTLPWriter(w io.Writer) *OTLPWriter {
	return NewOTLPWriterService(w, "vrsim")
}

// NewOTLPWriterService is NewOTLPWriter with an explicit OTLP resource
// service name (the job daemon exports as "vrsimd" so its traces are
// distinguishable from in-process vrsim runs).
func NewOTLPWriterService(w io.Writer, service string) *OTLPWriter {
	o := &OTLPWriter{w: bufio.NewWriter(w)}
	if cl, ok := w.(io.Closer); ok {
		o.closer = cl
	}
	svc, err := json.Marshal(service)
	if err != nil {
		svc = []byte(`"vrsim"`)
	}
	o.raw(`{"resourceSpans":[{"resource":{"attributes":[` +
		`{"key":"service.name","value":{"stringValue":` + string(svc) + `}}]},` +
		`"scopeSpans":[{"scope":{"name":"repro/internal/telemetry"},"spans":[`)
	return o
}

// otlpSpan is one span record in the OTLP JSON file encoding.
type otlpSpan struct {
	TraceID      string   `json:"traceId"`
	SpanID       string   `json:"spanId"`
	ParentSpanID string   `json:"parentSpanId,omitempty"`
	Name         string   `json:"name"`
	Kind         int      `json:"kind"`
	Start        string   `json:"startTimeUnixNano"`
	End          string   `json:"endTimeUnixNano"`
	Attributes   []otlpKV `json:"attributes,omitempty"`
}

type otlpKV struct {
	Key   string   `json:"key"`
	Value otlpAnyV `json:"value"`
}

type otlpAnyV struct {
	StringValue string `json:"stringValue,omitempty"`
	IntValue    string `json:"intValue,omitempty"`
}

func kvInt(key string, v uint64) otlpKV {
	return otlpKV{Key: key, Value: otlpAnyV{IntValue: fmt.Sprintf("%d", v)}}
}

func kvStr(key, v string) otlpKV {
	return otlpKV{Key: key, Value: otlpAnyV{StringValue: v}}
}

// ExportSpan implements SpanExporter: the tree is flattened parents-first,
// all nodes sharing a traceId derived from the root's reference index.
func (o *OTLPWriter) ExportSpan(root *Span) error {
	return o.ExportSpanTrace(fmt.Sprintf("%032x", root.Ref), root)
}

// ExportSpanTrace exports the tree under an explicit 32-hex-digit traceId.
// The job server uses it to stitch daemon-side lifecycle spans and in-sim
// reference spans into one trace per job (traceId derived from the job ID).
func (o *OTLPWriter) ExportSpanTrace(traceID string, root *Span) error {
	ids := map[*Span]string{}
	root.Walk(func(parent, sp *Span) {
		o.spanID++
		id := fmt.Sprintf("%016x", o.spanID)
		ids[sp] = id
		rec := otlpSpan{
			TraceID: traceID,
			SpanID:  id,
			Name:    sp.Name,
			Kind:    1, // SPAN_KIND_INTERNAL
			Start:   fmt.Sprintf("%d", sp.Start),
			End:     fmt.Sprintf("%d", sp.End),
			Attributes: []otlpKV{
				kvInt("vrsim.cpu", uint64(sp.CPU)),
				kvInt("vrsim.ref", sp.Ref),
			},
		}
		if parent != nil {
			rec.ParentSpanID = ids[parent]
		}
		if sp.Mechanism != "" {
			rec.Attributes = append(rec.Attributes, kvStr("vrsim.mechanism", sp.Mechanism))
		}
		if sp.VA != 0 {
			rec.Attributes = append(rec.Attributes, kvStr("vrsim.va", fmt.Sprintf("%#x", sp.VA)))
		}
		if sp.PA != 0 {
			rec.Attributes = append(rec.Attributes, kvStr("vrsim.pa", fmt.Sprintf("%#x", sp.PA)))
		}
		o.record(rec)
	})
	return o.err
}

func (o *OTLPWriter) record(rec otlpSpan) {
	b, err := json.Marshal(rec)
	if err != nil {
		if o.err == nil {
			o.err = err
		}
		return
	}
	if o.n > 0 {
		o.raw(",\n")
	}
	o.n++
	if _, err := o.w.Write(b); err != nil && o.err == nil {
		o.err = err
	}
}

func (o *OTLPWriter) raw(s string) {
	if o.err == nil {
		if _, err := o.w.WriteString(s); err != nil {
			o.err = err
		}
	}
}

// Spans returns the number of span records written.
func (o *OTLPWriter) Spans() int { return o.n }

// Close writes the footer and flushes (closing the underlying writer when
// it is closable).
func (o *OTLPWriter) Close() error {
	o.raw("]}]}]}\n")
	if err := o.w.Flush(); err != nil && o.err == nil {
		o.err = err
	}
	if o.closer != nil {
		if err := o.closer.Close(); err != nil && o.err == nil {
			o.err = err
		}
	}
	return o.err
}
