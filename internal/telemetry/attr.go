package telemetry

import (
	"fmt"
	"io"

	"repro/internal/cycles"
	"repro/internal/monitor"
	"repro/internal/probe"
)

// Mechanism identifies one sink of measured access cycles. The first three
// split the engine's service charge (one term per reference) by the level
// that satisfied it; the rest mirror the engine's non-service charges.
type Mechanism int

// Mechanisms, in report order.
const (
	MechL1Service Mechanism = iota
	MechL2Service
	MechMemoryService
	MechTLBMiss
	MechBusWait
	MechWBStall
	MechCtxSwitch
	NumMechanisms
)

var mechNames = [NumMechanisms]string{
	MechL1Service:     "l1-service",
	MechL2Service:     "l2-service",
	MechMemoryService: "memory-service",
	MechTLBMiss:       "tlb-miss",
	MechBusWait:       "bus-wait",
	MechWBStall:       "wb-stall",
	MechCtxSwitch:     "ctx-switch",
}

// String returns the mechanism's stable report name.
func (m Mechanism) String() string {
	if m >= 0 && m < NumMechanisms {
		return mechNames[m]
	}
	return fmt.Sprintf("Mechanism(%d)", int(m))
}

// AttrConfig configures the attribution profiler.
type AttrConfig struct {
	// TopK sizes each heavy-hitter sketch (0 = DefaultAttrTopK).
	TopK int
	// PageSize buckets addresses into pages (0 = 4096).
	PageSize uint64
	// L2Sets and L2Block locate the second-level set of a physical address
	// for the hot-set sketch; zero L2Sets disables set tracking.
	L2Sets  int
	L2Block uint64
}

// DefaultAttrTopK is the heavy-hitter sketch size used when none is given.
const DefaultAttrTopK = 16

// cpuAttr is one CPU's running attribution state.
type cpuAttr struct {
	level    int // level that will satisfy the in-flight reference (1/2/3)
	refs     uint64
	l1Misses uint64
	l2Misses uint64
	synonyms uint64
	blame    [NumMechanisms]uint64
}

// Attribution is a probe Sink that splits every measured cycle by the
// mechanism that consumed it and tracks the heavy hitters behind the
// expensive ones. The split is exact by construction: the engine mirrors
// every charge into the event stream, service charges are classified by the
// access events that preceded them, and Reconcile proves the sums equal the
// engine's per-agent clocks to the cycle.
type Attribution struct {
	cfg       AttrConfig
	cpus      []*cpuAttr
	pagesMiss *TopK // VA page → L1 misses
	pagesSyn  *TopK // page (PA when known) → synonym resolutions
	setsMiss  *TopK // L2 set → L2 misses
}

// NewAttribution creates an attribution profiler.
func NewAttribution(cfg AttrConfig) *Attribution {
	if cfg.TopK <= 0 {
		cfg.TopK = DefaultAttrTopK
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if cfg.L2Block == 0 {
		cfg.L2Block = 32
	}
	return &Attribution{
		cfg:       cfg,
		pagesMiss: NewTopK(cfg.TopK),
		pagesSyn:  NewTopK(cfg.TopK),
		setsMiss:  NewTopK(cfg.TopK),
	}
}

func (a *Attribution) cpuFor(cpu int) *cpuAttr {
	cpu = clampCPU(cpu)
	for cpu >= len(a.cpus) {
		a.cpus = append(a.cpus, &cpuAttr{level: 1})
	}
	return a.cpus[cpu]
}

func (a *Attribution) page(va, pa uint64) uint64 {
	if pa != 0 {
		return pa / a.cfg.PageSize
	}
	return va / a.cfg.PageSize
}

// Event implements probe.Sink.
func (a *Attribution) Event(ev probe.Event) {
	c := a.cpuFor(ev.CPU)
	switch ev.Kind {
	case probe.EvL1Hit:
		c.level = 1
	case probe.EvL1Miss:
		c.level = 2
		c.l1Misses++
		a.pagesMiss.Add(uint64(ev.VA)/a.cfg.PageSize, 1)
	case probe.EvL2Hit:
		c.level = 2
	case probe.EvL2Miss:
		c.level = 3
		c.l2Misses++
		if a.cfg.L2Sets > 0 {
			a.setsMiss.Add(uint64(ev.PA)/a.cfg.L2Block%uint64(a.cfg.L2Sets), 1)
		}
	case probe.EvSynSameSet, probe.EvSynMove, probe.EvSynCross, probe.EvSynBuffered:
		c.synonyms++
		a.pagesSyn.Add(a.page(uint64(ev.VA), uint64(ev.PA)), 1)
	case probe.EvTimeAccess:
		switch c.level {
		case 3:
			c.blame[MechMemoryService] += ev.Aux
		case 2:
			c.blame[MechL2Service] += ev.Aux
		default:
			c.blame[MechL1Service] += ev.Aux
		}
		c.refs++
		c.level = 1
	case probe.EvTimeTLBMiss:
		c.blame[MechTLBMiss] += ev.Aux
	case probe.EvTimeBusWait:
		c.blame[MechBusWait] += ev.Aux
	case probe.EvTimeWBStall:
		c.blame[MechWBStall] += ev.Aux
	case probe.EvTimeCtxSwitch:
		c.blame[MechCtxSwitch] += ev.Aux
	}
}

// MechBlame is one mechanism's share of the measured cycles.
type MechBlame struct {
	Mechanism string `json:"mechanism"`
	Cycles    uint64 `json:"cycles"`
}

// CPUBlame is one CPU's attribution: its clock reconstruction and the
// per-mechanism split.
type CPUBlame struct {
	CPU        int         `json:"cpu"`
	Refs       uint64      `json:"refs"`
	Cycles     uint64      `json:"cycles"`
	L1Misses   uint64      `json:"l1Misses"`
	L2Misses   uint64      `json:"l2Misses"`
	Synonyms   uint64      `json:"synonyms"`
	Mechanisms []MechBlame `json:"mechanisms"`
}

// AttributionReport is the profiler's summary: machine-wide and per-CPU
// blame, plus the heavy hitters. It serializes deterministically — fixed
// mechanism order, sketch output sorted weight-then-key.
type AttributionReport struct {
	Refs              uint64      `json:"refs"`
	TotalCycles       uint64      `json:"totalCycles"`
	Mechanisms        []MechBlame `json:"mechanisms"`
	CPUs              []CPUBlame  `json:"cpus"`
	TopPagesByMiss    []Hitter    `json:"topPagesByMiss,omitempty"`
	TopPagesBySynonym []Hitter    `json:"topPagesBySynonym,omitempty"`
	TopSetsByL2Miss   []Hitter    `json:"topSetsByL2Miss,omitempty"`
	TopCPUsByBusWait  []Hitter    `json:"topCPUsByBusWait,omitempty"`
}

// Report summarizes the stream seen so far.
func (a *Attribution) Report() *AttributionReport {
	r := &AttributionReport{
		Mechanisms:        make([]MechBlame, NumMechanisms),
		TopPagesByMiss:    a.pagesMiss.Top(),
		TopPagesBySynonym: a.pagesSyn.Top(),
		TopSetsByL2Miss:   a.setsMiss.Top(),
	}
	for m := Mechanism(0); m < NumMechanisms; m++ {
		r.Mechanisms[m].Mechanism = m.String()
	}
	for id, c := range a.cpus {
		cb := CPUBlame{
			CPU: id, Refs: c.refs,
			L1Misses: c.l1Misses, L2Misses: c.l2Misses, Synonyms: c.synonyms,
			Mechanisms: make([]MechBlame, NumMechanisms),
		}
		for m := Mechanism(0); m < NumMechanisms; m++ {
			cyc := c.blame[m]
			cb.Mechanisms[m] = MechBlame{Mechanism: m.String(), Cycles: cyc}
			cb.Cycles += cyc
			r.Mechanisms[m].Cycles += cyc
		}
		r.Refs += c.refs
		r.TotalCycles += cb.Cycles
		r.CPUs = append(r.CPUs, cb)
		if w := c.blame[MechBusWait]; w > 0 {
			r.TopCPUsByBusWait = append(r.TopCPUsByBusWait, Hitter{Key: uint64(id), Weight: w})
		}
	}
	sortHittersByWeight(r.TopCPUsByBusWait)
	return r
}

func sortHittersByWeight(hs []Hitter) {
	for i := 1; i < len(hs); i++ { // insertion sort: n is tiny and stable order matters
		for j := i; j > 0 && (hs[j].Weight > hs[j-1].Weight ||
			(hs[j].Weight == hs[j-1].Weight && hs[j].Key < hs[j-1].Key)); j-- {
			hs[j], hs[j-1] = hs[j-1], hs[j]
		}
	}
}

// Tacc returns the report's measured effective access time in cycles per
// reference.
func (r *AttributionReport) Tacc() float64 {
	if r.Refs == 0 {
		return 0
	}
	return float64(r.TotalCycles) / float64(r.Refs)
}

// Reconcile checks the attribution against the engine's books and returns a
// descriptive error on the first cycle of disagreement. The three service
// mechanisms must sum to each agent's Access cycles, each remaining
// mechanism must equal its breakdown counter, and the per-CPU totals must
// equal the agent clocks — cycle-exact, not approximate.
func (a *Attribution) Reconcile(eng *cycles.Engine) error {
	n := eng.Agents()
	if len(a.cpus) > n {
		n = len(a.cpus)
	}
	for id := 0; id < n; id++ {
		var c cpuAttr
		if id < len(a.cpus) {
			c = *a.cpus[id]
		}
		at := eng.Agent(id)
		service := c.blame[MechL1Service] + c.blame[MechL2Service] + c.blame[MechMemoryService]
		checks := []struct {
			name string
			got  uint64
			want uint64
		}{
			{"service (l1+l2+memory)", service, at.Access},
			{"tlb-miss", c.blame[MechTLBMiss], at.TLB},
			{"bus-wait", c.blame[MechBusWait], at.BusWait},
			{"wb-stall", c.blame[MechWBStall], at.Stall},
			{"ctx-switch", c.blame[MechCtxSwitch], at.Ctx},
			{"clock", service + c.blame[MechTLBMiss] + c.blame[MechBusWait] +
				c.blame[MechWBStall] + c.blame[MechCtxSwitch], at.Clock},
			{"refs", c.refs, at.Refs},
		}
		for _, ch := range checks {
			if ch.got != ch.want {
				return fmt.Errorf("telemetry: cpu %d %s: attributed %d, engine %d",
					id, ch.name, ch.got, ch.want)
			}
		}
	}
	return nil
}

// WriteText renders the report as the diffable text form: fixed column
// layout, deterministic ordering, no timestamps.
func (r *AttributionReport) WriteText(w io.Writer) error {
	_, err := fmt.Fprintf(w, "cycle attribution: %d refs, %d cycles, Tacc %.4f\n",
		r.Refs, r.TotalCycles, r.Tacc())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %14s %8s\n", "mechanism", "cycles", "share")
	for _, m := range r.Mechanisms {
		fmt.Fprintf(w, "%-16s %14d %7.2f%%\n", m.Mechanism, m.Cycles, share(m.Cycles, r.TotalCycles))
	}
	for _, c := range r.CPUs {
		fmt.Fprintf(w, "cpu %d: %d refs, %d cycles, %d l1-misses, %d l2-misses, %d synonyms\n",
			c.CPU, c.Refs, c.Cycles, c.L1Misses, c.L2Misses, c.Synonyms)
		for _, m := range c.Mechanisms {
			if m.Cycles > 0 {
				fmt.Fprintf(w, "  %-16s %14d %7.2f%%\n", m.Mechanism, m.Cycles, share(m.Cycles, c.Cycles))
			}
		}
	}
	writeHitters(w, "top pages by l1-miss", r.TopPagesByMiss, "page %#x")
	writeHitters(w, "top pages by synonym", r.TopPagesBySynonym, "page %#x")
	writeHitters(w, "top l2 sets by miss", r.TopSetsByL2Miss, "set %d")
	writeHitters(w, "top cpus by bus-wait", r.TopCPUsByBusWait, "cpu %d")
	return nil
}

func share(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func writeHitters(w io.Writer, title string, hs []Hitter, keyFormat string) {
	if len(hs) == 0 {
		return
	}
	fmt.Fprintf(w, "%s:\n", title)
	for _, h := range hs {
		fmt.Fprintf(w, "  %-14s weight %d", fmt.Sprintf(keyFormat, h.Key), h.Weight)
		if h.OverBy > 0 {
			fmt.Fprintf(w, " (over-estimate <= %d)", h.OverBy)
		}
		fmt.Fprintln(w)
	}
}

// DiffText renders a mechanism-by-mechanism comparison of two reports (the
// V-R vs R-R question: where do the extra cycles go). Reports label the
// columns; positive deltas mean b spends more.
func DiffText(w io.Writer, aLabel string, a *AttributionReport, bLabel string, b *AttributionReport) error {
	_, err := fmt.Fprintf(w, "attribution diff: %s (Tacc %.4f) vs %s (Tacc %.4f)\n",
		aLabel, a.Tacc(), bLabel, b.Tacc())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %14s %14s %14s %10s\n", "mechanism", aLabel, bLabel, "delta", "per-ref")
	for m := Mechanism(0); m < NumMechanisms; m++ {
		av, bv := a.Mechanisms[m].Cycles, b.Mechanisms[m].Cycles
		var perRef float64
		if b.Refs > 0 && a.Refs > 0 {
			perRef = float64(bv)/float64(b.Refs) - float64(av)/float64(a.Refs)
		}
		fmt.Fprintf(w, "%-16s %14d %14d %+14d %+10.4f\n",
			m.String(), av, bv, int64(bv)-int64(av), perRef)
	}
	return nil
}

// BlameMetrics converts the machine-wide blame to the monitor's metric
// type for Prometheus export.
func (r *AttributionReport) BlameMetrics() []monitor.BlameMetric {
	out := make([]monitor.BlameMetric, 0, len(r.Mechanisms))
	for _, m := range r.Mechanisms {
		out = append(out, monitor.BlameMetric{Mechanism: m.Mechanism, Cycles: m.Cycles})
	}
	return out
}

// TopMetrics converts the heavy hitters to the monitor's metric type.
func (r *AttributionReport) TopMetrics() []monitor.HeavyHitter {
	var out []monitor.HeavyHitter
	add := func(dim, keyFormat string, hs []Hitter) {
		for _, h := range hs {
			out = append(out, monitor.HeavyHitter{
				Dimension: dim, Key: fmt.Sprintf(keyFormat, h.Key), Weight: h.Weight,
			})
		}
	}
	add("page-miss", "%#x", r.TopPagesByMiss)
	add("page-synonym", "%#x", r.TopPagesBySynonym)
	add("l2-set-miss", "%d", r.TopSetsByL2Miss)
	add("cpu-bus-wait", "%d", r.TopCPUsByBusWait)
	return out
}
