// Package telemetry is the simulator's causal-observability layer, built on
// the probe event stream (internal/probe) and the cycle engine's timing
// charges (internal/cycles). It answers the question the aggregate counters
// cannot: not just *that* two configurations differ, but *why* — which
// mechanism each cycle of measured Tacc went to, which pages and sets are
// the heavy hitters, and what the machine was doing in the moments before a
// failure.
//
// Three tools live here, all attachable as probe Sinks:
//
//   - Tracer: sampled causal span trees, one per 1-in-N memory reference,
//     assembled from the event stream with cycle boundaries reconstructed
//     from the timing charges. Exported as nested Chrome trace_event spans
//     and as an OTLP-style JSON file.
//   - Recorder: a flight recorder — fixed-size per-CPU rings of the most
//     recent probe events plus the last audit snapshot, dumped to a
//     post-mortem bundle on an audit violation, on a latency sample above a
//     configurable threshold, or on demand over HTTP.
//   - Attribution: a cycle-attribution profiler — a per-mechanism "blame"
//     breakdown of measured Tacc that reconciles exactly (to the cycle)
//     with the engine's clocks, plus space-saving top-K heavy hitters
//     (pages, cache sets, CPUs).
//
// Everything follows the repo's hot-path discipline: the per-event work of
// an armed recorder or an unsampled reference is a few compares and adds,
// with no allocation.
package telemetry

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the binary that produced a report or post-mortem
// bundle, so artifacts are self-identifying when they outlive the build.
type BuildInfo struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
	Revision  string `json:"revision,omitempty"`
}

// Build returns the running binary's identity from the embedded Go build
// information. Binaries built from a working tree report version "(devel)".
func Build() BuildInfo {
	bi := BuildInfo{Module: "repro", Version: "(devel)", GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if info.Main.Path != "" {
		bi.Module = info.Main.Path
	}
	if info.Main.Version != "" {
		bi.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			bi.Revision = s.Value
		}
	}
	return bi
}

// String renders the build identity as a single report-header line.
func (b BuildInfo) String() string {
	s := fmt.Sprintf("%s %s %s", b.Module, b.Version, b.GoVersion)
	if b.Revision != "" {
		r := b.Revision
		if len(r) > 12 {
			r = r[:12]
		}
		s += " (" + r + ")"
	}
	return s
}
