package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/probe"
)

// Default flight-recorder parameters.
const (
	DefaultRecEventsPerCPU = 1024
	DefaultRecMaxBundles   = 8
)

// RecorderConfig configures a flight recorder.
type RecorderConfig struct {
	// Dir receives post-mortem bundle files (flightrec-NNN-<trigger>.json).
	// Empty keeps bundles in memory only (the HTTP on-demand path).
	Dir string
	// EventsPerCPU sizes each per-CPU ring (0 = DefaultRecEventsPerCPU).
	EventsPerCPU int
	// LatencyThreshold, when nonzero, dumps a bundle the first time a
	// reference's measured access time (an EvTimeAccess charge) reaches
	// this many cycles — the p99.9-style tripwire.
	LatencyThreshold uint64
	// MaxBundles bounds the number of bundles written per run so a corrupt
	// machine cannot turn the recorder into a disk leak (0 =
	// DefaultRecMaxBundles).
	MaxBundles int
	// Label tags bundles with the run's configuration (org, preset, ...).
	Label string
	// Snapshot, when set, captures the machine state embedded in a bundle
	// dumped without an audit snapshot in hand (latency and on-demand
	// triggers). It runs on the simulation goroutine.
	Snapshot func() *audit.Snapshot
	// Probe, when set, is flushed before an audit-triggered dump so the
	// rings hold the events immediately preceding the violation. It must
	// not be flushed from inside Event (reentrancy), and the recorder
	// never does.
	Probe *probe.Probe
}

// BundleEvent is one ring event in a post-mortem bundle, with the kind and
// access class as stable strings so bundles outlive the enum values.
type BundleEvent struct {
	Seq    uint64 `json:"seq"`
	Ref    uint64 `json:"ref"`
	CPU    int    `json:"cpu"`
	Kind   string `json:"kind"`
	Access string `json:"access,omitempty"`
	VA     uint64 `json:"va,omitempty"`
	PA     uint64 `json:"pa,omitempty"`
	Aux    uint64 `json:"aux,omitempty"`
}

// Bundle is one post-mortem capture: the identity of the binary, what
// tripped the dump, the most recent events per CPU (merged, oldest first),
// and the machine snapshot.
type Bundle struct {
	Build      BuildInfo         `json:"build"`
	Label      string            `json:"label,omitempty"`
	Trigger    string            `json:"trigger"`
	Detail     string            `json:"detail,omitempty"`
	CapturedAt string            `json:"capturedAt,omitempty"`
	Ref        uint64            `json:"ref"`
	Events     []BundleEvent     `json:"events"`
	Snapshot   *audit.Snapshot   `json:"snapshot,omitempty"`
	Violations []audit.Violation `json:"violations,omitempty"`
}

// ParseBundle reads and validates one bundle document.
func ParseBundle(r io.Reader) (*Bundle, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var b Bundle
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("telemetry: parse bundle: %w", err)
	}
	if b.Trigger == "" {
		return nil, errors.New("telemetry: bundle has no trigger")
	}
	return &b, nil
}

// ReadBundle loads a bundle file written by a Recorder.
func ReadBundle(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseBundle(f)
}

// recRing is a fixed-size overwrite ring of recent events. It is touched
// only on the simulation goroutine.
type recRing struct {
	buf  []probe.Event
	next int
	full bool
}

func (r *recRing) add(ev probe.Event) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

// ordered appends the ring's events oldest-first to dst.
func (r *recRing) ordered(dst []probe.Event) []probe.Event {
	if r.full {
		dst = append(dst, r.buf[r.next:]...)
	}
	return append(dst, r.buf[:r.next]...)
}

// dumpResult is what an on-demand dump hands back across goroutines.
type dumpResult struct {
	data []byte
	err  error
}

// dumpRequest is the mailbox cell for an HTTP-triggered dump.
type dumpRequest struct {
	detail string
	done   chan dumpResult
}

// Recorder is the flight recorder: a probe Sink keeping a fixed-size ring
// of the most recent events per CPU, dumped as a post-mortem bundle when an
// audit violation is reported (attach OnAudit via audit's callback), when a
// latency sample trips the threshold, or on demand (RequestDump, safe from
// any goroutine via an atomic mailbox the simulation goroutine polls).
//
// The armed hot path — Event with nothing tripped — is a ring store, a
// threshold compare, and one atomic load; it never allocates.
type Recorder struct {
	cfg      RecorderConfig
	rings    []*recRing
	lastSnap *audit.Snapshot
	lastRef  uint64
	dumps    uint64
	latTrips uint64
	req      atomic.Pointer[dumpRequest]
	now      func() time.Time
	err      error
}

// NewRecorder creates an armed flight recorder. If cfg.Dir is nonempty it
// is created on first dump.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.EventsPerCPU <= 0 {
		cfg.EventsPerCPU = DefaultRecEventsPerCPU
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = DefaultRecMaxBundles
	}
	return &Recorder{cfg: cfg, now: time.Now}
}

// Dumps returns the number of bundles captured so far.
func (r *Recorder) Dumps() uint64 { return atomic.LoadUint64(&r.dumps) }

// LatencyTrips returns how many access charges reached the latency
// threshold (dumps are capped; trips keep counting).
func (r *Recorder) LatencyTrips() uint64 { return r.latTrips }

// Err returns the first dump error, if any.
func (r *Recorder) Err() error { return r.err }

func (r *Recorder) ringFor(cpu int) *recRing {
	cpu = clampCPU(cpu)
	for cpu >= len(r.rings) {
		r.rings = append(r.rings, &recRing{buf: make([]probe.Event, r.cfg.EventsPerCPU)})
	}
	return r.rings[cpu]
}

// Event implements probe.Sink.
func (r *Recorder) Event(ev probe.Event) {
	r.ringFor(ev.CPU).add(ev)
	if ev.Ref > r.lastRef {
		r.lastRef = ev.Ref
	}
	if r.cfg.LatencyThreshold > 0 && ev.Kind == probe.EvTimeAccess && ev.Aux >= r.cfg.LatencyThreshold {
		r.latTrips++
		r.dump("latency", fmt.Sprintf("ref %d on cpu %d took %d cycles (threshold %d)",
			ev.Ref, ev.CPU, ev.Aux, r.cfg.LatencyThreshold), nil, nil)
	}
	if r.req.Load() != nil {
		if req := r.req.Swap(nil); req != nil {
			data, err := r.dump("on-demand", req.detail, nil, nil)
			req.done <- dumpResult{data, err}
		}
	}
}

// OnAudit observes completed audits (wire it to audit.Auditor's callback):
// it retains the snapshot for later dumps and captures a bundle whenever
// violations are reported. It runs on the simulation goroutine.
func (r *Recorder) OnAudit(snap *audit.Snapshot, found []audit.Violation) {
	r.lastSnap = snap
	if len(found) == 0 {
		return
	}
	if r.cfg.Probe != nil {
		r.cfg.Probe.Flush() // pull the events leading up to the violation into the rings
	}
	r.dump("audit-violation", fmt.Sprintf("%d violation(s), first: %s", len(found), found[0]), snap, found)
}

// Dump captures a bundle on demand from the simulation goroutine and
// returns its JSON encoding.
func (r *Recorder) Dump(detail string) ([]byte, error) {
	if r.cfg.Probe != nil {
		r.cfg.Probe.Flush()
	}
	return r.dump("on-demand", detail, nil, nil)
}

// ErrRecorderBusy reports an on-demand dump colliding with another.
var ErrRecorderBusy = errors.New("telemetry: flight recorder busy with another dump request")

// ErrRecorderIdle reports an on-demand dump that timed out because the
// simulation goroutine never drained the mailbox (run finished or stalled).
var ErrRecorderIdle = errors.New("telemetry: flight recorder dump timed out (simulation idle?)")

// RequestDump asks the simulation goroutine for a bundle and waits up to
// timeout for it. It is safe from any goroutine; the simulation thread
// polls the one-cell mailbox on every event.
func (r *Recorder) RequestDump(detail string, timeout time.Duration) ([]byte, error) {
	req := &dumpRequest{detail: detail, done: make(chan dumpResult, 1)}
	if !r.req.CompareAndSwap(nil, req) {
		return nil, ErrRecorderBusy
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-req.done:
		return res.data, res.err
	case <-timer.C:
		if r.req.CompareAndSwap(req, nil) {
			return nil, ErrRecorderIdle
		}
		// The simulation goroutine claimed the request as we timed out;
		// the result is imminent.
		res := <-req.done
		return res.data, res.err
	}
}

// dump assembles, encodes, counts and (when configured) writes one bundle.
// It runs on the simulation goroutine.
func (r *Recorder) dump(trigger, detail string, snap *audit.Snapshot, found []audit.Violation) ([]byte, error) {
	n := atomic.LoadUint64(&r.dumps)
	if n >= uint64(r.cfg.MaxBundles) {
		return nil, fmt.Errorf("telemetry: bundle cap (%d) reached", r.cfg.MaxBundles)
	}
	atomic.StoreUint64(&r.dumps, n+1)

	var evs []probe.Event
	for _, ring := range r.rings {
		evs = ring.ordered(evs)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })

	if snap == nil {
		if r.cfg.Snapshot != nil {
			snap = r.cfg.Snapshot()
		} else {
			snap = r.lastSnap
		}
	}
	b := &Bundle{
		Build:      Build(),
		Label:      r.cfg.Label,
		Trigger:    trigger,
		Detail:     detail,
		CapturedAt: r.now().UTC().Format(time.RFC3339),
		Ref:        r.lastRef,
		Events:     make([]BundleEvent, 0, len(evs)),
		Snapshot:   snap,
		Violations: found,
	}
	for _, ev := range evs {
		be := BundleEvent{
			Seq: ev.Seq, Ref: ev.Ref, CPU: ev.CPU, Kind: ev.Kind.String(),
			VA: uint64(ev.VA), PA: uint64(ev.PA), Aux: ev.Aux,
		}
		switch ev.Kind {
		case probe.EvL1Hit, probe.EvL1Miss, probe.EvL2Hit, probe.EvL2Miss, probe.EvTimeAccess:
			be.Access = ev.Access.String()
		}
		b.Events = append(b.Events, be)
	}

	data, err := json.MarshalIndent(b, "", "  ")
	if err == nil {
		data = append(data, '\n')
	}
	if err == nil && r.cfg.Dir != "" {
		if mkErr := os.MkdirAll(r.cfg.Dir, 0o755); mkErr != nil {
			err = mkErr
		} else {
			path := filepath.Join(r.cfg.Dir, fmt.Sprintf("flightrec-%03d-%s.json", n, trigger))
			err = os.WriteFile(path, data, 0o644)
		}
	}
	if err != nil && r.err == nil {
		r.err = err
	}
	return data, err
}

// Close implements the optional Sink close. A pending on-demand request is
// answered from the final ring state so an HTTP caller is not left hanging
// on a finished run.
func (r *Recorder) Close() error {
	if req := r.req.Swap(nil); req != nil {
		data, err := r.dump("on-demand", req.detail, nil, nil)
		req.done <- dumpResult{data, err}
	}
	return r.err
}
