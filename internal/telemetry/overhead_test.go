package telemetry_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cycles"
	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/tracegen"
)

// The telemetry hot path — events of unsampled references through the
// tracer, every event through the armed recorder and the attribution
// profiler — must not allocate: the probe stream carries millions of events
// per second and a single allocation per event would dominate the run.

func TestTracerHotPathAllocs(t *testing.T) {
	tr := telemetry.NewTracer(4096)
	// Reference 2 is never sampled ((2-1) % 4096 != 0); one warm-up event
	// grows the clock table.
	ev := probe.Event{Ref: 2, CPU: 0, Kind: probe.EvTimeAccess, Access: stats.KindRead, Aux: 1}
	tr.Event(ev)
	if n := testing.AllocsPerRun(1000, func() { tr.Event(ev) }); n != 0 {
		t.Fatalf("unsampled tracer event allocates %v times", n)
	}
}

func TestRecorderHotPathAllocs(t *testing.T) {
	rec := telemetry.NewRecorder(telemetry.RecorderConfig{
		EventsPerCPU:     64,
		LatencyThreshold: 1 << 40, // armed but never tripped
	})
	ev := probe.Event{Seq: 1, Ref: 1, CPU: 0, Kind: probe.EvL1Hit, Access: stats.KindRead}
	rec.Event(ev) // warm-up allocates the ring
	if n := testing.AllocsPerRun(1000, func() { rec.Event(ev) }); n != 0 {
		t.Fatalf("armed recorder event allocates %v times", n)
	}
}

func TestAttributionHotPathAllocs(t *testing.T) {
	attr := telemetry.NewAttribution(telemetry.AttrConfig{L2Sets: 8})
	miss := probe.Event{Ref: 1, CPU: 0, Kind: probe.EvL1Miss, Access: stats.KindRead, VA: 0x1000, PA: 0x2000}
	charge := probe.Event{Ref: 1, CPU: 0, Kind: probe.EvTimeAccess, Access: stats.KindRead, Aux: 4}
	attr.Event(miss) // warm-up: CPU state and the page's sketch slot
	attr.Event(charge)
	if n := testing.AllocsPerRun(1000, func() { attr.Event(miss); attr.Event(charge) }); n != 0 {
		t.Fatalf("attribution event allocates %v times", n)
	}
}

func BenchmarkTracerUnsampled(b *testing.B) {
	tr := telemetry.NewTracer(4096)
	ev := probe.Event{Ref: 2, CPU: 0, Kind: probe.EvTimeAccess, Access: stats.KindRead, Aux: 1}
	tr.Event(ev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Event(ev)
	}
}

func BenchmarkRecorderArmed(b *testing.B) {
	rec := telemetry.NewRecorder(telemetry.RecorderConfig{
		EventsPerCPU:     telemetry.DefaultRecEventsPerCPU,
		LatencyThreshold: 1 << 40,
	})
	ev := probe.Event{Seq: 1, Ref: 1, CPU: 0, Kind: probe.EvL1Hit, Access: stats.KindRead}
	rec.Event(ev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Event(ev)
	}
}

// benchRun simulates a scaled pops workload with a selectable telemetry
// stack attached. Comparing against the baseline bounds the end-to-end
// overhead: the 1-in-4096 sampling and the allocation-free hot paths keep
// the tracer + recorder pair within the 2% budget; the attribution
// profiler, which classifies every event, costs more and is benchmarked
// separately so its price stays visible.
func benchRun(b *testing.B, sinks func(sc system.Config, tc tracegen.Config) []probe.Sink) {
	b.Helper()
	tc := tracegen.PopsLike().Scaled(0.02)
	for i := 0; i < b.N; i++ {
		pr := probe.New(0)
		p := cycles.ContentionParams()
		p.TLBMissPenalty = 8
		eng := cycles.MustNew(p, pr)
		sc := system.Config{
			CPUs:         tc.CPUs,
			Organization: system.VR,
			PageSize:     tc.PageSize,
			L1:           cache.Geometry{Size: 16 << 10, Block: 16, Assoc: 1},
			L2:           cache.Geometry{Size: 256 << 10, Block: 32, Assoc: 1},
			Probe:        pr,
			Cycles:       eng,
		}
		sys, err := system.New(sc)
		if err != nil {
			b.Fatal(err)
		}
		if sinks != nil {
			for _, s := range sinks(sc, tc) {
				pr.AddSink(s)
			}
		}
		if err := tc.SetupSharedMappings(sys.MMU()); err != nil {
			b.Fatal(err)
		}
		gen, err := tracegen.New(tc)
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(gen); err != nil {
			b.Fatal(err)
		}
		if err := pr.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tc.TotalRefs)*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

func BenchmarkTimedRunBaseline(b *testing.B) { benchRun(b, nil) }

// BenchmarkTimedRunTraced carries the ISSUE's 2% claim: sampled span
// tracing plus the armed flight recorder.
func BenchmarkTimedRunTraced(b *testing.B) {
	benchRun(b, func(system.Config, tracegen.Config) []probe.Sink {
		return []probe.Sink{
			telemetry.NewTracer(telemetry.DefaultSpanSample),
			telemetry.NewRecorder(telemetry.RecorderConfig{LatencyThreshold: 1 << 40}),
		}
	})
}

func BenchmarkTimedRunAttributed(b *testing.B) {
	benchRun(b, func(sc system.Config, tc tracegen.Config) []probe.Sink {
		return []probe.Sink{telemetry.NewAttribution(telemetry.AttrConfig{
			PageSize: tc.PageSize, L2Sets: sc.L2.Sets(), L2Block: sc.L2.Block,
		})}
	})
}
