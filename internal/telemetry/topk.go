package telemetry

import "sort"

// TopK is a space-saving (Metwally et al.) heavy-hitters sketch: it tracks
// approximately the k heaviest keys of a weighted stream in O(k) memory.
// When a new key arrives with all counters taken, the minimum counter is
// evicted and inherits its weight as the newcomer's over-estimate bound.
// The summary is deterministic for a fixed stream order: the evicted
// counter is always the first minimum in insertion-stable slot order.
type TopK struct {
	k     int
	slots []tkSlot
	index map[uint64]int // key → slot
}

type tkSlot struct {
	key    uint64
	weight uint64
	overBy uint64 // upper bound on over-estimation inherited at takeover
}

// Hitter is one reported heavy hitter. Weight over-estimates the key's true
// stream weight by at most OverBy.
type Hitter struct {
	Key    uint64 `json:"key"`
	Weight uint64 `json:"weight"`
	OverBy uint64 `json:"overBy,omitempty"`
}

// NewTopK creates a sketch tracking k keys (k < 1 selects 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, index: make(map[uint64]int, k)}
}

// Add charges weight w to key.
func (t *TopK) Add(key, w uint64) {
	if w == 0 {
		return
	}
	if i, ok := t.index[key]; ok {
		t.slots[i].weight += w
		return
	}
	if len(t.slots) < t.k {
		t.index[key] = len(t.slots)
		t.slots = append(t.slots, tkSlot{key: key, weight: w})
		return
	}
	// Take over the first minimum-weight slot.
	min := 0
	for i := 1; i < len(t.slots); i++ {
		if t.slots[i].weight < t.slots[min].weight {
			min = i
		}
	}
	old := t.slots[min]
	delete(t.index, old.key)
	t.index[key] = min
	t.slots[min] = tkSlot{key: key, weight: old.weight + w, overBy: old.weight}
}

// Top returns the tracked hitters, heaviest first; ties break on the
// smaller key so the report is deterministic.
func (t *TopK) Top() []Hitter {
	out := make([]Hitter, 0, len(t.slots))
	for _, s := range t.slots {
		out = append(out, Hitter{Key: s.key, Weight: s.weight, OverBy: s.overBy})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Len returns the number of tracked keys.
func (t *TopK) Len() int { return len(t.slots) }
