// Package memory models main memory for the simulator. Rather than bytes it
// stores one token per minimum-block-sized chunk; the system stamps a fresh
// token on every processor write, which gives the test suite a
// sequential-consistency oracle: any read must observe the newest token for
// its physical block, so coherence, synonym or write-buffer bugs surface as
// token mismatches.
package memory

import (
	"fmt"
	"sort"

	"repro/internal/addr"
)

// Stats counts memory traffic in minimum-block units.
type Stats struct {
	BlockReads  uint64 // blocks read by caches (misses reaching memory)
	BlockWrites uint64 // blocks written back to memory
}

// Memory is the shared main memory. The zero token means "never written".
type Memory struct {
	block addr.BlockGeom
	data  map[uint64]uint64 // block number -> token
	stats Stats
}

// New creates a memory tracking tokens at the given block granularity,
// which should be the smallest cache block size in the system.
func New(blockSize uint64) (*Memory, error) {
	g, err := addr.NewBlockGeom(blockSize)
	if err != nil {
		return nil, err
	}
	return &Memory{block: g, data: make(map[uint64]uint64)}, nil
}

// MustNew is New but panics on error.
func MustNew(blockSize uint64) *Memory {
	m, err := New(blockSize)
	if err != nil {
		panic(err)
	}
	return m
}

// Granularity returns the tracked block size in bytes.
func (m *Memory) Granularity() uint64 { return m.block.Size() }

// Stats returns a copy of the traffic counters.
func (m *Memory) Stats() Stats { return m.stats }

// ResetStats zeroes the traffic counters (steady-state measurement); the
// stored data is untouched.
func (m *Memory) ResetStats() { m.stats = Stats{} }

// Read returns the token for pa's block and counts one block read.
func (m *Memory) Read(pa addr.PAddr) uint64 {
	m.stats.BlockReads++
	return m.data[m.block.PBlock(pa)]
}

// Peek returns the token for pa's block without counting traffic (for
// oracle checks and diagnostics).
func (m *Memory) Peek(pa addr.PAddr) uint64 {
	return m.data[m.block.PBlock(pa)]
}

// Write stores a token for pa's block and counts one block write.
func (m *Memory) Write(pa addr.PAddr, token uint64) {
	m.stats.BlockWrites++
	m.data[m.block.PBlock(pa)] = token
}

// BlocksWritten returns the number of distinct blocks ever written, for
// tests.
func (m *Memory) BlocksWritten() int { return len(m.data) }

// AddStats folds another memory's traffic counters into this one (the
// shard stitcher's merge path).
func (m *Memory) AddStats(o Stats) {
	m.stats.BlockReads += o.BlockReads
	m.stats.BlockWrites += o.BlockWrites
}

// BlockToken is one written block's serializable form.
type BlockToken struct {
	Block uint64
	Token uint64
}

// State is the memory's serializable state (checkpoint support), sorted by
// block number so identical memories export identical states.
type State struct {
	Stats  Stats
	Blocks []BlockToken
}

// ExportState captures the token store and counters.
func (m *Memory) ExportState() State {
	st := State{Stats: m.stats, Blocks: make([]BlockToken, 0, len(m.data))}
	for b, t := range m.data {
		st.Blocks = append(st.Blocks, BlockToken{Block: b, Token: t})
	}
	sort.Slice(st.Blocks, func(i, j int) bool { return st.Blocks[i].Block < st.Blocks[j].Block })
	return st
}

// RestoreState replaces the token store and counters. Duplicate block
// numbers are rejected.
func (m *Memory) RestoreState(st State) error {
	data := make(map[uint64]uint64, len(st.Blocks))
	for _, bt := range st.Blocks {
		if _, dup := data[bt.Block]; dup {
			return fmt.Errorf("memory: state repeats block %d", bt.Block)
		}
		data[bt.Block] = bt.Token
	}
	m.stats = st.Stats
	m.data = data
	return nil
}
