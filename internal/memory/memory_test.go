package memory

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestReadUnwritten(t *testing.T) {
	m := MustNew(16)
	if got := m.Read(0x1234); got != 0 {
		t.Errorf("unwritten block token = %d, want 0", got)
	}
}

func TestWriteRead(t *testing.T) {
	m := MustNew(16)
	m.Write(0x100, 42)
	if got := m.Read(0x100); got != 42 {
		t.Errorf("Read = %d, want 42", got)
	}
	// Same block, different byte.
	if got := m.Read(0x10F); got != 42 {
		t.Errorf("same-block Read = %d, want 42", got)
	}
	// Next block untouched.
	if got := m.Read(0x110); got != 0 {
		t.Errorf("adjacent block token = %d, want 0", got)
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	m := MustNew(16)
	m.Write(0x100, 7)
	before := m.Stats()
	if m.Peek(0x100) != 7 {
		t.Error("Peek wrong")
	}
	if m.Stats() != before {
		t.Error("Peek changed stats")
	}
}

func TestStats(t *testing.T) {
	m := MustNew(16)
	m.Write(0x0, 1)
	m.Write(0x10, 2)
	m.Read(0x0)
	s := m.Stats()
	if s.BlockWrites != 2 || s.BlockReads != 1 {
		t.Errorf("stats = %+v", s)
	}
	if m.BlocksWritten() != 2 {
		t.Errorf("BlocksWritten = %d, want 2", m.BlocksWritten())
	}
}

func TestGranularity(t *testing.T) {
	m := MustNew(64)
	if m.Granularity() != 64 {
		t.Errorf("Granularity = %d", m.Granularity())
	}
}

func TestNewBadBlock(t *testing.T) {
	if _, err := New(13); err == nil {
		t.Error("block size 13 accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(0)
}

func TestLastWriteWinsProperty(t *testing.T) {
	f := func(writes []uint16) bool {
		m := MustNew(16)
		oracle := map[uint64]uint64{}
		for i, w := range writes {
			pa := addr.PAddr(w)
			m.Write(pa, uint64(i+1))
			oracle[uint64(pa)>>4] = uint64(i + 1)
		}
		for blk, want := range oracle {
			if m.Peek(addr.PAddr(blk<<4)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
