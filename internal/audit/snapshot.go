package audit

import (
	"encoding/json"
	"io"
)

// StatePrivate is the coherence-state label of an exclusively-held line;
// every other label is treated as shared. Snapshots carry states as strings
// so the dump stays readable and this package stays free of simulator
// dependencies.
const StatePrivate = "private"

// Snapshot is a point-in-time copy of every structure the invariants speak
// about. Producers emit lines in (set, way) order and subentries in sub
// order, so two snapshots of identical machine states are byte-identical
// JSON — the dump is diffable.
type Snapshot struct {
	Organization string         `json:"organization"`
	Protocol     string         `json:"protocol,omitempty"`
	Refs         uint64         `json:"references"`
	CPUs         []*CPUSnapshot `json:"cpus"`
}

// CPUSnapshot is one hierarchy's state.
type CPUSnapshot struct {
	CPU     int  `json:"cpu"`
	Virtual bool `json:"virtual"`
	// Inclusive marks the organizations whose L2 maintains inclusion over
	// the first level; false for the no-inclusion baseline, whose subentry
	// inclusion machinery must stay unused.
	Inclusive bool `json:"inclusive"`
	// LazyFlush marks the swapped-valid context-switch scheme: only then
	// may first-level lines carry the SV bit.
	LazyFlush bool   `json:"lazyFlush,omitempty"`
	L1Block   uint64 `json:"l1Block"`
	L2Block   uint64 `json:"l2Block"`
	// Geometry of the physically-addressed levels, for occupancy summaries
	// (the V-caches carry theirs in VCacheSnapshot). L1Sets/L1Ways are set
	// only by the no-inclusion baseline.
	L1Sets int `json:"l1Sets,omitempty"`
	L1Ways int `json:"l1Ways,omitempty"`
	RSets  int `json:"rSets,omitempty"`
	RWays  int `json:"rWays,omitempty"`

	VCaches     []VCacheSnapshot `json:"vcaches,omitempty"`
	L1Lines     []L1Line         `json:"l1,omitempty"` // no-inclusion baseline only
	RLines      []RLine          `json:"l2"`
	WriteBuffer []WBEntry        `json:"writeBuffer,omitempty"`
	TLB         []TLBEntry       `json:"tlb,omitempty"`
	// Victim holds the parked first-level victims when a victim cache is
	// configured; RLT the reverse-lookup synonym table's entries when that
	// strategy is active. HasVictim marks a configured (possibly empty)
	// victim cache, HasRLT an active reverse-lookup strategy, so the checks
	// can run on empty structures too.
	HasVictim bool          `json:"hasVictim,omitempty"`
	Victim    []VictimEntry `json:"victim,omitempty"`
	HasRLT    bool          `json:"hasRLT,omitempty"`
	RLT       []RLTEntry    `json:"rlt,omitempty"`
}

// VictimEntry is one block parked in the victim cache between the levels.
type VictimEntry struct {
	PA    uint64 `json:"pa"`
	Token uint64 `json:"token,omitempty"`
}

// RLTEntry is one reverse translation of the reverse-lookup synonym table:
// an L1-block-aligned physical address and the first-level location holding
// that block.
type RLTEntry struct {
	PA     uint64 `json:"pa"`
	VCache int    `json:"vcache,omitempty"`
	VSet   int    `json:"vset"`
	VWay   int    `json:"vway"`
}

// VCacheSnapshot is one first-level virtual cache (the unified cache, or
// one half of a split pair).
type VCacheSnapshot struct {
	Cache int     `json:"cache"` // 0 = unified or data, 1 = instruction
	Sets  int     `json:"sets"`
	Ways  int     `json:"ways"`
	Lines []VLine `json:"lines"`
}

// VLine is one present V-cache line with its Figure 3 control state and its
// r-pointer. Mapped/MMUPA carry the page tables' opinion of the line's
// virtual base (sub-block aligned), resolved by the producer so the checker
// needs no MMU access; they are meaningful only in the virtual organization.
type VLine struct {
	Set   int    `json:"set"`
	Way   int    `json:"way"`
	Dirty bool   `json:"dirty,omitempty"`
	SV    bool   `json:"sv,omitempty"`
	RSet  int    `json:"rset"`
	RWay  int    `json:"rway"`
	RSub  int    `json:"rsub"`
	PID   uint64 `json:"pid"`
	VBase uint64 `json:"vbase"`
	Token uint64 `json:"token,omitempty"`

	Mapped bool   `json:"mapped,omitempty"`
	MMUPA  uint64 `json:"mmuPA,omitempty"`
}

// L1Line is one first-level line of the no-inclusion baseline, which is
// physically addressed and carries its own coherence state.
type L1Line struct {
	Set   int    `json:"set"`
	Way   int    `json:"way"`
	Addr  uint64 `json:"addr"`
	State string `json:"state"`
	Dirty bool   `json:"dirty,omitempty"`
	Token uint64 `json:"token,omitempty"`
}

// RLine is one R-cache line: coherence state plus one subentry per
// first-level block.
type RLine struct {
	Set   int    `json:"set"`
	Way   int    `json:"way"`
	Addr  uint64 `json:"addr"`
	State string `json:"state"`
	Subs  []RSub `json:"subs"`
}

// RSub is one subentry's control state; Subs is always complete, so
// RLine.Subs[i].Sub == i.
type RSub struct {
	Sub       int    `json:"sub"`
	Inclusion bool   `json:"inclusion,omitempty"`
	Buffer    bool   `json:"buffer,omitempty"`
	VDirty    bool   `json:"vdirty,omitempty"`
	RDirty    bool   `json:"rdirty,omitempty"`
	VCache    int    `json:"vcache,omitempty"`
	VSet      int    `json:"vset,omitempty"`
	VWay      int    `json:"vway,omitempty"`
	Token     uint64 `json:"token,omitempty"`
}

// WBEntry is one buffered write-back, identified by the r-pointer of the
// subentry it belongs to.
type WBEntry struct {
	RSet  int    `json:"rset"`
	RWay  int    `json:"rway"`
	RSub  int    `json:"rsub"`
	Token uint64 `json:"token,omitempty"`
}

// TLBEntry is one resident translation; Mapped/MMUFrame carry the page
// tables' opinion, resolved by the producer.
type TLBEntry struct {
	PID      uint64 `json:"pid"`
	VPage    uint64 `json:"vpage"`
	Frame    uint64 `json:"frame"`
	Mapped   bool   `json:"mapped,omitempty"`
	MMUFrame uint64 `json:"mmuFrame,omitempty"`
}

// WriteJSON dumps the snapshot as indented JSON. Producers emit entries in
// deterministic order, so dumps of identical states diff clean.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseJSON reads a snapshot back (round-trip support for tooling).
func ParseJSON(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}
