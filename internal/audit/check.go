package audit

import (
	"fmt"
	"sort"
)

// Check verifies every invariant against the snapshot and returns the
// violations found, per-CPU findings first (in CPU order), then machine-wide
// coherence findings (in block-address order). A clean machine returns nil.
func (s *Snapshot) Check() []Violation {
	c := &checker{}
	for _, cs := range s.CPUs {
		c.checkCPU(cs)
	}
	c.checkCrossCPU(s)
	return c.out
}

type checker struct {
	out []Violation
}

func (c *checker) add(inv Invariant, cpu int, loc, format string, args ...any) {
	c.out = append(c.out, Violation{
		Invariant: inv,
		CPU:       cpu,
		Location:  loc,
		Detail:    fmt.Sprintf(format, args...),
	})
}

func vloc(cache, set, way int) string { return fmt.Sprintf("V%d[%d.%d]", cache, set, way) }
func rloc(set, way, sub int) string   { return fmt.Sprintf("R[%d.%d.%d]", set, way, sub) }

// checkCPU runs every single-hierarchy invariant.
func (c *checker) checkCPU(cs *CPUSnapshot) {
	rIndex := make(map[[2]int]*RLine, len(cs.RLines))
	for i := range cs.RLines {
		rl := &cs.RLines[i]
		rIndex[[2]int{rl.Set, rl.Way}] = rl
	}
	if !cs.Inclusive {
		c.checkNoInclusion(cs)
		c.checkVictim(cs)
		if cs.HasRLT || len(cs.RLT) > 0 {
			c.add(InvRLTReciprocity, cs.CPU, "RLT",
				"reverse-lookup table present outside the V-R organization")
		}
		c.checkTLB(cs)
		return
	}

	// Forward pass: every first-level line against its R-cache parent.
	vIndex := make(map[[3]int]*VLine)
	children := 0
	seenPA := make(map[uint64]string)
	for vi := range cs.VCaches {
		vcs := &cs.VCaches[vi]
		for li := range vcs.Lines {
			vl := &vcs.Lines[li]
			vIndex[[3]int{vcs.Cache, vl.Set, vl.Way}] = vl
			children++
			loc := vloc(vcs.Cache, vl.Set, vl.Way)
			if vl.SV && !cs.LazyFlush {
				c.add(InvSwappedValid, cs.CPU, loc,
					"swapped-valid line outside the lazy-flush organization")
			}
			rl, ok := rIndex[[2]int{vl.RSet, vl.RWay}]
			if !ok {
				c.add(InvInclusion, cs.CPU, loc,
					"parent %s not present", rloc(vl.RSet, vl.RWay, vl.RSub))
				continue
			}
			if vl.RSub < 0 || vl.RSub >= len(rl.Subs) {
				c.add(InvReciprocity, cs.CPU, loc,
					"r-pointer sub %d out of range (%d subentries)", vl.RSub, len(rl.Subs))
				continue
			}
			sub := &rl.Subs[vl.RSub]
			if !sub.Inclusion {
				c.add(InvInclusion, cs.CPU, loc,
					"parent %s inclusion bit clear", rloc(vl.RSet, vl.RWay, vl.RSub))
			} else if sub.VCache != vcs.Cache || sub.VSet != vl.Set || sub.VWay != vl.Way {
				c.add(InvReciprocity, cs.CPU, loc,
					"parent %s v-pointer %s does not point back",
					rloc(vl.RSet, vl.RWay, vl.RSub), vloc(sub.VCache, sub.VSet, sub.VWay))
			}
			if sub.VDirty != vl.Dirty {
				c.add(InvDirtyBits, cs.CPU, loc,
					"dirty %v but parent VDirty %v", vl.Dirty, sub.VDirty)
			}
			pa := rl.Addr + uint64(vl.RSub)*cs.L1Block
			if prev, dup := seenPA[pa]; dup {
				c.add(InvUniqueCopy, cs.CPU, loc,
					"physical block %#x also held by %s", pa, prev)
			} else {
				seenPA[pa] = loc
			}
			if cs.Virtual {
				if !vl.Mapped {
					c.add(InvTranslation, cs.CPU, loc,
						"vbase %#x pid %d unmapped", vl.VBase, vl.PID)
				} else if vl.MMUPA != pa {
					c.add(InvTranslation, cs.CPU, loc,
						"vbase %#x translates to %#x but r-pointer says %#x",
						vl.VBase, vl.MMUPA, pa)
				}
			}
		}
	}

	// Reverse pass: every subentry's pointers, bits and counts.
	wbIndex := make(map[[3]int]bool, len(cs.WriteBuffer))
	for _, e := range cs.WriteBuffer {
		wbIndex[[3]int{e.RSet, e.RWay, e.RSub}] = true
	}
	inclusionBits, bufferBits := 0, 0
	for i := range cs.RLines {
		rl := &cs.RLines[i]
		modified := false
		for si := range rl.Subs {
			sub := &rl.Subs[si]
			loc := rloc(rl.Set, rl.Way, si)
			if sub.Inclusion {
				inclusionBits++
				child, ok := vIndex[[3]int{sub.VCache, sub.VSet, sub.VWay}]
				if !ok {
					c.add(InvReciprocity, cs.CPU, loc,
						"v-pointer %s to absent line", vloc(sub.VCache, sub.VSet, sub.VWay))
				} else if child.RSet != rl.Set || child.RWay != rl.Way || child.RSub != si {
					c.add(InvReciprocity, cs.CPU, loc,
						"child r-pointer %s does not round-trip",
						rloc(child.RSet, child.RWay, child.RSub))
				}
				if sub.Buffer {
					c.add(InvBufferBit, cs.CPU, loc, "inclusion and buffer bits both set")
				}
			}
			if sub.Buffer {
				bufferBits++
				if !wbIndex[[3]int{rl.Set, rl.Way, si}] {
					c.add(InvBufferBit, cs.CPU, loc, "buffer bit set but nothing buffered")
				}
				if !sub.VDirty {
					c.add(InvDirtyBits, cs.CPU, loc, "buffered but VDirty clear")
				}
			}
			if sub.VDirty && !sub.Inclusion && !sub.Buffer {
				c.add(InvDirtyBits, cs.CPU, loc, "VDirty without child or buffer")
			}
			if sub.VDirty || sub.RDirty || sub.Buffer {
				modified = true
			}
		}
		if modified && rl.State != StatePrivate {
			c.add(InvCoherence, cs.CPU, fmt.Sprintf("R[%d.%d]", rl.Set, rl.Way),
				"modified block %#x held %s", rl.Addr, rl.State)
		}
	}
	if inclusionBits != children {
		c.add(InvInclusion, cs.CPU, "R-cache",
			"%d inclusion bits but %d first-level lines", inclusionBits, children)
	}
	if bufferBits != len(cs.WriteBuffer) {
		c.add(InvBufferBit, cs.CPU, "write buffer",
			"%d buffer bits but %d buffered entries", bufferBits, len(cs.WriteBuffer))
	}
	for _, e := range cs.WriteBuffer {
		rl, ok := rIndex[[2]int{e.RSet, e.RWay}]
		if !ok || e.RSub < 0 || e.RSub >= len(rl.Subs) || !rl.Subs[e.RSub].Buffer {
			c.add(InvBufferBit, cs.CPU, rloc(e.RSet, e.RWay, e.RSub),
				"buffered entry without a matching buffer bit")
		}
	}
	c.checkVictim(cs)
	c.checkRLT(cs, children)
	c.checkTLB(cs)
}

// checkVictim verifies the victim-cache invariant on any organization:
// every parked entry names a block that is absent from the first level,
// present in the second, and carries the second level's current token (or
// the in-flight buffered write-back's).
func (c *checker) checkVictim(cs *CPUSnapshot) {
	if !cs.HasVictim && len(cs.Victim) == 0 {
		return
	}
	// First-level residency by physical address.
	l1Held := make(map[uint64]string)
	for i := range cs.L1Lines {
		ll := &cs.L1Lines[i]
		l1Held[ll.Addr] = fmt.Sprintf("L1[%d.%d]", ll.Set, ll.Way)
	}
	// Second-level sub lookup (plus inclusive first-level residency).
	type subRef struct {
		sub *RSub
		rl  *RLine
		si  int
	}
	subAt := make(map[uint64]subRef)
	for i := range cs.RLines {
		rl := &cs.RLines[i]
		for si := range rl.Subs {
			pa := rl.Addr + uint64(si)*cs.L1Block
			subAt[pa] = subRef{sub: &rl.Subs[si], rl: rl, si: si}
			if rl.Subs[si].Inclusion {
				l1Held[pa] = vloc(rl.Subs[si].VCache, rl.Subs[si].VSet, rl.Subs[si].VWay)
			}
		}
	}
	wbToken := make(map[[3]int]uint64, len(cs.WriteBuffer))
	for _, e := range cs.WriteBuffer {
		wbToken[[3]int{e.RSet, e.RWay, e.RSub}] = e.Token
	}
	for i := range cs.Victim {
		ve := &cs.Victim[i]
		loc := fmt.Sprintf("VC[%#x]", ve.PA)
		if holder, held := l1Held[ve.PA]; held {
			c.add(InvVictimExclusive, cs.CPU, loc,
				"parked block also resident at the first level (%s)", holder)
			continue
		}
		ref, ok := subAt[ve.PA]
		if !ok {
			c.add(InvVictimExclusive, cs.CPU, loc,
				"parked block not contained in the second level")
			continue
		}
		want := ref.sub.Token
		if ref.sub.Buffer {
			want = wbToken[[3]int{ref.rl.Set, ref.rl.Way, ref.si}]
		}
		if ve.Token != want {
			c.add(InvVictimExclusive, cs.CPU, loc,
				"parked token %d but second level holds %d", ve.Token, want)
		}
	}
}

// checkRLT verifies the reverse-lookup table's reciprocity: the table and
// the first-level lines are in bijection, each entry keyed by its line's
// physical address and agreeing with the subentry v-pointer.
func (c *checker) checkRLT(cs *CPUSnapshot, children int) {
	if !cs.HasRLT && len(cs.RLT) == 0 {
		return
	}
	if len(cs.RLT) != children {
		c.add(InvRLTReciprocity, cs.CPU, "RLT",
			"%d table entries but %d first-level lines", len(cs.RLT), children)
	}
	vIndex := make(map[[3]int]*VLine)
	for vi := range cs.VCaches {
		vcs := &cs.VCaches[vi]
		for li := range vcs.Lines {
			vl := &vcs.Lines[li]
			vIndex[[3]int{vcs.Cache, vl.Set, vl.Way}] = vl
		}
	}
	rIndex := make(map[[2]int]*RLine, len(cs.RLines))
	for i := range cs.RLines {
		rl := &cs.RLines[i]
		rIndex[[2]int{rl.Set, rl.Way}] = rl
	}
	for i := range cs.RLT {
		e := &cs.RLT[i]
		loc := fmt.Sprintf("RLT[%#x]", e.PA)
		vl, ok := vIndex[[3]int{e.VCache, e.VSet, e.VWay}]
		if !ok {
			c.add(InvRLTReciprocity, cs.CPU, loc,
				"entry points at absent line %s", vloc(e.VCache, e.VSet, e.VWay))
			continue
		}
		rl, ok := rIndex[[2]int{vl.RSet, vl.RWay}]
		if !ok || vl.RSub < 0 || vl.RSub >= len(rl.Subs) {
			// The forward pass already reported the broken parent.
			continue
		}
		if pa := rl.Addr + uint64(vl.RSub)*cs.L1Block; pa != e.PA {
			c.add(InvRLTReciprocity, cs.CPU, loc,
				"entry keyed %#x but its line holds %#x", e.PA, pa)
			continue
		}
		sub := &rl.Subs[vl.RSub]
		if sub.VCache != e.VCache || sub.VSet != e.VSet || sub.VWay != e.VWay {
			c.add(InvRLTReciprocity, cs.CPU, loc,
				"entry %s disagrees with subentry v-pointer %s",
				vloc(e.VCache, e.VSet, e.VWay), vloc(sub.VCache, sub.VSet, sub.VWay))
		}
	}
}

// checkNoInclusion covers the no-inclusion baseline: the subentry inclusion
// machinery must be unused, and dirty data at either level must be private.
func (c *checker) checkNoInclusion(cs *CPUSnapshot) {
	for i := range cs.L1Lines {
		ll := &cs.L1Lines[i]
		if ll.Dirty && ll.State != StatePrivate {
			c.add(InvCoherence, cs.CPU, fmt.Sprintf("L1[%d.%d]", ll.Set, ll.Way),
				"dirty block %#x held %s", ll.Addr, ll.State)
		}
	}
	for i := range cs.RLines {
		rl := &cs.RLines[i]
		for si := range rl.Subs {
			sub := &rl.Subs[si]
			loc := rloc(rl.Set, rl.Way, si)
			if sub.Inclusion || sub.Buffer || sub.VDirty {
				c.add(InvInclusion, cs.CPU, loc,
					"inclusion machinery used in the no-inclusion baseline")
			}
			if sub.RDirty && rl.State != StatePrivate {
				c.add(InvCoherence, cs.CPU, loc,
					"dirty block %#x held %s", rl.Addr+uint64(si)*cs.L1Block, rl.State)
			}
		}
	}
}

// checkTLB verifies every resident translation against the page tables.
func (c *checker) checkTLB(cs *CPUSnapshot) {
	for i := range cs.TLB {
		e := &cs.TLB[i]
		loc := fmt.Sprintf("TLB[pid %d page %#x]", e.PID, e.VPage)
		if !e.Mapped {
			c.add(InvTLB, cs.CPU, loc, "cached translation for an unmapped page")
		} else if e.Frame != e.MMUFrame {
			c.add(InvTLB, cs.CPU, loc,
				"cached frame %#x but page tables say %#x", e.Frame, e.MMUFrame)
		}
	}
}

// checkCrossCPU verifies the snooping protocol's exclusivity: no block may
// be private on one CPU while any other CPU holds an overlapping copy.
// Copies are keyed at L2-block granularity; the no-inclusion baseline's L1
// lines are aligned down, since its invalidations travel at L2-block size.
func (c *checker) checkCrossCPU(s *Snapshot) {
	type holder struct {
		cpu     int
		private bool
		loc     string
	}
	blocks := make(map[uint64][]holder)
	for _, cs := range s.CPUs {
		for i := range cs.RLines {
			rl := &cs.RLines[i]
			blocks[rl.Addr] = append(blocks[rl.Addr], holder{
				cpu:     cs.CPU,
				private: rl.State == StatePrivate,
				loc:     fmt.Sprintf("cpu %d R[%d.%d]", cs.CPU, rl.Set, rl.Way),
			})
		}
		for i := range cs.L1Lines {
			ll := &cs.L1Lines[i]
			a := ll.Addr &^ (cs.L2Block - 1)
			blocks[a] = append(blocks[a], holder{
				cpu:     cs.CPU,
				private: ll.State == StatePrivate,
				loc:     fmt.Sprintf("cpu %d L1[%d.%d]", cs.CPU, ll.Set, ll.Way),
			})
		}
	}
	addrs := make([]uint64, 0, len(blocks))
	for a := range blocks {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		hs := blocks[a]
		for _, h := range hs {
			if !h.private {
				continue
			}
			for _, o := range hs {
				if o.cpu != h.cpu {
					c.add(InvCoherence, -1, h.loc,
						"block %#x private here but also held by %s", a, o.loc)
					break
				}
			}
		}
	}
}
