// Package audit is the simulator's online self-checking layer: it verifies
// the structural invariants the paper's correctness argument rests on —
// R-cache inclusion over the V-cache (Section 2), at most one first-level
// copy of any physical block (Section 3's synonym guarantee), v-pointer/
// r-pointer reciprocity (Figure 3), buffer bits in bijection with the write
// buffer, sv/dirty/vdirty/rdirty consistency, and cross-CPU coherence-state
// compatibility — against a point-in-time Snapshot of the whole machine.
//
// The package is deliberately self-contained (standard library only): the
// hierarchies in internal/core produce Snapshots, and this package checks
// pure data. That keeps the dependency arrow pointing one way — core and
// system import audit, never the reverse — and makes every check unit
// testable from a hand-built snapshot.
//
// An Auditor drives the checks online: attached to a system it re-audits
// the machine every N references (the nil-check pattern keeps the disabled
// cost to one branch per reference), accumulates structured Violations, and
// can dump the snapshot as diffable JSON for debugging.
package audit

import "fmt"

// Invariant identifies one of the checked structural properties.
type Invariant int

// The invariant set. Each maps to the paper section that motivates it; see
// DESIGN.md §12 for the full table.
const (
	// InvInclusion: every present first-level line has a present R-cache
	// parent whose inclusion bit is set, and the machine-wide counts of
	// inclusion bits and first-level lines agree (Section 2).
	InvInclusion Invariant = iota
	// InvUniqueCopy: at most one first-level copy of any physical block
	// exists across the (possibly split) first level (Section 3).
	InvUniqueCopy
	// InvReciprocity: v-pointers and r-pointers round-trip — the subentry's
	// v-pointer names a present line whose r-pointer points straight back
	// (Figure 3's reverse-translation linkage).
	InvReciprocity
	// InvBufferBit: buffer bits and write-buffer entries are in bijection,
	// and a subentry never carries inclusion and buffer bits at once
	// (Section 3's write-back(r-pointer) protocol).
	InvBufferBit
	// InvDirtyBits: VDirty equals the child's dirty bit, a buffered copy is
	// VDirty, and VDirty never dangles without a child or buffered copy
	// (Figure 3's state encoding).
	InvDirtyBits
	// InvSwappedValid: swapped-valid lines appear only in the virtual
	// organization's lazy-flush mode — eager-flush, PID-tagged and
	// physically-addressed first levels never mark lines swapped
	// (Section 2's context-switch scheme).
	InvSwappedValid
	// InvCoherence: a modified block is held privately, and no block is
	// private on one CPU while any other CPU holds a copy (the snooping
	// protocol of Section 3).
	InvCoherence
	// InvTranslation: in the V-R organization, a line's virtual base
	// translates (per the page tables) to exactly the physical address its
	// r-pointer names (Section 3's translation agreement).
	InvTranslation
	// InvTLB: every resident TLB entry agrees with the page tables.
	InvTLB
	// InvVictimExclusive: every victim-cache entry is exclusive of the
	// first level (the block is not resident there), contained in the
	// second level, and carries the second level's current token — the
	// victim cache is a timing layer that may never supply different data.
	InvVictimExclusive
	// InvRLTReciprocity: the reverse-lookup synonym table mirrors the first
	// level exactly — one entry per present line, each keyed by the line's
	// physical address and agreeing with the subentry's v-pointer.
	InvRLTReciprocity

	// NumInvariants bounds the enum for tables indexed by Invariant.
	NumInvariants
)

var invariantNames = [NumInvariants]string{
	InvInclusion:       "inclusion",
	InvUniqueCopy:      "unique-copy",
	InvReciprocity:     "reciprocity",
	InvBufferBit:       "buffer-bit",
	InvDirtyBits:       "dirty-bits",
	InvSwappedValid:    "swapped-valid",
	InvCoherence:       "coherence",
	InvTranslation:     "translation",
	InvTLB:             "tlb",
	InvVictimExclusive: "victim-exclusive",
	InvRLTReciprocity:  "rlt-reciprocity",
}

// String returns the invariant's stable name (used in reports and JSON).
func (i Invariant) String() string {
	if i < 0 || i >= NumInvariants {
		return fmt.Sprintf("Invariant(%d)", int(i))
	}
	return invariantNames[i]
}

// MarshalText renders the invariant by name in JSON output.
func (i Invariant) MarshalText() ([]byte, error) { return []byte(i.String()), nil }

// UnmarshalText parses an invariant name (round-trip support for tooling).
func (i *Invariant) UnmarshalText(b []byte) error {
	for k, n := range invariantNames {
		if n == string(b) {
			*i = Invariant(k)
			return nil
		}
	}
	return fmt.Errorf("audit: unknown invariant %q", b)
}

// Violation is one structural inconsistency found by a check.
type Violation struct {
	Invariant Invariant `json:"invariant"`
	CPU       int       `json:"cpu"` // -1 for machine-wide (cross-CPU) findings
	Location  string    `json:"location"`
	Detail    string    `json:"detail"`
}

// String renders the violation for diagnostics.
func (v Violation) String() string {
	who := "machine"
	if v.CPU >= 0 {
		who = fmt.Sprintf("cpu %d", v.CPU)
	}
	return fmt.Sprintf("%s: %s at %s: %s", who, v.Invariant, v.Location, v.Detail)
}
