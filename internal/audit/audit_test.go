package audit

import (
	"bytes"
	"testing"
)

// cleanCPU builds a small, fully consistent virtual-organization CPU
// snapshot: two resident V lines (one dirty), one buffered write-back, and
// one TLB entry.
func cleanCPU() *CPUSnapshot {
	return &CPUSnapshot{
		CPU: 0, Virtual: true, Inclusive: true, LazyFlush: true,
		L1Block: 16, L2Block: 32,
		VCaches: []VCacheSnapshot{{
			Cache: 0, Sets: 8, Ways: 1,
			Lines: []VLine{
				{Set: 2, Way: 0, Dirty: true, RSet: 0, RWay: 0, RSub: 0,
					PID: 1, VBase: 0x4020, Mapped: true, MMUPA: 0x1000},
				{Set: 3, Way: 0, SV: true, RSet: 1, RWay: 0, RSub: 0,
					PID: 1, VBase: 0x4030, Mapped: true, MMUPA: 0x2020},
			},
		}},
		RLines: []RLine{
			{Set: 0, Way: 0, Addr: 0x1000, State: "private", Subs: []RSub{
				{Sub: 0, Inclusion: true, VDirty: true, VCache: 0, VSet: 2, VWay: 0},
				{Sub: 1, Buffer: true, VDirty: true},
			}},
			{Set: 1, Way: 0, Addr: 0x2020, State: "shared", Subs: []RSub{
				{Sub: 0, Inclusion: true, VCache: 0, VSet: 3, VWay: 0},
				{Sub: 1},
			}},
		},
		WriteBuffer: []WBEntry{{RSet: 0, RWay: 0, RSub: 1, Token: 9}},
		TLB:         []TLBEntry{{PID: 1, VPage: 4, Frame: 1, Mapped: true, MMUFrame: 1}},
	}
}

func cleanSnapshot() *Snapshot {
	return &Snapshot{Organization: "VR", Protocol: "write-invalidate",
		Refs: 100, CPUs: []*CPUSnapshot{cleanCPU()}}
}

func TestCleanSnapshotHasNoViolations(t *testing.T) {
	if vs := cleanSnapshot().Check(); len(vs) != 0 {
		t.Fatalf("clean snapshot: %d violations: %v", len(vs), vs)
	}
}

// assertOnly checks that every violation is of the wanted invariant and at
// least one was found.
func assertOnly(t *testing.T, vs []Violation, want Invariant) {
	t.Helper()
	if len(vs) == 0 {
		t.Fatalf("corruption not detected, want %v", want)
	}
	for _, v := range vs {
		if v.Invariant != want {
			t.Fatalf("flagged %v (%s), want only %v; all: %v", v.Invariant, v, want, vs)
		}
	}
}

func TestCorruptions(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(s *Snapshot)
		want    Invariant
	}{
		{"inclusion bit cleared", func(s *Snapshot) {
			// Clean child so no dirty-bit finding rides along.
			s.CPUs[0].RLines[1].Subs[0].Inclusion = false
		}, InvInclusion},
		{"parent line missing", func(s *Snapshot) {
			s.CPUs[0].RLines = s.CPUs[0].RLines[:1]
			s.CPUs[0].VCaches[0].Lines = s.CPUs[0].VCaches[0].Lines[:2]
			s.CPUs[0].VCaches[0].Lines[1].RSet = 5 // point into the void
		}, InvInclusion},
		{"v-pointer corrupted", func(s *Snapshot) {
			s.CPUs[0].RLines[1].Subs[0].VWay = 7
		}, InvReciprocity},
		{"r-pointer corrupted", func(s *Snapshot) {
			// A stale r-pointer breaks the round-trip from the true parent
			// (reciprocity); the forward pass may also see the inclusion
			// machinery disturbed, which the relaxed check below allows.
			s.CPUs[0].VCaches[0].Lines[1].RSub = 1
			s.CPUs[0].VCaches[0].Lines[1].MMUPA = 0x2030
		}, InvReciprocity},
		{"buffer bit cleared", func(s *Snapshot) {
			s.CPUs[0].RLines[0].Subs[1].Buffer = false
			s.CPUs[0].RLines[0].Subs[1].VDirty = false
		}, InvBufferBit},
		{"buffer bit without entry", func(s *Snapshot) {
			s.CPUs[0].WriteBuffer = nil
		}, InvBufferBit},
		{"inclusion and buffer bits both set", func(s *Snapshot) {
			s.CPUs[0].RLines[1].Subs[0].Buffer = true
			s.CPUs[0].RLines[1].Subs[0].VDirty = true
			s.CPUs[0].VCaches[0].Lines[1].Dirty = true
			s.CPUs[0].WriteBuffer = append(s.CPUs[0].WriteBuffer,
				WBEntry{RSet: 1, RWay: 0, RSub: 0})
			// The shared parent now looks modified; keep coherence clean.
			s.CPUs[0].RLines[1].State = "private"
		}, InvBufferBit},
		{"vdirty dropped", func(s *Snapshot) {
			s.CPUs[0].RLines[0].Subs[0].VDirty = false
		}, InvDirtyBits},
		{"vdirty dangling", func(s *Snapshot) {
			s.CPUs[0].RLines[1].Subs[1].VDirty = true
			s.CPUs[0].RLines[1].State = "private"
		}, InvDirtyBits},
		{"sv outside lazy flush", func(s *Snapshot) {
			s.CPUs[0].LazyFlush = false
		}, InvSwappedValid},
		{"duplicate physical block", func(s *Snapshot) {
			l := &s.CPUs[0].VCaches[0].Lines[1]
			l.RSet, l.RWay, l.RSub = 0, 0, 0
			l.MMUPA = 0x1000
			s.CPUs[0].RLines[1].Subs[0].Inclusion = false
			s.CPUs[0].RLines[0].Subs[0].VCache = 0
			// Both V lines now claim R[0.0.0]; reciprocity for one of them
			// cannot hold, so accept those findings alongside.
		}, InvUniqueCopy},
		{"dirty block shared", func(s *Snapshot) {
			s.CPUs[0].RLines[0].State = "shared"
		}, InvCoherence},
		{"translation mismatch", func(s *Snapshot) {
			s.CPUs[0].VCaches[0].Lines[0].MMUPA = 0x3000
		}, InvTranslation},
		{"translation unmapped", func(s *Snapshot) {
			s.CPUs[0].VCaches[0].Lines[0].Mapped = false
			s.CPUs[0].VCaches[0].Lines[0].MMUPA = 0
		}, InvTranslation},
		{"tlb frame stale", func(s *Snapshot) {
			s.CPUs[0].TLB[0].Frame = 99
		}, InvTLB},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := cleanSnapshot()
			tc.corrupt(s)
			vs := s.Check()
			if len(vs) == 0 {
				t.Fatalf("corruption not detected, want %v", tc.want)
			}
			found := false
			for _, v := range vs {
				if v.Invariant == tc.want {
					found = true
				}
			}
			if !found {
				t.Fatalf("want %v, got %v", tc.want, vs)
			}
			// Most corruptions must be flagged as exactly one invariant; a
			// duplicated block or stale r-pointer necessarily disturbs the
			// pointer/inclusion linkage too.
			if tc.name != "duplicate physical block" && tc.name != "r-pointer corrupted" {
				assertOnly(t, vs, tc.want)
			}
		})
	}
}

func TestCrossCPUCoherence(t *testing.T) {
	two := func() *Snapshot {
		a, b := cleanCPU(), cleanCPU()
		b.CPU = 1
		// Only the shared line overlaps; drop CPU 1's private state.
		b.VCaches[0].Lines = b.VCaches[0].Lines[1:]
		b.RLines = b.RLines[1:]
		b.WriteBuffer = nil
		return &Snapshot{Organization: "VR", CPUs: []*CPUSnapshot{a, b}}
	}
	if vs := two().Check(); len(vs) != 0 {
		t.Fatalf("clean two-CPU snapshot: %v", vs)
	}
	s := two()
	s.CPUs[0].RLines[1].State = "private"
	vs := s.Check()
	assertOnly(t, vs, InvCoherence)
	if vs[0].CPU != -1 {
		t.Fatalf("cross-CPU violation attributed to cpu %d, want -1", vs[0].CPU)
	}
}

func TestNoInclusionBaseline(t *testing.T) {
	ni := func() *Snapshot {
		return &Snapshot{Organization: "RR(no incl)", CPUs: []*CPUSnapshot{{
			CPU: 0, Inclusive: false, L1Block: 16, L2Block: 32,
			L1Lines: []L1Line{{Set: 0, Way: 0, Addr: 0x1000, State: "private", Dirty: true}},
			RLines: []RLine{{Set: 0, Way: 0, Addr: 0x2000, State: "shared",
				Subs: []RSub{{Sub: 0}, {Sub: 1}}}},
			TLB: []TLBEntry{{PID: 1, VPage: 2, Frame: 3, Mapped: true, MMUFrame: 3}},
		}}}
	}
	if vs := ni().Check(); len(vs) != 0 {
		t.Fatalf("clean no-inclusion snapshot: %v", vs)
	}
	s := ni()
	s.CPUs[0].L1Lines[0].State = "shared"
	assertOnly(t, s.Check(), InvCoherence)
	s = ni()
	s.CPUs[0].RLines[0].Subs[1].Inclusion = true
	assertOnly(t, s.Check(), InvInclusion)
}

func TestAuditorTickPeriod(t *testing.T) {
	src := snapFunc(func() *Snapshot { return cleanSnapshot() })
	a := New(10)
	for i := 0; i < 35; i++ {
		a.Tick(src)
	}
	if got := a.Audits(); got != 3 {
		t.Fatalf("35 ticks at period 10: %d audits, want 3", got)
	}
	if a.Total() != 0 || len(a.Violations()) != 0 {
		t.Fatalf("clean source produced violations: %v", a.Violations())
	}
}

func TestAuditorNilSafe(t *testing.T) {
	var a *Auditor
	a.Tick(snapFunc(func() *Snapshot { t.Fatal("nil auditor snapshotted"); return nil }))
	if a.Audits() != 0 || a.Total() != 0 || a.Every() != 0 || a.Violations() != nil {
		t.Fatal("nil auditor reported activity")
	}
	if got := a.Audit(snapFunc(cleanSnapshot)); got != nil {
		t.Fatalf("nil auditor audit: %v", got)
	}
}

func TestAuditorRecordsAndCaps(t *testing.T) {
	bad := cleanSnapshot()
	bad.CPUs[0].RLines[0].State = "shared"
	a := New(0)
	var seen int
	a.OnAudit = func(snap *Snapshot, found []Violation) { seen = len(found) }
	found := a.Audit(snapFunc(func() *Snapshot { return bad }))
	if len(found) == 0 || seen != len(found) {
		t.Fatalf("audit found %d, OnAudit saw %d", len(found), seen)
	}
	if a.Audits() != 1 || a.Total() != uint64(len(found)) {
		t.Fatalf("counters: audits %d total %d", a.Audits(), a.Total())
	}
}

// snapFunc adapts a function to the Source interface.
type snapFunc func() *Snapshot

func (f snapFunc) AuditSnapshot() *Snapshot { return f() }

func TestSnapshotJSONDeterministicRoundTrip(t *testing.T) {
	s := cleanSnapshot()
	var a, b bytes.Buffer
	if err := s.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshot JSON not deterministic")
	}
	back, err := ParseJSON(&a)
	if err != nil {
		t.Fatal(err)
	}
	if vs := back.Check(); len(vs) != 0 {
		t.Fatalf("round-tripped snapshot: %v", vs)
	}
}

func TestInvariantNamesRoundTrip(t *testing.T) {
	for i := Invariant(0); i < NumInvariants; i++ {
		b, err := i.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Invariant
		if err := back.UnmarshalText(b); err != nil || back != i {
			t.Fatalf("%v: round-trip got %v, err %v", i, back, err)
		}
	}
}
