package audit

// Source is anything that can snapshot itself for checking; the system
// layer implements it. The interface lives here so audit depends on no
// simulator package.
type Source interface {
	AuditSnapshot() *Snapshot
}

// maxKeptViolations bounds the retained violation list; a corrupt machine
// can produce one violation per cache line per audit, and keeping them all
// would turn a diagnostic into a memory leak. The total count keeps
// counting past the cap.
const maxKeptViolations = 1000

// Auditor re-checks a machine's invariants as it runs. The zero of every
// integration point follows the repo's nil-check pattern: a nil *Auditor is
// a valid no-op receiver, so hierarchies and systems wire it
// unconditionally and pay one branch per reference when auditing is off.
type Auditor struct {
	every     uint64 // audit period in references; 0 = on demand only
	countdown uint64
	audits    uint64
	total     uint64
	kept      []Violation

	// OnAudit, when set, observes every completed audit with the snapshot
	// it checked and the violations found (the monitor layer's HTTP
	// endpoint attaches here). It runs on the simulation goroutine.
	// Multiple observers chain via AddOnAudit.
	OnAudit func(snap *Snapshot, found []Violation)

	// inject holds synthetic violations appended to the next audit's
	// findings (see InjectOnce).
	inject []Violation
}

// New returns an auditor that audits every n references driven through
// Tick. n = 0 disables periodic auditing; Audit still works on demand.
func New(n uint64) *Auditor {
	return &Auditor{every: n, countdown: n}
}

// Every returns the audit period (0 = on demand only).
func (a *Auditor) Every() uint64 {
	if a == nil {
		return 0
	}
	return a.every
}

// Tick advances the reference counter and audits src when the period
// elapses. It is nil-safe and cheap when disabled: a nil receiver or a zero
// period costs one predictable branch.
func (a *Auditor) Tick(src Source) {
	if a == nil || a.every == 0 {
		return
	}
	a.countdown--
	if a.countdown > 0 {
		return
	}
	a.countdown = a.every
	a.Audit(src)
}

// Audit snapshots src, checks every invariant, records the findings, and
// returns them (nil for a clean machine).
func (a *Auditor) Audit(src Source) []Violation {
	if a == nil {
		return nil
	}
	snap := src.AuditSnapshot()
	found := snap.Check()
	if len(a.inject) > 0 {
		found = append(found, a.inject...)
		a.inject = nil
	}
	a.audits++
	a.total += uint64(len(found))
	for _, v := range found {
		if len(a.kept) >= maxKeptViolations {
			break
		}
		a.kept = append(a.kept, v)
	}
	if a.OnAudit != nil {
		a.OnAudit(snap, found)
	}
	return found
}

// AddOnAudit chains fn after any observer already attached, so multiple
// consumers (monitor state, flight recorder, tests) can watch audits
// without clobbering each other.
func (a *Auditor) AddOnAudit(fn func(snap *Snapshot, found []Violation)) {
	if a == nil || fn == nil {
		return
	}
	if prev := a.OnAudit; prev != nil {
		a.OnAudit = func(snap *Snapshot, found []Violation) {
			prev(snap, found)
			fn(snap, found)
		}
		return
	}
	a.OnAudit = fn
}

// InjectOnce appends v to the next completed audit's findings, then clears
// it. The machine itself is untouched — this exercises the full
// violation-reporting path (counters, observers, flight-recorder dumps)
// without corrupting simulated state, which is what CI's post-mortem smoke
// needs.
func (a *Auditor) InjectOnce(v Violation) {
	if a == nil {
		return
	}
	a.inject = append(a.inject, v)
}

// Audits returns the number of completed audits.
func (a *Auditor) Audits() uint64 {
	if a == nil {
		return 0
	}
	return a.audits
}

// Total returns the number of violations found across all audits (it keeps
// counting past the retention cap).
func (a *Auditor) Total() uint64 {
	if a == nil {
		return 0
	}
	return a.total
}

// Violations returns the retained findings, in discovery order, capped at
// maxKeptViolations.
func (a *Auditor) Violations() []Violation {
	if a == nil {
		return nil
	}
	return a.kept
}
